// Ablation: noisy-evaluation modes (DESIGN.md §2.3).
//
// Compares the exact density-matrix channel mean against Pauli-trajectory
// averaging (varying trajectory counts) and finite-shot sampling: the
// stochastic estimators converge to the exact values as the budget grows,
// which is why the exact mode is the default for accuracy measurements —
// it is the infinite-shot limit real hardware approaches at 8192 shots.
#include <iostream>

#include "bench_common.hpp"
#include "core/metrics.hpp"
#include "nn/losses.hpp"

using namespace qnat;
using namespace qnat::bench;

int main() {
  print_header(
      "Ablation: evaluation modes (MNIST-4 on Belem, trained +Norm)",
      "trajectory / shot estimators converge to the exact channel mean as "
      "their budget grows");
  const RunScale scale = scale_from_env();

  BenchConfig config;
  config.task = "mnist4";
  config.device = "belem";
  config.num_blocks = 2;
  config.layers_per_block = 6;
  const TaskBundle task = load_task(config.task, scale);
  QnnModel model(make_arch(task.info, config));
  const Deployment deployment(model, make_device_noise_model(config.device),
                              config.optimization_level);
  const TrainerConfig trainer =
      make_trainer_config(config, Method::PostNorm, scale);
  train_qnn(model, task.train, trainer);
  const QnnForwardOptions pipeline = pipeline_options(trainer);

  NoisyEvalOptions exact;
  exact.mode = NoiseEvalMode::ExactChannel;
  QnnForwardCache exact_cache;
  const Tensor2D exact_logits = qnn_forward_noisy(
      model, deployment, task.test.features, pipeline, exact, &exact_cache);
  const real exact_acc = accuracy(exact_logits, task.test.labels);

  TextTable table({"mode", "budget", "accuracy", "outcome MSE vs exact"});
  table.add_row({"exact channel", "-", fmt_fixed(exact_acc, 2), "0.000"});
  for (const int traj : {4, 16, 64, 256}) {
    NoisyEvalOptions opts;
    opts.mode = NoiseEvalMode::Trajectories;
    opts.trajectories = traj;
    QnnForwardCache cache;
    const Tensor2D logits = qnn_forward_noisy(
        model, deployment, task.test.features, pipeline, opts, &cache);
    table.add_row({"trajectories", std::to_string(traj),
                   fmt_fixed(accuracy(logits, task.test.labels), 2),
                   fmt_fixed(mse(exact_cache.raw[0], cache.raw[0]), 4)});
  }
  for (const int shots : {512, 8192}) {
    NoisyEvalOptions opts;
    opts.mode = NoiseEvalMode::Shots;
    opts.trajectories = 16;
    opts.shots_per_trajectory = shots;
    QnnForwardCache cache;
    const Tensor2D logits = qnn_forward_noisy(
        model, deployment, task.test.features, pipeline, opts, &cache);
    table.add_row({"shots (16 traj)", std::to_string(shots),
                   fmt_fixed(accuracy(logits, task.test.labels), 2),
                   fmt_fixed(mse(exact_cache.raw[0], cache.raw[0]), 4)});
  }
  std::cout << table.render();
  return 0;
}
