// Ablation: per-sample vs per-step noise realizations during gate-insertion
// training (EXPERIMENTS.md "global deviations").
//
// The paper's TorchQuantum implementation shares one sampled error-gate set
// per training step across the whole batch; this library defaults to an
// independent realization per sample, which averages injection noise
// within the batch. Identical in expectation, but per-sample realizations
// converge in far fewer steps — the relevant regime for CPU-scale budgets.
#include <iostream>

#include "bench_common.hpp"

using namespace qnat;
using namespace qnat::bench;

int main() {
  print_header(
      "Ablation: injection noise realizations per step vs per sample "
      "(MNIST-4 on Belem, gate insertion T = 0.1)",
      "per-sample realizations reach higher noisy accuracy at small epoch "
      "budgets; the gap closes as epochs grow");
  const RunScale scale = scale_from_env();

  BenchConfig config;
  config.task = "mnist4";
  config.device = "belem";
  config.num_blocks = 2;
  config.layers_per_block = 6;
  const TaskBundle task = load_task(config.task, scale);

  TextTable table({"epochs", "per-step (paper)", "per-sample (default)"});
  for (const int epochs : {10, 25, 50}) {
    std::vector<std::string> row{std::to_string(epochs)};
    for (const bool per_sample : {false, true}) {
      QnnModel model(make_arch(task.info, config));
      const Deployment deployment(
          model, make_device_noise_model(config.device),
          config.optimization_level);
      TrainerConfig trainer =
          make_trainer_config(config, Method::GateInsert, scale);
      trainer.epochs = epochs;
      trainer.injection.per_sample = per_sample;
      train_qnn(model, task.train, trainer, &deployment);
      NoisyEvalOptions eval_options;
      eval_options.trajectories = scale.trajectories;
      row.push_back(fmt_fixed(
          noisy_accuracy(model, deployment, task.test,
                         pipeline_options(trainer), eval_options),
          2));
    }
    table.add_row(row);
  }
  std::cout << table.render();
  return 0;
}
