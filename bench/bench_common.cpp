#include "bench_common.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/metrics.hpp"
#include "core/parallel_trainer.hpp"
#include "common/simd.hpp"
#include "common/thread_pool.hpp"
#include "qsim/backend/backend.hpp"
#include "qsim/program.hpp"

namespace qnat::bench {

namespace {

int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  return std::atoi(value);
}

metrics::ObservabilityOptions g_observability;
std::string g_run_label;
int g_train_workers = -1;   // -1 = not yet resolved
bool g_train_workers_requested = false;

void write_observability_at_exit() {
  metrics::write_observability(g_observability, current_manifest(g_run_label));
}

}  // namespace

metrics::RunManifest current_manifest(const std::string& label) {
  metrics::RunManifest manifest;
  manifest.label = label;
  manifest.seed = scale_from_env().seed;
  manifest.threads = num_threads();
  manifest.fused = default_fusion();
  manifest.simd = simd::enabled();
  manifest.backend = std::string(backend::active().name());
  manifest.drift = metrics::drift_stamp();
  return manifest;
}

RunScale scale_from_env() {
  RunScale scale;
  scale.samples_per_class = env_int("QNAT_SAMPLES", scale.samples_per_class);
  scale.samples_per_class_10way =
      env_int("QNAT_SAMPLES_10WAY", scale.samples_per_class_10way);
  scale.epochs = env_int("QNAT_EPOCHS", scale.epochs);
  scale.epochs_10way = env_int("QNAT_EPOCHS_10WAY", scale.epochs_10way);
  scale.trajectories = env_int("QNAT_TRAJ", scale.trajectories);
  scale.seed = static_cast<std::uint64_t>(
      env_int("QNAT_SEED", static_cast<int>(scale.seed)));
  return scale;
}

int configure_threads(int argc, char** argv) {
  int requested = env_int("QNAT_THREADS", 0);
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      requested = std::atoi(argv[i + 1]);
    }
  }
  if (requested >= 1) set_num_threads(requested);
  return num_threads();
}

int train_workers() {
  if (g_train_workers < 0) {
    g_train_workers_requested = std::getenv("QNAT_TRAIN_WORKERS") != nullptr;
    g_train_workers = env_int("QNAT_TRAIN_WORKERS", 0);
  }
  return g_train_workers;
}

bool train_workers_requested() {
  train_workers();  // resolve from the environment if not yet parsed
  return g_train_workers_requested;
}

const std::vector<Knob>& shared_knobs() {
  static const std::vector<Knob> knobs = {
      {"--threads", "N", "QNAT_THREADS",
       "worker-pool width (results are bit-identical at any count)"},
      {"--train-workers", "N", "QNAT_TRAIN_WORKERS",
       "data-parallel training workers (0 = inherit --threads pool; "
       "trained weights are byte-identical at any count)"},
      {"--backend", "NAME", "QNAT_BACKEND",
       "execution backend (see backend::available_backends; e.g. scalar, "
       "avx2)"},
      {"--simd", "on|off", "QNAT_SIMD",
       "deprecated alias for --backend: 'off' selects scalar, 'on' the "
       "best vectorized backend (no-op without the ISA)"},
      {"--metrics-out", "FILE", "QNAT_METRICS_OUT",
       "write a metrics snapshot JSON (enables metrics recording)"},
      {"--trace-out", "FILE", "QNAT_TRACE_OUT",
       "write a chrome://tracing phase trace (enables tracing)"},
  };
  return knobs;
}

void print_knob_help(const std::string& label,
                     const std::vector<Knob>& extra) {
  std::cout << "usage: " << label << " [flags]\n\n";
  std::vector<Knob> knobs = shared_knobs();
  knobs.insert(knobs.end(), extra.begin(), extra.end());
  std::size_t flag_width = 0, env_width = 0;
  for (const Knob& knob : knobs) {
    const std::size_t f =
        std::strlen(knob.flag) + (knob.arg[0] ? std::strlen(knob.arg) + 1 : 0);
    flag_width = std::max(flag_width, f);
    env_width = std::max(env_width, std::strlen(knob.env));
  }
  for (const Knob& knob : knobs) {
    std::string flag = knob.flag;
    if (knob.arg[0]) flag += std::string(" ") + knob.arg;
    std::cout << "  " << flag << std::string(flag_width - flag.size() + 2, ' ')
              << knob.env << std::string(env_width - std::strlen(knob.env) + 2, ' ')
              << knob.what << "\n";
  }
  std::cout << "\nScale knobs (environment only): QNAT_SAMPLES, QNAT_EPOCHS, "
               "QNAT_TRAJ, QNAT_SEED.\n";
}

int configure_run(const std::string& label, int argc, char** argv,
                  const std::vector<Knob>& extra) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      print_knob_help(label, extra);
      std::exit(0);
    }
  }
  const int threads = configure_threads(argc, argv);
  g_train_workers_requested = std::getenv("QNAT_TRAIN_WORKERS") != nullptr;
  g_train_workers = env_int("QNAT_TRAIN_WORKERS", 0);
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--train-workers") == 0) {
      g_train_workers = std::atoi(argv[i + 1]);
      g_train_workers_requested = true;
    }
  }
  if (g_train_workers < 0) g_train_workers = 0;
  // Backend selection. --simd on|off is the deprecated alias (kept for
  // scripts): it resolves through the same registry, then --backend NAME
  // overrides it. An unknown or unavailable name is a configuration
  // error, not a silent fallback.
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--simd") == 0) {
      simd::set_enabled(std::strcmp(argv[i + 1], "off") != 0);
    }
  }
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--backend") == 0) {
      if (!backend::set_active(argv[i + 1])) {
        std::cerr << label << ": unknown or unavailable backend '"
                  << argv[i + 1] << "'; available:";
        for (const std::string& name : backend::available_backends()) {
          std::cerr << ' ' << name;
        }
        std::cerr << "\n";
        std::exit(2);
      }
    }
  }
  g_run_label = label;
  g_observability = metrics::observability_from_args(argc, argv);
  if (g_observability.any()) std::atexit(write_observability_at_exit);
  return threads;
}

std::string method_label(Method method) {
  switch (method) {
    case Method::Baseline: return "Baseline";
    case Method::PostNorm: return "+ Post Norm.";
    case Method::GateInsert: return "+ Gate Insert.";
    case Method::PostQuant: return "+ Post Quant.";
  }
  return "?";
}

const std::vector<Method>& all_methods() {
  static const std::vector<Method> methods = {
      Method::Baseline, Method::PostNorm, Method::GateInsert,
      Method::PostQuant};
  return methods;
}

TaskBundle load_task(const std::string& name, const RunScale& scale) {
  const bool ten_way = name == "mnist10" || name == "fashion10";
  return make_task(name,
                   ten_way ? scale.samples_per_class_10way
                           : scale.samples_per_class,
                   scale.seed);
}

QnnArchitecture make_arch(const TaskInfo& info, const BenchConfig& config) {
  QnnArchitecture arch;
  arch.num_qubits = info.num_qubits;
  arch.num_blocks = config.num_blocks;
  arch.layers_per_block = config.layers_per_block;
  arch.space = config.space;
  arch.input_features = info.feature_dim;
  arch.num_classes = info.num_classes;
  return arch;
}

TrainerConfig make_trainer_config(const BenchConfig& config, Method method,
                                  const RunScale& scale) {
  const bool ten_way = config.task == "mnist10" || config.task == "fashion10";
  TrainerConfig trainer;
  trainer.epochs = ten_way ? scale.epochs_10way : scale.epochs;
  trainer.batch_size = scale.batch_size;
  trainer.seed = scale.seed * 7919 + static_cast<std::uint64_t>(method);
  trainer.apply_to_last = config.apply_to_last;
  trainer.normalize = method != Method::Baseline;
  trainer.quantize = method == Method::PostQuant;
  trainer.quant.levels = config.quant_levels;
  trainer.quant_loss_weight = 1.0;
  trainer.workers = train_workers();
  if (method == Method::GateInsert || method == Method::PostQuant) {
    trainer.injection.method = InjectionMethod::GateInsertion;
    trainer.injection.noise_factor = config.noise_factor;
    trainer.injection.readout = true;
  }
  return trainer;
}

MethodResult run_method(const BenchConfig& config, Method method,
                        const RunScale& scale) {
  const TaskBundle task = load_task(config.task, scale);
  QnnModel model(make_arch(task.info, config));
  const NoiseModel device = make_device_noise_model(config.device);
  const Deployment deployment(model, device, config.optimization_level);

  const TrainerConfig trainer = make_trainer_config(config, method, scale);
  const bool needs_device =
      trainer.injection.method == InjectionMethod::GateInsertion;
  // --train-workers (or QNAT_TRAIN_WORKERS) opts the run into the
  // data-parallel engine; otherwise the legacy single loop keeps the
  // published accuracy tables bit-stable.
  if (train_workers_requested()) {
    train_qnn_parallel(model, task.train, trainer,
                       needs_device ? &deployment : nullptr);
  } else {
    train_qnn(model, task.train, trainer,
              needs_device ? &deployment : nullptr);
  }

  const QnnForwardOptions pipeline = pipeline_options(trainer);
  NoisyEvalOptions eval_options;
  eval_options.trajectories = scale.trajectories;
  eval_options.seed = scale.seed * 13 + 5;

  MethodResult result;
  result.noisy_accuracy =
      noisy_accuracy(model, deployment, task.test, pipeline, eval_options);
  result.ideal_accuracy = ideal_accuracy(model, task.test, pipeline);
  return result;
}

void print_header(const std::string& title, const std::string& expectation) {
  std::cout << "=== " << title << " ===\n";
  std::cout << "Expected shape (vs paper): " << expectation << "\n\n";
}

}  // namespace qnat::bench
