// Shared harness for the paper-reproduction benchmarks.
//
// Every bench binary regenerates one table or figure of the paper. The
// harness centralizes the model/device/task plumbing and the four-step
// method cascade (Baseline → +Post Norm → +Gate Insert → +Post Quant) so
// each bench only describes its sweep.
//
// Absolute accuracies will not match the paper (synthetic datasets,
// reduced epochs, simulated devices) — the *shape* should: see
// EXPERIMENTS.md. Scale knobs are overridable via environment variables
// QNAT_SAMPLES / QNAT_EPOCHS / QNAT_TRAJ for heavier runs.
#pragma once

#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "common/table.hpp"
#include "core/trainer.hpp"
#include "data/tasks.hpp"
#include "noise/device_presets.hpp"

namespace qnat::bench {

struct RunScale {
  int samples_per_class = 60;
  int samples_per_class_10way = 12;  // 10-class tasks are 10x the data
  int epochs = 25;
  /// Reduced budget for 10-qubit models (1024-amplitude statevectors).
  int epochs_10way = 12;
  std::size_t batch_size = 16;
  /// Trajectory count for blocks too wide for exact channel simulation.
  int trajectories = 24;
  std::uint64_t seed = 2022;
};

/// Default scale with environment overrides (QNAT_SAMPLES, QNAT_EPOCHS,
/// QNAT_TRAJ, QNAT_SEED).
RunScale scale_from_env();

/// Resolves the worker-thread count for a bench run — `--threads N` on the
/// command line, else the QNAT_THREADS environment variable, else the
/// global pool's default (QNAT_NUM_THREADS / hardware_concurrency) — and
/// applies it to the global pool. Returns the resolved count. Results are
/// bit-identical at any thread count; only wall-clock changes.
int configure_threads(int argc, char** argv);

/// Worker count for the data-parallel training engine — `--train-workers
/// N` on the command line, else QNAT_TRAIN_WORKERS, else 0 (inherit the
/// `--threads` pool). Parsed by configure_run; forwarded into
/// TrainerConfig::workers by make_trainer_config. Training results are
/// byte-identical at any worker count; only wall-clock changes.
int train_workers();

/// Whether the user asked for the data-parallel engine at all (the flag
/// or environment variable was present, even with value 0). run_method
/// stays on the legacy single loop otherwise so published accuracy
/// tables remain bit-stable.
bool train_workers_requested();

/// One shared command-line knob as printed by `--help`. This list is
/// the single source of truth for flag documentation: the README's
/// "Shared bench knobs" table is a rendering of exactly these rows, and
/// bench binaries with extra flags (bench_serve_load's `--serve-*`
/// family) append their own Knob rows so `--help` stays complete.
struct Knob {
  const char* flag;  ///< e.g. "--threads"
  const char* arg;   ///< e.g. "N" ("" for valueless flags)
  const char* env;   ///< equivalent environment variable ("" if none)
  const char* what;  ///< one-line description
};

/// The flags every bench binary understands via configure_run.
const std::vector<Knob>& shared_knobs();

/// Prints the `--help` text for `label`: the shared knobs plus any
/// bench-specific `extra` rows, one aligned line each.
void print_knob_help(const std::string& label,
                     const std::vector<Knob>& extra = {});

/// Full bench-run setup: configure_threads, the `--simd on|off` backend
/// knob (overrides QNAT_SIMD / the cpuid default; "on" stays a no-op
/// without AVX2+FMA hardware), plus the observability flags
/// (`--metrics-out <file>` / `--trace-out <file>`, see
/// metrics::observability_from_args). `--help` prints the knob table
/// (shared + `extra`) and exits. When an output is requested, an atexit
/// hook dumps it together with a run manifest (label, seed, threads,
/// fusion default, simd backend, git describe) when the bench finishes.
/// Returns the resolved thread count.
int configure_run(const std::string& label, int argc, char** argv,
                  const std::vector<Knob>& extra = {});

/// The provenance block describing the process-wide run configuration —
/// the same fields a metrics snapshot's manifest carries: label, master
/// seed (QNAT_SEED), worker-thread count, fusion default, whether the
/// SIMD backend is active, and the configure-time `git describe`. Used
/// both by the atexit observability dump and by bench binaries that
/// embed the manifest into their own report (bench_micro_qsim writes it
/// into the google-benchmark JSON context as `qnat_*` keys, so
/// BENCH_simd.json records which backend produced its timings).
metrics::RunManifest current_manifest(const std::string& label);

/// The paper's incremental method cascade (Table 1 rows).
enum class Method { Baseline, PostNorm, GateInsert, PostQuant };

std::string method_label(Method method);

/// All four methods in cascade order.
const std::vector<Method>& all_methods();

struct BenchConfig {
  std::string task = "mnist4";
  std::string device = "santiago";
  int num_blocks = 2;
  int layers_per_block = 2;
  DesignSpace space = DesignSpace::U3CU3;
  /// The paper's T grid is {0.1, 0.5, 1, 1.5} for its noise pipeline; our
  /// pipeline adds idle-decoherence channels to the sampled set, so the
  /// same injected-error *rate* corresponds to smaller T values. The
  /// defaults below are what the validation-loss grid search
  /// (grid_search_noise_factor_levels) selects on most cells.
  double noise_factor = 0.1;
  int quant_levels = 6;
  int optimization_level = 2;
  bool apply_to_last = false;  // fully-quantum single-block variant
};

struct MethodResult {
  real noisy_accuracy = 0.0;
  real ideal_accuracy = 0.0;
};

/// Loads the task (scaled), builds the architecture, trains with the given
/// method's pipeline, and evaluates noisy accuracy on the device.
MethodResult run_method(const BenchConfig& config, Method method,
                        const RunScale& scale);

/// Builds the TaskBundle with the scale's sample counts.
TaskBundle load_task(const std::string& name, const RunScale& scale);

/// Architecture for a task/config pair.
QnnArchitecture make_arch(const TaskInfo& info, const BenchConfig& config);

/// Trainer configuration for a method.
TrainerConfig make_trainer_config(const BenchConfig& config, Method method,
                                  const RunScale& scale);

/// Prints the standard bench header (what is being reproduced).
void print_header(const std::string& title, const std::string& expectation);

}  // namespace qnat::bench
