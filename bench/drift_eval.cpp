// Drift benchmark: serving accuracy under device drift, with and
// without online recalibration.
//
// For each of the eight canonical tasks, a noise-aware (normalized)
// model is trained once and then served three ways against a seeded
// drift trajectory (src/noise/drift) at severity calm / daily /
// aggressive:
//   fresh         — deployed against the calibration-day device
//                   (drift.at(0)) with load-time profiled statistics;
//   stale         — the drifted device (drift.at(tick)) served with the
//                   calibration-time statistics nobody re-profiled;
//   recalibrated  — the same drifted device after the online loop:
//                   shift detection on served traffic, re-profiling of
//                   the A.3.7 statistics against that traffic, corrector
//                   fit, hot swap (serve/recalibration.hpp).
//
// Expected shape: "stale" loses accuracy monotonically with severity;
// "recalibrated" recovers most of the loss (exactly, for Direct-head
// tasks, where per-qubit affine readout drift is fully observable in
// the logits).
//
// Emits BENCH_drift.json (schema qnat.drift_bench.v1).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "noise/drift/drift.hpp"
#include "serve/recalibration.hpp"
#include "serve/registry.hpp"

using namespace qnat;
using namespace qnat::bench;

namespace {

struct DriftKnobs {
  std::string preset;  // "" = all three severities
  std::uint64_t seed = 424242;
  std::int64_t tick = 150;
  std::string out = "BENCH_drift.json";
};

DriftKnobs parse_knobs(int argc, char** argv) {
  DriftKnobs knobs;
  if (const char* env = std::getenv("QNAT_DRIFT")) knobs.preset = env;
  if (const char* env = std::getenv("QNAT_DRIFT_SEED")) {
    knobs.seed = static_cast<std::uint64_t>(std::atoll(env));
  }
  if (const char* env = std::getenv("QNAT_DRIFT_TICK")) {
    knobs.tick = std::atoll(env);
  }
  if (const char* env = std::getenv("QNAT_DRIFT_OUT")) knobs.out = env;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--drift-preset") == 0) knobs.preset = argv[i + 1];
    if (std::strcmp(argv[i], "--drift-seed") == 0) {
      knobs.seed = static_cast<std::uint64_t>(std::atoll(argv[i + 1]));
    }
    if (std::strcmp(argv[i], "--drift-tick") == 0) {
      knobs.tick = std::atoll(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--out") == 0) knobs.out = argv[i + 1];
  }
  return knobs;
}

struct CellResult {
  std::string task;
  std::string preset;
  double fresh = 0.0;
  double stale = 0.0;
  double recalibrated = 0.0;
  bool detected = false;
};

double serving_accuracy(const serve::ServableModel& servable,
                        const Dataset& data, std::uint64_t id_base) {
  std::vector<std::uint64_t> ids(data.size());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = id_base + i;
  const Tensor2D logits = servable.run_batch(data.features, ids);
  std::size_t hits = 0;
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < logits.cols(); ++c) {
      if (logits(r, c) > logits(r, best)) best = c;
    }
    if (static_cast<int>(best) == data.labels[r]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(data.size());
}

CellResult run_cell(const std::string& task_name, const std::string& preset,
                    const DriftKnobs& knobs, const RunScale& scale) {
  const bool ten_way = task_name == "mnist10" || task_name == "fashion10";
  BenchConfig config;
  config.task = task_name;
  config.device = ten_way ? "melbourne" : "santiago";
  const TaskBundle task = load_task(task_name, scale);

  QnnModel model(make_arch(task.info, config));
  const TrainerConfig trainer =
      make_trainer_config(config, Method::PostNorm, scale);
  train_qnn(model, task.train, trainer);

  DriftConfig drift_config = drift_preset(preset);
  drift_config.seed = knobs.seed;
  const DriftModel drift(make_device_noise_model(config.device),
                         drift_config);
  metrics::set_drift_stamp(drift.stamp(knobs.tick));

  serve::ModelRegistry registry;
  const Tensor2D& profiling = task.train.features;
  serve::ServingOptions fresh_options;
  fresh_options.normalize = true;
  fresh_options.device_override = std::make_shared<NoiseModel>(drift.at(0));
  const auto fresh =
      registry.add(task_name, model, fresh_options, &profiling);

  serve::RecalibrationConfig rc;
  rc.traffic_capacity = profiling.rows();
  rc.min_traffic = std::min(rc.min_traffic, rc.traffic_capacity);
  // More sensitive than the serving defaults: the bench wants to report
  // whether drift is *observable*, not to avoid operational false alarms.
  rc.detector.window = 16;
  rc.detector.cusum_h = 4.0;
  serve::RecalibrationController controller(registry, task_name, rc);
  controller.prime(profiling);

  serve::ServingOptions stale_options = fresh_options;
  stale_options.device_override =
      std::make_shared<NoiseModel>(drift.at(knobs.tick));
  stale_options.profile_override = std::make_shared<serve::ProfiledStats>(
      serve::ProfiledStats{fresh->profiled_mean(), fresh->profiled_std()});
  const auto stale =
      registry.add(task_name, model, stale_options, &profiling);

  CellResult result;
  result.task = task_name;
  result.preset = preset;
  result.fresh = serving_accuracy(*fresh, task.test, 10000);
  result.stale = serving_accuracy(*stale, task.test, 20000);

  // The online loop: served traffic (the profiling distribution) streams
  // through the detector in id order, then one recalibration hot-swap.
  std::vector<std::uint64_t> traffic_ids(profiling.rows());
  for (std::size_t i = 0; i < traffic_ids.size(); ++i) {
    traffic_ids[i] = 30000 + i;
  }
  const Tensor2D traffic_logits = stale->run_batch(profiling, traffic_ids);
  for (std::size_t r = 0; r < profiling.rows(); ++r) {
    controller.observe(profiling.row(r), traffic_logits.row(r));
  }
  result.detected = controller.shift_detected();
  const auto recalibrated = controller.recalibrate();
  result.recalibrated = serving_accuracy(*recalibrated, task.test, 40000);
  return result;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

void write_report(const DriftKnobs& knobs,
                  const std::vector<std::string>& presets,
                  const std::vector<CellResult>& results) {
  const metrics::RunManifest manifest = current_manifest("drift_eval");
  std::ostringstream json;
  json.precision(6);
  json << std::fixed;
  json << "{\n";
  json << "  \"schema\": \"qnat.drift_bench.v1\",\n";
  json << "  \"manifest\": {\"label\": \"" << json_escape(manifest.label)
       << "\", \"seed\": " << manifest.seed
       << ", \"threads\": " << manifest.threads
       << ", \"simd\": " << (manifest.simd ? "true" : "false")
       << ", \"backend\": \"" << json_escape(manifest.backend)
       << "\", \"git\": \""
       << json_escape(manifest.git.empty() ? metrics::build_version()
                                           : manifest.git)
       << "\", \"drift\": \"" << json_escape(manifest.drift) << "\"},\n";
  json << "  \"config\": {\"drift_seed\": " << knobs.seed
       << ", \"drift_tick\": " << knobs.tick << ", \"presets\": [";
  for (std::size_t i = 0; i < presets.size(); ++i) {
    json << (i ? ", " : "") << '"' << json_escape(presets[i]) << '"';
  }
  json << "]},\n";
  json << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CellResult& cell = results[i];
    json << "    {\"task\": \"" << json_escape(cell.task)
         << "\", \"preset\": \"" << json_escape(cell.preset)
         << "\", \"fresh\": " << cell.fresh << ", \"stale\": " << cell.stale
         << ", \"recalibrated\": " << cell.recalibrated
         << ", \"detected\": " << (cell.detected ? "true" : "false") << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::ofstream out(knobs.out);
  out << json.str();
  std::cout << "\nwrote " << knobs.out << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<Knob> extra = {
      {"--drift-preset", "NAME", "QNAT_DRIFT",
       "drift severity to evaluate (none, calm, daily, aggressive; "
       "default: calm, daily and aggressive)"},
      {"--drift-seed", "N", "QNAT_DRIFT_SEED",
       "seed of the drift trajectory (trajectories replay byte-identically "
       "per seed)"},
      {"--drift-tick", "N", "QNAT_DRIFT_TICK",
       "virtual-clock tick the stale deployment is evaluated at"},
      {"--out", "FILE", "QNAT_DRIFT_OUT",
       "report path (default BENCH_drift.json)"},
  };
  print_header(
      "Drift: serving accuracy under device drift, with and without "
      "online recalibration (8 tasks x 3 severities)",
      "stale deployments degrade monotonically with severity; online "
      "re-profiling + corrector recovers the loss");
  const RunScale scale = scale_from_env();
  configure_run("drift_eval", argc, argv, extra);
  const DriftKnobs knobs = parse_knobs(argc, argv);

  const std::vector<std::string> tasks = {"mnist2",   "mnist4",  "mnist10",
                                          "fashion2", "fashion4",
                                          "fashion10", "cifar2",  "vowel4"};
  std::vector<std::string> presets = {"calm", "daily", "aggressive"};
  if (!knobs.preset.empty()) presets = {knobs.preset};

  std::vector<CellResult> results;
  for (const std::string& task : tasks) {
    TextTable table({"severity (" + task + ")", "fresh", "stale",
                     "recalibrated", "detected"});
    for (const std::string& preset : presets) {
      const CellResult cell = run_cell(task, preset, knobs, scale);
      table.add_row({preset, fmt_fixed(cell.fresh, 2),
                     fmt_fixed(cell.stale, 2),
                     fmt_fixed(cell.recalibrated, 2),
                     cell.detected ? "yes" : "no"});
      results.push_back(cell);
    }
    std::cout << table.render() << "\n";
  }
  write_report(knobs, presets, results);
  return 0;
}
