// Figure 1: device error rates and the accuracy degradation they cause.
// Left panel: gate/readout error magnitudes per device (~1e-3, far above
// classical error rates). Right panel: the same noise-unaware MNIST-4
// model deployed on different devices — noisier devices score lower, all
// far below the noise-free accuracy.
#include <iostream>

#include "bench_common.hpp"

using namespace qnat;
using namespace qnat::bench;

int main() {
  print_header(
      "Figure 1: error rates vs on-device accuracy (MNIST-4, noise-unaware)",
      "noisy accuracy << noise-free; accuracy decreases as device error "
      "grows (Santiago best, Melbourne worst)");
  const RunScale scale = scale_from_env();

  // One noise-unaware model, deployed everywhere (the Fig. 1 setting).
  // Depth matters: the paper's models are deep enough that baseline
  // accuracy collapses on noisy devices; 2 blocks x 6 layers shows it.
  const TaskBundle task = load_task("mnist4", scale);
  BenchConfig config;
  config.task = "mnist4";
  config.num_blocks = 2;
  config.layers_per_block = 6;
  QnnModel model(make_arch(task.info, config));
  const TrainerConfig trainer =
      make_trainer_config(config, Method::Baseline, scale);
  train_qnn(model, task.train, trainer);
  const QnnForwardOptions pipeline = pipeline_options(trainer);
  const real noise_free = ideal_accuracy(model, task.test, pipeline);

  TextTable table({"device", "1q gate err", "2q gate err", "readout err",
                   "acc (noisy)", "acc (noise-free)"});
  for (const std::string device :
       {"santiago", "athens", "lima", "belem", "yorktown", "melbourne"}) {
    const NoiseModel noise = make_device_noise_model(device);
    const Deployment deployment(model, noise, config.optimization_level);
    NoisyEvalOptions eval_options;
    eval_options.trajectories = scale.trajectories;
    eval_options.seed = scale.seed;
    const real acc =
        noisy_accuracy(model, deployment, task.test, pipeline, eval_options);
    table.add_row({device, fmt_fixed(noise.average_single_qubit_error(), 5),
                   fmt_fixed(noise.average_two_qubit_error(), 4),
                   fmt_fixed(noise.average_readout_error(), 3),
                   fmt_fixed(acc, 2), fmt_fixed(noise_free, 2)});
  }
  std::cout << table.render();
  return 0;
}
