// Figure 4: post-measurement normalization reduces the distribution
// mismatch between noise-free simulation and noisy hardware results,
// raising the per-qubit SNR on MNIST-4.
#include <iostream>

#include "bench_common.hpp"
#include "core/metrics.hpp"

using namespace qnat;
using namespace qnat::bench;

int main() {
  print_header(
      "Figure 4: normalization vs per-qubit measurement SNR (MNIST-4)",
      "SNR improves on every qubit after post-measurement normalization");
  const RunScale scale = scale_from_env();

  BenchConfig config;
  config.task = "mnist4";
  config.device = "yorktown";
  const TaskBundle task = load_task(config.task, scale);
  QnnModel model(make_arch(task.info, config));
  const TrainerConfig trainer =
      make_trainer_config(config, Method::PostNorm, scale);
  train_qnn(model, task.train, trainer);

  const Deployment deployment(model, make_device_noise_model(config.device),
                              config.optimization_level);
  QnnForwardOptions raw;
  raw.normalize = false;
  QnnForwardCache ideal_cache, noisy_cache;
  qnn_forward_ideal(model, task.test.features, raw, &ideal_cache);
  NoisyEvalOptions eval_options;
  eval_options.trajectories = scale.trajectories;
  qnn_forward_noisy(model, deployment, task.test.features, raw, eval_options,
                    &noisy_cache);

  const Tensor2D& clean = ideal_cache.raw[0];
  const Tensor2D& noisy = noisy_cache.raw[0];
  const Tensor2D clean_norm = normalize_batch(clean);
  const Tensor2D noisy_norm = normalize_batch(noisy);
  const auto snr_before = snr_per_column(clean, noisy);
  const auto snr_after = snr_per_column(clean_norm, noisy_norm);
  const auto mean_clean = clean.col_mean();
  const auto mean_noisy = noisy.col_mean();
  const auto std_clean = clean.col_std();
  const auto std_noisy = noisy.col_std();

  TextTable table({"qubit", "mean ideal", "mean noisy", "std ideal",
                   "std noisy", "SNR before", "SNR after"});
  for (std::size_t q = 0; q < snr_before.size(); ++q) {
    table.add_row({"q" + std::to_string(q), fmt_fixed(mean_clean[q], 3),
                   fmt_fixed(mean_noisy[q], 3), fmt_fixed(std_clean[q], 3),
                   fmt_fixed(std_noisy[q], 3), fmt_fixed(snr_before[q], 2),
                   fmt_fixed(snr_after[q], 2)});
  }
  table.add_separator();
  table.add_row({"all", "-", "-", "-", "-", fmt_fixed(snr(clean, noisy), 2),
                 fmt_fixed(snr(clean_norm, noisy_norm), 2)});
  std::cout << table.render();
  return 0;
}
