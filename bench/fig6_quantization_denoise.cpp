// Figure 6: post-measurement quantization denoises measurement outcomes.
// Paper (Fashion-4 on Santiago, 5 levels, clip [-2, 2]): MSE drops
// 0.235 -> 0.167, SNR rises 4.256 -> 6.455. We reproduce the direction
// (MSE down, SNR up) and print the error-map summary.
#include <iostream>

#include "bench_common.hpp"
#include "core/metrics.hpp"
#include "nn/losses.hpp"

using namespace qnat;
using namespace qnat::bench;

int main() {
  print_header(
      "Figure 6: quantization error maps (Fashion-4 on Santiago, 5 levels)",
      "most error-map entries snap to exactly zero after quantization "
      "(the denoising mechanism). The paper additionally reports an MSE "
      "drop (0.235 -> 0.167); that direction holds when errors are sparse "
      "(a few large deviations among many tiny ones, as on hardware) and "
      "reverses for the dense channel-mean bias our simulator produces -- "
      "see EXPERIMENTS.md.");
  const RunScale scale = scale_from_env();

  BenchConfig config;
  config.task = "fashion4";
  config.device = "santiago";
  // A mid-depth Santiago model: deep enough that residual
  // post-normalization errors are in the regime quantization targets
  // (deviations below half the centroid spacing), matching the paper's
  // MSE ~ 0.2 operating point.
  config.num_blocks = 2;
  config.layers_per_block = 6;
  const TaskBundle task = load_task(config.task, scale);
  QnnModel model(make_arch(task.info, config));
  // Quantization-aware training (without injection): the centroid
  // attraction loss concentrates outcomes near the quantization grid, the
  // precondition for the snapping-based denoising this figure measures.
  TrainerConfig trainer = make_trainer_config(config, Method::PostNorm, scale);
  trainer.quantize = true;
  trainer.quant.levels = 5;
  train_qnn(model, task.train, trainer);

  const Deployment deployment(model, make_device_noise_model(config.device),
                              config.optimization_level);
  QnnForwardOptions options;  // normalization on, quantization off
  QnnForwardCache ideal_cache, noisy_cache;
  qnn_forward_ideal(model, task.test.features, options, &ideal_cache);
  NoisyEvalOptions eval_options;
  eval_options.trajectories = scale.trajectories;
  qnn_forward_noisy(model, deployment, task.test.features, options,
                    eval_options, &noisy_cache);

  const Tensor2D& clean = ideal_cache.normalized[0];
  const Tensor2D& noisy = noisy_cache.normalized[0];
  const QuantConfig quant{5, -2.0, 2.0};
  const Tensor2D clean_q = quantize(clean, quant);
  const Tensor2D noisy_q = quantize(noisy, quant);

  auto zero_fraction = [](const Tensor2D& errors) {
    std::size_t zeros = 0;
    for (const real e : errors.data()) {
      if (std::abs(e) < 1e-9) ++zeros;
    }
    return static_cast<real>(zeros) / static_cast<real>(errors.data().size());
  };

  TextTable table({"stage", "MSE", "SNR", "zero-error fraction"});
  table.add_row({"before quantization", fmt_fixed(mse(clean, noisy), 3),
                 fmt_fixed(snr(clean, noisy), 3),
                 fmt_fixed(zero_fraction(error_map(clean, noisy)), 2)});
  table.add_row({"after quantization", fmt_fixed(mse(clean_q, noisy_q), 3),
                 fmt_fixed(snr(clean_q, noisy_q), 3),
                 fmt_fixed(zero_fraction(error_map(clean_q, noisy_q)), 2)});
  std::cout << table.render();
  std::cout << "(paper: MSE 0.235 -> 0.167, SNR 4.256 -> 6.455)\n";
  return 0;
}
