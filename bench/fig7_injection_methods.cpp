// Figure 7: ablation over noise-injection methods.
// Left: without quantization, gate insertion and measurement-outcome
// perturbation perform similarly, both better than rotation-angle
// perturbation. Right: with quantization, gate insertion wins — directly
// added outcome perturbations are cancelled by quantization.
#include <iostream>

#include "bench_common.hpp"
#include "core/noise_injector.hpp"

using namespace qnat;
using namespace qnat::bench;

namespace {

real train_eval(const BenchConfig& config, const RunScale& scale,
                InjectionMethod method, double noise_factor, bool quantize,
                int levels) {
  const TaskBundle task = load_task(config.task, scale);
  QnnModel model(make_arch(task.info, config));
  const Deployment deployment(model, make_device_noise_model(config.device),
                              config.optimization_level);

  TrainerConfig trainer = make_trainer_config(config, Method::PostNorm, scale);
  trainer.quantize = quantize;
  trainer.quant.levels = levels;
  trainer.injection.method = method;
  trainer.injection.noise_factor = noise_factor;

  if (method == InjectionMethod::MeasurementPerturbation ||
      method == InjectionMethod::AnglePerturbation) {
    // Benchmark the error statistics as the paper does, scaled by the
    // noise factor.
    QnnModel probe(make_arch(task.info, config));
    Rng rng(scale.seed);
    probe.init_weights(rng);
    NoisyEvalOptions bench_eval;
    bench_eval.trajectories = scale.trajectories;
    const auto [mu, sigma] = benchmark_error_stats(
        probe, deployment, task.valid.features, pipeline_options(trainer),
        bench_eval);
    trainer.injection.perturb_mean = mu * noise_factor;
    trainer.injection.perturb_std = sigma * noise_factor;
    if (method == InjectionMethod::AnglePerturbation) {
      trainer.injection.angle_std = calibrate_angle_std(
          probe, task.valid.features, pipeline_options(trainer),
          sigma * noise_factor, rng);
    }
  }

  train_qnn(model, task.train, trainer,
            method == InjectionMethod::GateInsertion ? &deployment : nullptr);
  NoisyEvalOptions eval_options;
  eval_options.trajectories = scale.trajectories;
  return noisy_accuracy(model, deployment, task.test,
                        pipeline_options(trainer), eval_options);
}

}  // namespace

int main() {
  print_header(
      "Figure 7: noise-injection method ablation (MNIST-4 on Belem, 2Bx6L)",
      "left (no quant): gate-insert ~ meas-perturb > angle-perturb; "
      "right (with quant): gate-insert > meas-perturb");
  const RunScale scale = scale_from_env();
  BenchConfig config;
  config.task = "mnist4";
  config.device = "belem";
  config.num_blocks = 2;
  config.layers_per_block = 6;

  // The paper sweeps T over {0.1, 0.5, 1, 1.5}; our pipeline's T also
  // scales the idle-decoherence channels, so the equivalent sweep sits at
  // smaller values (see bench_common.hpp).
  std::cout << "-- left: accuracy vs noise factor T (no quantization) --\n";
  TextTable left({"T", "gate insertion", "meas. perturb", "angle perturb"});
  for (const double t : {0.05, 0.1, 0.3, 0.5}) {
    left.add_row(
        {fmt_fixed(t, 2),
         fmt_fixed(train_eval(config, scale, InjectionMethod::GateInsertion,
                              t, false, 5), 2),
         fmt_fixed(train_eval(config, scale,
                              InjectionMethod::MeasurementPerturbation, t,
                              false, 5), 2),
         fmt_fixed(train_eval(config, scale,
                              InjectionMethod::AnglePerturbation, t, false,
                              5), 2)});
  }
  std::cout << left.render();

  std::cout << "\n-- right: accuracy vs quantization levels (T = 0.1) --\n";
  TextTable right({"levels", "gate insertion", "meas. perturb"});
  for (const int levels : {3, 4, 5, 6}) {
    right.add_row(
        {std::to_string(levels),
         fmt_fixed(train_eval(config, scale, InjectionMethod::GateInsertion,
                              0.1, true, levels), 2),
         fmt_fixed(train_eval(config, scale,
                              InjectionMethod::MeasurementPerturbation, 0.1,
                              true, levels), 2)});
  }
  std::cout << right.render();
  return 0;
}
