// Figure 8 left: accuracy contour over (noise factor T, quantization
// levels) on Fashion-4 / Athens — unimodal along both axes. Figure 8
// right: 2-feature visualization for MNIST-2 on Belem — normalization
// spreads the collapsed baseline features, noise injection widens the
// class margin.
#include <iostream>

#include "bench_common.hpp"

using namespace qnat;
using namespace qnat::bench;

namespace {

/// Trains with the given (T, levels) and returns noisy test accuracy.
real cell_accuracy(const BenchConfig& base, const RunScale& scale, double t,
                   int levels) {
  BenchConfig config = base;
  config.noise_factor = t;
  config.quant_levels = levels;
  return run_method(config, Method::PostQuant, scale).noisy_accuracy;
}

struct Margin {
  real mean_feature1[2];  // per class
  real mean_feature2[2];
  real margin;            // mean signed distance to the f1 = f2 boundary
};

Margin feature_margin(const QnnModel& model, const Deployment& deployment,
                      const Dataset& test, const QnnForwardOptions& pipeline,
                      const NoisyEvalOptions& eval_options) {
  const Tensor2D logits =
      qnn_forward_noisy(model, deployment, test.features, pipeline,
                        eval_options);
  Margin m{};
  int counts[2] = {0, 0};
  real signed_sum = 0.0;
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const int label = test.labels[r];
    m.mean_feature1[label] += logits(r, 0);
    m.mean_feature2[label] += logits(r, 1);
    ++counts[label];
    // Class 0 is "above" the boundary when f1 > f2.
    const real d = logits(r, 0) - logits(r, 1);
    signed_sum += label == 0 ? d : -d;
  }
  for (int c = 0; c < 2; ++c) {
    m.mean_feature1[c] /= counts[c];
    m.mean_feature2[c] /= counts[c];
  }
  m.margin = signed_sum / static_cast<real>(logits.rows());
  return m;
}

}  // namespace

int main() {
  const RunScale scale = scale_from_env();

  print_header(
      "Figure 8 left: accuracy contour over noise factor x quant levels "
      "(Fashion-4 on Athens)",
      "accuracy rises then falls along both axes (unimodal ridge)");
  BenchConfig contour;
  contour.task = "fashion4";
  contour.device = "athens";
  contour.num_blocks = 2;
  contour.layers_per_block = 6;
  // The paper's grid is T x levels = {0.1..1.5} x {3..6}; our T axis sits
  // lower because T also scales idle-decoherence channels here.
  const std::vector<double> factors{0.02, 0.05, 0.1, 0.3};
  const std::vector<int> levels{3, 4, 5, 6};
  TextTable grid({"T \\ levels", "3", "4", "5", "6"});
  for (const double t : factors) {
    std::vector<std::string> row{fmt_fixed(t, 2)};
    for (const int l : levels) {
      row.push_back(fmt_fixed(cell_accuracy(contour, scale, t, l), 2));
    }
    grid.add_row(row);
  }
  std::cout << grid.render();

  print_header(
      "Figure 8 right: feature visualization (MNIST-2 on Belem)",
      "baseline features huddle together; + normalization spreads them; "
      "+ noise injection enlarges the class margin");
  BenchConfig viz;
  viz.task = "mnist2";
  viz.device = "belem";
  const TaskBundle task = load_task(viz.task, scale);
  NoisyEvalOptions eval_options;
  eval_options.trajectories = scale.trajectories;

  TextTable features({"method", "class-0 (f1, f2)", "class-1 (f1, f2)",
                      "margin", "noisy acc"});
  for (const Method method :
       {Method::Baseline, Method::PostNorm, Method::GateInsert}) {
    QnnModel model(make_arch(task.info, viz));
    const Deployment deployment(model, make_device_noise_model(viz.device),
                                viz.optimization_level);
    const TrainerConfig trainer = make_trainer_config(viz, method, scale);
    train_qnn(model, task.train, trainer,
              trainer.injection.method == InjectionMethod::GateInsertion
                  ? &deployment
                  : nullptr);
    const QnnForwardOptions pipeline = pipeline_options(trainer);
    const Margin m =
        feature_margin(model, deployment, task.test, pipeline, eval_options);
    const real acc = noisy_accuracy(model, deployment, task.test, pipeline,
                                    eval_options);
    features.add_row({method_label(method),
                      "(" + fmt_fixed(m.mean_feature1[0], 2) + ", " +
                          fmt_fixed(m.mean_feature2[0], 2) + ")",
                      "(" + fmt_fixed(m.mean_feature1[1], 2) + ", " +
                          fmt_fixed(m.mean_feature2[1], 2) + ")",
                      fmt_fixed(m.margin, 3), fmt_fixed(acc, 2)});
  }
  std::cout << features.render();
  return 0;
}
