// Figure 9: accuracy-gain breakdown — noise injection alone, quantization
// alone, and both combined (normalization always on). The paper reports
// ~9% from each individually and ~17% jointly.
#include <iostream>

#include "bench_common.hpp"

using namespace qnat;
using namespace qnat::bench;

namespace {

real run_variant(const BenchConfig& config, const RunScale& scale,
                 bool inject, bool quantize) {
  // These effects are a few accuracy points; average over seeds so the
  // breakdown is not dominated by a single initialization.
  const TaskBundle task = load_task(config.task, scale);
  real total = 0.0;
  const std::vector<std::uint64_t> seeds{scale.seed, scale.seed + 1,
                                         scale.seed + 2};
  for (const std::uint64_t seed : seeds) {
    QnnModel model(make_arch(task.info, config));
    const Deployment deployment(model,
                                make_device_noise_model(config.device),
                                config.optimization_level);
    TrainerConfig trainer =
        make_trainer_config(config, Method::PostNorm, scale);
    trainer.seed = seed * 31 + 7;
    trainer.quantize = quantize;
    trainer.quant.levels = config.quant_levels;
    if (inject) {
      trainer.injection.method = InjectionMethod::GateInsertion;
      trainer.injection.noise_factor = config.noise_factor;
    }
    train_qnn(model, task.train, trainer, inject ? &deployment : nullptr);
    NoisyEvalOptions eval_options;
    eval_options.trajectories = scale.trajectories;
    total += noisy_accuracy(model, deployment, task.test,
                            pipeline_options(trainer), eval_options);
  }
  return total / static_cast<real>(seeds.size());
}

}  // namespace

int main() {
  print_header(
      "Figure 9: breakdown of noise injection / quantization gains "
      "(MNIST-4 on Belem, normalization always on, 3-seed average)",
      "each technique alone improves over norm-only; combined is best");
  const RunScale scale = scale_from_env();
  BenchConfig config;
  config.task = "mnist4";
  config.device = "belem";
  config.num_blocks = 2;
  config.layers_per_block = 6;

  const real none = run_variant(config, scale, false, false);
  const real inject_only = run_variant(config, scale, true, false);
  const real quant_only = run_variant(config, scale, false, true);
  const real both = run_variant(config, scale, true, true);

  TextTable table({"variant", "noisy acc", "gain vs norm-only"});
  table.add_row({"normalization only", fmt_fixed(none, 2), "-"});
  table.add_row({"+ noise injection", fmt_fixed(inject_only, 2),
                 fmt_fixed(inject_only - none, 2)});
  table.add_row({"+ quantization", fmt_fixed(quant_only, 2),
                 fmt_fixed(quant_only - none, 2)});
  table.add_row({"+ both", fmt_fixed(both, 2), fmt_fixed(both - none, 2)});
  std::cout << table.render();
  return 0;
}
