// Appendix A.3.1 future-work extension: fast fine-tuning to an updated
// noise model. The paper notes that hardware-specific noise-aware models
// need retraining whenever the calibration drifts, and proposes exploring
// cheap fine-tuning instead. We train noise-aware on a device, drift the
// calibration (scaled rates + fresh coherent signatures), then compare:
//  (a) deploying the stale model as-is,
//  (b) fine-tuning it for a few epochs on the drifted model (warm start),
//  (c) retraining from scratch on the drifted model.
// Fine-tuning should recover most of (c)'s accuracy at a fraction of the
// epochs.
#include <iostream>

#include "bench_common.hpp"

using namespace qnat;
using namespace qnat::bench;

namespace {

/// Drifted calibration: rates scaled and coherent signatures re-drawn.
NoiseModel drifted(const NoiseModel& model, std::uint64_t seed) {
  NoiseModel out = model.scaled(1.3);
  Rng rng(seed);
  for (QubitIndex q = 0; q < out.num_qubits(); ++q) {
    out.set_coherent_overrotation(
        q, model.coherent_overrotation(q) + rng.gaussian(0.0, 0.02));
  }
  for (const auto& [a, b] : model.coupling_map()) {
    out.set_coherent_zz(a, b,
                        model.coherent_zz(a, b) + rng.gaussian(0.0, 0.06));
  }
  return out;
}

}  // namespace

int main() {
  print_header(
      "Extension (appendix A.3.1): fine-tuning to a drifted noise model "
      "(MNIST-4 on Belem)",
      "stale model degrades on the drifted device; a few fine-tuning "
      "epochs recover most of the full-retrain accuracy");
  const RunScale scale = scale_from_env();

  BenchConfig config;
  config.task = "mnist4";
  config.device = "belem";
  config.num_blocks = 2;
  config.layers_per_block = 6;
  const TaskBundle task = load_task(config.task, scale);

  const NoiseModel original = make_device_noise_model(config.device);
  const NoiseModel updated = drifted(original, scale.seed * 3 + 1);

  // Train noise-aware on the original calibration.
  QnnModel model(make_arch(task.info, config));
  const Deployment original_dep(model, original, config.optimization_level);
  TrainerConfig trainer = make_trainer_config(config, Method::GateInsert,
                                              scale);
  train_qnn(model, task.train, trainer, &original_dep);

  const QnnForwardOptions pipeline = pipeline_options(trainer);
  NoisyEvalOptions eval_options;
  eval_options.trajectories = scale.trajectories;

  const Deployment drift_dep(model, updated, config.optimization_level);
  const real on_original = noisy_accuracy(model, original_dep, task.test,
                                          pipeline, eval_options);
  const real stale = noisy_accuracy(model, drift_dep, task.test, pipeline,
                                    eval_options);

  // (b) warm-start fine-tune for a fraction of the epochs.
  QnnModel finetuned = model;
  const Deployment finetune_dep(finetuned, updated,
                                config.optimization_level);
  TrainerConfig finetune_config = trainer;
  finetune_config.warm_start = true;
  finetune_config.epochs = std::max(3, scale.epochs / 3);
  finetune_config.adam.learning_rate = 1e-2;  // gentler than full training
  train_qnn(finetuned, task.train, finetune_config, &finetune_dep);
  const real adapted = noisy_accuracy(finetuned, finetune_dep, task.test,
                                      pipeline, eval_options);

  // (c) cold start with the same small budget — the fair comparison for
  // the warm start's value.
  QnnModel cold(make_arch(task.info, config));
  const Deployment cold_dep(cold, updated, config.optimization_level);
  TrainerConfig cold_config = finetune_config;
  cold_config.warm_start = false;
  train_qnn(cold, task.train, cold_config, &cold_dep);
  const real cold_acc = noisy_accuracy(cold, cold_dep, task.test, pipeline,
                                       eval_options);

  // (d) full retrain on the drifted calibration.
  QnnModel retrained(make_arch(task.info, config));
  const Deployment retrain_dep(retrained, updated,
                               config.optimization_level);
  train_qnn(retrained, task.train, trainer, &retrain_dep);
  const real retrain = noisy_accuracy(retrained, retrain_dep, task.test,
                                      pipeline, eval_options);

  TextTable table({"configuration", "epochs", "accuracy"});
  table.add_row({"trained on original, eval original",
                 std::to_string(trainer.epochs), fmt_fixed(on_original, 2)});
  table.add_row({"stale model on drifted device", "0", fmt_fixed(stale, 2)});
  table.add_row({"fine-tuned on drifted device (warm start)",
                 std::to_string(finetune_config.epochs),
                 fmt_fixed(adapted, 2)});
  table.add_row({"cold start, same small budget",
                 std::to_string(cold_config.epochs), fmt_fixed(cold_acc, 2)});
  table.add_row({"retrained on drifted device",
                 std::to_string(trainer.epochs), fmt_fixed(retrain, 2)});
  std::cout << table.render();
  return 0;
}
