// Full-paper sweep driver for the data-parallel training engine.
//
// Two phases, one consolidated report (BENCH_train.json, schema
// qnat.train_bench.v1):
//
//   1. Throughput: the deep-circuit MNIST-4 architecture (2 blocks x 6
//      U3+CU3 layers — the mnist4_noise_aware example model) trained
//      under GateInsertion noise, once with the legacy single-loop
//      trainer (train_qnn, the pre-engine baseline: per-sample adjoint
//      without fused constant runs or prepared insertion plans) and
//      then with the data-parallel engine (train_qnn_parallel,
//      micro-batch 2 -> 8 units per step) at 1/2/4/8 workers.
//      samples/sec = epochs x train-set size / wall seconds. The
//      engine's determinism contract is asserted inline: an FNV-1a
//      fingerprint over the trained weight bytes must be identical at
//      every worker count (the legacy run is numerically different by
//      design — fused reassociation — and is reported, not asserted).
//   2. Accuracy sweep: all eight paper tasks x six device presets
//      trained noise-aware with the parallel engine (standard 2x2
//      architecture), recording final noise-free train accuracy per
//      cell. This is the "does the engine actually train" battery —
//      every cell of the paper's task/device grid goes through the
//      data-parallel path.
//
// Scale via the usual env knobs (QNAT_SAMPLES, QNAT_EPOCHS,
// QNAT_SAMPLES_10WAY, QNAT_EPOCHS_10WAY, QNAT_SEED); the committed
// BENCH_train.json is generated at reduced scale so the sweep stays in
// CI budget. `--out FILE` overrides the report path.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/metrics.hpp"
#include "common/thread_pool.hpp"
#include "core/parallel_trainer.hpp"

using namespace qnat;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// FNV-1a over the raw weight bytes: byte-identity, not closeness.
std::uint64_t weight_fingerprint(const ParamVector& weights) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const real w : weights) {
    std::uint64_t bits = 0;
    static_assert(sizeof(real) == sizeof(bits));
    std::memcpy(&bits, &w, sizeof(bits));
    for (int b = 0; b < 8; ++b) {
      hash ^= (bits >> (8 * b)) & 0xffu;
      hash *= 1099511628211ull;
    }
  }
  return hash;
}

std::string hex64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// The deep-circuit throughput model: mnist4 at 2 blocks x 6 layers,
/// the same architecture the mnist4_noise_aware example deploys.
QnnArchitecture deep_arch(const TaskInfo& info) {
  QnnArchitecture arch;
  arch.num_qubits = info.num_qubits;
  arch.num_blocks = 2;
  arch.layers_per_block = 6;
  arch.input_features = info.feature_dim;
  arch.num_classes = info.num_classes;
  return arch;
}

TrainerConfig throughput_config(const bench::RunScale& scale) {
  TrainerConfig config;
  config.epochs = scale.epochs;
  config.batch_size = scale.batch_size;
  config.seed = scale.seed;
  config.normalize = true;
  config.injection.method = InjectionMethod::GateInsertion;
  config.injection.noise_factor = 0.1;
  config.injection.readout = true;
  return config;
}

struct TimedRun {
  double seconds = 0.0;
  double samples_per_sec = 0.0;
  std::uint64_t fingerprint = 0;
  real final_loss = 0.0;
};

/// Best of `reps` identical runs: external interference only ever slows
/// a run down, so min-seconds is the robust estimator (same methodology
/// as bench_serve_load). Every rep must produce the same weight bytes —
/// training is deterministic — which the loop also asserts.
TimedRun timed_train(const TaskBundle& task, const NoiseModel& noise,
                     const TrainerConfig& config, bool parallel, int reps) {
  TimedRun best;
  for (int rep = 0; rep < reps; ++rep) {
    QnnModel model(deep_arch(task.info));
    const Deployment deployment(model, noise, 2);
    const double start = now_seconds();
    const TrainResult result =
        parallel ? train_qnn_parallel(model, task.train, config, &deployment)
                 : train_qnn(model, task.train, config, &deployment);
    const double seconds = now_seconds() - start;
    const std::uint64_t fingerprint = weight_fingerprint(model.weights());
    if (rep > 0 && fingerprint != best.fingerprint) {
      std::fprintf(stderr, "FAIL: rep %d produced different weights\n", rep);
      std::exit(1);
    }
    if (rep == 0 || seconds < best.seconds) {
      best.seconds = seconds;
      best.samples_per_sec = static_cast<double>(config.epochs) *
                             static_cast<double>(task.train.size()) / seconds;
    }
    best.fingerprint = fingerprint;
    best.final_loss = result.epoch_loss.back();
  }
  return best;
}

struct SweepCell {
  std::string task;
  std::string device;
  real final_loss = 0.0;
  real train_accuracy = 0.0;
  double seconds = 0.0;
};

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<bench::Knob> extra = {
      {"--out", "FILE", "", "report path (default BENCH_train.json)"},
      {"--micro", "N", "QNAT_TRAIN_MICRO",
       "micro-batch size for the throughput phase (default 2: 8 units "
       "per 16-sample step)"},
      {"--reps", "N", "QNAT_TRAIN_REPS",
       "throughput reps per configuration, best-of (default 3)"},
  };
  const int threads =
      bench::configure_run("bench_full_sweep", argc, argv, extra);
  std::string out_path = "BENCH_train.json";
  std::size_t micro = 2;
  int reps = 3;
  if (const char* env = std::getenv("QNAT_TRAIN_MICRO")) {
    micro = static_cast<std::size_t>(std::atoi(env));
  }
  if (const char* env = std::getenv("QNAT_TRAIN_REPS")) {
    reps = std::atoi(env);
  }
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0) out_path = argv[i + 1];
    if (std::strcmp(argv[i], "--micro") == 0) {
      micro = static_cast<std::size_t>(std::atoi(argv[i + 1]));
    }
    if (std::strcmp(argv[i], "--reps") == 0) reps = std::atoi(argv[i + 1]);
  }
  if (reps < 1) reps = 1;
  const bench::RunScale scale = bench::scale_from_env();
  bench::print_header(
      "Full-paper training sweep: data-parallel engine vs single loop",
      "parallel engine >= 2.5x single-loop samples/sec on the deep "
      "circuit; weights byte-identical at every worker count");

  // ---- Phase 1: throughput on the deep circuit ----
  const TaskBundle deep_task = make_task("mnist4", scale.samples_per_class,
                                         scale.seed);
  const NoiseModel deep_noise = make_device_noise_model("belem");
  TrainerConfig config = throughput_config(scale);

  std::printf("deep circuit: mnist4 2x6, %zu train samples, %d epochs, "
              "batch %zu\n",
              deep_task.train.size(), config.epochs, config.batch_size);

  // Legacy single-loop baseline: per-sample adjoint, re-inserted error
  // gates every step, no fused constant runs.
  const TimedRun legacy =
      timed_train(deep_task, deep_noise, config, /*parallel=*/false, reps);
  std::printf("  single-loop      %7.1f samples/s  (%.2fs, loss %.4f)\n",
              legacy.samples_per_sec, legacy.seconds, legacy.final_loss);

  // Data-parallel engine at increasing worker counts. The default
  // micro-batch 2 gives 8 units per 16-sample step — enough slots for
  // 8 workers.
  config.micro_batch_size = micro;
  struct WorkerPoint {
    int workers;
    TimedRun run;
  };
  std::vector<WorkerPoint> points;
  for (const int workers : {1, 2, 4, 8}) {
    TrainerConfig parallel_config = config;
    parallel_config.workers = workers;
    points.push_back(
        {workers, timed_train(deep_task, deep_noise, parallel_config,
                              /*parallel=*/true, reps)});
    const TimedRun& run = points.back().run;
    std::printf("  parallel x%d      %7.1f samples/s  (%.2fs, %.2fx, "
                "weights %s)\n",
                workers, run.samples_per_sec, run.seconds,
                run.samples_per_sec / legacy.samples_per_sec,
                hex64(run.fingerprint).c_str());
  }
  set_num_threads(0);  // restore the auto-sized pool for phase 2

  // Determinism contract: identical weights at every worker count.
  bool weights_identical = true;
  for (const WorkerPoint& point : points) {
    if (point.run.fingerprint != points.front().run.fingerprint) {
      weights_identical = false;
      std::fprintf(stderr,
                   "FAIL: weights at %d workers diverge from 1 worker\n",
                   point.workers);
    }
  }
  const TimedRun& best = points.back().run;
  const double speedup = best.samples_per_sec / legacy.samples_per_sec;
  std::printf("throughput: %.2fx vs single loop at %d workers, weights %s\n",
              speedup, points.back().workers,
              weights_identical ? "byte-identical" : "DIVERGED");

  // ---- Phase 2: 8 tasks x 6 devices through the parallel engine ----
  const std::vector<std::string> tasks = {
      "mnist2",  "mnist4",  "mnist10", "fashion2",
      "fashion4", "fashion10", "cifar2", "vowel4"};
  const std::vector<std::string> devices = {
      "santiago", "athens", "lima", "quito", "belem", "yorktown"};

  std::vector<SweepCell> cells;
  std::printf("\naccuracy sweep (%zu tasks x %zu devices):\n", tasks.size(),
              devices.size());
  for (const std::string& task_name : tasks) {
    const TaskBundle task = bench::load_task(task_name, scale);
    bench::BenchConfig bench_config;
    bench_config.task = task_name;
    for (const std::string& device : devices) {
      bench_config.device = device;
      TrainerConfig cell_config = bench::make_trainer_config(
          bench_config, bench::Method::PostQuant, scale);
      QnnModel model(bench::make_arch(task.info, bench_config));
      // The 10-qubit tasks overflow the 5-qubit presets; the overload
      // tiles the preset's calibration onto a device of the model width.
      const Deployment deployment(
          model, make_device_noise_model(device, task.info.num_qubits), 2);
      const double start = now_seconds();
      const TrainResult result =
          train_qnn_parallel(model, task.train, cell_config, &deployment);
      SweepCell cell;
      cell.task = task_name;
      cell.device = device;
      cell.final_loss = result.epoch_loss.back();
      cell.train_accuracy = result.final_train_accuracy;
      cell.seconds = now_seconds() - start;
      cells.push_back(cell);
      std::printf("  %-10s %-9s acc %.3f  loss %.4f  (%.2fs)\n",
                  task_name.c_str(), device.c_str(), cell.train_accuracy,
                  cell.final_loss, cell.seconds);
    }
  }

  // ---- Report ----
  const metrics::RunManifest manifest =
      bench::current_manifest("bench_full_sweep");
  std::ostringstream json;
  json.precision(6);
  json << std::fixed;
  json << "{\n";
  json << "  \"schema\": \"qnat.train_bench.v1\",\n";
  json << "  \"manifest\": {\"label\": \"" << json_escape(manifest.label)
       << "\", \"seed\": " << manifest.seed
       << ", \"threads\": " << manifest.threads << ", \"simd\": "
       << (manifest.simd ? "true" : "false") << ", \"backend\": \""
       << json_escape(manifest.backend.empty() ? "scalar" : manifest.backend)
       << "\", \"git\": \""
       << json_escape(manifest.git.empty() ? metrics::build_version()
                                           : manifest.git)
       << "\"},\n";
  json << "  \"config\": {\"samples_per_class\": " << scale.samples_per_class
       << ", \"samples_per_class_10way\": " << scale.samples_per_class_10way
       << ", \"epochs\": " << scale.epochs
       << ", \"epochs_10way\": " << scale.epochs_10way
       << ", \"batch_size\": " << scale.batch_size
       << ", \"micro_batch_size\": " << config.micro_batch_size
       << ", \"reps\": " << reps
       << ", \"deep_arch\": \"mnist4 2x6\""
       << ", \"train_samples\": " << deep_task.train.size() << "},\n";
  json << "  \"throughput\": {\n";
  json << "    \"single_loop\": {\"samples_per_sec\": "
       << legacy.samples_per_sec << ", \"seconds\": " << legacy.seconds
       << ", \"final_loss\": " << legacy.final_loss << "},\n";
  json << "    \"parallel\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const WorkerPoint& point = points[i];
    json << "      {\"workers\": " << point.workers
         << ", \"samples_per_sec\": " << point.run.samples_per_sec
         << ", \"seconds\": " << point.run.seconds
         << ", \"speedup_vs_single_loop\": "
         << point.run.samples_per_sec / legacy.samples_per_sec
         << ", \"weight_fingerprint\": \"" << hex64(point.run.fingerprint)
         << "\"}" << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "    ],\n";
  json << "    \"weights_identical_across_workers\": "
       << (weights_identical ? "true" : "false") << ",\n";
  json << "    \"best_speedup_vs_single_loop\": " << speedup << "\n";
  json << "  },\n";
  json << "  \"sweep\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const SweepCell& cell = cells[i];
    json << "    {\"task\": \"" << json_escape(cell.task)
         << "\", \"device\": \"" << json_escape(cell.device)
         << "\", \"final_train_accuracy\": " << cell.train_accuracy
         << ", \"final_loss\": " << cell.final_loss
         << ", \"seconds\": " << cell.seconds << "}"
         << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  json << "  ]\n";
  json << "}\n";

  std::ofstream out(out_path);
  out << json.str();
  std::cout << "\nwrote " << out_path << " (threads=" << threads << ")\n";
  return weights_identical ? 0 : 1;
}
