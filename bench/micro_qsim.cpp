// Microbenchmarks for the simulation/gradient substrate (google-benchmark):
// statevector gate throughput, adjoint vs parameter-shift vs finite
// difference gradient cost, error-gate insertion, and transpilation.
#include <benchmark/benchmark.h>

#include <string>

#include "bench_common.hpp"
#include "common/metrics.hpp"
#include "common/thread_pool.hpp"
#include "compile/transpiler.hpp"
#include "core/evaluator.hpp"
#include "core/design_space.hpp"
#include "grad/adjoint.hpp"
#include "grad/finite_diff.hpp"
#include "grad/parameter_shift.hpp"
#include "noise/device_presets.hpp"
#include "noise/error_inserter.hpp"
#include "qsim/backend/backend.hpp"
#include "qsim/execution.hpp"
#include "qsim/program.hpp"

namespace {

using namespace qnat;

Circuit layered_circuit(int num_qubits, int layers) {
  Circuit c(num_qubits, 0);
  append_trainable_layers(c, DesignSpace::U3CU3, layers);
  return c;
}

ParamVector params_for(const Circuit& c) {
  ParamVector p(static_cast<std::size_t>(c.num_params()));
  Rng rng(7);
  for (auto& v : p) v = rng.uniform(-kPi, kPi);
  return p;
}

void BM_StateVector1QGate(benchmark::State& state) {
  const int nq = static_cast<int>(state.range(0));
  StateVector sv(nq);
  const CMatrix m = gate_matrix(GateType::SX, {});
  QubitIndex q = 0;
  for (auto _ : state) {
    sv.apply_1q(m, q);
    q = (q + 1) % nq;
  }
  state.SetItemsProcessed(state.iterations() * (1LL << nq));
}
BENCHMARK(BM_StateVector1QGate)->Arg(4)->Arg(10)->Arg(16);

void BM_StateVector2QGate(benchmark::State& state) {
  const int nq = static_cast<int>(state.range(0));
  StateVector sv(nq);
  const CMatrix m = gate_matrix(GateType::CX, {});
  QubitIndex q = 0;
  for (auto _ : state) {
    sv.apply_2q(m, q, (q + 1) % nq);
    q = (q + 1) % nq;
  }
  state.SetItemsProcessed(state.iterations() * (1LL << nq));
}
BENCHMARK(BM_StateVector2QGate)->Arg(4)->Arg(10)->Arg(16);

void BM_ForwardPass(benchmark::State& state) {
  const Circuit c = layered_circuit(static_cast<int>(state.range(0)), 4);
  const ParamVector p = params_for(c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure_expectations(c, p));
  }
}
BENCHMARK(BM_ForwardPass)->Arg(4)->Arg(10);

void BM_AdjointGradient(benchmark::State& state) {
  const Circuit c = layered_circuit(static_cast<int>(state.range(0)), 4);
  const ParamVector p = params_for(c);
  const std::vector<real> cot(static_cast<std::size_t>(c.num_qubits()), 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(adjoint_vjp(c, p, cot));
  }
}
BENCHMARK(BM_AdjointGradient)->Arg(4)->Arg(10);

void BM_ParameterShiftGradient(benchmark::State& state) {
  const Circuit c = layered_circuit(4, 2);
  const ParamVector p = params_for(c);
  const std::vector<real> cot(4, 1.0);
  const CircuitExecutor exec = make_ideal_executor();
  for (auto _ : state) {
    benchmark::DoNotOptimize(parameter_shift_gradient(c, p, cot, exec));
  }
}
BENCHMARK(BM_ParameterShiftGradient);

void BM_FiniteDiffGradient(benchmark::State& state) {
  const Circuit c = layered_circuit(4, 2);
  const ParamVector p = params_for(c);
  const std::vector<real> cot(4, 1.0);
  const CircuitExecutor exec = make_ideal_executor();
  for (auto _ : state) {
    benchmark::DoNotOptimize(finite_diff_gradient(c, p, cot, exec));
  }
}
BENCHMARK(BM_FiniteDiffGradient);

// --- gate fusion + specialized kernels: fused vs unfused deep circuit ---
// A 10-qubit, 50-layer IBM-basis-style circuit (RZ·SX·RZ per qubit, CX
// ring per layer). The fused program merges each RZ·SX·RZ triple into one
// 2x2 op and runs CX through the permutation kernel; the acceptance bar
// is >= 1.5x single-thread over the unfused program. "Dense" is the raw
// unclassified apply_1q/apply_2q path for reference.

Circuit deep_device_circuit(int num_qubits, int layers) {
  Circuit c(num_qubits, 0);
  Rng rng(13);
  for (int l = 0; l < layers; ++l) {
    for (QubitIndex q = 0; q < num_qubits; ++q) {
      c.append(Gate(GateType::RZ, {q},
                    {ParamExpr::constant(rng.uniform(-kPi, kPi))}));
      c.sx(q);
      c.append(Gate(GateType::RZ, {q},
                    {ParamExpr::constant(rng.uniform(-kPi, kPi))}));
    }
    for (QubitIndex q = 0; q + 1 < num_qubits; q += 2) c.cx(q, q + 1);
    for (QubitIndex q = 1; q + 1 < num_qubits; q += 2) c.cx(q, q + 1);
  }
  return c;
}

void BM_DeepCircuitDense(benchmark::State& state) {
  const Circuit c = deep_device_circuit(static_cast<int>(state.range(0)), 50);
  for (auto _ : state) {
    StateVector sv(c.num_qubits());
    for (const auto& gate : c.gates()) {
      const CMatrix m = gate.matrix(gate.eval_params({}));
      if (gate.num_qubits() == 1) {
        sv.apply_1q(m, gate.qubits[0]);
      } else {
        sv.apply_2q(m, gate.qubits[0], gate.qubits[1]);
      }
    }
    benchmark::DoNotOptimize(sv.amplitude(0));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(c.size()));
}
BENCHMARK(BM_DeepCircuitDense)->Arg(10);

void BM_DeepCircuitUnfused(benchmark::State& state) {
  const Circuit c = deep_device_circuit(static_cast<int>(state.range(0)), 50);
  const CompiledProgram program =
      compile_program(c, FusionOptions{.fuse = false});
  for (auto _ : state) {
    StateVector sv(c.num_qubits());
    program.run(sv, {});
    benchmark::DoNotOptimize(sv.amplitude(0));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(c.size()));
}
BENCHMARK(BM_DeepCircuitUnfused)->Arg(10);

void BM_DeepCircuitFused(benchmark::State& state) {
  const Circuit c = deep_device_circuit(static_cast<int>(state.range(0)), 50);
  const CompiledProgram program = compile_program(c);
  for (auto _ : state) {
    StateVector sv(c.num_qubits());
    program.run(sv, {});
    benchmark::DoNotOptimize(sv.amplitude(0));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(c.size()));
}
BENCHMARK(BM_DeepCircuitFused)->Arg(10);

// --- execution backends: the same fused deep circuit per backend ---
// Single-thread apples-to-apples pair for BENCH_simd.json; the
// acceptance bar is >= 2x (vectorized over scalar) on AVX2 hardware.
// The label records which backend actually ran, so CI can skip the
// ratio assert on machines where the vectorized leg fell back to
// scalar because no vectorized backend is available.

/// Name of the best vectorized backend runnable here, or "scalar".
std::string best_vectorized_backend() {
  using qnat::backend::BackendRegistry;
  for (const std::string& name : qnat::backend::available_backends()) {
    const auto* b = BackendRegistry::instance().find(name);
    if (b != nullptr && b->caps().vectorized) return name;
  }
  return "scalar";
}

void run_fused_deep_circuit_on(benchmark::State& state,
                               const std::string& backend_name) {
  const Circuit c = deep_device_circuit(static_cast<int>(state.range(0)), 50);
  const CompiledProgram program = compile_program(c);
  const std::string prev(qnat::backend::active().name());
  qnat::backend::set_active(backend_name);
  const std::string ran(qnat::backend::active().name());
  for (auto _ : state) {
    StateVector sv(c.num_qubits());
    program.run(sv, {});
    benchmark::DoNotOptimize(sv.amplitude(0));
  }
  qnat::backend::set_active(prev);
  state.SetLabel(ran);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(c.size()));
}

void BM_DeepCircuitFusedScalar(benchmark::State& state) {
  run_fused_deep_circuit_on(state, "scalar");
}
BENCHMARK(BM_DeepCircuitFusedScalar)->Arg(10);

void BM_DeepCircuitFusedSimd(benchmark::State& state) {
  run_fused_deep_circuit_on(state, best_vectorized_backend());
}
BENCHMARK(BM_DeepCircuitFusedSimd)->Arg(10);

// Reduced-precision legs of the same workload. The f32 backends convert
// the f64 state at the program boundary and execute every kernel in
// float32; the acceptance bar in CI bench-smoke is >= 1.5x over the f64
// AVX2 leg for avx2-f32 (when its label reports it actually ran).

void BM_DeepCircuitFusedF32(benchmark::State& state) {
  run_fused_deep_circuit_on(state, "f32");
}
BENCHMARK(BM_DeepCircuitFusedF32)->Arg(10);

void BM_DeepCircuitFusedAvx2F32(benchmark::State& state) {
  const auto* b =
      qnat::backend::BackendRegistry::instance().find("avx2-f32");
  // Fall back (and label the run) "f32" where AVX2 is unavailable so CI
  // can skip the throughput assert there, mirroring the Simd leg.
  run_fused_deep_circuit_on(
      state, (b != nullptr && b->available()) ? "avx2-f32" : "f32");
}
BENCHMARK(BM_DeepCircuitFusedAvx2F32)->Arg(10);

void BM_DeepCircuitFusedMetricsOn(benchmark::State& state) {
  // Same workload as BM_DeepCircuitFused but with metrics recording
  // enabled — the <3% instrumentation-overhead budget is the ratio of
  // this benchmark to the plain fused one (asserted in CI bench-smoke).
  const Circuit c = deep_device_circuit(static_cast<int>(state.range(0)), 50);
  const CompiledProgram program = compile_program(c);
  metrics::set_enabled(true);
  for (auto _ : state) {
    StateVector sv(c.num_qubits());
    program.run(sv, {});
    benchmark::DoNotOptimize(sv.amplitude(0));
  }
  metrics::set_enabled(false);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(c.size()));
}
BENCHMARK(BM_DeepCircuitFusedMetricsOn)->Arg(10);

void BM_DeepCircuitCompile(benchmark::State& state) {
  // Compile cost (amortized away by the program cache in real runs).
  const Circuit c = deep_device_circuit(static_cast<int>(state.range(0)), 50);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compile_program(c));
  }
}
BENCHMARK(BM_DeepCircuitCompile)->Arg(10);

void BM_ErrorInsertion(benchmark::State& state) {
  const NoiseModel model = make_device_noise_model("yorktown");
  const Circuit c = [&] {
    const Circuit logical = layered_circuit(4, 8);
    return transpile(logical, model, 2).circuit;
  }();
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(insert_error_gates(c, model, 1.0, rng));
  }
}
BENCHMARK(BM_ErrorInsertion);

void BM_Transpile(benchmark::State& state) {
  const NoiseModel model = make_device_noise_model("yorktown");
  const Circuit c = layered_circuit(4, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(transpile(c, model,
                                       static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_Transpile)->Arg(0)->Arg(2)->Arg(3);

void BM_ShotSampling(benchmark::State& state) {
  const Circuit c = layered_circuit(4, 4);
  const ParamVector p = params_for(c);
  Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        measure_expectations_shots(c, p, rng, 8192));
  }
}
BENCHMARK(BM_ShotSampling);

// --- parallel batch engine: serial vs parallel wall-clock ---
// Results are bit-identical across Arg values (the thread count); only
// time/iteration changes. On a single-core container every Arg reports
// the same time — run on a multi-core host to see the scaling.

Tensor2D random_batch(std::size_t batch, int features) {
  Tensor2D inputs(batch, static_cast<std::size_t>(features));
  Rng rng(5);
  for (auto& v : inputs.data()) v = rng.uniform(0.0, kPi);
  return inputs;
}

void BM_NoisyBatchForward(benchmark::State& state) {
  set_num_threads(static_cast<int>(state.range(0)));
  QnnArchitecture arch;
  arch.num_qubits = 4;
  arch.num_blocks = 2;
  arch.layers_per_block = 2;
  arch.input_features = 16;
  arch.num_classes = 4;
  QnnModel model(arch);
  Rng rng(3);
  model.init_weights(rng);
  const Deployment deployment(model, make_device_noise_model("yorktown"), 2);
  const Tensor2D inputs = random_batch(16, arch.input_features);
  QnnForwardOptions pipeline;
  NoisyEvalOptions eval;
  eval.mode = NoiseEvalMode::Trajectories;
  eval.trajectories = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        qnn_forward_noisy(model, deployment, inputs, pipeline, eval));
  }
  set_num_threads(0);
}
BENCHMARK(BM_NoisyBatchForward)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_ParameterShiftParallel(benchmark::State& state) {
  set_num_threads(static_cast<int>(state.range(0)));
  Circuit c(6, 0);
  append_trainable_layers(c, DesignSpace::U3CU3, 4);
  const ParamVector p = params_for(c);
  const std::vector<real> cotangent(6, 1.0);
  const CircuitExecutor executor = make_ideal_executor();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        parameter_shift_gradient(c, p, cotangent, executor));
  }
  set_num_threads(0);
}
BENCHMARK(BM_ParameterShiftParallel)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

}  // namespace

// Custom main (instead of benchmark::benchmark_main): applies the shared
// bench knobs (--threads N, --backend NAME, --metrics-out / --trace-out)
// via configure_run and embeds the run manifest into the
// google-benchmark JSON context as qnat_* keys, so BENCH_micro_qsim.json
// and BENCH_simd.json carry the same provenance block as a metrics
// snapshot (CI's bench gates assert on it).
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  qnat::bench::configure_run("micro_qsim", argc, argv);
  const qnat::metrics::RunManifest manifest =
      qnat::bench::current_manifest("micro_qsim");
  benchmark::AddCustomContext("qnat_label", manifest.label);
  benchmark::AddCustomContext("qnat_seed", std::to_string(manifest.seed));
  benchmark::AddCustomContext("qnat_threads",
                              std::to_string(manifest.threads));
  benchmark::AddCustomContext("qnat_fused", manifest.fused ? "true" : "false");
  benchmark::AddCustomContext("qnat_simd", manifest.simd ? "avx2" : "scalar");
  benchmark::AddCustomContext("qnat_backend", manifest.backend);
  benchmark::AddCustomContext("qnat_git", qnat::metrics::build_version());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
