// Load-test harness for the inference serving runtime.
//
// Three phases against registered 4-qubit models:
//
//   1. Throughput: the single-request baseline is a closed-loop client
//      with one request in flight at a time — submit, wait for the
//      response, repeat — against a server with batching disabled
//      (max_batch 1, no straggler wait, so the baseline never pays the
//      batcher's coalescing delay). The batched run drives the same
//      request set as a saturating burst at the configured cap
//      (default 32). Request payloads are materialized before the
//      clock starts and moved into submit() — payload construction is
//      client work, not serving cost. Each mode runs `--serve-reps`
//      times and reports the best rep: external interference only ever
//      slows a run down, so best-of-N is the robust estimator of what
//      the server can actually sustain.
//   2. Latency (open-loop Poisson arrivals): requests arrive at a fixed
//      rate regardless of completions — the arrival process does not
//      slow down when the server does, so queueing delay is measured
//      honestly. p50/p95/p99 come from the serve.latency_seconds
//      histogram via metrics::percentiles.
//
//   3. High-rate fleet overload: two tenants (weights 3:1) on a sharded
//      server (--serve-shards, default cores clamped to 2..4). First
//      an uncontended
//      interactive-only run measures the baseline interactive p99
//      (best of three reps); then an open-loop producer floods
//      batch-class traffic in paced bursts at a rate chosen to
//      overload the fleet (default: 3x batched throughput) while a
//      second producer offers a minority interactive stream under the
//      same Poisson arrival process the baseline used. Tickets are
//      dropped at submission — the phase quiesces by polling stats
//      until every admitted request reached a terminal state. Reported:
//      per-class percentiles from serve.latency_seconds.{interactive,
//      batch}, mean batch size under pressure, steal and shed counts,
//      and the contended-vs-uncontended interactive p99 ratio (the
//      SLO-shedding headline: batch sheds so interactive p99 holds).
//
// With --serve-artifact-dir DIR a warmup phase runs first: one cold
// ModelRegistry::add (transpile+fuse+bind, writes the QNATSRV bundle)
// against one warm add on a fresh registry that loads the bundle and
// skips compilation; the speedup and the serve.artifact.* counters go
// into the report's "warmup" section.
//
// Emits BENCH_serve.json (schema qnat.serve_bench.v2) with the run
// manifest, the phases' numbers, and the rejection/shed/deadline
// counters.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "qsim/program.hpp"
#include "serve/replay.hpp"
#include "serve/scheduler.hpp"

using namespace qnat;
using namespace qnat::serve;

namespace {

struct ServeKnobs {
  int requests = 2048;     // burst size per throughput run
  int max_batch = 32;      // batched-phase micro-batch cap
  int reps = 5;            // throughput reps per mode (best-of)
  double rate = 500.0;     // open-loop arrival rate, requests/s
  double duration = 3.0;   // open-loop phase length, seconds
  int queue_depth = 4096;  // bounded ring depth (split across shards)
  // Worker shards for the fleet phases; 0 = auto (clamp(cores, 2, 4)).
  // Shards are dispatcher threads: oversubscribing a small machine puts
  // interactive tail latency at the mercy of OS timeslices.
  int shards = 0;
  std::string cls = "mixed";    // hirate class mix: mixed|interactive|batch
  double hirate_rate = 0.0;     // req/s; <= 0 = auto (3x batched rps)
  double hirate_duration = 2.0; // high-rate phase length, seconds
  std::string out = "BENCH_serve.json";
  std::string artifact_dir;  // "" disables the warmup phase
};

const std::vector<bench::Knob>& serve_knobs_help() {
  static const std::vector<bench::Knob> knobs = {
      {"--serve-requests", "N", "QNAT_SERVE_REQUESTS",
       "burst size for the throughput phase (default 2048)"},
      {"--serve-batch", "N", "QNAT_SERVE_BATCH",
       "micro-batch cap for the batched run (default 32)"},
      {"--serve-reps", "N", "QNAT_SERVE_REPS",
       "throughput reps per mode, best rep reported (default 5)"},
      {"--serve-rate", "RPS", "QNAT_SERVE_RATE",
       "open-loop Poisson arrival rate for the latency phase (default 500)"},
      {"--serve-duration", "SECONDS", "QNAT_SERVE_DURATION",
       "open-loop phase length (default 3)"},
      {"--serve-queue", "N", "QNAT_SERVE_QUEUE",
       "bounded request-queue depth; overload beyond it is rejected"},
      {"--serve-shards", "N", "QNAT_SERVE_SHARDS",
       "worker shards for the fleet phases (default: cores clamped to 2..4)"},
      {"--serve-class", "MIX", "QNAT_SERVE_CLASS",
       "high-rate traffic mix: mixed (default), interactive, or batch"},
      {"--serve-hirate-rate", "RPS", "QNAT_SERVE_HIRATE_RATE",
       "high-rate arrival rate; <= 0 picks 3x the measured batched rps"},
      {"--serve-hirate-duration", "SECONDS", "QNAT_SERVE_HIRATE_DURATION",
       "high-rate phase length (default 2)"},
      {"--serve-out", "FILE", "QNAT_SERVE_OUT",
       "report path (default BENCH_serve.json)"},
      {"--serve-artifact-dir", "DIR", "QNAT_SERVE_ARTIFACT_DIR",
       "compiled-artifact cache dir; enables the cold vs warm warmup phase"},
  };
  return knobs;
}

double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value ? std::atof(value) : fallback;
}

ServeKnobs parse_serve_knobs(int argc, char** argv) {
  ServeKnobs knobs;
  knobs.requests = static_cast<int>(
      env_double("QNAT_SERVE_REQUESTS", knobs.requests));
  knobs.max_batch =
      static_cast<int>(env_double("QNAT_SERVE_BATCH", knobs.max_batch));
  knobs.reps = static_cast<int>(env_double("QNAT_SERVE_REPS", knobs.reps));
  knobs.rate = env_double("QNAT_SERVE_RATE", knobs.rate);
  knobs.duration = env_double("QNAT_SERVE_DURATION", knobs.duration);
  knobs.queue_depth =
      static_cast<int>(env_double("QNAT_SERVE_QUEUE", knobs.queue_depth));
  knobs.shards =
      static_cast<int>(env_double("QNAT_SERVE_SHARDS", knobs.shards));
  knobs.hirate_rate = env_double("QNAT_SERVE_HIRATE_RATE", knobs.hirate_rate);
  knobs.hirate_duration =
      env_double("QNAT_SERVE_HIRATE_DURATION", knobs.hirate_duration);
  if (const char* cls = std::getenv("QNAT_SERVE_CLASS")) knobs.cls = cls;
  if (const char* out = std::getenv("QNAT_SERVE_OUT")) knobs.out = out;
  if (const char* dir = std::getenv("QNAT_SERVE_ARTIFACT_DIR")) {
    knobs.artifact_dir = dir;
  }
  for (int i = 1; i + 1 < argc; ++i) {
    const std::string flag = argv[i];
    const char* value = argv[i + 1];
    if (flag == "--serve-requests") knobs.requests = std::atoi(value);
    if (flag == "--serve-batch") knobs.max_batch = std::atoi(value);
    if (flag == "--serve-reps") knobs.reps = std::atoi(value);
    if (flag == "--serve-rate") knobs.rate = std::atof(value);
    if (flag == "--serve-duration") knobs.duration = std::atof(value);
    if (flag == "--serve-queue") knobs.queue_depth = std::atoi(value);
    if (flag == "--serve-shards") knobs.shards = std::atoi(value);
    if (flag == "--serve-class") knobs.cls = value;
    if (flag == "--serve-hirate-rate") knobs.hirate_rate = std::atof(value);
    if (flag == "--serve-hirate-duration") {
      knobs.hirate_duration = std::atof(value);
    }
    if (flag == "--serve-out") knobs.out = value;
    if (flag == "--serve-artifact-dir") knobs.artifact_dir = value;
  }
  if (knobs.shards <= 0) {
    const unsigned cores = std::thread::hardware_concurrency();
    knobs.shards = static_cast<int>(std::min(4u, std::max(2u, cores)));
  }
  return knobs;
}

std::vector<std::vector<real>> request_pool(std::size_t count,
                                            std::size_t features,
                                            std::uint64_t seed) {
  std::vector<std::vector<real>> pool(count);
  Rng rng(seed);
  for (auto& request : pool) {
    request.resize(features);
    for (auto& v : request) v = rng.gaussian(0.0, 1.0);
  }
  return pool;
}

/// Single-request baseline: closed loop with one request in flight at
/// a time against a batching-disabled server (max_batch 1, no
/// straggler wait — the baseline must not pay the batcher's coalescing
/// delay). Best of `knobs.reps` reps, in requests per second.
double single_request_run(const ModelRegistry& registry,
                          const ServeKnobs& knobs,
                          const std::vector<std::vector<real>>& pool) {
  SchedulerConfig config;
  config.max_batch = 1;
  config.max_wait_us = 0;
  config.queue_depth = static_cast<std::size_t>(knobs.queue_depth);
  double best = 0.0;
  for (int rep = 0; rep < knobs.reps; ++rep) {
    InferenceServer server(registry, config,
                           InferenceServer::Dispatch::Background);
    std::vector<std::vector<real>> requests = pool;  // built off the clock
    std::size_t ok = 0;
    const auto start = std::chrono::steady_clock::now();
    for (auto& request : requests) {
      if (server.submit("mnist4", std::move(request)).get().status ==
          RequestStatus::Ok) {
        ++ok;
      }
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    server.stop();
    best = std::max(best, static_cast<double>(ok) / elapsed);
  }
  return best;
}

/// Batched throughput: the same request set as a saturating closed-loop
/// burst (submit everything, then wait for every future) at the
/// configured micro-batch cap. Best of `knobs.reps` reps, in requests
/// per second.
double batched_run(const ModelRegistry& registry, const ServeKnobs& knobs,
                   const std::vector<std::vector<real>>& pool) {
  SchedulerConfig config;
  config.max_batch = knobs.max_batch;
  config.max_wait_us = 50;
  config.queue_depth = static_cast<std::size_t>(knobs.queue_depth);
  config.shards = knobs.shards;
  double best = 0.0;
  for (int rep = 0; rep < knobs.reps; ++rep) {
    InferenceServer server(registry, config,
                           InferenceServer::Dispatch::Background);
    std::vector<std::vector<real>> requests = pool;  // built off the clock
    std::vector<ResponseTicket> futures;
    futures.reserve(requests.size());
    std::size_t ok = 0;
    const auto start = std::chrono::steady_clock::now();
    for (auto& request : requests) {
      futures.push_back(server.submit("mnist4", std::move(request)));
    }
    for (auto& future : futures) {
      if (future.get().status == RequestStatus::Ok) ++ok;
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    server.stop();
    if (ok != requests.size()) {
      std::cerr << "warning: " << requests.size() - ok
                << " burst requests did not complete Ok (queue too small?)\n";
    }
    best = std::max(best, static_cast<double>(ok) / elapsed);
  }
  return best;
}

struct LatencyReport {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t batches = 0;
  double mean_batch = 0.0;
  metrics::HistogramPercentiles percentiles;  // seconds
};

/// Open-loop Poisson arrivals: exponential inter-arrival gaps at
/// `knobs.rate`, submissions never wait for completions.
LatencyReport latency_run(const ModelRegistry& registry,
                          const ServeKnobs& knobs,
                          const std::vector<std::vector<real>>& pool) {
  SchedulerConfig config;
  config.max_batch = knobs.max_batch;
  config.max_wait_us = 200;
  config.queue_depth = static_cast<std::size_t>(knobs.queue_depth);
  config.shards = knobs.shards;
  InferenceServer server(registry, config,
                         InferenceServer::Dispatch::Background);

  metrics::reset();
  Rng arrivals(4242);
  std::vector<ResponseTicket> futures;
  const auto start = std::chrono::steady_clock::now();
  double next_arrival = 0.0;  // seconds since start
  while (true) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (elapsed >= knobs.duration) break;
    if (elapsed < next_arrival) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(next_arrival - elapsed));
    }
    futures.push_back(
        server.submit("mnist4", pool[futures.size() % pool.size()]));
    // Exponential gap with mean 1/rate = Poisson arrival process.
    next_arrival += -std::log(1.0 - arrivals.uniform()) / knobs.rate;
  }
  for (auto& future : futures) future.wait();
  server.stop();

  LatencyReport report;
  const auto stats = server.stats();
  report.submitted = stats.submitted;
  report.completed = stats.completed;
  report.rejected = stats.rejected;
  report.deadline_exceeded = stats.deadline_exceeded;
  report.batches = stats.batches;
  const metrics::Snapshot snap = metrics::snapshot();
  if (const auto* latency = snap.find_histogram("serve.latency_seconds")) {
    report.percentiles = metrics::percentiles(*latency);
  }
  if (const auto* batch = snap.find_histogram("serve.batch_size")) {
    if (batch->count > 0) {
      report.mean_batch = batch->sum / static_cast<double>(batch->count);
    }
  }
  return report;
}

struct HighRateReport {
  double rate = 0.0;       // offered load, requests/s
  double duration = 0.0;   // seconds
  int shards = 0;
  int producers = 0;
  std::string mix;
  bool quiesced = true;  // every admitted request reached a terminal state
  std::uint64_t submitted = 0, completed = 0, rejected = 0, shed = 0;
  std::uint64_t deadline_exceeded = 0, failed = 0, batches = 0, steals = 0;
  std::uint64_t interactive_submitted = 0, batch_submitted = 0;
  std::uint64_t interactive_completed = 0, batch_completed = 0;
  std::uint64_t interactive_shed = 0, batch_shed = 0;
  double mean_batch = 0.0;
  metrics::HistogramPercentiles interactive;  // seconds
  metrics::HistogramPercentiles batch;        // seconds
  double uncontended_p99 = 0.0;  // interactive p99 without load, seconds
};

/// High-rate fleet overload (see file header, phase 3). The registry
/// must contain the two tenants "tenant_hot" (weight 3) and
/// "tenant_cold" (weight 1).
HighRateReport high_rate_run(const ModelRegistry& registry,
                             const ServeKnobs& knobs,
                             const std::vector<std::vector<real>>& pool,
                             double batched_rps) {
  HighRateReport report;
  report.rate =
      knobs.hirate_rate > 0.0 ? knobs.hirate_rate : 3.0 * batched_rps;
  report.duration = knobs.hirate_duration;
  report.shards = knobs.shards;
  report.mix = knobs.cls;

  SchedulerConfig config;
  config.max_batch = knobs.max_batch;
  config.max_wait_us = 200;
  config.queue_depth = static_cast<std::size_t>(knobs.queue_depth);
  config.shards = knobs.shards;

  // The interactive stream's offered rate, shared by the uncontended
  // baseline and the overload run: a small minority of the flood rate,
  // capped so the pacing thread's wakeups cannot starve the
  // dispatchers on small machines.
  const double interactive_rate = std::min(report.rate / 32.0, 4000.0);

  // Uncontended baseline: the same fleet shape under the SAME
  // interactive Poisson stream — same rate, duration, arrival process
  // and sample count as the overload run's interactive traffic, so the
  // two p99s are the same estimator over the same event count and the
  // ratio isolates the batch flood's effect. (A shorter or gentler
  // baseline would under-sample this machine's scheduling-noise tail
  // and bias the denominator low.) Best (lowest) of three reps:
  // external interference only ever inflates a percentile, so the min
  // is the robust estimate of the fleet's own uncontended latency.
  report.uncontended_p99 = std::numeric_limits<double>::max();
  for (int rep = 0; rep < 3; ++rep) {
    InferenceServer server(registry, config,
                           InferenceServer::Dispatch::Background);
    metrics::reset();
    Rng arrivals(555 + static_cast<std::uint64_t>(rep));
    std::vector<ResponseTicket> futures;
    const auto start = std::chrono::steady_clock::now();
    double next_arrival = 0.0;
    while (true) {
      const double elapsed = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
      if (elapsed >= report.duration) break;
      if (elapsed < next_arrival) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(next_arrival - elapsed));
      }
      const char* tenant =
          futures.size() % 2 == 0 ? "tenant_hot" : "tenant_cold";
      futures.push_back(
          server.submit(tenant, pool[futures.size() % pool.size()]));
      next_arrival += -std::log(1.0 - arrivals.uniform()) / interactive_rate;
    }
    for (auto& future : futures) future.wait();
    server.stop();
    const metrics::Snapshot snap = metrics::snapshot();
    if (const auto* h =
            snap.find_histogram("serve.latency_seconds.interactive")) {
      report.uncontended_p99 =
          std::min(report.uncontended_p99, metrics::percentiles(*h).p99);
    }
  }
  if (report.uncontended_p99 == std::numeric_limits<double>::max()) {
    report.uncontended_p99 = 0.0;
  }

  metrics::reset();
  InferenceServer server(registry, config,
                         InferenceServer::Dispatch::Background);
  std::atomic<std::uint64_t> interactive_submitted{0};
  std::atomic<std::uint64_t> batch_submitted{0};
  const bool mixed = knobs.cls == "mixed";
  report.producers = mixed ? 2 : 1;

  // Open-loop flood producer submitting paced BURSTS rather than
  // per-request Poisson gaps: a burst floods the admission gate (that
  // is the overload under test), then the producer sleeps until the
  // next burst is due, handing the CPU to the shard dispatchers. A
  // spinning per-request producer would measure CPU starvation of the
  // fleet's own threads on small machines, not scheduling policy. In
  // the default mixed mode the flood is all batch-class; forcing
  // --serve-class interactive/batch floods that single class instead.
  std::thread producer([&] {
    constexpr std::size_t kBurst = 256;
    const double burst_interval = static_cast<double>(kBurst) / report.rate;
    const bool interactive = knobs.cls == "interactive";
    const auto start = std::chrono::steady_clock::now();
    double next_burst = 0.0;
    std::size_t i = 0;
    while (true) {
      const double elapsed = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
      if (elapsed >= report.duration) break;
      if (elapsed < next_burst) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(next_burst - elapsed));
      }
      for (std::size_t b = 0; b < kBurst; ++b, ++i) {
        const char* tenant = i % 2 == 0 ? "tenant_hot" : "tenant_cold";
        // The ticket is dropped: open-loop clients do not wait.
        server.submit(tenant, pool[i % pool.size()], /*deadline_us=*/0,
                      interactive ? RequestClass::Interactive
                                  : RequestClass::Batch);
        (interactive ? interactive_submitted : batch_submitted)
            .fetch_add(1, std::memory_order_relaxed);
      }
      next_burst += burst_interval;
    }
  });

  // Interactive traffic rides on its own Poisson-paced producer, the
  // SAME arrival process the uncontended baseline used — so the
  // contended-vs-uncontended p99 ratio compares scheduling policy, not
  // arrival burstiness (burst-clustered interactive arrivals would
  // self-queue behind their own cluster and inflate the tail). The
  // rate keeps interactive a small minority, well under fleet
  // capacity, while the batch flood overloads it — the configuration
  // the shed-before-degrade policy exists for; the cap bounds producer
  // wakeups so the pacing thread cannot starve the dispatchers on
  // small machines.
  std::thread interactive_producer([&] {
    if (!mixed) return;
    const double rate = interactive_rate;
    Rng arrivals(777);
    const auto start = std::chrono::steady_clock::now();
    double next_arrival = 0.0;
    std::size_t i = 0;
    while (true) {
      const double elapsed = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
      if (elapsed >= report.duration) break;
      if (elapsed < next_arrival) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(next_arrival - elapsed));
      }
      const char* tenant = i % 2 == 0 ? "tenant_hot" : "tenant_cold";
      server.submit(tenant, pool[i++ % pool.size()], /*deadline_us=*/0,
                    RequestClass::Interactive);
      interactive_submitted.fetch_add(1, std::memory_order_relaxed);
      next_arrival += -std::log(1.0 - arrivals.uniform()) / rate;
    }
  });
  producer.join();
  interactive_producer.join();

  // Quiesce: tickets were dropped, so completion is observed through
  // stats — every submitted request must reach a terminal state before
  // the histograms are read.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (true) {
    const auto s = server.stats();
    if (s.completed + s.rejected + s.shed + s.deadline_exceeded + s.failed >=
        s.submitted) {
      break;
    }
    if (std::chrono::steady_clock::now() > deadline) {
      report.quiesced = false;
      std::cerr << "warning: high-rate phase failed to quiesce in 30s\n";
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.stop();

  const auto stats = server.stats();
  report.submitted = stats.submitted;
  report.completed = stats.completed;
  report.rejected = stats.rejected;
  report.shed = stats.shed;
  report.deadline_exceeded = stats.deadline_exceeded;
  report.failed = stats.failed;
  report.batches = stats.batches;
  report.steals = stats.steals;
  report.interactive_submitted =
      interactive_submitted.load(std::memory_order_relaxed);
  report.batch_submitted = batch_submitted.load(std::memory_order_relaxed);

  const metrics::Snapshot snap = metrics::snapshot();
  const auto counter = [&](const char* name) -> std::uint64_t {
    const auto* entry = snap.find_counter(name);
    return entry ? entry->value : 0;
  };
  report.interactive_completed = counter("serve.completed.interactive");
  report.batch_completed = counter("serve.completed.batch");
  report.interactive_shed = counter("serve.shed.interactive");
  report.batch_shed = counter("serve.shed.batch");
  if (const auto* h =
          snap.find_histogram("serve.latency_seconds.interactive")) {
    report.interactive = metrics::percentiles(*h);
  }
  if (const auto* h = snap.find_histogram("serve.latency_seconds.batch")) {
    report.batch = metrics::percentiles(*h);
  }
  if (const auto* h = snap.find_histogram("serve.batch_size")) {
    if (h->count > 0) {
      report.mean_batch = h->sum / static_cast<double>(h->count);
    }
  }
  return report;
}

struct WarmupReport {
  bool enabled = false;
  double cold_ms = 0.0;  // transpile+fuse+bind+profile, artifact written
  double warm_ms = 0.0;  // bundle loaded, compilation skipped
  double speedup = 0.0;
  std::uint64_t artifact_hits = 0;
  std::uint64_t artifact_misses = 0;
  std::uint64_t artifact_writes = 0;
  std::uint64_t artifact_rejected = 0;
};

std::uint64_t counter_value(const metrics::Snapshot& snap,
                            const std::string& name) {
  const auto* entry = snap.find_counter(name);
  return entry ? entry->value : 0;
}

/// Cold-start vs artifact-cache warm start. Both adds run on a fresh
/// ModelRegistry with an empty process program cache, so the only
/// difference is the QNATSRV bundle on disk: the first add compiles
/// and writes it, the second loads it and skips transpile+fuse+bind.
/// The dir is deliberately left as-is — when a previous run already
/// wrote the bundle, the "cold" add hits too, and the recorded
/// serve.artifact.* counters (misses/writes vs hits) say which case
/// this run measured, so CI can assert cache persistence across
/// processes.
WarmupReport warmup_run(const QnnModel& model, const Tensor2D& profile,
                        const ServeKnobs& knobs) {
  WarmupReport report;
  if (knobs.artifact_dir.empty()) return report;
  report.enabled = true;

  ServingOptions options;
  options.artifact_dir = knobs.artifact_dir;
  std::filesystem::create_directories(knobs.artifact_dir);

  const bool metrics_were_on = metrics::enabled();
  metrics::set_enabled(true);

  const auto timed_add = [&] {
    clear_program_cache();
    ModelRegistry registry;
    const auto start = std::chrono::steady_clock::now();
    registry.add("mnist4", model, options, &profile);
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  };

  metrics::reset();
  report.cold_ms = timed_add();
  {
    const metrics::Snapshot snap = metrics::snapshot();
    report.artifact_misses = counter_value(snap, "serve.artifact.misses");
    report.artifact_writes = counter_value(snap, "serve.artifact.writes");
  }

  metrics::reset();
  report.warm_ms = timed_add();
  {
    const metrics::Snapshot snap = metrics::snapshot();
    report.artifact_hits = counter_value(snap, "serve.artifact.hits");
    report.artifact_rejected = counter_value(snap, "serve.artifact.rejected");
    if (report.artifact_hits == 0) {
      std::cerr << "warning: warm add missed the artifact cache ("
                << counter_value(snap, "serve.artifact.rejected")
                << " rejected)\n";
    }
  }

  metrics::reset();
  metrics::set_enabled(metrics_were_on);
  report.speedup = report.warm_ms > 0.0 ? report.cold_ms / report.warm_ms : 0.0;
  return report;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int threads =
      bench::configure_run("bench_serve_load", argc, argv, serve_knobs_help());
  const ServeKnobs knobs = parse_serve_knobs(argc, argv);
  bench::print_header(
      "Serving load test: dynamic micro-batching vs single-request",
      "batched throughput >= 3x single-request at cap " +
          std::to_string(knobs.max_batch) + "; p99 reported from histograms");

  // MNIST-4 model served with profiled normalization (the paper's
  // deployment pipeline); the standard U3CU3 block (one U3 layer + one
  // CU3 ring per block). Weights are seeded, not trained — load cost
  // and batching behavior do not depend on accuracy.
  QnnArchitecture arch;
  arch.num_qubits = 4;
  arch.num_blocks = 2;
  arch.layers_per_block = 1;
  arch.input_features = 16;
  arch.num_classes = 4;
  QnnModel model(arch);
  Rng init(bench::scale_from_env().seed);
  model.init_weights(init);

  Tensor2D profile(32, 16);
  Rng profile_rng(7);
  for (auto& v : profile.data()) v = profile_rng.gaussian(0.0, 1.0);

  // Warmup phase first (when enabled): it clears the process program
  // cache around each timed add, so it must not run after the main
  // registry has warmed anything up.
  const WarmupReport warmup = warmup_run(model, profile, knobs);
  if (warmup.enabled) {
    std::printf("warmup  cold: %8.1f ms   warm: %8.1f ms   (%.1fx, "
                "%llu artifact hit%s)\n",
                warmup.cold_ms, warmup.warm_ms, warmup.speedup,
                static_cast<unsigned long long>(warmup.artifact_hits),
                warmup.artifact_hits == 1 ? "" : "s");
  }

  ModelRegistry registry;
  registry.add("mnist4", model, {}, &profile);
  // Two tenants for the high-rate fleet phase: same architecture, 3:1
  // WFQ weights — the weighted-fair-queuing share is what's under test,
  // not the models themselves.
  {
    ServingOptions hot;
    hot.weight = 3.0;
    registry.add("tenant_hot", model, hot, &profile);
    ServingOptions cold;
    cold.weight = 1.0;
    registry.add("tenant_cold", model, cold, &profile);
  }

  const auto pool = request_pool(static_cast<std::size_t>(knobs.requests), 16,
                                 bench::scale_from_env().seed + 1);

  // Phase 1: throughput, single-request closed loop vs batched burst
  // (best of knobs.reps each; see file header for methodology).
  const double single_rps = single_request_run(registry, knobs, pool);
  const double batched_rps = batched_run(registry, knobs, pool);
  const double speedup = batched_rps / single_rps;
  std::printf("throughput  single: %9.0f req/s\n", single_rps);
  std::printf("throughput  batched(%d): %7.0f req/s   (%.2fx)\n",
              knobs.max_batch, batched_rps, speedup);

  // Phase 2: open-loop Poisson latency at the configured rate, with
  // metrics recording on — the percentiles come from the
  // serve.latency_seconds histogram.
  metrics::set_enabled(true);
  const LatencyReport latency = latency_run(registry, knobs, pool);
  std::printf("latency @ %.0f req/s over %.1fs: %llu requests, "
              "%llu rejected, %llu expired\n",
              knobs.rate, knobs.duration,
              static_cast<unsigned long long>(latency.submitted),
              static_cast<unsigned long long>(latency.rejected),
              static_cast<unsigned long long>(latency.deadline_exceeded));
  std::printf("  p50 %.3f ms   p95 %.3f ms   p99 %.3f ms   "
              "mean batch %.1f\n",
              latency.percentiles.p50 * 1e3, latency.percentiles.p95 * 1e3,
              latency.percentiles.p99 * 1e3, latency.mean_batch);

  // Phase 3: high-rate fleet overload across shards, two tenants,
  // mixed-class traffic; see file header for methodology.
  const HighRateReport hirate = high_rate_run(registry, knobs, pool,
                                              batched_rps);
  std::printf("hirate @ %.0f req/s x %.1fs on %d shards (%s): "
              "%llu submitted, %llu completed, %llu shed, %llu rejected\n",
              hirate.rate, hirate.duration, hirate.shards,
              hirate.mix.c_str(),
              static_cast<unsigned long long>(hirate.submitted),
              static_cast<unsigned long long>(hirate.completed),
              static_cast<unsigned long long>(hirate.shed),
              static_cast<unsigned long long>(hirate.rejected));
  std::printf("  interactive p99 %.3f ms (uncontended %.3f ms)   "
              "batch p99 %.3f ms   mean batch %.1f   steals %llu\n",
              hirate.interactive.p99 * 1e3, hirate.uncontended_p99 * 1e3,
              hirate.batch.p99 * 1e3, hirate.mean_batch,
              static_cast<unsigned long long>(hirate.steals));

  const metrics::RunManifest manifest =
      bench::current_manifest("bench_serve_load");
  std::ostringstream json;
  json.precision(6);
  json << std::fixed;
  json << "{\n";
  json << "  \"schema\": \"qnat.serve_bench.v2\",\n";
  json << "  \"manifest\": {\"label\": \"" << json_escape(manifest.label)
       << "\", \"seed\": " << manifest.seed
       << ", \"threads\": " << manifest.threads << ", \"simd\": "
       << (manifest.simd ? "true" : "false") << ", \"backend\": \""
       << json_escape(manifest.backend.empty() ? "scalar" : manifest.backend)
       << "\", \"git\": \""
       << json_escape(manifest.git.empty() ? metrics::build_version()
                                           : manifest.git)
       << "\"},\n";
  json << "  \"config\": {\"requests\": " << knobs.requests
       << ", \"max_batch\": " << knobs.max_batch
       << ", \"reps\": " << knobs.reps
       << ", \"rate_rps\": " << knobs.rate
       << ", \"duration_s\": " << knobs.duration
       << ", \"queue_depth\": " << knobs.queue_depth
       << ", \"shards\": " << knobs.shards
       << ", \"class_mix\": \"" << json_escape(knobs.cls)
       << "\", \"hirate_rate_rps\": " << hirate.rate
       << ", \"hirate_duration_s\": " << knobs.hirate_duration
       << ", \"artifact_dir\": \"" << json_escape(knobs.artifact_dir)
       << "\"},\n";
  json << "  \"warmup\": {\"enabled\": "
       << (warmup.enabled ? "true" : "false")
       << ", \"cold_ms\": " << warmup.cold_ms
       << ", \"warm_ms\": " << warmup.warm_ms
       << ", \"speedup\": " << warmup.speedup
       << ", \"artifact_hits\": " << warmup.artifact_hits
       << ", \"artifact_misses\": " << warmup.artifact_misses
       << ", \"artifact_writes\": " << warmup.artifact_writes
       << ", \"artifact_rejected\": " << warmup.artifact_rejected << "},\n";
  json << "  \"throughput\": {\"single_rps\": " << single_rps
       << ", \"batched_rps\": " << batched_rps
       << ", \"speedup\": " << speedup << "},\n";
  json << "  \"latency\": {\"submitted\": " << latency.submitted
       << ", \"completed\": " << latency.completed
       << ", \"rejected\": " << latency.rejected
       << ", \"deadline_exceeded\": " << latency.deadline_exceeded
       << ", \"batches\": " << latency.batches
       << ", \"mean_batch_size\": " << latency.mean_batch
       << ", \"p50_ms\": " << latency.percentiles.p50 * 1e3
       << ", \"p95_ms\": " << latency.percentiles.p95 * 1e3
       << ", \"p99_ms\": " << latency.percentiles.p99 * 1e3 << "},\n";
  json << "  \"hirate\": {\"rate_rps\": " << hirate.rate
       << ", \"duration_s\": " << hirate.duration
       << ", \"shards\": " << hirate.shards
       << ", \"producers\": " << hirate.producers
       << ", \"class_mix\": \"" << json_escape(hirate.mix)
       << "\", \"quiesced\": " << (hirate.quiesced ? "true" : "false")
       << ", \"submitted\": " << hirate.submitted
       << ", \"completed\": " << hirate.completed
       << ", \"rejected\": " << hirate.rejected
       << ", \"shed\": " << hirate.shed
       << ", \"deadline_exceeded\": " << hirate.deadline_exceeded
       << ", \"failed\": " << hirate.failed
       << ", \"batches\": " << hirate.batches
       << ", \"steals\": " << hirate.steals
       << ", \"mean_batch_size\": " << hirate.mean_batch
       << ",\n             \"interactive\": {\"submitted\": "
       << hirate.interactive_submitted
       << ", \"completed\": " << hirate.interactive_completed
       << ", \"shed\": " << hirate.interactive_shed
       << ", \"p50_ms\": " << hirate.interactive.p50 * 1e3
       << ", \"p95_ms\": " << hirate.interactive.p95 * 1e3
       << ", \"p99_ms\": " << hirate.interactive.p99 * 1e3
       << ", \"uncontended_p99_ms\": " << hirate.uncontended_p99 * 1e3
       << "},\n             \"batch\": {\"submitted\": "
       << hirate.batch_submitted
       << ", \"completed\": " << hirate.batch_completed
       << ", \"shed\": " << hirate.batch_shed
       << ", \"p50_ms\": " << hirate.batch.p50 * 1e3
       << ", \"p95_ms\": " << hirate.batch.p95 * 1e3
       << ", \"p99_ms\": " << hirate.batch.p99 * 1e3 << "}}\n";
  json << "}\n";

  std::ofstream out(knobs.out);
  out << json.str();
  std::cout << "\nwrote " << knobs.out << " (threads=" << threads << ")\n";
  return 0;
}
