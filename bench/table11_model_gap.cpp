// Table 11 (appendix A.3.5): accuracy gap between evaluating on the noise
// model and on the "real" device. We stand in for the real machine with a
// calibration-drifted copy of the model (rates scaled by 15% and a
// different trajectory seed); the paper reports gaps typically < 5%.
#include <iostream>

#include "bench_common.hpp"

using namespace qnat;
using namespace qnat::bench;

namespace {

struct GapRow {
  real model_acc;
  real real_acc;
};

GapRow run(const std::string& task, const std::string& device, int blocks,
           int layers, const RunScale& scale) {
  BenchConfig config;
  config.task = task;
  config.device = device;
  config.num_blocks = blocks;
  config.layers_per_block = layers;
  const TaskBundle bundle = load_task(task, scale);
  QnnModel model(make_arch(bundle.info, config));
  const Deployment deployment(model, make_device_noise_model(device),
                              config.optimization_level);
  const TrainerConfig trainer =
      make_trainer_config(config, Method::PostQuant, scale);
  train_qnn(model, bundle.train, trainer, &deployment);
  const QnnForwardOptions pipeline = pipeline_options(trainer);

  NoisyEvalOptions on_model;
  on_model.trajectories = scale.trajectories;
  NoisyEvalOptions on_real = on_model;
  on_real.noise_scale = 1.15;  // calibration drift
  on_real.seed = on_model.seed + 991;

  GapRow row;
  row.model_acc = noisy_accuracy(model, deployment, bundle.test, pipeline,
                                 on_model);
  row.real_acc = noisy_accuracy(model, deployment, bundle.test, pipeline,
                                on_real);
  return row;
}

}  // namespace

int main() {
  print_header(
      "Table 11: noise-model vs (simulated) real-QC accuracy gap",
      "gaps stay small (paper: typically < 5%), indicating reliable noise "
      "models");
  const RunScale scale = scale_from_env();
  TextTable table({"machine", "model", "eval", "mnist4", "fashion4",
                   "mnist2"});
  struct Spec {
    std::string device;
    int blocks;
    int layers;
  };
  for (const Spec& spec : std::vector<Spec>{{"santiago", 2, 12},
                                            {"yorktown", 2, 2},
                                            {"belem", 2, 6}}) {
    std::vector<std::string> model_row{spec.device,
                                       std::to_string(spec.blocks) + "Bx" +
                                           std::to_string(spec.layers) + "L",
                                       "noise model"};
    std::vector<std::string> real_row{spec.device, "", "drifted (\"real\")"};
    for (const std::string task : {"mnist4", "fashion4", "mnist2"}) {
      const GapRow row = run(task, spec.device, spec.blocks, spec.layers,
                             scale);
      model_row.push_back(fmt_fixed(row.model_acc, 2));
      real_row.push_back(fmt_fixed(row.real_acc, 2));
    }
    table.add_row(model_row);
    table.add_row(real_row);
    table.add_separator();
  }
  std::cout << table.render();
  return 0;
}
