// Table 12 (appendix A.3.6): accuracy improvements grow in relative terms
// with the number of classes — 2-, 4-, and 10-class tasks compared
// between the noise-unaware baseline and full QuantumNAT.
#include <iostream>

#include "bench_common.hpp"

using namespace qnat;
using namespace qnat::bench;

int main() {
  print_header(
      "Table 12: improvement vs number of classes",
      "relative improvement grows with class count (10-class >> 2-class)");
  const RunScale scale = scale_from_env();

  struct Group {
    std::string label;
    std::vector<std::string> tasks;
    std::string device;
    int blocks;
    int layers;
  };
  const std::vector<Group> groups = {
      {"2-classification", {"mnist2", "fashion2"}, "yorktown", 2, 2},
      {"4-classification", {"mnist4", "fashion4"}, "yorktown", 2, 2},
      {"10-classification", {"mnist10", "fashion10"}, "melbourne", 2, 2},
  };

  TextTable table({"task group", "baseline", "QuantumNAT", "absolute gain",
                   "relative gain"});
  for (const Group& group : groups) {
    real base = 0.0, nat = 0.0;
    for (const std::string& task : group.tasks) {
      BenchConfig config;
      config.task = task;
      config.device = group.device;
      config.num_blocks = group.blocks;
      config.layers_per_block = group.layers;
      base += run_method(config, Method::Baseline, scale).noisy_accuracy;
      nat += run_method(config, Method::PostQuant, scale).noisy_accuracy;
    }
    base /= static_cast<real>(group.tasks.size());
    nat /= static_cast<real>(group.tasks.size());
    const real rel = base > 0.0 ? (nat - base) / base : 0.0;
    table.add_row({group.label, fmt_fixed(base, 2), fmt_fixed(nat, 2),
                   fmt_fixed(nat - base, 2),
                   fmt_fixed(100.0 * rel, 0) + "%"});
  }
  std::cout << table.render();
  return 0;
}
