// Table 13 (appendix A.3.7): normalizing the test set with statistics
// profiled on the validation set is nearly as good as using the test
// set's own statistics — enabling small deployment batches.
#include <iostream>
#include <sstream>

#include "bench_common.hpp"

using namespace qnat;
using namespace qnat::bench;

namespace {

std::string vec_to_string(const std::vector<real>& values) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) os << ", ";
    os << fmt_fixed(values[i], 3);
  }
  os << "]";
  return os.str();
}

}  // namespace

int main() {
  print_header(
      "Table 13: validation-set vs test-set normalization statistics",
      "per-qubit stats of valid and test sets are close; accuracy with "
      "valid-set stats ~ accuracy with test-set stats");
  const RunScale scale = scale_from_env();

  TextTable table({"task-device", "stats", "MEAN", "STD", "accuracy"});
  real acc_test_sum = 0.0, acc_valid_sum = 0.0;
  int cells = 0;
  for (const std::string task_name : {"fashion4", "vowel4", "mnist2"}) {
    for (const std::string device : {"santiago", "yorktown", "belem"}) {
      BenchConfig config;
      config.task = task_name;
      config.device = device;
      const TaskBundle task = load_task(task_name, scale);
      QnnModel model(make_arch(task.info, config));
      const Deployment deployment(model, make_device_noise_model(device),
                                  config.optimization_level);
      const TrainerConfig trainer =
          make_trainer_config(config, Method::PostNorm, scale);
      train_qnn(model, task.train, trainer);
      const QnnForwardOptions pipeline = pipeline_options(trainer);
      NoisyEvalOptions eval_options;
      eval_options.trajectories = scale.trajectories;

      const BlockStats valid_stats = profile_block_stats(
          model, deployment, task.valid.features, pipeline, eval_options);
      const BlockStats test_stats = profile_block_stats(
          model, deployment, task.test.features, pipeline, eval_options);

      // Accuracy using the test batch's own statistics (default pipeline).
      const real acc_test = noisy_accuracy(model, deployment, task.test,
                                           pipeline, eval_options);
      // Accuracy using validation-profiled statistics.
      QnnForwardOptions profiled = pipeline;
      profiled.profiled_mean = &valid_stats.mean;
      profiled.profiled_std = &valid_stats.stddev;
      const real acc_valid = noisy_accuracy(model, deployment, task.test,
                                            profiled, eval_options);
      acc_test_sum += acc_test;
      acc_valid_sum += acc_valid;
      ++cells;

      const std::string label = task_name + "-" + device;
      table.add_row({label, "test", vec_to_string(test_stats.mean[0]),
                     vec_to_string(test_stats.stddev[0]),
                     fmt_fixed(acc_test, 2)});
      table.add_row({"", "valid", vec_to_string(valid_stats.mean[0]),
                     vec_to_string(valid_stats.stddev[0]),
                     fmt_fixed(acc_valid, 2)});
      table.add_separator();
    }
  }
  table.add_row({"average", "test", "-", "-",
                 fmt_fixed(acc_test_sum / cells, 2)});
  table.add_row({"", "valid", "-", "-",
                 fmt_fixed(acc_valid_sum / cells, 2)});
  std::cout << table.render();
  return 0;
}
