// Table 1: main results. Four model/device pairs on six 4-qubit tasks,
// plus the 10-qubit Melbourne pair on the 10-class tasks, each with the
// incremental cascade Baseline -> +Post Norm -> +Gate Insert -> +Post
// Quant.
//
// Hyperparameters: the paper grid-searches (T, levels) per cell (its
// Table 14); our validation search (grid_search_noise_factor_levels)
// selects T = 0.1 and 6 levels on nearly every cell of *our* noise
// pipeline (which folds idle decoherence into the sampled channel set, so
// matching injected-error rates map to smaller T than the paper's grid).
// We run all cells at that selection.
#include <chrono>
#include <iostream>

#include "bench_common.hpp"

using namespace qnat;
using namespace qnat::bench;

namespace {

struct ModelRow {
  std::string label;
  std::string device;
  int blocks;
  int layers;
  std::vector<std::string> tasks;
};

}  // namespace

int main(int argc, char** argv) {
  print_header(
      "Table 1: main results (method cascade per model/device/task)",
      "every stage adds accuracy on average; norm and injection give the "
      "largest gains; noisier devices start lower");
  const RunScale scale = scale_from_env();
  const int threads = configure_run("table1_main", argc, argv);
  std::cout << "threads: " << threads
            << " (override with --threads N or QNAT_THREADS; results are "
               "bit-identical at any count)\n\n";
  const auto wall_start = std::chrono::steady_clock::now();

  const std::vector<std::string> small_tasks{"mnist4",  "fashion4", "vowel4",
                                             "mnist2",  "fashion2", "cifar2"};
  const std::vector<ModelRow> rows = {
      {"2Bx12L Santiago", "santiago", 2, 12, small_tasks},
      {"2Bx2L Yorktown", "yorktown", 2, 2, small_tasks},
      {"2Bx6L Belem", "belem", 2, 6, small_tasks},
      {"3Bx10L Athens", "athens", 3, 10, small_tasks},
      {"2Bx2L Melbourne", "melbourne", 2, 2, {"mnist10", "fashion10"}},
  };

  real cascade_sum[4] = {0, 0, 0, 0};
  int cascade_count = 0;

  for (std::size_t row_index = 0; row_index < rows.size(); ++row_index) {
    const ModelRow& row = rows[row_index];
    std::vector<std::string> header{"method (" + row.label + ")"};
    header.insert(header.end(), row.tasks.begin(), row.tasks.end());
    TextTable table(header);
    std::vector<std::vector<real>> acc(
        4, std::vector<real>(row.tasks.size(), 0.0));
    const auto row_start = std::chrono::steady_clock::now();
    for (std::size_t t = 0; t < row.tasks.size(); ++t) {
      BenchConfig config;
      config.task = row.tasks[t];
      config.device = row.device;
      config.num_blocks = row.blocks;
      config.layers_per_block = row.layers;
      for (std::size_t m = 0; m < all_methods().size(); ++m) {
        acc[m][t] =
            run_method(config, all_methods()[m], scale).noisy_accuracy;
      }
    }
    const auto row_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      row_start)
            .count();
    for (std::size_t m = 0; m < all_methods().size(); ++m) {
      std::vector<std::string> cells{method_label(all_methods()[m])};
      for (std::size_t t = 0; t < row.tasks.size(); ++t) {
        cells.push_back(fmt_fixed(acc[m][t], 2));
        cascade_sum[m] += acc[m][t];
      }
      table.add_row(cells);
    }
    cascade_count += static_cast<int>(row.tasks.size());
    std::cout << table.render();
    std::cout << "[" << row.label << "] wall clock: "
              << fmt_fixed(static_cast<real>(row_seconds), 1) << " s at "
              << threads << " thread(s)\n\n";
  }

  TextTable avg({"method", "AvgAll"});
  for (std::size_t m = 0; m < all_methods().size(); ++m) {
    avg.add_row({method_label(all_methods()[m]),
                 fmt_fixed(cascade_sum[m] / cascade_count, 2)});
  }
  std::cout << avg.render();
  const auto total_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  std::cout << "\ntotal wall clock: "
            << fmt_fixed(static_cast<real>(total_seconds), 1) << " s at "
            << threads << " thread(s)\n";
  return 0;
}
