// Table 2: QuantumNAT across QNN design spaces — 'ZZ+RY', 'RXYZ',
// 'ZX+XX', 'RXYZ+U1+CU3' on MNIST-4 and Fashion-2, deployed on Yorktown
// and Santiago. The technique should win in most settings (13/16 in the
// paper), demonstrating design-space agnosticism.
#include <iostream>

#include "bench_common.hpp"

using namespace qnat;
using namespace qnat::bench;

int main() {
  print_header(
      "Table 2: accuracy on different design spaces",
      "+QuantumNAT beats the noise-unaware baseline in most of the 16 "
      "settings, across all four spaces");
  const RunScale scale = scale_from_env();

  struct SpaceSpec {
    std::string label;
    DesignSpace space;
    int layers;  // one full cycle of the space
  };
  const std::vector<SpaceSpec> spaces = {
      {"'ZZ+RY'", DesignSpace::ZZRY, 2},
      {"'RXYZ'", DesignSpace::RXYZ, 5},
      {"'ZX+XX'", DesignSpace::ZXXX, 2},
      {"'RXYZ+U1+CU3'", DesignSpace::RXYZU1CU3, 11},
  };

  TextTable table({"design space", "method", "mnist4/yorktown",
                   "mnist4/santiago", "fashion2/yorktown",
                   "fashion2/santiago"});
  int wins = 0, cells = 0;
  for (const SpaceSpec& spec : spaces) {
    std::vector<std::string> base_row{spec.label, "baseline"};
    std::vector<std::string> nat_row{spec.label, "+QuantumNAT"};
    for (const std::string task : {"mnist4", "fashion2"}) {
      for (const std::string device : {"yorktown", "santiago"}) {
        BenchConfig config;
        config.task = task;
        config.device = device;
        config.num_blocks = 2;
        config.layers_per_block = spec.layers;
        config.space = spec.space;
        const real base =
            run_method(config, Method::Baseline, scale).noisy_accuracy;
        const real nat =
            run_method(config, Method::PostQuant, scale).noisy_accuracy;
        base_row.push_back(fmt_fixed(base, 2));
        nat_row.push_back(fmt_fixed(nat, 2));
        ++cells;
        if (nat >= base) ++wins;
      }
    }
    table.add_row(base_row);
    table.add_row(nat_row);
    table.add_separator();
  }
  std::cout << table.render();
  std::cout << "+QuantumNAT wins or ties in " << wins << "/" << cells
            << " settings (paper: 13/16)\n";
  return 0;
}
