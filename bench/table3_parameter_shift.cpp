// Table 3: scalable noise-aware training directly on the (simulated)
// quantum device with the parameter-shift rule. A tiny 2-feature 2-class
// QNN (2 blocks of 2 RY + CNOT) is trained either classically
// (noise-unaware) or through the noisy executor — gradients measured on
// the device are naturally noise-aware and win on every machine.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "compile/transpiler.hpp"
#include "core/onqc_trainer.hpp"

using namespace qnat;
using namespace qnat::bench;

namespace {

Circuit table3_circuit() {
  // params 0-1: encoder RY angles; 2-5: trainable RY weights.
  Circuit c(2, 6);
  c.ry(0, 0);
  c.ry(1, 1);
  c.ry(0, 2);
  c.ry(1, 3);
  c.cx(0, 1);
  c.ry(0, 4);
  c.ry(1, 5);
  c.cx(0, 1);
  return c;
}

real train_and_eval(const std::string& device, bool noise_aware,
                    const RunScale& scale) {
  const TaskBundle task = make_task("twofeature2", scale.samples_per_class,
                                    scale.seed);
  const NoiseModel noise = make_device_noise_model(device);
  const Circuit logical = table3_circuit();
  const TranspileResult compiled = transpile(logical, noise, 2);

  const std::uint64_t traj_seed = scale.seed * 31 + (noise_aware ? 1 : 0);
  const CircuitExecutor noisy_device = make_noisy_device_executor(
      noise, compiled.final_layout, 2, scale.trajectories, traj_seed);

  // The baseline trains classically on the logical circuit; noise-aware
  // training runs parameter shifts through the noisy device on the
  // compiled circuit.
  const Circuit& train_circuit = noise_aware ? compiled.circuit : logical;
  const CircuitExecutor train_exec =
      noise_aware ? noisy_device : make_ideal_executor();

  ParamVector weights(4);
  OnDeviceTrainConfig config;
  config.epochs = std::max(40, scale.epochs);
  config.seed = scale.seed * 17 + (noise_aware ? 3 : 0);
  train_on_device(train_circuit, 2, task.train, train_exec, weights, config);

  // Both variants are evaluated on the noisy device.
  return on_device_accuracy(compiled.circuit, 2, task.test, noisy_device,
                            weights);
}

}  // namespace

int main() {
  print_header(
      "Table 3: on-device noise-aware training via parameter shift "
      "(2-feature 2-class)",
      "noise-aware (trained on the noisy device) beats noise-unaware on "
      "every machine");
  const RunScale scale = scale_from_env();
  TextTable table({"machine", "noise-unaware", "QuantumNAT (on-QC)"});
  for (const std::string device : {"bogota", "santiago", "lima"}) {
    table.add_row({device, fmt_fixed(train_and_eval(device, false, scale), 2),
                   fmt_fixed(train_and_eval(device, true, scale), 2)});
  }
  std::cout << table.render();
  return 0;
}
