// Table 4: compatibility with zero-noise extrapolation. A 2-block model
// (three U3+CU3-style layers per block) is trained with normalization;
// its trainable layers are then folded to 1x..4x depth, the per-qubit
// mean/std of the noisy final-block outcomes is measured at each depth,
// and both moments are extrapolated to depth 0 (log-linear for the std,
// which decays exponentially under Pauli channels). Deployed outputs are
// affinely corrected to the zero-noise moments before classification;
// the paper's claim is that this is compatible with (orthogonal to)
// post-measurement normalization.
#include <iostream>

#include "bench_common.hpp"
#include "core/extrapolation.hpp"
#include "nn/losses.hpp"

using namespace qnat;
using namespace qnat::bench;

namespace {

struct Result {
  real norm_only;
  real norm_plus_extrapolation;
};

Result run(const std::string& task_name, const RunScale& scale) {
  BenchConfig config;
  config.task = task_name;
  config.device = "santiago";
  config.num_blocks = 2;
  config.layers_per_block = 3;
  const TaskBundle task = load_task(task_name, scale);
  QnnModel model(make_arch(task.info, config));
  const TrainerConfig trainer =
      make_trainer_config(config, Method::PostNorm, scale);
  train_qnn(model, task.train, trainer);

  const NoiseModel noise = make_device_noise_model(config.device);
  const Deployment deployment(model, noise, config.optimization_level);
  const QnnForwardOptions pipeline = pipeline_options(trainer);
  NoisyEvalOptions eval_options;
  eval_options.trajectories = scale.trajectories;

  Result result;
  result.norm_only =
      noisy_accuracy(model, deployment, task.test, pipeline, eval_options);

  // Measure the noisy mean and std of final-block outcomes at folded
  // depths, then extrapolate both moments to depth 0 (zero-noise limit).
  std::vector<real> depths;
  std::vector<std::vector<real>> stds;
  std::vector<std::vector<real>> means;
  for (int fold = 1; fold <= 4; ++fold) {
    const QnnModel folded = repeat_trainable_layers(model, fold);
    const Deployment folded_dep(folded, noise, config.optimization_level);
    QnnForwardCache cache;
    qnn_forward_noisy(folded, folded_dep, task.valid.features, pipeline,
                      eval_options, &cache);
    depths.push_back(static_cast<real>(fold * config.layers_per_block));
    stds.push_back(cache.final_outputs.col_std());
    means.push_back(cache.final_outputs.col_mean());
  }
  // Stds decay exponentially with depth under Pauli channels, so the
  // log-linear fit recovers the zero-noise std; means drift toward the
  // channel fixed point, for which the linear intercept suffices.
  const std::vector<real> noise_free_std =
      extrapolate_noise_free_std_exponential(depths, stds);
  std::vector<real> noise_free_mean(noise_free_std.size());
  for (std::size_t q = 0; q < noise_free_mean.size(); ++q) {
    std::vector<real> ys;
    for (const auto& m : means) ys.push_back(m[q]);
    noise_free_mean[q] = fit_line(depths, ys).intercept;
  }

  // Deploy the original model and affinely correct final outcomes so
  // their per-qubit moments match the extrapolated zero-noise values.
  QnnForwardCache cache;
  qnn_forward_noisy(model, deployment, task.test.features, pipeline,
                    eval_options, &cache);
  Tensor2D rescaled = cache.final_outputs;
  const auto noisy_std = rescaled.col_std();
  const auto noisy_mean = rescaled.col_mean();
  for (std::size_t r = 0; r < rescaled.rows(); ++r) {
    for (std::size_t c = 0; c < rescaled.cols(); ++c) {
      const real scale_c = noisy_std[c] > 1e-9
                               ? noise_free_std[c] / noisy_std[c]
                               : 1.0;
      rescaled(r, c) = noise_free_mean[c] +
                       (rescaled(r, c) - noisy_mean[c]) * scale_c;
    }
  }
  const Tensor2D logits = model.apply_head(rescaled);
  result.norm_plus_extrapolation = accuracy(logits, task.test.labels);
  return result;
}

}  // namespace

int main() {
  print_header(
      "Table 4: compatibility with zero-noise extrapolation",
      "normalization + extrapolation >= normalization only on both tasks");
  const RunScale scale = scale_from_env();
  TextTable table({"method", "mnist4", "fashion4"});
  const Result mnist = run("mnist4", scale);
  const Result fashion = run("fashion4", scale);
  table.add_row({"normalization only", fmt_fixed(mnist.norm_only, 2),
                 fmt_fixed(fashion.norm_only, 2)});
  table.add_row({"normalization + extrapolation",
                 fmt_fixed(mnist.norm_plus_extrapolation, 2),
                 fmt_fixed(fashion.norm_plus_extrapolation, 2)});
  std::cout << table.render();
  return 0;
}
