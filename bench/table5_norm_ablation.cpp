// Table 5: post-measurement normalization improves both accuracy and SNR
// across four QNN architectures and three devices (MNIST-4). SNR is
// measured between noise-free and noisy first-block outcomes (raw for the
// baseline, normalized for +Norm).
#include <iostream>

#include "bench_common.hpp"
#include "core/metrics.hpp"

using namespace qnat;
using namespace qnat::bench;

namespace {

struct Cell {
  real acc;
  real snr_value;
};

Cell run(const std::string& device, int blocks, int layers, Method method,
         const RunScale& scale) {
  BenchConfig config;
  config.task = "mnist4";
  config.device = device;
  config.num_blocks = blocks;
  config.layers_per_block = layers;

  const TaskBundle task = load_task(config.task, scale);
  QnnModel model(make_arch(task.info, config));
  const Deployment deployment(model, make_device_noise_model(device),
                              config.optimization_level);
  const TrainerConfig trainer = make_trainer_config(config, method, scale);
  train_qnn(model, task.train, trainer);
  const QnnForwardOptions pipeline = pipeline_options(trainer);
  NoisyEvalOptions eval_options;
  eval_options.trajectories = scale.trajectories;

  Cell cell;
  cell.acc =
      noisy_accuracy(model, deployment, task.test, pipeline, eval_options);

  QnnForwardOptions raw;
  raw.normalize = false;
  QnnForwardCache ideal_cache, noisy_cache;
  qnn_forward_ideal(model, task.test.features, raw, &ideal_cache);
  qnn_forward_noisy(model, deployment, task.test.features, raw, eval_options,
                    &noisy_cache);
  if (method == Method::Baseline) {
    cell.snr_value = snr(ideal_cache.raw[0], noisy_cache.raw[0]);
  } else {
    cell.snr_value = snr(normalize_batch(ideal_cache.raw[0]),
                         normalize_batch(noisy_cache.raw[0]));
  }
  return cell;
}

}  // namespace

int main() {
  print_header(
      "Table 5: normalization ablation — accuracy & SNR (MNIST-4)",
      "+Norm raises accuracy and SNR in every architecture x device cell");
  const RunScale scale = scale_from_env();

  struct Arch {
    int blocks;
    int layers;
  };
  const std::vector<Arch> archs = {{2, 2}, {2, 8}, {4, 2}, {4, 4}};

  for (const std::string device : {"santiago", "quito", "athens"}) {
    TextTable table({"method (" + device + ")", "2Bx2L acc", "2Bx2L SNR",
                     "2Bx8L acc", "2Bx8L SNR", "4Bx2L acc", "4Bx2L SNR",
                     "4Bx4L acc", "4Bx4L SNR"});
    for (const Method method : {Method::Baseline, Method::PostNorm}) {
      std::vector<std::string> row{method == Method::Baseline ? "Baseline"
                                                              : "+Norm"};
      for (const Arch& arch : archs) {
        const Cell cell = run(device, arch.blocks, arch.layers, method,
                              scale);
        row.push_back(fmt_fixed(cell.acc, 2));
        row.push_back(fmt_fixed(cell.snr_value, 2));
      }
      table.add_row(row);
    }
    std::cout << table.render() << "\n";
  }
  return 0;
}
