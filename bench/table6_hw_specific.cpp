// Table 6 (appendix A.3.1): hardware-specific noise models matter. Train
// Fashion-2 models injecting noise from three different device models,
// deploy each on all three devices: the accuracy matrix should show a
// diagonal pattern (matching train-model and deploy-device wins).
#include <iostream>

#include "bench_common.hpp"

using namespace qnat;
using namespace qnat::bench;

namespace {

QnnModel train_with_device_model(const std::string& noise_device,
                                 const TaskBundle& task,
                                 const RunScale& scale) {
  BenchConfig config;
  config.task = "mnist4";
  config.device = noise_device;
  config.num_blocks = 2;
  config.layers_per_block = 6;
  QnnModel model(make_arch(task.info, config));
  const Deployment deployment(model, make_device_noise_model(noise_device),
                              config.optimization_level);
  TrainerConfig trainer = make_trainer_config(config, Method::GateInsert, scale);
  train_qnn(model, task.train, trainer, &deployment);
  return model;
}

}  // namespace

int main() {
  // The paper runs this on Fashion-2; our Fashion-2 surrogate saturates
  // near ceiling on every device, hiding the effect, so we use the harder
  // MNIST-4 at the Belem-row depth (2 blocks x 6 layers).
  print_header(
      "Table 6: cross-device noise-model matrix (MNIST-4, 2Bx6L)",
      "best accuracy when the injected noise model matches the deployment "
      "device (diagonal pattern)");
  const RunScale scale = scale_from_env();
  const TaskBundle task = load_task("mnist4", scale);
  const std::vector<std::string> devices{"santiago", "yorktown", "lima"};

  std::vector<QnnModel> models;
  for (const auto& d : devices) {
    models.push_back(train_with_device_model(d, task, scale));
  }

  BenchConfig config;
  config.task = "mnist4";
  config.num_blocks = 2;
  config.layers_per_block = 6;
  TextTable table({"inference \\ noise model", "santiago", "yorktown",
                   "lima"});
  for (const auto& deploy_device : devices) {
    std::vector<std::string> row{deploy_device};
    const NoiseModel device_model = make_device_noise_model(deploy_device);
    for (std::size_t m = 0; m < models.size(); ++m) {
      const Deployment deployment(models[m], device_model,
                                  config.optimization_level);
      TrainerConfig trainer =
          make_trainer_config(config, Method::GateInsert, scale);
      NoisyEvalOptions eval_options;
      eval_options.trajectories = scale.trajectories;
      row.push_back(fmt_fixed(
          noisy_accuracy(models[m], deployment, task.test,
                         pipeline_options(trainer), eval_options),
          2));
    }
    table.add_row(row);
  }
  std::cout << table.render();
  return 0;
}
