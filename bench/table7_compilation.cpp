// Table 7 (appendix A.3.2): compatibility with noise-adaptive compilation
// (optimization level 3 = noise-adaptive qubit mapping). Level-3
// compilation lifts the baseline, and QuantumNAT still adds ~10% on top.
#include <iostream>

#include "bench_common.hpp"

using namespace qnat;
using namespace qnat::bench;

int main() {
  print_header(
      "Table 7: MNIST-2 with noise-adaptive compilation (opt level 3)",
      "+Norm and +Noise&Quant still improve over the baseline even with "
      "the best compiler setting");
  const RunScale scale = scale_from_env();
  TextTable table({"method", "santiago", "yorktown", "belem", "athens"});

  const std::vector<Method> methods = {Method::Baseline, Method::PostNorm,
                                       Method::GateInsert, Method::PostQuant};
  const std::vector<std::string> labels = {"Baseline", "+Norm",
                                           "+Noise Inject.",
                                           "+Noise & Quant"};
  std::vector<std::vector<real>> acc(methods.size());
  for (const std::string device :
       {"santiago", "yorktown", "belem", "athens"}) {
    BenchConfig config;
    config.task = "mnist2";
    config.device = device;
    config.optimization_level = 3;
    for (std::size_t m = 0; m < methods.size(); ++m) {
      acc[m].push_back(run_method(config, methods[m], scale).noisy_accuracy);
    }
  }
  for (std::size_t m = 0; m < methods.size(); ++m) {
    std::vector<std::string> row{labels[m]};
    for (const real a : acc[m]) row.push_back(fmt_fixed(a, 2));
    table.add_row(row);
  }
  std::cout << table.render();
  return 0;
}
