// Table 8 (appendix A.3.3): fully-quantum single-block models. QuantumNAT
// (normalization + quantization on the *last* layer's outcomes, noise
// factor 0.5, 6 levels) still beats the baseline on most task/machine
// cells, with no intermediate measurements required.
#include <iostream>

#include "bench_common.hpp"

using namespace qnat;
using namespace qnat::bench;

int main() {
  print_header(
      "Table 8: fully-quantum (1-block) models",
      "QuantumNAT beats the baseline on most cells (paper: +7.4% average)");
  const RunScale scale = scale_from_env();

  const std::vector<std::string> tasks{"mnist4",  "fashion4", "vowel4",
                                       "mnist2",  "fashion2", "cifar2"};
  real base_sum = 0.0, nat_sum = 0.0;
  int cells = 0;
  for (const std::string device : {"santiago", "yorktown", "belem"}) {
    for (const int layers : {3, 6}) {
      TextTable table({"method (" + device + ", " + std::to_string(layers) +
                           "L)",
                       "mnist4", "fashion4", "vowel4", "mnist2", "fashion2",
                       "cifar2"});
      std::vector<std::string> base_row{"Baseline"};
      std::vector<std::string> nat_row{"QuantumNAT"};
      for (const std::string& task : tasks) {
        BenchConfig config;
        config.task = task;
        config.device = device;
        config.num_blocks = 1;
        config.layers_per_block = layers;
        config.noise_factor = 0.1;  // paper uses 0.5 on its T scale
        config.quant_levels = 6;
        config.apply_to_last = true;
        const real base =
            run_method(config, Method::Baseline, scale).noisy_accuracy;
        const real nat =
            run_method(config, Method::PostQuant, scale).noisy_accuracy;
        base_row.push_back(fmt_fixed(base, 2));
        nat_row.push_back(fmt_fixed(nat, 2));
        base_sum += base;
        nat_sum += nat;
        ++cells;
      }
      table.add_row(base_row);
      table.add_row(nat_row);
      std::cout << table.render() << "\n";
    }
  }
  std::cout << "Average: baseline " << fmt_fixed(base_sum / cells, 3)
            << " vs QuantumNAT " << fmt_fixed(nat_sum / cells, 3) << "\n";
  return 0;
}
