// Tables 9 & 10 (appendix A.3.4): the intermediate-measurement tradeoff.
// With six total layers split as 1x6, 2x3, 3x2, 6x1 (blocks x layers),
// there is a sweet spot (2 blocks x 3 layers in the paper) — more
// measurement boundaries allow more normalization/quantization denoising,
// but collapse the Hilbert space. Table 10 directly compares the
// fully-quantum 6L model with the original 2Bx3L model.
#include <iostream>

#include "bench_common.hpp"

using namespace qnat;
using namespace qnat::bench;

namespace {

real run_split(const std::string& task, const std::string& device,
               int blocks, int layers, const RunScale& scale) {
  BenchConfig config;
  config.task = task;
  config.device = device;
  config.num_blocks = blocks;
  config.layers_per_block = layers;
  config.noise_factor = 0.1;
  config.quant_levels = 6;
  // Fully-quantum configuration when there is a single block.
  config.apply_to_last = blocks == 1;
  return run_method(config, Method::GateInsert, scale).noisy_accuracy;
}

}  // namespace

int main() {
  print_header(
      "Table 9: effect of the number of intermediate measurements "
      "(Santiago) / Table 10: direct 6L vs 2Bx3L comparison",
      "an intermediate split (around 2 blocks x 3 layers) outperforms the "
      "fully-quantum 1x6 and the fully-classicalized 6x1 extremes");
  const RunScale scale = scale_from_env();

  TextTable table9({"task", "1B x 6L", "2B x 3L", "3B x 2L", "6B x 1L"});
  struct Split {
    int blocks;
    int layers;
  };
  const std::vector<Split> splits = {{1, 6}, {2, 3}, {3, 2}, {6, 1}};
  for (const std::string task : {"mnist4", "fashion4"}) {
    std::vector<std::string> row{task};
    for (const Split& s : splits) {
      row.push_back(
          fmt_fixed(run_split(task, "santiago", s.blocks, s.layers, scale),
                    2));
    }
    table9.add_row(row);
  }
  std::cout << table9.render() << "\n";

  TextTable table10(
      {"machine", "task", "fully-quantum (6L)", "original (2B x 3L)"});
  struct Row {
    std::string machine;
    std::string task;
  };
  for (const Row& r : std::vector<Row>{{"santiago", "mnist4"},
                                       {"santiago", "fashion4"},
                                       {"santiago", "mnist2"},
                                       {"belem", "mnist4"},
                                       {"belem", "fashion4"},
                                       {"belem", "mnist2"}}) {
    table10.add_row({r.machine, r.task,
                     fmt_fixed(run_split(r.task, r.machine, 1, 6, scale), 2),
                     fmt_fixed(run_split(r.task, r.machine, 2, 3, scale),
                               2)});
  }
  std::cout << table10.render();
  return 0;
}
