// Theorem 3.1 verification: noise maps measurement expectations as
// y -> γ·y + β_x, with input-independent γ and an input-dependent shift
// β_x. We regress noisy against ideal outcomes per qubit:
//  - under a Pauli-only device model the fit is near-perfect (R² ≈ 1,
//    residual β spread ≈ 0): β_x vanishes, normalization removes
//    everything;
//  - with coherent errors the residual spread is finite — the component
//    normalization cannot remove and noise-aware training targets;
//  - γ < 1 and shrinks on noisier devices.
#include <iostream>

#include "bench_common.hpp"
#include "core/theorem31.hpp"

using namespace qnat;
using namespace qnat::bench;

namespace {

NoiseModel without_coherent(NoiseModel model) {
  for (QubitIndex q = 0; q < model.num_qubits(); ++q) {
    model.set_coherent_overrotation(q, 0.0);
  }
  for (const auto& [a, b] : model.coupling_map()) {
    model.set_coherent_zz(a, b, 0.0);
  }
  return model;
}

struct FitSummary {
  real mean_gamma;
  real mean_beta_std;
  real mean_r2;
};

FitSummary summarize(const LinearMapFit& fit) {
  FitSummary s{0, 0, 0};
  for (std::size_t q = 0; q < fit.gamma.size(); ++q) {
    s.mean_gamma += fit.gamma[q];
    s.mean_beta_std += fit.beta_std[q];
    s.mean_r2 += fit.r_squared[q];
  }
  const auto n = static_cast<real>(fit.gamma.size());
  s.mean_gamma /= n;
  s.mean_beta_std /= n;
  s.mean_r2 /= n;
  return s;
}

}  // namespace

int main() {
  print_header(
      "Theorem 3.1: the noise-induced linear map y -> γ·y + β_x (MNIST-4)",
      "Pauli-only noise: R² ≈ 1, residual ≈ 0 (pure γ scaling). With "
      "coherent errors: finite residual spread. γ < 1, smaller on noisier "
      "devices.");
  const RunScale scale = scale_from_env();

  BenchConfig config;
  config.task = "mnist4";
  config.num_blocks = 2;
  config.layers_per_block = 6;
  const TaskBundle task = load_task(config.task, scale);
  QnnModel model(make_arch(task.info, config));
  const TrainerConfig trainer =
      make_trainer_config(config, Method::Baseline, scale);
  train_qnn(model, task.train, trainer);

  QnnForwardOptions raw;
  raw.normalize = false;
  QnnForwardCache ideal_cache;
  qnn_forward_ideal(model, task.test.features, raw, &ideal_cache);

  TextTable table({"device", "noise", "mean γ", "residual β std", "mean R²"});
  for (const std::string device : {"santiago", "belem", "yorktown"}) {
    const NoiseModel full = make_device_noise_model(device);
    for (const bool pauli_only : {true, false}) {
      const Deployment deployment(model,
                                  pauli_only ? without_coherent(full) : full,
                                  config.optimization_level);
      NoisyEvalOptions eval_options;
      QnnForwardCache noisy_cache;
      qnn_forward_noisy(model, deployment, task.test.features, raw,
                        eval_options, &noisy_cache);
      const FitSummary s = summarize(
          fit_noise_linear_map(ideal_cache.raw[0], noisy_cache.raw[0]));
      table.add_row({device, pauli_only ? "Pauli only" : "+ coherent",
                     fmt_fixed(s.mean_gamma, 3),
                     fmt_fixed(s.mean_beta_std, 4),
                     fmt_fixed(s.mean_r2, 3)});
    }
    table.add_separator();
  }
  std::cout << table.render();
  return 0;
}
