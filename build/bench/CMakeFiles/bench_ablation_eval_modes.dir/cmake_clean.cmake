file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_eval_modes.dir/ablation_eval_modes.cpp.o"
  "CMakeFiles/bench_ablation_eval_modes.dir/ablation_eval_modes.cpp.o.d"
  "CMakeFiles/bench_ablation_eval_modes.dir/bench_common.cpp.o"
  "CMakeFiles/bench_ablation_eval_modes.dir/bench_common.cpp.o.d"
  "bench_ablation_eval_modes"
  "bench_ablation_eval_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_eval_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
