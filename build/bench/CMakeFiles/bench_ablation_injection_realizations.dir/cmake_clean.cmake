file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_injection_realizations.dir/ablation_injection_realizations.cpp.o"
  "CMakeFiles/bench_ablation_injection_realizations.dir/ablation_injection_realizations.cpp.o.d"
  "CMakeFiles/bench_ablation_injection_realizations.dir/bench_common.cpp.o"
  "CMakeFiles/bench_ablation_injection_realizations.dir/bench_common.cpp.o.d"
  "bench_ablation_injection_realizations"
  "bench_ablation_injection_realizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_injection_realizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
