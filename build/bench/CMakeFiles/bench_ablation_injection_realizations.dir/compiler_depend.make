# Empty compiler generated dependencies file for bench_ablation_injection_realizations.
# This may be replaced when dependencies are built.
