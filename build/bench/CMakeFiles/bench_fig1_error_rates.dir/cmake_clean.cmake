file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_error_rates.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig1_error_rates.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig1_error_rates.dir/fig1_error_rates.cpp.o"
  "CMakeFiles/bench_fig1_error_rates.dir/fig1_error_rates.cpp.o.d"
  "bench_fig1_error_rates"
  "bench_fig1_error_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_error_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
