file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_normalization_snr.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig4_normalization_snr.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig4_normalization_snr.dir/fig4_normalization_snr.cpp.o"
  "CMakeFiles/bench_fig4_normalization_snr.dir/fig4_normalization_snr.cpp.o.d"
  "bench_fig4_normalization_snr"
  "bench_fig4_normalization_snr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_normalization_snr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
