# Empty dependencies file for bench_fig4_normalization_snr.
# This may be replaced when dependencies are built.
