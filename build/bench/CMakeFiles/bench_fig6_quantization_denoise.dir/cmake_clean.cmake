file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_quantization_denoise.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig6_quantization_denoise.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig6_quantization_denoise.dir/fig6_quantization_denoise.cpp.o"
  "CMakeFiles/bench_fig6_quantization_denoise.dir/fig6_quantization_denoise.cpp.o.d"
  "bench_fig6_quantization_denoise"
  "bench_fig6_quantization_denoise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_quantization_denoise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
