# Empty dependencies file for bench_fig6_quantization_denoise.
# This may be replaced when dependencies are built.
