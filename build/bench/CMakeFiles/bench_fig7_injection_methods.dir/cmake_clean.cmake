file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_injection_methods.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig7_injection_methods.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig7_injection_methods.dir/fig7_injection_methods.cpp.o"
  "CMakeFiles/bench_fig7_injection_methods.dir/fig7_injection_methods.cpp.o.d"
  "bench_fig7_injection_methods"
  "bench_fig7_injection_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_injection_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
