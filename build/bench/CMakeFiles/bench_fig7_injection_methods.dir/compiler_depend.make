# Empty compiler generated dependencies file for bench_fig7_injection_methods.
# This may be replaced when dependencies are built.
