# Empty compiler generated dependencies file for bench_fig8_contour.
# This may be replaced when dependencies are built.
