file(REMOVE_RECURSE
  "CMakeFiles/bench_finetune_drift.dir/bench_common.cpp.o"
  "CMakeFiles/bench_finetune_drift.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_finetune_drift.dir/finetune_drift.cpp.o"
  "CMakeFiles/bench_finetune_drift.dir/finetune_drift.cpp.o.d"
  "bench_finetune_drift"
  "bench_finetune_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_finetune_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
