# Empty dependencies file for bench_finetune_drift.
# This may be replaced when dependencies are built.
