file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_qsim.dir/micro_qsim.cpp.o"
  "CMakeFiles/bench_micro_qsim.dir/micro_qsim.cpp.o.d"
  "bench_micro_qsim"
  "bench_micro_qsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_qsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
