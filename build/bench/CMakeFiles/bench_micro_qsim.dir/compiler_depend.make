# Empty compiler generated dependencies file for bench_micro_qsim.
# This may be replaced when dependencies are built.
