file(REMOVE_RECURSE
  "CMakeFiles/bench_table11_model_gap.dir/bench_common.cpp.o"
  "CMakeFiles/bench_table11_model_gap.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_table11_model_gap.dir/table11_model_gap.cpp.o"
  "CMakeFiles/bench_table11_model_gap.dir/table11_model_gap.cpp.o.d"
  "bench_table11_model_gap"
  "bench_table11_model_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table11_model_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
