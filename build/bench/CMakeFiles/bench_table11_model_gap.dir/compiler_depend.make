# Empty compiler generated dependencies file for bench_table11_model_gap.
# This may be replaced when dependencies are built.
