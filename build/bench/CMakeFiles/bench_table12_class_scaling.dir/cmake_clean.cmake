file(REMOVE_RECURSE
  "CMakeFiles/bench_table12_class_scaling.dir/bench_common.cpp.o"
  "CMakeFiles/bench_table12_class_scaling.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_table12_class_scaling.dir/table12_class_scaling.cpp.o"
  "CMakeFiles/bench_table12_class_scaling.dir/table12_class_scaling.cpp.o.d"
  "bench_table12_class_scaling"
  "bench_table12_class_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table12_class_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
