# Empty compiler generated dependencies file for bench_table12_class_scaling.
# This may be replaced when dependencies are built.
