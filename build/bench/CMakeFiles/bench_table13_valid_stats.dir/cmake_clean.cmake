file(REMOVE_RECURSE
  "CMakeFiles/bench_table13_valid_stats.dir/bench_common.cpp.o"
  "CMakeFiles/bench_table13_valid_stats.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_table13_valid_stats.dir/table13_valid_stats.cpp.o"
  "CMakeFiles/bench_table13_valid_stats.dir/table13_valid_stats.cpp.o.d"
  "bench_table13_valid_stats"
  "bench_table13_valid_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table13_valid_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
