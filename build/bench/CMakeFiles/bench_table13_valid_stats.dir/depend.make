# Empty dependencies file for bench_table13_valid_stats.
# This may be replaced when dependencies are built.
