file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_design_spaces.dir/bench_common.cpp.o"
  "CMakeFiles/bench_table2_design_spaces.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_table2_design_spaces.dir/table2_design_spaces.cpp.o"
  "CMakeFiles/bench_table2_design_spaces.dir/table2_design_spaces.cpp.o.d"
  "bench_table2_design_spaces"
  "bench_table2_design_spaces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_design_spaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
