# Empty compiler generated dependencies file for bench_table2_design_spaces.
# This may be replaced when dependencies are built.
