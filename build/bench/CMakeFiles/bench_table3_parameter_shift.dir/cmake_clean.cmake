file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_parameter_shift.dir/bench_common.cpp.o"
  "CMakeFiles/bench_table3_parameter_shift.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_table3_parameter_shift.dir/table3_parameter_shift.cpp.o"
  "CMakeFiles/bench_table3_parameter_shift.dir/table3_parameter_shift.cpp.o.d"
  "bench_table3_parameter_shift"
  "bench_table3_parameter_shift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_parameter_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
