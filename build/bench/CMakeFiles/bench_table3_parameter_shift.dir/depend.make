# Empty dependencies file for bench_table3_parameter_shift.
# This may be replaced when dependencies are built.
