file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_extrapolation.dir/bench_common.cpp.o"
  "CMakeFiles/bench_table4_extrapolation.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_table4_extrapolation.dir/table4_extrapolation.cpp.o"
  "CMakeFiles/bench_table4_extrapolation.dir/table4_extrapolation.cpp.o.d"
  "bench_table4_extrapolation"
  "bench_table4_extrapolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_extrapolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
