file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_norm_ablation.dir/bench_common.cpp.o"
  "CMakeFiles/bench_table5_norm_ablation.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_table5_norm_ablation.dir/table5_norm_ablation.cpp.o"
  "CMakeFiles/bench_table5_norm_ablation.dir/table5_norm_ablation.cpp.o.d"
  "bench_table5_norm_ablation"
  "bench_table5_norm_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_norm_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
