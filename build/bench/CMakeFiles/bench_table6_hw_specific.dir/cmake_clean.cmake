file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_hw_specific.dir/bench_common.cpp.o"
  "CMakeFiles/bench_table6_hw_specific.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_table6_hw_specific.dir/table6_hw_specific.cpp.o"
  "CMakeFiles/bench_table6_hw_specific.dir/table6_hw_specific.cpp.o.d"
  "bench_table6_hw_specific"
  "bench_table6_hw_specific.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_hw_specific.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
