# Empty compiler generated dependencies file for bench_table6_hw_specific.
# This may be replaced when dependencies are built.
