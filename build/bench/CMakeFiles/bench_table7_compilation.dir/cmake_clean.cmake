file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_compilation.dir/bench_common.cpp.o"
  "CMakeFiles/bench_table7_compilation.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_table7_compilation.dir/table7_compilation.cpp.o"
  "CMakeFiles/bench_table7_compilation.dir/table7_compilation.cpp.o.d"
  "bench_table7_compilation"
  "bench_table7_compilation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_compilation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
