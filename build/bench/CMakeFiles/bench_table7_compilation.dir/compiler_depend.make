# Empty compiler generated dependencies file for bench_table7_compilation.
# This may be replaced when dependencies are built.
