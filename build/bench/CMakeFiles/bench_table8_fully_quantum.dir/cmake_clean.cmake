file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_fully_quantum.dir/bench_common.cpp.o"
  "CMakeFiles/bench_table8_fully_quantum.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_table8_fully_quantum.dir/table8_fully_quantum.cpp.o"
  "CMakeFiles/bench_table8_fully_quantum.dir/table8_fully_quantum.cpp.o.d"
  "bench_table8_fully_quantum"
  "bench_table8_fully_quantum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_fully_quantum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
