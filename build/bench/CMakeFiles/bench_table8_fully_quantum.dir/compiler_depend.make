# Empty compiler generated dependencies file for bench_table8_fully_quantum.
# This may be replaced when dependencies are built.
