file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_10_blocks.dir/bench_common.cpp.o"
  "CMakeFiles/bench_table9_10_blocks.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_table9_10_blocks.dir/table9_10_blocks.cpp.o"
  "CMakeFiles/bench_table9_10_blocks.dir/table9_10_blocks.cpp.o.d"
  "bench_table9_10_blocks"
  "bench_table9_10_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_10_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
