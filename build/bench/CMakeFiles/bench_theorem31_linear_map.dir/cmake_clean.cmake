file(REMOVE_RECURSE
  "CMakeFiles/bench_theorem31_linear_map.dir/bench_common.cpp.o"
  "CMakeFiles/bench_theorem31_linear_map.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_theorem31_linear_map.dir/theorem31_linear_map.cpp.o"
  "CMakeFiles/bench_theorem31_linear_map.dir/theorem31_linear_map.cpp.o.d"
  "bench_theorem31_linear_map"
  "bench_theorem31_linear_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorem31_linear_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
