# Empty compiler generated dependencies file for bench_theorem31_linear_map.
# This may be replaced when dependencies are built.
