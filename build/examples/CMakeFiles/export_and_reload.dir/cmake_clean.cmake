file(REMOVE_RECURSE
  "CMakeFiles/export_and_reload.dir/export_and_reload.cpp.o"
  "CMakeFiles/export_and_reload.dir/export_and_reload.cpp.o.d"
  "export_and_reload"
  "export_and_reload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_and_reload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
