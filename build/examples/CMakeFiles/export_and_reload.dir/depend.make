# Empty dependencies file for export_and_reload.
# This may be replaced when dependencies are built.
