file(REMOVE_RECURSE
  "CMakeFiles/mnist4_noise_aware.dir/mnist4_noise_aware.cpp.o"
  "CMakeFiles/mnist4_noise_aware.dir/mnist4_noise_aware.cpp.o.d"
  "mnist4_noise_aware"
  "mnist4_noise_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnist4_noise_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
