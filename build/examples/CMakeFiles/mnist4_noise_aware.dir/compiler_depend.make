# Empty compiler generated dependencies file for mnist4_noise_aware.
# This may be replaced when dependencies are built.
