file(REMOVE_RECURSE
  "CMakeFiles/on_qc_training.dir/on_qc_training.cpp.o"
  "CMakeFiles/on_qc_training.dir/on_qc_training.cpp.o.d"
  "on_qc_training"
  "on_qc_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/on_qc_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
