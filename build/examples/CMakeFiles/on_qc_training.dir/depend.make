# Empty dependencies file for on_qc_training.
# This may be replaced when dependencies are built.
