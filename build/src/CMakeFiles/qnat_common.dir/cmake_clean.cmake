file(REMOVE_RECURSE
  "CMakeFiles/qnat_common.dir/common/matrix.cpp.o"
  "CMakeFiles/qnat_common.dir/common/matrix.cpp.o.d"
  "CMakeFiles/qnat_common.dir/common/rng.cpp.o"
  "CMakeFiles/qnat_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/qnat_common.dir/common/table.cpp.o"
  "CMakeFiles/qnat_common.dir/common/table.cpp.o.d"
  "CMakeFiles/qnat_common.dir/common/thread_pool.cpp.o"
  "CMakeFiles/qnat_common.dir/common/thread_pool.cpp.o.d"
  "libqnat_common.a"
  "libqnat_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qnat_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
