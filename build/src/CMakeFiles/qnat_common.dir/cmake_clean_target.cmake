file(REMOVE_RECURSE
  "libqnat_common.a"
)
