# Empty compiler generated dependencies file for qnat_common.
# This may be replaced when dependencies are built.
