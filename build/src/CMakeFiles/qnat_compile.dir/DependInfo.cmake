
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compile/basis.cpp" "src/CMakeFiles/qnat_compile.dir/compile/basis.cpp.o" "gcc" "src/CMakeFiles/qnat_compile.dir/compile/basis.cpp.o.d"
  "/root/repo/src/compile/passes.cpp" "src/CMakeFiles/qnat_compile.dir/compile/passes.cpp.o" "gcc" "src/CMakeFiles/qnat_compile.dir/compile/passes.cpp.o.d"
  "/root/repo/src/compile/qasm.cpp" "src/CMakeFiles/qnat_compile.dir/compile/qasm.cpp.o" "gcc" "src/CMakeFiles/qnat_compile.dir/compile/qasm.cpp.o.d"
  "/root/repo/src/compile/routing.cpp" "src/CMakeFiles/qnat_compile.dir/compile/routing.cpp.o" "gcc" "src/CMakeFiles/qnat_compile.dir/compile/routing.cpp.o.d"
  "/root/repo/src/compile/transpiler.cpp" "src/CMakeFiles/qnat_compile.dir/compile/transpiler.cpp.o" "gcc" "src/CMakeFiles/qnat_compile.dir/compile/transpiler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qnat_qsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
