file(REMOVE_RECURSE
  "CMakeFiles/qnat_compile.dir/compile/basis.cpp.o"
  "CMakeFiles/qnat_compile.dir/compile/basis.cpp.o.d"
  "CMakeFiles/qnat_compile.dir/compile/passes.cpp.o"
  "CMakeFiles/qnat_compile.dir/compile/passes.cpp.o.d"
  "CMakeFiles/qnat_compile.dir/compile/qasm.cpp.o"
  "CMakeFiles/qnat_compile.dir/compile/qasm.cpp.o.d"
  "CMakeFiles/qnat_compile.dir/compile/routing.cpp.o"
  "CMakeFiles/qnat_compile.dir/compile/routing.cpp.o.d"
  "CMakeFiles/qnat_compile.dir/compile/transpiler.cpp.o"
  "CMakeFiles/qnat_compile.dir/compile/transpiler.cpp.o.d"
  "libqnat_compile.a"
  "libqnat_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qnat_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
