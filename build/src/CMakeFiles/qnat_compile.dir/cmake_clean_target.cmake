file(REMOVE_RECURSE
  "libqnat_compile.a"
)
