# Empty dependencies file for qnat_compile.
# This may be replaced when dependencies are built.
