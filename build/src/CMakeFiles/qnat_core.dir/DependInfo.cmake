
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/design_space.cpp" "src/CMakeFiles/qnat_core.dir/core/design_space.cpp.o" "gcc" "src/CMakeFiles/qnat_core.dir/core/design_space.cpp.o.d"
  "/root/repo/src/core/encoder.cpp" "src/CMakeFiles/qnat_core.dir/core/encoder.cpp.o" "gcc" "src/CMakeFiles/qnat_core.dir/core/encoder.cpp.o.d"
  "/root/repo/src/core/evaluator.cpp" "src/CMakeFiles/qnat_core.dir/core/evaluator.cpp.o" "gcc" "src/CMakeFiles/qnat_core.dir/core/evaluator.cpp.o.d"
  "/root/repo/src/core/extrapolation.cpp" "src/CMakeFiles/qnat_core.dir/core/extrapolation.cpp.o" "gcc" "src/CMakeFiles/qnat_core.dir/core/extrapolation.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/CMakeFiles/qnat_core.dir/core/metrics.cpp.o" "gcc" "src/CMakeFiles/qnat_core.dir/core/metrics.cpp.o.d"
  "/root/repo/src/core/noise_injector.cpp" "src/CMakeFiles/qnat_core.dir/core/noise_injector.cpp.o" "gcc" "src/CMakeFiles/qnat_core.dir/core/noise_injector.cpp.o.d"
  "/root/repo/src/core/normalization.cpp" "src/CMakeFiles/qnat_core.dir/core/normalization.cpp.o" "gcc" "src/CMakeFiles/qnat_core.dir/core/normalization.cpp.o.d"
  "/root/repo/src/core/onqc_trainer.cpp" "src/CMakeFiles/qnat_core.dir/core/onqc_trainer.cpp.o" "gcc" "src/CMakeFiles/qnat_core.dir/core/onqc_trainer.cpp.o.d"
  "/root/repo/src/core/qnn.cpp" "src/CMakeFiles/qnat_core.dir/core/qnn.cpp.o" "gcc" "src/CMakeFiles/qnat_core.dir/core/qnn.cpp.o.d"
  "/root/repo/src/core/quantization.cpp" "src/CMakeFiles/qnat_core.dir/core/quantization.cpp.o" "gcc" "src/CMakeFiles/qnat_core.dir/core/quantization.cpp.o.d"
  "/root/repo/src/core/serialization.cpp" "src/CMakeFiles/qnat_core.dir/core/serialization.cpp.o" "gcc" "src/CMakeFiles/qnat_core.dir/core/serialization.cpp.o.d"
  "/root/repo/src/core/theorem31.cpp" "src/CMakeFiles/qnat_core.dir/core/theorem31.cpp.o" "gcc" "src/CMakeFiles/qnat_core.dir/core/theorem31.cpp.o.d"
  "/root/repo/src/core/trainer.cpp" "src/CMakeFiles/qnat_core.dir/core/trainer.cpp.o" "gcc" "src/CMakeFiles/qnat_core.dir/core/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qnat_grad.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_compile.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_qsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
