file(REMOVE_RECURSE
  "CMakeFiles/qnat_core.dir/core/design_space.cpp.o"
  "CMakeFiles/qnat_core.dir/core/design_space.cpp.o.d"
  "CMakeFiles/qnat_core.dir/core/encoder.cpp.o"
  "CMakeFiles/qnat_core.dir/core/encoder.cpp.o.d"
  "CMakeFiles/qnat_core.dir/core/evaluator.cpp.o"
  "CMakeFiles/qnat_core.dir/core/evaluator.cpp.o.d"
  "CMakeFiles/qnat_core.dir/core/extrapolation.cpp.o"
  "CMakeFiles/qnat_core.dir/core/extrapolation.cpp.o.d"
  "CMakeFiles/qnat_core.dir/core/metrics.cpp.o"
  "CMakeFiles/qnat_core.dir/core/metrics.cpp.o.d"
  "CMakeFiles/qnat_core.dir/core/noise_injector.cpp.o"
  "CMakeFiles/qnat_core.dir/core/noise_injector.cpp.o.d"
  "CMakeFiles/qnat_core.dir/core/normalization.cpp.o"
  "CMakeFiles/qnat_core.dir/core/normalization.cpp.o.d"
  "CMakeFiles/qnat_core.dir/core/onqc_trainer.cpp.o"
  "CMakeFiles/qnat_core.dir/core/onqc_trainer.cpp.o.d"
  "CMakeFiles/qnat_core.dir/core/qnn.cpp.o"
  "CMakeFiles/qnat_core.dir/core/qnn.cpp.o.d"
  "CMakeFiles/qnat_core.dir/core/quantization.cpp.o"
  "CMakeFiles/qnat_core.dir/core/quantization.cpp.o.d"
  "CMakeFiles/qnat_core.dir/core/serialization.cpp.o"
  "CMakeFiles/qnat_core.dir/core/serialization.cpp.o.d"
  "CMakeFiles/qnat_core.dir/core/theorem31.cpp.o"
  "CMakeFiles/qnat_core.dir/core/theorem31.cpp.o.d"
  "CMakeFiles/qnat_core.dir/core/trainer.cpp.o"
  "CMakeFiles/qnat_core.dir/core/trainer.cpp.o.d"
  "libqnat_core.a"
  "libqnat_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qnat_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
