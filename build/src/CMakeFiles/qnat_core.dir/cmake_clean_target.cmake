file(REMOVE_RECURSE
  "libqnat_core.a"
)
