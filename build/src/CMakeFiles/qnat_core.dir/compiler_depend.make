# Empty compiler generated dependencies file for qnat_core.
# This may be replaced when dependencies are built.
