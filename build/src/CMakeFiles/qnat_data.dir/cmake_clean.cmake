file(REMOVE_RECURSE
  "CMakeFiles/qnat_data.dir/data/dataset.cpp.o"
  "CMakeFiles/qnat_data.dir/data/dataset.cpp.o.d"
  "CMakeFiles/qnat_data.dir/data/preprocess.cpp.o"
  "CMakeFiles/qnat_data.dir/data/preprocess.cpp.o.d"
  "CMakeFiles/qnat_data.dir/data/synthetic.cpp.o"
  "CMakeFiles/qnat_data.dir/data/synthetic.cpp.o.d"
  "CMakeFiles/qnat_data.dir/data/tasks.cpp.o"
  "CMakeFiles/qnat_data.dir/data/tasks.cpp.o.d"
  "libqnat_data.a"
  "libqnat_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qnat_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
