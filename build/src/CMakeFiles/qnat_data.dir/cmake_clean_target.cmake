file(REMOVE_RECURSE
  "libqnat_data.a"
)
