# Empty compiler generated dependencies file for qnat_data.
# This may be replaced when dependencies are built.
