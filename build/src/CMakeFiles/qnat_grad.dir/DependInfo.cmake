
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grad/adjoint.cpp" "src/CMakeFiles/qnat_grad.dir/grad/adjoint.cpp.o" "gcc" "src/CMakeFiles/qnat_grad.dir/grad/adjoint.cpp.o.d"
  "/root/repo/src/grad/finite_diff.cpp" "src/CMakeFiles/qnat_grad.dir/grad/finite_diff.cpp.o" "gcc" "src/CMakeFiles/qnat_grad.dir/grad/finite_diff.cpp.o.d"
  "/root/repo/src/grad/parameter_shift.cpp" "src/CMakeFiles/qnat_grad.dir/grad/parameter_shift.cpp.o" "gcc" "src/CMakeFiles/qnat_grad.dir/grad/parameter_shift.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qnat_qsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
