file(REMOVE_RECURSE
  "CMakeFiles/qnat_grad.dir/grad/adjoint.cpp.o"
  "CMakeFiles/qnat_grad.dir/grad/adjoint.cpp.o.d"
  "CMakeFiles/qnat_grad.dir/grad/finite_diff.cpp.o"
  "CMakeFiles/qnat_grad.dir/grad/finite_diff.cpp.o.d"
  "CMakeFiles/qnat_grad.dir/grad/parameter_shift.cpp.o"
  "CMakeFiles/qnat_grad.dir/grad/parameter_shift.cpp.o.d"
  "libqnat_grad.a"
  "libqnat_grad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qnat_grad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
