file(REMOVE_RECURSE
  "libqnat_grad.a"
)
