# Empty compiler generated dependencies file for qnat_grad.
# This may be replaced when dependencies are built.
