
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/losses.cpp" "src/CMakeFiles/qnat_nn.dir/nn/losses.cpp.o" "gcc" "src/CMakeFiles/qnat_nn.dir/nn/losses.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/CMakeFiles/qnat_nn.dir/nn/optimizer.cpp.o" "gcc" "src/CMakeFiles/qnat_nn.dir/nn/optimizer.cpp.o.d"
  "/root/repo/src/nn/scheduler.cpp" "src/CMakeFiles/qnat_nn.dir/nn/scheduler.cpp.o" "gcc" "src/CMakeFiles/qnat_nn.dir/nn/scheduler.cpp.o.d"
  "/root/repo/src/nn/tensor.cpp" "src/CMakeFiles/qnat_nn.dir/nn/tensor.cpp.o" "gcc" "src/CMakeFiles/qnat_nn.dir/nn/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qnat_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
