file(REMOVE_RECURSE
  "CMakeFiles/qnat_nn.dir/nn/losses.cpp.o"
  "CMakeFiles/qnat_nn.dir/nn/losses.cpp.o.d"
  "CMakeFiles/qnat_nn.dir/nn/optimizer.cpp.o"
  "CMakeFiles/qnat_nn.dir/nn/optimizer.cpp.o.d"
  "CMakeFiles/qnat_nn.dir/nn/scheduler.cpp.o"
  "CMakeFiles/qnat_nn.dir/nn/scheduler.cpp.o.d"
  "CMakeFiles/qnat_nn.dir/nn/tensor.cpp.o"
  "CMakeFiles/qnat_nn.dir/nn/tensor.cpp.o.d"
  "libqnat_nn.a"
  "libqnat_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qnat_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
