file(REMOVE_RECURSE
  "libqnat_nn.a"
)
