# Empty dependencies file for qnat_nn.
# This may be replaced when dependencies are built.
