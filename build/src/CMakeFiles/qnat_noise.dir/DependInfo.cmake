
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/noise/channel_simulator.cpp" "src/CMakeFiles/qnat_noise.dir/noise/channel_simulator.cpp.o" "gcc" "src/CMakeFiles/qnat_noise.dir/noise/channel_simulator.cpp.o.d"
  "/root/repo/src/noise/device_presets.cpp" "src/CMakeFiles/qnat_noise.dir/noise/device_presets.cpp.o" "gcc" "src/CMakeFiles/qnat_noise.dir/noise/device_presets.cpp.o.d"
  "/root/repo/src/noise/error_inserter.cpp" "src/CMakeFiles/qnat_noise.dir/noise/error_inserter.cpp.o" "gcc" "src/CMakeFiles/qnat_noise.dir/noise/error_inserter.cpp.o.d"
  "/root/repo/src/noise/noise_model.cpp" "src/CMakeFiles/qnat_noise.dir/noise/noise_model.cpp.o" "gcc" "src/CMakeFiles/qnat_noise.dir/noise/noise_model.cpp.o.d"
  "/root/repo/src/noise/readout_error.cpp" "src/CMakeFiles/qnat_noise.dir/noise/readout_error.cpp.o" "gcc" "src/CMakeFiles/qnat_noise.dir/noise/readout_error.cpp.o.d"
  "/root/repo/src/noise/twirling.cpp" "src/CMakeFiles/qnat_noise.dir/noise/twirling.cpp.o" "gcc" "src/CMakeFiles/qnat_noise.dir/noise/twirling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qnat_qsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
