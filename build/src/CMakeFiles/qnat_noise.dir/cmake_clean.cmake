file(REMOVE_RECURSE
  "CMakeFiles/qnat_noise.dir/noise/channel_simulator.cpp.o"
  "CMakeFiles/qnat_noise.dir/noise/channel_simulator.cpp.o.d"
  "CMakeFiles/qnat_noise.dir/noise/device_presets.cpp.o"
  "CMakeFiles/qnat_noise.dir/noise/device_presets.cpp.o.d"
  "CMakeFiles/qnat_noise.dir/noise/error_inserter.cpp.o"
  "CMakeFiles/qnat_noise.dir/noise/error_inserter.cpp.o.d"
  "CMakeFiles/qnat_noise.dir/noise/noise_model.cpp.o"
  "CMakeFiles/qnat_noise.dir/noise/noise_model.cpp.o.d"
  "CMakeFiles/qnat_noise.dir/noise/readout_error.cpp.o"
  "CMakeFiles/qnat_noise.dir/noise/readout_error.cpp.o.d"
  "CMakeFiles/qnat_noise.dir/noise/twirling.cpp.o"
  "CMakeFiles/qnat_noise.dir/noise/twirling.cpp.o.d"
  "libqnat_noise.a"
  "libqnat_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qnat_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
