file(REMOVE_RECURSE
  "libqnat_noise.a"
)
