# Empty compiler generated dependencies file for qnat_noise.
# This may be replaced when dependencies are built.
