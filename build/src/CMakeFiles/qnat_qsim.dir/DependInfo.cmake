
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qsim/circuit.cpp" "src/CMakeFiles/qnat_qsim.dir/qsim/circuit.cpp.o" "gcc" "src/CMakeFiles/qnat_qsim.dir/qsim/circuit.cpp.o.d"
  "/root/repo/src/qsim/density_matrix.cpp" "src/CMakeFiles/qnat_qsim.dir/qsim/density_matrix.cpp.o" "gcc" "src/CMakeFiles/qnat_qsim.dir/qsim/density_matrix.cpp.o.d"
  "/root/repo/src/qsim/execution.cpp" "src/CMakeFiles/qnat_qsim.dir/qsim/execution.cpp.o" "gcc" "src/CMakeFiles/qnat_qsim.dir/qsim/execution.cpp.o.d"
  "/root/repo/src/qsim/gate.cpp" "src/CMakeFiles/qnat_qsim.dir/qsim/gate.cpp.o" "gcc" "src/CMakeFiles/qnat_qsim.dir/qsim/gate.cpp.o.d"
  "/root/repo/src/qsim/pauli_channel.cpp" "src/CMakeFiles/qnat_qsim.dir/qsim/pauli_channel.cpp.o" "gcc" "src/CMakeFiles/qnat_qsim.dir/qsim/pauli_channel.cpp.o.d"
  "/root/repo/src/qsim/statevector.cpp" "src/CMakeFiles/qnat_qsim.dir/qsim/statevector.cpp.o" "gcc" "src/CMakeFiles/qnat_qsim.dir/qsim/statevector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qnat_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
