file(REMOVE_RECURSE
  "CMakeFiles/qnat_qsim.dir/qsim/circuit.cpp.o"
  "CMakeFiles/qnat_qsim.dir/qsim/circuit.cpp.o.d"
  "CMakeFiles/qnat_qsim.dir/qsim/density_matrix.cpp.o"
  "CMakeFiles/qnat_qsim.dir/qsim/density_matrix.cpp.o.d"
  "CMakeFiles/qnat_qsim.dir/qsim/execution.cpp.o"
  "CMakeFiles/qnat_qsim.dir/qsim/execution.cpp.o.d"
  "CMakeFiles/qnat_qsim.dir/qsim/gate.cpp.o"
  "CMakeFiles/qnat_qsim.dir/qsim/gate.cpp.o.d"
  "CMakeFiles/qnat_qsim.dir/qsim/pauli_channel.cpp.o"
  "CMakeFiles/qnat_qsim.dir/qsim/pauli_channel.cpp.o.d"
  "CMakeFiles/qnat_qsim.dir/qsim/statevector.cpp.o"
  "CMakeFiles/qnat_qsim.dir/qsim/statevector.cpp.o.d"
  "libqnat_qsim.a"
  "libqnat_qsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qnat_qsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
