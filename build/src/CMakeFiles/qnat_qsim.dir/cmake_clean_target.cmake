file(REMOVE_RECURSE
  "libqnat_qsim.a"
)
