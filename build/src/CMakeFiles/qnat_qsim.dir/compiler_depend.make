# Empty compiler generated dependencies file for qnat_qsim.
# This may be replaced when dependencies are built.
