
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/test_matrix.cpp" "tests/CMakeFiles/test_common.dir/common/test_matrix.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_matrix.cpp.o.d"
  "/root/repo/tests/common/test_rng.cpp" "tests/CMakeFiles/test_common.dir/common/test_rng.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_rng.cpp.o.d"
  "/root/repo/tests/common/test_table.cpp" "tests/CMakeFiles/test_common.dir/common/test_table.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_table.cpp.o.d"
  "/root/repo/tests/common/test_thread_pool.cpp" "tests/CMakeFiles/test_common.dir/common/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qnat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_grad.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_compile.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_qsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
