
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/compile/test_basis.cpp" "tests/CMakeFiles/test_compile.dir/compile/test_basis.cpp.o" "gcc" "tests/CMakeFiles/test_compile.dir/compile/test_basis.cpp.o.d"
  "/root/repo/tests/compile/test_passes.cpp" "tests/CMakeFiles/test_compile.dir/compile/test_passes.cpp.o" "gcc" "tests/CMakeFiles/test_compile.dir/compile/test_passes.cpp.o.d"
  "/root/repo/tests/compile/test_property_sweeps.cpp" "tests/CMakeFiles/test_compile.dir/compile/test_property_sweeps.cpp.o" "gcc" "tests/CMakeFiles/test_compile.dir/compile/test_property_sweeps.cpp.o.d"
  "/root/repo/tests/compile/test_qasm.cpp" "tests/CMakeFiles/test_compile.dir/compile/test_qasm.cpp.o" "gcc" "tests/CMakeFiles/test_compile.dir/compile/test_qasm.cpp.o.d"
  "/root/repo/tests/compile/test_routing.cpp" "tests/CMakeFiles/test_compile.dir/compile/test_routing.cpp.o" "gcc" "tests/CMakeFiles/test_compile.dir/compile/test_routing.cpp.o.d"
  "/root/repo/tests/compile/test_transpiler.cpp" "tests/CMakeFiles/test_compile.dir/compile/test_transpiler.cpp.o" "gcc" "tests/CMakeFiles/test_compile.dir/compile/test_transpiler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qnat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_grad.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_compile.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_qsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
