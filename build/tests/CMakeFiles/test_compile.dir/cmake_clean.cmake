file(REMOVE_RECURSE
  "CMakeFiles/test_compile.dir/compile/test_basis.cpp.o"
  "CMakeFiles/test_compile.dir/compile/test_basis.cpp.o.d"
  "CMakeFiles/test_compile.dir/compile/test_passes.cpp.o"
  "CMakeFiles/test_compile.dir/compile/test_passes.cpp.o.d"
  "CMakeFiles/test_compile.dir/compile/test_property_sweeps.cpp.o"
  "CMakeFiles/test_compile.dir/compile/test_property_sweeps.cpp.o.d"
  "CMakeFiles/test_compile.dir/compile/test_qasm.cpp.o"
  "CMakeFiles/test_compile.dir/compile/test_qasm.cpp.o.d"
  "CMakeFiles/test_compile.dir/compile/test_routing.cpp.o"
  "CMakeFiles/test_compile.dir/compile/test_routing.cpp.o.d"
  "CMakeFiles/test_compile.dir/compile/test_transpiler.cpp.o"
  "CMakeFiles/test_compile.dir/compile/test_transpiler.cpp.o.d"
  "test_compile"
  "test_compile.pdb"
  "test_compile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
