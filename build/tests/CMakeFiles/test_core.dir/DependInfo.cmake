
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_design_space.cpp" "tests/CMakeFiles/test_core.dir/core/test_design_space.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_design_space.cpp.o.d"
  "/root/repo/tests/core/test_encoder.cpp" "tests/CMakeFiles/test_core.dir/core/test_encoder.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_encoder.cpp.o.d"
  "/root/repo/tests/core/test_evaluator.cpp" "tests/CMakeFiles/test_core.dir/core/test_evaluator.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_evaluator.cpp.o.d"
  "/root/repo/tests/core/test_extrapolation.cpp" "tests/CMakeFiles/test_core.dir/core/test_extrapolation.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_extrapolation.cpp.o.d"
  "/root/repo/tests/core/test_metrics.cpp" "tests/CMakeFiles/test_core.dir/core/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_metrics.cpp.o.d"
  "/root/repo/tests/core/test_noise_injector.cpp" "tests/CMakeFiles/test_core.dir/core/test_noise_injector.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_noise_injector.cpp.o.d"
  "/root/repo/tests/core/test_normalization.cpp" "tests/CMakeFiles/test_core.dir/core/test_normalization.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_normalization.cpp.o.d"
  "/root/repo/tests/core/test_onqc_trainer.cpp" "tests/CMakeFiles/test_core.dir/core/test_onqc_trainer.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_onqc_trainer.cpp.o.d"
  "/root/repo/tests/core/test_qnn.cpp" "tests/CMakeFiles/test_core.dir/core/test_qnn.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_qnn.cpp.o.d"
  "/root/repo/tests/core/test_quantization.cpp" "tests/CMakeFiles/test_core.dir/core/test_quantization.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_quantization.cpp.o.d"
  "/root/repo/tests/core/test_serialization.cpp" "tests/CMakeFiles/test_core.dir/core/test_serialization.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_serialization.cpp.o.d"
  "/root/repo/tests/core/test_step_plans.cpp" "tests/CMakeFiles/test_core.dir/core/test_step_plans.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_step_plans.cpp.o.d"
  "/root/repo/tests/core/test_theorem31.cpp" "tests/CMakeFiles/test_core.dir/core/test_theorem31.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_theorem31.cpp.o.d"
  "/root/repo/tests/core/test_trainer.cpp" "tests/CMakeFiles/test_core.dir/core/test_trainer.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qnat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_grad.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_compile.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_qsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
