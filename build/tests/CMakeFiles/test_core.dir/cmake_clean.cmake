file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_design_space.cpp.o"
  "CMakeFiles/test_core.dir/core/test_design_space.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_encoder.cpp.o"
  "CMakeFiles/test_core.dir/core/test_encoder.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_evaluator.cpp.o"
  "CMakeFiles/test_core.dir/core/test_evaluator.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_extrapolation.cpp.o"
  "CMakeFiles/test_core.dir/core/test_extrapolation.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_metrics.cpp.o"
  "CMakeFiles/test_core.dir/core/test_metrics.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_noise_injector.cpp.o"
  "CMakeFiles/test_core.dir/core/test_noise_injector.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_normalization.cpp.o"
  "CMakeFiles/test_core.dir/core/test_normalization.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_onqc_trainer.cpp.o"
  "CMakeFiles/test_core.dir/core/test_onqc_trainer.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_qnn.cpp.o"
  "CMakeFiles/test_core.dir/core/test_qnn.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_quantization.cpp.o"
  "CMakeFiles/test_core.dir/core/test_quantization.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_serialization.cpp.o"
  "CMakeFiles/test_core.dir/core/test_serialization.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_step_plans.cpp.o"
  "CMakeFiles/test_core.dir/core/test_step_plans.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_theorem31.cpp.o"
  "CMakeFiles/test_core.dir/core/test_theorem31.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_trainer.cpp.o"
  "CMakeFiles/test_core.dir/core/test_trainer.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
