file(REMOVE_RECURSE
  "CMakeFiles/test_data.dir/data/test_dataset.cpp.o"
  "CMakeFiles/test_data.dir/data/test_dataset.cpp.o.d"
  "CMakeFiles/test_data.dir/data/test_preprocess.cpp.o"
  "CMakeFiles/test_data.dir/data/test_preprocess.cpp.o.d"
  "CMakeFiles/test_data.dir/data/test_synthetic.cpp.o"
  "CMakeFiles/test_data.dir/data/test_synthetic.cpp.o.d"
  "CMakeFiles/test_data.dir/data/test_tasks.cpp.o"
  "CMakeFiles/test_data.dir/data/test_tasks.cpp.o.d"
  "test_data"
  "test_data.pdb"
  "test_data[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
