
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/grad/test_adjoint.cpp" "tests/CMakeFiles/test_grad.dir/grad/test_adjoint.cpp.o" "gcc" "tests/CMakeFiles/test_grad.dir/grad/test_adjoint.cpp.o.d"
  "/root/repo/tests/grad/test_gradient_crosscheck.cpp" "tests/CMakeFiles/test_grad.dir/grad/test_gradient_crosscheck.cpp.o" "gcc" "tests/CMakeFiles/test_grad.dir/grad/test_gradient_crosscheck.cpp.o.d"
  "/root/repo/tests/grad/test_parameter_shift.cpp" "tests/CMakeFiles/test_grad.dir/grad/test_parameter_shift.cpp.o" "gcc" "tests/CMakeFiles/test_grad.dir/grad/test_parameter_shift.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qnat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_grad.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_compile.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_qsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
