file(REMOVE_RECURSE
  "CMakeFiles/test_grad.dir/grad/test_adjoint.cpp.o"
  "CMakeFiles/test_grad.dir/grad/test_adjoint.cpp.o.d"
  "CMakeFiles/test_grad.dir/grad/test_gradient_crosscheck.cpp.o"
  "CMakeFiles/test_grad.dir/grad/test_gradient_crosscheck.cpp.o.d"
  "CMakeFiles/test_grad.dir/grad/test_parameter_shift.cpp.o"
  "CMakeFiles/test_grad.dir/grad/test_parameter_shift.cpp.o.d"
  "test_grad"
  "test_grad.pdb"
  "test_grad[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
