# Empty compiler generated dependencies file for test_grad.
# This may be replaced when dependencies are built.
