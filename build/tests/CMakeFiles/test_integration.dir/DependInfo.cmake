
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/test_parallel_determinism.cpp" "tests/CMakeFiles/test_integration.dir/integration/test_parallel_determinism.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_parallel_determinism.cpp.o.d"
  "/root/repo/tests/integration/test_pipeline.cpp" "tests/CMakeFiles/test_integration.dir/integration/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_pipeline.cpp.o.d"
  "/root/repo/tests/integration/test_training.cpp" "tests/CMakeFiles/test_integration.dir/integration/test_training.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_training.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qnat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_grad.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_compile.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_qsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
