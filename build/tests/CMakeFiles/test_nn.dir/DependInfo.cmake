
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nn/test_losses.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_losses.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_losses.cpp.o.d"
  "/root/repo/tests/nn/test_optimizer.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_optimizer.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_optimizer.cpp.o.d"
  "/root/repo/tests/nn/test_scheduler.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_scheduler.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_scheduler.cpp.o.d"
  "/root/repo/tests/nn/test_tensor.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_tensor.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qnat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_grad.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_compile.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_qsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
