
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/noise/test_channel_simulator.cpp" "tests/CMakeFiles/test_noise.dir/noise/test_channel_simulator.cpp.o" "gcc" "tests/CMakeFiles/test_noise.dir/noise/test_channel_simulator.cpp.o.d"
  "/root/repo/tests/noise/test_device_presets.cpp" "tests/CMakeFiles/test_noise.dir/noise/test_device_presets.cpp.o" "gcc" "tests/CMakeFiles/test_noise.dir/noise/test_device_presets.cpp.o.d"
  "/root/repo/tests/noise/test_error_inserter.cpp" "tests/CMakeFiles/test_noise.dir/noise/test_error_inserter.cpp.o" "gcc" "tests/CMakeFiles/test_noise.dir/noise/test_error_inserter.cpp.o.d"
  "/root/repo/tests/noise/test_noise_model.cpp" "tests/CMakeFiles/test_noise.dir/noise/test_noise_model.cpp.o" "gcc" "tests/CMakeFiles/test_noise.dir/noise/test_noise_model.cpp.o.d"
  "/root/repo/tests/noise/test_pauli_channel.cpp" "tests/CMakeFiles/test_noise.dir/noise/test_pauli_channel.cpp.o" "gcc" "tests/CMakeFiles/test_noise.dir/noise/test_pauli_channel.cpp.o.d"
  "/root/repo/tests/noise/test_readout_error.cpp" "tests/CMakeFiles/test_noise.dir/noise/test_readout_error.cpp.o" "gcc" "tests/CMakeFiles/test_noise.dir/noise/test_readout_error.cpp.o.d"
  "/root/repo/tests/noise/test_twirling.cpp" "tests/CMakeFiles/test_noise.dir/noise/test_twirling.cpp.o" "gcc" "tests/CMakeFiles/test_noise.dir/noise/test_twirling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qnat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_grad.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_compile.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_qsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
