file(REMOVE_RECURSE
  "CMakeFiles/test_noise.dir/noise/test_channel_simulator.cpp.o"
  "CMakeFiles/test_noise.dir/noise/test_channel_simulator.cpp.o.d"
  "CMakeFiles/test_noise.dir/noise/test_device_presets.cpp.o"
  "CMakeFiles/test_noise.dir/noise/test_device_presets.cpp.o.d"
  "CMakeFiles/test_noise.dir/noise/test_error_inserter.cpp.o"
  "CMakeFiles/test_noise.dir/noise/test_error_inserter.cpp.o.d"
  "CMakeFiles/test_noise.dir/noise/test_noise_model.cpp.o"
  "CMakeFiles/test_noise.dir/noise/test_noise_model.cpp.o.d"
  "CMakeFiles/test_noise.dir/noise/test_pauli_channel.cpp.o"
  "CMakeFiles/test_noise.dir/noise/test_pauli_channel.cpp.o.d"
  "CMakeFiles/test_noise.dir/noise/test_readout_error.cpp.o"
  "CMakeFiles/test_noise.dir/noise/test_readout_error.cpp.o.d"
  "CMakeFiles/test_noise.dir/noise/test_twirling.cpp.o"
  "CMakeFiles/test_noise.dir/noise/test_twirling.cpp.o.d"
  "test_noise"
  "test_noise.pdb"
  "test_noise[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
