
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/qsim/test_circuit.cpp" "tests/CMakeFiles/test_qsim.dir/qsim/test_circuit.cpp.o" "gcc" "tests/CMakeFiles/test_qsim.dir/qsim/test_circuit.cpp.o.d"
  "/root/repo/tests/qsim/test_density_matrix.cpp" "tests/CMakeFiles/test_qsim.dir/qsim/test_density_matrix.cpp.o" "gcc" "tests/CMakeFiles/test_qsim.dir/qsim/test_density_matrix.cpp.o.d"
  "/root/repo/tests/qsim/test_execution.cpp" "tests/CMakeFiles/test_qsim.dir/qsim/test_execution.cpp.o" "gcc" "tests/CMakeFiles/test_qsim.dir/qsim/test_execution.cpp.o.d"
  "/root/repo/tests/qsim/test_gate.cpp" "tests/CMakeFiles/test_qsim.dir/qsim/test_gate.cpp.o" "gcc" "tests/CMakeFiles/test_qsim.dir/qsim/test_gate.cpp.o.d"
  "/root/repo/tests/qsim/test_statevector.cpp" "tests/CMakeFiles/test_qsim.dir/qsim/test_statevector.cpp.o" "gcc" "tests/CMakeFiles/test_qsim.dir/qsim/test_statevector.cpp.o.d"
  "/root/repo/tests/qsim/test_sv_dm_equivalence.cpp" "tests/CMakeFiles/test_qsim.dir/qsim/test_sv_dm_equivalence.cpp.o" "gcc" "tests/CMakeFiles/test_qsim.dir/qsim/test_sv_dm_equivalence.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qnat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_grad.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_compile.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_qsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qnat_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
