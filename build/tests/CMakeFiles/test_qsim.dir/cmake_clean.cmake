file(REMOVE_RECURSE
  "CMakeFiles/test_qsim.dir/qsim/test_circuit.cpp.o"
  "CMakeFiles/test_qsim.dir/qsim/test_circuit.cpp.o.d"
  "CMakeFiles/test_qsim.dir/qsim/test_density_matrix.cpp.o"
  "CMakeFiles/test_qsim.dir/qsim/test_density_matrix.cpp.o.d"
  "CMakeFiles/test_qsim.dir/qsim/test_execution.cpp.o"
  "CMakeFiles/test_qsim.dir/qsim/test_execution.cpp.o.d"
  "CMakeFiles/test_qsim.dir/qsim/test_gate.cpp.o"
  "CMakeFiles/test_qsim.dir/qsim/test_gate.cpp.o.d"
  "CMakeFiles/test_qsim.dir/qsim/test_statevector.cpp.o"
  "CMakeFiles/test_qsim.dir/qsim/test_statevector.cpp.o.d"
  "CMakeFiles/test_qsim.dir/qsim/test_sv_dm_equivalence.cpp.o"
  "CMakeFiles/test_qsim.dir/qsim/test_sv_dm_equivalence.cpp.o.d"
  "test_qsim"
  "test_qsim.pdb"
  "test_qsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
