# Build-time git describe: regenerates a tiny header every build so run
# manifests never carry a stale revision (the old configure-time bake
# went stale as soon as a commit landed without re-running cmake). The
# header is only rewritten when the description actually changes, so an
# unchanged tree does not trigger a metrics.cpp recompile.
execute_process(
  COMMAND git describe --always --dirty --tags
  WORKING_DIRECTORY ${SOURCE_DIR}
  OUTPUT_VARIABLE QNAT_GIT_DESCRIBE
  OUTPUT_STRIP_TRAILING_WHITESPACE
  ERROR_QUIET
)
if(NOT QNAT_GIT_DESCRIBE)
  set(QNAT_GIT_DESCRIBE "unknown")
endif()
set(content "#define QNAT_GIT_DESCRIBE \"${QNAT_GIT_DESCRIBE}\"\n")
set(previous "")
if(EXISTS ${OUT})
  file(READ ${OUT} previous)
endif()
if(NOT content STREQUAL previous)
  file(WRITE ${OUT} ${content})
endif()
