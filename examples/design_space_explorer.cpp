// Explores the five QNN design spaces on one task/device pair: builds a
// 2-block model in each space, prints its circuit statistics (gate count,
// parameters, transpiled depth on hardware), trains it noise-aware, and
// reports accuracy — a miniature of the paper's Table 2 study plus the
// compiler's view of each ansatz.
#include <iostream>

#include "common/table.hpp"
#include "core/trainer.hpp"
#include "data/tasks.hpp"
#include "noise/device_presets.hpp"
#include "noise/error_inserter.hpp"

using namespace qnat;

int main() {
  const TaskBundle task = make_task("fashion2", /*samples_per_class=*/50);
  const NoiseModel device = make_device_noise_model("santiago");

  struct SpaceSpec {
    DesignSpace space;
    int layers;  // one full cycle
  };
  const std::vector<SpaceSpec> specs = {
      {DesignSpace::U3CU3, 2},      {DesignSpace::ZZRY, 2},
      {DesignSpace::RXYZ, 5},       {DesignSpace::ZXXX, 2},
      {DesignSpace::RXYZU1CU3, 11},
  };

  TextTable table({"design space", "params", "logical gates",
                   "compiled gates", "expected error gates/step",
                   "noise-free acc", "on-device acc"});
  for (const SpaceSpec& spec : specs) {
    QnnArchitecture arch;
    arch.num_qubits = 4;
    arch.num_blocks = 2;
    arch.layers_per_block = spec.layers;
    arch.space = spec.space;
    arch.input_features = 16;
    arch.num_classes = 2;
    QnnModel model(arch);
    const Deployment deployment(model, device, 2);

    std::size_t logical_gates = 0;
    std::size_t compiled_gates = 0;
    double expected_errors = 0.0;
    for (std::size_t b = 0; b < model.blocks().size(); ++b) {
      logical_gates += model.blocks()[b].circuit.size();
      const Circuit& compiled = deployment.compiled_blocks()[b].circuit;
      compiled_gates += compiled.size();
      expected_errors += expected_insertions(compiled, device, 1.0);
    }

    TrainerConfig config;
    config.epochs = 12;
    config.batch_size = 16;
    config.quantize = true;
    config.injection.method = InjectionMethod::GateInsertion;
    config.injection.noise_factor = 0.1;
    train_qnn(model, task.train, config, &deployment);

    const QnnForwardOptions pipeline = pipeline_options(config);
    NoisyEvalOptions eval_options;
    eval_options.trajectories = 8;
    table.add_row(
        {design_space_name(spec.space), std::to_string(model.num_weights()),
         std::to_string(logical_gates), std::to_string(compiled_gates),
         fmt_fixed(expected_errors, 3),
         fmt_fixed(ideal_accuracy(model, task.test, pipeline), 2),
         fmt_fixed(noisy_accuracy(model, deployment, task.test, pipeline,
                                  eval_options),
                   2)});
  }
  std::cout << table.render();
  return 0;
}
