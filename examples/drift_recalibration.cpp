// Drift + online recalibration walkthrough: deploy a noise-aware model
// to the serving fleet, let the device drift underneath it, watch the
// shift detector trip on served traffic, and hot-swap a recalibrated
// version without dropping a request.
//
//   $ ./drift_recalibration [--drift-preset NAME] [--drift-tick N]
//
// The drift engine (src/noise/drift) evolves a calibration-day noise
// model along a virtual clock, deterministically per seed: the same
// (preset, seed, tick) always yields the byte-identical device, so the
// whole episode below replays exactly.
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <vector>

#include "core/trainer.hpp"
#include "data/tasks.hpp"
#include "noise/device_presets.hpp"
#include "noise/drift/drift.hpp"
#include "serve/recalibration.hpp"
#include "serve/registry.hpp"

using namespace qnat;

namespace {

double accuracy(const serve::ServableModel& servable, const Dataset& data,
                std::uint64_t id_base) {
  std::vector<std::uint64_t> ids(data.size());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = id_base + i;
  const Tensor2D logits = servable.run_batch(data.features, ids);
  std::size_t hits = 0;
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < logits.cols(); ++c) {
      if (logits(r, c) > logits(r, best)) best = c;
    }
    if (static_cast<int>(best) == data.labels[r]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(data.size());
}

}  // namespace

int main(int argc, char** argv) {
  std::string preset = "aggressive";
  std::int64_t tick = 150;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--drift-preset") == 0) preset = argv[i + 1];
    if (std::strcmp(argv[i], "--drift-tick") == 0) {
      tick = std::atoll(argv[i + 1]);
    }
  }

  // 1. Train a noise-aware MNIST-4 model (normalization on: the online
  //    recovery leans on re-profiling the A.3.7 statistics).
  const TaskBundle task = make_task("mnist4", 40, 11);
  QnnArchitecture arch;
  arch.num_qubits = 4;
  arch.num_blocks = 2;
  arch.layers_per_block = 2;
  arch.input_features = 16;
  arch.num_classes = 4;
  QnnModel model(arch);
  TrainerConfig trainer;
  trainer.epochs = 10;
  trainer.batch_size = 16;
  trainer.normalize = true;
  trainer.seed = 1234;
  std::cout << "training mnist4 (normalize on)...\n";
  train_qnn(model, task.train, trainer);

  // 2. Deploy against the calibration-day device.
  DriftConfig drift_config = drift_preset(preset);
  drift_config.seed = 424242;
  const DriftModel drift(make_device_noise_model("santiago"), drift_config);
  serve::ModelRegistry registry;
  serve::ServingOptions options;
  options.normalize = true;
  options.device_override = std::make_shared<NoiseModel>(drift.at(0));
  const Tensor2D& profiling = task.train.features;
  const auto fresh = registry.add("mnist4", model, options, &profiling);
  std::cout << "deployed " << fresh->spec() << " against "
            << drift.stamp(0) << "\n";
  std::cout << "fresh accuracy:        " << accuracy(*fresh, task.test, 1000)
            << "\n";

  // 3. Prime the recalibration controller while the device is fresh.
  serve::RecalibrationConfig rc;
  rc.traffic_capacity = profiling.rows();
  rc.min_traffic = std::min(rc.min_traffic, rc.traffic_capacity);
  serve::RecalibrationController controller(registry, "mnist4", rc);
  controller.prime(profiling);

  // 4. The device drifts; the deployment's statistics go stale.
  serve::ServingOptions stale = options;
  stale.device_override = std::make_shared<NoiseModel>(drift.at(tick));
  stale.profile_override = std::make_shared<serve::ProfiledStats>(
      serve::ProfiledStats{fresh->profiled_mean(), fresh->profiled_std()});
  const auto drifted = registry.add("mnist4", model, stale, &profiling);
  std::cout << "device drifted to " << drift.stamp(tick) << "\n";
  std::cout << "stale accuracy:        "
            << accuracy(*drifted, task.test, 2000) << "\n";

  // 5. Served traffic streams through the detector in request-id order.
  std::vector<std::uint64_t> ids(profiling.rows());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = 3000 + i;
  const Tensor2D traffic_logits = drifted->run_batch(profiling, ids);
  for (std::size_t r = 0; r < profiling.rows(); ++r) {
    controller.observe(profiling.row(r), traffic_logits.row(r));
  }
  std::cout << "shift detected:        "
            << (controller.shift_detected() ? "yes" : "no")
            << " (max CUSUM statistic "
            << controller.detector().max_statistic() << ")\n";

  // 6. Recalibrate: re-profile against recent traffic, fit the per-logit
  //    corrector, hot-swap the successor version. In-flight requests on
  //    the old version finish on the shared_ptr they already hold.
  const auto recalibrated = controller.recalibrate();
  std::cout << "hot-swapped " << recalibrated->spec() << "\n";
  std::cout << "recalibrated accuracy: "
            << accuracy(*recalibrated, task.test, 4000) << "\n";
  return 0;
}
