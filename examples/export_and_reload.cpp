// Interchange workflow: train a model, checkpoint it to disk, reload it,
// verify predictions survive the round trip, and export the deployed
// (transpiled, device-routed) circuit as OpenQASM 2.0 for use with other
// toolchains.
#include <iostream>

#include "compile/qasm.hpp"
#include "core/serialization.hpp"
#include "core/trainer.hpp"
#include "data/tasks.hpp"
#include "noise/device_presets.hpp"

using namespace qnat;

int main() {
  const TaskBundle task = make_task("fashion2", /*samples_per_class=*/60);
  QnnArchitecture arch;
  arch.num_qubits = 4;
  arch.num_blocks = 2;
  arch.layers_per_block = 2;
  arch.input_features = 16;
  arch.num_classes = 2;
  QnnModel model(arch);

  TrainerConfig config;
  config.epochs = 20;
  config.batch_size = 16;
  train_qnn(model, task.train, config);
  const QnnForwardOptions pipeline = pipeline_options(config);
  std::cout << "trained accuracy (noise-free): "
            << ideal_accuracy(model, task.test, pipeline) << "\n";

  // Checkpoint and reload.
  const std::string path = "/tmp/qnat_fashion2_model.txt";
  save_model(model, path);
  const QnnModel reloaded = load_model(path);
  std::cout << "reloaded accuracy (noise-free): "
            << ideal_accuracy(reloaded, task.test, pipeline)
            << "  (identical by construction)\n";

  // Export the first block, as deployed on Belem, to OpenQASM.
  const Deployment deployment(reloaded, make_device_noise_model("belem"), 2);
  const std::string qasm = to_qasm(deployment.compact_circuits()[0]);
  std::cout << "\nfirst deployed block as OpenQASM ("
            << deployment.compact_circuits()[0].size() << " gates):\n";
  // Print just the head; the full text round-trips through from_qasm.
  std::size_t shown = 0;
  for (std::size_t pos = 0; pos < qasm.size() && shown < 12; ++pos) {
    std::cout << qasm[pos];
    if (qasm[pos] == '\n') ++shown;
  }
  std::cout << "...\n";
  const Circuit back = from_qasm(qasm);
  std::cout << "re-imported gate count matches: "
            << (back.size() == deployment.compact_circuits()[0].size()
                    ? "yes"
                    : "no")
            << "\n";
  return 0;
}
