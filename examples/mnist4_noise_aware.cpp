// MNIST-4 walkthrough of the full QuantumNAT cascade: trains the same
// architecture four ways (baseline, +normalization, +gate insertion,
// +quantization) and reports how each stage recovers on-device accuracy —
// the paper's Table 1 story on one task.
//
// --train-workers N (or QNAT_TRAIN_WORKERS) runs each stage's training
// on the data-parallel engine; unset keeps the legacy single loop.
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/metrics.hpp"
#include "common/simd.hpp"
#include "qsim/backend/backend.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "core/parallel_trainer.hpp"
#include "core/trainer.hpp"
#include "data/tasks.hpp"
#include "noise/device_presets.hpp"
#include "qsim/program.hpp"

using namespace qnat;

namespace {

struct Stage {
  std::string label;
  bool normalize;
  bool inject;
  bool quantize;
};

// --train-workers N on the command line, else QNAT_TRAIN_WORKERS; -1
// when neither is present (legacy single-loop trainer).
int train_workers_arg(int argc, char** argv) {
  int workers = -1;
  if (const char* env = std::getenv("QNAT_TRAIN_WORKERS")) {
    workers = std::atoi(env);
  }
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--train-workers") == 0) {
      workers = std::atoi(argv[i + 1]);
    }
  }
  return workers;
}

}  // namespace

int main(int argc, char** argv) {
  const metrics::ObservabilityOptions observability =
      metrics::observability_from_args(argc, argv);
  const int train_workers = train_workers_arg(argc, argv);
  const TaskBundle task = make_task("mnist4", /*samples_per_class=*/50);
  const NoiseModel device = make_device_noise_model("belem");

  QnnArchitecture arch;
  arch.num_qubits = 4;
  arch.num_blocks = 2;
  arch.layers_per_block = 6;
  arch.input_features = 16;
  arch.num_classes = 4;

  const std::vector<Stage> stages = {
      {"Baseline", false, false, false},
      {"+ Post Norm.", true, false, false},
      {"+ Gate Insert.", true, true, false},
      {"+ Post Quant.", true, true, true},
  };

  TextTable table({"method", "noise-free acc", "on-device acc"});
  for (const Stage& stage : stages) {
    QnnModel model(arch);
    const Deployment deployment(model, device, 2);

    TrainerConfig config;
    config.epochs = 12;
    config.batch_size = 16;
    config.normalize = stage.normalize;
    config.quantize = stage.quantize;
    config.quant.levels = 5;
    if (stage.inject) {
      config.injection.method = InjectionMethod::GateInsertion;
      config.injection.noise_factor = 0.1;
    }
    config.workers = train_workers > 0 ? train_workers : 0;
    if (train_workers >= 0) {
      train_qnn_parallel(model, task.train, config,
                         stage.inject ? &deployment : nullptr);
    } else {
      train_qnn(model, task.train, config,
                stage.inject ? &deployment : nullptr);
    }

    const QnnForwardOptions pipeline = pipeline_options(config);
    NoisyEvalOptions eval_options;
    eval_options.trajectories = 8;
    table.add_row({stage.label,
                   fmt_fixed(ideal_accuracy(model, task.test, pipeline), 2),
                   fmt_fixed(noisy_accuracy(model, deployment, task.test,
                                            pipeline, eval_options),
                             2)});
  }
  std::cout << table.render();
  std::cout << "Each stage should claw back on-device accuracy; the\n"
               "noise-free column shows the (small) clean-accuracy cost.\n";

  metrics::RunManifest manifest;
  manifest.label = "mnist4_noise_aware";
  manifest.threads = num_threads();
  manifest.fused = default_fusion();
  manifest.simd = simd::enabled();
  manifest.backend = std::string(backend::active().name());
  metrics::write_observability(observability, manifest);
  return 0;
}
