// On-device training with the parameter-shift rule (paper Table 3).
//
// When classical simulation is infeasible, gradients can be measured on
// the quantum device itself: shift each gate angle by ±π/2, re-run, and
// difference the expectations. Gradients measured through a noisy device
// are naturally noise-aware. This example trains a tiny two-qubit
// classifier two ways — classically (noise-unaware) and through the noisy
// "device" executor — and compares deployed accuracy, reporting the
// device-evaluation budget each gradient costs.
#include <iostream>

#include "compile/transpiler.hpp"
#include "core/onqc_trainer.hpp"
#include "data/tasks.hpp"
#include "noise/device_presets.hpp"

using namespace qnat;

namespace {

// 2 encoder RY gates + 2 blocks of (2 RY + CNOT): 6 parameters total,
// the first 2 bound to the input features.
Circuit build_circuit() {
  Circuit c(2, 6);
  c.ry(0, 0);
  c.ry(1, 1);
  c.ry(0, 2);
  c.ry(1, 3);
  c.cx(0, 1);
  c.ry(0, 4);
  c.ry(1, 5);
  c.cx(0, 1);
  return c;
}

}  // namespace

int main() {
  const TaskBundle task = make_task("twofeature2", /*samples_per_class=*/40);
  const NoiseModel device = make_device_noise_model("lima");
  const Circuit logical = build_circuit();
  const TranspileResult compiled = transpile(logical, device, 2);
  std::cout << "compiled to " << compiled.circuit.size()
            << " basis gates on " << device.device_name() << "; "
            << parameter_shift_num_evaluations(compiled.circuit)
            << " device evaluations per per-sample gradient\n";

  const CircuitExecutor noisy_device = make_noisy_device_executor(
      device, compiled.final_layout, 2, /*trajectories=*/8, /*seed=*/17);

  OnDeviceTrainConfig config;
  config.epochs = 25;

  // Noise-unaware: classical training on the logical circuit.
  ParamVector classical(4);
  train_on_device(logical, 2, task.train, make_ideal_executor(), classical,
                  config);

  // Noise-aware: every gradient measured through the noisy device.
  ParamVector on_device(4);
  const OnDeviceTrainResult result = train_on_device(
      compiled.circuit, 2, task.train, noisy_device, on_device, config);
  std::cout << "noise-aware training consumed " << result.device_evaluations
            << " device circuit evaluations\n";

  std::cout << "noise-unaware (classical training) accuracy on device: "
            << on_device_accuracy(compiled.circuit, 2, task.test,
                                  noisy_device, classical)
            << "\n";
  std::cout << "noise-aware (on-device parameter-shift) accuracy:       "
            << on_device_accuracy(compiled.circuit, 2, task.test,
                                  noisy_device, on_device)
            << "\n";
  return 0;
}
