// Quickstart: build a 2-block QNN, train it noise-aware for MNIST-2, and
// compare noise-free vs on-device accuracy.
//
//   $ ./quickstart [--train-workers N] [--metrics-out metrics.json]
//                  [--trace-out trace.json]
//
// Walks through the library's core objects: task loading, architecture,
// deployment (transpile onto a noisy device), noise-aware training, and
// evaluation. With --train-workers N (or QNAT_TRAIN_WORKERS) training
// runs on the data-parallel engine — same weights byte-for-byte at any
// worker count, just faster. With --metrics-out the run dumps a
// structured metrics snapshot (plus run manifest); --trace-out writes a
// chrome://tracing phase timeline.
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/metrics.hpp"
#include "common/simd.hpp"
#include "qsim/backend/backend.hpp"
#include "common/thread_pool.hpp"
#include "core/parallel_trainer.hpp"
#include "core/trainer.hpp"
#include "data/tasks.hpp"
#include "noise/device_presets.hpp"
#include "qsim/program.hpp"

using namespace qnat;

namespace {

// --train-workers N on the command line, else QNAT_TRAIN_WORKERS.
// Returns -1 when neither is present: the example then keeps the legacy
// single-loop trainer. 0 means the parallel engine on the process-wide
// pool; N >= 1 resizes the pool to exactly N workers.
int train_workers_arg(int argc, char** argv) {
  int workers = -1;
  if (const char* env = std::getenv("QNAT_TRAIN_WORKERS")) {
    workers = std::atoi(env);
  }
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--train-workers") == 0) {
      workers = std::atoi(argv[i + 1]);
    }
  }
  return workers;
}

}  // namespace

int main(int argc, char** argv) {
  const metrics::ObservabilityOptions observability =
      metrics::observability_from_args(argc, argv);
  const int train_workers = train_workers_arg(argc, argv);
  // 1. Load a task: synthetic MNIST-2 (digits 3 vs 6), preprocessed to a
  //    16-dimensional feature vector exactly as in the paper.
  const TaskBundle task = make_task("mnist2", /*samples_per_class=*/60);
  std::cout << "task: " << task.info.name << " ("
            << task.train.size() << " train / " << task.valid.size()
            << " valid / " << task.test.size() << " test samples)\n";

  // 2. Describe the model: 2 blocks, each with a U3 layer + a CU3 ring.
  QnnArchitecture arch;
  arch.num_qubits = task.info.num_qubits;
  arch.num_blocks = 2;
  arch.layers_per_block = 2;
  arch.input_features = task.info.feature_dim;
  arch.num_classes = task.info.num_classes;
  QnnModel model(arch);
  std::cout << "model: " << arch.num_blocks << " blocks x "
            << arch.layers_per_block << " layers, " << model.num_weights()
            << " trainable parameters\n";

  // 3. Deploy on a simulated IBMQ-Yorktown: transpiles every block to the
  //    hardware basis and binds the device noise model.
  const Deployment deployment(model, make_device_noise_model("yorktown"),
                              /*optimization_level=*/2);

  // 4. Noise-aware training: post-measurement normalization, error-gate
  //    insertion (noise factor 0.1) with readout injection, and 5-level
  //    post-measurement quantization.
  TrainerConfig config;
  config.epochs = 15;
  config.batch_size = 16;
  config.quantize = true;
  config.quant.levels = 5;
  config.injection.method = InjectionMethod::GateInsertion;
  config.injection.noise_factor = 0.1;
  config.workers = train_workers > 0 ? train_workers : 0;
  const TrainResult result =
      train_workers >= 0
          ? train_qnn_parallel(model, task.train, config, &deployment)
          : train_qnn(model, task.train, config, &deployment);
  std::cout << "training loss: " << result.epoch_loss.front() << " -> "
            << result.epoch_loss.back() << "\n";

  // 5. Evaluate noise-free and under device noise.
  const QnnForwardOptions pipeline = pipeline_options(config);
  NoisyEvalOptions eval_options;
  eval_options.trajectories = 8;
  std::cout << "noise-free test accuracy: "
            << ideal_accuracy(model, task.test, pipeline) << "\n";
  std::cout << "on-device (yorktown) test accuracy: "
            << noisy_accuracy(model, deployment, task.test, pipeline,
                              eval_options)
            << "\n";

  // 6. Optional observability dump: metrics snapshot + phase trace.
  metrics::RunManifest manifest;
  manifest.label = "quickstart";
  manifest.seed = config.seed;
  manifest.threads = num_threads();
  manifest.fused = default_fusion();
  manifest.simd = simd::enabled();
  manifest.backend = std::string(backend::active().name());
  metrics::write_observability(observability, manifest);
  return 0;
}
