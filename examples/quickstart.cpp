// Quickstart: build a 2-block QNN, train it noise-aware for MNIST-2, and
// compare noise-free vs on-device accuracy.
//
//   $ ./quickstart [--metrics-out metrics.json] [--trace-out trace.json]
//
// Walks through the library's core objects: task loading, architecture,
// deployment (transpile onto a noisy device), noise-aware training, and
// evaluation. With --metrics-out the run dumps a structured metrics
// snapshot (plus run manifest); --trace-out writes a chrome://tracing
// phase timeline.
#include <iostream>

#include "common/metrics.hpp"
#include "common/simd.hpp"
#include "qsim/backend/backend.hpp"
#include "common/thread_pool.hpp"
#include "core/trainer.hpp"
#include "data/tasks.hpp"
#include "noise/device_presets.hpp"
#include "qsim/program.hpp"

using namespace qnat;

int main(int argc, char** argv) {
  const metrics::ObservabilityOptions observability =
      metrics::observability_from_args(argc, argv);
  // 1. Load a task: synthetic MNIST-2 (digits 3 vs 6), preprocessed to a
  //    16-dimensional feature vector exactly as in the paper.
  const TaskBundle task = make_task("mnist2", /*samples_per_class=*/60);
  std::cout << "task: " << task.info.name << " ("
            << task.train.size() << " train / " << task.valid.size()
            << " valid / " << task.test.size() << " test samples)\n";

  // 2. Describe the model: 2 blocks, each with a U3 layer + a CU3 ring.
  QnnArchitecture arch;
  arch.num_qubits = task.info.num_qubits;
  arch.num_blocks = 2;
  arch.layers_per_block = 2;
  arch.input_features = task.info.feature_dim;
  arch.num_classes = task.info.num_classes;
  QnnModel model(arch);
  std::cout << "model: " << arch.num_blocks << " blocks x "
            << arch.layers_per_block << " layers, " << model.num_weights()
            << " trainable parameters\n";

  // 3. Deploy on a simulated IBMQ-Yorktown: transpiles every block to the
  //    hardware basis and binds the device noise model.
  const Deployment deployment(model, make_device_noise_model("yorktown"),
                              /*optimization_level=*/2);

  // 4. Noise-aware training: post-measurement normalization, error-gate
  //    insertion (noise factor 0.1) with readout injection, and 5-level
  //    post-measurement quantization.
  TrainerConfig config;
  config.epochs = 15;
  config.batch_size = 16;
  config.quantize = true;
  config.quant.levels = 5;
  config.injection.method = InjectionMethod::GateInsertion;
  config.injection.noise_factor = 0.1;
  const TrainResult result = train_qnn(model, task.train, config, &deployment);
  std::cout << "training loss: " << result.epoch_loss.front() << " -> "
            << result.epoch_loss.back() << "\n";

  // 5. Evaluate noise-free and under device noise.
  const QnnForwardOptions pipeline = pipeline_options(config);
  NoisyEvalOptions eval_options;
  eval_options.trajectories = 8;
  std::cout << "noise-free test accuracy: "
            << ideal_accuracy(model, task.test, pipeline) << "\n";
  std::cout << "on-device (yorktown) test accuracy: "
            << noisy_accuracy(model, deployment, task.test, pipeline,
                              eval_options)
            << "\n";

  // 6. Optional observability dump: metrics snapshot + phase trace.
  metrics::RunManifest manifest;
  manifest.label = "quickstart";
  manifest.seed = config.seed;
  manifest.threads = num_threads();
  manifest.fused = default_fusion();
  manifest.simd = simd::enabled();
  manifest.backend = std::string(backend::active().name());
  metrics::write_observability(observability, manifest);
  return 0;
}
