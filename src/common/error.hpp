// Error handling for the QuantumNAT library.
//
// The library reports precondition violations and invalid configurations by
// throwing `qnat::Error`. Hot inner loops (statevector updates) use plain
// assertions compiled out in release builds; everything user-facing uses
// QNAT_CHECK so misuse produces an actionable message instead of UB.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace qnat {

/// Exception thrown on invalid arguments, malformed circuits, or broken
/// invariants detected at API boundaries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void raise(const char* cond, const char* file, int line,
                               const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed (" << cond << ")";
  if (!msg.empty()) os << ": " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace qnat

/// Throws qnat::Error with file/line context when `cond` is false.
#define QNAT_CHECK(cond, msg)                                       \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::qnat::detail::raise(#cond, __FILE__, __LINE__, (msg));      \
    }                                                               \
  } while (0)
