#include "common/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace qnat {

CMatrix::CMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, cplx{0.0, 0.0}) {}

CMatrix::CMatrix(std::size_t rows, std::size_t cols,
                 std::initializer_list<cplx> values)
    : rows_(rows), cols_(cols), data_(values) {
  QNAT_CHECK(data_.size() == rows * cols,
             "initializer list size does not match matrix shape");
}

CMatrix CMatrix::identity(std::size_t n) {
  CMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = cplx{1.0, 0.0};
  return m;
}

CMatrix CMatrix::zeros(std::size_t rows, std::size_t cols) {
  return CMatrix(rows, cols);
}

CMatrix CMatrix::operator*(const CMatrix& rhs) const {
  QNAT_CHECK(cols_ == rhs.rows_, "matrix product shape mismatch");
  CMatrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const cplx a = (*this)(i, k);
      if (a == cplx{0.0, 0.0}) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out(i, j) += a * rhs(k, j);
      }
    }
  }
  return out;
}

CMatrix CMatrix::operator+(const CMatrix& rhs) const {
  QNAT_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_,
             "matrix sum shape mismatch");
  CMatrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

CMatrix CMatrix::operator-(const CMatrix& rhs) const {
  QNAT_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_,
             "matrix difference shape mismatch");
  CMatrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

CMatrix CMatrix::operator*(cplx scalar) const {
  CMatrix out = *this;
  for (auto& v : out.data_) v *= scalar;
  return out;
}

CMatrix CMatrix::adjoint() const {
  CMatrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      out(j, i) = std::conj((*this)(i, j));
    }
  }
  return out;
}

CMatrix CMatrix::conjugate() const {
  CMatrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = std::conj(data_[i]);
  }
  return out;
}

CMatrix CMatrix::kron(const CMatrix& rhs) const {
  CMatrix out(rows_ * rhs.rows_, cols_ * rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      const cplx a = (*this)(i, j);
      if (a == cplx{0.0, 0.0}) continue;
      for (std::size_t k = 0; k < rhs.rows_; ++k) {
        for (std::size_t l = 0; l < rhs.cols_; ++l) {
          out(i * rhs.rows_ + k, j * rhs.cols_ + l) = a * rhs(k, l);
        }
      }
    }
  }
  return out;
}

cplx CMatrix::trace() const {
  QNAT_CHECK(rows_ == cols_, "trace requires a square matrix");
  cplx t{0.0, 0.0};
  for (std::size_t i = 0; i < rows_; ++i) t += (*this)(i, i);
  return t;
}

double CMatrix::frobenius_norm() const {
  double s = 0.0;
  for (const auto& v : data_) s += std::norm(v);
  return std::sqrt(s);
}

bool CMatrix::is_unitary(double tol) const {
  if (rows_ != cols_) return false;
  const CMatrix prod = adjoint() * (*this);
  return prod.approx_equal(identity(rows_), tol);
}

bool CMatrix::approx_equal(const CMatrix& rhs, double tol) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::abs(data_[i] - rhs.data_[i]) > tol) return false;
  }
  return true;
}

bool CMatrix::approx_equal_up_to_phase(const CMatrix& rhs, double tol) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) return false;
  // Align using the largest-magnitude entry of this matrix.
  std::size_t argmax = 0;
  double best = -1.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const double mag = std::abs(data_[i]);
    if (mag > best) {
      best = mag;
      argmax = i;
    }
  }
  if (best < tol) return rhs.frobenius_norm() < tol;
  if (std::abs(rhs.data_[argmax]) < tol) return false;
  const cplx phase =
      (rhs.data_[argmax] / std::abs(rhs.data_[argmax])) /
      (data_[argmax] / std::abs(data_[argmax]));
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::abs(data_[i] * phase - rhs.data_[i]) > tol) return false;
  }
  return true;
}

}  // namespace qnat
