// Small dense complex matrices used for gate unitaries.
//
// Gates act on one or two qubits, so the matrices handled here are 2x2 or
// 4x4. `CMatrix` is a general row-major complex matrix; helpers construct
// common unitaries, products, adjoints, and tensor products, and compare
// unitaries up to a global phase (needed to validate basis decompositions).
#pragma once

#include <initializer_list>
#include <vector>

#include "common/types.hpp"

namespace qnat {

/// Row-major dense complex matrix.
class CMatrix {
 public:
  CMatrix() = default;
  CMatrix(std::size_t rows, std::size_t cols);
  CMatrix(std::size_t rows, std::size_t cols,
          std::initializer_list<cplx> values);

  static CMatrix identity(std::size_t n);
  static CMatrix zeros(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  cplx& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  const cplx& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  const std::vector<cplx>& data() const { return data_; }

  CMatrix operator*(const CMatrix& rhs) const;
  CMatrix operator+(const CMatrix& rhs) const;
  CMatrix operator-(const CMatrix& rhs) const;
  CMatrix operator*(cplx scalar) const;

  /// Conjugate transpose.
  CMatrix adjoint() const;

  /// Elementwise complex conjugate (no transpose).
  CMatrix conjugate() const;

  /// Kronecker product (this ⊗ rhs).
  CMatrix kron(const CMatrix& rhs) const;

  /// Trace (requires square matrix).
  cplx trace() const;

  /// Frobenius norm.
  double frobenius_norm() const;

  /// True when U† U ≈ I within `tol`.
  bool is_unitary(double tol = 1e-9) const;

  /// True when matrices are elementwise equal within `tol`.
  bool approx_equal(const CMatrix& rhs, double tol = 1e-9) const;

  /// True when matrices are equal up to a global phase within `tol`.
  /// The comparison aligns phases using the largest-magnitude entry.
  bool approx_equal_up_to_phase(const CMatrix& rhs, double tol = 1e-9) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<cplx> data_;
};

}  // namespace qnat
