#include "common/metrics.hpp"

// Build-time generated (cmake/git_describe.cmake): the current
// `git describe --always --dirty --tags` of the source tree.
#include "qnat_git_describe.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "common/error.hpp"
#include "common/trace.hpp"

#ifndef QNAT_GIT_DESCRIBE
#define QNAT_GIT_DESCRIBE "unknown"
#endif

namespace qnat::metrics {

namespace {

// Fixed instrument capacities: shards are fixed-size atomic arrays so
// they can grow no registration-time reallocation a concurrent reader
// could race with. Capacities are generous — exceeding one is a
// programming error reported via QNAT_CHECK.
constexpr std::uint32_t kMaxCounters = 256;
constexpr std::uint32_t kMaxGauges = 64;
constexpr std::uint32_t kMaxHistograms = 64;

std::atomic<bool> g_enabled{false};

/// One thread's private slice of every instrument. Written only by the
/// owning thread; read (relaxed) by aggregators, hence the atomics.
struct Shard {
  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  std::array<std::atomic<double>, kMaxGauges> gauges{};
  std::array<std::array<std::atomic<std::uint64_t>, kHistogramBuckets>,
             kMaxHistograms>
      hist_counts{};
  std::array<std::atomic<double>, kMaxHistograms> hist_sums{};
};

struct Meta {
  std::string name;
  Stability stability = Stability::Deterministic;
};

struct Registry {
  std::mutex mu;
  std::vector<Shard*> shards;

  // Totals flushed from shards of exited threads.
  std::array<std::uint64_t, kMaxCounters> retired_counters{};
  std::array<double, kMaxGauges> retired_gauges{};
  std::array<std::array<std::uint64_t, kHistogramBuckets>, kMaxHistograms>
      retired_hist_counts{};
  std::array<double, kMaxHistograms> retired_hist_sums{};

  std::vector<Meta> counter_meta, gauge_meta, hist_meta;
  std::unordered_map<std::string, std::uint32_t> counter_ids, gauge_ids,
      hist_ids;
};

/// Leaked singleton so thread_local shard destructors can always reach it.
Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

/// Registers the calling thread's shard on first use and flushes it into
/// the retired totals on thread exit, so counts survive pool rebuilds.
struct ShardOwner {
  Shard* shard;

  ShardOwner() : shard(new Shard()) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.shards.push_back(shard);
  }

  ~ShardOwner() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (std::uint32_t i = 0; i < kMaxCounters; ++i) {
      r.retired_counters[i] +=
          shard->counters[i].load(std::memory_order_relaxed);
    }
    for (std::uint32_t i = 0; i < kMaxGauges; ++i) {
      r.retired_gauges[i] += shard->gauges[i].load(std::memory_order_relaxed);
    }
    for (std::uint32_t i = 0; i < kMaxHistograms; ++i) {
      for (int b = 0; b < kHistogramBuckets; ++b) {
        r.retired_hist_counts[i][static_cast<std::size_t>(b)] +=
            shard->hist_counts[i][static_cast<std::size_t>(b)].load(
                std::memory_order_relaxed);
      }
      r.retired_hist_sums[i] +=
          shard->hist_sums[i].load(std::memory_order_relaxed);
    }
    r.shards.erase(std::find(r.shards.begin(), r.shards.end(), shard));
    delete shard;
  }
};

Shard& tls_shard() {
  thread_local ShardOwner owner;
  return *owner.shard;
}

std::uint32_t register_instrument(
    std::unordered_map<std::string, std::uint32_t>& ids,
    std::vector<Meta>& meta, std::uint32_t capacity, std::string_view name,
    Stability stability, const char* kind) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const auto it = ids.find(std::string(name));
  if (it != ids.end()) {
    QNAT_CHECK(meta[it->second].stability == stability,
               "metric re-registered with a different stability: " +
                   std::string(name));
    return it->second;
  }
  QNAT_CHECK(meta.size() < capacity,
             std::string(kind) + " capacity exhausted registering " +
                 std::string(name));
  const auto id = static_cast<std::uint32_t>(meta.size());
  meta.push_back(Meta{std::string(name), stability});
  ids.emplace(std::string(name), id);
  return id;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

// --- Counter ---

Counter counter(std::string_view name, Stability stability) {
  Registry& r = registry();
  return Counter(register_instrument(r.counter_ids, r.counter_meta,
                                     kMaxCounters, name, stability,
                                     "counter"));
}

void Counter::add(std::uint64_t delta) {
  if (!enabled()) return;
  tls_shard().counters[id_].fetch_add(delta, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::uint64_t total = r.retired_counters[id_];
  for (const Shard* shard : r.shards) {
    total += shard->counters[id_].load(std::memory_order_relaxed);
  }
  return total;
}

// --- Gauge ---

Gauge gauge(std::string_view name, Stability stability) {
  Registry& r = registry();
  return Gauge(register_instrument(r.gauge_ids, r.gauge_meta, kMaxGauges,
                                   name, stability, "gauge"));
}

void Gauge::add(double delta) {
  if (!enabled()) return;
  tls_shard().gauges[id_].fetch_add(delta, std::memory_order_relaxed);
}

void Gauge::set(double value) {
  if (!enabled()) return;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  double current = r.retired_gauges[id_];
  for (const Shard* shard : r.shards) {
    current += shard->gauges[id_].load(std::memory_order_relaxed);
  }
  r.retired_gauges[id_] += value - current;
}

double Gauge::value() const {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  double total = r.retired_gauges[id_];
  for (const Shard* shard : r.shards) {
    total += shard->gauges[id_].load(std::memory_order_relaxed);
  }
  return total;
}

// --- Histogram ---

int histogram_bucket(double value) {
  if (!(value > kHistogramBase)) return 0;
  // Clamp in the double domain: value / base can overflow to infinity
  // (and the int cast of a huge double is UB), so compare before casting.
  const double b = 1.0 + std::floor(std::log2(value / kHistogramBase));
  if (!(b < kHistogramBuckets - 1)) return kHistogramBuckets - 1;
  return static_cast<int>(b);
}

Histogram histogram(std::string_view name, Stability stability) {
  Registry& r = registry();
  return Histogram(register_instrument(r.hist_ids, r.hist_meta,
                                       kMaxHistograms, name, stability,
                                       "histogram"));
}

void Histogram::observe(double value) {
  if (!enabled()) return;
  Shard& shard = tls_shard();
  shard.hist_counts[id_][static_cast<std::size_t>(histogram_bucket(value))]
      .fetch_add(1, std::memory_order_relaxed);
  shard.hist_sums[id_].fetch_add(value, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const std::uint64_t c : buckets()) total += c;
  return total;
}

double Histogram::sum() const {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  double total = r.retired_hist_sums[id_];
  for (const Shard* shard : r.shards) {
    total += shard->hist_sums[id_].load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<std::uint64_t> Histogram::buckets() const {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::uint64_t> out(kHistogramBuckets, 0);
  for (int b = 0; b < kHistogramBuckets; ++b) {
    const auto bi = static_cast<std::size_t>(b);
    out[bi] = r.retired_hist_counts[id_][bi];
    for (const Shard* shard : r.shards) {
      out[bi] += shard->hist_counts[id_][bi].load(std::memory_order_relaxed);
    }
  }
  return out;
}

double histogram_quantile(const std::vector<std::uint64_t>& buckets,
                          double q) {
  QNAT_CHECK(q > 0.0 && q <= 1.0, "quantile must be in (0, 1]");
  std::uint64_t total = 0;
  for (const std::uint64_t c : buckets) total += c;
  if (total == 0) return 0.0;
  // Rank of the q-th observation, 1-based: ceil(q * total).
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    if (cumulative + buckets[b] < rank) {
      cumulative += buckets[b];
      continue;
    }
    // Bucket b holds the target observation. Value range of bucket b:
    // [0, base] for b == 0, else [base*2^(b-1), base*2^b).
    const double lo =
        b == 0 ? 0.0 : kHistogramBase * std::ldexp(1.0, static_cast<int>(b) - 1);
    const double hi = kHistogramBase * std::ldexp(1.0, static_cast<int>(b));
    const double fraction = (static_cast<double>(rank - cumulative) - 0.5) /
                            static_cast<double>(buckets[b]);
    return lo + (hi - lo) * std::min(1.0, std::max(0.0, fraction));
  }
  return 0.0;  // unreachable: rank <= total
}

HistogramPercentiles percentiles(const std::vector<std::uint64_t>& buckets) {
  HistogramPercentiles p;
  p.p50 = histogram_quantile(buckets, 0.50);
  p.p95 = histogram_quantile(buckets, 0.95);
  p.p99 = histogram_quantile(buckets, 0.99);
  return p;
}

HistogramPercentiles percentiles(const Snapshot::HistogramEntry& entry) {
  return percentiles(entry.buckets);
}

double Histogram::percentile(double q) const {
  return histogram_quantile(buckets(), q);
}

ScopedTimer::ScopedTimer(Histogram histogram) : histogram_(histogram) {
  if (!enabled()) return;
  active_ = true;
  start_ns_ = now_ns();
}

ScopedTimer::~ScopedTimer() {
  if (!active_ || !enabled()) return;
  histogram_.observe(static_cast<double>(now_ns() - start_ns_) * 1e-9);
}

// --- snapshots ---

Snapshot snapshot() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  Snapshot snap;

  for (std::uint32_t i = 0; i < r.counter_meta.size(); ++i) {
    Snapshot::CounterEntry e;
    e.name = r.counter_meta[i].name;
    e.deterministic = r.counter_meta[i].stability == Stability::Deterministic;
    e.value = r.retired_counters[i];
    for (const Shard* shard : r.shards) {
      e.value += shard->counters[i].load(std::memory_order_relaxed);
    }
    snap.counters.push_back(std::move(e));
  }
  for (std::uint32_t i = 0; i < r.gauge_meta.size(); ++i) {
    Snapshot::GaugeEntry e;
    e.name = r.gauge_meta[i].name;
    e.deterministic = r.gauge_meta[i].stability == Stability::Deterministic;
    e.value = r.retired_gauges[i];
    for (const Shard* shard : r.shards) {
      e.value += shard->gauges[i].load(std::memory_order_relaxed);
    }
    snap.gauges.push_back(std::move(e));
  }
  for (std::uint32_t i = 0; i < r.hist_meta.size(); ++i) {
    Snapshot::HistogramEntry e;
    e.name = r.hist_meta[i].name;
    e.deterministic = r.hist_meta[i].stability == Stability::Deterministic;
    e.buckets.assign(kHistogramBuckets, 0);
    e.sum = r.retired_hist_sums[i];
    for (int b = 0; b < kHistogramBuckets; ++b) {
      const auto bi = static_cast<std::size_t>(b);
      e.buckets[bi] = r.retired_hist_counts[i][bi];
      for (const Shard* shard : r.shards) {
        e.buckets[bi] +=
            shard->hist_counts[i][bi].load(std::memory_order_relaxed);
      }
      e.count += e.buckets[bi];
    }
    for (const Shard* shard : r.shards) {
      e.sum += shard->hist_sums[i].load(std::memory_order_relaxed);
    }
    snap.histograms.push_back(std::move(e));
  }

  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

const Snapshot::CounterEntry* Snapshot::find_counter(
    std::string_view name) const {
  for (const auto& e : counters) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

const Snapshot::GaugeEntry* Snapshot::find_gauge(std::string_view name) const {
  for (const auto& e : gauges) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

const Snapshot::HistogramEntry* Snapshot::find_histogram(
    std::string_view name) const {
  for (const auto& e : histograms) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.retired_counters.fill(0);
  r.retired_gauges.fill(0.0);
  for (auto& h : r.retired_hist_counts) h.fill(0);
  r.retired_hist_sums.fill(0.0);
  for (Shard* shard : r.shards) {
    for (auto& c : shard->counters) c.store(0, std::memory_order_relaxed);
    for (auto& g : shard->gauges) g.store(0.0, std::memory_order_relaxed);
    for (auto& h : shard->hist_counts) {
      for (auto& b : h) b.store(0, std::memory_order_relaxed);
    }
    for (auto& s : shard->hist_sums) s.store(0.0, std::memory_order_relaxed);
  }
}

namespace {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string deterministic_fingerprint() {
  const Snapshot snap = snapshot();
  std::ostringstream os;
  for (const auto& e : snap.counters) {
    if (e.deterministic) os << "counter " << e.name << " " << e.value << "\n";
  }
  for (const auto& e : snap.gauges) {
    if (e.deterministic) {
      os << "gauge " << e.name << " " << format_double(e.value) << "\n";
    }
  }
  for (const auto& e : snap.histograms) {
    if (e.deterministic) {
      os << "histogram " << e.name << " " << e.count << "\n";
    }
  }
  return os.str();
}

// --- JSON export ---

const char* build_version() { return QNAT_GIT_DESCRIBE; }  // from the generated header

namespace {
std::mutex g_drift_stamp_mu;
std::string g_drift_stamp;
}  // namespace

void set_drift_stamp(std::string stamp) {
  std::lock_guard<std::mutex> lock(g_drift_stamp_mu);
  g_drift_stamp = std::move(stamp);
}

std::string drift_stamp() {
  std::lock_guard<std::mutex> lock(g_drift_stamp_mu);
  return g_drift_stamp;
}

namespace {

void append_json_string(std::ostringstream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

const char* stability_label(bool deterministic) {
  return deterministic ? "deterministic" : "per_run";
}

}  // namespace

std::string to_json(const Snapshot& snap, const RunManifest& manifest) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"" << kSchemaVersion << "\",\n";

  os << "  \"manifest\": {\"label\": ";
  append_json_string(os, manifest.label);
  os << ", \"seed\": " << manifest.seed
     << ", \"threads\": " << manifest.threads
     << ", \"fused\": " << (manifest.fused ? "true" : "false")
     << ", \"simd\": " << (manifest.simd ? "true" : "false")
     << ", \"backend\": ";
  append_json_string(os, manifest.backend.empty() ? "scalar"
                                                  : manifest.backend);
  os << ", \"git\": ";
  append_json_string(os,
                     manifest.git.empty() ? build_version() : manifest.git);
  os << ", \"drift\": ";
  append_json_string(os,
                     manifest.drift.empty() ? drift_stamp() : manifest.drift);
  os << "},\n";

  os << "  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    const auto& e = snap.counters[i];
    if (i > 0) os << ",";
    os << "\n    ";
    append_json_string(os, e.name);
    os << ": {\"value\": " << e.value << ", \"stability\": \""
       << stability_label(e.deterministic) << "\"}";
  }
  os << (snap.counters.empty() ? "" : "\n  ") << "},\n";

  os << "  \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    const auto& e = snap.gauges[i];
    if (i > 0) os << ",";
    os << "\n    ";
    append_json_string(os, e.name);
    os << ": {\"value\": " << format_double(e.value) << ", \"stability\": \""
       << stability_label(e.deterministic) << "\"}";
  }
  os << (snap.gauges.empty() ? "" : "\n  ") << "},\n";

  os << "  \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& e = snap.histograms[i];
    if (i > 0) os << ",";
    os << "\n    ";
    append_json_string(os, e.name);
    os << ": {\"count\": " << e.count
       << ", \"sum\": " << format_double(e.sum)
       << ", \"bucket_base\": " << format_double(kHistogramBase)
       << ", \"buckets\": [";
    for (std::size_t b = 0; b < e.buckets.size(); ++b) {
      if (b > 0) os << ",";
      os << e.buckets[b];
    }
    os << "], \"stability\": \"" << stability_label(e.deterministic) << "\"}";
  }
  os << (snap.histograms.empty() ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

// --- minimal JSON parser (only what from_json needs) ---

namespace {

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string raw_number;  ///< verbatim token for exact u64 round-trips
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  std::uint64_t as_u64() const {
    QNAT_CHECK(kind == Kind::Number, "JSON: expected number");
    return std::strtoull(raw_number.c_str(), nullptr, 10);
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    QNAT_CHECK(pos_ == text_.size(), "JSON: trailing garbage");
    return v;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    QNAT_CHECK(pos_ < text_.size(), "JSON: unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    QNAT_CHECK(peek() == c, std::string("JSON: expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    const char c = peek();
    JsonValue v;
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      v.kind = JsonValue::Kind::String;
      v.string = parse_string();
      return v;
    }
    if (consume_literal("true")) {
      v.kind = JsonValue::Kind::Bool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      v.kind = JsonValue::Kind::Bool;
      return v;
    }
    if (consume_literal("null")) return v;
    return parse_number();
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      QNAT_CHECK(pos_ < text_.size(), "JSON: unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      QNAT_CHECK(pos_ < text_.size(), "JSON: unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          QNAT_CHECK(pos_ + 4 <= text_.size(), "JSON: bad \\u escape");
          const unsigned long code = std::strtoul(
              std::string(text_.substr(pos_, 4)).c_str(), nullptr, 16);
          pos_ += 4;
          // Snapshot names are ASCII; only latin-1 escapes round-trip.
          QNAT_CHECK(code < 0x100, "JSON: non-latin1 \\u escape unsupported");
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          QNAT_CHECK(false, "JSON: unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    auto is_num_char = [](char c) {
      return (c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
             c == 'e' || c == 'E';
    };
    while (pos_ < text_.size() && is_num_char(text_[pos_])) ++pos_;
    QNAT_CHECK(pos_ > start, "JSON: expected value");
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.raw_number = std::string(text_.substr(start, pos_ - start));
    v.number = std::strtod(v.raw_number.c_str(), nullptr);
    return v;
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      QNAT_CHECK(c == ',', "JSON: expected ',' or ']'");
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      std::string key = parse_string();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      QNAT_CHECK(c == ',', "JSON: expected ',' or '}'");
    }
  }
};

bool parse_stability(const JsonValue& entry) {
  const JsonValue* s = entry.find("stability");
  QNAT_CHECK(s != nullptr && s->kind == JsonValue::Kind::String,
             "metrics JSON: entry missing stability");
  return s->string == "deterministic";
}

}  // namespace

Snapshot from_json(const std::string& json, RunManifest* manifest) {
  const JsonValue root = JsonParser(json).parse();
  QNAT_CHECK(root.kind == JsonValue::Kind::Object,
             "metrics JSON: root must be an object");
  const JsonValue* schema = root.find("schema");
  QNAT_CHECK(schema != nullptr && schema->string == kSchemaVersion,
             "metrics JSON: schema version mismatch");

  if (manifest != nullptr) {
    const JsonValue* m = root.find("manifest");
    QNAT_CHECK(m != nullptr && m->kind == JsonValue::Kind::Object,
               "metrics JSON: missing manifest");
    manifest->label = m->find("label") ? m->find("label")->string : "";
    manifest->seed = m->find("seed") ? m->find("seed")->as_u64() : 0;
    manifest->threads =
        m->find("threads")
            ? static_cast<int>(m->find("threads")->as_u64())
            : 1;
    manifest->fused = m->find("fused") ? m->find("fused")->boolean : true;
    manifest->simd = m->find("simd") ? m->find("simd")->boolean : false;
    manifest->backend =
        m->find("backend") ? m->find("backend")->string : "";
    manifest->git = m->find("git") ? m->find("git")->string : "";
    manifest->drift = m->find("drift") ? m->find("drift")->string : "";
  }

  Snapshot snap;
  const JsonValue* counters = root.find("counters");
  QNAT_CHECK(counters != nullptr, "metrics JSON: missing counters");
  for (const auto& [name, entry] : counters->object) {
    Snapshot::CounterEntry e;
    e.name = name;
    QNAT_CHECK(entry.find("value") != nullptr,
               "metrics JSON: counter missing value");
    e.value = entry.find("value")->as_u64();
    e.deterministic = parse_stability(entry);
    snap.counters.push_back(std::move(e));
  }

  const JsonValue* gauges = root.find("gauges");
  QNAT_CHECK(gauges != nullptr, "metrics JSON: missing gauges");
  for (const auto& [name, entry] : gauges->object) {
    Snapshot::GaugeEntry e;
    e.name = name;
    QNAT_CHECK(entry.find("value") != nullptr,
               "metrics JSON: gauge missing value");
    e.value = entry.find("value")->number;
    e.deterministic = parse_stability(entry);
    snap.gauges.push_back(std::move(e));
  }

  const JsonValue* histograms = root.find("histograms");
  QNAT_CHECK(histograms != nullptr, "metrics JSON: missing histograms");
  for (const auto& [name, entry] : histograms->object) {
    Snapshot::HistogramEntry e;
    e.name = name;
    QNAT_CHECK(entry.find("count") != nullptr &&
                   entry.find("sum") != nullptr &&
                   entry.find("buckets") != nullptr,
               "metrics JSON: malformed histogram entry");
    e.count = entry.find("count")->as_u64();
    e.sum = entry.find("sum")->number;
    for (const JsonValue& b : entry.find("buckets")->array) {
      e.buckets.push_back(b.as_u64());
    }
    e.deterministic = parse_stability(entry);
    snap.histograms.push_back(std::move(e));
  }
  return snap;
}

void write_snapshot(const std::string& path, const RunManifest& manifest) {
  std::ofstream out(path);
  QNAT_CHECK(out.good(), "cannot open metrics output file: " + path);
  out << to_json(snapshot(), manifest);
  QNAT_CHECK(out.good(), "failed writing metrics output file: " + path);
}

// --- CLI plumbing ---

ObservabilityOptions observability_from_args(int argc, char** argv) {
  ObservabilityOptions options;
  if (const char* env = std::getenv("QNAT_METRICS_OUT")) {
    options.metrics_out = env;
  }
  if (const char* env = std::getenv("QNAT_TRACE_OUT")) {
    options.trace_out = env;
  }
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-out") == 0) {
      options.metrics_out = argv[i + 1];
    } else if (std::strcmp(argv[i], "--trace-out") == 0) {
      options.trace_out = argv[i + 1];
    }
  }
  if (!options.metrics_out.empty()) set_enabled(true);
  if (!options.trace_out.empty()) trace::set_enabled(true);
  return options;
}

void write_observability(const ObservabilityOptions& options,
                         const RunManifest& manifest) {
  if (!options.metrics_out.empty()) {
    write_snapshot(options.metrics_out, manifest);
  }
  if (!options.trace_out.empty()) {
    trace::write_chrome_trace(options.trace_out);
  }
}

}  // namespace qnat::metrics
