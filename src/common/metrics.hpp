// Low-overhead structured metrics for the whole sim/train/eval stack.
//
// A process-wide registry of named instruments — monotonic counters,
// additive gauges and log-scale histograms — written from arbitrary
// threads without locks on the hot path: every thread owns a private
// shard of relaxed atomics and readers aggregate the shards (plus the
// retired totals of exited threads) on demand. Recording is gated by a
// registry-level enable flag read with a single relaxed atomic load, so
// compiled-in instrumentation is near-free when metrics are off.
//
// Naming convention: `module.subsystem.name`, e.g.
// `qsim.kernel.diag1q`, `noise.inserter.error_gates`,
// `train.step_seconds`. Handles are cheap value types; hot call sites
// hoist the lookup into a function-local static:
//
//   static metrics::Counter c = metrics::counter("qsim.program.executions");
//   c.inc();
//
// Stability contract: metrics registered `Deterministic` must be a pure
// function of (seed, workload) — identical across runs AND thread
// counts; anything touched by scheduling, caching races or wall-clock
// time is `PerRun`. `deterministic_fingerprint()` canonicalizes the
// deterministic subset for bit-exact comparison in tests. For
// histograms only the observation *count* is deterministic (bucket
// assignment of a timer depends on wall time).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace qnat::metrics {

/// Reproducibility class of a metric (see header comment).
enum class Stability : std::uint8_t {
  Deterministic,
  PerRun,
};

/// Globally enables/disables recording. Reads/writes a relaxed atomic;
/// instruments recorded while disabled are dropped (registration still
/// happens, so the metric appears in snapshots with its prior value).
void set_enabled(bool on);
bool enabled();

/// Monotonic counter. add() is lock-free (one relaxed fetch_add on the
/// calling thread's shard); value() aggregates all shards.
class Counter {
 public:
  void add(std::uint64_t delta);
  void inc() { add(1); }
  std::uint64_t value() const;

 private:
  friend Counter counter(std::string_view, Stability);
  explicit Counter(std::uint32_t id) : id_(id) {}
  std::uint32_t id_;
};

/// Looks up (or registers) a counter. Re-registering an existing name
/// returns the same instrument; the stability must match.
Counter counter(std::string_view name,
                Stability stability = Stability::Deterministic);

/// Additive gauge (double). add() is lock-free; set() is a locked
/// read-modify-write intended for administrative use, not hot paths.
class Gauge {
 public:
  void add(double delta);
  void set(double value);
  double value() const;

 private:
  friend Gauge gauge(std::string_view, Stability);
  explicit Gauge(std::uint32_t id) : id_(id) {}
  std::uint32_t id_;
};

Gauge gauge(std::string_view name,
            Stability stability = Stability::Deterministic);

/// Histogram with fixed log2-scale buckets starting at 1e-9 (1 ns when
/// observing seconds): bucket i >= 1 covers [base*2^(i-1), base*2^i),
/// bucket 0 absorbs everything <= base and the last bucket absorbs
/// overflow.
constexpr int kHistogramBuckets = 40;
constexpr double kHistogramBase = 1e-9;

/// Maps a value to its bucket index (exposed for tests).
int histogram_bucket(double value);

class Histogram {
 public:
  void observe(double value);
  std::uint64_t count() const;
  double sum() const;
  std::vector<std::uint64_t> buckets() const;
  /// histogram_quantile over the current aggregated buckets.
  double percentile(double q) const;

 private:
  friend Histogram histogram(std::string_view, Stability);
  friend class ScopedTimer;
  explicit Histogram(std::uint32_t id) : id_(id) {}
  std::uint32_t id_;
};

Histogram histogram(std::string_view name,
                    Stability stability = Stability::PerRun);

/// Estimated q-quantile (0 < q <= 1) of a log-bucket count vector:
/// walks the cumulative counts to the bucket holding the q-th
/// observation and interpolates linearly inside its [lo, hi) value
/// range. Returns 0.0 for an empty histogram. Error is bounded by the
/// bucket width (a factor of 2 in the value domain) — adequate for
/// latency reporting, where the exponent matters, not the mantissa.
double histogram_quantile(const std::vector<std::uint64_t>& buckets, double q);

/// The serving/latency reporting triple. Wall-clock histograms are
/// PerRun by the stability contract, so percentiles extracted from them
/// are too — never fingerprint them.
struct HistogramPercentiles {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

HistogramPercentiles percentiles(const std::vector<std::uint64_t>& buckets);

/// RAII wall-clock timer: observes elapsed seconds into a histogram on
/// destruction. Start/stop cost is skipped entirely while metrics are
/// disabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram histogram);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram histogram_;
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
};

// --- snapshots ---

struct Snapshot {
  struct CounterEntry {
    std::string name;
    std::uint64_t value = 0;
    bool deterministic = true;
  };
  struct GaugeEntry {
    std::string name;
    double value = 0.0;
    bool deterministic = true;
  };
  struct HistogramEntry {
    std::string name;
    std::uint64_t count = 0;
    double sum = 0.0;
    std::vector<std::uint64_t> buckets;
    bool deterministic = false;
  };

  // Each section sorted by name.
  std::vector<CounterEntry> counters;
  std::vector<GaugeEntry> gauges;
  std::vector<HistogramEntry> histograms;

  const CounterEntry* find_counter(std::string_view name) const;
  const GaugeEntry* find_gauge(std::string_view name) const;
  const HistogramEntry* find_histogram(std::string_view name) const;
};

/// Aggregated values of every registered metric.
Snapshot snapshot();

/// Percentiles of a snapshotted histogram entry.
HistogramPercentiles percentiles(const Snapshot::HistogramEntry& entry);

/// Zeroes every instrument (live shards and retired totals). Metrics
/// stay registered. Intended for tests and run boundaries.
void reset();

/// Canonical `kind name value` lines (sorted) of every Deterministic
/// metric — counters and gauges by value, histograms by observation
/// count. Two runs of the same seeded workload must produce byte-equal
/// fingerprints at any thread count.
std::string deterministic_fingerprint();

// --- run manifest + JSON export ---

/// Provenance emitted alongside every metrics dump.
struct RunManifest {
  std::string label;        ///< binary / experiment name
  std::uint64_t seed = 0;   ///< master seed of the run
  int threads = 1;          ///< worker-pool width
  bool fused = true;        ///< program-compile fusion default
  bool simd = false;        ///< SIMD kernel backend active (simd::enabled())
  std::string backend;      ///< execution backend name (backend::active())
  std::string git;          ///< git describe (defaults to build_version())
  /// Drift-engine provenance ("" = calibration-fresh): the
  /// `DriftModel::stamp` of the device the run was served/evaluated
  /// against. Defaults to the process-wide drift_stamp().
  std::string drift;
};

/// Process-wide drift stamp: drift-aware drivers set it (usually to
/// `DriftModel::stamp(tick)`) before snapshots are written, so every
/// manifest distinguishes drifted runs from calibration-fresh ones.
void set_drift_stamp(std::string stamp);
std::string drift_stamp();

/// `git describe` of the source tree, baked in at configure time
/// ("unknown" outside a git checkout; stale until the next CMake run).
const char* build_version();

/// Schema identifier written into every snapshot JSON.
inline constexpr const char* kSchemaVersion = "qnat.metrics.v1";

/// Serializes a snapshot (plus manifest) to the stable JSON schema:
/// top-level keys {"schema", "manifest", "counters", "gauges",
/// "histograms"}; see tests/golden/metrics_schema.json.
std::string to_json(const Snapshot& snap, const RunManifest& manifest);

/// Parses a snapshot JSON produced by to_json (exact value round-trip).
/// Throws qnat::Error on malformed input or schema mismatch. Fills
/// `manifest` when non-null.
Snapshot from_json(const std::string& json, RunManifest* manifest = nullptr);

/// Snapshots the registry and writes to_json(...) to `path`.
void write_snapshot(const std::string& path, const RunManifest& manifest);

// --- CLI plumbing shared by benches and examples ---

struct ObservabilityOptions {
  std::string metrics_out;  ///< --metrics-out <file> / QNAT_METRICS_OUT
  std::string trace_out;    ///< --trace-out <file> / QNAT_TRACE_OUT
  bool any() const { return !metrics_out.empty() || !trace_out.empty(); }
};

/// Parses the flags/environment above and enables the metrics and/or
/// trace subsystems for every requested output.
ObservabilityOptions observability_from_args(int argc, char** argv);

/// Writes the requested metrics snapshot and chrome trace (no-op for
/// empty paths).
void write_observability(const ObservabilityOptions& options,
                         const RunManifest& manifest);

}  // namespace qnat::metrics
