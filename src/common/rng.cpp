#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace qnat {

namespace {

// splitmix64: seeds the xoshiro state from a single 64-bit value.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// Stateless splitmix64 finalizer (no counter increment): the avalanche
// mixer used to fold state words and stream indices into a child seed.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53-bit mantissa draw in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * kPi * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::gaussian(double mean, double stddev) {
  return mean + stddev * gaussian();
}

std::size_t Rng::index(std::size_t n) {
  QNAT_CHECK(n > 0, "Rng::index requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  std::uint64_t v = 0;
  do {
    v = next_u64();
  } while (v >= limit);
  return static_cast<std::size_t>(v % n);
}

std::size_t Rng::discrete(std::span<const double> weights) {
  QNAT_CHECK(!weights.empty(), "Rng::discrete requires non-empty weights");
  double total = 0.0;
  for (double w : weights) {
    QNAT_CHECK(w >= 0.0, "Rng::discrete weights must be non-negative");
    total += w;
  }
  QNAT_CHECK(total > 0.0, "Rng::discrete requires positive total weight");
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    std::size_t j = index(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

Rng Rng::fork() { return Rng(next_u64()); }

Rng Rng::child(std::uint64_t stream) const {
  // Chain the four state words and the stream index through the splitmix
  // finalizer; every input bit avalanches into the child seed, so
  // children of different streams (and of parents in different states)
  // are decorrelated.
  std::uint64_t acc = 0x243F6A8885A308D3ULL;  // fractional bits of pi
  for (const std::uint64_t s : s_) acc = mix64(acc ^ s);
  acc = mix64(acc ^ stream);
  acc = mix64(acc + 0x9E3779B97F4A7C15ULL * stream);
  return Rng(acc);
}

}  // namespace qnat
