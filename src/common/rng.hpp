// Deterministic random number generation.
//
// Every stochastic component in the library (weight init, Pauli error-gate
// sampling, shot sampling, synthetic datasets) draws from an explicitly
// seeded `Rng` so that experiments are exactly reproducible. The engine is
// xoshiro256**, a small, fast, high-quality generator; we avoid
// std::mt19937 only to guarantee identical streams across standard library
// implementations.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace qnat {

/// Seeded pseudo-random generator (xoshiro256**).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Raw 64-bit draw.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (cached second value).
  double gaussian();

  /// Normal with given mean / standard deviation.
  double gaussian(double mean, double stddev);

  /// Uniform integer in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Samples an index from an unnormalized non-negative weight vector.
  /// Weights summing to < 1 treat the deficit as extra mass on the last
  /// index only if `weights` is a full distribution; callers should pass
  /// normalized distributions. Requires a positive total weight.
  std::size_t discrete(std::span<const double> weights);

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Fisher-Yates shuffle of an index permutation [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Derives an independent child generator (for per-worker streams).
  /// Advances this generator's state, so successive forks differ.
  Rng fork();

  /// Counter-based child stream: derives an independent generator from
  /// this generator's *current state* and the stream index, without
  /// advancing this generator. The parallel engine keys streams by work
  /// item (`base.child(block).child(sample).child(trajectory)`), so the
  /// draws each item sees are a pure function of (seed, item index) —
  /// identical for any thread count and any execution order.
  Rng child(std::uint64_t stream) const;

 private:
  std::uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace qnat
