#include "common/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define QNAT_SIMD_AVX2 1
#include <immintrin.h>
#else
#define QNAT_SIMD_AVX2 0
#endif

namespace qnat::simd {

// enabled() / set_enabled() are declared in simd.hpp but defined in
// qsim/backend/backend.cpp: they are legacy shims over the backend
// registry, and the registry lives above this layer. This TU keeps only
// the ISA probes and the kernel bodies.

bool compiled() { return QNAT_SIMD_AVX2 != 0; }

bool runtime_supported() {
#if QNAT_SIMD_AVX2
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

#if QNAT_SIMD_AVX2

// --- AVX2 kernel bodies ----------------------------------------------
// Every function carries target("avx2,fma") so the TU builds without
// -mavx2; the runtime gate above keeps them unreachable on older CPUs.

#define QNAT_AVX2 __attribute__((target("avx2,fma"), always_inline)) inline

namespace {

/// Broadcast complex constant, split into re/im lane vectors.
struct CK {
  __m256d re, im;
};

QNAT_AVX2 CK ck(cplx c) {
  return {_mm256_set1_pd(c.real()), _mm256_set1_pd(c.imag())};
}

QNAT_AVX2 __m256d cload(const cplx* p) {
  return _mm256_loadu_pd(reinterpret_cast<const double*>(p));
}

QNAT_AVX2 void cstore(cplx* p, __m256d v) {
  _mm256_storeu_pd(reinterpret_cast<double*>(p), v);
}

/// Two complex products c * a_j (j = 0, 1): even lanes ar*cr - ai*ci,
/// odd lanes ai*cr + ar*ci (one FMA-contracted complex multiply).
QNAT_AVX2 __m256d cmul(CK c, __m256d a) {
  const __m256d a_sw = _mm256_permute_pd(a, 0x5);  // [ai, ar] per complex
  return _mm256_fmaddsub_pd(a, c.re, _mm256_mul_pd(a_sw, c.im));
}

/// Elementwise conj(a_j) * b_j.
QNAT_AVX2 __m256d cconjmul(__m256d a, __m256d b) {
  const __m256d a_re = _mm256_movedup_pd(a);       // [ar, ar]
  const __m256d a_im = _mm256_permute_pd(a, 0xF);  // [ai, ai]
  const __m256d b_sw = _mm256_permute_pd(b, 0x5);  // [bi, br]
  // even: ar*br + ai*bi, odd: ar*bi - ai*br
  return _mm256_fmsubadd_pd(a_re, b, _mm256_mul_pd(a_im, b_sw));
}

/// Folds the two complex lanes of an accumulator into one cplx.
QNAT_AVX2 cplx creduce(__m256d acc) {
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  alignas(16) double out[2];
  _mm_store_pd(out, _mm_add_pd(lo, hi));
  return {out[0], out[1]};
}

QNAT_AVX2 double hsum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d s = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
}

/// Gathers the pair halves of two adjacent pair-groups (stride == 1):
/// from v0 = [c_i, c_{i+1}], v1 = [c_{i+2}, c_{i+3}] produces
/// a0 = [c_i, c_{i+2}] (the two "low" pair members) and
/// a1 = [c_{i+1}, c_{i+3}].
QNAT_AVX2 __m256d gather_lo(__m256d v0, __m256d v1) {
  return _mm256_permute2f128_pd(v0, v1, 0x20);
}
QNAT_AVX2 __m256d gather_hi(__m256d v0, __m256d v1) {
  return _mm256_permute2f128_pd(v0, v1, 0x31);
}

/// Same enumeration as StateVector::apply_2q: expands a dense counter k
/// into the basis index with zero bits inserted at strides lo < hi.
inline std::size_t expand2(std::size_t k, std::size_t lo, std::size_t hi) {
  std::size_t i = (k & (lo - 1)) | ((k & ~(lo - 1)) << 1);
  return (i & (hi - 1)) | ((i & ~(hi - 1)) << 1);
}

}  // namespace

__attribute__((target("avx2,fma"))) void apply_1q(cplx* amps, std::size_t n,
                                                  std::size_t stride,
                                                  cplx m00, cplx m01,
                                                  cplx m10, cplx m11) {
  const CK k00 = ck(m00), k01 = ck(m01), k10 = ck(m10), k11 = ck(m11);
  if (stride >= 2) {
    for (std::size_t base = 0; base < n; base += 2 * stride) {
      for (std::size_t i = base; i < base + stride; i += 2) {
        const __m256d a0 = cload(amps + i);
        const __m256d a1 = cload(amps + i + stride);
        cstore(amps + i, _mm256_add_pd(cmul(k00, a0), cmul(k01, a1)));
        cstore(amps + i + stride,
               _mm256_add_pd(cmul(k10, a0), cmul(k11, a1)));
      }
    }
    return;
  }
  // stride == 1: pair members interleave within a vector; shuffle two
  // groups of (a0, a1) together per iteration.
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v0 = cload(amps + i);
    const __m256d v1 = cload(amps + i + 2);
    const __m256d a0 = gather_lo(v0, v1);
    const __m256d a1 = gather_hi(v0, v1);
    const __m256d r0 = _mm256_add_pd(cmul(k00, a0), cmul(k01, a1));
    const __m256d r1 = _mm256_add_pd(cmul(k10, a0), cmul(k11, a1));
    cstore(amps + i, gather_lo(r0, r1));
    cstore(amps + i + 2, gather_hi(r0, r1));
  }
  for (; i < n; i += 2) {
    const cplx a0 = amps[i];
    const cplx a1 = amps[i + 1];
    amps[i] = m00 * a0 + m01 * a1;
    amps[i + 1] = m10 * a0 + m11 * a1;
  }
}

__attribute__((target("avx2,fma"))) void apply_diag_1q(cplx* amps,
                                                       std::size_t n,
                                                       std::size_t stride,
                                                       cplx d0, cplx d1) {
  if (stride >= 2) {
    const CK k0 = ck(d0), k1 = ck(d1);
    for (std::size_t base = 0; base < n; base += 2 * stride) {
      for (std::size_t i = base; i < base + stride; i += 2) {
        cstore(amps + i, cmul(k0, cload(amps + i)));
        cstore(amps + i + stride, cmul(k1, cload(amps + i + stride)));
      }
    }
    return;
  }
  // stride == 1: alternate d0/d1 per complex within one vector.
  const CK mixed = {_mm256_setr_pd(d0.real(), d0.real(), d1.real(), d1.real()),
                    _mm256_setr_pd(d0.imag(), d0.imag(), d1.imag(), d1.imag())};
  for (std::size_t i = 0; i < n; i += 2) {
    cstore(amps + i, cmul(mixed, cload(amps + i)));
  }
}

__attribute__((target("avx2,fma"))) void apply_antidiag_1q(cplx* amps,
                                                           std::size_t n,
                                                           std::size_t stride,
                                                           cplx top,
                                                           cplx bottom) {
  if (stride >= 2) {
    const CK kt = ck(top), kb = ck(bottom);
    for (std::size_t base = 0; base < n; base += 2 * stride) {
      for (std::size_t i = base; i < base + stride; i += 2) {
        const __m256d a0 = cload(amps + i);
        const __m256d a1 = cload(amps + i + stride);
        cstore(amps + i, cmul(kt, a1));
        cstore(amps + i + stride, cmul(kb, a0));
      }
    }
    return;
  }
  // stride == 1: swap the 128-bit complex lanes, then scale lane 0 by
  // top and lane 1 by bottom.
  const CK mixed = {
      _mm256_setr_pd(top.real(), top.real(), bottom.real(), bottom.real()),
      _mm256_setr_pd(top.imag(), top.imag(), bottom.imag(), bottom.imag())};
  for (std::size_t i = 0; i < n; i += 2) {
    const __m256d v = cload(amps + i);
    cstore(amps + i, cmul(mixed, _mm256_permute2f128_pd(v, v, 0x01)));
  }
}

__attribute__((target("avx2,fma"))) void apply_2q(cplx* amps,
                                                  std::size_t quarter,
                                                  std::size_t lo,
                                                  std::size_t hi,
                                                  std::size_t sa,
                                                  std::size_t sb,
                                                  const cplx* m) {
  CK k[16];
  for (int e = 0; e < 16; ++e) k[e] = ck(m[e]);
  for (std::size_t g = 0; g < quarter; g += 2) {
    const std::size_t i = expand2(g, lo, hi);
    cplx* p00 = amps + i;
    cplx* p01 = amps + (i | sb);
    cplx* p10 = amps + (i | sa);
    cplx* p11 = amps + (i | sa | sb);
    const __m256d a00 = cload(p00), a01 = cload(p01), a10 = cload(p10),
                  a11 = cload(p11);
    cstore(p00, _mm256_add_pd(
                    _mm256_add_pd(cmul(k[0], a00), cmul(k[1], a01)),
                    _mm256_add_pd(cmul(k[2], a10), cmul(k[3], a11))));
    cstore(p01, _mm256_add_pd(
                    _mm256_add_pd(cmul(k[4], a00), cmul(k[5], a01)),
                    _mm256_add_pd(cmul(k[6], a10), cmul(k[7], a11))));
    cstore(p10, _mm256_add_pd(
                    _mm256_add_pd(cmul(k[8], a00), cmul(k[9], a01)),
                    _mm256_add_pd(cmul(k[10], a10), cmul(k[11], a11))));
    cstore(p11, _mm256_add_pd(
                    _mm256_add_pd(cmul(k[12], a00), cmul(k[13], a01)),
                    _mm256_add_pd(cmul(k[14], a10), cmul(k[15], a11))));
  }
}

__attribute__((target("avx2,fma"))) void apply_diag_2q(
    cplx* amps, std::size_t quarter, std::size_t lo, std::size_t hi,
    std::size_t sa, std::size_t sb, cplx d0, cplx d1, cplx d2, cplx d3) {
  const CK k0 = ck(d0), k1 = ck(d1), k2 = ck(d2), k3 = ck(d3);
  for (std::size_t g = 0; g < quarter; g += 2) {
    const std::size_t i = expand2(g, lo, hi);
    cplx* p00 = amps + i;
    cplx* p01 = amps + (i | sb);
    cplx* p10 = amps + (i | sa);
    cplx* p11 = amps + (i | sa | sb);
    cstore(p00, cmul(k0, cload(p00)));
    cstore(p01, cmul(k1, cload(p01)));
    cstore(p10, cmul(k2, cload(p10)));
    cstore(p11, cmul(k3, cload(p11)));
  }
}

__attribute__((target("avx2,fma"))) void apply_controlled_1q(
    cplx* amps, std::size_t quarter, std::size_t lo, std::size_t hi,
    std::size_t sc, std::size_t st, cplx m00, cplx m01, cplx m10, cplx m11) {
  const CK k00 = ck(m00), k01 = ck(m01), k10 = ck(m10), k11 = ck(m11);
  for (std::size_t g = 0; g < quarter; g += 2) {
    const std::size_t i = expand2(g, lo, hi) | sc;
    cplx* p0 = amps + i;
    cplx* p1 = amps + (i | st);
    const __m256d a0 = cload(p0);
    const __m256d a1 = cload(p1);
    cstore(p0, _mm256_add_pd(cmul(k00, a0), cmul(k01, a1)));
    cstore(p1, _mm256_add_pd(cmul(k10, a0), cmul(k11, a1)));
  }
}

__attribute__((target("avx2,fma"))) void apply_controlled_antidiag_1q(
    cplx* amps, std::size_t quarter, std::size_t lo, std::size_t hi,
    std::size_t sc, std::size_t st, cplx top, cplx bottom) {
  const CK kt = ck(top), kb = ck(bottom);
  for (std::size_t g = 0; g < quarter; g += 2) {
    const std::size_t i = expand2(g, lo, hi) | sc;
    cplx* p0 = amps + i;
    cplx* p1 = amps + (i | st);
    const __m256d a0 = cload(p0);
    const __m256d a1 = cload(p1);
    cstore(p0, cmul(kt, a1));
    cstore(p1, cmul(kb, a0));
  }
}

__attribute__((target("avx2,fma"))) double norm_sq(const cplx* amps,
                                                   std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  for (std::size_t i = 0; i < n; i += 2) {
    const __m256d v = cload(amps + i);
    acc = _mm256_fmadd_pd(v, v, acc);
  }
  return hsum(acc);
}

__attribute__((target("avx2,fma"))) cplx inner(const cplx* a, const cplx* b,
                                               std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  for (std::size_t i = 0; i < n; i += 2) {
    acc = _mm256_add_pd(acc, cconjmul(cload(a + i), cload(b + i)));
  }
  return creduce(acc);
}

__attribute__((target("avx2,fma"))) void add_scaled(cplx* a, const cplx* b,
                                                    std::size_t n,
                                                    cplx factor) {
  const CK f = ck(factor);
  for (std::size_t i = 0; i < n; i += 2) {
    cstore(a + i, _mm256_add_pd(cload(a + i), cmul(f, cload(b + i))));
  }
}

__attribute__((target("avx2,fma"))) cplx derivative_inner_1q(
    const cplx* bra, const cplx* ket, std::size_t n, std::size_t stride,
    cplx d00, cplx d01, cplx d10, cplx d11) {
  const CK k00 = ck(d00), k01 = ck(d01), k10 = ck(d10), k11 = ck(d11);
  __m256d acc = _mm256_setzero_pd();
  if (stride >= 2) {
    for (std::size_t base = 0; base < n; base += 2 * stride) {
      for (std::size_t i = base; i < base + stride; i += 2) {
        const __m256d q0 = cload(ket + i);
        const __m256d q1 = cload(ket + i + stride);
        const __m256d r0 = _mm256_add_pd(cmul(k00, q0), cmul(k01, q1));
        const __m256d r1 = _mm256_add_pd(cmul(k10, q0), cmul(k11, q1));
        acc = _mm256_add_pd(acc, cconjmul(cload(bra + i), r0));
        acc = _mm256_add_pd(acc, cconjmul(cload(bra + i + stride), r1));
      }
    }
    return creduce(acc);
  }
  cplx tail{0.0, 0.0};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d kv0 = cload(ket + i);
    const __m256d kv1 = cload(ket + i + 2);
    const __m256d q0 = gather_lo(kv0, kv1);
    const __m256d q1 = gather_hi(kv0, kv1);
    const __m256d bv0 = cload(bra + i);
    const __m256d bv1 = cload(bra + i + 2);
    const __m256d b0 = gather_lo(bv0, bv1);
    const __m256d b1 = gather_hi(bv0, bv1);
    const __m256d r0 = _mm256_add_pd(cmul(k00, q0), cmul(k01, q1));
    const __m256d r1 = _mm256_add_pd(cmul(k10, q0), cmul(k11, q1));
    acc = _mm256_add_pd(acc, cconjmul(b0, r0));
    acc = _mm256_add_pd(acc, cconjmul(b1, r1));
  }
  for (; i < n; i += 2) {
    const cplx q0 = ket[i];
    const cplx q1 = ket[i + 1];
    tail += std::conj(bra[i]) * (d00 * q0 + d01 * q1);
    tail += std::conj(bra[i + 1]) * (d10 * q0 + d11 * q1);
  }
  return creduce(acc) + tail;
}

__attribute__((target("avx2,fma"))) cplx derivative_inner_2q(
    const cplx* bra, const cplx* ket, std::size_t quarter, std::size_t lo,
    std::size_t hi, std::size_t sa, std::size_t sb, const cplx* d) {
  CK k[16];
  for (int e = 0; e < 16; ++e) k[e] = ck(d[e]);
  __m256d acc = _mm256_setzero_pd();
  for (std::size_t g = 0; g < quarter; g += 2) {
    const std::size_t i = expand2(g, lo, hi);
    const std::size_t idx[4] = {i, i | sb, i | sa, i | sa | sb};
    const __m256d q0 = cload(ket + idx[0]);
    const __m256d q1 = cload(ket + idx[1]);
    const __m256d q2 = cload(ket + idx[2]);
    const __m256d q3 = cload(ket + idx[3]);
    for (int r = 0; r < 4; ++r) {
      const __m256d row = _mm256_add_pd(
          _mm256_add_pd(cmul(k[4 * r + 0], q0), cmul(k[4 * r + 1], q1)),
          _mm256_add_pd(cmul(k[4 * r + 2], q2), cmul(k[4 * r + 3], q3)));
      acc = _mm256_add_pd(acc, cconjmul(cload(bra + idx[r]), row));
    }
  }
  return creduce(acc);
}

// --- f32 kernel bodies (4 complex<float> per __m256) -----------------
// Same structure as the f64 kernels: broadcast matrix entries split into
// re/im lane vectors, fmaddsub-contracted complex multiplies. Strides of
// 4 or more load whole pair/quad blocks directly; strides 1 and 2 stay
// vectorized by resolving the partner inside each 4-complex vector with
// in-vector permutes and per-slot coefficient vectors (ckf4), so every
// power-of-two stride takes an 8-lane path. The only scalar fallback
// left is the degenerate n < 4 single-qubit state.

namespace {

struct CKf {
  __m256 re, im;
};

QNAT_AVX2 CKf ckf(cplx32 c) {
  return {_mm256_set1_ps(c.real()), _mm256_set1_ps(c.imag())};
}

QNAT_AVX2 __m256 cload_f(const cplx32* p) {
  return _mm256_loadu_ps(reinterpret_cast<const float*>(p));
}

QNAT_AVX2 void cstore_f(cplx32* p, __m256 v) {
  _mm256_storeu_ps(reinterpret_cast<float*>(p), v);
}

/// Four complex products c * a_j: even lanes ar*cr - ai*ci, odd lanes
/// ai*cr + ar*ci.
QNAT_AVX2 __m256 cmul_f(CKf c, __m256 a) {
  const __m256 a_sw = _mm256_permute_ps(a, 0xB1);  // [ai, ar] per complex
  return _mm256_fmaddsub_ps(a, c.re, _mm256_mul_ps(a_sw, c.im));
}

/// Per-slot coefficients: complex slot j of the vector multiplies by cj.
/// cmul_f works unchanged because each slot's re/im is duplicated across
/// the slot's two float positions.
QNAT_AVX2 CKf ckf4(cplx32 c0, cplx32 c1, cplx32 c2, cplx32 c3) {
  return {_mm256_setr_ps(c0.real(), c0.real(), c1.real(), c1.real(),
                         c2.real(), c2.real(), c3.real(), c3.real()),
          _mm256_setr_ps(c0.imag(), c0.imag(), c1.imag(), c1.imag(),
                         c2.imag(), c2.imag(), c3.imag(), c3.imag())};
}

/// Swap adjacent complex slots (0<->1, 2<->3): the stride-1 partner.
QNAT_AVX2 __m256 cswap1(__m256 v) { return _mm256_permute_ps(v, 0x4E); }

/// Swap complex slot pairs across the 128-bit lanes ((0,1)<->(2,3)):
/// the stride-2 partner.
QNAT_AVX2 __m256 cswap2(__m256 v) {
  return _mm256_permute2f128_ps(v, v, 1);
}

// Broadcast complex slot j to all four slots (for the in-register 4x4).
QNAT_AVX2 __m256 cbcast0(__m256 v) {
  const __m256 t = _mm256_permute_ps(v, 0x44);
  return _mm256_permute2f128_ps(t, t, 0x00);
}
QNAT_AVX2 __m256 cbcast1(__m256 v) {
  const __m256 t = _mm256_permute_ps(v, 0xEE);
  return _mm256_permute2f128_ps(t, t, 0x00);
}
QNAT_AVX2 __m256 cbcast2(__m256 v) {
  const __m256 t = _mm256_permute_ps(v, 0x44);
  return _mm256_permute2f128_ps(t, t, 0x11);
}
QNAT_AVX2 __m256 cbcast3(__m256 v) {
  const __m256 t = _mm256_permute_ps(v, 0xEE);
  return _mm256_permute2f128_ps(t, t, 0x11);
}

/// Low-lo (lo < 4) vector path shared by the controlled 2x2 kernels:
/// whichever of the control/target strides is below the vector width is
/// resolved inside each 4-complex vector — the pair partner with an
/// in-vector permute, the control mask with unit/zero coefficients on
/// the untouched slots.
QNAT_AVX2 void c1q_lowlo_f32(cplx32* amps, std::size_t n, std::size_t sc,
                             std::size_t st, cplx32 m00, cplx32 m01,
                             cplx32 m10, cplx32 m11) {
  const cplx32 one(1.0f, 0.0f), zero(0.0f, 0.0f);
  if (sc < 4 && st < 4) {
    // {sc, st} == {1, 2}: control mask and pair partner both live
    // inside one 4-complex block.
    const bool t1 = st == 1;
    const CKf ks = t1 ? ckf4(one, one, m00, m11) : ckf4(one, m00, one, m11);
    const CKf kp =
        t1 ? ckf4(zero, zero, m01, m10) : ckf4(zero, m01, zero, m10);
    for (std::size_t b = 0; b < n; b += 4) {
      const __m256 v = cload_f(amps + b);
      const __m256 p = t1 ? cswap1(v) : cswap2(v);
      cstore_f(amps + b, _mm256_add_ps(cmul_f(ks, v), cmul_f(kp, p)));
    }
    return;
  }
  if (sc < 4) {
    // Control on qubit 0/1, target stride >= 4: partner blocks are
    // slot-aligned at +st; control-clear slots pass through.
    const bool c1 = sc == 1;
    const CKf ksa = c1 ? ckf4(one, m00, one, m00) : ckf4(one, one, m00, m00);
    const CKf kpa =
        c1 ? ckf4(zero, m01, zero, m01) : ckf4(zero, zero, m01, m01);
    const CKf ksb = c1 ? ckf4(one, m11, one, m11) : ckf4(one, one, m11, m11);
    const CKf kpb =
        c1 ? ckf4(zero, m10, zero, m10) : ckf4(zero, zero, m10, m10);
    for (std::size_t base = 0; base < n; base += 2 * st) {
      for (std::size_t b = base; b < base + st; b += 4) {
        const __m256 va = cload_f(amps + b);
        const __m256 vb = cload_f(amps + b + st);
        cstore_f(amps + b, _mm256_add_ps(cmul_f(ksa, va), cmul_f(kpa, vb)));
        cstore_f(amps + b + st,
                 _mm256_add_ps(cmul_f(ksb, vb), cmul_f(kpb, va)));
      }
    }
    return;
  }
  // Target on qubit 0/1, control stride >= 4: only the control-set half
  // is touched; the pair partner sits inside each vector.
  const bool t1 = st == 1;
  const CKf ks = t1 ? ckf4(m00, m11, m00, m11) : ckf4(m00, m00, m11, m11);
  const CKf kp = t1 ? ckf4(m01, m10, m01, m10) : ckf4(m01, m01, m10, m10);
  for (std::size_t base = sc; base < n; base += 2 * sc) {
    for (std::size_t b = base; b < base + sc; b += 4) {
      const __m256 v = cload_f(amps + b);
      const __m256 p = t1 ? cswap1(v) : cswap2(v);
      cstore_f(amps + b, _mm256_add_ps(cmul_f(ks, v), cmul_f(kp, p)));
    }
  }
}

}  // namespace

__attribute__((target("avx2,fma"))) void apply_1q_f32(
    cplx32* amps, std::size_t n, std::size_t stride, cplx32 m00, cplx32 m01,
    cplx32 m10, cplx32 m11) {
  if (stride >= 4) {
    const CKf k00 = ckf(m00), k01 = ckf(m01), k10 = ckf(m10), k11 = ckf(m11);
    for (std::size_t base = 0; base < n; base += 2 * stride) {
      for (std::size_t i = base; i < base + stride; i += 4) {
        const __m256 a0 = cload_f(amps + i);
        const __m256 a1 = cload_f(amps + i + stride);
        cstore_f(amps + i, _mm256_add_ps(cmul_f(k00, a0), cmul_f(k01, a1)));
        cstore_f(amps + i + stride,
                 _mm256_add_ps(cmul_f(k10, a0), cmul_f(k11, a1)));
      }
    }
    return;
  }
  if (n >= 4) {
    // Stride 1 or 2: the pair partner lives inside each 4-complex
    // vector; reach it with an in-vector permute.
    const bool s1 = stride == 1;
    const CKf ks = s1 ? ckf4(m00, m11, m00, m11) : ckf4(m00, m00, m11, m11);
    const CKf kp = s1 ? ckf4(m01, m10, m01, m10) : ckf4(m01, m01, m10, m10);
    for (std::size_t i = 0; i < n; i += 4) {
      const __m256 v = cload_f(amps + i);
      const __m256 p = s1 ? cswap1(v) : cswap2(v);
      cstore_f(amps + i, _mm256_add_ps(cmul_f(ks, v), cmul_f(kp, p)));
    }
    return;
  }
  for (std::size_t base = 0; base < n; base += 2 * stride) {
    for (std::size_t i = base; i < base + stride; ++i) {
      const cplx32 a0 = amps[i];
      const cplx32 a1 = amps[i + stride];
      amps[i] = m00 * a0 + m01 * a1;
      amps[i + stride] = m10 * a0 + m11 * a1;
    }
  }
}

__attribute__((target("avx2,fma"))) void apply_diag_1q_f32(
    cplx32* amps, std::size_t n, std::size_t stride, cplx32 d0, cplx32 d1) {
  if (stride >= 4) {
    const CKf k0 = ckf(d0), k1 = ckf(d1);
    for (std::size_t base = 0; base < n; base += 2 * stride) {
      for (std::size_t i = base; i < base + stride; i += 4) {
        cstore_f(amps + i, cmul_f(k0, cload_f(amps + i)));
        cstore_f(amps + i + stride, cmul_f(k1, cload_f(amps + i + stride)));
      }
    }
    return;
  }
  if (n >= 4) {
    const CKf kd =
        stride == 1 ? ckf4(d0, d1, d0, d1) : ckf4(d0, d0, d1, d1);
    for (std::size_t i = 0; i < n; i += 4) {
      cstore_f(amps + i, cmul_f(kd, cload_f(amps + i)));
    }
    return;
  }
  for (std::size_t base = 0; base < n; base += 2 * stride) {
    for (std::size_t i = base; i < base + stride; ++i) {
      amps[i] *= d0;
      amps[i + stride] *= d1;
    }
  }
}

__attribute__((target("avx2,fma"))) void apply_antidiag_1q_f32(
    cplx32* amps, std::size_t n, std::size_t stride, cplx32 top,
    cplx32 bottom) {
  if (stride >= 4) {
    const CKf kt = ckf(top), kb = ckf(bottom);
    for (std::size_t base = 0; base < n; base += 2 * stride) {
      for (std::size_t i = base; i < base + stride; i += 4) {
        const __m256 a0 = cload_f(amps + i);
        const __m256 a1 = cload_f(amps + i + stride);
        cstore_f(amps + i, cmul_f(kt, a1));
        cstore_f(amps + i + stride, cmul_f(kb, a0));
      }
    }
    return;
  }
  if (n >= 4) {
    const bool s1 = stride == 1;
    const CKf kp = s1 ? ckf4(top, bottom, top, bottom)
                      : ckf4(top, top, bottom, bottom);
    for (std::size_t i = 0; i < n; i += 4) {
      const __m256 v = cload_f(amps + i);
      cstore_f(amps + i, cmul_f(kp, s1 ? cswap1(v) : cswap2(v)));
    }
    return;
  }
  for (std::size_t base = 0; base < n; base += 2 * stride) {
    for (std::size_t i = base; i < base + stride; ++i) {
      const cplx32 a0 = amps[i];
      amps[i] = top * amps[i + stride];
      amps[i + stride] = bottom * a0;
    }
  }
}

__attribute__((target("avx2,fma"))) void apply_2q_f32(
    cplx32* amps, std::size_t quarter, std::size_t lo, std::size_t hi,
    std::size_t sa, std::size_t sb, const cplx32* m) {
  if (lo >= 4) {
    CKf k[16];
    for (int e = 0; e < 16; ++e) k[e] = ckf(m[e]);
    for (std::size_t g = 0; g < quarter; g += 4) {
      const std::size_t i = expand2(g, lo, hi);
      cplx32* p00 = amps + i;
      cplx32* p01 = amps + (i | sb);
      cplx32* p10 = amps + (i | sa);
      cplx32* p11 = amps + (i | sa | sb);
      const __m256 a00 = cload_f(p00), a01 = cload_f(p01),
                   a10 = cload_f(p10), a11 = cload_f(p11);
      cstore_f(p00, _mm256_add_ps(
                        _mm256_add_ps(cmul_f(k[0], a00), cmul_f(k[1], a01)),
                        _mm256_add_ps(cmul_f(k[2], a10), cmul_f(k[3], a11))));
      cstore_f(p01, _mm256_add_ps(
                        _mm256_add_ps(cmul_f(k[4], a00), cmul_f(k[5], a01)),
                        _mm256_add_ps(cmul_f(k[6], a10), cmul_f(k[7], a11))));
      cstore_f(p10,
               _mm256_add_ps(
                   _mm256_add_ps(cmul_f(k[8], a00), cmul_f(k[9], a01)),
                   _mm256_add_ps(cmul_f(k[10], a10), cmul_f(k[11], a11))));
      cstore_f(p11,
               _mm256_add_ps(
                   _mm256_add_ps(cmul_f(k[12], a00), cmul_f(k[13], a01)),
                   _mm256_add_ps(cmul_f(k[14], a10), cmul_f(k[15], a11))));
    }
    return;
  }
  const std::size_t n = 4 * quarter;
  if (hi == 2) {
    // lo == 1: each 4x4 block is exactly one vector — a full
    // in-register matrix-vector product via per-slot broadcasts. Slot s
    // within the block holds matrix row rs[s] (rows permute when the
    // low matrix bit has the larger stride).
    const int rs1 = sb == 1 ? 1 : 2;
    const int rs[4] = {0, rs1, 3 - rs1, 3};
    CKf k[4];
    for (int j = 0; j < 4; ++j) {
      k[j] = ckf4(m[4 * rs[0] + rs[j]], m[4 * rs[1] + rs[j]],
                  m[4 * rs[2] + rs[j]], m[4 * rs[3] + rs[j]]);
    }
    for (std::size_t b = 0; b < n; b += 4) {
      const __m256 v = cload_f(amps + b);
      cstore_f(amps + b,
               _mm256_add_ps(_mm256_add_ps(cmul_f(k[0], cbcast0(v)),
                                           cmul_f(k[1], cbcast1(v))),
                             _mm256_add_ps(cmul_f(k[2], cbcast2(v)),
                                           cmul_f(k[3], cbcast3(v)))));
    }
    return;
  }
  // lo in {1, 2} with hi >= 4: the low-stride partner sits inside each
  // 4-complex vector (in-vector permute), the high-stride partner in
  // the slot-aligned block at +hi. k[M][Mp][p] carries, per output
  // slot, the matrix entry linking output (min bit sigma, hi bit M) to
  // input (min bit sigma^p from vector Mp).
  const bool lo_is_b = sb == lo;
  const auto row = [lo_is_b](int sigma, int hi_bit) {
    return lo_is_b ? (sigma | (hi_bit << 1)) : ((sigma << 1) | hi_bit);
  };
  const auto sigma_of = [lo](std::size_t s) {
    return static_cast<int>(lo == 1 ? (s & 1) : ((s >> 1) & 1));
  };
  CKf k[2][2][2];
  for (int mo = 0; mo < 2; ++mo) {
    for (int mi = 0; mi < 2; ++mi) {
      for (int p = 0; p < 2; ++p) {
        cplx32 c[4];
        for (std::size_t s = 0; s < 4; ++s) {
          c[s] = m[4 * row(sigma_of(s), mo) + row(sigma_of(s) ^ p, mi)];
        }
        k[mo][mi][p] = ckf4(c[0], c[1], c[2], c[3]);
      }
    }
  }
  for (std::size_t base = 0; base < n; base += 2 * hi) {
    for (std::size_t b = base; b < base + hi; b += 4) {
      const __m256 va = cload_f(amps + b);
      const __m256 vb = cload_f(amps + b + hi);
      const __m256 pa = lo == 1 ? cswap1(va) : cswap2(va);
      const __m256 pb = lo == 1 ? cswap1(vb) : cswap2(vb);
      cstore_f(amps + b,
               _mm256_add_ps(_mm256_add_ps(cmul_f(k[0][0][0], va),
                                           cmul_f(k[0][0][1], pa)),
                             _mm256_add_ps(cmul_f(k[0][1][0], vb),
                                           cmul_f(k[0][1][1], pb))));
      cstore_f(amps + b + hi,
               _mm256_add_ps(_mm256_add_ps(cmul_f(k[1][0][0], va),
                                           cmul_f(k[1][0][1], pa)),
                             _mm256_add_ps(cmul_f(k[1][1][0], vb),
                                           cmul_f(k[1][1][1], pb))));
    }
  }
}

__attribute__((target("avx2,fma"))) void apply_diag_2q_f32(
    cplx32* amps, std::size_t quarter, std::size_t lo, std::size_t hi,
    std::size_t sa, std::size_t sb, cplx32 d0, cplx32 d1, cplx32 d2,
    cplx32 d3) {
  if (lo >= 4) {
    const CKf k0 = ckf(d0), k1 = ckf(d1), k2 = ckf(d2), k3 = ckf(d3);
    for (std::size_t g = 0; g < quarter; g += 4) {
      const std::size_t i = expand2(g, lo, hi);
      cplx32* p00 = amps + i;
      cplx32* p01 = amps + (i | sb);
      cplx32* p10 = amps + (i | sa);
      cplx32* p11 = amps + (i | sa | sb);
      cstore_f(p00, cmul_f(k0, cload_f(p00)));
      cstore_f(p01, cmul_f(k1, cload_f(p01)));
      cstore_f(p10, cmul_f(k2, cload_f(p10)));
      cstore_f(p11, cmul_f(k3, cload_f(p11)));
    }
    return;
  }
  const std::size_t n = 4 * quarter;
  const cplx32 d[4] = {d0, d1, d2, d3};
  if (hi == 2) {
    const int rs1 = sb == 1 ? 1 : 2;
    const CKf kd = ckf4(d[0], d[rs1], d[3 - rs1], d[3]);
    for (std::size_t b = 0; b < n; b += 4) {
      cstore_f(amps + b, cmul_f(kd, cload_f(amps + b)));
    }
    return;
  }
  // lo in {1, 2} with hi >= 4: per-slot diagonal entries, no partner.
  const bool lo_is_b = sb == lo;
  CKf k[2];
  for (int mo = 0; mo < 2; ++mo) {
    cplx32 c[4];
    for (std::size_t s = 0; s < 4; ++s) {
      const int sigma = static_cast<int>(lo == 1 ? (s & 1) : ((s >> 1) & 1));
      c[s] = d[lo_is_b ? (sigma | (mo << 1)) : ((sigma << 1) | mo)];
    }
    k[mo] = ckf4(c[0], c[1], c[2], c[3]);
  }
  for (std::size_t base = 0; base < n; base += 2 * hi) {
    for (std::size_t b = base; b < base + hi; b += 4) {
      cstore_f(amps + b, cmul_f(k[0], cload_f(amps + b)));
      cstore_f(amps + b + hi, cmul_f(k[1], cload_f(amps + b + hi)));
    }
  }
}

__attribute__((target("avx2,fma"))) void apply_controlled_1q_f32(
    cplx32* amps, std::size_t quarter, std::size_t lo, std::size_t hi,
    std::size_t sc, std::size_t st, cplx32 m00, cplx32 m01, cplx32 m10,
    cplx32 m11) {
  if (lo >= 4) {
    const CKf k00 = ckf(m00), k01 = ckf(m01), k10 = ckf(m10), k11 = ckf(m11);
    for (std::size_t g = 0; g < quarter; g += 4) {
      const std::size_t i = expand2(g, lo, hi) | sc;
      cplx32* p0 = amps + i;
      cplx32* p1 = amps + (i | st);
      const __m256 a0 = cload_f(p0);
      const __m256 a1 = cload_f(p1);
      cstore_f(p0, _mm256_add_ps(cmul_f(k00, a0), cmul_f(k01, a1)));
      cstore_f(p1, _mm256_add_ps(cmul_f(k10, a0), cmul_f(k11, a1)));
    }
    return;
  }
  c1q_lowlo_f32(amps, 4 * quarter, sc, st, m00, m01, m10, m11);
}

__attribute__((target("avx2,fma"))) void apply_controlled_antidiag_1q_f32(
    cplx32* amps, std::size_t quarter, std::size_t lo, std::size_t hi,
    std::size_t sc, std::size_t st, cplx32 top, cplx32 bottom) {
  if (lo >= 4) {
    const CKf kt = ckf(top), kb = ckf(bottom);
    for (std::size_t g = 0; g < quarter; g += 4) {
      const std::size_t i = expand2(g, lo, hi) | sc;
      cplx32* p0 = amps + i;
      cplx32* p1 = amps + (i | st);
      const __m256 a0 = cload_f(p0);
      const __m256 a1 = cload_f(p1);
      cstore_f(p0, cmul_f(kt, a1));
      cstore_f(p1, cmul_f(kb, a0));
    }
    return;
  }
  c1q_lowlo_f32(amps, 4 * quarter, sc, st, cplx32(0.0f, 0.0f), top, bottom,
                cplx32(0.0f, 0.0f));
}

__attribute__((target("avx2,fma"))) double norm_sq_f32(const cplx32* amps,
                                                      std::size_t n) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256 v = cload_f(amps + i);
    const __m256 sq = _mm256_mul_ps(v, v);
    acc_lo = _mm256_add_pd(acc_lo,
                           _mm256_cvtps_pd(_mm256_castps256_ps128(sq)));
    acc_hi = _mm256_add_pd(acc_hi,
                           _mm256_cvtps_pd(_mm256_extractf128_ps(sq, 1)));
  }
  double sum = hsum(_mm256_add_pd(acc_lo, acc_hi));
  for (; i < n; ++i) {
    sum += static_cast<double>(amps[i].real()) * amps[i].real() +
           static_cast<double>(amps[i].imag()) * amps[i].imag();
  }
  return sum;
}

#else  // !QNAT_SIMD_AVX2

// Unreachable stubs: enabled() is permanently false on non-x86 builds,
// so no call site ever dispatches here.
void apply_1q(cplx*, std::size_t, std::size_t, cplx, cplx, cplx, cplx) {}
void apply_diag_1q(cplx*, std::size_t, std::size_t, cplx, cplx) {}
void apply_antidiag_1q(cplx*, std::size_t, std::size_t, cplx, cplx) {}
void apply_2q(cplx*, std::size_t, std::size_t, std::size_t, std::size_t,
              std::size_t, const cplx*) {}
void apply_diag_2q(cplx*, std::size_t, std::size_t, std::size_t, std::size_t,
                   std::size_t, cplx, cplx, cplx, cplx) {}
void apply_controlled_1q(cplx*, std::size_t, std::size_t, std::size_t,
                         std::size_t, std::size_t, cplx, cplx, cplx, cplx) {}
void apply_controlled_antidiag_1q(cplx*, std::size_t, std::size_t,
                                  std::size_t, std::size_t, std::size_t, cplx,
                                  cplx) {}
double norm_sq(const cplx*, std::size_t) { return 0.0; }
cplx inner(const cplx*, const cplx*, std::size_t) { return {}; }
void add_scaled(cplx*, const cplx*, std::size_t, cplx) {}
cplx derivative_inner_1q(const cplx*, const cplx*, std::size_t, std::size_t,
                         cplx, cplx, cplx, cplx) {
  return {};
}
cplx derivative_inner_2q(const cplx*, const cplx*, std::size_t, std::size_t,
                         std::size_t, std::size_t, std::size_t, const cplx*) {
  return {};
}

void apply_1q_f32(cplx32*, std::size_t, std::size_t, cplx32, cplx32, cplx32,
                  cplx32) {}
void apply_diag_1q_f32(cplx32*, std::size_t, std::size_t, cplx32, cplx32) {}
void apply_antidiag_1q_f32(cplx32*, std::size_t, std::size_t, cplx32,
                           cplx32) {}
void apply_2q_f32(cplx32*, std::size_t, std::size_t, std::size_t,
                  std::size_t, std::size_t, const cplx32*) {}
void apply_diag_2q_f32(cplx32*, std::size_t, std::size_t, std::size_t,
                       std::size_t, std::size_t, cplx32, cplx32, cplx32,
                       cplx32) {}
void apply_controlled_1q_f32(cplx32*, std::size_t, std::size_t, std::size_t,
                             std::size_t, std::size_t, cplx32, cplx32, cplx32,
                             cplx32) {}
void apply_controlled_antidiag_1q_f32(cplx32*, std::size_t, std::size_t,
                                      std::size_t, std::size_t, std::size_t,
                                      cplx32, cplx32) {}
double norm_sq_f32(const cplx32*, std::size_t) { return 0.0; }

#endif  // QNAT_SIMD_AVX2

}  // namespace qnat::simd
