// SIMD backend for the statevector kernels.
//
// AVX2/FMA implementations of the hot amplitude loops — dense/diagonal/
// anti-diagonal/controlled 1q and 2q matrix application, norms, inner
// products, scaled accumulation and the adjoint differentiator's
// <bra|dU|ket> contraction — operating directly on the interleaved
// (re, im) complex layout of `std::vector<cplx>`.
//
// Dispatch is two-level:
//  * compile time: the AVX2 bodies are emitted with
//    `__attribute__((target("avx2,fma")))` on x86-64 GCC/Clang, so no
//    special -m flags are required to build them (a -mavx2 -mfma build
//    works identically); on other targets the kernels compile to
//    unreachable stubs and `compiled()` is false.
//  * run time: selection lives in the backend registry
//    (qsim/backend/backend.hpp) — these kernels are the table of the
//    registered "avx2" backend, which is only available when the CPU
//    reports AVX2+FMA (cpuid). `enabled()` / `set_enabled()` below are
//    legacy shims over the registry (QNAT_SIMD=off still maps to the
//    scalar backend); call sites dispatch through
//    `backend::active().kernels()` with the scalar reference kernels
//    (qsim/backend/scalar_kernels.hpp) as the fallback.
//
// Numerical contract (documented, tested in simd_kernels_test):
// each kernel evaluates the *same per-amplitude arithmetic* as its
// scalar counterpart — identical matrix-entry-times-amplitude terms,
// summed in the same left-to-right order — but uses FMA contraction
// inside each complex multiply and, for reductions (norm_sq, inner,
// derivative_inner), accumulates in vector lanes that are folded once
// at the end. Results therefore agree with the scalar path to rounding
// (differential tests use 1e-12), not bit-for-bit; within one backend
// selection results are fully deterministic.
//
// Two-qubit index enumeration matches StateVector::apply_2q: a dense
// counter k over 2^(n-2) values expands to the basis index with zero
// bits inserted at the two qubit strides. For `lo = min(stride_a,
// stride_b) >= 2` consecutive even k map to adjacent basis indices, so
// the kernels load two complexes per vector ("stride >= 2 fast path").
// Single-qubit kernels additionally handle stride == 1 with a 128-bit
// lane shuffle ("low-stride shuffle path"); two-qubit kernels with
// lo == 1 stay on the scalar fallback (callers must check
// `two_qubit_fast_path`).
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace qnat::simd {

/// True when the AVX2 kernel bodies were compiled into this binary.
bool compiled();

/// True when the running CPU supports AVX2 and FMA.
bool runtime_supported();

/// True when the active execution backend is vectorized. Legacy shim
/// over the backend registry (defined in qsim/backend/backend.cpp, so
/// only usable from code linking qnat_qsim — which is every consumer of
/// these kernels).
bool enabled();

/// Legacy switch, shimmed onto the registry: `false` selects the
/// "scalar" backend, `true` the best available vectorized backend (a
/// no-op on CPUs without AVX2+FMA, as before). Prefer
/// backend::set_active(name). Intended for experiment setup and the
/// differential test suites, not for toggling mid-kernel.
void set_enabled(bool on);

/// Whether the 2q kernels can run the vector path for this qubit pair:
/// both strides must be >= 2 (neither qubit may be qubit 0).
inline bool two_qubit_fast_path(std::size_t lo) { return lo >= 2; }

// --- kernels ---------------------------------------------------------
// All kernels require n >= 2 amplitudes and must only be called while
// enabled(). `amps` is the interleaved complex amplitude array.

/// Dense 2x2 on pairs (i, i+stride); handles any power-of-two stride
/// (stride 1 via the shuffle path).
void apply_1q(cplx* amps, std::size_t n, std::size_t stride, cplx m00,
              cplx m01, cplx m10, cplx m11);

/// Diagonal 2x2.
void apply_diag_1q(cplx* amps, std::size_t n, std::size_t stride, cplx d0,
                   cplx d1);

/// Anti-diagonal 2x2 (top = m01, bottom = m10).
void apply_antidiag_1q(cplx* amps, std::size_t n, std::size_t stride,
                       cplx top, cplx bottom);

/// Dense 4x4 over the expand-two-zero-bits enumeration (see header
/// comment). `m` is the 16-entry row-major matrix; requires
/// two_qubit_fast_path(lo) and quarter >= 2.
void apply_2q(cplx* amps, std::size_t quarter, std::size_t lo,
              std::size_t hi, std::size_t sa, std::size_t sb, const cplx* m);

/// Diagonal 4x4; same enumeration contract as apply_2q.
void apply_diag_2q(cplx* amps, std::size_t quarter, std::size_t lo,
                   std::size_t hi, std::size_t sa, std::size_t sb, cplx d0,
                   cplx d1, cplx d2, cplx d3);

/// Arbitrary 2x2 on `target` where `control` is |1>; sc/st are the
/// control/target strides. Same enumeration contract as apply_2q.
void apply_controlled_1q(cplx* amps, std::size_t quarter, std::size_t lo,
                         std::size_t hi, std::size_t sc, std::size_t st,
                         cplx m00, cplx m01, cplx m10, cplx m11);

/// Anti-diagonal 2x2 on `target` where `control` is |1>.
void apply_controlled_antidiag_1q(cplx* amps, std::size_t quarter,
                                  std::size_t lo, std::size_t hi,
                                  std::size_t sc, std::size_t st, cplx top,
                                  cplx bottom);

/// Sum of |a_i|^2.
double norm_sq(const cplx* amps, std::size_t n);

/// Sum of conj(a_i) * b_i.
cplx inner(const cplx* a, const cplx* b, std::size_t n);

/// a_i += factor * b_i.
void add_scaled(cplx* a, const cplx* b, std::size_t n, cplx factor);

/// Sum over pairs of conj(bra) * (d . ket) for a 2x2 derivative matrix
/// (need not be unitary); handles any stride like apply_1q.
cplx derivative_inner_1q(const cplx* bra, const cplx* ket, std::size_t n,
                         std::size_t stride, cplx d00, cplx d01, cplx d10,
                         cplx d11);

/// 4x4 variant over the expand enumeration; requires
/// two_qubit_fast_path(lo) and quarter >= 2. `d` is 16-entry row-major.
cplx derivative_inner_2q(const cplx* bra, const cplx* ket,
                         std::size_t quarter, std::size_t lo, std::size_t hi,
                         std::size_t sa, std::size_t sb, const cplx* d);

// --- f32 kernels (8 lanes = 4 complex<float> per __m256) --------------
// The mixed-precision backends (qsim/backend/f32_kernels.hpp) dispatch
// through these for the "avx2-f32" backend. Same enumeration contracts
// as the f64 kernels above, but unlike f64 every power-of-two stride
// takes a vector path: strides >= 4 load whole blocks, strides 1 and 2
// resolve the pair partner inside each 4-complex vector with permutes
// and per-slot coefficient vectors (so the avx2-f32 backend publishes
// min_fast_2q_lo = 1). The only scalar fallback is the degenerate
// n < 4 single-qubit state. Reductions accumulate in double: rounding
// stays per-element f32, the sum does not drift with state size.

void apply_1q_f32(cplx32* amps, std::size_t n, std::size_t stride,
                  cplx32 m00, cplx32 m01, cplx32 m10, cplx32 m11);

void apply_diag_1q_f32(cplx32* amps, std::size_t n, std::size_t stride,
                       cplx32 d0, cplx32 d1);

void apply_antidiag_1q_f32(cplx32* amps, std::size_t n, std::size_t stride,
                           cplx32 top, cplx32 bottom);

void apply_2q_f32(cplx32* amps, std::size_t quarter, std::size_t lo,
                  std::size_t hi, std::size_t sa, std::size_t sb,
                  const cplx32* m);

void apply_diag_2q_f32(cplx32* amps, std::size_t quarter, std::size_t lo,
                       std::size_t hi, std::size_t sa, std::size_t sb,
                       cplx32 d0, cplx32 d1, cplx32 d2, cplx32 d3);

void apply_controlled_1q_f32(cplx32* amps, std::size_t quarter,
                             std::size_t lo, std::size_t hi, std::size_t sc,
                             std::size_t st, cplx32 m00, cplx32 m01,
                             cplx32 m10, cplx32 m11);

void apply_controlled_antidiag_1q_f32(cplx32* amps, std::size_t quarter,
                                      std::size_t lo, std::size_t hi,
                                      std::size_t sc, std::size_t st,
                                      cplx32 top, cplx32 bottom);

/// Sum of |a_i|^2, double-accumulated.
double norm_sq_f32(const cplx32* amps, std::size_t n);

}  // namespace qnat::simd
