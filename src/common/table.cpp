#include "common/table.hpp"

#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace qnat {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  QNAT_CHECK(!header_.empty(), "table header must not be empty");
}

void TextTable::add_row(std::vector<std::string> cells) {
  QNAT_CHECK(cells.size() == header_.size(),
             "row width does not match header");
  rows_.push_back(Row{std::move(cells), false});
}

void TextTable::add_separator() { rows_.push_back(Row{{}, true}); }

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  std::ostringstream os;
  auto emit_line = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c] << " |";
    }
    os << '\n';
  };

  emit_line();
  emit_row(header_);
  emit_line();
  for (const auto& row : rows_) {
    if (row.separator) {
      emit_line();
    } else {
      emit_row(row.cells);
    }
  }
  emit_line();
  return os.str();
}

std::string fmt_fixed(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

}  // namespace qnat
