// ASCII table rendering for the benchmark harness.
//
// Every bench binary reproduces one paper table/figure and prints it with
// the same row/column layout. `TextTable` handles column sizing and
// alignment so the bench code only supplies cells.
#pragma once

#include <string>
#include <vector>

namespace qnat {

/// Accumulates rows of string cells and renders an aligned ASCII table.
class TextTable {
 public:
  /// Sets the header row. Column count is fixed by the header.
  explicit TextTable(std::vector<std::string> header);

  /// Appends a data row; must match the header's column count.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal separator line.
  void add_separator();

  /// Renders the table with column-aligned cells.
  std::string render() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

/// Formats a double with fixed precision (default 2), e.g. "0.74".
std::string fmt_fixed(double value, int precision = 2);

}  // namespace qnat
