#include "common/thread_pool.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/metrics.hpp"

namespace qnat {

namespace {

/// Set while the current thread executes inside a pool worker; nested
/// parallel regions detect it and run inline.
thread_local bool t_inside_parallel_region = false;

/// Regions are deterministic (counted at submission, including the
/// serial/inline fast paths); chunk counts and queue-wait times depend
/// on chunk sizing and scheduling, so they are PerRun.
metrics::Counter& pool_regions() {
  static metrics::Counter c = metrics::counter("common.pool.regions");
  return c;
}

metrics::Counter& pool_chunks() {
  static metrics::Counter c =
      metrics::counter("common.pool.chunks", metrics::Stability::PerRun);
  return c;
}

metrics::Histogram& pool_wait() {
  static metrics::Histogram h = metrics::histogram("common.pool.wait_seconds");
  return h;
}

std::uint64_t pool_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

int auto_num_threads() {
  if (const char* env = std::getenv("QNAT_NUM_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

struct ThreadPool::Impl {
  /// One parallel region. Workers pull disjoint chunks off `next` until
  /// the range drains; the last participant out signals completion.
  struct Job {
    std::size_t n = 0;
    std::size_t chunk = 1;
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<int> in_flight{0};
    std::exception_ptr error;
    std::mutex error_mutex;
    std::uint64_t submit_ns = 0;  ///< queue-wait reference (metrics only)
  };

  std::vector<std::thread> workers;
  std::mutex mutex;
  std::condition_variable wake;
  std::condition_variable done;
  std::shared_ptr<Job> job;     // non-null while a region is running
  std::uint64_t generation = 0; // bumped per submitted region
  bool stop = false;
  std::mutex submit_mutex;      // serializes top-level regions

  void run_chunks(Job& j) {
    t_inside_parallel_region = true;
    if (metrics::enabled() && j.submit_ns != 0) {
      pool_wait().observe(static_cast<double>(pool_now_ns() - j.submit_ns) *
                          1e-9);
    }
    for (;;) {
      const std::size_t begin = j.next.fetch_add(j.chunk);
      if (begin >= j.n) break;
      pool_chunks().inc();
      const std::size_t end = std::min(begin + j.chunk, j.n);
      try {
        (*j.body)(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(j.error_mutex);
        if (!j.error) j.error = std::current_exception();
        j.next.store(j.n);  // drain remaining work
      }
    }
    t_inside_parallel_region = false;
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Job> current;
      {
        std::unique_lock<std::mutex> lock(mutex);
        wake.wait(lock, [&] { return stop || (job && generation != seen); });
        if (stop) return;
        seen = generation;
        current = job;
        current->in_flight.fetch_add(1);
      }
      run_chunks(*current);
      if (current->in_flight.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(mutex);
        done.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(int num_threads)
    : impl_(new Impl), num_threads_(num_threads < 1 ? 1 : num_threads) {
  for (int t = 1; t < num_threads_; ++t) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->wake.notify_all();
  for (auto& w : impl_->workers) w.join();
  delete impl_;
}

void ThreadPool::parallel_for_chunks(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  pool_regions().inc();
  // Serial fast paths: one thread, trivially small ranges, or a nested
  // region (a worker would deadlock waiting on its own pool).
  if (num_threads_ == 1 || n == 1 || t_inside_parallel_region) {
    pool_chunks().inc();
    body(0, n);
    return;
  }
  std::lock_guard<std::mutex> submit_lock(impl_->submit_mutex);
  auto job = std::make_shared<Impl::Job>();
  job->n = n;
  if (metrics::enabled()) job->submit_ns = pool_now_ns();
  // ~4 chunks per thread for load balance without contention.
  const std::size_t target =
      static_cast<std::size_t>(num_threads_) * 4;
  job->chunk = n < target ? 1 : n / target;
  job->body = &body;
  job->in_flight.fetch_add(1);  // the submitting thread participates
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->job = job;
    ++impl_->generation;
  }
  impl_->wake.notify_all();
  impl_->run_chunks(*job);
  if (job->in_flight.fetch_sub(1) > 1) {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->done.wait(lock, [&] { return job->in_flight.load() == 0; });
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->job.reset();
  }
  if (job->error) std::rethrow_exception(job->error);
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  parallel_for_chunks(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) body(i);
  });
}

namespace {

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;
int g_requested_threads = 0;  // 0 = automatic

ThreadPool& locked_global() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  const int want =
      g_requested_threads >= 1 ? g_requested_threads : auto_num_threads();
  if (!g_pool || g_pool->num_threads() != want) {
    g_pool = std::make_unique<ThreadPool>(want);
  }
  return *g_pool;
}

}  // namespace

ThreadPool& ThreadPool::global() { return locked_global(); }

int num_threads() { return ThreadPool::global().num_threads(); }

void set_num_threads(int n) {
  {
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    g_requested_threads = n < 1 ? 0 : n;
  }
  locked_global();  // rebuild eagerly so the next region uses it
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  ThreadPool::global().parallel_for(n, body);
}

void parallel_for_chunks(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
  ThreadPool::global().parallel_for_chunks(n, body);
}

}  // namespace qnat
