// Fixed-size worker pool with deterministic parallel-for.
//
// The batch engine parallelizes over *independent* work items (samples,
// trajectories, shifted-parameter evaluations); every item writes its own
// output slot and any randomness comes from counter-based `Rng::child`
// streams keyed by the item index, never from a shared generator. Under
// that discipline the result of a parallel region is a pure function of
// its inputs — bit-identical for any thread count, including 1.
//
// Thread count resolution (first use of the global pool):
//   1. `set_num_threads(n)` API, if called;
//   2. `QNAT_NUM_THREADS` environment variable;
//   3. `std::thread::hardware_concurrency()`.
//
// Nested `parallel_for` calls (a worker reaching another parallel region)
// run inline on the calling worker, so nesting is safe and deadlock-free.
// Exceptions thrown by the body are captured and the first one is
// rethrown on the submitting thread after the region drains.
#pragma once

#include <cstddef>
#include <functional>

namespace qnat {

class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers (the submitting thread is the
  /// remaining participant). `num_threads < 1` is clamped to 1.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs body(i) for every i in [0, n); blocks until all complete.
  /// Rethrows the first exception a body raised.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body);

  /// Chunked variant: body(begin, end) over disjoint index ranges that
  /// cover [0, n). Lets the body hoist per-chunk scratch (e.g. one circuit
  /// copy per chunk instead of per index).
  void parallel_for_chunks(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t)>& body);

  /// Process-wide pool used by the free functions below.
  static ThreadPool& global();

 private:
  struct Impl;
  Impl* impl_;
  int num_threads_;
};

/// Thread count of the global pool.
int num_threads();

/// Resizes the global pool. `n < 1` restores the automatic choice
/// (QNAT_NUM_THREADS, else hardware_concurrency). Not safe to call while
/// a parallel region is running.
void set_num_threads(int n);

/// parallel_for / parallel_for_chunks over the global pool.
void parallel_for(std::size_t n,
                  const std::function<void(std::size_t)>& body);
void parallel_for_chunks(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace qnat
