#include "common/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <mutex>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace qnat::trace {

namespace {

constexpr std::size_t kMaxEventsPerThread = std::size_t{1} << 16;

std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_dropped{0};
std::atomic<std::uint32_t> g_next_tid{0};

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Process-start epoch so exported timestamps are small and positive.
std::uint64_t epoch_ns() {
  static const std::uint64_t epoch = steady_ns();
  return epoch;
}

/// Per-thread event buffer. The owning thread appends under the shard
/// mutex (uncontended unless an exporter is concurrently draining), so
/// export never races a push.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<Event> events;
  std::uint32_t depth = 0;  ///< owner-thread only
  std::uint32_t tid = 0;
};

struct Registry {
  std::mutex mu;
  std::vector<ThreadBuffer*> buffers;  ///< leaked with the registry
};

Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

ThreadBuffer& tls_buffer() {
  thread_local ThreadBuffer* buffer = [] {
    auto* b = new ThreadBuffer();
    b->tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

void append_json_escaped(std::ostringstream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') os << '\\';
    os << *s;
  }
}

}  // namespace

void set_enabled(bool on) {
  if (on) epoch_ns();  // pin the epoch before the first event
  g_enabled.store(on, std::memory_order_relaxed);
}

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

Scope::Scope(const char* name) : name_(name) {
  if (!enabled()) return;
  active_ = true;
  ++tls_buffer().depth;
  start_ns_ = steady_ns();
}

Scope::~Scope() {
  if (!active_) return;
  const std::uint64_t end = steady_ns();
  ThreadBuffer& buffer = tls_buffer();
  --buffer.depth;
  std::lock_guard<std::mutex> lock(buffer.mu);
  if (buffer.events.size() >= kMaxEventsPerThread) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buffer.events.push_back(Event{name_, start_ns_ - epoch_ns(),
                                end - start_ns_, buffer.depth, buffer.tid});
}

std::size_t event_count() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::size_t total = 0;
  for (ThreadBuffer* b : r.buffers) {
    std::lock_guard<std::mutex> buffer_lock(b->mu);
    total += b->events.size();
  }
  return total;
}

std::uint64_t dropped_events() {
  return g_dropped.load(std::memory_order_relaxed);
}

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (ThreadBuffer* b : r.buffers) {
    std::lock_guard<std::mutex> buffer_lock(b->mu);
    b->events.clear();
  }
  g_dropped.store(0, std::memory_order_relaxed);
}

std::string chrome_trace_json() {
  std::vector<Event> events;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (ThreadBuffer* b : r.buffers) {
      std::lock_guard<std::mutex> buffer_lock(b->mu);
      events.insert(events.end(), b->events.begin(), b->events.end());
    }
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    return a.start_ns < b.start_ns;
  });

  std::ostringstream os;
  os << "{\"traceEvents\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    if (i > 0) os << ",";
    os << "\n  {\"name\": \"";
    append_json_escaped(os, e.name);
    // chrome://tracing wants microseconds; keep sub-µs as fractions.
    os << "\", \"ph\": \"X\", \"ts\": " << static_cast<double>(e.start_ns) / 1e3
       << ", \"dur\": " << static_cast<double>(e.duration_ns) / 1e3
       << ", \"pid\": 1, \"tid\": " << e.tid
       << ", \"args\": {\"depth\": " << e.depth << "}}";
  }
  os << (events.empty() ? "" : "\n") << "]}\n";
  return os.str();
}

void write_chrome_trace(const std::string& path) {
  std::ofstream out(path);
  QNAT_CHECK(out.good(), "cannot open trace output file: " + path);
  out << chrome_trace_json();
  QNAT_CHECK(out.good(), "failed writing trace output file: " + path);
}

}  // namespace qnat::trace
