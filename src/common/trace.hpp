// RAII phase tracing with chrome://tracing export.
//
// `QNAT_TRACE_SCOPE("grad.adjoint")` records a complete ("X") event
// {name, start, duration, depth, thread} into the calling thread's
// buffer when tracing is enabled, and is a single relaxed atomic load
// when it is not. Scopes nest: the depth of each event is the number of
// enclosing live scopes on the same thread, so the exported stream
// reconstructs the phase tree. Buffers are bounded (events past the cap
// are counted as dropped, not stored). Names must be string literals —
// only the pointer is stored.
//
// Export via `chrome_trace_json()` / `write_chrome_trace(path)` yields
// a chrome://tracing / Perfetto-compatible `{"traceEvents": [...]}`
// document; timestamps are microseconds since process start.
#pragma once

#include <cstdint>
#include <string>

namespace qnat::trace {

/// Enables/disables event recording (relaxed atomic; default off).
void set_enabled(bool on);
bool enabled();

/// One recorded phase (complete event).
struct Event {
  const char* name;          ///< string literal supplied to the scope
  std::uint64_t start_ns;    ///< since process start
  std::uint64_t duration_ns;
  std::uint32_t depth;       ///< nesting level on the recording thread
  std::uint32_t tid;         ///< stable per-thread ordinal
};

/// RAII phase marker. `name` must outlive the scope (use a literal).
class Scope {
 public:
  explicit Scope(const char* name);
  ~Scope();
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  const char* name_;
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
};

/// Number of buffered events across all threads (for tests).
std::size_t event_count();

/// Events discarded because a per-thread buffer filled up.
std::uint64_t dropped_events();

/// Discards all buffered events and resets the dropped counter.
void reset();

/// Serializes buffered events as a chrome://tracing JSON document.
std::string chrome_trace_json();

/// Writes chrome_trace_json() to `path` (throws qnat::Error on failure).
void write_chrome_trace(const std::string& path);

}  // namespace qnat::trace

#define QNAT_TRACE_CONCAT_INNER(a, b) a##b
#define QNAT_TRACE_CONCAT(a, b) QNAT_TRACE_CONCAT_INNER(a, b)

/// Traces the enclosing block as a phase named `name` (string literal).
#define QNAT_TRACE_SCOPE(name) \
  ::qnat::trace::Scope QNAT_TRACE_CONCAT(qnat_trace_scope_, __LINE__)(name)
