// Fundamental scalar and index types shared across the QuantumNAT library.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

namespace qnat {

/// Complex amplitude type used throughout the statevector simulator.
using cplx = std::complex<double>;

/// Reduced-precision amplitude type of the f32 simulation backends
/// (qsim/backend/f32_kernels.hpp). Storage only — parameters, matrices
/// and gradients stay double; conversion happens at the Program boundary.
using cplx32 = std::complex<float>;

/// Real scalar used for parameters, measurement outcomes and gradients.
using real = double;

/// Element precision of a simulation storage buffer or artifact. Keys
/// workspace pools and the cached sampling table (a buffer built from
/// f32 amplitudes must never serve an f64 consumer and vice versa) and
/// is recorded in QNATPROG v2 artifacts and serving-option fingerprints.
enum class DType : std::uint8_t {
  F64 = 0,
  F32 = 1,
};

/// Canonical lowercase name ("f64" / "f32") used in artifacts,
/// fingerprints and diagnostics.
inline const char* dtype_name(DType d) {
  return d == DType::F32 ? "f32" : "f64";
}

/// Qubit index within a register.
using QubitIndex = int;

/// Index into a circuit's trainable/bound parameter vector. Negative means
/// "constant parameter baked into the gate" (not differentiated).
using ParamIndex = int;

inline constexpr ParamIndex kNoParam = -1;

/// Dense vector of real parameters (gate angles, weights).
using ParamVector = std::vector<real>;

inline constexpr double kPi = 3.14159265358979323846;

}  // namespace qnat
