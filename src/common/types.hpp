// Fundamental scalar and index types shared across the QuantumNAT library.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

namespace qnat {

/// Complex amplitude type used throughout the statevector simulator.
using cplx = std::complex<double>;

/// Real scalar used for parameters, measurement outcomes and gradients.
using real = double;

/// Qubit index within a register.
using QubitIndex = int;

/// Index into a circuit's trainable/bound parameter vector. Negative means
/// "constant parameter baked into the gate" (not differentiated).
using ParamIndex = int;

inline constexpr ParamIndex kNoParam = -1;

/// Dense vector of real parameters (gate angles, weights).
using ParamVector = std::vector<real>;

inline constexpr double kPi = 3.14159265358979323846;

}  // namespace qnat
