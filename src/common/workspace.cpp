#include "common/workspace.hpp"

#include <utility>

#include "common/metrics.hpp"

namespace qnat::ws {

namespace {

// The gauge is PerRun: pool residency depends on which thread ran which
// trajectory, so the value is scheduling-dependent by construction.
metrics::Gauge bytes_gauge() {
  static metrics::Gauge g =
      metrics::gauge("qsim.workspace.bytes", metrics::Stability::PerRun);
  return g;
}

template <typename T>
struct FreeList {
  std::vector<std::vector<T>> buffers;

  ~FreeList() {
    double held = 0.0;
    for (const auto& b : buffers) {
      held += static_cast<double>(b.capacity() * sizeof(T));
    }
    if (held > 0.0) bytes_gauge().add(-held);
  }

  std::vector<T> acquire(std::size_t n) {
    if (!buffers.empty()) {
      std::vector<T> v = std::move(buffers.back());
      buffers.pop_back();
      bytes_gauge().add(-static_cast<double>(v.capacity() * sizeof(T)));
      v.resize(n);
      return v;
    }
    std::vector<T> v;
    v.resize(n);
    return v;
  }

  void release(std::vector<T>&& v) {
    if (v.capacity() == 0) return;
    bytes_gauge().add(static_cast<double>(v.capacity() * sizeof(T)));
    buffers.push_back(std::move(v));
  }
};

struct ThreadPoolState {
  FreeList<cplx> amps;
  FreeList<cplx32> amps_f32;
  FreeList<double> reals;
  CumTable cumtable;

  ~ThreadPoolState() {
    if (cumtable.accounted_bytes > 0) {
      bytes_gauge().add(-static_cast<double>(cumtable.accounted_bytes));
    }
  }
};

ThreadPoolState& local() {
  thread_local ThreadPoolState state;
  return state;
}

}  // namespace

std::vector<cplx> acquire_amps(std::size_t n) {
  return local().amps.acquire(n);
}

std::vector<cplx32> acquire_amps_f32(std::size_t n) {
  return local().amps_f32.acquire(n);
}

std::vector<double> acquire_reals(std::size_t n) {
  return local().reals.acquire(n);
}

void release_amps(std::vector<cplx>&& v) {
  local().amps.release(std::move(v));
}

void release_amps_f32(std::vector<cplx32>&& v) {
  local().amps_f32.release(std::move(v));
}

void release_reals(std::vector<double>&& v) {
  local().reals.release(std::move(v));
}

CumTable& cumtable_slot() { return local().cumtable; }

void account_cumtable(CumTable& slot) {
  const std::size_t bytes = slot.cumulative.capacity() * sizeof(double);
  if (bytes != slot.accounted_bytes) {
    bytes_gauge().add(static_cast<double>(bytes) -
                      static_cast<double>(slot.accounted_bytes));
    slot.accounted_bytes = bytes;
  }
}

double pooled_bytes() { return bytes_gauge().value(); }

}  // namespace qnat::ws
