// Thread-local buffer pool for the simulator/gradient hot paths.
//
// Every trajectory, parameter-shift evaluation and adjoint sweep needs
// one or more 2^n-amplitude arrays that live only for the duration of
// the call. Allocating them per call puts `operator new` on the hot
// path; this pool hands out recycled `std::vector` storage instead, so
// the training/eval steady state performs zero heap allocations.
//
// Ownership rules (see DESIGN.md):
//  * Buffers are pooled per *thread* (`thread_local` free lists); a
//    buffer must be released on the thread that acquired it. All
//    current users acquire and release within one function scope, which
//    the RAII leases in qsim (ScopedState / ScopedDensity) enforce.
//  * Acquired vectors are sized to the request but their *contents are
//    unspecified* — callers must overwrite before reading.
//  * The pool never shrinks; a thread's buffers are freed when the
//    thread exits (the worker pool keeps threads alive across steps, so
//    in steady state nothing is freed either).
//
// Accounting: the PerRun gauge `qsim.workspace.bytes` tracks the bytes
// resting in the free lists (released minus acquired capacity, plus the
// cached cumulative-sampling table). While buffers are leased the gauge
// dips; between steps — when every lease is back — it reads the pool's
// total footprint. A training loop therefore shows a constant gauge
// from step 1 onward iff the steady state allocates nothing new, which
// tests/integration/test_workspace_steady_state.cpp asserts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace qnat::ws {

/// Hands out a vector with size() == n (unspecified contents). Reuses
/// pooled storage when a buffer of sufficient capacity is available.
/// Leases are keyed by element dtype: f64 and f32 amplitude buffers live
/// in separate free lists, so a lease can never hand f64 storage to an
/// f32 consumer (or vice versa) regardless of interleaving.
std::vector<cplx> acquire_amps(std::size_t n);
std::vector<cplx32> acquire_amps_f32(std::size_t n);
std::vector<double> acquire_reals(std::size_t n);

/// Returns a buffer to the calling thread's pool. Must be called on the
/// thread that acquired it; passing a foreign vector is allowed (it
/// simply joins this thread's pool).
void release_amps(std::vector<cplx>&& v);
void release_amps_f32(std::vector<cplx32>&& v);
void release_reals(std::vector<double>&& v);

/// Cached cumulative-probability table for StateVector::sample, one
/// slot per thread. `state_id`/`generation` identify the state the
/// table was built from (see StateVector); `dtype` records the element
/// precision of the amplitude buffer the probabilities were computed
/// from — the same logical state sampled through the f32 mirror path
/// yields slightly different masses, so a table keyed only by
/// (state_id, generation) would serve stale cross-precision data.
/// `valid` is false until the first build on this thread.
struct CumTable {
  std::uint64_t state_id = 0;
  std::uint64_t generation = 0;
  DType dtype = DType::F64;
  bool valid = false;
  double total_mass = 0.0;
  std::vector<double> cumulative;
  std::size_t accounted_bytes = 0;  ///< capacity already in the gauge
};

CumTable& cumtable_slot();

/// Folds any capacity growth of `slot.cumulative` into the
/// `qsim.workspace.bytes` gauge. Call after (re)building the table.
void account_cumtable(CumTable& slot);

/// Current `qsim.workspace.bytes` reading (all threads aggregated);
/// convenience for tests.
double pooled_bytes();

}  // namespace qnat::ws
