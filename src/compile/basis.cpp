#include "compile/basis.hpp"

#include <cmath>

#include "common/error.hpp"

namespace qnat {

namespace {

constexpr double kEps = 1e-12;

/// Appends U3(theta, phi, lambda) as the IBM 'ZSX' Euler sequence
/// RZ(phi+pi) SX RZ(theta+pi) SX RZ(lambda), exact up to global phase.
void append_u3_template(Circuit& out, QubitIndex q, const ParamExpr& theta,
                        const ParamExpr& phi, const ParamExpr& lambda) {
  out.append(Gate(GateType::RZ, {q}, {lambda}));
  out.sx(q);
  out.append(Gate(GateType::RZ, {q}, {theta.shifted(kPi)}));
  out.sx(q);
  out.append(Gate(GateType::RZ, {q}, {phi.shifted(kPi)}));
}

void append_rz(Circuit& out, QubitIndex q, real angle) {
  out.append(Gate(GateType::RZ, {q}, {ParamExpr::constant(angle)}));
}

/// H = e^{-i pi/4} RZ(pi/2) SX RZ(pi/2): three gates instead of the
/// generic five-gate U3 expansion.
void append_h(Circuit& out, QubitIndex q) {
  append_rz(out, q, kPi / 2);
  out.sx(q);
  append_rz(out, q, kPi / 2);
}

void append_constant_1q(Circuit& out, QubitIndex q, const CMatrix& u) {
  const ZyzAngles z = decompose_1q_unitary(u);
  if (std::abs(z.theta) < kEps) {
    // Diagonal: a single frame change.
    const real angle = z.phi + z.lambda;
    if (std::abs(angle) > kEps) append_rz(out, q, angle);
    return;
  }
  append_u3_template(out, q, ParamExpr::constant(z.theta),
                     ParamExpr::constant(z.phi),
                     ParamExpr::constant(z.lambda));
}

/// RZZ(theta) on (a, b): CX, RZ(theta) on target, CX.
void append_rzz(Circuit& out, QubitIndex a, QubitIndex b,
                const ParamExpr& theta) {
  out.cx(a, b);
  out.append(Gate(GateType::RZ, {b}, {theta}));
  out.cx(a, b);
}

void append_rxx(Circuit& out, QubitIndex a, QubitIndex b,
                const ParamExpr& theta) {
  append_h(out, a);
  append_h(out, b);
  append_rzz(out, a, b, theta);
  append_h(out, a);
  append_h(out, b);
}

void append_ryy(Circuit& out, QubitIndex a, QubitIndex b,
                const ParamExpr& theta) {
  // RX(pi/2) rotates Z into Y basis: RYY = (RX⊗RX)(pi/2) RZZ (RX⊗RX)(-pi/2).
  const auto rx = [&](QubitIndex q, real angle) {
    append_u3_template(out, q, ParamExpr::constant(angle),
                       ParamExpr::constant(-kPi / 2),
                       ParamExpr::constant(kPi / 2));
  };
  rx(a, kPi / 2);
  rx(b, kPi / 2);
  append_rzz(out, a, b, theta);
  rx(a, -kPi / 2);
  rx(b, -kPi / 2);
}

void append_rzx(Circuit& out, QubitIndex a, QubitIndex b,
                const ParamExpr& theta) {
  append_h(out, b);
  append_rzz(out, a, b, theta);
  append_h(out, b);
}

/// Controlled-U3 (standard two-CX decomposition). Angles are linear
/// expressions, so trainable CU3 gates stay differentiable after
/// decomposition.
void append_cu3(Circuit& out, QubitIndex c, QubitIndex t,
                const ParamExpr& theta, const ParamExpr& phi,
                const ParamExpr& lambda) {
  out.append(Gate(GateType::RZ, {c}, {(lambda + phi) * 0.5}));
  out.append(Gate(GateType::RZ, {t}, {(lambda - phi) * 0.5}));
  out.cx(c, t);
  append_u3_template(out, t, theta * -0.5, ParamExpr::constant(0.0),
                     (phi + lambda) * -0.5);
  out.cx(c, t);
  append_u3_template(out, t, theta * 0.5, phi, ParamExpr::constant(0.0));
}

}  // namespace

bool is_basis_gate(GateType type) {
  switch (type) {
    case GateType::RZ:
    case GateType::SX:
    case GateType::X:
    case GateType::CX:
    case GateType::I:
      return true;
    default:
      return false;
  }
}

ZyzAngles decompose_1q_unitary(const CMatrix& u) {
  QNAT_CHECK(u.rows() == 2 && u.cols() == 2, "expected a 2x2 matrix");
  QNAT_CHECK(u.is_unitary(1e-9), "matrix is not unitary");
  ZyzAngles z;
  const cplx u00 = u(0, 0), u01 = u(0, 1), u10 = u(1, 0);
  const double a00 = std::abs(u00), a10 = std::abs(u10);
  z.theta = 2.0 * std::atan2(a10, a00);
  if (a10 < kEps) {
    // Diagonal.
    z.phase = std::arg(u00);
    z.phi = 0.0;
    z.lambda = std::arg(u(1, 1)) - z.phase;
  } else if (a00 < kEps) {
    // Anti-diagonal.
    z.phase = 0.0;
    z.phi = std::arg(u10);
    z.lambda = std::arg(-u01);
  } else {
    z.phase = std::arg(u00);
    z.phi = std::arg(u10) - z.phase;
    z.lambda = std::arg(-u01) - z.phase;
  }
  return z;
}

void append_basis_decomposition(Circuit& out, const Gate& gate) {
  const QubitIndex q = gate.qubits[0];
  switch (gate.type) {
    // Already in basis.
    case GateType::I:
    case GateType::X:
    case GateType::SX:
    case GateType::CX:
      out.append(gate);
      return;
    case GateType::RZ:
      out.append(gate);
      return;

    // Diagonal single-qubit gates: one RZ (global phase dropped).
    case GateType::Z:
      append_rz(out, q, kPi);
      return;
    case GateType::S:
      append_rz(out, q, kPi / 2);
      return;
    case GateType::Sdg:
      append_rz(out, q, -kPi / 2);
      return;
    case GateType::T:
      append_rz(out, q, kPi / 4);
      return;
    case GateType::Tdg:
      append_rz(out, q, -kPi / 4);
      return;
    case GateType::P:
      out.append(Gate(GateType::RZ, {q}, {gate.params[0]}));
      return;

    case GateType::Y:
      // Y = i X Z: apply Z then X (global phase dropped).
      append_rz(out, q, kPi);
      out.x(q);
      return;
    case GateType::H:
      append_h(out, q);
      return;
    case GateType::SH:
    case GateType::SXdg:
      append_constant_1q(out, q, gate.matrix({}));
      return;

    case GateType::RX:
      append_u3_template(out, q, gate.params[0],
                         ParamExpr::constant(-kPi / 2),
                         ParamExpr::constant(kPi / 2));
      return;
    case GateType::RY:
      append_u3_template(out, q, gate.params[0], ParamExpr::constant(0.0),
                         ParamExpr::constant(0.0));
      return;
    case GateType::U2:
      append_u3_template(out, q, ParamExpr::constant(kPi / 2),
                         gate.params[0], gate.params[1]);
      return;
    case GateType::U3:
      append_u3_template(out, q, gate.params[0], gate.params[1],
                         gate.params[2]);
      return;

    case GateType::CZ: {
      const QubitIndex t = gate.qubits[1];
      append_h(out, t);
      out.cx(q, t);
      append_h(out, t);
      return;
    }
    case GateType::CY: {
      const QubitIndex t = gate.qubits[1];
      append_rz(out, t, -kPi / 2);
      out.cx(q, t);
      append_rz(out, t, kPi / 2);
      return;
    }
    case GateType::CH: {
      // H = U3(pi/2, 0, pi) exactly (no extra phase), so CH = CU3.
      const QubitIndex t = gate.qubits[1];
      append_cu3(out, q, t, ParamExpr::constant(kPi / 2),
                 ParamExpr::constant(0.0), ParamExpr::constant(kPi));
      return;
    }
    case GateType::SWAP: {
      const QubitIndex b = gate.qubits[1];
      out.cx(q, b);
      out.cx(b, q);
      out.cx(q, b);
      return;
    }
    case GateType::SqrtSwap: {
      // sqrt(SWAP) = e^{i pi/8} RXX(pi/4) RYY(pi/4) RZZ(pi/4).
      const QubitIndex b = gate.qubits[1];
      append_rxx(out, q, b, ParamExpr::constant(kPi / 4));
      append_ryy(out, q, b, ParamExpr::constant(kPi / 4));
      append_rzz(out, q, b, ParamExpr::constant(kPi / 4));
      return;
    }
    case GateType::RZZ:
      append_rzz(out, q, gate.qubits[1], gate.params[0]);
      return;
    case GateType::RXX:
      append_rxx(out, q, gate.qubits[1], gate.params[0]);
      return;
    case GateType::RYY:
      append_ryy(out, q, gate.qubits[1], gate.params[0]);
      return;
    case GateType::RZX:
      append_rzx(out, q, gate.qubits[1], gate.params[0]);
      return;
    case GateType::CRZ: {
      const QubitIndex t = gate.qubits[1];
      out.append(Gate(GateType::RZ, {t}, {gate.params[0] * 0.5}));
      out.cx(q, t);
      out.append(Gate(GateType::RZ, {t}, {gate.params[0] * -0.5}));
      out.cx(q, t);
      return;
    }
    case GateType::CP: {
      const QubitIndex t = gate.qubits[1];
      out.append(Gate(GateType::RZ, {q}, {gate.params[0] * 0.5}));
      out.cx(q, t);
      out.append(Gate(GateType::RZ, {t}, {gate.params[0] * -0.5}));
      out.cx(q, t);
      out.append(Gate(GateType::RZ, {t}, {gate.params[0] * 0.5}));
      return;
    }
    case GateType::CRX:
      append_cu3(out, q, gate.qubits[1], gate.params[0],
                 ParamExpr::constant(-kPi / 2), ParamExpr::constant(kPi / 2));
      return;
    case GateType::CRY:
      append_cu3(out, q, gate.qubits[1], gate.params[0],
                 ParamExpr::constant(0.0), ParamExpr::constant(0.0));
      return;
    case GateType::CU3:
      append_cu3(out, q, gate.qubits[1], gate.params[0], gate.params[1],
                 gate.params[2]);
      return;
  }
  throw Error("unsupported gate in basis decomposition: " + gate.to_string());
}

Circuit decompose_to_basis(const Circuit& circuit) {
  Circuit out(circuit.num_qubits(), circuit.num_params());
  for (const auto& gate : circuit.gates()) {
    append_basis_decomposition(out, gate);
  }
  return out;
}

}  // namespace qnat
