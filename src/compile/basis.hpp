// Basis-gate decomposition.
//
// The paper compiles the QNN "to the basis gate set of the quantum
// hardware (e.g., X, CNOT, RZ, ... and ID) before performing gate
// insertion and training" (§3.2). IBM's physical basis is {RZ, SX, X, CX,
// ID}; this pass rewrites every supported gate into that set.
//
// Parameterized gates decompose with *linear parameter expressions*, so a
// decomposed circuit remains exactly differentiable w.r.t. the original
// parameters (e.g. CU3's (λ+φ)/2 rotation carries two expression terms).
// Constant single-qubit gates go through a numeric ZYZ extraction.
#pragma once

#include "qsim/circuit.hpp"

namespace qnat {

/// True for gates in the hardware basis {RZ, SX, X, CX, I}.
bool is_basis_gate(GateType type);

/// ZYZ (U3) angles of an arbitrary 2x2 unitary: u = e^{i phase} U3(theta,
/// phi, lambda). Throws when `u` is not unitary.
struct ZyzAngles {
  real theta = 0.0;
  real phi = 0.0;
  real lambda = 0.0;
  real phase = 0.0;
};
ZyzAngles decompose_1q_unitary(const CMatrix& u);

/// Appends the basis decomposition of `gate` to `out` (same qubit count
/// and parameter space as the source circuit).
void append_basis_decomposition(Circuit& out, const Gate& gate);

/// Rewrites a whole circuit into the hardware basis. Parameter count and
/// measurement semantics (per-qubit Z) are preserved; global phases are
/// dropped, except control-dependent phases which are kept as RZ gates.
Circuit decompose_to_basis(const Circuit& circuit);

}  // namespace qnat
