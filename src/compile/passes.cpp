#include "compile/passes.hpp"

#include <cmath>
#include <optional>

#include "common/error.hpp"

namespace qnat {

namespace {

bool touches_qubit(const Gate& gate, QubitIndex q) {
  for (QubitIndex g : gate.qubits) {
    if (g == q) return true;
  }
  return false;
}

bool touches_any(const Gate& gate, const Gate& other) {
  for (QubitIndex q : other.qubits) {
    if (touches_qubit(gate, q)) return true;
  }
  return false;
}

bool self_inverse(GateType type) {
  switch (type) {
    case GateType::X:
    case GateType::Y:
    case GateType::Z:
    case GateType::H:
    case GateType::CX:
    case GateType::CY:
    case GateType::CZ:
    case GateType::SWAP:
      return true;
    default:
      return false;
  }
}

bool same_operands(const Gate& a, const Gate& b) {
  return a.qubits == b.qubits;
}

/// Rotation families with U(a)·U(b) = U(a+b) on identical operands, so
/// adjacent pairs merge by adding their angle expressions.
bool additive_rotation(GateType type) {
  switch (type) {
    case GateType::RX:
    case GateType::RY:
    case GateType::RZ:
    case GateType::RZZ:
    case GateType::CRZ:
    case GateType::CP:
      return true;
    default:
      return false;
  }
}

/// Index of the next gate after `i` acting on any operand of gates_[i], or
/// nullopt when gates_[i] has no later neighbor.
std::optional<std::size_t> next_on_same_qubits(const std::vector<Gate>& gates,
                                               std::size_t i) {
  for (std::size_t j = i + 1; j < gates.size(); ++j) {
    if (touches_any(gates[j], gates[i])) return j;
  }
  return std::nullopt;
}

bool is_zero_mod_2pi(real angle) {
  const real r = std::remainder(angle, 2.0 * kPi);
  return std::abs(r) < 1e-12;
}

Circuit rebuild(const Circuit& source, const std::vector<Gate>& gates,
                const std::vector<bool>& keep) {
  Circuit out(source.num_qubits(), source.num_params());
  for (std::size_t i = 0; i < gates.size(); ++i) {
    if (keep[i]) out.append(gates[i]);
  }
  return out;
}

}  // namespace

Circuit merge_rotations(const Circuit& circuit, PassStats* stats) {
  std::vector<Gate> gates = circuit.gates();
  std::vector<bool> keep(gates.size(), true);
  for (std::size_t i = 0; i < gates.size(); ++i) {
    if (!keep[i] || !additive_rotation(gates[i].type)) continue;
    const auto j = next_on_same_qubits(gates, i);
    if (!j || gates[*j].type != gates[i].type ||
        !same_operands(gates[i], gates[*j])) {
      continue;
    }
    gates[*j].params[0] = gates[i].params[0] + gates[*j].params[0];
    keep[i] = false;
    if (stats != nullptr) ++stats->merged_rotations;
  }
  return rebuild(circuit, gates, keep);
}

Circuit cancel_inverse_pairs(const Circuit& circuit, PassStats* stats) {
  std::vector<Gate> gates = circuit.gates();
  std::vector<bool> keep(gates.size(), true);
  for (std::size_t i = 0; i < gates.size(); ++i) {
    if (!keep[i] || !self_inverse(gates[i].type)) continue;
    const auto j = next_on_same_qubits(gates, i);
    if (!j || !keep[*j]) continue;
    if (gates[*j].type == gates[i].type && same_operands(gates[i], gates[*j])) {
      keep[i] = false;
      keep[*j] = false;
      if (stats != nullptr) ++stats->cancelled_pairs;
    }
  }
  return rebuild(circuit, gates, keep);
}

Circuit drop_trivial_gates(const Circuit& circuit, PassStats* stats) {
  const std::vector<Gate>& gates = circuit.gates();
  std::vector<bool> keep(gates.size(), true);
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const Gate& g = gates[i];
    const bool trivial_rz = g.type == GateType::RZ &&
                            g.params[0].is_constant() &&
                            is_zero_mod_2pi(g.params[0].offset);
    if (g.type == GateType::I || trivial_rz) {
      keep[i] = false;
      if (stats != nullptr) ++stats->dropped_gates;
    }
  }
  return rebuild(circuit, gates, keep);
}

Circuit optimize_circuit(const Circuit& circuit, PassStats* stats) {
  Circuit current = circuit;
  // Fixpoint with a safety bound; each round strictly shrinks or stops.
  for (int round = 0; round < 64; ++round) {
    PassStats local;
    current = merge_rotations(current, &local);
    current = drop_trivial_gates(current, &local);
    current = cancel_inverse_pairs(current, &local);
    if (stats != nullptr) {
      stats->merged_rotations += local.merged_rotations;
      stats->cancelled_pairs += local.cancelled_pairs;
      stats->dropped_gates += local.dropped_gates;
    }
    if (local.total() == 0) break;
  }
  return current;
}

}  // namespace qnat
