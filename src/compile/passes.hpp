// Peephole optimization passes over basis-gate circuits.
//
// Mirrors the cheap always-on cleanups of a production transpiler:
//  - merge adjacent same-axis rotations (RX/RY/RZ/RZZ/CRZ/CP) on the same
//    operands — the linear angle expressions add,
//  - cancel adjacent self-inverse pairs (X·X, CX·CX, H·H, CZ·CZ, ...),
//  - drop RZ gates with constant angle ≡ 0 (mod 2π) and identity gates.
// Passes run to a fixpoint. "Adjacent" means no intervening gate touches
// any operand qubit.
#pragma once

#include "qsim/circuit.hpp"

namespace qnat {

struct PassStats {
  int merged_rotations = 0;
  int cancelled_pairs = 0;
  int dropped_gates = 0;
  int total() const {
    return merged_rotations + cancelled_pairs + dropped_gates;
  }
};

/// One sweep of rotation merging. Returns the rewritten circuit.
Circuit merge_rotations(const Circuit& circuit, PassStats* stats = nullptr);

/// One sweep of self-inverse pair cancellation.
Circuit cancel_inverse_pairs(const Circuit& circuit,
                             PassStats* stats = nullptr);

/// Removes identity gates and constant-zero rotations.
Circuit drop_trivial_gates(const Circuit& circuit, PassStats* stats = nullptr);

/// Runs all passes to a fixpoint (bounded iteration count).
Circuit optimize_circuit(const Circuit& circuit, PassStats* stats = nullptr);

}  // namespace qnat
