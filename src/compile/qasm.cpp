#include "compile/qasm.hpp"

#include "compile/basis.hpp"

#include <cctype>
#include <cmath>
#include <map>
#include <sstream>

#include "common/error.hpp"

namespace qnat {

namespace {

/// Gate types with a direct OpenQASM 2.0 (qelib1) spelling.
const std::map<GateType, std::string>& qasm_names() {
  static const std::map<GateType, std::string> names = {
      {GateType::I, "id"},     {GateType::X, "x"},
      {GateType::Y, "y"},      {GateType::Z, "z"},
      {GateType::H, "h"},      {GateType::S, "s"},
      {GateType::Sdg, "sdg"},  {GateType::T, "t"},
      {GateType::Tdg, "tdg"},  {GateType::SX, "sx"},
      {GateType::SXdg, "sxdg"}, {GateType::RX, "rx"},
      {GateType::RY, "ry"},    {GateType::RZ, "rz"},
      {GateType::P, "u1"},     {GateType::U2, "u2"},
      {GateType::U3, "u3"},    {GateType::CX, "cx"},
      {GateType::CY, "cy"},    {GateType::CZ, "cz"},
      {GateType::CH, "ch"},    {GateType::SWAP, "swap"},
      {GateType::CRX, "crx"},  {GateType::CRY, "cry"},
      {GateType::CRZ, "crz"},  {GateType::CP, "cu1"},
      {GateType::CU3, "cu3"},  {GateType::RXX, "rxx"},
      {GateType::RYY, "ryy"},  {GateType::RZZ, "rzz"},
  };
  return names;
}

const std::map<std::string, GateType>& qasm_types() {
  static const std::map<std::string, GateType> types = [] {
    std::map<std::string, GateType> t;
    for (const auto& [type, name] : qasm_names()) t[name] = type;
    t["u"] = GateType::U3;  // OpenQASM 3 spelling Qiskit sometimes emits
    t["p"] = GateType::P;
    t["cnot"] = GateType::CX;
    return t;
  }();
  return types;
}

std::string format_double(real value) {
  std::ostringstream os;
  os.precision(17);
  os << value;
  return os.str();
}

std::string format_expr(const ParamExpr& expr) {
  if (expr.is_constant()) return format_double(expr.offset);
  std::ostringstream os;
  for (std::size_t i = 0; i < expr.terms.size(); ++i) {
    if (i) os << "+";
    if (expr.terms[i].scale != 1.0) {
      os << format_double(expr.terms[i].scale) << "*";
    }
    os << "p" << expr.terms[i].id;
  }
  if (expr.offset != 0.0) os << "+" << format_double(expr.offset);
  return os.str();
}

/// Parses "0.5*p3", "p3", or "1.25". Throws on anything else.
void parse_term(const std::string& term, ParamExpr& expr, int line_number) {
  const auto star = term.find('*');
  auto parse_float = [&](const std::string& s) {
    std::size_t consumed = 0;
    const real value = std::stod(s, &consumed);
    QNAT_CHECK(consumed == s.size(),
               "qasm line " + std::to_string(line_number) +
                   ": malformed number '" + s + "'");
    return value;
  };
  auto parse_param = [&](const std::string& s, real scale) {
    QNAT_CHECK(s.size() >= 2 && s[0] == 'p',
               "qasm line " + std::to_string(line_number) +
                   ": malformed parameter '" + s + "'");
    const int id = std::stoi(s.substr(1));
    expr = expr + ParamExpr::affine(id, scale, 0.0);
  };
  if (star != std::string::npos) {
    parse_param(term.substr(star + 1), parse_float(term.substr(0, star)));
  } else if (!term.empty() && term[0] == 'p' && term.size() > 1 &&
             std::isdigit(static_cast<unsigned char>(term[1]))) {
    parse_param(term, 1.0);
  } else {
    expr.offset += parse_float(term);
  }
}

ParamExpr parse_expr(const std::string& text, int line_number) {
  ParamExpr expr = ParamExpr::constant(0.0);
  std::size_t start = 0;
  while (start <= text.size()) {
    // Split on '+' (terms may carry their own leading '-').
    std::size_t end = text.find('+', start);
    if (end == std::string::npos) end = text.size();
    std::string term = text.substr(start, end - start);
    // Trim spaces.
    while (!term.empty() && term.front() == ' ') term.erase(term.begin());
    while (!term.empty() && term.back() == ' ') term.pop_back();
    QNAT_CHECK(!term.empty(), "qasm line " + std::to_string(line_number) +
                                  ": empty term in expression '" + text + "'");
    parse_term(term, expr, line_number);
    if (end == text.size()) break;
    start = end + 1;
  }
  return expr;
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  int depth = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || (text[i] == sep && depth == 0)) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    } else if (text[i] == '(') {
      ++depth;
    } else if (text[i] == ')') {
      --depth;
    }
  }
  return out;
}

std::string trim(std::string s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.erase(s.begin());
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.pop_back();
  }
  return s;
}

}  // namespace

std::string to_qasm(const Circuit& circuit) {
  std::ostringstream os;
  os << "OPENQASM 2.0;\n";
  os << "include \"qelib1.inc\";\n";
  if (circuit.num_params() > 0) {
    os << "// qnat-params: " << circuit.num_params() << "\n";
  }
  os << "qreg q[" << circuit.num_qubits() << "];\n";

  // Gates without a qelib1 spelling are lowered via their basis
  // decomposition into a temporary circuit fragment.
  auto emit = [&](const Gate& gate) {
    const auto it = qasm_names().find(gate.type);
    QNAT_CHECK(it != qasm_names().end(),
               "gate " + gate_name(gate.type) + " has no OpenQASM form");
    os << it->second;
    if (!gate.params.empty()) {
      os << "(";
      for (std::size_t k = 0; k < gate.params.size(); ++k) {
        if (k) os << ",";
        os << format_expr(gate.params[k]);
      }
      os << ")";
    }
    os << " ";
    for (std::size_t i = 0; i < gate.qubits.size(); ++i) {
      if (i) os << ",";
      os << "q[" << gate.qubits[i] << "]";
    }
    os << ";\n";
  };

  for (const auto& gate : circuit.gates()) {
    if (qasm_names().count(gate.type) != 0) {
      emit(gate);
    } else {
      // SH, SqrtSwap, RZX: lower to basis gates for interchange.
      Circuit fragment(circuit.num_qubits(), circuit.num_params());
      append_basis_decomposition(fragment, gate);
      for (const auto& lowered : fragment.gates()) emit(lowered);
    }
  }
  return os.str();
}

Circuit from_qasm(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  int line_number = 0;
  int declared_params = 0;
  int num_qubits = 0;
  std::vector<std::string> gate_lines;
  std::vector<int> gate_line_numbers;

  while (std::getline(is, line)) {
    ++line_number;
    line = trim(line);
    if (line.empty()) continue;
    if (line.rfind("//", 0) == 0) {
      const std::string marker = "// qnat-params:";
      if (line.rfind(marker, 0) == 0) {
        declared_params = std::stoi(line.substr(marker.size()));
      }
      continue;
    }
    if (line.rfind("OPENQASM", 0) == 0 || line.rfind("include", 0) == 0) {
      continue;
    }
    if (line.rfind("qreg", 0) == 0) {
      const auto lb = line.find('[');
      const auto rb = line.find(']');
      QNAT_CHECK(lb != std::string::npos && rb != std::string::npos && rb > lb,
                 "qasm line " + std::to_string(line_number) +
                     ": malformed qreg");
      num_qubits = std::stoi(line.substr(lb + 1, rb - lb - 1));
      continue;
    }
    if (line.rfind("creg", 0) == 0 || line.rfind("measure", 0) == 0 ||
        line.rfind("barrier", 0) == 0) {
      continue;  // classical bookkeeping: ignored
    }
    gate_lines.push_back(line);
    gate_line_numbers.push_back(line_number);
  }
  QNAT_CHECK(num_qubits > 0, "qasm input declares no qreg");

  Circuit circuit(num_qubits, declared_params);
  for (std::size_t g = 0; g < gate_lines.size(); ++g) {
    std::string statement = gate_lines[g];
    const int ln = gate_line_numbers[g];
    QNAT_CHECK(!statement.empty() && statement.back() == ';',
               "qasm line " + std::to_string(ln) + ": missing ';'");
    statement.pop_back();

    // Split into mnemonic(+args) and operand list.
    std::string head = statement;
    std::string params_text;
    const auto lp = statement.find('(');
    std::string operands_text;
    if (lp != std::string::npos) {
      const auto rp = statement.find(')', lp);
      QNAT_CHECK(rp != std::string::npos,
                 "qasm line " + std::to_string(ln) + ": unbalanced '('");
      head = trim(statement.substr(0, lp));
      params_text = statement.substr(lp + 1, rp - lp - 1);
      operands_text = trim(statement.substr(rp + 1));
    } else {
      const auto space = statement.find(' ');
      QNAT_CHECK(space != std::string::npos,
                 "qasm line " + std::to_string(ln) + ": malformed statement");
      head = trim(statement.substr(0, space));
      operands_text = trim(statement.substr(space + 1));
    }

    const auto type_it = qasm_types().find(head);
    QNAT_CHECK(type_it != qasm_types().end(),
               "qasm line " + std::to_string(ln) + ": unsupported gate '" +
                   head + "'");
    const GateType type = type_it->second;

    std::vector<ParamExpr> exprs;
    if (!params_text.empty()) {
      for (const std::string& piece : split(params_text, ',')) {
        exprs.push_back(parse_expr(trim(piece), ln));
      }
    }
    QNAT_CHECK(static_cast<int>(exprs.size()) == gate_num_params(type),
               "qasm line " + std::to_string(ln) + ": gate '" + head +
                   "' expects " + std::to_string(gate_num_params(type)) +
                   " parameters");

    std::vector<QubitIndex> qubits;
    for (const std::string& piece : split(operands_text, ',')) {
      const std::string operand = trim(piece);
      const auto lb = operand.find('[');
      const auto rb = operand.find(']');
      QNAT_CHECK(lb != std::string::npos && rb != std::string::npos,
                 "qasm line " + std::to_string(ln) + ": malformed operand '" +
                     operand + "'");
      qubits.push_back(std::stoi(operand.substr(lb + 1, rb - lb - 1)));
    }
    circuit.append(Gate(type, std::move(qubits), std::move(exprs)));
  }
  return circuit;
}

}  // namespace qnat
