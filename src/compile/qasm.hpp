// OpenQASM 2.0 import/export.
//
// Round-trippable serialization of circuits for interchange with Qiskit
// and friends. Export writes every gate the library knows, lowering the
// few non-OpenQASM natives (SH, RZX) to supported forms via their basis
// decomposition; parameterized angles print either as literals or as
// `param[k]`-style symbols (a small extension Qiskit tolerates as
// comments? no — symbolic circuits are exported with a declared
// `// qnat-params: N` header and `p<k>` identifiers, and re-imported by
// this library; plain numeric circuits are standard OpenQASM 2.0).
//
// Import supports the subset this library emits plus the common Qiskit
// output gates (u1/u2/u3, cx, ccx is NOT supported — no Toffoli in the
// gate set).
#pragma once

#include <string>

#include "qsim/circuit.hpp"

namespace qnat {

/// Serializes a circuit to OpenQASM 2.0 text. Gates whose angles are
/// bound parameter expressions are written as `p<k>` symbols (with scale
/// and offset folded in as arithmetic), prefixed by a `// qnat-params: N`
/// header line so `from_qasm` can rebuild the parameter space.
std::string to_qasm(const Circuit& circuit);

/// Parses OpenQASM 2.0 text produced by `to_qasm` or by other tools using
/// the supported gate subset. Throws qnat::Error with a line number on
/// malformed input.
Circuit from_qasm(const std::string& text);

}  // namespace qnat
