#include "compile/routing.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <queue>

#include "common/error.hpp"

namespace qnat {

namespace {

std::vector<std::vector<QubitIndex>> adjacency(const NoiseModel& model) {
  std::vector<std::vector<QubitIndex>> adj(
      static_cast<std::size_t>(model.num_qubits()));
  for (const auto& [a, b] : model.coupling_map()) {
    adj[static_cast<std::size_t>(a)].push_back(b);
    adj[static_cast<std::size_t>(b)].push_back(a);
  }
  return adj;
}

/// BFS shortest path between physical qubits; empty when unreachable.
std::vector<QubitIndex> shortest_path(
    const std::vector<std::vector<QubitIndex>>& adj, QubitIndex from,
    QubitIndex to) {
  std::vector<QubitIndex> parent(adj.size(), -1);
  std::vector<bool> seen(adj.size(), false);
  std::queue<QubitIndex> frontier;
  frontier.push(from);
  seen[static_cast<std::size_t>(from)] = true;
  while (!frontier.empty()) {
    const QubitIndex cur = frontier.front();
    frontier.pop();
    if (cur == to) break;
    for (QubitIndex next : adj[static_cast<std::size_t>(cur)]) {
      if (seen[static_cast<std::size_t>(next)]) continue;
      seen[static_cast<std::size_t>(next)] = true;
      parent[static_cast<std::size_t>(next)] = cur;
      frontier.push(next);
    }
  }
  if (!seen[static_cast<std::size_t>(to)]) return {};
  std::vector<QubitIndex> path;
  for (QubitIndex cur = to; cur != -1; cur = parent[static_cast<std::size_t>(cur)]) {
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

double qubit_score(const NoiseModel& model, QubitIndex q) {
  const auto readout = model.readout_error(q);
  return model.single_qubit_channel(GateType::SX, q).total() +
         0.5 * (readout.p1_given_0() + readout.p0_given_1());
}

}  // namespace

Layout trivial_layout(int num_logical) {
  Layout layout(static_cast<std::size_t>(num_logical));
  for (int i = 0; i < num_logical; ++i) {
    layout[static_cast<std::size_t>(i)] = i;
  }
  return layout;
}

Layout noise_adaptive_layout(int num_logical, const NoiseModel& model) {
  QNAT_CHECK(num_logical <= model.num_qubits(),
             "circuit does not fit on device");
  const auto adj = adjacency(model);
  double best_total = std::numeric_limits<double>::infinity();
  Layout best;

  // Grow a connected set greedily from each seed qubit; keep the cheapest.
  for (QubitIndex seed = 0; seed < model.num_qubits(); ++seed) {
    std::vector<QubitIndex> chosen{seed};
    std::vector<bool> in_set(static_cast<std::size_t>(model.num_qubits()),
                             false);
    in_set[static_cast<std::size_t>(seed)] = true;
    double total = qubit_score(model, seed);
    while (static_cast<int>(chosen.size()) < num_logical) {
      QubitIndex best_next = -1;
      double best_score = std::numeric_limits<double>::infinity();
      for (QubitIndex member : chosen) {
        for (QubitIndex cand : adj[static_cast<std::size_t>(member)]) {
          if (in_set[static_cast<std::size_t>(cand)]) continue;
          const double score =
              qubit_score(model, cand) +
              model.two_qubit_channel(member, cand).total();
          if (score < best_score) {
            best_score = score;
            best_next = cand;
          }
        }
      }
      if (best_next == -1) break;  // disconnected or exhausted
      chosen.push_back(best_next);
      in_set[static_cast<std::size_t>(best_next)] = true;
      total += best_score;
    }
    if (static_cast<int>(chosen.size()) == num_logical && total < best_total) {
      best_total = total;
      best = Layout(chosen.begin(), chosen.end());
    }
  }
  QNAT_CHECK(!best.empty(),
             "no connected physical subset large enough for the circuit");
  return best;
}

std::optional<Layout> embed_interaction_graph(const Circuit& circuit,
                                              const NoiseModel& model,
                                              long max_steps,
                                              int collect_limit) {
  const int nl = circuit.num_qubits();
  if (nl > model.num_qubits()) return std::nullopt;

  // Interaction graph: logical adjacency from two-qubit gates.
  std::vector<std::vector<QubitIndex>> interacts(
      static_cast<std::size_t>(nl));
  for (const auto& gate : circuit.gates()) {
    if (gate.num_qubits() != 2) continue;
    const QubitIndex a = gate.qubits[0];
    const QubitIndex b = gate.qubits[1];
    auto& na = interacts[static_cast<std::size_t>(a)];
    auto& nb = interacts[static_cast<std::size_t>(b)];
    if (std::find(na.begin(), na.end(), b) == na.end()) na.push_back(b);
    if (std::find(nb.begin(), nb.end(), a) == nb.end()) nb.push_back(a);
  }

  // Assignment order: BFS over the interaction graph so each vertex
  // (after the first) has an already-placed neighbor, pruning early.
  std::vector<QubitIndex> order;
  std::vector<bool> ordered(static_cast<std::size_t>(nl), false);
  for (QubitIndex seed = 0; seed < nl; ++seed) {
    if (ordered[static_cast<std::size_t>(seed)]) continue;
    std::vector<QubitIndex> queue{seed};
    ordered[static_cast<std::size_t>(seed)] = true;
    while (!queue.empty()) {
      const QubitIndex cur = queue.front();
      queue.erase(queue.begin());
      order.push_back(cur);
      for (const QubitIndex next : interacts[static_cast<std::size_t>(cur)]) {
        if (!ordered[static_cast<std::size_t>(next)]) {
          ordered[static_cast<std::size_t>(next)] = true;
          queue.push_back(next);
        }
      }
    }
  }

  Layout assignment(static_cast<std::size_t>(nl), -1);
  std::vector<bool> used(static_cast<std::size_t>(model.num_qubits()), false);
  std::vector<Layout> found;
  long steps = 0;

  auto score = [&](const Layout& layout) {
    double total = 0.0;
    for (QubitIndex l = 0; l < nl; ++l) {
      const QubitIndex p = layout[static_cast<std::size_t>(l)];
      total += qubit_score(model, p);
      for (const QubitIndex ln : interacts[static_cast<std::size_t>(l)]) {
        total += 0.5 * model
                           .two_qubit_channel(
                               p, layout[static_cast<std::size_t>(ln)])
                           .total();
      }
    }
    return total;
  };

  std::function<bool(std::size_t)> place = [&](std::size_t depth) -> bool {
    if (++steps > max_steps) return true;  // budget exhausted: stop search
    if (depth == order.size()) {
      found.push_back(assignment);
      return static_cast<int>(found.size()) >= collect_limit;
    }
    const QubitIndex logical = order[depth];
    for (QubitIndex p = 0; p < model.num_qubits(); ++p) {
      if (used[static_cast<std::size_t>(p)]) continue;
      bool compatible = true;
      for (const QubitIndex ln :
           interacts[static_cast<std::size_t>(logical)]) {
        const QubitIndex lp = assignment[static_cast<std::size_t>(ln)];
        if (lp != -1 && !model.coupled(p, lp)) {
          compatible = false;
          break;
        }
      }
      if (!compatible) continue;
      assignment[static_cast<std::size_t>(logical)] = p;
      used[static_cast<std::size_t>(p)] = true;
      if (place(depth + 1)) return true;
      assignment[static_cast<std::size_t>(logical)] = -1;
      used[static_cast<std::size_t>(p)] = false;
    }
    return false;
  };
  place(0);

  if (found.empty()) return std::nullopt;
  std::size_t best = 0;
  double best_score = score(found[0]);
  for (std::size_t i = 1; i < found.size(); ++i) {
    const double s = score(found[i]);
    if (s < best_score) {
      best_score = s;
      best = i;
    }
  }
  return found[best];
}

RoutedCircuit route_circuit(const Circuit& circuit, const NoiseModel& model,
                            const Layout& initial_layout) {
  QNAT_CHECK(circuit.num_qubits() <= model.num_qubits(),
             "circuit does not fit on device");
  QNAT_CHECK(initial_layout.size() ==
                 static_cast<std::size_t>(circuit.num_qubits()),
             "layout size must match circuit qubit count");

  const auto adj = adjacency(model);
  Layout layout = initial_layout;  // logical -> physical
  // physical -> logical (or -1 when holding an ancilla).
  std::vector<QubitIndex> occupant(
      static_cast<std::size_t>(model.num_qubits()), -1);
  for (std::size_t l = 0; l < layout.size(); ++l) {
    const QubitIndex p = layout[l];
    QNAT_CHECK(p >= 0 && p < model.num_qubits(), "layout entry out of range");
    QNAT_CHECK(occupant[static_cast<std::size_t>(p)] == -1,
               "layout maps two logical qubits to one physical qubit");
    occupant[static_cast<std::size_t>(p)] = static_cast<QubitIndex>(l);
  }

  RoutedCircuit out{Circuit(model.num_qubits(), circuit.num_params()), {}, 0};

  auto apply_swap = [&](QubitIndex pa, QubitIndex pb) {
    out.circuit.cx(pa, pb);
    out.circuit.cx(pb, pa);
    out.circuit.cx(pa, pb);
    ++out.inserted_swaps;
    const QubitIndex la = occupant[static_cast<std::size_t>(pa)];
    const QubitIndex lb = occupant[static_cast<std::size_t>(pb)];
    occupant[static_cast<std::size_t>(pa)] = lb;
    occupant[static_cast<std::size_t>(pb)] = la;
    if (la != -1) layout[static_cast<std::size_t>(la)] = pb;
    if (lb != -1) layout[static_cast<std::size_t>(lb)] = pa;
  };

  for (const auto& gate : circuit.gates()) {
    if (gate.num_qubits() == 1) {
      Gate mapped = gate;
      mapped.qubits[0] = layout[static_cast<std::size_t>(gate.qubits[0])];
      out.circuit.append(std::move(mapped));
      continue;
    }
    QNAT_CHECK(gate.type == GateType::CX,
               "router expects basis circuits (two-qubit gates must be CX)");
    QubitIndex pa = layout[static_cast<std::size_t>(gate.qubits[0])];
    const QubitIndex pb = layout[static_cast<std::size_t>(gate.qubits[1])];
    if (!model.coupled(pa, pb)) {
      const auto path = shortest_path(adj, pa, pb);
      QNAT_CHECK(path.size() >= 2, "coupling map is disconnected");
      // Walk the control toward the target, leaving them adjacent.
      for (std::size_t i = 0; i + 2 < path.size(); ++i) {
        apply_swap(path[i], path[i + 1]);
      }
      pa = layout[static_cast<std::size_t>(gate.qubits[0])];
    }
    Gate mapped = gate;
    mapped.qubits[0] = pa;
    mapped.qubits[1] = layout[static_cast<std::size_t>(gate.qubits[1])];
    out.circuit.append(std::move(mapped));
  }
  out.final_layout = layout;
  return out;
}

}  // namespace qnat
