// Qubit layout and SWAP routing.
//
// Real devices only support two-qubit gates between physically coupled
// qubits. The router maintains a logical→physical layout, inserts SWAPs
// (as three CX gates, staying in the hardware basis) along shortest
// coupling-graph paths when a gate spans uncoupled qubits, and reports the
// final layout so measurement can read each logical qubit from the right
// physical wire.
//
// Two initial-layout strategies mirror Qiskit optimization levels: the
// trivial layout (levels 0-2) and a noise-adaptive greedy layout (level 3)
// that places the circuit on the connected subset of qubits with the
// lowest combined gate + readout error — the knob behind the paper's
// Table 7 experiment.
#pragma once

#include <optional>
#include <vector>

#include "noise/noise_model.hpp"
#include "qsim/circuit.hpp"

namespace qnat {

/// logical qubit i lives on physical qubit layout[i].
using Layout = std::vector<QubitIndex>;

/// Identity layout: logical i → physical i.
Layout trivial_layout(int num_logical);

/// Greedy noise-adaptive layout: grows a connected physical subset of the
/// device minimizing (single-qubit error + readout error), preferring
/// low-error coupling edges.
Layout noise_adaptive_layout(int num_logical, const NoiseModel& model);

/// Exact embedding of the circuit's two-qubit interaction graph into the
/// device coupling graph (backtracking subgraph isomorphism, bounded by
/// `max_steps`). When it succeeds, routing inserts **zero** SWAPs — e.g.
/// a 10-qubit ring ansatz embeds exactly into Melbourne's ladder. With
/// `collect_limit > 1`, up to that many embeddings are found and the one
/// with the lowest combined gate + readout error is returned (the
/// noise-adaptive variant used at optimization level 3). Returns nullopt
/// when no embedding exists or the search budget is exhausted.
std::optional<Layout> embed_interaction_graph(const Circuit& circuit,
                                              const NoiseModel& model,
                                              long max_steps = 200000,
                                              int collect_limit = 1);

struct RoutedCircuit {
  /// Circuit over the device's physical qubits.
  Circuit circuit;
  /// Final logical→physical layout after SWAP insertion.
  Layout final_layout;
  int inserted_swaps = 0;
};

/// Routes `circuit` (over logical qubits) onto the device coupling map.
/// Two-qubit gates must be CX (run after basis decomposition). Throws when
/// the device has fewer qubits than the circuit or a disconnected
/// coupling map blocks routing.
RoutedCircuit route_circuit(const Circuit& circuit, const NoiseModel& model,
                            const Layout& initial_layout);

}  // namespace qnat
