#include "compile/transpiler.hpp"

#include "common/error.hpp"
#include "compile/basis.hpp"

namespace qnat {

TranspileResult transpile(const Circuit& circuit, const NoiseModel& model,
                          int optimization_level) {
  QNAT_CHECK(optimization_level >= 0 && optimization_level <= 3,
             "optimization level must be 0..3");
  TranspileResult result;

  Circuit basis = decompose_to_basis(circuit);
  if (optimization_level >= 2) {
    basis = optimize_circuit(basis, &result.pass_stats);
  }

  // Layout selection: at levels >= 1 try to embed the interaction graph
  // exactly (zero SWAPs); level 3 scores up to 64 embeddings by noise.
  // Fallbacks: noise-adaptive greedy (level 3) or trivial.
  Layout layout;
  std::optional<Layout> embedded;
  if (optimization_level >= 1) {
    embedded = embed_interaction_graph(basis, model, 200000,
                                       optimization_level >= 3 ? 64 : 1);
  }
  if (embedded.has_value()) {
    layout = *embedded;
  } else if (optimization_level >= 3) {
    layout = noise_adaptive_layout(circuit.num_qubits(), model);
  } else {
    layout = trivial_layout(circuit.num_qubits());
  }

  RoutedCircuit routed = route_circuit(basis, model, layout);
  result.inserted_swaps = routed.inserted_swaps;
  result.final_layout = std::move(routed.final_layout);
  result.circuit = optimization_level >= 1
                       ? optimize_circuit(routed.circuit, &result.pass_stats)
                       : std::move(routed.circuit);
  return result;
}

}  // namespace qnat
