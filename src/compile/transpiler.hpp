// Transpiler facade: decompose → (optimize) → layout → route → (optimize).
//
// Optimization levels mirror the Qiskit settings the paper uses:
//   0 — basis decomposition + trivial layout + routing, no cleanup;
//   1 — plus one peephole cleanup round after routing;
//   2 — peephole cleanup before and after routing (the paper's default);
//   3 — level 2 plus the noise-adaptive initial layout (Table 7).
#pragma once

#include "compile/passes.hpp"
#include "compile/routing.hpp"
#include "noise/noise_model.hpp"
#include "qsim/circuit.hpp"

namespace qnat {

struct TranspileResult {
  /// Basis circuit over the device's physical qubits.
  Circuit circuit;
  /// Logical qubit q is measured on physical wire final_layout[q].
  Layout final_layout;
  PassStats pass_stats;
  int inserted_swaps = 0;
};

/// Compiles `circuit` for the device described by `model`.
TranspileResult transpile(const Circuit& circuit, const NoiseModel& model,
                          int optimization_level = 2);

}  // namespace qnat
