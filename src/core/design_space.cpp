#include "core/design_space.hpp"

#include "common/error.hpp"

namespace qnat {

namespace {

/// Ring edges q → (q+1) mod Q. For Q == 2 this yields both directions,
/// matching TorchQuantum's ring connection on two qubits.
std::vector<std::pair<QubitIndex, QubitIndex>> ring_edges(int nq) {
  std::vector<std::pair<QubitIndex, QubitIndex>> edges;
  if (nq < 2) return edges;
  for (int q = 0; q < nq; ++q) edges.emplace_back(q, (q + 1) % nq);
  return edges;
}

/// Disjoint neighbor pairs (0,1), (2,3), ...
std::vector<std::pair<QubitIndex, QubitIndex>> pair_edges(int nq) {
  std::vector<std::pair<QubitIndex, QubitIndex>> edges;
  for (int q = 0; q + 1 < nq; q += 2) edges.emplace_back(q, q + 1);
  return edges;
}

// One named layer of each kind. Returns parameters allocated.

int layer_u3(Circuit& c) {
  const int first = c.allocate_params(3 * c.num_qubits());
  for (int q = 0; q < c.num_qubits(); ++q) {
    c.u3(q, first + 3 * q, first + 3 * q + 1, first + 3 * q + 2);
  }
  return 3 * c.num_qubits();
}

int layer_cu3_ring(Circuit& c) {
  const auto edges = ring_edges(c.num_qubits());
  const int first = c.allocate_params(3 * static_cast<int>(edges.size()));
  int p = first;
  for (const auto& [a, b] : edges) {
    c.cu3(a, b, p, p + 1, p + 2);
    p += 3;
  }
  return 3 * static_cast<int>(edges.size());
}

int layer_rot(Circuit& c, GateType type) {
  const int first = c.allocate_params(c.num_qubits());
  for (int q = 0; q < c.num_qubits(); ++q) {
    c.append(Gate(type, {q}, {ParamExpr::param(first + q)}));
  }
  return c.num_qubits();
}

int layer_two_qubit_ring(Circuit& c, GateType type) {
  const auto edges = ring_edges(c.num_qubits());
  const int first = c.allocate_params(static_cast<int>(edges.size()));
  int p = first;
  for (const auto& [a, b] : edges) {
    c.append(Gate(type, {a, b}, {ParamExpr::param(p)}));
    ++p;
  }
  return static_cast<int>(edges.size());
}

int layer_const_1q(Circuit& c, GateType type) {
  for (int q = 0; q < c.num_qubits(); ++q) c.append(Gate(type, {q}));
  return 0;
}

int layer_cnot_ring(Circuit& c) {
  for (const auto& [a, b] : ring_edges(c.num_qubits())) c.cx(a, b);
  return 0;
}

int layer_const_pairs(Circuit& c, GateType type) {
  for (const auto& [a, b] : pair_edges(c.num_qubits())) {
    c.append(Gate(type, {a, b}));
  }
  return 0;
}

/// Appends the `index`-th named layer of `space`'s cycle.
int append_cycle_layer(Circuit& c, DesignSpace space, int index) {
  switch (space) {
    case DesignSpace::U3CU3:
      return index % 2 == 0 ? layer_u3(c) : layer_cu3_ring(c);
    case DesignSpace::ZZRY:
      return index % 2 == 0 ? layer_two_qubit_ring(c, GateType::RZZ)
                            : layer_rot(c, GateType::RY);
    case DesignSpace::RXYZ:
      switch (index % 5) {
        case 0: return layer_const_1q(c, GateType::SH);
        case 1: return layer_rot(c, GateType::RX);
        case 2: return layer_rot(c, GateType::RY);
        case 3: return layer_rot(c, GateType::RZ);
        default: {
          for (const auto& [a, b] : ring_edges(c.num_qubits())) c.cz(a, b);
          return 0;
        }
      }
    case DesignSpace::ZXXX:
      return index % 2 == 0 ? layer_two_qubit_ring(c, GateType::RZX)
                            : layer_two_qubit_ring(c, GateType::RXX);
    case DesignSpace::RXYZU1CU3:
      switch (index % 11) {
        case 0: return layer_rot(c, GateType::RX);
        case 1: return layer_const_1q(c, GateType::S);
        case 2: return layer_cnot_ring(c);
        case 3: return layer_rot(c, GateType::RY);
        case 4: return layer_const_1q(c, GateType::T);
        case 5: return layer_const_pairs(c, GateType::SWAP);
        case 6: return layer_rot(c, GateType::RZ);
        case 7: return layer_const_1q(c, GateType::H);
        case 8: return layer_const_pairs(c, GateType::SqrtSwap);
        case 9: return layer_rot(c, GateType::P);
        default: return layer_cu3_ring(c);
      }
  }
  throw Error("unknown design space");
}

}  // namespace

DesignSpace design_space_from_string(const std::string& name) {
  if (name == "u3cu3") return DesignSpace::U3CU3;
  if (name == "zzry") return DesignSpace::ZZRY;
  if (name == "rxyz") return DesignSpace::RXYZ;
  if (name == "zxxx") return DesignSpace::ZXXX;
  if (name == "rxyzu1cu3") return DesignSpace::RXYZU1CU3;
  throw Error("unknown design space: " + name);
}

std::string design_space_name(DesignSpace space) {
  switch (space) {
    case DesignSpace::U3CU3: return "u3cu3";
    case DesignSpace::ZZRY: return "zzry";
    case DesignSpace::RXYZ: return "rxyz";
    case DesignSpace::ZXXX: return "zxxx";
    case DesignSpace::RXYZU1CU3: return "rxyzu1cu3";
  }
  return "?";
}

int append_trainable_layers(Circuit& circuit, DesignSpace space,
                            int num_layers) {
  QNAT_CHECK(num_layers > 0, "need at least one trainable layer");
  int params = 0;
  for (int layer = 0; layer < num_layers; ++layer) {
    params += append_cycle_layer(circuit, space, layer);
  }
  return params;
}

int count_trainable_params(DesignSpace space, int num_qubits,
                           int num_layers) {
  Circuit scratch(num_qubits);
  return append_trainable_layers(scratch, space, num_layers);
}

}  // namespace qnat
