// Trainable-layer design spaces (paper Table 2).
//
//  - U3CU3 (default, Fig. 2): alternating layers of per-qubit U3 gates and
//    ring-connected CU3 gates; a "2B x 2L" model has 2 blocks, each with
//    one U3 layer and one CU3 layer.
//  - ZZRY  ('ZZ+RY' [18]): ring-connected RZZ layer + RY layer.
//  - RXYZ  ('RXYZ' [21]): five layers — sqrt(H), RX, RY, RZ, ring CZ.
//  - ZXXX  ('ZX+XX' [6]): ring RZX layer + ring RXX layer.
//  - RXYZU1CU3 ('RXYZ+U1+CU3' [8]): the 11-layer cycle RX, S, CNOT(ring),
//    RY, T, SWAP(pairs), RZ, H, sqrt(SWAP)(pairs), U1, CU3(ring).
//
// `num_layers` counts *named layers* from the space's cycle, so a
// 12-layer U3CU3 block alternates U3/CU3 six times, and a 5-layer RXYZ
// block is exactly one full cycle.
#pragma once

#include <string>

#include "qsim/circuit.hpp"

namespace qnat {

enum class DesignSpace { U3CU3, ZZRY, RXYZ, ZXXX, RXYZU1CU3 };

DesignSpace design_space_from_string(const std::string& name);
std::string design_space_name(DesignSpace space);

/// Appends `num_layers` trainable layers to `circuit`, allocating the
/// parameter slots it needs on the circuit. Returns the number of
/// parameters added.
int append_trainable_layers(Circuit& circuit, DesignSpace space,
                            int num_layers);

/// Number of parameters `append_trainable_layers` would allocate (for
/// model-size reporting without building a circuit).
int count_trainable_params(DesignSpace space, int num_qubits, int num_layers);

}  // namespace qnat
