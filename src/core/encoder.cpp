#include "core/encoder.hpp"

#include <array>

#include "common/error.hpp"

namespace qnat {

void append_feature_encoder(Circuit& circuit, int num_features,
                            int first_param) {
  QNAT_CHECK(num_features > 0, "encoder needs at least one feature");
  const int nq = circuit.num_qubits();
  static constexpr std::array<GateType, 4> kCycle = {
      GateType::RY, GateType::RX, GateType::RZ, GateType::RY};
  int feature = 0;
  int layer = 0;
  while (feature < num_features) {
    const GateType type = kCycle[static_cast<std::size_t>(layer % 4)];
    for (int q = 0; q < nq && feature < num_features; ++q, ++feature) {
      circuit.append(
          Gate(type, {q}, {ParamExpr::param(first_param + feature)}));
    }
    ++layer;
  }
}

void append_reencoder(Circuit& circuit, int first_param) {
  for (int q = 0; q < circuit.num_qubits(); ++q) {
    circuit.ry(q, first_param + q);
  }
}

}  // namespace qnat
