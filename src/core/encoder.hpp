// Input encoders (paper §3, Fig. 2).
//
// The first block's encoder embeds classical features as rotation angles,
// cycling gate layers [RY, RX, RZ, RY] across qubits — e.g. 16 features on
// 4 qubits become 4 RY + 4 RX + 4 RZ + 4 RY gates; 36 features on 10
// qubits become 10 RY + 10 RX + 10 RZ + 6 RY; 10 vowel features on 4
// qubits become 4 RY + 4 RX + 2 RZ. Later blocks re-encode the previous
// block's (normalized, quantized) measurement outcomes with one RY per
// qubit.
#pragma once

#include "qsim/circuit.hpp"

namespace qnat {

/// Appends the first-block encoder for `num_features` inputs bound to
/// parameter slots [first_param, first_param + num_features). Gate layers
/// cycle RY → RX → RZ → RY → RY → ... (repeating the 4-layer pattern),
/// each layer covering qubits 0..Q-1 until features run out.
void append_feature_encoder(Circuit& circuit, int num_features,
                            int first_param);

/// Appends the inter-block encoder: one RY per qubit bound to slots
/// [first_param, first_param + num_qubits).
void append_reencoder(Circuit& circuit, int first_param);

}  // namespace qnat
