#include "core/evaluator.hpp"

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"
#include "nn/losses.hpp"
#include "noise/channel_simulator.hpp"
#include "noise/error_inserter.hpp"
#include "qsim/execution.hpp"

namespace qnat {

Deployment::Deployment(const QnnModel& model, NoiseModel noise_model,
                       int optimization_level)
    : model_(&model),
      noise_(std::move(noise_model)),
      optimization_level_(optimization_level) {
  QNAT_CHECK(model.architecture().num_qubits <= noise_.num_qubits(),
             "model does not fit on device");
  compiled_.reserve(model.blocks().size());
  for (const auto& block : model.blocks()) {
    compiled_.push_back(transpile(block.circuit, noise_, optimization_level));
  }

  // Union of device wires any block touches (gates or measured layout).
  const int nq = model.architecture().num_qubits;
  std::vector<bool> used(static_cast<std::size_t>(noise_.num_qubits()),
                         false);
  for (const auto& result : compiled_) {
    for (const auto& gate : result.circuit.gates()) {
      for (const QubitIndex q : gate.qubits) {
        used[static_cast<std::size_t>(q)] = true;
      }
    }
    for (int q = 0; q < nq; ++q) {
      used[static_cast<std::size_t>(
          result.final_layout[static_cast<std::size_t>(q)])] = true;
    }
  }
  std::vector<QubitIndex> to_compact(
      static_cast<std::size_t>(noise_.num_qubits()), -1);
  for (QubitIndex p = 0; p < noise_.num_qubits(); ++p) {
    if (used[static_cast<std::size_t>(p)]) {
      to_compact[static_cast<std::size_t>(p)] =
          static_cast<QubitIndex>(compact_wires_.size());
      compact_wires_.push_back(p);
    }
  }
  compact_noise_ = noise_.restricted_to(compact_wires_);

  for (const auto& result : compiled_) {
    Circuit compact(static_cast<int>(compact_wires_.size()),
                    result.circuit.num_params());
    for (Gate gate : result.circuit.gates()) {
      for (QubitIndex& q : gate.qubits) {
        q = to_compact[static_cast<std::size_t>(q)];
      }
      compact.append(std::move(gate));
    }
    compact_circuits_.push_back(std::move(compact));

    std::vector<QubitIndex> wires;
    wires.reserve(static_cast<std::size_t>(nq));
    for (int q = 0; q < nq; ++q) {
      wires.push_back(to_compact[static_cast<std::size_t>(
          result.final_layout[static_cast<std::size_t>(q)])]);
    }
    compact_measure_wires_.push_back(std::move(wires));
  }
}

namespace {

std::vector<BlockExecutionPlan> plans_over_compact(
    const Deployment& deployment, int num_logical, bool readout_map,
    const std::vector<const Circuit*>& circuits) {
  const NoiseModel& noise = deployment.compact_noise();
  std::vector<BlockExecutionPlan> plans;
  plans.reserve(circuits.size());
  for (std::size_t b = 0; b < circuits.size(); ++b) {
    BlockExecutionPlan plan;
    plan.circuit = circuits[b];
    plan.measure_wires = deployment.compact_measure_wires()[b];
    plan.readout_slope.resize(static_cast<std::size_t>(num_logical));
    plan.readout_intercept.resize(static_cast<std::size_t>(num_logical));
    for (int q = 0; q < num_logical; ++q) {
      const auto qi = static_cast<std::size_t>(q);
      if (readout_map) {
        const ReadoutError e = noise.readout_error(plan.measure_wires[qi]);
        plan.readout_slope[qi] = e.slope();
        plan.readout_intercept[qi] = e.intercept();
      } else {
        plan.readout_slope[qi] = 1.0;
        plan.readout_intercept[qi] = 0.0;
      }
    }
    plans.push_back(std::move(plan));
  }
  return plans;
}

}  // namespace

std::vector<BlockExecutionPlan> Deployment::compiled_plans(
    bool readout_map) const {
  std::vector<const Circuit*> circuits;
  circuits.reserve(compact_circuits_.size());
  for (const auto& c : compact_circuits_) circuits.push_back(&c);
  return plans_over_compact(*this, model_->architecture().num_qubits,
                            readout_map, circuits);
}

std::vector<BlockExecutionPlan> Deployment::injected_plans(
    double noise_factor, bool readout_map, Rng& rng,
    std::vector<Circuit>& storage) const {
  storage.clear();
  storage.reserve(compact_circuits_.size());
  for (const auto& circuit : compact_circuits_) {
    storage.push_back(
        insert_error_gates(circuit, compact_noise_, noise_factor, rng));
  }
  std::vector<const Circuit*> circuits;
  circuits.reserve(storage.size());
  for (const auto& c : storage) circuits.push_back(&c);
  return plans_over_compact(*this, model_->architecture().num_qubits,
                            readout_map, circuits);
}

std::shared_ptr<const Deployment::InjectionTemplate>
Deployment::prepare_injection(double noise_factor) const {
  auto prepared = std::make_shared<InjectionTemplate>();
  prepared->noise_factor = noise_factor;
  prepared->inserters.reserve(compact_circuits_.size());
  for (const auto& circuit : compact_circuits_) {
    prepared->inserters.emplace_back(circuit, compact_noise_, noise_factor);
  }
  // Compile the clean realizations once; sharing through the template
  // keeps workers off the program cache (and its whole-circuit hash) for
  // every realization where no stochastic site fires.
  prepared->clean_programs.reserve(prepared->inserters.size());
  for (const auto& inserter : prepared->inserters) {
    prepared->clean_programs.push_back(
        shared_program(*inserter.clean_circuit()));
  }
  return prepared;
}

std::vector<BlockExecutionPlan> Deployment::injected_plans(
    const InjectionTemplate& prepared, bool readout_map, Rng& rng,
    std::vector<Circuit>& storage) const {
  QNAT_CHECK(prepared.inserters.size() == compact_circuits_.size(),
             "injection template does not match this deployment");
  storage.clear();
  storage.resize(prepared.inserters.size());
  std::vector<const Circuit*> circuits;
  std::vector<std::shared_ptr<const CompiledProgram>> programs;
  circuits.reserve(storage.size());
  programs.reserve(storage.size());
  for (std::size_t b = 0; b < prepared.inserters.size(); ++b) {
    // Clean realizations point at the template's shared circuit and
    // reuse its precompiled program; storage[b] stays an empty
    // placeholder (block-aligned so callers can splice by index).
    const auto clean =
        prepared.inserters[b].realize_cached(rng, storage[b]);
    if (clean != nullptr) {
      circuits.push_back(clean.get());
      programs.push_back(prepared.clean_programs[b]);
    } else {
      circuits.push_back(&storage[b]);
      programs.push_back(nullptr);
    }
  }
  auto plans = plans_over_compact(*this, model_->architecture().num_qubits,
                                  readout_map, circuits);
  for (std::size_t b = 0; b < plans.size(); ++b) {
    plans[b].program = std::move(programs[b]);
  }
  return plans;
}

Tensor2D qnn_forward_noisy(const QnnModel& model, const Deployment& deployment,
                           const Tensor2D& inputs,
                           const QnnForwardOptions& pipeline,
                           const NoisyEvalOptions& eval_options,
                           QnnForwardCache* cache) {
  QNAT_CHECK(eval_options.trajectories > 0, "need at least one trajectory");
  QNAT_TRACE_SCOPE("eval.forward_noisy");
  const int nq = model.architecture().num_qubits;
  // Counter-based stream discipline: every (block, sample, trajectory)
  // derives its own child generator from the seed, so the runner is
  // thread-safe and the result does not depend on thread count or on the
  // order the engine visits samples.
  const Rng stream_base(eval_options.seed);
  const auto& circuits = deployment.compact_circuits();
  const auto& measure = deployment.compact_measure_wires();

  auto block_mode = [&](std::size_t b) {
    switch (eval_options.mode) {
      case NoiseEvalMode::ExactChannel:
        QNAT_CHECK(channel_simulation_feasible(circuits[b]),
                   "block too large for exact channel simulation");
        return NoiseEvalMode::ExactChannel;
      case NoiseEvalMode::Trajectories:
      case NoiseEvalMode::Shots:
        return eval_options.mode;
      case NoiseEvalMode::Auto:
        if (eval_options.shots_per_trajectory > 0) return NoiseEvalMode::Shots;
        return channel_simulation_feasible(circuits[b])
                   ? NoiseEvalMode::ExactChannel
                   : NoiseEvalMode::Trajectories;
    }
    return NoiseEvalMode::Trajectories;
  };

  // Scaled model for the stochastic paths (the exact path scales
  // internally via ChannelSimOptions::noise_scale).
  const NoiseModel scaled_noise =
      eval_options.noise_scale == 1.0
          ? deployment.compact_noise()
          : deployment.compact_noise().scaled(eval_options.noise_scale);
  const std::vector<real> flip01 = scaled_noise.readout_flip_probs_0to1();
  const std::vector<real> flip10 = scaled_noise.readout_flip_probs_1to0();

  static metrics::Counter exact_blocks = metrics::counter("eval.exact_blocks");
  static metrics::Counter trajectories = metrics::counter("eval.trajectories");

  const BlockRunner runner = [&](std::size_t b, std::size_t sample,
                                 const ParamVector& params, real* out) {
    const NoiseEvalMode mode = block_mode(b);
    std::fill(out, out + nq, 0.0);

    if (mode == NoiseEvalMode::ExactChannel) {
      exact_blocks.inc();
      ChannelSimOptions sim;
      sim.apply_readout = true;
      sim.noise_scale = eval_options.noise_scale;
      const std::vector<real> wires = channel_mean_expectations(
          circuits[b], params, deployment.compact_noise(), sim);
      for (int q = 0; q < nq; ++q) {
        out[q] = wires[static_cast<std::size_t>(
            measure[b][static_cast<std::size_t>(q)])];
      }
      return;
    }

    // Trajectories are independent: each draws from its own child stream
    // and writes its own slot, then the mean reduces in trajectory order
    // (bit-identical for any thread count). When the batch already fills
    // the pool this inner region runs inline on the worker.
    const Rng sample_base = stream_base.child(b).child(sample);
    const auto num_traj = static_cast<std::size_t>(eval_options.trajectories);
    trajectories.add(num_traj);
    std::vector<std::vector<real>> per_traj(num_traj);
    if (mode == NoiseEvalMode::Shots) {
      QNAT_CHECK(eval_options.shots_per_trajectory > 0,
                 "shot mode requires shots_per_trajectory > 0");
    }
    parallel_for(num_traj, [&](std::size_t t) {
      Rng traj_rng = sample_base.child(t);
      const Circuit noisy =
          insert_error_gates(circuits[b], scaled_noise, 1.0, traj_rng);
      // Each trajectory is a one-off circuit (fresh error gates); compile
      // it fused but uncached so trajectories never churn the shared
      // program cache that the hot (repeated) circuits live in.
      const CompiledProgram program = compile_program(noisy);
      if (mode == NoiseEvalMode::Shots) {
        per_traj[t] = measure_expectations_shots(
            program, params, traj_rng, eval_options.shots_per_trajectory,
            flip01, flip10);
      } else {
        per_traj[t] = measure_expectations(program, params);
      }
    });
    for (const auto& wire_exp : per_traj) {
      for (int q = 0; q < nq; ++q) {
        const auto qi = static_cast<std::size_t>(q);
        out[q] += wire_exp[static_cast<std::size_t>(measure[b][qi])];
      }
    }
    for (int q = 0; q < nq; ++q) out[q] /= eval_options.trajectories;
    if (mode != NoiseEvalMode::Shots) {
      // Exact affine readout map on the averaged expectations.
      for (int q = 0; q < nq; ++q) {
        const auto qi = static_cast<std::size_t>(q);
        const ReadoutError e =
            scaled_noise.readout_error(measure[b][qi]);
        out[q] = e.slope() * out[q] + e.intercept();
      }
    }
  };
  return qnn_forward_with_runner(model, inputs, runner, pipeline, cache);
}

Tensor2D qnn_forward_ideal(const QnnModel& model, const Tensor2D& inputs,
                           const QnnForwardOptions& pipeline,
                           QnnForwardCache* cache) {
  return qnn_forward(model, inputs, make_logical_plans(model), pipeline,
                     cache);
}

real noisy_accuracy(const QnnModel& model, const Deployment& deployment,
                    const Dataset& dataset, const QnnForwardOptions& pipeline,
                    const NoisyEvalOptions& eval_options) {
  const Tensor2D logits = qnn_forward_noisy(model, deployment,
                                            dataset.features, pipeline,
                                            eval_options);
  return accuracy(logits, dataset.labels);
}

real ideal_accuracy(const QnnModel& model, const Dataset& dataset,
                    const QnnForwardOptions& pipeline) {
  const Tensor2D logits =
      qnn_forward_ideal(model, dataset.features, pipeline);
  return accuracy(logits, dataset.labels);
}

BlockStats profile_block_stats(const QnnModel& model,
                               const Deployment& deployment,
                               const Tensor2D& inputs,
                               const QnnForwardOptions& pipeline,
                               const NoisyEvalOptions& eval_options) {
  QnnForwardCache cache;
  qnn_forward_noisy(model, deployment, inputs, pipeline, eval_options,
                    &cache);
  BlockStats stats;
  // Raw outcomes exist for every block; statistics are only meaningful for
  // processed (normalized) blocks, which are all but the last unless
  // apply_to_last.
  const std::size_t processed = cache.normalized.size();
  for (std::size_t b = 0; b < processed; ++b) {
    stats.mean.push_back(cache.raw[b].col_mean());
    stats.stddev.push_back(cache.raw[b].col_std(kNormEpsilon));
  }
  return stats;
}

}  // namespace qnat
