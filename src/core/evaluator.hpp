// Device deployment and noisy inference.
//
// `Deployment` binds a QNN model to a device noise model: every block
// circuit is transpiled (basis decomposition, layout, routing) and the
// final layout tells the measurement layer which physical wire carries
// each logical qubit.
//
// Noisy inference simulates what the paper measures on real IBMQ machines:
// stochastic Pauli-trajectory sampling (each trajectory = the compiled
// circuit with error gates freshly sampled from the *unscaled* device
// model) averaged per sample, plus the readout confusion map — either as
// an exact affine map on expectations (expectation mode) or as per-shot
// bit flips (shot mode, 8192 shots in the paper). The classical pipeline
// (normalization/quantization) is shared verbatim with training via
// qnn_forward_with_runner.
#pragma once

#include <memory>

#include "compile/transpiler.hpp"
#include "core/qnn.hpp"
#include "data/dataset.hpp"
#include "noise/error_inserter.hpp"
#include "noise/noise_model.hpp"

namespace qnat {

class Deployment {
 public:
  Deployment(const QnnModel& model, NoiseModel noise_model,
             int optimization_level = 2);

  const NoiseModel& noise_model() const { return noise_; }
  int optimization_level() const { return optimization_level_; }
  const std::vector<TranspileResult>& compiled_blocks() const {
    return compiled_;
  }

  /// Compact view: the union of device wires the compiled blocks actually
  /// touch, so simulation never pays for idle ancilla wires (a 4-qubit
  /// model routed on a 15-qubit device runs on a 4..6-wire circuit).
  /// compact_wires()[i] is the physical qubit behind compact wire i;
  /// compact_noise() is the device model restricted to those wires.
  const std::vector<QubitIndex>& compact_wires() const {
    return compact_wires_;
  }
  const NoiseModel& compact_noise() const { return compact_noise_; }
  const std::vector<Circuit>& compact_circuits() const {
    return compact_circuits_;
  }
  /// Per block: logical qubit q is measured on compact wire
  /// compact_measure_wires()[block][q].
  const std::vector<std::vector<QubitIndex>>& compact_measure_wires() const {
    return compact_measure_wires_;
  }

  /// Plans running the compact compiled circuits without gate errors.
  /// With `readout_map`, the per-qubit readout confusion map is applied
  /// to the measured expectations (training-time readout injection).
  std::vector<BlockExecutionPlan> compiled_plans(bool readout_map) const;

  /// Per-step noise-injected plans: samples Pauli error gates into copies
  /// of the compact circuits (stochastic channels scaled by the paper's
  /// noise factor T; deterministic coherent errors at full magnitude).
  /// The circuits are stored in `storage`, which must outlive the plans.
  std::vector<BlockExecutionPlan> injected_plans(
      double noise_factor, bool readout_map, Rng& rng,
      std::vector<Circuit>& storage) const;

  /// Per-block prepared insertion sites for the amortized injection path
  /// (the circuit walk and channel scaling run once instead of once per
  /// realization). Immutable and safe to share across worker threads.
  struct InjectionTemplate {
    std::vector<PreparedInserter> inserters;
    /// Per block: compiled program for the inserter's clean (zero
    /// stochastic insertions) realization. At the paper's noise factors
    /// most realizations are clean, so most plans skip both the circuit
    /// rebuild and the program-cache hash entirely.
    std::vector<std::shared_ptr<const CompiledProgram>> clean_programs;
    double noise_factor = 1.0;
  };

  /// Builds the template for `noise_factor` (one legacy-pass walk per
  /// block).
  std::shared_ptr<const InjectionTemplate> prepare_injection(
      double noise_factor) const;

  /// Fast-path equivalent of `injected_plans`: realizes each block's
  /// prepared sites, drawing the same RNG sequence as the legacy pass —
  /// for equal generator states the plans are byte-identical.
  std::vector<BlockExecutionPlan> injected_plans(
      const InjectionTemplate& prepared, bool readout_map, Rng& rng,
      std::vector<Circuit>& storage) const;

 private:
  const QnnModel* model_;
  NoiseModel noise_;
  int optimization_level_;
  std::vector<TranspileResult> compiled_;
  std::vector<QubitIndex> compact_wires_;
  NoiseModel compact_noise_;
  std::vector<Circuit> compact_circuits_;
  std::vector<std::vector<QubitIndex>> compact_measure_wires_;
};

/// How noisy inference evaluates each block.
enum class NoiseEvalMode {
  /// ExactChannel when the block fits a density matrix (<= 8 wires after
  /// compaction), otherwise Trajectories. Shots when shots_per_trajectory
  /// is set.
  Auto,
  /// Exact channel mean via density-matrix simulation (the infinite-shot
  /// limit; no Monte-Carlo error).
  ExactChannel,
  /// Stochastic Pauli-trajectory averaging on the statevector.
  Trajectories,
  /// Trajectories with finite-shot sampling + per-shot readout flips.
  Shots,
};

struct NoisyEvalOptions {
  NoiseEvalMode mode = NoiseEvalMode::Auto;
  /// Pauli trajectories averaged per sample per block (Trajectories/Shots
  /// modes).
  int trajectories = 16;
  /// Shots per trajectory in Shots mode (8192 in the paper).
  int shots_per_trajectory = 0;
  /// Scales the device noise model (calibration-drift studies, Table 11).
  double noise_scale = 1.0;
  std::uint64_t seed = 20220712;
};

/// Noisy forward pass of a whole dataset; returns logits. `pipeline`
/// controls normalization/quantization exactly as in training; `cache`
/// (optional) exposes raw/normalized outcomes for SNR metrics.
Tensor2D qnn_forward_noisy(const QnnModel& model, const Deployment& deployment,
                           const Tensor2D& inputs,
                           const QnnForwardOptions& pipeline,
                           const NoisyEvalOptions& eval_options,
                           QnnForwardCache* cache = nullptr);

/// Noise-free forward pass on the logical circuits; returns logits.
Tensor2D qnn_forward_ideal(const QnnModel& model, const Tensor2D& inputs,
                           const QnnForwardOptions& pipeline,
                           QnnForwardCache* cache = nullptr);

/// Test accuracy under device noise.
real noisy_accuracy(const QnnModel& model, const Deployment& deployment,
                    const Dataset& dataset, const QnnForwardOptions& pipeline,
                    const NoisyEvalOptions& eval_options);

/// Test accuracy without noise.
real ideal_accuracy(const QnnModel& model, const Dataset& dataset,
                    const QnnForwardOptions& pipeline);

/// Per-block mean/std of the *noisy raw* measurement outcomes on a
/// profiling set (appendix A.3.7: validation-set statistics reused to
/// normalize small test batches).
struct BlockStats {
  std::vector<std::vector<real>> mean;  // per processed block, per qubit
  std::vector<std::vector<real>> stddev;
};
BlockStats profile_block_stats(const QnnModel& model,
                               const Deployment& deployment,
                               const Tensor2D& inputs,
                               const QnnForwardOptions& pipeline,
                               const NoisyEvalOptions& eval_options);

}  // namespace qnat
