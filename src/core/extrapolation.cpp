#include "core/extrapolation.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace qnat {

LineFit fit_line(const std::vector<real>& xs, const std::vector<real>& ys) {
  QNAT_CHECK(xs.size() == ys.size() && xs.size() >= 2,
             "line fit needs at least two points");
  const auto n = static_cast<real>(xs.size());
  real sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const real denom = n * sxx - sx * sx;
  QNAT_CHECK(std::abs(denom) > 1e-12, "degenerate x values in line fit");
  LineFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  return fit;
}

std::vector<real> extrapolate_noise_free_std(
    const std::vector<real>& depths,
    const std::vector<std::vector<real>>& stds_per_depth) {
  QNAT_CHECK(depths.size() == stds_per_depth.size() && depths.size() >= 2,
             "need stds at two or more depths");
  const std::size_t nq = stds_per_depth.front().size();
  std::vector<real> out(nq);
  for (std::size_t q = 0; q < nq; ++q) {
    std::vector<real> ys;
    ys.reserve(depths.size());
    for (const auto& stds : stds_per_depth) {
      QNAT_CHECK(stds.size() == nq, "inconsistent qubit counts");
      ys.push_back(stds[q]);
    }
    const LineFit fit = fit_line(depths, ys);
    out[q] = std::max(fit.intercept, real{1e-4});
  }
  return out;
}

std::vector<real> extrapolate_noise_free_std_exponential(
    const std::vector<real>& depths,
    const std::vector<std::vector<real>>& stds_per_depth) {
  QNAT_CHECK(depths.size() == stds_per_depth.size() && depths.size() >= 2,
             "need stds at two or more depths");
  const std::size_t nq = stds_per_depth.front().size();
  std::vector<real> out(nq);
  for (std::size_t q = 0; q < nq; ++q) {
    std::vector<real> log_ys;
    log_ys.reserve(depths.size());
    for (const auto& stds : stds_per_depth) {
      QNAT_CHECK(stds.size() == nq, "inconsistent qubit counts");
      QNAT_CHECK(stds[q] > 0.0,
                 "exponential extrapolation requires positive stds");
      log_ys.push_back(std::log(stds[q]));
    }
    const LineFit fit = fit_line(depths, log_ys);
    out[q] = std::exp(fit.intercept);
  }
  return out;
}

QnnModel repeat_trainable_layers(const QnnModel& model, int times) {
  QNAT_CHECK(times >= 1, "repetition count must be >= 1");
  std::vector<QnnModel::Block> blocks;
  blocks.reserve(model.blocks().size());
  for (const auto& source : model.blocks()) {
    // The encoder prefix is the run of parameterized gates that only
    // reference input parameter slots; the first constant gate or the
    // first reference to a weight slot starts the trainable section.
    const auto& gates = source.circuit.gates();
    std::size_t split = gates.size();
    for (std::size_t g = 0; g < gates.size(); ++g) {
      bool is_encoder_gate = !gates[g].params.empty();
      for (const auto& expr : gates[g].params) {
        if (expr.is_constant()) {
          is_encoder_gate = false;
          break;
        }
        for (const auto& term : expr.terms) {
          if (term.id >= source.num_inputs) {
            is_encoder_gate = false;
            break;
          }
        }
        if (!is_encoder_gate) break;
      }
      if (!is_encoder_gate) {
        split = g;
        break;
      }
    }

    QnnModel::Block block;
    block.num_inputs = source.num_inputs;
    block.num_weights = source.num_weights;
    block.weight_offset = source.weight_offset;
    block.circuit =
        Circuit(source.circuit.num_qubits(), source.circuit.num_params());
    for (std::size_t g = 0; g < split; ++g) block.circuit.append(gates[g]);
    for (int rep = 0; rep < times; ++rep) {
      for (std::size_t g = split; g < gates.size(); ++g) {
        block.circuit.append(gates[g]);
      }
    }
    blocks.push_back(std::move(block));
  }
  QnnModel repeated =
      QnnModel::with_custom_blocks(model.architecture(), std::move(blocks));
  repeated.weights() = model.weights();
  return repeated;
}

}  // namespace qnat
