// Zero-noise extrapolation compatibility layer (paper Table 4).
//
// The paper's combination: train a QNN, repeat its trainable layers to
// depths L, 2L, 3L, 4L, measure the per-qubit standard deviation of noisy
// outcomes at each depth, linearly extrapolate to depth 0 to estimate the
// noise-free std, rescale outcomes to that std, then apply
// post-measurement normalization. This header provides the layer
// repetition and the least-squares extrapolation primitives; the bench
// harness composes them.
#pragma once

#include <vector>

#include "core/qnn.hpp"

namespace qnat {

/// Ordinary least-squares line fit y = slope * x + intercept.
struct LineFit {
  real slope = 0.0;
  real intercept = 0.0;
};
LineFit fit_line(const std::vector<real>& xs, const std::vector<real>& ys);

/// Extrapolates per-qubit stds measured at the given depths down to depth
/// 0 with a *linear* fit (the paper's formulation). stds_per_depth[d][q]
/// is qubit q's std at depths[d]. Results are clamped to be positive.
std::vector<real> extrapolate_noise_free_std(
    const std::vector<real>& depths,
    const std::vector<std::vector<real>>& stds_per_depth);

/// Exponential-decay variant: Pauli channels attenuate expectations by a
/// per-layer factor, so std(depth) ≈ std0 · γ^depth; fitting log(std)
/// linearly in depth and exponentiating the intercept recovers std0 —
/// more accurate than the linear fit when folding amplifies noise
/// severalfold. Requires strictly positive stds.
std::vector<real> extrapolate_noise_free_std_exponential(
    const std::vector<real>& depths,
    const std::vector<std::vector<real>>& stds_per_depth);

/// Builds a copy of `model` whose every block has its *trainable* section
/// repeated `times` times (the encoder is kept once). The repeated
/// sections share the original weights, so the returned model reuses the
/// source model's weight vector unchanged — this is the circuit-folding
/// trick extrapolation uses to amplify noise without retraining.
QnnModel repeat_trainable_layers(const QnnModel& model, int times);

}  // namespace qnat
