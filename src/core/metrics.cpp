#include "core/metrics.hpp"

#include <limits>

#include "common/error.hpp"
#include "nn/losses.hpp"

namespace qnat {

real snr(const Tensor2D& reference, const Tensor2D& noisy) {
  QNAT_CHECK(reference.rows() == noisy.rows() &&
                 reference.cols() == noisy.cols(),
             "SNR shape mismatch");
  real signal = 0.0;
  real noise = 0.0;
  for (std::size_t i = 0; i < reference.data().size(); ++i) {
    signal += reference.data()[i] * reference.data()[i];
    const real d = reference.data()[i] - noisy.data()[i];
    noise += d * d;
  }
  if (noise == 0.0) return std::numeric_limits<real>::infinity();
  return signal / noise;
}

std::vector<real> snr_per_column(const Tensor2D& reference,
                                 const Tensor2D& noisy) {
  QNAT_CHECK(reference.rows() == noisy.rows() &&
                 reference.cols() == noisy.cols(),
             "SNR shape mismatch");
  std::vector<real> out(reference.cols());
  for (std::size_t c = 0; c < reference.cols(); ++c) {
    real signal = 0.0;
    real noise = 0.0;
    for (std::size_t r = 0; r < reference.rows(); ++r) {
      signal += reference(r, c) * reference(r, c);
      const real d = reference(r, c) - noisy(r, c);
      noise += d * d;
    }
    out[c] = noise == 0.0 ? std::numeric_limits<real>::infinity()
                          : signal / noise;
  }
  return out;
}

Tensor2D error_map(const Tensor2D& reference, const Tensor2D& noisy) {
  return reference - noisy;
}

ClassificationReport classification_report(const Tensor2D& logits,
                                           const std::vector<int>& labels,
                                           int num_classes) {
  QNAT_CHECK(num_classes >= 2, "need at least two classes");
  QNAT_CHECK(labels.size() == logits.rows(), "label count mismatch");
  QNAT_CHECK(logits.cols() >= static_cast<std::size_t>(num_classes),
             "logits narrower than class count");
  ClassificationReport report;
  const auto nc = static_cast<std::size_t>(num_classes);
  report.confusion = Tensor2D(nc, nc);

  const std::vector<int> predictions = argmax_rows(logits);
  std::size_t correct = 0;
  for (std::size_t r = 0; r < labels.size(); ++r) {
    const int truth = labels[r];
    QNAT_CHECK(truth >= 0 && truth < num_classes, "label out of range");
    const int predicted = predictions[r];
    report.confusion(static_cast<std::size_t>(truth),
                     static_cast<std::size_t>(predicted)) += 1.0;
    if (predicted == truth) ++correct;
  }
  report.accuracy =
      static_cast<real>(correct) / static_cast<real>(labels.size());

  report.precision.resize(nc);
  report.recall.resize(nc);
  report.f1.resize(nc);
  for (std::size_t c = 0; c < nc; ++c) {
    real predicted_total = 0.0;
    real true_total = 0.0;
    for (std::size_t o = 0; o < nc; ++o) {
      predicted_total += report.confusion(o, c);
      true_total += report.confusion(c, o);
    }
    const real tp = report.confusion(c, c);
    report.precision[c] = predicted_total > 0.0 ? tp / predicted_total : 0.0;
    report.recall[c] = true_total > 0.0 ? tp / true_total : 0.0;
    const real denom = report.precision[c] + report.recall[c];
    report.f1[c] =
        denom > 0.0 ? 2.0 * report.precision[c] * report.recall[c] / denom
                    : 0.0;
  }
  return report;
}

}  // namespace qnat
