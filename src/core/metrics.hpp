// Evaluation metrics: the paper's signal-to-noise ratio
// SNR = ||A||² / ||A - Ã||² (inverse relative matrix distance), per-qubit
// SNR, MSE error maps (Fig. 6), and classification accuracy helpers.
#pragma once

#include <vector>

#include "nn/tensor.hpp"

namespace qnat {

/// SNR between a reference (noise-free) matrix and its noisy counterpart.
real snr(const Tensor2D& reference, const Tensor2D& noisy);

/// Per-column (per-qubit) SNR.
std::vector<real> snr_per_column(const Tensor2D& reference,
                                 const Tensor2D& noisy);

/// Elementwise error map reference - noisy (Fig. 6's matrices).
Tensor2D error_map(const Tensor2D& reference, const Tensor2D& noisy);

/// Per-class evaluation summary.
struct ClassificationReport {
  /// confusion(true_class, predicted_class) = count.
  Tensor2D confusion;
  std::vector<real> precision;  // per class; 0 when the class is never predicted
  std::vector<real> recall;     // per class; 0 when the class has no samples
  std::vector<real> f1;
  real accuracy = 0.0;
};

/// Builds the confusion matrix and per-class precision/recall/F1 from
/// row-argmax predictions over `logits`.
ClassificationReport classification_report(const Tensor2D& logits,
                                           const std::vector<int>& labels,
                                           int num_classes);

}  // namespace qnat
