#include "core/noise_injector.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace qnat {

std::string injection_method_name(InjectionMethod method) {
  switch (method) {
    case InjectionMethod::None: return "none";
    case InjectionMethod::GateInsertion: return "gate-insertion";
    case InjectionMethod::MeasurementPerturbation: return "meas-perturb";
    case InjectionMethod::AnglePerturbation: return "angle-perturb";
  }
  return "?";
}

NoiseInjector::NoiseInjector(InjectionConfig config,
                             const Deployment* deployment)
    : config_(config), deployment_(deployment) {
  if (config_.method == InjectionMethod::GateInsertion) {
    QNAT_CHECK(deployment_ != nullptr,
               "gate insertion requires a device deployment");
    // Prepared sites amortize the per-realization circuit walk across
    // every step of a training run (used by step_plans_range).
    prepared_ = deployment_->prepare_injection(config_.noise_factor);
  }
}

namespace {

/// Copies the model's logical circuits with N(0, sigma) added to the
/// offset of every parameterized gate angle.
std::vector<Circuit> perturb_angles(const QnnModel& model, real sigma,
                                    Rng& rng) {
  std::vector<Circuit> out;
  out.reserve(model.blocks().size());
  for (const auto& block : model.blocks()) {
    Circuit c = block.circuit;
    for (std::size_t g = 0; g < c.size(); ++g) {
      Gate& gate = c.mutable_gate(g);
      for (auto& expr : gate.params) {
        if (!expr.is_constant()) {
          expr.offset += rng.gaussian(0.0, sigma);
        }
      }
    }
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace

StepPlans NoiseInjector::step_plans(const QnnModel& model,
                                    std::size_t batch_size, Rng& rng,
                                    std::vector<Circuit>& storage) const {
  QNAT_CHECK(batch_size >= 1, "step plans need a positive batch size");
  const std::size_t realizations =
      config_.per_sample ? batch_size : std::size_t{1};
  const std::size_t num_blocks = model.blocks().size();

  switch (config_.method) {
    case InjectionMethod::GateInsertion: {
      // Realizations sample independently from per-realization child
      // streams (forking once so successive steps draw fresh noise), then
      // splice into `storage` in realization order so plan pointers and
      // results are identical at any thread count.
      const Rng base = rng.fork();
      std::vector<std::vector<BlockExecutionPlan>> plan_sets(realizations);
      std::vector<std::vector<Circuit>> realized(realizations);
      parallel_for(realizations, [&](std::size_t s) {
        Rng realization_rng = base.child(s);
        plan_sets[s] = deployment_->injected_plans(
            config_.noise_factor, config_.readout, realization_rng,
            realized[s]);
      });
      storage.clear();
      storage.reserve(realizations * num_blocks);
      StepPlans plans;
      for (std::size_t s = 0; s < realizations; ++s) {
        for (std::size_t b = 0; b < num_blocks; ++b) {
          storage.push_back(std::move(realized[s][b]));
          plan_sets[s][b].circuit = &storage.back();
        }
        plans.per_sample.push_back(std::move(plan_sets[s]));
      }
      return plans;
    }
    case InjectionMethod::AnglePerturbation: {
      const Rng base = rng.fork();
      std::vector<std::vector<Circuit>> realized(realizations);
      parallel_for(realizations, [&](std::size_t s) {
        Rng realization_rng = base.child(s);
        realized[s] = perturb_angles(model, config_.angle_std,
                                     realization_rng);
      });
      storage.clear();
      storage.reserve(realizations * num_blocks);
      StepPlans plans;
      for (std::size_t s = 0; s < realizations; ++s) {
        const std::size_t first = storage.size();
        for (auto& c : realized[s]) storage.push_back(std::move(c));
        std::vector<BlockExecutionPlan> plan_set = make_logical_plans(model);
        for (std::size_t b = 0; b < num_blocks; ++b) {
          plan_set[b].circuit = &storage[first + b];
        }
        plans.per_sample.push_back(std::move(plan_set));
      }
      return plans;
    }
    case InjectionMethod::None:
    case InjectionMethod::MeasurementPerturbation:
      storage.clear();
      return StepPlans::shared(make_logical_plans(model));
  }
  throw Error("unknown injection method");
}

StepPlans NoiseInjector::step_plans_range(const QnnModel& model,
                                          std::size_t range_begin,
                                          std::size_t range_end, Rng rng,
                                          std::vector<Circuit>& storage) const {
  QNAT_CHECK(range_end > range_begin, "step plan range must be non-empty");
  const std::size_t count = range_end - range_begin;
  const std::size_t num_blocks = model.blocks().size();

  switch (config_.method) {
    case InjectionMethod::GateInsertion: {
      // Same stream discipline as step_plans: one fork, then one child
      // per realization — except the child index is the sample's global
      // position in the effective batch, so the realization a sample
      // sees is invariant under re-partitioning into micro-batches.
      // Without per-sample injection every range rebuilds the step's
      // single shared realization from child(0).
      const Rng base = rng.fork();
      const std::size_t realizations = config_.per_sample ? count : 1;
      std::vector<std::vector<BlockExecutionPlan>> plan_sets(realizations);
      std::vector<std::vector<Circuit>> realized(realizations);
      parallel_for(realizations, [&](std::size_t s) {
        Rng realization_rng =
            base.child(config_.per_sample ? range_begin + s : 0);
        plan_sets[s] = deployment_->injected_plans(
            *prepared_, config_.readout, realization_rng, realized[s]);
      });
      storage.clear();
      storage.reserve(realizations * num_blocks);
      StepPlans plans;
      for (std::size_t s = 0; s < realizations; ++s) {
        for (std::size_t b = 0; b < num_blocks; ++b) {
          // Plans with a precompiled program reference the injection
          // template's shared clean circuit (owned by prepared_, which
          // outlives the step); only dirty realizations need splicing
          // into the step's storage.
          if (plan_sets[s][b].program != nullptr) continue;
          storage.push_back(std::move(realized[s][b]));
          plan_sets[s][b].circuit = &storage.back();
        }
        plans.per_sample.push_back(std::move(plan_sets[s]));
      }
      return plans;
    }
    case InjectionMethod::AnglePerturbation: {
      const Rng base = rng.fork();
      const std::size_t realizations = config_.per_sample ? count : 1;
      std::vector<std::vector<Circuit>> realized(realizations);
      parallel_for(realizations, [&](std::size_t s) {
        Rng realization_rng =
            base.child(config_.per_sample ? range_begin + s : 0);
        realized[s] =
            perturb_angles(model, config_.angle_std, realization_rng);
      });
      storage.clear();
      storage.reserve(realizations * num_blocks);
      StepPlans plans;
      for (std::size_t s = 0; s < realizations; ++s) {
        const std::size_t first = storage.size();
        for (auto& c : realized[s]) storage.push_back(std::move(c));
        std::vector<BlockExecutionPlan> plan_set = make_logical_plans(model);
        for (std::size_t b = 0; b < num_blocks; ++b) {
          plan_set[b].circuit = &storage[first + b];
        }
        plans.per_sample.push_back(std::move(plan_set));
      }
      return plans;
    }
    case InjectionMethod::None:
    case InjectionMethod::MeasurementPerturbation:
      storage.clear();
      return StepPlans::shared(make_logical_plans(model));
  }
  throw Error("unknown injection method");
}

void NoiseInjector::configure_forward(QnnForwardOptions& options,
                                      Rng& rng) const {
  if (config_.method == InjectionMethod::MeasurementPerturbation) {
    options.measurement_perturbation = true;
    options.perturb_mean = config_.perturb_mean;
    options.perturb_std = config_.perturb_std;
    options.rng = &rng;
  }
}

std::pair<real, real> benchmark_error_stats(
    const QnnModel& model, const Deployment& deployment,
    const Tensor2D& valid_inputs, const QnnForwardOptions& pipeline,
    const NoisyEvalOptions& eval_options) {
  QnnForwardCache ideal_cache;
  QnnForwardCache noisy_cache;
  qnn_forward_ideal(model, valid_inputs, pipeline, &ideal_cache);
  qnn_forward_noisy(model, deployment, valid_inputs, pipeline, eval_options,
                    &noisy_cache);
  // Error over normalized outcomes of every processed block, plus the raw
  // final outputs (which feed the classifier directly).
  std::vector<real> errors;
  for (std::size_t b = 0; b < ideal_cache.normalized.size(); ++b) {
    const auto& a = ideal_cache.normalized[b].data();
    const auto& n = noisy_cache.normalized[b].data();
    for (std::size_t i = 0; i < a.size(); ++i) errors.push_back(n[i] - a[i]);
  }
  {
    const auto& a = ideal_cache.final_outputs.data();
    const auto& n = noisy_cache.final_outputs.data();
    for (std::size_t i = 0; i < a.size(); ++i) errors.push_back(n[i] - a[i]);
  }
  QNAT_CHECK(!errors.empty(), "no outcomes to benchmark");
  real mean = 0.0;
  for (const real e : errors) mean += e;
  mean /= static_cast<real>(errors.size());
  real var = 0.0;
  for (const real e : errors) var += (e - mean) * (e - mean);
  var /= static_cast<real>(errors.size());
  return {mean, std::sqrt(var)};
}

real calibrate_angle_std(const QnnModel& model, const Tensor2D& valid_inputs,
                         const QnnForwardOptions& pipeline,
                         real target_outcome_std, Rng& rng,
                         const std::vector<real>& candidates) {
  QNAT_CHECK(!candidates.empty(), "no candidate sigmas");
  QnnForwardCache ideal_cache;
  qnn_forward_ideal(model, valid_inputs, pipeline, &ideal_cache);

  real best_sigma = candidates.front();
  real best_gap = std::numeric_limits<real>::infinity();
  for (const real sigma : candidates) {
    InjectionConfig config;
    config.method = InjectionMethod::AnglePerturbation;
    config.angle_std = sigma;
    config.per_sample = false;  // one realization suffices for calibration
    const NoiseInjector injector(config, nullptr);
    std::vector<Circuit> storage;
    const StepPlans plans = injector.step_plans(model, 1, rng, storage);
    QnnForwardCache perturbed_cache;
    qnn_forward(model, valid_inputs, plans.per_sample[0], pipeline,
                &perturbed_cache);
    const auto& a = ideal_cache.final_outputs.data();
    const auto& p = perturbed_cache.final_outputs.data();
    real var = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      var += (p[i] - a[i]) * (p[i] - a[i]);
    }
    const real induced = std::sqrt(var / static_cast<real>(a.size()));
    const real gap = std::abs(induced - target_outcome_std);
    if (gap < best_gap) {
      best_gap = gap;
      best_sigma = sigma;
    }
  }
  return best_sigma;
}

}  // namespace qnat
