// Training-time noise injection (paper §3.2, Fig. 5).
//
// Three injection methods are implemented, matching the paper's ablation
// (Fig. 7):
//  - GateInsertion (the paper's main method): per training step, Pauli
//    error gates are sampled from the device noise model (scaled by the
//    noise factor T) and inserted into the *transpiled* block circuits;
//    readout errors are injected as exact affine maps on expectations.
//  - MeasurementPerturbation: Gaussian noise N(mu_err, sigma_err²) added
//    to the normalized measurement outcomes, with statistics benchmarked
//    from noisy-vs-ideal validation runs.
//  - AnglePerturbation: Gaussian noise on every rotation angle of the
//    logical circuits, with sigma calibrated so the induced outcome
//    perturbation matches the benchmarked noise magnitude.
#pragma once

#include "core/evaluator.hpp"
#include "core/qnn.hpp"

namespace qnat {

enum class InjectionMethod {
  None,
  GateInsertion,
  MeasurementPerturbation,
  AnglePerturbation,
};

std::string injection_method_name(InjectionMethod method);

struct InjectionConfig {
  InjectionMethod method = InjectionMethod::None;
  /// The paper's noise factor T (scales Pauli probabilities), typically
  /// 0.1–1.5.
  double noise_factor = 1.0;
  /// Inject readout errors (gate-insertion mode).
  bool readout = true;
  /// Sample an independent noise realization per batch sample (default)
  /// instead of one shared realization per training step. The paper's
  /// TorchQuantum implementation shares one realization per step over the
  /// batched statevector; per-sample realizations average injection noise
  /// within the batch, which is what makes short CPU training runs
  /// converge. Set false for the paper's exact semantics.
  bool per_sample = true;
  /// Gaussian statistics for MeasurementPerturbation.
  real perturb_mean = 0.0;
  real perturb_std = 0.05;
  /// Rotation-angle sigma for AnglePerturbation.
  real angle_std = 0.05;
};

/// Produces per-step execution plans and forward-option tweaks for the
/// configured injection method.
class NoiseInjector {
 public:
  /// `deployment` is required for GateInsertion (it owns the transpiled
  /// circuits and the device noise model) and ignored otherwise; it must
  /// outlive the injector.
  NoiseInjector(InjectionConfig config, const Deployment* deployment);

  const InjectionConfig& config() const { return config_; }

  /// Builds this step's execution plans for a batch of `batch_size`
  /// samples. Freshly-sampled circuits (error gates or perturbed angles)
  /// are stored in `storage`, which must stay alive through the step's
  /// forward and backward passes. With `per_sample` injection the result
  /// carries one plan set per sample; otherwise a single shared set.
  StepPlans step_plans(const QnnModel& model, std::size_t batch_size,
                       Rng& rng, std::vector<Circuit>& storage) const;

  /// Plans for samples [range_begin, range_end) of a (possibly larger)
  /// effective batch — the data-parallel trainer's per-micro-batch entry
  /// point. Realization streams are keyed by the *global* sample index
  /// (`base.child(s)` off one fork of `rng`), so the circuits a sample
  /// sees depend only on (step rng, sample position), never on how the
  /// effective batch is partitioned into micro-batches or how many
  /// workers run them. Calling with the full range [0, batch) draws
  /// exactly the streams `step_plans` draws. GateInsertion realizations
  /// run through prepared insertion sites (built once at construction)
  /// instead of re-walking the transpiled circuits every step.
  StepPlans step_plans_range(const QnnModel& model, std::size_t range_begin,
                             std::size_t range_end, Rng rng,
                             std::vector<Circuit>& storage) const;

  /// Enables measurement perturbation in the forward options when the
  /// method calls for it.
  void configure_forward(QnnForwardOptions& options, Rng& rng) const;

 private:
  InjectionConfig config_;
  const Deployment* deployment_;
  /// Prepared per-block insertion sites (GateInsertion only).
  std::shared_ptr<const Deployment::InjectionTemplate> prepared_;
};

/// Benchmarks the error distribution between noisy and ideal *normalized*
/// outcomes on a validation set; returns (mean, std) of the elementwise
/// error — the statistics the paper feeds to direct perturbation.
std::pair<real, real> benchmark_error_stats(
    const QnnModel& model, const Deployment& deployment,
    const Tensor2D& valid_inputs, const QnnForwardOptions& pipeline,
    const NoisyEvalOptions& eval_options);

/// Calibrates the rotation-angle sigma so that angle perturbation induces
/// an outcome deviation with std closest to `target_outcome_std`
/// (coarse grid search over `candidates`).
real calibrate_angle_std(const QnnModel& model, const Tensor2D& valid_inputs,
                         const QnnForwardOptions& pipeline,
                         real target_outcome_std, Rng& rng,
                         const std::vector<real>& candidates = {
                             0.01, 0.02, 0.05, 0.1, 0.2, 0.4});

}  // namespace qnat
