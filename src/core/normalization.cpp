#include "core/normalization.hpp"

#include <cmath>

#include "common/error.hpp"

namespace qnat {

Tensor2D normalize_batch(const Tensor2D& outcomes, NormCache* cache) {
  QNAT_CHECK(outcomes.rows() >= 2,
             "batch normalization needs at least 2 samples");
  const std::vector<real> mean = outcomes.col_mean();
  const std::vector<real> stddev = outcomes.col_std(kNormEpsilon);
  Tensor2D normalized(outcomes.rows(), outcomes.cols());
  for (std::size_t r = 0; r < outcomes.rows(); ++r) {
    for (std::size_t c = 0; c < outcomes.cols(); ++c) {
      normalized(r, c) = (outcomes(r, c) - mean[c]) / stddev[c];
    }
  }
  if (cache != nullptr) {
    cache->mean = mean;
    cache->std = stddev;
    cache->normalized = normalized;
  }
  return normalized;
}

Tensor2D normalize_batch_backward(const Tensor2D& grad_normalized,
                                  const NormCache& cache) {
  const Tensor2D& xhat = cache.normalized;
  QNAT_CHECK(grad_normalized.rows() == xhat.rows() &&
                 grad_normalized.cols() == xhat.cols(),
             "gradient shape mismatch");
  const auto m = static_cast<real>(xhat.rows());
  Tensor2D grad(xhat.rows(), xhat.cols());
  for (std::size_t c = 0; c < xhat.cols(); ++c) {
    real sum_g = 0.0;
    real sum_gx = 0.0;
    for (std::size_t r = 0; r < xhat.rows(); ++r) {
      sum_g += grad_normalized(r, c);
      sum_gx += grad_normalized(r, c) * xhat(r, c);
    }
    const real inv_std = 1.0 / cache.std[c];
    for (std::size_t r = 0; r < xhat.rows(); ++r) {
      grad(r, c) = inv_std * (grad_normalized(r, c) - sum_g / m -
                              xhat(r, c) * sum_gx / m);
    }
  }
  return grad;
}

Tensor2D normalize_with_stats(const Tensor2D& outcomes,
                              const std::vector<real>& mean,
                              const std::vector<real>& stddev) {
  QNAT_CHECK(mean.size() == outcomes.cols() && stddev.size() == outcomes.cols(),
             "statistics dimension mismatch");
  Tensor2D out(outcomes.rows(), outcomes.cols());
  for (std::size_t r = 0; r < outcomes.rows(); ++r) {
    for (std::size_t c = 0; c < outcomes.cols(); ++c) {
      QNAT_CHECK(stddev[c] > 0.0, "non-positive profiled std");
      out(r, c) = (outcomes(r, c) - mean[c]) / stddev[c];
    }
  }
  return out;
}

}  // namespace qnat
