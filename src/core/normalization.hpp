// Post-measurement normalization (paper §3.1).
//
// For each qubit, measurement outcomes are normalized across the batch to
// zero mean and unit variance, during both training and inference. By
// Theorem 3.1, quantum noise acts on expectations as y → γy + β; batch
// normalization cancels both γ and the batch-mean shift β, which is why
// the same statistics-free transform aligns noisy and noise-free feature
// distributions. Unlike BatchNorm there are no trainable affine
// parameters, and inference uses the *test batch's own* statistics by
// default; profiled statistics (e.g. from the validation set, appendix
// A.3.7) are supported for small deployment batches.
#pragma once

#include <vector>

#include "nn/tensor.hpp"

namespace qnat {

/// Saved forward state needed by the backward pass.
struct NormCache {
  std::vector<real> mean;
  std::vector<real> std;
  Tensor2D normalized;  // x̂, reused by the backward formula
};

inline constexpr real kNormEpsilon = 1e-8;

/// Batch normalization per column. Requires at least 2 rows (a singleton
/// batch has no usable statistics).
Tensor2D normalize_batch(const Tensor2D& outcomes, NormCache* cache = nullptr);

/// Backward: given dL/dx̂ and the forward cache, returns dL/dx. Accounts
/// for the dependence of batch statistics on every element.
Tensor2D normalize_batch_backward(const Tensor2D& grad_normalized,
                                  const NormCache& cache);

/// Normalization with externally-profiled statistics (no batch coupling;
/// backward is a plain 1/std scale). Used when the deployment batch is
/// too small for reliable statistics (appendix A.3.7).
Tensor2D normalize_with_stats(const Tensor2D& outcomes,
                              const std::vector<real>& mean,
                              const std::vector<real>& stddev);

}  // namespace qnat
