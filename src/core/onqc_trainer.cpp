#include "core/onqc_trainer.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "nn/losses.hpp"
#include "nn/reduction.hpp"
#include "nn/scheduler.hpp"
#include "noise/error_inserter.hpp"
#include "qsim/execution.hpp"

namespace qnat {

namespace {

ParamVector bind_sample(const Dataset& data, std::size_t row,
                 const ParamVector& weights) {
  ParamVector params = data.features.row(row);
  params.insert(params.end(), weights.begin(), weights.end());
  return params;
}

Tensor2D logits_row(const std::vector<real>& expectations, int num_classes) {
  Tensor2D logits(1, static_cast<std::size_t>(num_classes));
  for (int c = 0; c < num_classes; ++c) {
    logits(0, static_cast<std::size_t>(c)) =
        expectations[static_cast<std::size_t>(c)];
  }
  return logits;
}

}  // namespace

OnDeviceTrainResult train_on_device(const Circuit& circuit, int num_inputs,
                                    const Dataset& train,
                                    const CircuitExecutor& executor,
                                    ParamVector& weights,
                                    const OnDeviceTrainConfig& config) {
  QNAT_CHECK(config.epochs > 0, "need at least one epoch");
  QNAT_CHECK(num_inputs >= 0 && num_inputs <= circuit.num_params(),
             "invalid input slot count");
  QNAT_CHECK(train.feature_dim() == static_cast<std::size_t>(num_inputs),
             "dataset feature width does not match circuit inputs");
  QNAT_CHECK(train.num_classes >= 2 &&
                 train.num_classes <= circuit.num_qubits(),
             "need one measured wire per class");
  const auto num_weights =
      static_cast<std::size_t>(circuit.num_params() - num_inputs);
  QNAT_CHECK(weights.size() == num_weights, "weight vector size mismatch");

  Rng rng(config.seed);
  for (auto& w : weights) w = rng.uniform(-kPi, kPi);

  Adam adam(num_weights, config.adam);
  const WarmupCosineSchedule schedule(
      std::max(1L, static_cast<long>(config.warmup_fraction * config.epochs)),
      config.epochs);

  OnDeviceTrainResult result;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    // Per-sample forward + parameter-shift sweeps are independent; fan
    // them out into per-sample slots and reduce serially in sample order
    // so the epoch gradient is bit-identical at any thread count. (The
    // shift-level parallelism inside parameter_shift_gradient runs inline
    // once the samples already fill the pool.)
    std::vector<real> sample_loss(train.size(), 0.0);
    std::vector<ParamVector> sample_grad(train.size());
    parallel_for(train.size(), [&](std::size_t r) {
      const ParamVector params = bind_sample(train, r, weights);
      const auto expectations = executor(circuit, params);
      const Tensor2D logits = logits_row(expectations, train.num_classes);
      const std::vector<int> label{train.labels[r]};
      sample_loss[r] = cross_entropy_loss(logits, label);
      const Tensor2D grad_logits = cross_entropy_grad(logits, label);
      std::vector<real> cotangent(
          static_cast<std::size_t>(circuit.num_qubits()), 0.0);
      for (int c = 0; c < train.num_classes; ++c) {
        cotangent[static_cast<std::size_t>(c)] =
            grad_logits(0, static_cast<std::size_t>(c));
      }
      sample_grad[r] =
          parameter_shift_gradient(circuit, params, cotangent, executor);
    });
    result.device_evaluations +=
        static_cast<long>(train.size()) *
        (1 + parameter_shift_num_evaluations(circuit));
    // Strip each sample's encoder-input slots, then fold losses and
    // weight gradients with the shared deterministic pairwise tree
    // (worker-count invariant, O(log n) rounding growth).
    std::vector<ParamVector> weight_parts(train.size());
    for (std::size_t r = 0; r < train.size(); ++r) {
      weight_parts[r].assign(
          sample_grad[r].begin() + num_inputs,
          sample_grad[r].begin() + num_inputs +
              static_cast<std::ptrdiff_t>(num_weights));
    }
    const real loss = tree_reduce(std::span<const real>(sample_loss));
    ParamVector grad = tree_reduce(std::span<const ParamVector>(weight_parts));
    const auto n = static_cast<real>(train.size());
    for (auto& g : grad) g /= n;
    adam.step(weights, grad, schedule.scale(epoch));
    result.epoch_loss.push_back(loss / n);
  }
  return result;
}

CircuitExecutor make_noisy_device_executor(
    const NoiseModel& noise, const std::vector<QubitIndex>& final_layout,
    int num_logical, int trajectories, std::uint64_t seed) {
  QNAT_CHECK(trajectories > 0, "need at least one trajectory");
  QNAT_CHECK(static_cast<int>(final_layout.size()) >= num_logical,
             "layout must cover every logical qubit");
  return [&noise, final_layout, num_logical, trajectories, seed](
             const Circuit& circuit,
             const ParamVector& params) -> std::vector<real> {
    // Stateless noise derivation: the call's trajectories are a pure
    // function of (seed, circuit, params), so concurrent calls from the
    // parameter-shift engine never race on a shared generator and results
    // are independent of evaluation order.
    std::uint64_t param_hash = circuit.fingerprint();
    for (const real p : params) {
      std::uint64_t bits;
      std::memcpy(&bits, &p, sizeof(bits));
      param_hash = (param_hash ^ bits) * 0x9E3779B97F4A7C15ULL;
      param_hash ^= param_hash >> 29;
    }
    const Rng call_base = Rng(seed).child(param_hash);
    std::vector<real> mean(static_cast<std::size_t>(num_logical), 0.0);
    for (int t = 0; t < trajectories; ++t) {
      Rng traj_rng = call_base.child(static_cast<std::uint64_t>(t));
      const Circuit noisy = insert_error_gates(circuit, noise, 1.0, traj_rng);
      // One-off noisy circuit: fused but uncached (see evaluator.cpp).
      const auto wires =
          measure_expectations(compile_program(noisy), params);
      for (int q = 0; q < num_logical; ++q) {
        mean[static_cast<std::size_t>(q)] += wires[static_cast<std::size_t>(
            final_layout[static_cast<std::size_t>(q)])];
      }
    }
    for (auto& m : mean) m /= trajectories;
    for (int q = 0; q < num_logical; ++q) {
      const ReadoutError e = noise.readout_error(
          final_layout[static_cast<std::size_t>(q)]);
      mean[static_cast<std::size_t>(q)] =
          e.slope() * mean[static_cast<std::size_t>(q)] + e.intercept();
    }
    return mean;
  };
}

real on_device_accuracy(const Circuit& circuit, int num_inputs,
                        const Dataset& data, const CircuitExecutor& executor,
                        const ParamVector& weights) {
  QNAT_CHECK(data.size() > 0, "empty dataset");
  QNAT_CHECK(data.feature_dim() == static_cast<std::size_t>(num_inputs) &&
                 static_cast<int>(weights.size()) ==
                     circuit.num_params() - num_inputs,
             "feature/weight split does not match circuit parameters");
  int correct = 0;
  for (std::size_t r = 0; r < data.size(); ++r) {
    const ParamVector params = bind_sample(data, r, weights);
    const auto expectations = executor(circuit, params);
    int best = 0;
    for (int c = 1; c < data.num_classes; ++c) {
      if (expectations[static_cast<std::size_t>(c)] >
          expectations[static_cast<std::size_t>(best)]) {
        best = c;
      }
    }
    if (best == data.labels[r]) ++correct;
  }
  return static_cast<real>(correct) / static_cast<real>(data.size());
}

}  // namespace qnat
