// On-device training with the parameter-shift rule (paper §4.2
// "Scalability" / Table 3).
//
// When classical simulation is infeasible, gradients are measured on the
// quantum device itself: each gate angle is shifted ±π/2 (±3π/2 for
// controlled rotations) and the expectation difference yields the exact
// derivative. Gradients measured through a noisy executor are naturally
// noise-aware — the device's errors shape them — so a model trained this
// way is robust on that device with no explicit injection step.
//
// The executor abstraction (`CircuitExecutor`) is the "device": the
// analytic simulator, the trajectory-averaged noisy simulator, or
// anything else that maps (circuit, params) to per-wire expectations.
#pragma once

#include "data/dataset.hpp"
#include "grad/parameter_shift.hpp"
#include "nn/optimizer.hpp"
#include "noise/noise_model.hpp"

namespace qnat {

struct OnDeviceTrainConfig {
  /// Full-batch epochs (one parameter-shift gradient + one Adam step per
  /// epoch — device evaluations are the scarce resource, so batching is
  /// maximal).
  int epochs = 40;
  /// Larger rate than the minibatch trainer: only `epochs` steps happen.
  AdamConfig adam{.learning_rate = 0.1};
  double warmup_fraction = 0.2;
  std::uint64_t seed = 4242;
};

struct OnDeviceTrainResult {
  std::vector<real> epoch_loss;
  /// Device evaluations consumed (forward passes through the executor).
  long device_evaluations = 0;
};

/// Trains the trainable slice of `circuit`'s parameters on `train`.
///
/// Parameter layout follows the QNN block convention: slots
/// [0, num_inputs) are bound per sample to the feature vector; slots
/// [num_inputs, num_params) are the weights, initialized
/// uniform(-pi, pi) from `config.seed` and updated in place in `weights`
/// (which must have num_params - num_inputs entries; its incoming values
/// are overwritten). Logits are the first `train.num_classes` wire
/// expectations; the loss is softmax cross-entropy.
OnDeviceTrainResult train_on_device(const Circuit& circuit, int num_inputs,
                                    const Dataset& train,
                                    const CircuitExecutor& executor,
                                    ParamVector& weights,
                                    const OnDeviceTrainConfig& config = {});

/// Accuracy of the trained circuit on `data` through `executor` (argmax
/// over the first num_classes wire expectations).
real on_device_accuracy(const Circuit& circuit, int num_inputs,
                        const Dataset& data, const CircuitExecutor& executor,
                        const ParamVector& weights);

/// Builds a simulated noisy "device" executor: runs the (compiled) circuit
/// under `trajectories` freshly-sampled Pauli/idle/coherent realizations
/// of `noise`, averages, applies each measured wire's readout map, and
/// returns expectations in *logical* order via `final_layout` (entry q =
/// the wire carrying logical qubit q). `noise` must outlive the executor.
///
/// The executor is stateless and thread-safe: each call derives its noise
/// realizations from (seed, Circuit::fingerprint, params), so it honors
/// the CircuitExecutor purity contract — identical calls see identical
/// trajectories and the parameter-shift engine may fan calls out across
/// threads with thread-count-invariant results.
CircuitExecutor make_noisy_device_executor(
    const NoiseModel& noise, const std::vector<QubitIndex>& final_layout,
    int num_logical, int trajectories, std::uint64_t seed);

}  // namespace qnat
