#include "core/parallel_trainer.hpp"

#include <algorithm>
#include <span>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"
#include "nn/losses.hpp"
#include "nn/reduction.hpp"

namespace qnat {

std::vector<UnitRange> plan_micro_units(std::size_t effective_size,
                                        std::size_t micro_batch_size) {
  QNAT_CHECK(micro_batch_size > 0, "micro batch size must be positive");
  std::vector<UnitRange> units;
  for (std::size_t lo = 0; lo < effective_size; lo += micro_batch_size) {
    units.push_back({lo, std::min(lo + micro_batch_size, effective_size)});
  }
  if (units.size() > 1 && units.back().hi - units.back().lo < 2) {
    units[units.size() - 2].hi = units.back().hi;
    units.pop_back();
  }
  return units;
}

TrainResult train_qnn_parallel(QnnModel& model, const Dataset& train,
                               const TrainerConfig& config,
                               const Deployment* deployment) {
  QNAT_CHECK(config.epochs > 0, "need at least one epoch");
  QNAT_CHECK(train.size() >= 2, "training set too small");
  QNAT_CHECK(train.feature_dim() ==
                 static_cast<std::size_t>(model.architecture().input_features),
             "dataset feature width does not match model encoder");
  QNAT_CHECK(config.accum_steps >= 1, "accum_steps must be >= 1");
  if (config.workers > 0) set_num_threads(config.workers);

  // Identical rng discipline to train_qnn: draws consumed in the same
  // order, so the initialized weights, batch permutations, and per-step
  // base streams line up with the legacy trainer.
  Rng rng(config.seed);
  if (!config.warm_start) model.init_weights(rng);
  const NoiseInjector injector(config.injection, deployment);

  Adam optimizer(model.weights().size(), config.adam);
  Batcher batcher(train.size(), config.batch_size, rng.fork());
  const auto accum = static_cast<std::size_t>(config.accum_steps);
  const std::size_t groups_per_epoch =
      (batcher.batches_per_epoch() + accum - 1) / accum;
  const long total_steps = static_cast<long>(config.epochs) *
                           static_cast<long>(groups_per_epoch);
  const WarmupCosineSchedule schedule(
      static_cast<long>(config.warmup_fraction * total_steps), total_steps);
  const std::size_t micro = config.micro_batch_size == 0
                                ? config.batch_size
                                : config.micro_batch_size;

  TrainResult result;
  long ostep = 0;
  const Rng injection_base = rng.fork();
  const Rng perturb_base = rng.fork();

  static metrics::Counter step_counter = metrics::counter("train.steps");
  static metrics::Counter epoch_counter = metrics::counter("train.epochs");
  static metrics::Counter unit_counter = metrics::counter("train.units");
  static metrics::Counter skipped_counter =
      metrics::counter("train.batches_skipped");
  static metrics::Histogram step_timer =
      metrics::histogram("train.step_seconds");
  static metrics::Histogram epoch_timer =
      metrics::histogram("train.epoch_seconds");

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    QNAT_TRACE_SCOPE("train.epoch");
    metrics::ScopedTimer epoch_scope(epoch_timer);
    epoch_counter.inc();
    real epoch_loss = 0.0;
    std::size_t steps_this_epoch = 0;
    const auto batches = batcher.epoch_batches();
    for (std::size_t g = 0; g < batches.size(); g += accum) {
      // The optimizer-step index is a pure function of (epoch, group) —
      // advance it even for skipped groups so noise streams stay aligned
      // with the precomputed schedule.
      const long step_index = ostep++;
      std::vector<std::size_t> indices;
      const std::size_t group_end = std::min(g + accum, batches.size());
      for (std::size_t b = g; b < group_end; ++b) {
        indices.insert(indices.end(), batches[b].begin(), batches[b].end());
      }
      if (indices.size() < 2) {  // batch-norm needs >= 2 samples
        skipped_counter.inc();
        continue;
      }
      QNAT_TRACE_SCOPE("train.step");
      metrics::ScopedTimer step_scope(step_timer);
      step_counter.inc();

      const Dataset effective = train.subset(indices);
      const std::size_t effective_size = indices.size();
      const auto units = plan_micro_units(effective_size, micro);
      unit_counter.add(units.size());

      const Rng step_injection =
          injection_base.child(static_cast<std::uint64_t>(step_index));
      const Rng step_perturb =
          perturb_base.child(static_cast<std::uint64_t>(step_index));

      std::vector<real> unit_loss(units.size(), 0.0);
      std::vector<ParamVector> unit_grad(units.size());
      parallel_for(units.size(), [&](std::size_t u) {
        const std::size_t lo = units[u].lo;
        const std::size_t hi = units[u].hi;
        // Each unit contributes (n_u / E) × its mean loss, so the step
        // loss/gradient is the effective-batch mean regardless of the
        // unit decomposition.
        const real unit_scale = static_cast<real>(hi - lo) /
                                static_cast<real>(effective_size);

        std::vector<Circuit> storage;
        const StepPlans plans =
            injector.step_plans_range(model, lo, hi, step_injection, storage);
        QnnForwardOptions options = pipeline_options(config);
        options.fused_backward = config.fused_backward;
        Rng perturb_rng = step_perturb.child(static_cast<std::uint64_t>(lo));
        injector.configure_forward(options, perturb_rng);

        QnnForwardCache cache;
        const Tensor2D logits = qnn_forward_range(
            model, effective.features, lo, hi, plans, options, &cache);
        const std::vector<int> labels(
            effective.labels.begin() + static_cast<std::ptrdiff_t>(lo),
            effective.labels.begin() + static_cast<std::ptrdiff_t>(hi));
        const real ce = cross_entropy_loss(logits, labels);
        unit_loss[u] = unit_scale *
                       (ce + config.quant_loss_weight * cache.quant_loss);
        Tensor2D grad_logits = cross_entropy_grad(logits, labels);
        if (unit_scale != 1.0) {
          for (real& value : grad_logits.data()) value *= unit_scale;
        }
        unit_grad[u] = qnn_backward(
            model, grad_logits, cache, plans, options,
            (config.quantize ? config.quant_loss_weight : 0.0) * unit_scale);
      });

      optimizer.step_reduced(model.weights(),
                             std::span<const ParamVector>(unit_grad),
                             schedule.scale(step_index));
      epoch_loss += tree_reduce(std::span<const real>(unit_loss));
      ++steps_this_epoch;
    }
    QNAT_CHECK(steps_this_epoch > 0,
               "no usable batches (batch size vs dataset size)");
    result.epoch_loss.push_back(epoch_loss /
                                static_cast<real>(steps_this_epoch));
  }

  // Final noise-free training accuracy with the training pipeline —
  // identical to the legacy trainer's epilogue (fused_backward is a
  // backward-only knob, so it does not apply here).
  const QnnForwardOptions options = pipeline_options(config);
  const Tensor2D logits =
      qnn_forward(model, train.features, make_logical_plans(model), options);
  result.final_train_accuracy = accuracy(logits, train.labels);
  return result;
}

}  // namespace qnat
