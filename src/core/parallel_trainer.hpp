// Data-parallel QNN training engine with deterministic gradient reduction.
//
// Each optimizer step covers an *effective batch* — `accum_steps`
// consecutive Batcher batches — split into fixed-size micro-batch work
// units that run concurrently on the shared thread pool. Three rules make
// the trained model a pure function of the config, independent of worker
// count and of how the effective batch is sharded into units:
//
//  1. RNG keying by position, not by schedule: the noise realization for
//     sample s of optimizer step t derives from
//     `injection_base.child(t).child(s)` (see
//     NoiseInjector::step_plans_range), so a unit draws exactly the
//     streams its samples would draw in any other partitioning.
//  2. Slot writes: every unit writes its loss and weight gradient into a
//     slot indexed by unit position; no worker touches shared
//     accumulators.
//  3. Fixed-order tree reduction: slots are folded with the pairwise
//     midpoint tree of nn/reduction.hpp, whose shape depends only on the
//     unit count — byte-identical at 1, 2, or 8 workers, and across any
//     (batch_size × accum_steps) refactoring that preserves the effective
//     batch and `micro_batch_size`.
//
// Per-micro-batch semantics: batch-normalization statistics (and the
// measurement-perturbation draw order) are computed per *unit*, so unit
// size is part of the model definition — `micro_batch_size` is a real
// hyperparameter, not just a performance knob. With `accum_steps == 1`,
// `micro_batch_size == batch_size`, and `fused_backward == false` the
// engine reproduces the legacy single-loop `train_qnn` byte-for-byte
// under GateInsertion (MeasurementPerturbation keys its Gaussian stream
// per unit rather than per step, so only that method diverges from the
// legacy trainer's draws).
#pragma once

#include "core/trainer.hpp"

namespace qnat {

/// Half-open sample range [lo, hi) within an effective batch — one
/// data-parallel work unit.
struct UnitRange {
  std::size_t lo = 0;
  std::size_t hi = 0;
};

/// Splits an effective batch into micro-batch units of `micro_batch_size`
/// samples, folding a size-1 tail into the previous unit (batch norm
/// needs >= 2 samples per unit). The decomposition is a pure function of
/// (effective_size, micro_batch_size).
std::vector<UnitRange> plan_micro_units(std::size_t effective_size,
                                        std::size_t micro_batch_size);

/// Trains `model` in place on `train` with the data-parallel engine.
/// Honors the TrainerConfig data-parallel knobs (`accum_steps`,
/// `micro_batch_size`, `workers`, `fused_backward`); everything else
/// follows the legacy `train_qnn` recipe.
TrainResult train_qnn_parallel(QnnModel& model, const Dataset& train,
                               const TrainerConfig& config,
                               const Deployment* deployment = nullptr);

}  // namespace qnat
