#include "core/qnn.hpp"

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"
#include "core/encoder.hpp"
#include "grad/adjoint.hpp"
#include "qsim/execution.hpp"

namespace qnat {

void QnnArchitecture::validate() const {
  QNAT_CHECK(num_qubits >= 2, "need at least two qubits");
  QNAT_CHECK(num_blocks >= 1, "need at least one block");
  QNAT_CHECK(layers_per_block >= 1, "need at least one layer per block");
  QNAT_CHECK(input_features >= 1, "need at least one input feature");
  QNAT_CHECK(num_classes >= 2, "need at least two classes");
  QNAT_CHECK(num_classes == 2 || num_classes <= num_qubits,
             "direct head needs one qubit per class");
}

QnnModel::QnnModel(QnnArchitecture arch) : arch_(arch) {
  arch_.validate();
  int weight_offset = 0;
  for (int b = 0; b < arch_.num_blocks; ++b) {
    Block block;
    const int num_inputs = b == 0 ? arch_.input_features : arch_.num_qubits;
    block.circuit = Circuit(arch_.num_qubits, num_inputs);
    if (b == 0) {
      append_feature_encoder(block.circuit, num_inputs, 0);
    } else {
      append_reencoder(block.circuit, 0);
    }
    block.num_inputs = num_inputs;
    block.num_weights = append_trainable_layers(block.circuit, arch_.space,
                                                arch_.layers_per_block);
    block.weight_offset = weight_offset;
    weight_offset += block.num_weights;
    blocks_.push_back(std::move(block));
  }
  weights_.assign(static_cast<std::size_t>(weight_offset), 0.0);
}

QnnModel QnnModel::with_custom_blocks(QnnArchitecture arch,
                                      std::vector<Block> blocks) {
  QNAT_CHECK(!blocks.empty(), "need at least one block");
  QnnModel model(arch);
  int total = 0;
  for (const auto& block : blocks) {
    QNAT_CHECK(block.weight_offset == total,
               "custom blocks must have contiguous weight offsets");
    total += block.num_weights;
    QNAT_CHECK(block.circuit.num_params() ==
                   block.num_inputs + block.num_weights,
               "custom block parameter count mismatch");
  }
  model.blocks_ = std::move(blocks);
  model.weights_.assign(static_cast<std::size_t>(total), 0.0);
  return model;
}

void QnnModel::init_weights(Rng& rng) {
  for (auto& w : weights_) w = rng.uniform(-kPi, kPi);
}

HeadType QnnModel::head_type() const {
  return (arch_.num_classes == 2 && arch_.num_qubits >= 4)
             ? HeadType::PairSum
             : HeadType::Direct;
}

Tensor2D QnnModel::apply_head(const Tensor2D& outcomes) const {
  QNAT_CHECK(outcomes.cols() == static_cast<std::size_t>(arch_.num_qubits),
             "head input width mismatch");
  const auto classes = static_cast<std::size_t>(arch_.num_classes);
  Tensor2D logits(outcomes.rows(), classes);
  if (head_type() == HeadType::PairSum) {
    for (std::size_t r = 0; r < outcomes.rows(); ++r) {
      logits(r, 0) = outcomes(r, 0) + outcomes(r, 1);
      logits(r, 1) = outcomes(r, 2) + outcomes(r, 3);
    }
  } else {
    for (std::size_t r = 0; r < outcomes.rows(); ++r) {
      for (std::size_t c = 0; c < classes; ++c) logits(r, c) = outcomes(r, c);
    }
  }
  return logits;
}

Tensor2D QnnModel::head_backward(const Tensor2D& grad_logits) const {
  QNAT_CHECK(grad_logits.cols() == static_cast<std::size_t>(arch_.num_classes),
             "head gradient width mismatch");
  Tensor2D grad(grad_logits.rows(), static_cast<std::size_t>(arch_.num_qubits));
  if (head_type() == HeadType::PairSum) {
    for (std::size_t r = 0; r < grad.rows(); ++r) {
      grad(r, 0) = grad_logits(r, 0);
      grad(r, 1) = grad_logits(r, 0);
      grad(r, 2) = grad_logits(r, 1);
      grad(r, 3) = grad_logits(r, 1);
    }
  } else {
    for (std::size_t r = 0; r < grad.rows(); ++r) {
      for (std::size_t c = 0; c < grad_logits.cols(); ++c) {
        grad(r, c) = grad_logits(r, c);
      }
    }
  }
  return grad;
}

std::vector<BlockExecutionPlan> make_logical_plans(const QnnModel& model) {
  std::vector<BlockExecutionPlan> plans;
  const int nq = model.architecture().num_qubits;
  for (const auto& block : model.blocks()) {
    BlockExecutionPlan plan;
    plan.circuit = &block.circuit;
    plan.measure_wires.resize(static_cast<std::size_t>(nq));
    for (int q = 0; q < nq; ++q) {
      plan.measure_wires[static_cast<std::size_t>(q)] = q;
    }
    plan.readout_slope.assign(static_cast<std::size_t>(nq), 1.0);
    plan.readout_intercept.assign(static_cast<std::size_t>(nq), 0.0);
    plans.push_back(std::move(plan));
  }
  return plans;
}

namespace {

/// Runs one block circuit for one sample; writes post-readout logical
/// expectations into `out` (num_logical slots).
void run_block_sample(const BlockExecutionPlan& plan, const ParamVector& params,
                      int num_logical, real* out,
                      std::vector<cplx>* keep_state = nullptr) {
  ScopedState state(plan.circuit->num_qubits());
  if (plan.program != nullptr) {
    plan.program->run(state.get(), params);
  } else {
    run_circuit_inplace(*plan.circuit, params, state.get());
  }
  if (keep_state != nullptr) {
    keep_state->assign(state->amplitudes().begin(),
                       state->amplitudes().end());
  }
  // One fold over the state yields every wire's expectation at once
  // (run_block_sample measures all logical qubits), instead of a full
  // O(2^n) pass per wire. The fold buffer is per-thread so the sample
  // hot path stays allocation-free.
  thread_local std::vector<real> all_z;
  state->expectations_z_into(all_z);
  for (int q = 0; q < num_logical; ++q) {
    const auto qi = static_cast<std::size_t>(q);
    const real e = all_z[static_cast<std::size_t>(plan.measure_wires[qi])];
    out[q] = plan.readout_slope[qi] * e + plan.readout_intercept[qi];
  }
}

/// Assembles the circuit parameter vector [inputs | weights] for sample r.
ParamVector bind_params(const Tensor2D& inputs, std::size_t r,
                        const ParamVector& weights, int weight_offset,
                        int num_weights) {
  ParamVector params = inputs.row(r);
  params.insert(params.end(),
                weights.begin() + weight_offset,
                weights.begin() + weight_offset + num_weights);
  return params;
}

void check_plan(const BlockExecutionPlan& plan, const QnnModel::Block& block,
                int num_logical) {
  QNAT_CHECK(plan.circuit != nullptr, "execution plan missing circuit");
  QNAT_CHECK(plan.circuit->num_params() ==
                 block.num_inputs + block.num_weights,
             "plan circuit parameter count mismatch");
  QNAT_CHECK(plan.measure_wires.size() ==
                     static_cast<std::size_t>(num_logical) &&
                 plan.readout_slope.size() == plan.measure_wires.size() &&
                 plan.readout_intercept.size() == plan.measure_wires.size(),
             "plan wiring arrays must cover every logical qubit");
  QNAT_CHECK(plan.program == nullptr ||
                 plan.program->num_qubits() == plan.circuit->num_qubits(),
             "plan program does not match its circuit");
}

}  // namespace

Tensor2D qnn_forward(const QnnModel& model, const Tensor2D& batch_inputs,
                     const std::vector<BlockExecutionPlan>& plans,
                     const QnnForwardOptions& options,
                     QnnForwardCache* cache) {
  return qnn_forward(model, batch_inputs, StepPlans::shared(plans), options,
                     cache);
}

Tensor2D qnn_forward(const QnnModel& model, const Tensor2D& batch_inputs,
                     const StepPlans& plans, const QnnForwardOptions& options,
                     QnnForwardCache* cache) {
  QNAT_CHECK(!plans.per_sample.empty(),
             "step plans must contain at least one plan set");
  QNAT_CHECK(plans.is_shared() ||
                 plans.per_sample.size() == batch_inputs.rows(),
             "per-sample plans must cover the whole batch");
  const int nq = model.architecture().num_qubits;
  for (const auto& plan_set : plans.per_sample) {
    QNAT_CHECK(plan_set.size() == model.blocks().size(),
               "one execution plan required per block");
    for (std::size_t b = 0; b < plan_set.size(); ++b) {
      check_plan(plan_set[b], model.blocks()[b], nq);
    }
  }
  if (!options.fused_backward || cache == nullptr) {
    const BlockRunner runner = [&](std::size_t b, std::size_t sample,
                                   const ParamVector& params, real* out) {
      run_block_sample(plans.for_sample(sample)[b], params, nq, out);
    };
    return qnn_forward_with_runner(model, batch_inputs, runner, options,
                                   cache);
  }

  // Fused-backward path: retain each (block, sample) final state so the
  // backward sweep starts from it instead of re-running the circuit.
  // Slots are written by sample index, so results and retained states are
  // identical at any thread count.
  std::vector<std::vector<std::vector<cplx>>> states(
      model.blocks().size(),
      std::vector<std::vector<cplx>>(batch_inputs.rows()));
  const BlockRunner runner = [&](std::size_t b, std::size_t sample,
                                 const ParamVector& params, real* out) {
    run_block_sample(plans.for_sample(sample)[b], params, nq, out,
                     &states[b][sample]);
  };
  Tensor2D logits =
      qnn_forward_with_runner(model, batch_inputs, runner, options, cache);
  cache->final_states = std::move(states);
  return logits;
}

Tensor2D qnn_forward_range(const QnnModel& model, const Tensor2D& inputs,
                           std::size_t row_begin, std::size_t row_end,
                           const StepPlans& plans,
                           const QnnForwardOptions& options,
                           QnnForwardCache* cache) {
  QNAT_CHECK(row_begin < row_end && row_end <= inputs.rows(),
             "invalid forward row range");
  Tensor2D slice(row_end - row_begin, inputs.cols());
  for (std::size_t r = row_begin; r < row_end; ++r) {
    const real* src = inputs.data().data() + r * inputs.cols();
    std::copy(src, src + inputs.cols(),
              slice.data().data() + (r - row_begin) * inputs.cols());
  }
  return qnn_forward(model, slice, plans, options, cache);
}

Tensor2D qnn_forward_with_runner(const QnnModel& model,
                                 const Tensor2D& batch_inputs,
                                 const BlockRunner& runner,
                                 const QnnForwardOptions& options,
                                 QnnForwardCache* cache) {
  const auto& arch = model.architecture();
  QNAT_CHECK(batch_inputs.cols() ==
                 static_cast<std::size_t>(arch.input_features),
             "input feature width mismatch");
  if (options.measurement_perturbation) {
    QNAT_CHECK(options.rng != nullptr,
               "measurement perturbation requires an RNG");
  }
  const std::size_t batch = batch_inputs.rows();
  const int nq = arch.num_qubits;

  QNAT_TRACE_SCOPE("qnn.forward");
  static metrics::Counter forward_batches =
      metrics::counter("qnn.forward_batches");
  static metrics::Counter block_samples = metrics::counter("qnn.block_samples");
  forward_batches.inc();

  QnnForwardCache local;
  QnnForwardCache& cc = cache != nullptr ? *cache : local;
  cc = QnnForwardCache{};

  Tensor2D current = batch_inputs;
  for (std::size_t b = 0; b < model.blocks().size(); ++b) {
    const auto& block = model.blocks()[b];
    cc.inputs.push_back(current);

    // Samples are independent: every row writes its own slot and the
    // runner is required to be thread-safe, so the batch fans out over
    // the worker pool with bit-identical results at any thread count.
    block_samples.add(batch);
    Tensor2D raw(batch, static_cast<std::size_t>(nq));
    parallel_for(batch, [&](std::size_t r) {
      // Per-thread parameter buffer: binding [row | weights] runs once
      // per sample per block, and at serving batch sizes the two
      // allocations bind_params would pay dominate the marginal cost of
      // a small statevector. Reuse keeps results bit-identical — the
      // buffer's contents are a pure function of r.
      thread_local ParamVector params;
      const real* row = current.data().data() + r * current.cols();
      params.assign(row, row + current.cols());
      params.insert(params.end(),
                    model.weights().begin() + block.weight_offset,
                    model.weights().begin() + block.weight_offset +
                        block.num_weights);
      runner(b, r, params, raw.data().data() + r * static_cast<std::size_t>(nq));
    });
    cc.raw.push_back(raw);

    const bool is_last = b + 1 == model.blocks().size();
    const bool process = !is_last || options.apply_to_last;
    if (!process) {
      cc.final_outputs = raw;
      break;
    }

    // Normalization.
    Tensor2D normalized = raw;
    NormCache norm_cache;
    bool batch_norm_used = false;
    if (options.normalize) {
      if (options.profiled_mean != nullptr && options.profiled_std != nullptr) {
        normalized = normalize_with_stats(raw, (*options.profiled_mean)[b],
                                          (*options.profiled_std)[b]);
      } else {
        normalized = normalize_batch(raw, &norm_cache);
        batch_norm_used = true;
      }
    }
    if (options.measurement_perturbation) {
      for (auto& v : normalized.data()) {
        v += options.rng->gaussian(options.perturb_mean, options.perturb_std);
      }
    }
    cc.norm.push_back(norm_cache);
    cc.norm_valid.push_back(batch_norm_used);
    cc.normalized.push_back(normalized);

    // Quantization.
    Tensor2D processed = normalized;
    if (options.quantize) {
      processed = quantize(normalized, options.quant);
      cc.quant_loss += quantization_loss(normalized, options.quant);
    }
    cc.processed.push_back(processed);

    if (is_last) {
      cc.final_outputs = processed;
    } else {
      current = processed;
    }
  }
  return model.apply_head(cc.final_outputs);
}

ParamVector qnn_backward(const QnnModel& model, const Tensor2D& grad_logits,
                         const QnnForwardCache& cache,
                         const std::vector<BlockExecutionPlan>& plans,
                         const QnnForwardOptions& options,
                         real quant_loss_weight) {
  return qnn_backward(model, grad_logits, cache, StepPlans::shared(plans),
                      options, quant_loss_weight);
}

ParamVector qnn_backward(const QnnModel& model, const Tensor2D& grad_logits,
                         const QnnForwardCache& cache, const StepPlans& plans,
                         const QnnForwardOptions& options,
                         real quant_loss_weight) {
  QNAT_TRACE_SCOPE("qnn.backward");
  static metrics::Counter backward_batches =
      metrics::counter("qnn.backward_batches");
  backward_batches.inc();
  const auto& arch = model.architecture();
  const int nq = arch.num_qubits;
  const std::size_t batch = grad_logits.rows();
  ParamVector weight_grad(static_cast<std::size_t>(model.num_weights()), 0.0);

  // Gradient w.r.t. the processed outputs of the current block (starts as
  // the head gradient on the final block's outputs).
  Tensor2D grad_processed = model.head_backward(grad_logits);

  for (std::size_t b = model.blocks().size(); b-- > 0;) {
    const auto& block = model.blocks()[b];
    const bool is_last = b + 1 == model.blocks().size();
    const bool processed_block = !is_last || options.apply_to_last;

    // Undo processing: quantization STE, perturbation (identity), then
    // normalization.
    Tensor2D grad_raw = grad_processed;
    if (processed_block) {
      Tensor2D grad_normalized = grad_processed;
      if (options.quantize) {
        grad_normalized = quantize_backward_ste(
            grad_processed, cache.normalized[b], options.quant);
        if (quant_loss_weight != 0.0) {
          const Tensor2D ql_grad =
              quantization_loss_grad(cache.normalized[b], options.quant) *
              quant_loss_weight;
          grad_normalized = grad_normalized + ql_grad;
        }
      }
      if (options.normalize) {
        if (cache.norm_valid[b]) {
          grad_raw = normalize_batch_backward(grad_normalized, cache.norm[b]);
        } else {
          // Profiled statistics: constant affine map, gradient scales by
          // 1/std.
          grad_raw = grad_normalized;
          const auto& stddev = (*options.profiled_std)[b];
          for (std::size_t r = 0; r < grad_raw.rows(); ++r) {
            for (std::size_t c = 0; c < grad_raw.cols(); ++c) {
              grad_raw(r, c) /= stddev[c];
            }
          }
        }
      } else {
        grad_raw = grad_normalized;
      }
    }

    // Readout-error injection backward: e' = slope * e + intercept.
    for (std::size_t r = 0; r < batch; ++r) {
      const auto& plan = plans.for_sample(r)[b];
      for (int q = 0; q < nq; ++q) {
        grad_raw(r, static_cast<std::size_t>(q)) *=
            plan.readout_slope[static_cast<std::size_t>(q)];
      }
    }

    // Adjoint sweep per sample: weights gradient + encoder-input gradient.
    // The sweeps run in parallel into per-sample buffers; the weight
    // gradient is then reduced serially in sample order, so the floating-
    // point sum is bit-identical to the serial loop at any thread count.
    Tensor2D grad_inputs(batch, static_cast<std::size_t>(block.num_inputs));
    std::vector<ParamVector> sample_weight_grad(batch);
    parallel_for(batch, [&](std::size_t r) {
      const auto& plan = plans.for_sample(r)[b];
      const int circuit_qubits = plan.circuit->num_qubits();
      std::vector<real> cotangent(static_cast<std::size_t>(circuit_qubits),
                                  0.0);
      for (int q = 0; q < nq; ++q) {
        cotangent[static_cast<std::size_t>(
            plan.measure_wires[static_cast<std::size_t>(q)])] +=
            grad_raw(r, static_cast<std::size_t>(q));
      }
      const ParamVector params =
          bind_params(cache.inputs[b], r, model.weights(), block.weight_offset,
                      block.num_weights);
      const bool fused = options.fused_backward && !cache.final_states.empty();
      const AdjointResult adjoint =
          fused ? adjoint_vjp_fused(*plan.circuit,
                                    plan.program != nullptr
                                        ? *plan.program
                                        : *shared_program(*plan.circuit),
                                    params, cotangent,
                                    cache.final_states[b][r])
                : adjoint_vjp(*plan.circuit, params, cotangent);
      for (int i = 0; i < block.num_inputs; ++i) {
        grad_inputs(r, static_cast<std::size_t>(i)) =
            adjoint.gradient[static_cast<std::size_t>(i)];
      }
      sample_weight_grad[r].assign(
          adjoint.gradient.begin() + block.num_inputs,
          adjoint.gradient.begin() + block.num_inputs + block.num_weights);
    });
    for (std::size_t r = 0; r < batch; ++r) {
      for (int w = 0; w < block.num_weights; ++w) {
        weight_grad[static_cast<std::size_t>(block.weight_offset + w)] +=
            sample_weight_grad[r][static_cast<std::size_t>(w)];
      }
    }

    if (b > 0) grad_processed = grad_inputs;
  }
  return weight_grad;
}

}  // namespace qnat
