// Multi-block Quantum Neural Network (paper Fig. 2) and its batched
// forward/backward engine.
//
// A model is a chain of blocks; each block is one circuit whose parameter
// vector is [encoder inputs | trainable weights]. Block 0 encodes the
// classical features; later blocks re-encode the previous block's
// processed measurement outcomes with RY gates. Between blocks the
// measurement outcomes pass through post-measurement normalization and
// quantization (not applied after the last block unless `apply_to_last` —
// the fully-quantum-model configuration of appendix A.3.3).
//
// Training backpropagates a classical cotangent into each block with the
// adjoint differentiator; the encoder-input gradient of block b+1 becomes
// the upstream gradient of block b's processed outputs, and normalization
// (exact batch-statistics Jacobian) / quantization (straight-through) /
// readout-error injection (affine slope) close the chain rule.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "core/design_space.hpp"
#include "core/normalization.hpp"
#include "core/quantization.hpp"
#include "nn/tensor.hpp"
#include "qsim/circuit.hpp"

namespace qnat {

class CompiledProgram;

struct QnnArchitecture {
  int num_qubits = 4;
  int num_blocks = 2;
  int layers_per_block = 2;
  DesignSpace space = DesignSpace::U3CU3;
  /// Feature count consumed by the first block's encoder.
  int input_features = 16;
  int num_classes = 4;

  void validate() const;
};

/// How final measurement outcomes map to class logits.
enum class HeadType {
  /// logits = first num_classes outcomes.
  Direct,
  /// 2-class on >= 4 qubits: logit0 = y0 + y1, logit1 = y2 + y3 (paper
  /// §4.1).
  PairSum,
};

class QnnModel {
 public:
  struct Block {
    Circuit circuit;
    int num_inputs = 0;
    int num_weights = 0;
    /// Offset of this block's weights inside the model weight vector.
    int weight_offset = 0;
  };

  explicit QnnModel(QnnArchitecture arch);

  /// Builds a model from externally-constructed blocks (used by
  /// extrapolation's layer folding). Weight vector is zero-initialized
  /// and sized from the blocks.
  static QnnModel with_custom_blocks(QnnArchitecture arch,
                                     std::vector<Block> blocks);

  const QnnArchitecture& architecture() const { return arch_; }
  const std::vector<Block>& blocks() const { return blocks_; }
  int num_weights() const { return static_cast<int>(weights_.size()); }

  ParamVector& weights() { return weights_; }
  const ParamVector& weights() const { return weights_; }

  /// Uniform(-pi, pi) initialization of all rotation weights.
  void init_weights(Rng& rng);

  HeadType head_type() const;

  /// Maps a batch of final-block outcomes (batch x num_qubits) to logits
  /// (batch x num_classes).
  Tensor2D apply_head(const Tensor2D& outcomes) const;

  /// Backward of the head: dL/d(outcomes) from dL/d(logits).
  Tensor2D head_backward(const Tensor2D& grad_logits) const;

 private:
  QnnArchitecture arch_;
  std::vector<Block> blocks_;
  ParamVector weights_;
};

/// How to execute one block for the current step: which circuit (possibly
/// a transpiled and/or noise-injected copy, owned by the caller), where
/// each logical qubit is measured, and the affine readout-error map
/// applied to the measured expectations.
struct BlockExecutionPlan {
  const Circuit* circuit = nullptr;
  /// Precompiled program for `circuit`, set when the planner already
  /// holds one (shared clean noise realizations). Skips the per-call
  /// program-cache lookup — which hashes the whole circuit — on both the
  /// forward run and the adjoint sweep. Null falls back to the cache.
  std::shared_ptr<const CompiledProgram> program;
  /// Logical qubit q is read from wire measure_wires[q].
  std::vector<QubitIndex> measure_wires;
  /// Per logical qubit: e -> slope * e + intercept (1, 0 when readout
  /// injection is off).
  std::vector<real> readout_slope;
  std::vector<real> readout_intercept;
};

/// Plans that run the model's own logical circuits noise-free.
std::vector<BlockExecutionPlan> make_logical_plans(const QnnModel& model);

/// Per-step execution plans, optionally distinct per sample. With a single
/// entry, every sample in the batch shares the same plans (the paper's
/// one-noise-realization-per-step semantics); with one entry per sample,
/// each sample runs its own noise realization, which averages injection
/// noise within the batch and makes short training runs converge.
struct StepPlans {
  std::vector<std::vector<BlockExecutionPlan>> per_sample;

  static StepPlans shared(std::vector<BlockExecutionPlan> plans) {
    StepPlans sp;
    sp.per_sample.push_back(std::move(plans));
    return sp;
  }

  const std::vector<BlockExecutionPlan>& for_sample(std::size_t sample) const {
    return per_sample.size() == 1 ? per_sample[0]
                                  : per_sample[sample];
  }
  bool is_shared() const { return per_sample.size() == 1; }
};

struct QnnForwardOptions {
  bool normalize = true;
  bool quantize = false;
  QuantConfig quant;
  /// Apply normalization/quantization to the last block too (fully-quantum
  /// single-block models, appendix A.3.3).
  bool apply_to_last = false;
  /// Gaussian measurement-outcome perturbation (the paper's "direct
  /// perturbation" injection baseline); applied to normalized outcomes.
  bool measurement_perturbation = false;
  real perturb_mean = 0.0;
  real perturb_std = 0.0;
  Rng* rng = nullptr;
  /// Profiled per-block statistics for normalization (appendix A.3.7);
  /// when set, replaces batch statistics. Outer index = block.
  const std::vector<std::vector<real>>* profiled_mean = nullptr;
  const std::vector<std::vector<real>>* profiled_std = nullptr;
  /// Data-parallel trainer fast path: the forward pass keeps every
  /// (block, sample) final statevector in the cache and the backward pass
  /// runs the fused-program adjoint sweep from those states instead of
  /// re-simulating each circuit (adjoint_vjp_fused). Gradients match the
  /// default path up to floating-point reassociation of fused constant
  /// runs; leave off for bit-compatibility with the single-loop trainer.
  bool fused_backward = false;
};

struct QnnForwardCache {
  std::vector<Tensor2D> inputs;      // per block: encoder inputs
  std::vector<Tensor2D> raw;         // per block: post-readout outcomes
  std::vector<NormCache> norm;       // per processed block
  std::vector<bool> norm_valid;      // whether norm[b] was batch-based
  std::vector<Tensor2D> normalized;  // per processed block (post perturb)
  std::vector<Tensor2D> processed;   // per processed block (post quant)
  Tensor2D final_outputs;            // what the head consumed
  real quant_loss = 0.0;             // mean ||y - Q(y)||^2 over blocks
  /// Final statevector amplitudes per [block][sample], retained only when
  /// QnnForwardOptions::fused_backward is set (feeds adjoint_vjp_fused).
  std::vector<std::vector<std::vector<cplx>>> final_states;
};

/// Batched forward pass. Returns class logits (batch x num_classes).
/// `plans` must have one entry per block and outlive any later backward
/// call that uses `cache`.
Tensor2D qnn_forward(const QnnModel& model, const Tensor2D& batch_inputs,
                     const std::vector<BlockExecutionPlan>& plans,
                     const QnnForwardOptions& options,
                     QnnForwardCache* cache = nullptr);

/// Forward pass with (possibly per-sample) step plans.
Tensor2D qnn_forward(const QnnModel& model, const Tensor2D& batch_inputs,
                     const StepPlans& plans, const QnnForwardOptions& options,
                     QnnForwardCache* cache = nullptr);

/// Forward pass over the contiguous row range [row_begin, row_end) of
/// `inputs` — the data-parallel trainer's micro-batch entry point. The
/// range is copied into a dense micro-batch, so batch-dependent pipeline
/// stages (normalization statistics) see exactly the micro-batch rows.
/// `plans` indexes samples *within the range* (entry 0 = row_begin).
Tensor2D qnn_forward_range(const QnnModel& model, const Tensor2D& inputs,
                           std::size_t row_begin, std::size_t row_end,
                           const StepPlans& plans,
                           const QnnForwardOptions& options,
                           QnnForwardCache* cache = nullptr);

/// Pluggable block executor: given the block index, the batch sample
/// index, and the bound parameter vector [inputs | block weights], returns
/// the (already readout-mapped) per-logical-qubit measurement outcomes.
/// The noisy evaluator supplies a trajectory-averaging runner so ideal and
/// noisy inference share the exact same classical pipeline.
///
/// Thread-safety contract: the forward engine invokes the runner
/// concurrently across samples of a batch, so the runner must be safe to
/// call from multiple threads and — for thread-count-invariant results —
/// must derive any randomness from its (block, sample) arguments via
/// counter-based `Rng::child` streams rather than a shared generator.
/// Writes the block's post-readout logical expectations into `out`
/// (`num_qubits` slots, one per logical qubit). The out-parameter shape
/// keeps the per-sample hot path free of a heap round-trip per block —
/// the forward engine points `out` straight at the output tensor row.
using BlockRunner = std::function<void(
    std::size_t block_index, std::size_t sample_index,
    const ParamVector& params, real* out)>;

/// Forward pass through an arbitrary runner (no backward support).
Tensor2D qnn_forward_with_runner(const QnnModel& model,
                                 const Tensor2D& batch_inputs,
                                 const BlockRunner& runner,
                                 const QnnForwardOptions& options,
                                 QnnForwardCache* cache = nullptr);

/// Batched backward pass; returns dL/d(weights) for the whole model.
/// `quant_loss_weight` scales the centroid-attraction loss contribution
/// (its forward value is cache.quant_loss).
ParamVector qnn_backward(const QnnModel& model, const Tensor2D& grad_logits,
                         const QnnForwardCache& cache,
                         const std::vector<BlockExecutionPlan>& plans,
                         const QnnForwardOptions& options,
                         real quant_loss_weight = 0.0);

/// Backward pass with (possibly per-sample) step plans; must be called
/// with the same plans the forward pass used.
ParamVector qnn_backward(const QnnModel& model, const Tensor2D& grad_logits,
                         const QnnForwardCache& cache, const StepPlans& plans,
                         const QnnForwardOptions& options,
                         real quant_loss_weight = 0.0);

}  // namespace qnat
