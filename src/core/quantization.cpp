#include "core/quantization.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace qnat {

void QuantConfig::validate() const {
  QNAT_CHECK(levels >= 2, "need at least two quantization levels");
  QNAT_CHECK(clip_min < clip_max, "empty clip range");
}

real QuantConfig::centroid(int k) const {
  return clip_min + static_cast<real>(k) * step();
}

real QuantConfig::step() const {
  return (clip_max - clip_min) / static_cast<real>(levels - 1);
}

real quantize_value(real value, const QuantConfig& config) {
  config.validate();
  const real clipped = std::clamp(value, config.clip_min, config.clip_max);
  const real s = config.step();
  const int k = static_cast<int>(std::lround((clipped - config.clip_min) / s));
  return config.centroid(std::clamp(k, 0, config.levels - 1));
}

Tensor2D quantize(const Tensor2D& values, const QuantConfig& config) {
  config.validate();
  Tensor2D out(values.rows(), values.cols());
  for (std::size_t i = 0; i < values.data().size(); ++i) {
    out.data()[i] = quantize_value(values.data()[i], config);
  }
  return out;
}

Tensor2D quantize_backward_ste(const Tensor2D& grad_out,
                               const Tensor2D& pre_quant_values,
                               const QuantConfig& config) {
  QNAT_CHECK(grad_out.rows() == pre_quant_values.rows() &&
                 grad_out.cols() == pre_quant_values.cols(),
             "gradient shape mismatch");
  Tensor2D grad = grad_out;
  for (std::size_t i = 0; i < grad.data().size(); ++i) {
    const real y = pre_quant_values.data()[i];
    if (y < config.clip_min || y > config.clip_max) grad.data()[i] = 0.0;
  }
  return grad;
}

real quantization_loss(const Tensor2D& values, const QuantConfig& config) {
  QNAT_CHECK(!values.empty(), "quantization loss of empty tensor");
  real s = 0.0;
  for (const real y : values.data()) {
    const real d = y - quantize_value(y, config);
    s += d * d;
  }
  return s / static_cast<real>(values.data().size());
}

Tensor2D quantization_loss_grad(const Tensor2D& values,
                                const QuantConfig& config) {
  Tensor2D grad(values.rows(), values.cols());
  const real scale = 2.0 / static_cast<real>(values.data().size());
  for (std::size_t i = 0; i < values.data().size(); ++i) {
    const real y = values.data()[i];
    grad.data()[i] = scale * (y - quantize_value(y, config));
  }
  return grad;
}

}  // namespace qnat
