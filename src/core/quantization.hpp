// Post-measurement quantization (paper §3.3, Fig. 6).
//
// Normalized measurement outcomes are clipped to [clip_min, clip_max] and
// uniformly quantized to `levels` centroids. Small noise-induced
// deviations snap back to the correct centroid — the denoising effect.
// Training treats quantization with a straight-through estimator
// (gradient passes where the input is inside the clip range, zero
// outside) and adds the quadratic centroid-attraction loss ||y - Q(y)||²
// that pulls outcomes toward centroids so they are harder to mis-quantize.
#pragma once

#include "nn/tensor.hpp"

namespace qnat {

struct QuantConfig {
  int levels = 5;
  real clip_min = -2.0;
  real clip_max = 2.0;

  void validate() const;

  /// Centroid value of level k (k in [0, levels)).
  real centroid(int k) const;

  /// Spacing between adjacent centroids.
  real step() const;
};

/// Scalar quantization: clip then round to the nearest centroid.
real quantize_value(real value, const QuantConfig& config);

/// Elementwise quantization of a batch.
Tensor2D quantize(const Tensor2D& values, const QuantConfig& config);

/// Straight-through backward: passes grad where clip_min <= y <= clip_max,
/// zero elsewhere.
Tensor2D quantize_backward_ste(const Tensor2D& grad_out,
                               const Tensor2D& pre_quant_values,
                               const QuantConfig& config);

/// Mean squared distance to the nearest centroid: the paper's auxiliary
/// loss term ||y - Q(y)||² (mean over elements).
real quantization_loss(const Tensor2D& values, const QuantConfig& config);

/// Gradient of `quantization_loss` w.r.t. the values: 2 (y - Q(y)) / N,
/// treating Q(y) as locally constant.
Tensor2D quantization_loss_grad(const Tensor2D& values,
                                const QuantConfig& config);

}  // namespace qnat
