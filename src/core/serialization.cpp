#include "core/serialization.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace qnat {

namespace {

constexpr const char* kCheckpointMagic = "#qnat-checkpoint";
constexpr const char* kLegacyMagic = "qnatmodel";

std::string expect_key(std::istream& is, const std::string& key) {
  std::string k, v;
  QNAT_CHECK(static_cast<bool>(is >> k >> v),
             "checkpoint truncated while reading '" + key + "'");
  QNAT_CHECK(k == key, "expected key '" + key + "', found '" + k + "'");
  return v;
}

/// Shared body of both format versions: the architecture keys and the
/// weight list. `expect_end` additionally requires the v2 sentinel.
QnnModel read_body(std::istream& is, bool expect_end) {
  QnnArchitecture arch;
  arch.num_qubits = std::stoi(expect_key(is, "qubits"));
  arch.num_blocks = std::stoi(expect_key(is, "blocks"));
  arch.layers_per_block = std::stoi(expect_key(is, "layers"));
  arch.space = design_space_from_string(expect_key(is, "space"));
  arch.input_features = std::stoi(expect_key(is, "features"));
  arch.num_classes = std::stoi(expect_key(is, "classes"));
  const int num_weights = std::stoi(expect_key(is, "weights"));

  QnnModel model(arch);
  QNAT_CHECK(model.num_weights() == num_weights,
             "weight count does not match architecture (" +
                 std::to_string(model.num_weights()) + " vs " +
                 std::to_string(num_weights) + ")");
  for (int w = 0; w < num_weights; ++w) {
    QNAT_CHECK(static_cast<bool>(
                   is >> model.weights()[static_cast<std::size_t>(w)]),
               "checkpoint truncated in weight list");
  }
  if (expect_end) {
    std::string sentinel;
    QNAT_CHECK(static_cast<bool>(is >> sentinel) && sentinel == "end",
               "checkpoint missing 'end' sentinel (file truncated?)");
  }
  return model;
}

}  // namespace

std::string serialize_model(const QnnModel& model) {
  const QnnArchitecture& arch = model.architecture();
  std::ostringstream os;
  os.precision(17);
  os << kCheckpointMagic << " v" << kCheckpointVersion << "\n";
  os << "qubits " << arch.num_qubits << "\n";
  os << "blocks " << arch.num_blocks << "\n";
  os << "layers " << arch.layers_per_block << "\n";
  os << "space " << design_space_name(arch.space) << "\n";
  os << "features " << arch.input_features << "\n";
  os << "classes " << arch.num_classes << "\n";
  os << "weights " << model.num_weights() << "\n";
  for (const real w : model.weights()) os << w << "\n";
  os << "end\n";
  return os.str();
}

QnnModel deserialize_model(const std::string& text) {
  std::istringstream is(text);
  std::string magic;
  QNAT_CHECK(static_cast<bool>(is >> magic), "empty checkpoint");

  if (magic == kCheckpointMagic) {
    std::string version;
    QNAT_CHECK(static_cast<bool>(is >> version) && version.size() >= 2 &&
                   version[0] == 'v',
               "malformed checkpoint version field '" + version + "'");
    int parsed = 0;
    try {
      parsed = std::stoi(version.substr(1));
    } catch (...) {
      QNAT_CHECK(false,
                 "malformed checkpoint version field '" + version + "'");
    }
    QNAT_CHECK(parsed <= kCheckpointVersion,
               "checkpoint format v" + std::to_string(parsed) +
                   " was produced by a newer build; this build reads up to v" +
                   std::to_string(kCheckpointVersion));
    QNAT_CHECK(parsed == kCheckpointVersion,
               "unsupported checkpoint format v" + std::to_string(parsed));
    return read_body(is, /*expect_end=*/true);
  }

  if (magic == kLegacyMagic) {
    std::string version;
    QNAT_CHECK(static_cast<bool>(is >> version),
               "checkpoint truncated in legacy version field");
    QNAT_CHECK(version == "1", "unsupported legacy model version " + version);
    return read_body(is, /*expect_end=*/false);
  }

  QNAT_CHECK(false, "not a QuantumNAT checkpoint (expected '" +
                        std::string(kCheckpointMagic) + "' or legacy '" +
                        std::string(kLegacyMagic) + "' magic, found '" +
                        magic + "')");
  return QnnModel(QnnArchitecture{});  // unreachable
}

void save_model(const QnnModel& model, const std::string& path) {
  std::ofstream out(path);
  QNAT_CHECK(out.good(), "cannot open '" + path + "' for writing");
  out << serialize_model(model);
  QNAT_CHECK(out.good(), "failed writing model to '" + path + "'");
}

QnnModel load_model(const std::string& path) {
  std::ifstream in(path);
  QNAT_CHECK(in.good(), "cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return deserialize_model(buffer.str());
}

}  // namespace qnat
