#include "core/serialization.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace qnat {

namespace {

std::string expect_key(std::istream& is, const std::string& key) {
  std::string k, v;
  QNAT_CHECK(static_cast<bool>(is >> k >> v),
             "model text truncated while reading '" + key + "'");
  QNAT_CHECK(k == key, "expected key '" + key + "', found '" + k + "'");
  return v;
}

}  // namespace

std::string serialize_model(const QnnModel& model) {
  const QnnArchitecture& arch = model.architecture();
  std::ostringstream os;
  os.precision(17);
  os << "qnatmodel 1\n";
  os << "qubits " << arch.num_qubits << "\n";
  os << "blocks " << arch.num_blocks << "\n";
  os << "layers " << arch.layers_per_block << "\n";
  os << "space " << design_space_name(arch.space) << "\n";
  os << "features " << arch.input_features << "\n";
  os << "classes " << arch.num_classes << "\n";
  os << "weights " << model.num_weights() << "\n";
  for (const real w : model.weights()) os << w << "\n";
  return os.str();
}

QnnModel deserialize_model(const std::string& text) {
  std::istringstream is(text);
  const std::string version = expect_key(is, "qnatmodel");
  QNAT_CHECK(version == "1", "unsupported model version " + version);

  QnnArchitecture arch;
  arch.num_qubits = std::stoi(expect_key(is, "qubits"));
  arch.num_blocks = std::stoi(expect_key(is, "blocks"));
  arch.layers_per_block = std::stoi(expect_key(is, "layers"));
  arch.space = design_space_from_string(expect_key(is, "space"));
  arch.input_features = std::stoi(expect_key(is, "features"));
  arch.num_classes = std::stoi(expect_key(is, "classes"));
  const int num_weights = std::stoi(expect_key(is, "weights"));

  QnnModel model(arch);
  QNAT_CHECK(model.num_weights() == num_weights,
             "weight count does not match architecture (" +
                 std::to_string(model.num_weights()) + " vs " +
                 std::to_string(num_weights) + ")");
  for (int w = 0; w < num_weights; ++w) {
    QNAT_CHECK(static_cast<bool>(
                   is >> model.weights()[static_cast<std::size_t>(w)]),
               "model text truncated in weight list");
  }
  return model;
}

void save_model(const QnnModel& model, const std::string& path) {
  std::ofstream out(path);
  QNAT_CHECK(out.good(), "cannot open '" + path + "' for writing");
  out << serialize_model(model);
  QNAT_CHECK(out.good(), "failed writing model to '" + path + "'");
}

QnnModel load_model(const std::string& path) {
  std::ifstream in(path);
  QNAT_CHECK(in.good(), "cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return deserialize_model(buffer.str());
}

}  // namespace qnat
