// Model serialization.
//
// Saves/loads a trained QNN as a small line-oriented text format (the
// architecture fields plus the weight vector), so trained models can be
// checkpointed, shipped, or re-deployed on a different device without
// retraining — the workflow behind the paper's Table 6 (one model, many
// deployment targets) and the input side of the serving registry
// (serve/registry.hpp).
//
// Format v2 (magic-headed, versioned, one key per line, closed by an
// `end` sentinel so truncation fails loudly instead of mid-read):
//   #qnat-checkpoint v2
//   qubits 4
//   blocks 2
//   layers 2
//   space u3cu3
//   features 16
//   classes 2
//   weights 48
//   <one weight per line, full precision>
//   end
//
// The legacy v1 format (first line `qnatmodel 1`, no sentinel) is still
// readable; a file with neither magic is rejected up front with a
// "not a checkpoint" error, and a version newer than this build reads
// produces a clear "produced by a newer version" error instead of an
// obscure key mismatch partway through the file.
#pragma once

#include <string>

#include "core/qnn.hpp"

namespace qnat {

/// Current checkpoint format version (`#qnat-checkpoint v2`).
inline constexpr int kCheckpointVersion = 2;

/// Serializes architecture + weights to the current (v2) format.
std::string serialize_model(const QnnModel& model);

/// Rebuilds a model from v2 or legacy v1 checkpoint text. Throws
/// qnat::Error on bad magic, unsupported version, truncation or
/// malformed fields.
QnnModel deserialize_model(const std::string& text);

/// Convenience file wrappers.
void save_model(const QnnModel& model, const std::string& path);
QnnModel load_model(const std::string& path);

}  // namespace qnat
