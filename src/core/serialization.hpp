// Model serialization.
//
// Saves/loads a trained QNN as a small line-oriented text format (the
// architecture fields plus the weight vector), so trained models can be
// checkpointed, shipped, or re-deployed on a different device without
// retraining — the workflow behind the paper's Table 6 (one model, many
// deployment targets).
//
// Format (versioned, one key per line):
//   qnatmodel 1
//   qubits 4
//   blocks 2
//   layers 2
//   space u3cu3
//   features 16
//   classes 2
//   weights 48
//   <one weight per line, full precision>
#pragma once

#include <string>

#include "core/qnn.hpp"

namespace qnat {

/// Serializes architecture + weights to the text format above.
std::string serialize_model(const QnnModel& model);

/// Rebuilds a model from `serialize_model` output. Throws qnat::Error on
/// malformed input or version mismatch.
QnnModel deserialize_model(const std::string& text);

/// Convenience file wrappers.
void save_model(const QnnModel& model, const std::string& path);
QnnModel load_model(const std::string& path);

}  // namespace qnat
