#include "core/theorem31.hpp"

#include <cmath>

#include "common/error.hpp"

namespace qnat {

LinearMapFit fit_noise_linear_map(const Tensor2D& ideal,
                                  const Tensor2D& noisy) {
  QNAT_CHECK(ideal.rows() == noisy.rows() && ideal.cols() == noisy.cols(),
             "shape mismatch");
  QNAT_CHECK(ideal.rows() >= 3, "need at least 3 samples for the fit");
  const auto n = static_cast<real>(ideal.rows());
  LinearMapFit fit;
  for (std::size_t c = 0; c < ideal.cols(); ++c) {
    real sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
    for (std::size_t r = 0; r < ideal.rows(); ++r) {
      const real x = ideal(r, c);
      const real y = noisy(r, c);
      sx += x;
      sy += y;
      sxx += x * x;
      sxy += x * y;
      syy += y * y;
    }
    const real var_x = sxx - sx * sx / n;
    const real cov = sxy - sx * sy / n;
    const real var_y = syy - sy * sy / n;
    // Degenerate (constant ideal column): slope undefined; report gamma=0
    // with everything in the intercept.
    const real gamma = var_x > 1e-12 ? cov / var_x : 0.0;
    const real beta = (sy - gamma * sx) / n;

    real ss_res = 0.0;
    for (std::size_t r = 0; r < ideal.rows(); ++r) {
      const real resid = noisy(r, c) - (gamma * ideal(r, c) + beta);
      ss_res += resid * resid;
    }
    fit.gamma.push_back(gamma);
    fit.beta_mean.push_back(beta);
    fit.beta_std.push_back(std::sqrt(ss_res / n));
    fit.r_squared.push_back(var_y > 1e-12 ? 1.0 - ss_res / var_y : 1.0);
  }
  return fit;
}

}  // namespace qnat
