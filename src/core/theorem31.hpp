// Empirical verification of Theorem 3.1.
//
// The theorem states that quantum noise maps each qubit's noiseless
// measurement expectation y to γ·y + β_x, with γ input-independent and
// β_x input-dependent (it vanishes for pure Pauli channels, where
// Ω = Σ O† Z O stays proportional to Z, and is produced by coherent
// errors through the tr(XΩ)tr(Xρ) terms). `fit_noise_linear_map`
// regresses noisy outcomes against ideal outcomes per qubit over a batch:
// the slope estimates γ, the intercept estimates E[β], and the residual
// spread estimates the input dependence of β_x — exactly the quantities
// the paper's normalization can and cannot remove.
#pragma once

#include <vector>

#include "nn/tensor.hpp"

namespace qnat {

struct LinearMapFit {
  /// Per-qubit slope (Theorem 3.1's γ, |γ| <= 1 for physical channels).
  std::vector<real> gamma;
  /// Per-qubit intercept (the batch-mean shift E[β]).
  std::vector<real> beta_mean;
  /// Per-qubit std of the residuals (input dependence of β_x; ~0 for pure
  /// Pauli channels).
  std::vector<real> beta_std;
  /// Per-qubit coefficient of determination of the linear fit.
  std::vector<real> r_squared;
};

/// Least-squares fit of noisy = γ·ideal + β per column (qubit).
/// Requires >= 3 rows and matching shapes.
LinearMapFit fit_noise_linear_map(const Tensor2D& ideal,
                                  const Tensor2D& noisy);

}  // namespace qnat
