#include "core/trainer.hpp"

#include <limits>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "nn/losses.hpp"

namespace qnat {

QnnForwardOptions pipeline_options(const TrainerConfig& config) {
  QnnForwardOptions options;
  options.normalize = config.normalize;
  options.quantize = config.quantize;
  options.quant = config.quant;
  options.apply_to_last = config.apply_to_last;
  return options;
}

TrainResult train_qnn(QnnModel& model, const Dataset& train,
                      const TrainerConfig& config,
                      const Deployment* deployment) {
  QNAT_CHECK(config.epochs > 0, "need at least one epoch");
  QNAT_CHECK(train.size() >= 2, "training set too small");
  QNAT_CHECK(train.feature_dim() ==
                 static_cast<std::size_t>(model.architecture().input_features),
             "dataset feature width does not match model encoder");

  Rng rng(config.seed);
  if (!config.warm_start) model.init_weights(rng);
  const NoiseInjector injector(config.injection, deployment);

  Adam optimizer(model.weights().size(), config.adam);
  Batcher batcher(train.size(), config.batch_size, rng.fork());
  const long total_steps =
      static_cast<long>(config.epochs) *
      static_cast<long>(batcher.batches_per_epoch());
  const WarmupCosineSchedule schedule(
      static_cast<long>(config.warmup_fraction * total_steps), total_steps);

  TrainResult result;
  long step = 0;
  // Counter-based per-step streams: step s's noise realization and
  // perturbation draws depend only on (seed, s), not on how many draws
  // earlier steps consumed — so injection noise stays reproducible under
  // the parallel batch engine and across batch-size changes.
  const Rng injection_base = rng.fork();
  const Rng perturb_base = rng.fork();

  static metrics::Counter step_counter = metrics::counter("train.steps");
  static metrics::Counter epoch_counter = metrics::counter("train.epochs");
  static metrics::Counter skipped_counter =
      metrics::counter("train.batches_skipped");
  static metrics::Histogram step_timer =
      metrics::histogram("train.step_seconds");
  static metrics::Histogram epoch_timer =
      metrics::histogram("train.epoch_seconds");

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    QNAT_TRACE_SCOPE("train.epoch");
    metrics::ScopedTimer epoch_scope(epoch_timer);
    epoch_counter.inc();
    real epoch_loss = 0.0;
    std::size_t batches = 0;
    for (const auto& indices : batcher.epoch_batches()) {
      if (indices.size() < 2) {
        // Batch norm needs >= 2 samples. The Batcher folds size-1 tails
        // into the previous batch, so this only fires for a dataset that
        // is itself a single sample group; count it so silent drops show
        // up in the metrics report instead of vanishing.
        skipped_counter.inc();
        continue;
      }
      QNAT_TRACE_SCOPE("train.step");
      metrics::ScopedTimer step_scope(step_timer);
      step_counter.inc();
      const Dataset batch = train.subset(indices);

      Rng injection_rng =
          injection_base.child(static_cast<std::uint64_t>(step));
      Rng perturb_rng = perturb_base.child(static_cast<std::uint64_t>(step));
      std::vector<Circuit> storage;
      const StepPlans plans =
          injector.step_plans(model, indices.size(), injection_rng, storage);
      QnnForwardOptions options = pipeline_options(config);
      injector.configure_forward(options, perturb_rng);

      QnnForwardCache cache;
      const Tensor2D logits =
          qnn_forward(model, batch.features, plans, options, &cache);
      const real loss = cross_entropy_loss(logits, batch.labels) +
                        config.quant_loss_weight * cache.quant_loss;
      const Tensor2D grad_logits = cross_entropy_grad(logits, batch.labels);
      const ParamVector grad =
          qnn_backward(model, grad_logits, cache, plans, options,
                       config.quantize ? config.quant_loss_weight : 0.0);

      optimizer.step(model.weights(), grad, schedule.scale(step));
      ++step;
      epoch_loss += loss;
      ++batches;
    }
    QNAT_CHECK(batches > 0, "no usable batches (batch size vs dataset size)");
    result.epoch_loss.push_back(epoch_loss / static_cast<real>(batches));
  }

  // Final noise-free training accuracy with the training pipeline.
  const QnnForwardOptions options = pipeline_options(config);
  const Tensor2D logits =
      qnn_forward(model, train.features, make_logical_plans(model), options);
  result.final_train_accuracy = accuracy(logits, train.labels);
  return result;
}

real noisy_validation_loss(const QnnModel& model, const Deployment& deployment,
                           const Dataset& valid,
                           const QnnForwardOptions& pipeline,
                           const NoisyEvalOptions& eval_options) {
  const Tensor2D logits = qnn_forward_noisy(model, deployment, valid.features,
                                            pipeline, eval_options);
  return cross_entropy_loss(logits, valid.labels);
}

GridSearchResult grid_search_noise_factor_levels(
    QnnModel& model, const Dataset& train, const Dataset& valid,
    const TrainerConfig& base_config, const Deployment& deployment,
    const std::vector<double>& noise_factors, const std::vector<int>& levels,
    const NoisyEvalOptions& eval_options) {
  QNAT_CHECK(!noise_factors.empty() && !levels.empty(),
             "empty hyperparameter grid");
  GridSearchResult best;
  best.valid_loss = std::numeric_limits<real>::infinity();
  ParamVector best_weights;

  for (const double factor : noise_factors) {
    for (const int level : levels) {
      TrainerConfig config = base_config;
      config.injection.noise_factor = factor;
      config.quantize = true;
      config.quant.levels = level;
      train_qnn(model, train, config, &deployment);
      const real loss = noisy_validation_loss(
          model, deployment, valid, pipeline_options(config), eval_options);
      if (loss < best.valid_loss) {
        best = GridSearchResult{factor, level, loss};
        best_weights = model.weights();
      }
    }
  }
  model.weights() = best_weights;
  return best;
}

}  // namespace qnat
