// Noise-aware QNN training loop (paper §3 + §4.1 recipe).
//
// Adam with decoupled weight decay, linear-warmup + cosine-decay learning
// rate, cross-entropy loss plus the quantization centroid-attraction term,
// and per-step noise injection: a fresh set of error gates (or angle /
// measurement perturbations) is sampled for every training step. The
// hyperparameter search (noise factor T × quantization levels, Table 14)
// selects the combination with the lowest noisy validation loss.
#pragma once

#include "core/noise_injector.hpp"
#include "core/qnn.hpp"
#include "data/dataset.hpp"
#include "nn/optimizer.hpp"
#include "nn/scheduler.hpp"

namespace qnat {

struct TrainerConfig {
  int epochs = 30;
  std::size_t batch_size = 32;
  /// The paper trains 200 epochs at lr 5e-3; short CPU runs need a
  /// proportionally larger rate, so the trainer default is 2e-2. Override
  /// `adam.learning_rate` for the paper's exact recipe.
  AdamConfig adam{.learning_rate = 2e-2};
  /// Fraction of total steps spent in linear warmup (paper: 30 of 200
  /// epochs).
  double warmup_fraction = 0.15;

  // Pipeline.
  bool normalize = true;
  bool quantize = false;
  QuantConfig quant;
  real quant_loss_weight = 1.0;
  bool apply_to_last = false;

  // Injection.
  InjectionConfig injection;

  /// Keep the model's current weights instead of re-initializing —
  /// fine-tuning mode (the paper's appendix A.3.1 future-work direction:
  /// fast adaptation of an already-trained QNN to an updated noise
  /// model).
  bool warm_start = false;

  std::uint64_t seed = 1234;

  // Data-parallel engine knobs (train_qnn_parallel; ignored by the
  // legacy single-loop train_qnn).

  /// Number of Batcher batches folded into one optimizer step. The
  /// effective batch is the concatenation of `accum_steps` consecutive
  /// batches; gradients are reduced across the whole group before the
  /// single Adam update.
  int accum_steps = 1;
  /// Work-unit granularity: the effective batch is split into units of
  /// this many samples (0 → `batch_size`). Units are the atoms of
  /// parallelism *and* of the deterministic reduction tree, so results
  /// are byte-identical for any worker count given the same unit size.
  std::size_t micro_batch_size = 0;
  /// Worker threads for the unit-level parallel loop. 0 → use the
  /// process-wide pool size (QNAT_NUM_THREADS / hardware concurrency);
  /// >0 → resize the shared pool to exactly this many threads.
  int workers = 0;
  /// Use the fused adjoint sweep with forward final-state reuse in the
  /// data-parallel backward pass. Equal to the legacy backward up to
  /// floating-point reassociation; disable for bit-exact comparison
  /// against train_qnn.
  bool fused_backward = true;
};

struct TrainResult {
  std::vector<real> epoch_loss;     // mean training loss per epoch
  real final_train_accuracy = 0.0;  // noise-free, with the training pipeline
};

/// Trains `model` in place on `train`.
TrainResult train_qnn(QnnModel& model, const Dataset& train,
                      const TrainerConfig& config,
                      const Deployment* deployment = nullptr);

/// Noisy validation cross-entropy loss (used for hyperparameter
/// selection).
real noisy_validation_loss(const QnnModel& model, const Deployment& deployment,
                           const Dataset& valid,
                           const QnnForwardOptions& pipeline,
                           const NoisyEvalOptions& eval_options);

/// Forward options matching a trainer config's inference-time pipeline.
QnnForwardOptions pipeline_options(const TrainerConfig& config);

struct GridSearchResult {
  double noise_factor = 0.0;
  int quant_levels = 0;
  real valid_loss = 0.0;
};

/// The paper's (T, levels) grid search: trains one model per combination,
/// scores by noisy validation loss, retrains nothing — the winning model
/// is returned through `model`.
GridSearchResult grid_search_noise_factor_levels(
    QnnModel& model, const Dataset& train, const Dataset& valid,
    const TrainerConfig& base_config, const Deployment& deployment,
    const std::vector<double>& noise_factors, const std::vector<int>& levels,
    const NoisyEvalOptions& eval_options);

}  // namespace qnat
