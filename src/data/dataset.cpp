#include "data/dataset.hpp"

#include "common/error.hpp"

namespace qnat {

Dataset Dataset::subset(const std::vector<std::size_t>& indices) const {
  Dataset out;
  out.num_classes = num_classes;
  out.features = Tensor2D(indices.size(), features.cols());
  out.labels.reserve(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    QNAT_CHECK(indices[i] < size(), "subset index out of range");
    out.features.set_row(i, features.row(indices[i]));
    out.labels.push_back(labels[indices[i]]);
  }
  return out;
}

Dataset Dataset::take(std::size_t n) const {
  QNAT_CHECK(n <= size(), "take exceeds dataset size");
  std::vector<std::size_t> indices(n);
  for (std::size_t i = 0; i < n; ++i) indices[i] = i;
  return subset(indices);
}

SplitDataset split_dataset(const Dataset& dataset, double train_fraction,
                           double valid_fraction) {
  QNAT_CHECK(train_fraction > 0.0 && valid_fraction >= 0.0 &&
                 train_fraction + valid_fraction <= 1.0,
             "invalid split fractions");
  const std::size_t n = dataset.size();
  const auto n_train = static_cast<std::size_t>(n * train_fraction);
  const auto n_valid = static_cast<std::size_t>(n * valid_fraction);
  QNAT_CHECK(n_train >= 1, "empty training split");

  auto range = [](std::size_t lo, std::size_t hi) {
    std::vector<std::size_t> idx;
    idx.reserve(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) idx.push_back(i);
    return idx;
  };
  SplitDataset out;
  out.train = dataset.subset(range(0, n_train));
  out.valid = dataset.subset(range(n_train, n_train + n_valid));
  out.test = dataset.subset(range(n_train + n_valid, n));
  return out;
}

Batcher::Batcher(std::size_t dataset_size, std::size_t batch_size, Rng rng)
    : dataset_size_(dataset_size), batch_size_(batch_size), rng_(rng) {
  QNAT_CHECK(dataset_size > 0, "empty dataset");
  QNAT_CHECK(batch_size > 0, "batch size must be positive");
}

std::vector<std::vector<std::size_t>> Batcher::epoch_batches() {
  const auto perm = rng_.permutation(dataset_size_);
  std::vector<std::vector<std::size_t>> batches;
  for (std::size_t start = 0; start < dataset_size_; start += batch_size_) {
    const std::size_t end = std::min(start + batch_size_, dataset_size_);
    batches.emplace_back(perm.begin() + static_cast<std::ptrdiff_t>(start),
                         perm.begin() + static_cast<std::ptrdiff_t>(end));
  }
  if (batches.size() > 1 && batches.back().size() < 2) {
    auto& prev = batches[batches.size() - 2];
    prev.insert(prev.end(), batches.back().begin(), batches.back().end());
    batches.pop_back();
  }
  return batches;
}

std::size_t Batcher::batches_per_epoch() const {
  const std::size_t full = (dataset_size_ + batch_size_ - 1) / batch_size_;
  // A size-1 final batch gets folded into the previous one
  // (epoch_batches); with batch_size 1 that includes an exact division.
  const std::size_t tail = dataset_size_ % batch_size_;
  const std::size_t last = tail == 0 ? batch_size_ : tail;
  if (full > 1 && last < 2) return full - 1;
  return full;
}

}  // namespace qnat
