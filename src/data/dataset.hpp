// Processed dataset container, train/valid/test splitting, and mini-batch
// iteration with per-epoch shuffling.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "nn/tensor.hpp"

namespace qnat {

struct Dataset {
  Tensor2D features;        // samples x feature_dim
  std::vector<int> labels;  // contiguous 0..num_classes-1
  int num_classes = 0;

  std::size_t size() const { return labels.size(); }
  std::size_t feature_dim() const { return features.cols(); }

  /// Row subset by indices.
  Dataset subset(const std::vector<std::size_t>& indices) const;

  /// First n samples.
  Dataset take(std::size_t n) const;
};

struct SplitDataset {
  Dataset train;
  Dataset valid;
  Dataset test;
};

/// Splits by the given fractions (must sum to <= 1; remainder goes to
/// test). Order within the dataset is preserved — shuffle upstream.
SplitDataset split_dataset(const Dataset& dataset, double train_fraction,
                           double valid_fraction);

/// Mini-batch index iterator with per-epoch reshuffling.
class Batcher {
 public:
  Batcher(std::size_t dataset_size, std::size_t batch_size, Rng rng);

  /// Index groups for one epoch (reshuffled each call). The final batch
  /// may be smaller; a size-1 tail is folded into the previous batch
  /// (batch normalization needs >= 2 samples, and silently dropping the
  /// tail would starve those samples of gradient signal every epoch).
  std::vector<std::vector<std::size_t>> epoch_batches();

  std::size_t batches_per_epoch() const;

 private:
  std::size_t dataset_size_;
  std::size_t batch_size_;
  Rng rng_;
};

}  // namespace qnat
