#include "data/preprocess.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace qnat {

Image to_grayscale(const Image& image) {
  if (image.channels == 1) return image;
  Image out;
  out.height = image.height;
  out.width = image.width;
  out.channels = 1;
  out.pixels.assign(static_cast<std::size_t>(image.height) * image.width, 0.0);
  for (int y = 0; y < image.height; ++y) {
    for (int x = 0; x < image.width; ++x) {
      real s = 0.0;
      for (int c = 0; c < image.channels; ++c) s += image.at(c, y, x);
      out.at(0, y, x) = s / image.channels;
    }
  }
  return out;
}

Image center_crop(const Image& image, int size) {
  QNAT_CHECK(size > 0 && size <= image.height && size <= image.width,
             "crop size exceeds image");
  const int oy = (image.height - size) / 2;
  const int ox = (image.width - size) / 2;
  Image out;
  out.height = size;
  out.width = size;
  out.channels = image.channels;
  out.pixels.assign(
      static_cast<std::size_t>(image.channels) * size * size, 0.0);
  for (int c = 0; c < image.channels; ++c) {
    for (int y = 0; y < size; ++y) {
      for (int x = 0; x < size; ++x) {
        out.at(c, y, x) = image.at(c, oy + y, ox + x);
      }
    }
  }
  return out;
}

Image average_pool(const Image& image, int out_size) {
  QNAT_CHECK(out_size > 0 && image.height % out_size == 0 &&
                 image.width % out_size == 0,
             "image size must be divisible by pool output size");
  const int ky = image.height / out_size;
  const int kx = image.width / out_size;
  Image out;
  out.height = out_size;
  out.width = out_size;
  out.channels = image.channels;
  out.pixels.assign(
      static_cast<std::size_t>(image.channels) * out_size * out_size, 0.0);
  for (int c = 0; c < image.channels; ++c) {
    for (int y = 0; y < out_size; ++y) {
      for (int x = 0; x < out_size; ++x) {
        real s = 0.0;
        for (int dy = 0; dy < ky; ++dy) {
          for (int dx = 0; dx < kx; ++dx) {
            s += image.at(c, y * ky + dy, x * kx + dx);
          }
        }
        out.at(c, y, x) = s / (ky * kx);
      }
    }
  }
  return out;
}

Tensor2D flatten_images(const std::vector<Image>& images) {
  QNAT_CHECK(!images.empty(), "no images to flatten");
  const Image& first = images.front();
  QNAT_CHECK(first.channels == 1, "flatten expects single-channel images");
  const std::size_t width =
      static_cast<std::size_t>(first.height) * first.width;
  Tensor2D out(images.size(), width);
  for (std::size_t i = 0; i < images.size(); ++i) {
    QNAT_CHECK(images[i].pixels.size() == width,
               "inconsistent image sizes in batch");
    for (std::size_t j = 0; j < width; ++j) {
      out(i, j) = images[i].pixels[j];
    }
  }
  return out;
}

void symmetric_eigen(const Tensor2D& matrix, std::vector<real>& eigenvalues,
                     std::vector<std::vector<real>>& eigenvectors) {
  QNAT_CHECK(matrix.rows() == matrix.cols(), "matrix must be square");
  const std::size_t n = matrix.rows();
  Tensor2D a = matrix;
  Tensor2D v(n, n);
  for (std::size_t i = 0; i < n; ++i) v(i, i) = 1.0;

  for (int sweep = 0; sweep < 100; ++sweep) {
    real off = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) off += a(p, q) * a(p, q);
    }
    if (off < 1e-20) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        if (std::abs(a(p, q)) < 1e-15) continue;
        const real theta = 0.5 * std::atan2(2.0 * a(p, q), a(q, q) - a(p, p));
        const real c = std::cos(theta), s = std::sin(theta);
        for (std::size_t k = 0; k < n; ++k) {
          const real akp = a(k, p), akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const real apk = a(p, k), aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const real vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return a(x, x) > a(y, y); });

  eigenvalues.assign(n, 0.0);
  eigenvectors.assign(n, std::vector<real>(n, 0.0));
  for (std::size_t rank = 0; rank < n; ++rank) {
    const std::size_t src = order[rank];
    eigenvalues[rank] = a(src, src);
    for (std::size_t k = 0; k < n; ++k) eigenvectors[rank][k] = v(k, src);
  }
}

Pca::Pca(const Tensor2D& data, int num_components)
    : num_components_(num_components) {
  QNAT_CHECK(num_components > 0 &&
                 static_cast<std::size_t>(num_components) <= data.cols(),
             "invalid component count");
  QNAT_CHECK(data.rows() >= 2, "PCA needs at least two samples");
  mean_ = data.col_mean();
  const std::size_t d = data.cols();
  Tensor2D cov(d, d);
  for (std::size_t r = 0; r < data.rows(); ++r) {
    for (std::size_t i = 0; i < d; ++i) {
      const real di = data(r, i) - mean_[i];
      for (std::size_t j = i; j < d; ++j) {
        cov(i, j) += di * (data(r, j) - mean_[j]);
      }
    }
  }
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i; j < d; ++j) {
      cov(i, j) /= static_cast<real>(data.rows() - 1);
      cov(j, i) = cov(i, j);
    }
  }
  std::vector<real> values;
  std::vector<std::vector<real>> vectors;
  symmetric_eigen(cov, values, vectors);
  eigenvalues_.assign(values.begin(),
                      values.begin() + num_components);
  components_.assign(vectors.begin(), vectors.begin() + num_components);
}

Tensor2D Pca::transform(const Tensor2D& data) const {
  QNAT_CHECK(data.cols() == mean_.size(), "PCA dimension mismatch");
  Tensor2D out(data.rows(), static_cast<std::size_t>(num_components_));
  for (std::size_t r = 0; r < data.rows(); ++r) {
    for (int k = 0; k < num_components_; ++k) {
      real s = 0.0;
      for (std::size_t j = 0; j < mean_.size(); ++j) {
        s += (data(r, j) - mean_[j]) *
             components_[static_cast<std::size_t>(k)][j];
      }
      out(r, static_cast<std::size_t>(k)) = s;
    }
  }
  return out;
}

Standardizer::Standardizer(const Tensor2D& train_data)
    : mean_(train_data.col_mean()), std_(train_data.col_std(1e-12)) {
  for (auto& s : std_) {
    if (s < 1e-6) s = 1.0;  // constant feature: leave centered at zero
  }
}

Tensor2D Standardizer::transform(const Tensor2D& data) const {
  QNAT_CHECK(data.cols() == mean_.size(), "standardizer dimension mismatch");
  Tensor2D out(data.rows(), data.cols());
  for (std::size_t r = 0; r < data.rows(); ++r) {
    for (std::size_t c = 0; c < data.cols(); ++c) {
      out(r, c) = (data(r, c) - mean_[c]) / std_[c];
    }
  }
  return out;
}

}  // namespace qnat
