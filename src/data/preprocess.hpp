// Preprocessing pipeline, matching the paper's §4.1 exactly:
//   MNIST / Fashion: center-crop 24x24, average-pool to 4x4 (2-/4-class)
//     or 6x6 (10-class);
//   CIFAR: grayscale, center-crop 28x28, average-pool to 4x4;
//   Vowel: PCA to the 10 most significant dimensions.
// Plus per-column standardization fit on the training split (the classical
// equivalent of torchvision's Normalize), so features arrive at the
// encoder as O(1)-magnitude rotation angles.
#pragma once

#include <vector>

#include "data/synthetic.hpp"
#include "nn/tensor.hpp"

namespace qnat {

/// Averages RGB channels into one plane. Grayscale images pass through.
Image to_grayscale(const Image& image);

/// Central crop to size x size. Throws when the image is smaller.
Image center_crop(const Image& image, int size);

/// Average pooling to out_size x out_size; input size must be divisible
/// by out_size.
Image average_pool(const Image& image, int out_size);

/// Flattens a batch of equal-size single-channel images row-major into a
/// (batch x H*W) tensor.
Tensor2D flatten_images(const std::vector<Image>& images);

/// Principal component analysis fit on a (samples x dim) matrix.
class Pca {
 public:
  /// Fits on `data`, retaining `num_components` leading components.
  Pca(const Tensor2D& data, int num_components);

  /// Projects rows onto the principal subspace.
  Tensor2D transform(const Tensor2D& data) const;

  const std::vector<real>& eigenvalues() const { return eigenvalues_; }
  int num_components() const { return num_components_; }

 private:
  int num_components_;
  std::vector<real> mean_;
  /// components_[k] is the k-th eigenvector (length = input dim).
  std::vector<std::vector<real>> components_;
  std::vector<real> eigenvalues_;
};

/// Symmetric-matrix eigendecomposition by cyclic Jacobi rotations.
/// `matrix` is n*n row-major symmetric; outputs are sorted descending by
/// eigenvalue. Exposed for testing.
void symmetric_eigen(const Tensor2D& matrix, std::vector<real>& eigenvalues,
                     std::vector<std::vector<real>>& eigenvectors);

/// Per-column standardizer fit on the training split.
class Standardizer {
 public:
  explicit Standardizer(const Tensor2D& train_data);

  Tensor2D transform(const Tensor2D& data) const;

  const std::vector<real>& mean() const { return mean_; }
  const std::vector<real>& std() const { return std_; }

 private:
  std::vector<real> mean_;
  std::vector<real> std_;
};

}  // namespace qnat
