#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace qnat {

namespace {

struct FamilyParams {
  double pixel_noise;     // per-pixel Gaussian sigma
  double shift_range;     // max |dx|, |dy| of the random template shift
  double blend;           // cross-class template blending (0 = none)
  int channels;
  std::uint64_t family_seed;
};

FamilyParams family_params(ImageFamily family) {
  // Difficulty calibrated so a well-trained noise-free QNN lands near the
  // paper's noise-free accuracies (MNIST easiest, CIFAR hardest): heavier
  // per-pixel noise survives average-pooling as feature noise, and
  // cross-class template blending shrinks class margins.
  switch (family) {
    case ImageFamily::Mnist:
      return {0.22, 2.0, 0.05, 1, 0x11AA22BB01ULL};
    case ImageFamily::Fashion:
      return {0.30, 2.0, 0.15, 1, 0x22BB33CC02ULL};
    case ImageFamily::Cifar:
      return {0.50, 2.5, 0.45, 3, 0x33CC44DD03ULL};
  }
  throw Error("unknown image family");
}

/// Smooth class template: sum of low-frequency sinusoids with
/// class-seeded coefficients, sampled continuously so it can be evaluated
/// at shifted (sub-pixel) coordinates.
class TemplateField {
 public:
  TemplateField(std::uint64_t seed, int num_waves = 6) {
    Rng rng(seed);
    waves_.reserve(static_cast<std::size_t>(num_waves));
    for (int k = 0; k < num_waves; ++k) {
      waves_.push_back(Wave{
          rng.uniform(0.5, 2.5),   // fx (cycles per image)
          rng.uniform(0.5, 2.5),   // fy
          rng.uniform(0.0, 2.0 * kPi),
          rng.uniform(0.4, 1.0),
      });
    }
  }

  double value(double u, double v) const {
    // u, v in [0, 1].
    double s = 0.0;
    for (const Wave& w : waves_) {
      s += w.amp * std::sin(2.0 * kPi * (w.fx * u + w.fy * v) + w.phase);
    }
    return s;
  }

 private:
  struct Wave {
    double fx, fy, phase, amp;
  };
  std::vector<Wave> waves_;
};

}  // namespace

RawImageDataset generate_images(const ImageGenConfig& config) {
  QNAT_CHECK(!config.class_ids.empty(), "no classes requested");
  QNAT_CHECK(config.samples_per_class > 0, "need at least one sample");
  QNAT_CHECK(config.image_size >= 8, "image too small");
  const FamilyParams fam = family_params(config.family);

  // Per-class template fields (plus one extra per class for blending).
  std::vector<std::vector<TemplateField>> fields;
  fields.reserve(config.class_ids.size());
  for (const int cls : config.class_ids) {
    std::vector<TemplateField> per_channel;
    for (int c = 0; c < fam.channels; ++c) {
      per_channel.emplace_back(fam.family_seed * 1315423911ULL +
                               static_cast<std::uint64_t>(cls) * 2654435761ULL +
                               static_cast<std::uint64_t>(c) * 97531ULL);
    }
    fields.push_back(std::move(per_channel));
  }
  // A shared confuser field blends into every class to raise difficulty.
  const TemplateField confuser(fam.family_seed ^ 0xDEADBEEFULL);

  RawImageDataset out;
  out.class_ids = config.class_ids;
  Rng rng(config.seed);
  const int n = config.image_size;

  for (std::size_t label = 0; label < config.class_ids.size(); ++label) {
    for (int s = 0; s < config.samples_per_class; ++s) {
      Image img;
      img.height = n;
      img.width = n;
      img.channels = fam.channels;
      img.pixels.assign(
          static_cast<std::size_t>(fam.channels) * n * n, 0.0);
      const double dx = rng.uniform(-fam.shift_range, fam.shift_range);
      const double dy = rng.uniform(-fam.shift_range, fam.shift_range);
      const double gain = rng.uniform(0.85, 1.15);
      for (int c = 0; c < fam.channels; ++c) {
        const TemplateField& field = fields[label][static_cast<std::size_t>(c)];
        for (int y = 0; y < n; ++y) {
          for (int x = 0; x < n; ++x) {
            const double u = (x + dx) / n;
            const double v = (y + dy) / n;
            double value = (1.0 - fam.blend) * field.value(u, v) +
                           fam.blend * confuser.value(u, v);
            value = 0.5 + 0.22 * gain * value;  // map into [0, 1]-ish
            value += rng.gaussian(0.0, fam.pixel_noise);
            img.at(c, y, x) = std::clamp(value, 0.0, 1.0);
          }
        }
      }
      out.images.push_back(std::move(img));
      out.labels.push_back(static_cast<int>(label));
    }
  }

  // Shuffle samples so splits are class-balanced on average.
  const auto perm = rng.permutation(out.images.size());
  RawImageDataset shuffled;
  shuffled.class_ids = out.class_ids;
  shuffled.images.reserve(out.images.size());
  shuffled.labels.reserve(out.labels.size());
  for (const std::size_t i : perm) {
    shuffled.images.push_back(std::move(out.images[i]));
    shuffled.labels.push_back(out.labels[i]);
  }
  return shuffled;
}

RawVectorDataset generate_vowel(const VowelGenConfig& config) {
  QNAT_CHECK(config.num_classes >= 2, "need at least two classes");
  QNAT_CHECK(config.dim >= 2, "need at least two dimensions");
  RawVectorDataset out;
  Rng rng(config.seed);

  // Class means on a simplex-ish arrangement with per-dimension spread.
  std::vector<std::vector<real>> means;
  for (int cls = 0; cls < config.num_classes; ++cls) {
    Rng class_rng(config.seed * 77ULL + static_cast<std::uint64_t>(cls));
    std::vector<real> mean(static_cast<std::size_t>(config.dim));
    for (auto& m : mean) m = class_rng.gaussian(0.0, 1.0);
    means.push_back(std::move(mean));
  }

  for (int cls = 0; cls < config.num_classes; ++cls) {
    for (int s = 0; s < config.samples_per_class; ++s) {
      std::vector<real> sample(static_cast<std::size_t>(config.dim));
      for (std::size_t d = 0; d < sample.size(); ++d) {
        sample[d] = means[static_cast<std::size_t>(cls)][d] +
                    rng.gaussian(0.0, 0.75);
      }
      out.samples.push_back(std::move(sample));
      out.labels.push_back(cls);
    }
  }

  const auto perm = rng.permutation(out.samples.size());
  RawVectorDataset shuffled;
  for (const std::size_t i : perm) {
    shuffled.samples.push_back(std::move(out.samples[i]));
    shuffled.labels.push_back(out.labels[i]);
  }
  return shuffled;
}

RawVectorDataset generate_two_feature_binary(int samples_per_class,
                                             std::uint64_t seed) {
  QNAT_CHECK(samples_per_class > 0, "need at least one sample");
  RawVectorDataset out;
  Rng rng(seed);
  const std::vector<std::vector<real>> means = {{-0.8, -0.8}, {0.8, 0.8}};
  for (int cls = 0; cls < 2; ++cls) {
    for (int s = 0; s < samples_per_class; ++s) {
      out.samples.push_back(
          {means[static_cast<std::size_t>(cls)][0] + rng.gaussian(0.0, 0.45),
           means[static_cast<std::size_t>(cls)][1] + rng.gaussian(0.0, 0.45)});
      out.labels.push_back(cls);
    }
  }
  const auto perm = rng.permutation(out.samples.size());
  RawVectorDataset shuffled;
  for (const std::size_t i : perm) {
    shuffled.samples.push_back(std::move(out.samples[i]));
    shuffled.labels.push_back(out.labels[i]);
  }
  return shuffled;
}

}  // namespace qnat
