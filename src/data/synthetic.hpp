// Synthetic dataset generators.
//
// The original MNIST/Fashion/CIFAR/Vowel files are not available offline,
// so we substitute deterministic class-conditional generators (see
// DESIGN.md §3). Each image class gets a smooth random template built from
// low-frequency sinusoids seeded by (family, class); samples are the
// template plus a random sub-pixel shift and Gaussian pixel noise. After
// the paper's down-sampling to 4x4 / 6x6, what reaches the QNN is a small
// class-separable feature vector of tunable difficulty — the property the
// paper's experiments actually exercise. Family difficulty is ordered like
// the real datasets: MNIST (easiest) < Fashion < CIFAR (hardest; CIFAR
// templates are pairwise blended to overlap and carry heavier noise).
//
// The vowel surrogate draws class-conditional Gaussians in a 20-D
// "formant" space, later reduced to 10 dimensions by PCA exactly as the
// paper does.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace qnat {

/// Grayscale (channels=1) or RGB (channels=3) image, row-major planes,
/// pixel values in [0, 1].
struct Image {
  int height = 0;
  int width = 0;
  int channels = 1;
  std::vector<real> pixels;  // plane-major: [c][y][x]

  real at(int c, int y, int x) const {
    return pixels[static_cast<std::size_t>((c * height + y) * width + x)];
  }
  real& at(int c, int y, int x) {
    return pixels[static_cast<std::size_t>((c * height + y) * width + x)];
  }
};

enum class ImageFamily { Mnist, Fashion, Cifar };

/// Dataset of raw images before preprocessing.
struct RawImageDataset {
  std::vector<Image> images;
  std::vector<int> labels;  // indices into `class_ids`
  std::vector<int> class_ids;
};

struct ImageGenConfig {
  ImageFamily family = ImageFamily::Mnist;
  /// Original class ids to generate (e.g. {3, 6} for MNIST-2).
  std::vector<int> class_ids;
  int samples_per_class = 100;
  int image_size = 28;
  std::uint64_t seed = 42;
};

/// Generates a shuffled dataset; deterministic in `config`.
RawImageDataset generate_images(const ImageGenConfig& config);

/// Raw vowel-style dataset: `dim`-dimensional real vectors.
struct RawVectorDataset {
  std::vector<std::vector<real>> samples;
  std::vector<int> labels;
};

struct VowelGenConfig {
  int num_classes = 4;
  int samples_per_class = 248;  // ≈ the 990-sample Deterding set
  int dim = 20;
  std::uint64_t seed = 7;
};

RawVectorDataset generate_vowel(const VowelGenConfig& config);

/// Two-feature two-class blobs for the paper's Table 3 minimal task.
RawVectorDataset generate_two_feature_binary(int samples_per_class,
                                             std::uint64_t seed);

}  // namespace qnat
