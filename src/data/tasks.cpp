#include "data/tasks.hpp"

#include "common/error.hpp"
#include "data/preprocess.hpp"
#include "data/synthetic.hpp"

namespace qnat {

namespace {

struct ImageTaskSpec {
  ImageFamily family;
  std::vector<int> class_ids;
  int crop = 24;
  int pool = 4;
};

Dataset finish_dataset(Tensor2D features, std::vector<int> labels,
                       int num_classes) {
  Dataset d;
  d.features = std::move(features);
  d.labels = std::move(labels);
  d.num_classes = num_classes;
  return d;
}

TaskBundle build_image_task(const std::string& name, const ImageTaskSpec& spec,
                            int samples_per_class, std::uint64_t seed,
                            int num_qubits) {
  ImageGenConfig config;
  config.family = spec.family;
  config.class_ids = spec.class_ids;
  config.samples_per_class = samples_per_class;
  config.seed = seed;
  const RawImageDataset raw = generate_images(config);

  std::vector<Image> processed;
  processed.reserve(raw.images.size());
  for (const Image& img : raw.images) {
    Image g = to_grayscale(img);
    g = center_crop(g, spec.crop);
    processed.push_back(average_pool(g, spec.pool));
  }
  Dataset all = finish_dataset(flatten_images(processed), raw.labels,
                               static_cast<int>(spec.class_ids.size()));

  SplitDataset split = split_dataset(all, 0.70, 0.10);
  const Standardizer standardizer(split.train.features);
  split.train.features = standardizer.transform(split.train.features);
  split.valid.features = standardizer.transform(split.valid.features);
  split.test.features = standardizer.transform(split.test.features);

  TaskBundle bundle;
  bundle.info = TaskInfo{name, all.num_classes,
                         static_cast<int>(all.feature_dim()), num_qubits};
  bundle.train = std::move(split.train);
  bundle.valid = std::move(split.valid);
  bundle.test = std::move(split.test);
  return bundle;
}

TaskBundle build_vowel_task(int samples_per_class, std::uint64_t seed) {
  VowelGenConfig config;
  config.samples_per_class = samples_per_class;
  config.seed = seed;
  const RawVectorDataset raw = generate_vowel(config);

  Tensor2D features(raw.samples.size(), static_cast<std::size_t>(config.dim));
  for (std::size_t i = 0; i < raw.samples.size(); ++i) {
    features.set_row(i, raw.samples[i]);
  }
  Dataset all = finish_dataset(std::move(features), raw.labels,
                               config.num_classes);

  // Paper: train:valid:test = 6:1:3, PCA to 10 dimensions.
  SplitDataset split = split_dataset(all, 0.6, 0.1);
  const Pca pca(split.train.features, 10);
  split.train.features = pca.transform(split.train.features);
  split.valid.features = pca.transform(split.valid.features);
  split.test.features = pca.transform(split.test.features);
  const Standardizer standardizer(split.train.features);
  split.train.features = standardizer.transform(split.train.features);
  split.valid.features = standardizer.transform(split.valid.features);
  split.test.features = standardizer.transform(split.test.features);

  TaskBundle bundle;
  bundle.info = TaskInfo{"vowel4", 4, 10, 4};
  bundle.train = std::move(split.train);
  bundle.valid = std::move(split.valid);
  bundle.test = std::move(split.test);
  return bundle;
}

TaskBundle build_two_feature_task(int samples_per_class, std::uint64_t seed) {
  const RawVectorDataset raw =
      generate_two_feature_binary(samples_per_class, seed);
  Tensor2D features(raw.samples.size(), 2);
  for (std::size_t i = 0; i < raw.samples.size(); ++i) {
    features.set_row(i, raw.samples[i]);
  }
  Dataset all = finish_dataset(std::move(features), raw.labels, 2);
  SplitDataset split = split_dataset(all, 0.6, 0.1);

  TaskBundle bundle;
  bundle.info = TaskInfo{"twofeature2", 2, 2, 2};
  bundle.train = std::move(split.train);
  bundle.valid = std::move(split.valid);
  bundle.test = std::move(split.test);
  return bundle;
}

}  // namespace

std::vector<std::string> available_tasks() {
  return {"mnist2",   "mnist4",   "mnist10", "fashion2", "fashion4",
          "fashion10", "cifar2",  "vowel4",  "twofeature2"};
}

TaskBundle make_task(const std::string& name, int samples_per_class,
                     std::uint64_t seed) {
  QNAT_CHECK(samples_per_class > 0, "need at least one sample per class");
  if (name == "mnist2") {
    return build_image_task(name, {ImageFamily::Mnist, {3, 6}, 24, 4},
                            samples_per_class, seed, 4);
  }
  if (name == "mnist4") {
    return build_image_task(name, {ImageFamily::Mnist, {0, 1, 2, 3}, 24, 4},
                            samples_per_class, seed, 4);
  }
  if (name == "mnist10") {
    return build_image_task(
        name, {ImageFamily::Mnist, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 24, 6},
        samples_per_class, seed, 10);
  }
  if (name == "fashion2") {
    // dress (3), shirt (6)
    return build_image_task(name, {ImageFamily::Fashion, {3, 6}, 24, 4},
                            samples_per_class, seed, 4);
  }
  if (name == "fashion4") {
    // t-shirt/top (0), trouser (1), pullover (2), dress (3)
    return build_image_task(name, {ImageFamily::Fashion, {0, 1, 2, 3}, 24, 4},
                            samples_per_class, seed, 4);
  }
  if (name == "fashion10") {
    return build_image_task(
        name, {ImageFamily::Fashion, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 24, 6},
        samples_per_class, seed, 10);
  }
  if (name == "cifar2") {
    // frog (6), ship (8); grayscale + crop 28 + pool to 4x4.
    return build_image_task(name, {ImageFamily::Cifar, {6, 8}, 28, 4},
                            samples_per_class, seed, 4);
  }
  if (name == "vowel4") return build_vowel_task(samples_per_class, seed);
  if (name == "twofeature2") {
    return build_two_feature_task(samples_per_class, seed);
  }
  throw Error("unknown task: " + name);
}

}  // namespace qnat
