// The paper's 8 classification tasks (plus the Table 3 two-feature task),
// assembled end-to-end: synthetic generation → §4.1 preprocessing →
// standardization → train/valid/test split.
//
// Task names: "mnist2" (digits 3, 6), "mnist4" (0-3), "mnist10",
// "fashion2" (dress, shirt), "fashion4" (t-shirt/top, trouser, pullover,
// dress), "fashion10", "cifar2" (frog, ship), "vowel4" (hid, hId, had,
// hOd), "twofeature2" (Table 3).
#pragma once

#include <string>
#include <vector>

#include "data/dataset.hpp"

namespace qnat {

struct TaskInfo {
  std::string name;
  int num_classes = 0;
  int feature_dim = 0;
  /// Qubits the paper's reference models use for this task.
  int num_qubits = 0;
};

struct TaskBundle {
  TaskInfo info;
  Dataset train;
  Dataset valid;
  Dataset test;
};

/// Names of all available tasks.
std::vector<std::string> available_tasks();

/// Builds a task. `samples_per_class` scales the synthetic dataset size
/// (CPU-budget knob; the relative splits follow the paper: 95/5 train/
/// valid for image tasks, 6:1:3 for vowel). Deterministic in (name, seed).
TaskBundle make_task(const std::string& name, int samples_per_class = 120,
                     std::uint64_t seed = 42);

}  // namespace qnat
