#include "grad/adjoint.hpp"

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "common/workspace.hpp"
#include "qsim/backend/backend.hpp"
#include "qsim/backend/scalar_kernels.hpp"
#include "qsim/execution.hpp"

namespace qnat {

namespace {

metrics::Counter simd_derivative_dispatches() {
  static metrics::Counter c = metrics::counter(
      "qsim.simd.dispatch_derivative", metrics::Stability::PerRun);
  return c;
}

/// Applies O = Σ_q w_q Z_q to `state` (diagonal in the computational
/// basis), writing into `out` (a |0...0>-initialized lease of the same
/// width). The diagonal coefficient c(i) = Σ_q ±w_q is read from two
/// precomputed half-register tables — L over the low ceil(n/2) qubits,
/// H over the rest — built incrementally in O(sqrt(dim)): setting bit t
/// on top of pattern j flips w_t's sign, so T[j | 2^t] = T[j] - 2 w_t.
void apply_observable(const StateVector& state, std::span<const real> weights,
                      StateVector& out) {
  const int nq = state.num_qubits();
  const int low_bits = (nq + 1) / 2;
  const std::size_t low_size = std::size_t{1} << low_bits;
  const std::size_t high_size = std::size_t{1} << (nq - low_bits);
  std::vector<double> tables = ws::acquire_reals(low_size + high_size);
  double* low = tables.data();
  double* high = tables.data() + low_size;
  double base = 0.0;
  for (int q = 0; q < low_bits; ++q) base += weights[static_cast<std::size_t>(q)];
  low[0] = base;
  for (int t = 0; t < low_bits; ++t) {
    const std::size_t bit = std::size_t{1} << t;
    const double twice = 2.0 * weights[static_cast<std::size_t>(t)];
    for (std::size_t j = 0; j < bit; ++j) low[j | bit] = low[j] - twice;
  }
  base = 0.0;
  for (int q = low_bits; q < nq; ++q) base += weights[static_cast<std::size_t>(q)];
  high[0] = base;
  for (int t = 0; t < nq - low_bits; ++t) {
    const std::size_t bit = std::size_t{1} << t;
    const double twice = 2.0 * weights[static_cast<std::size_t>(low_bits + t)];
    for (std::size_t j = 0; j < bit; ++j) high[j | bit] = high[j] - twice;
  }
  const std::size_t low_mask = low_size - 1;
  const cplx* in = state.amplitudes().data();
  cplx* dst = out.mutable_amplitudes();
  for (std::size_t i = 0; i < state.dim(); ++i) {
    dst[i] = (low[i & low_mask] + high[i >> low_bits]) * in[i];
  }
  ws::release_reals(std::move(tables));
}

/// Computes <bra| dU |ket> for a 1- or 2-qubit derivative matrix without
/// materializing dU|ket> — the adjoint sweep's hot path.
cplx derivative_inner(const StateVector& bra, const StateVector& ket,
                      const Gate& gate, const CMatrix& d) {
  const cplx* bp = bra.amplitudes().data();
  const cplx* kp = ket.amplitudes().data();
  const backend::Backend& be = backend::active();
  if (gate.num_qubits() == 1) {
    const std::size_t stride = std::size_t{1} << gate.qubits[0];
    const cplx d00 = d(0, 0), d01 = d(0, 1), d10 = d(1, 0), d11 = d(1, 1);
    const std::size_t n = ket.dim();
    const bool vec = be.caps().vectorized;
    if (vec) simd_derivative_dispatches().inc();
    const backend::KernelTable& kt =
        vec ? be.kernels() : backend::scalar_kernels();
    return kt.derivative_inner_1q(bp, kp, n, stride, d00, d01, d10, d11);
  }
  const std::size_t sa = std::size_t{1} << gate.qubits[0];
  const std::size_t sb = std::size_t{1} << gate.qubits[1];
  const std::size_t lo = sa < sb ? sa : sb;
  const std::size_t hi = sa < sb ? sb : sa;
  const std::size_t quarter = ket.dim() >> 2;
  cplx flat[16];
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      flat[4 * r + c] =
          d(static_cast<std::size_t>(r), static_cast<std::size_t>(c));
    }
  }
  const bool vec = be.caps().vectorized && lo >= be.caps().min_fast_2q_lo;
  if (vec) simd_derivative_dispatches().inc();
  const backend::KernelTable& kt =
      vec ? be.kernels() : backend::scalar_kernels();
  return kt.derivative_inner_2q(bp, kp, quarter, lo, hi, sa, sb, flat);
}

}  // namespace

AdjointResult adjoint_vjp(const Circuit& circuit, const ParamVector& params,
                          std::span<const real> cotangent) {
  QNAT_CHECK(cotangent.size() ==
                 static_cast<std::size_t>(circuit.num_qubits()),
             "cotangent must have one entry per qubit");
  QNAT_TRACE_SCOPE("grad.adjoint");
  static metrics::Counter invocations =
      metrics::counter("grad.adjoint.invocations");
  invocations.inc();
  AdjointResult result;
  result.gradient.assign(static_cast<std::size_t>(circuit.num_params()), 0.0);

  // Forward pass runs the fused compiled program (memoized on the circuit
  // fingerprint); the backward sweep below must walk the *original*
  // parameterized gate list, since each gate is undone and differentiated
  // individually. Fusion never merges parameterized gates (they are
  // fusion barriers), so both views agree at every parameterized cut.
  ScopedState ket_lease(circuit.num_qubits());
  StateVector& ket = ket_lease.get();
  run_circuit_inplace(circuit, params, ket);
  result.expectations = ket.expectations_z();

  if (circuit.num_params() == 0) return result;

  // bra = O |psi>; L = <psi|O|psi> = <bra|ket> (real).
  ScopedState bra_lease(circuit.num_qubits());
  StateVector& bra = bra_lease.get();
  apply_observable(ket, cotangent, bra);

  // Backward sweep: after processing gate k, ket is the state *before*
  // gate k and bra is O-propagated to the same cut.
  const auto& gates = circuit.gates();
  for (std::size_t gi = gates.size(); gi-- > 0;) {
    const Gate& gate = gates[gi];
    ket.apply_gate_adjoint(gate, params);
    if (gate.is_parameterized()) {
      const std::vector<real> values = gate.eval_params(params);
      for (int k = 0; k < gate.num_params(); ++k) {
        const ParamExpr& expr = gate.params[static_cast<std::size_t>(k)];
        if (expr.is_constant()) continue;
        // dL/d(angle) = 2 Re(<bra| dU |ket_before>)
        const CMatrix d = gate.matrix_derivative(values, k);
        const real g = 2.0 * derivative_inner(bra, ket, gate, d).real();
        for (const auto& term : expr.terms) {
          result.gradient[static_cast<std::size_t>(term.id)] +=
              term.scale * g;
        }
      }
    }
    bra.apply_gate_adjoint(gate, params);
  }
  return result;
}

AdjointResult adjoint_vjp_fused(const Circuit& circuit,
                                const CompiledProgram& program,
                                const ParamVector& params,
                                std::span<const real> cotangent,
                                std::span<const cplx> final_amplitudes) {
  QNAT_CHECK(cotangent.size() ==
                 static_cast<std::size_t>(circuit.num_qubits()),
             "cotangent must have one entry per qubit");
  QNAT_CHECK(program.num_qubits() == circuit.num_qubits(),
             "program/circuit qubit count mismatch");
  QNAT_TRACE_SCOPE("grad.adjoint_fused");
  static metrics::Counter invocations =
      metrics::counter("grad.adjoint.fused_invocations");
  invocations.inc();
  AdjointResult result;
  result.gradient.assign(static_cast<std::size_t>(circuit.num_params()), 0.0);

  // Recompute the forward state only when the caller cannot supply it.
  // The training engine caches each sample's final block state during the
  // forward pass, so the sweep starts from a copy instead of re-running
  // the whole program.
  ScopedState ket_lease(circuit.num_qubits());
  StateVector& ket = ket_lease.get();
  if (final_amplitudes.empty()) {
    program.run(ket, params);
  } else {
    QNAT_CHECK(final_amplitudes.size() == ket.dim(),
               "cached final state has the wrong dimension");
    std::copy(final_amplitudes.begin(), final_amplitudes.end(),
              ket.mutable_amplitudes());
  }
  result.expectations = ket.expectations_z();

  if (circuit.num_params() == 0) return result;

  ScopedState bra_lease(circuit.num_qubits());
  StateVector& bra = bra_lease.get();
  apply_observable(ket, cotangent, bra);

  // Reverse sweep over the *compiled* ops. A constant (possibly fused)
  // run is undone with one conjugate-transposed matrix shared by ket and
  // bra — kernel classes are closed under dagger (diagonal stays
  // diagonal, anti-diagonal stays anti-diagonal, controlled blocks stay
  // controlled, swap is self-adjoint), so the baked class dispatches the
  // specialized kernel without re-classification. Parameterized gates are
  // fusion barriers, so every differentiable cut of the source circuit is
  // an op boundary and the accumulated gradient matches the unfused sweep
  // up to floating-point reassociation of the fused constant products.
  const auto& ops = program.ops();
  for (std::size_t oi = ops.size(); oi-- > 0;) {
    const CompiledOp& op = ops[oi];
    if (!op.parameterized) {
      if (op.kernel == KernelClass::Identity) continue;
      const CMatrix adj = op.matrix.adjoint();
      if (op.num_qubits == 1) {
        apply_classified_1q(ket, op.kernel, adj, op.q0);
        apply_classified_1q(bra, op.kernel, adj, op.q0);
      } else {
        apply_classified_2q(ket, op.kernel, adj, op.q0, op.q1);
        apply_classified_2q(bra, op.kernel, adj, op.q0, op.q1);
      }
      continue;
    }
    const Gate& gate = op.gate;
    const std::vector<real> values = gate.eval_params(params);
    const CMatrix madj = gate.matrix(values).adjoint();
    if (gate.num_qubits() == 1) {
      apply_matrix_1q(ket, madj, gate.qubits[0]);
    } else {
      apply_matrix_2q(ket, madj, gate.qubits[0], gate.qubits[1]);
    }
    for (int k = 0; k < gate.num_params(); ++k) {
      const ParamExpr& expr = gate.params[static_cast<std::size_t>(k)];
      if (expr.is_constant()) continue;
      const CMatrix d = gate.matrix_derivative(values, k);
      const real g = 2.0 * derivative_inner(bra, ket, gate, d).real();
      for (const auto& term : expr.terms) {
        result.gradient[static_cast<std::size_t>(term.id)] += term.scale * g;
      }
    }
    if (gate.num_qubits() == 1) {
      apply_matrix_1q(bra, madj, gate.qubits[0]);
    } else {
      apply_matrix_2q(bra, madj, gate.qubits[0], gate.qubits[1]);
    }
  }
  return result;
}

std::vector<std::vector<real>> adjoint_jacobian(const Circuit& circuit,
                                                const ParamVector& params) {
  const int nq = circuit.num_qubits();
  std::vector<std::vector<real>> jac;
  jac.reserve(static_cast<std::size_t>(nq));
  std::vector<real> cotangent(static_cast<std::size_t>(nq), 0.0);
  for (int q = 0; q < nq; ++q) {
    cotangent[static_cast<std::size_t>(q)] = 1.0;
    jac.push_back(adjoint_vjp(circuit, params, cotangent).gradient);
    cotangent[static_cast<std::size_t>(q)] = 0.0;
  }
  return jac;
}

}  // namespace qnat
