#include "grad/adjoint.hpp"

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "qsim/execution.hpp"

namespace qnat {

namespace {

/// Applies O = Σ_q w_q Z_q to `state` (diagonal in the computational
/// basis), writing into `out`.
StateVector apply_observable(const StateVector& state,
                             std::span<const real> weights) {
  StateVector out = state;
  const int nq = state.num_qubits();
  for (std::size_t i = 0; i < state.dim(); ++i) {
    real c = 0.0;
    for (int q = 0; q < nq; ++q) {
      c += (i & (std::size_t{1} << q)) ? -weights[static_cast<std::size_t>(q)]
                                       : weights[static_cast<std::size_t>(q)];
    }
    out.set_amplitude(i, c * state.amplitude(i));
  }
  return out;
}

/// Computes <bra| dU |ket> for a 1- or 2-qubit derivative matrix without
/// materializing dU|ket> — the adjoint sweep's hot path.
cplx derivative_inner(const StateVector& bra, const StateVector& ket,
                      const Gate& gate, const CMatrix& d) {
  cplx acc{0.0, 0.0};
  if (gate.num_qubits() == 1) {
    const std::size_t stride = std::size_t{1} << gate.qubits[0];
    const cplx d00 = d(0, 0), d01 = d(0, 1), d10 = d(1, 0), d11 = d(1, 1);
    const std::size_t n = ket.dim();
    for (std::size_t base = 0; base < n; base += 2 * stride) {
      for (std::size_t i = base; i < base + stride; ++i) {
        const cplx k0 = ket.amplitude(i);
        const cplx k1 = ket.amplitude(i + stride);
        acc += std::conj(bra.amplitude(i)) * (d00 * k0 + d01 * k1);
        acc += std::conj(bra.amplitude(i + stride)) * (d10 * k0 + d11 * k1);
      }
    }
    return acc;
  }
  const std::size_t sa = std::size_t{1} << gate.qubits[0];
  const std::size_t sb = std::size_t{1} << gate.qubits[1];
  const std::size_t mask = sa | sb;
  const std::size_t n = ket.dim();
  for (std::size_t i = 0; i < n; ++i) {
    if (i & mask) continue;
    const std::size_t idx[4] = {i, i | sb, i | sa, i | sa | sb};
    cplx k[4];
    for (int j = 0; j < 4; ++j) k[j] = ket.amplitude(idx[j]);
    for (int r = 0; r < 4; ++r) {
      cplx row{0.0, 0.0};
      for (int col = 0; col < 4; ++col) {
        row += d(static_cast<std::size_t>(r), static_cast<std::size_t>(col)) *
               k[col];
      }
      acc += std::conj(bra.amplitude(idx[static_cast<std::size_t>(r)])) * row;
    }
  }
  return acc;
}

}  // namespace

AdjointResult adjoint_vjp(const Circuit& circuit, const ParamVector& params,
                          std::span<const real> cotangent) {
  QNAT_CHECK(cotangent.size() ==
                 static_cast<std::size_t>(circuit.num_qubits()),
             "cotangent must have one entry per qubit");
  QNAT_TRACE_SCOPE("grad.adjoint");
  static metrics::Counter invocations =
      metrics::counter("grad.adjoint.invocations");
  invocations.inc();
  AdjointResult result;
  result.gradient.assign(static_cast<std::size_t>(circuit.num_params()), 0.0);

  // Forward pass runs the fused compiled program (memoized on the circuit
  // fingerprint); the backward sweep below must walk the *original*
  // parameterized gate list, since each gate is undone and differentiated
  // individually. Fusion never merges parameterized gates (they are
  // fusion barriers), so both views agree at every parameterized cut.
  StateVector ket = run_circuit(circuit, params);
  result.expectations = ket.expectations_z();

  if (circuit.num_params() == 0) return result;

  // bra = O |psi>; L = <psi|O|psi> = <bra|ket> (real).
  StateVector bra = apply_observable(ket, cotangent);

  // Backward sweep: after processing gate k, ket is the state *before*
  // gate k and bra is O-propagated to the same cut.
  const auto& gates = circuit.gates();
  for (std::size_t gi = gates.size(); gi-- > 0;) {
    const Gate& gate = gates[gi];
    ket.apply_gate_adjoint(gate, params);
    if (gate.is_parameterized()) {
      const std::vector<real> values = gate.eval_params(params);
      for (int k = 0; k < gate.num_params(); ++k) {
        const ParamExpr& expr = gate.params[static_cast<std::size_t>(k)];
        if (expr.is_constant()) continue;
        // dL/d(angle) = 2 Re(<bra| dU |ket_before>)
        const CMatrix d = gate.matrix_derivative(values, k);
        const real g = 2.0 * derivative_inner(bra, ket, gate, d).real();
        for (const auto& term : expr.terms) {
          result.gradient[static_cast<std::size_t>(term.id)] +=
              term.scale * g;
        }
      }
    }
    bra.apply_gate_adjoint(gate, params);
  }
  return result;
}

std::vector<std::vector<real>> adjoint_jacobian(const Circuit& circuit,
                                                const ParamVector& params) {
  const int nq = circuit.num_qubits();
  std::vector<std::vector<real>> jac;
  jac.reserve(static_cast<std::size_t>(nq));
  std::vector<real> cotangent(static_cast<std::size_t>(nq), 0.0);
  for (int q = 0; q < nq; ++q) {
    cotangent[static_cast<std::size_t>(q)] = 1.0;
    jac.push_back(adjoint_vjp(circuit, params, cotangent).gradient);
    cotangent[static_cast<std::size_t>(q)] = 0.0;
  }
  return jac;
}

}  // namespace qnat
