// Adjoint-mode differentiation of circuit expectation values.
//
// Computes d<psi(θ)| O |psi(θ)> / dθ for O = Σ_q w_q Z_q in a single
// backward sweep over the circuit (O(#gates) matrix applications, two
// auxiliary statevectors) — the same algorithm PyTorch-backed simulators
// use under the hood, reimplemented here for the C++ training loop.
//
// The vector-Jacobian-product form is the workhorse: the QNN trainer
// backpropagates a classical cotangent w_q = dL/dy_q into the circuit and
// receives dL/dθ for *all* parameters at once, including encoder-angle
// parameters (which become the upstream gradient of the previous block).
//
// Noise-injected circuits differentiate with no special casing: sampled
// Pauli error gates are constant unitaries, transparent to the sweep.
#pragma once

#include <span>
#include <vector>

#include "qsim/circuit.hpp"
#include "qsim/program.hpp"
#include "qsim/statevector.hpp"

namespace qnat {

/// Result of one adjoint sweep.
struct AdjointResult {
  /// Per-qubit Z expectations of the forward pass.
  std::vector<real> expectations;
  /// dL/dθ for L = Σ_q cotangent[q] * expectations[q]; length =
  /// circuit.num_params().
  ParamVector gradient;
};

/// Vector-Jacobian product: forward pass + one adjoint sweep.
/// `cotangent` has one weight per qubit.
AdjointResult adjoint_vjp(const Circuit& circuit, const ParamVector& params,
                          std::span<const real> cotangent);

/// Adjoint sweep over the *compiled* program of `circuit` — the training
/// engine's fast path. Constant fused runs are undone with one
/// conjugate-transposed matrix dispatched through their baked kernel
/// class, and when `final_amplitudes` carries the circuit's forward state
/// (cached by the batched forward pass) the internal forward re-run is
/// skipped entirely. Gradients match `adjoint_vjp` up to floating-point
/// reassociation of fused constant products; per-call results are a pure
/// function of the arguments, so the data-parallel trainer's worker-count
/// invariance is preserved.
AdjointResult adjoint_vjp_fused(const Circuit& circuit,
                                const CompiledProgram& program,
                                const ParamVector& params,
                                std::span<const real> cotangent,
                                std::span<const cplx> final_amplitudes = {});

/// Full Jacobian J[q][p] = d(exp_z[q]) / d(params[p]), computed with one
/// adjoint sweep per qubit.
std::vector<std::vector<real>> adjoint_jacobian(const Circuit& circuit,
                                                const ParamVector& params);

}  // namespace qnat
