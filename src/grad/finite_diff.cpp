#include "grad/finite_diff.hpp"

#include "common/error.hpp"

namespace qnat {

ParamVector finite_diff_gradient(const Circuit& circuit,
                                 const ParamVector& params,
                                 std::span<const real> cotangent,
                                 const CircuitExecutor& executor,
                                 real step) {
  QNAT_CHECK(step > 0.0, "finite difference step must be positive");
  QNAT_CHECK(cotangent.size() ==
                 static_cast<std::size_t>(circuit.num_qubits()),
             "cotangent must have one entry per qubit");
  auto project = [&](const std::vector<real>& expectations) {
    real s = 0.0;
    for (std::size_t q = 0; q < expectations.size(); ++q) {
      s += cotangent[q] * expectations[q];
    }
    return s;
  };
  ParamVector grad(static_cast<std::size_t>(circuit.num_params()), 0.0);
  ParamVector work = params;
  for (std::size_t p = 0; p < grad.size(); ++p) {
    const real saved = work[p];
    work[p] = saved + step;
    const real fp = project(executor(circuit, work));
    work[p] = saved - step;
    const real fm = project(executor(circuit, work));
    work[p] = saved;
    grad[p] = (fp - fm) / (2.0 * step);
  }
  return grad;
}

}  // namespace qnat
