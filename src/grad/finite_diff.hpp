// Central finite-difference gradients — the ground truth the test suite
// checks adjoint and parameter-shift gradients against. Never used in
// training (O(#params) circuit evaluations and O(h^2) truncation error).
#pragma once

#include <span>

#include "grad/parameter_shift.hpp"
#include "qsim/circuit.hpp"

namespace qnat {

/// Central-difference gradient of L = Σ_q cotangent[q] * exp_z[q].
ParamVector finite_diff_gradient(const Circuit& circuit,
                                 const ParamVector& params,
                                 std::span<const real> cotangent,
                                 const CircuitExecutor& executor,
                                 real step = 1e-5);

}  // namespace qnat
