#include "grad/parameter_shift.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"
#include "qsim/execution.hpp"

namespace qnat {

namespace {

bool is_controlled_param_gate(GateType type) {
  switch (type) {
    case GateType::CRX:
    case GateType::CRY:
    case GateType::CRZ:
    case GateType::CP:
    case GateType::CU3:
      return true;
    default:
      return false;
  }
}

/// Weighted sum of per-qubit expectations.
real project(const std::vector<real>& expectations,
             std::span<const real> cotangent) {
  real s = 0.0;
  for (std::size_t q = 0; q < expectations.size(); ++q) {
    s += cotangent[q] * expectations[q];
  }
  return s;
}

}  // namespace

CircuitExecutor make_ideal_executor() {
  return [](const Circuit& circuit, const ParamVector& params) {
    // Executes through the memoized compiled program: the shift loop
    // evaluates the same 2P+1 shifted circuits every training step, so
    // after the first step every evaluation is a cache hit running fused
    // specialized kernels.
    return measure_expectations(*shared_program(circuit), params);
  };
}

ParamVector parameter_shift_gradient(const Circuit& circuit,
                                     const ParamVector& params,
                                     std::span<const real> cotangent,
                                     const CircuitExecutor& executor,
                                     std::vector<real>* out_expectations) {
  QNAT_CHECK(cotangent.size() ==
                 static_cast<std::size_t>(circuit.num_qubits()),
             "cotangent must have one entry per qubit");
  QNAT_TRACE_SCOPE("grad.parameter_shift");
  static metrics::Counter invocations =
      metrics::counter("grad.shift.invocations");
  invocations.inc();
  ParamVector grad(static_cast<std::size_t>(circuit.num_params()), 0.0);

  if (out_expectations != nullptr) {
    *out_expectations = executor(circuit, params);
  }

  // Collect every shifted evaluation as an independent task, fan the
  // tasks out over the worker pool (one working copy of the circuit per
  // chunk), then combine the values serially in task order. The executor
  // must be safe to call concurrently (see header); results are
  // bit-identical at any thread count.
  struct ShiftTask {
    std::size_t gate_index;
    int slot;
    real shift;
  };
  std::vector<ShiftTask> tasks;
  const auto& gates = circuit.gates();
  for (std::size_t gi = 0; gi < gates.size(); ++gi) {
    const Gate& gate = gates[gi];
    for (int k = 0; k < gate.num_params(); ++k) {
      if (gate.params[static_cast<std::size_t>(k)].is_constant()) continue;
      if (is_controlled_param_gate(gate.type)) {
        tasks.push_back({gi, k, kPi / 2});
        tasks.push_back({gi, k, -kPi / 2});
        tasks.push_back({gi, k, 3 * kPi / 2});
        tasks.push_back({gi, k, -3 * kPi / 2});
      } else {
        tasks.push_back({gi, k, kPi / 2});
        tasks.push_back({gi, k, -kPi / 2});
      }
    }
  }

  static metrics::Counter shift_circuits =
      metrics::counter("grad.shift.circuits");
  shift_circuits.add(tasks.size());

  std::vector<real> values(tasks.size(), 0.0);
  parallel_for_chunks(tasks.size(), [&](std::size_t begin, std::size_t end) {
    // Mutate, evaluate, restore on a per-chunk working copy.
    Circuit shifted = circuit;
    for (std::size_t t = begin; t < end; ++t) {
      Gate& g = shifted.mutable_gate(tasks[t].gate_index);
      ParamExpr& expr = g.params[static_cast<std::size_t>(tasks[t].slot)];
      const real saved = expr.offset;
      expr.offset += tasks[t].shift;
      values[t] = project(executor(shifted, params), cotangent);
      expr.offset = saved;
    }
  });

  const real c_plus = (std::sqrt(2.0) + 1.0) / (4.0 * std::sqrt(2.0));
  const real c_minus = (std::sqrt(2.0) - 1.0) / (4.0 * std::sqrt(2.0));

  std::size_t t = 0;
  for (std::size_t gi = 0; gi < gates.size(); ++gi) {
    const Gate& gate = gates[gi];
    for (int k = 0; k < gate.num_params(); ++k) {
      const ParamExpr& expr = gate.params[static_cast<std::size_t>(k)];
      if (expr.is_constant()) continue;
      real dangle = 0.0;
      if (is_controlled_param_gate(gate.type)) {
        dangle = c_plus * (values[t] - values[t + 1]) -
                 c_minus * (values[t + 2] - values[t + 3]);
        t += 4;
      } else {
        dangle = 0.5 * (values[t] - values[t + 1]);
        t += 2;
      }
      for (const auto& term : expr.terms) {
        grad[static_cast<std::size_t>(term.id)] += term.scale * dangle;
      }
    }
  }
  return grad;
}

int parameter_shift_num_evaluations(const Circuit& circuit) {
  int n = 0;
  for (const auto& gate : circuit.gates()) {
    for (int k = 0; k < gate.num_params(); ++k) {
      if (gate.params[static_cast<std::size_t>(k)].is_constant()) continue;
      n += is_controlled_param_gate(gate.type) ? 4 : 2;
    }
  }
  return n;
}

}  // namespace qnat
