#include "grad/parameter_shift.hpp"

#include <cmath>

#include "common/error.hpp"
#include "qsim/execution.hpp"

namespace qnat {

namespace {

bool is_controlled_param_gate(GateType type) {
  switch (type) {
    case GateType::CRX:
    case GateType::CRY:
    case GateType::CRZ:
    case GateType::CP:
    case GateType::CU3:
      return true;
    default:
      return false;
  }
}

/// Weighted sum of per-qubit expectations.
real project(const std::vector<real>& expectations,
             std::span<const real> cotangent) {
  real s = 0.0;
  for (std::size_t q = 0; q < expectations.size(); ++q) {
    s += cotangent[q] * expectations[q];
  }
  return s;
}

}  // namespace

CircuitExecutor make_ideal_executor() {
  return [](const Circuit& circuit, const ParamVector& params) {
    return measure_expectations(circuit, params);
  };
}

ParamVector parameter_shift_gradient(const Circuit& circuit,
                                     const ParamVector& params,
                                     std::span<const real> cotangent,
                                     const CircuitExecutor& executor,
                                     std::vector<real>* out_expectations) {
  QNAT_CHECK(cotangent.size() ==
                 static_cast<std::size_t>(circuit.num_qubits()),
             "cotangent must have one entry per qubit");
  ParamVector grad(static_cast<std::size_t>(circuit.num_params()), 0.0);

  if (out_expectations != nullptr) {
    *out_expectations = executor(circuit, params);
  }

  // Shifted evaluation of a single gate occurrence: clone the circuit and
  // add `shift` to the offset of that gate's angle expression.
  Circuit shifted = circuit;
  auto eval_shifted = [&](std::size_t gate_index, int slot,
                          real shift) -> real {
    // Mutate, evaluate, restore on the working copy.
    Gate& g = shifted.mutable_gate(gate_index);
    ParamExpr& expr = g.params[static_cast<std::size_t>(slot)];
    const real saved = expr.offset;
    expr.offset += shift;
    const real value = project(executor(shifted, params), cotangent);
    expr.offset = saved;
    return value;
  };

  const real c_plus = (std::sqrt(2.0) + 1.0) / (4.0 * std::sqrt(2.0));
  const real c_minus = (std::sqrt(2.0) - 1.0) / (4.0 * std::sqrt(2.0));

  const auto& gates = circuit.gates();
  for (std::size_t gi = 0; gi < gates.size(); ++gi) {
    const Gate& gate = gates[gi];
    for (int k = 0; k < gate.num_params(); ++k) {
      const ParamExpr& expr = gate.params[static_cast<std::size_t>(k)];
      if (expr.is_constant()) continue;
      real dangle = 0.0;
      if (is_controlled_param_gate(gate.type)) {
        const real f1p = eval_shifted(gi, k, kPi / 2);
        const real f1m = eval_shifted(gi, k, -kPi / 2);
        const real f2p = eval_shifted(gi, k, 3 * kPi / 2);
        const real f2m = eval_shifted(gi, k, -3 * kPi / 2);
        dangle = c_plus * (f1p - f1m) - c_minus * (f2p - f2m);
      } else {
        const real fp = eval_shifted(gi, k, kPi / 2);
        const real fm = eval_shifted(gi, k, -kPi / 2);
        dangle = 0.5 * (fp - fm);
      }
      for (const auto& term : expr.terms) {
        grad[static_cast<std::size_t>(term.id)] += term.scale * dangle;
      }
    }
  }
  return grad;
}

int parameter_shift_num_evaluations(const Circuit& circuit) {
  int n = 0;
  for (const auto& gate : circuit.gates()) {
    for (int k = 0; k < gate.num_params(); ++k) {
      if (gate.params[static_cast<std::size_t>(k)].is_constant()) continue;
      n += is_controlled_param_gate(gate.type) ? 4 : 2;
    }
  }
  return n;
}

}  // namespace qnat
