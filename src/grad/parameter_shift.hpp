// Parameter-shift rule gradients.
//
// Unlike the adjoint sweep (which needs direct statevector access), the
// parameter-shift rule only needs the ability to *run* the circuit and read
// expectations — which is exactly what real quantum hardware offers. The
// paper's Table 3 trains directly on quantum devices this way; we expose
// the rule over a caller-supplied executor so the "device" can be the
// analytic simulator, a finite-shot noisy simulator, or anything else.
//
// Exactness: we shift each *gate occurrence* independently and use
//   - the two-term rule  f' = [f(+π/2) − f(−π/2)] / 2
//     for single-qubit rotations and two-qubit Pauli-product rotations
//     (trig polynomials with frequencies ⊆ {0, 1});
//   - the four-term rule
//     f' = c+ [f(+π/2) − f(−π/2)] − c− [f(+3π/2) − f(−3π/2)],
//     c± = (√2 ± 1) / (4√2),
//     for controlled-rotation parameters (frequencies ⊆ {0, 1/2, 1}).
// Both rules are exact for the gate set in this library; tests validate
// them against adjoint and finite-difference gradients.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "qsim/circuit.hpp"

namespace qnat {

/// Runs a circuit under a parameter binding and returns per-qubit Z
/// expectations. The executor abstracts "the device".
///
/// Thread-safety contract: the gradient engine evaluates shifted circuits
/// concurrently, so an executor must be safe to call from multiple
/// threads, and — for thread-count-invariant results — must be a pure
/// function of (circuit, params): any randomness is derived from those
/// inputs (e.g. seeded by Circuit::fingerprint), never drawn from a
/// shared mutable generator.
using CircuitExecutor = std::function<std::vector<real>(
    const Circuit& circuit, const ParamVector& params)>;

/// An executor backed by the noise-free analytic simulator.
CircuitExecutor make_ideal_executor();

/// Gradient of L = Σ_q cotangent[q] * exp_z[q] w.r.t. all circuit
/// parameters using per-occurrence parameter shifts evaluated through
/// `executor`. Cost: 2 or 4 executor calls per parameterized gate slot,
/// plus one call for the unshifted expectations (returned via
/// `out_expectations` when non-null).
ParamVector parameter_shift_gradient(const Circuit& circuit,
                                     const ParamVector& params,
                                     std::span<const real> cotangent,
                                     const CircuitExecutor& executor,
                                     std::vector<real>* out_expectations = nullptr);

/// Number of executor evaluations parameter_shift_gradient will make
/// (excluding the unshifted forward call). Used by cost accounting tests.
int parameter_shift_num_evaluations(const Circuit& circuit);

}  // namespace qnat
