#include "nn/losses.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace qnat {

Tensor2D softmax(const Tensor2D& logits) {
  Tensor2D out(logits.rows(), logits.cols());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    real max_logit = logits(r, 0);
    for (std::size_t c = 1; c < logits.cols(); ++c) {
      max_logit = std::max(max_logit, logits(r, c));
    }
    real denom = 0.0;
    for (std::size_t c = 0; c < logits.cols(); ++c) {
      out(r, c) = std::exp(logits(r, c) - max_logit);
      denom += out(r, c);
    }
    for (std::size_t c = 0; c < logits.cols(); ++c) out(r, c) /= denom;
  }
  return out;
}

real cross_entropy_loss(const Tensor2D& logits,
                        const std::vector<int>& labels) {
  QNAT_CHECK(labels.size() == logits.rows(), "label count mismatch");
  const Tensor2D probs = softmax(logits);
  real loss = 0.0;
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const int y = labels[r];
    QNAT_CHECK(y >= 0 && static_cast<std::size_t>(y) < logits.cols(),
               "label out of range");
    loss -= std::log(std::max(probs(r, static_cast<std::size_t>(y)), 1e-12));
  }
  return loss / static_cast<real>(logits.rows());
}

Tensor2D cross_entropy_grad(const Tensor2D& logits,
                            const std::vector<int>& labels) {
  QNAT_CHECK(labels.size() == logits.rows(), "label count mismatch");
  Tensor2D grad = softmax(logits);
  const real inv_batch = 1.0 / static_cast<real>(logits.rows());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    grad(r, static_cast<std::size_t>(labels[r])) -= 1.0;
    for (std::size_t c = 0; c < logits.cols(); ++c) grad(r, c) *= inv_batch;
  }
  return grad;
}

real mse(const Tensor2D& a, const Tensor2D& b) {
  QNAT_CHECK(a.rows() == b.rows() && a.cols() == b.cols(), "shape mismatch");
  QNAT_CHECK(a.rows() > 0 && a.cols() > 0, "mse of empty tensor");
  real s = 0.0;
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    const real d = a.data()[i] - b.data()[i];
    s += d * d;
  }
  return s / static_cast<real>(a.data().size());
}

real accuracy(const Tensor2D& logits, const std::vector<int>& labels) {
  QNAT_CHECK(labels.size() == logits.rows(), "label count mismatch");
  QNAT_CHECK(logits.rows() > 0, "accuracy of empty batch");
  const std::vector<int> predictions = argmax_rows(logits);
  std::size_t correct = 0;
  for (std::size_t r = 0; r < labels.size(); ++r) {
    if (predictions[r] == labels[r]) ++correct;
  }
  return static_cast<real>(correct) / static_cast<real>(labels.size());
}

std::vector<int> argmax_rows(const Tensor2D& logits) {
  std::vector<int> out(logits.rows());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    int best = 0;
    for (std::size_t c = 1; c < logits.cols(); ++c) {
      if (logits(r, c) > logits(r, static_cast<std::size_t>(best))) {
        best = static_cast<int>(c);
      }
    }
    out[r] = best;
  }
  return out;
}

}  // namespace qnat
