// Classifier head: softmax, cross-entropy, and MSE with gradients.
#pragma once

#include <vector>

#include "nn/tensor.hpp"

namespace qnat {

/// Numerically-stable softmax over each row.
Tensor2D softmax(const Tensor2D& logits);

/// Mean cross-entropy of row-softmaxed logits against integer labels.
real cross_entropy_loss(const Tensor2D& logits,
                        const std::vector<int>& labels);

/// Gradient of mean cross-entropy w.r.t. the logits:
/// (softmax - onehot) / batch.
Tensor2D cross_entropy_grad(const Tensor2D& logits,
                            const std::vector<int>& labels);

/// Mean squared error between two equal-shape tensors.
real mse(const Tensor2D& a, const Tensor2D& b);

/// Fraction of rows whose argmax logit equals the label.
real accuracy(const Tensor2D& logits, const std::vector<int>& labels);

/// Row-wise argmax.
std::vector<int> argmax_rows(const Tensor2D& logits);

}  // namespace qnat
