#include "nn/optimizer.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "nn/reduction.hpp"

namespace qnat {

Adam::Adam(std::size_t num_params, AdamConfig config)
    : config_(config), m_(num_params, 0.0), v_(num_params, 0.0) {
  QNAT_CHECK(config.learning_rate > 0.0, "learning rate must be positive");
  QNAT_CHECK(config.beta1 >= 0.0 && config.beta1 < 1.0, "beta1 in [0,1)");
  QNAT_CHECK(config.beta2 >= 0.0 && config.beta2 < 1.0, "beta2 in [0,1)");
}

void Adam::step(ParamVector& params, const ParamVector& gradient,
                real lr_scale) {
  QNAT_CHECK(params.size() == m_.size() && gradient.size() == m_.size(),
             "optimizer state size mismatch");
  static metrics::Counter updates = metrics::counter("nn.optimizer.updates");
  updates.inc();
  ++step_count_;
  const real lr = config_.learning_rate * lr_scale;
  const real bias1 = 1.0 - std::pow(config_.beta1, static_cast<real>(step_count_));
  const real bias2 = 1.0 - std::pow(config_.beta2, static_cast<real>(step_count_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    m_[i] = config_.beta1 * m_[i] + (1.0 - config_.beta1) * gradient[i];
    v_[i] = config_.beta2 * v_[i] + (1.0 - config_.beta2) * gradient[i] * gradient[i];
    const real m_hat = m_[i] / bias1;
    const real v_hat = v_[i] / bias2;
    params[i] -= lr * (m_hat / (std::sqrt(v_hat) + config_.epsilon) +
                       config_.weight_decay * params[i]);
  }
}

void Adam::step_reduced(ParamVector& params,
                        std::span<const ParamVector> unit_gradients,
                        real lr_scale) {
  QNAT_CHECK(!unit_gradients.empty(), "need at least one gradient partial");
  const ParamVector gradient = tree_reduce(unit_gradients);
  step(params, gradient, lr_scale);
}

void Adam::reset() {
  std::fill(m_.begin(), m_.end(), 0.0);
  std::fill(v_.begin(), v_.end(), 0.0);
  step_count_ = 0;
}

}  // namespace qnat
