// Adam optimizer with decoupled weight decay — the paper trains all QNN
// models with Adam, weight decay 1e-4, and a warmup + cosine LR schedule.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace qnat {

struct AdamConfig {
  real learning_rate = 5e-3;
  real beta1 = 0.9;
  real beta2 = 0.999;
  real epsilon = 1e-8;
  /// Decoupled (AdamW-style) weight decay coefficient λ.
  real weight_decay = 1e-4;
};

class Adam {
 public:
  Adam(std::size_t num_params, AdamConfig config = {});

  /// Applies one update: params -= lr * (m̂ / (√v̂ + ε) + λ * params).
  /// `lr_scale` multiplies the configured learning rate (set by the LR
  /// scheduler each step).
  void step(ParamVector& params, const ParamVector& gradient,
            real lr_scale = 1.0);

  /// Apply-after-reduce entry for data-parallel training: folds the
  /// per-unit partial gradients with the deterministic pairwise tree
  /// (see nn/reduction.hpp) and applies a single update. The partials
  /// must already carry their 1/batch scaling; the fold order depends
  /// only on the unit count, so the update is byte-identical at any
  /// worker count.
  void step_reduced(ParamVector& params,
                    std::span<const ParamVector> unit_gradients,
                    real lr_scale = 1.0);

  /// Resets first/second moment accumulators and the step counter.
  void reset();

  long step_count() const { return step_count_; }
  const AdamConfig& config() const { return config_; }

 private:
  AdamConfig config_;
  ParamVector m_;
  ParamVector v_;
  long step_count_ = 0;
};

}  // namespace qnat
