#include "nn/reduction.hpp"

#include "common/error.hpp"

namespace qnat {

namespace {

real tree_sum(std::span<const real> values, std::size_t lo, std::size_t hi) {
  if (hi - lo == 1) return values[lo];
  const std::size_t mid = lo + (hi - lo) / 2;
  return tree_sum(values, lo, mid) + tree_sum(values, mid, hi);
}

void tree_sum_vec(std::span<const ParamVector> parts, std::size_t lo,
                  std::size_t hi, ParamVector& out) {
  if (hi - lo == 1) {
    out = parts[lo];
    return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  tree_sum_vec(parts, lo, mid, out);
  ParamVector right;
  tree_sum_vec(parts, mid, hi, right);
  QNAT_CHECK(right.size() == out.size(),
             "tree_reduce parts must have equal size");
  for (std::size_t i = 0; i < out.size(); ++i) out[i] += right[i];
}

}  // namespace

real tree_reduce(std::span<const real> values) {
  if (values.empty()) return 0.0;
  return tree_sum(values, 0, values.size());
}

void tree_reduce_into(std::span<const ParamVector> parts, ParamVector& out) {
  if (parts.empty()) {
    out.clear();
    return;
  }
  tree_sum_vec(parts, 0, parts.size(), out);
}

ParamVector tree_reduce(std::span<const ParamVector> parts) {
  ParamVector out;
  tree_reduce_into(parts, out);
  return out;
}

}  // namespace qnat
