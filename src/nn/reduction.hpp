// Deterministic fixed-order tree reduction of per-worker partial results.
//
// Data-parallel gradient accumulation must not let the floating-point
// summation order depend on which worker finishes first, or on how many
// workers there are — otherwise "same config, more threads" trains a
// (slightly) different model. The reducers here combine partials with a
// midpoint-recursion pairwise tree whose shape is a pure function of the
// partial *count*: sum[lo,hi) = sum[lo,mid) + sum[mid,hi). Workers write
// their partial into a slot indexed by work-unit position, then one
// thread folds the slots — byte-identical results at any worker count,
// and for any re-sharding that preserves the unit decomposition.
//
// The pairwise tree is also numerically kinder than left-to-right
// accumulation (error grows O(log n) instead of O(n)), which is why the
// full-batch ONQC trainer uses it for its per-sample reduction too.
#pragma once

#include <span>

#include "common/types.hpp"

namespace qnat {

/// Pairwise tree sum of scalars; empty input sums to 0.
real tree_reduce(std::span<const real> values);

/// Element-wise pairwise tree sum of equally-sized vectors into `out`
/// (resized and overwritten). With no parts, `out` becomes empty.
void tree_reduce_into(std::span<const ParamVector> parts, ParamVector& out);

/// Convenience wrapper returning the reduced vector.
ParamVector tree_reduce(std::span<const ParamVector> parts);

}  // namespace qnat
