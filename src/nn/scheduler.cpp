#include "nn/scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace qnat {

WarmupCosineSchedule::WarmupCosineSchedule(long warmup_steps, long total_steps,
                                           real floor)
    : warmup_steps_(warmup_steps), total_steps_(total_steps), floor_(floor) {
  QNAT_CHECK(warmup_steps >= 0, "negative warmup");
  QNAT_CHECK(total_steps > 0, "total steps must be positive");
  QNAT_CHECK(warmup_steps <= total_steps, "warmup exceeds total steps");
  QNAT_CHECK(floor >= 0.0 && floor <= 1.0, "floor must be in [0, 1]");
}

real WarmupCosineSchedule::scale(long step) const {
  step = std::clamp(step, 0L, total_steps_);
  if (warmup_steps_ > 0 && step < warmup_steps_) {
    return static_cast<real>(step + 1) / static_cast<real>(warmup_steps_);
  }
  const long decay_span = total_steps_ - warmup_steps_;
  if (decay_span == 0) return 1.0;
  const real progress =
      static_cast<real>(step - warmup_steps_) / static_cast<real>(decay_span);
  const real cosine = 0.5 * (1.0 + std::cos(kPi * progress));
  return floor_ + (1.0 - floor_) * cosine;
}

}  // namespace qnat
