// Learning-rate schedule: linear warmup followed by cosine decay, matching
// the paper's training recipe (warmup 0 → peak over the first epochs, then
// cosine decay to zero).
#pragma once

#include "common/types.hpp"

namespace qnat {

class WarmupCosineSchedule {
 public:
  /// `warmup_steps` of linear ramp 0 → 1, then cosine decay 1 → `floor`
  /// over the remaining steps up to `total_steps`.
  WarmupCosineSchedule(long warmup_steps, long total_steps, real floor = 0.0);

  /// Multiplicative LR factor at `step` (0-based). Clamped past the end.
  real scale(long step) const;

  long warmup_steps() const { return warmup_steps_; }
  long total_steps() const { return total_steps_; }

 private:
  long warmup_steps_;
  long total_steps_;
  real floor_;
};

}  // namespace qnat
