#include "nn/tensor.hpp"

#include <cmath>

#include "common/error.hpp"

namespace qnat {

Tensor2D::Tensor2D(std::size_t rows, std::size_t cols, real fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Tensor2D Tensor2D::from_rows(
    std::initializer_list<std::initializer_list<real>> rows) {
  Tensor2D t;
  t.rows_ = rows.size();
  t.cols_ = rows.begin() == rows.end() ? 0 : rows.begin()->size();
  t.data_.reserve(t.rows_ * t.cols_);
  for (const auto& r : rows) {
    QNAT_CHECK(r.size() == t.cols_, "ragged row in Tensor2D::from_rows");
    t.data_.insert(t.data_.end(), r.begin(), r.end());
  }
  return t;
}

std::vector<real> Tensor2D::row(std::size_t r) const {
  QNAT_CHECK(r < rows_, "row index out of range");
  return std::vector<real>(data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
                           data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_));
}

void Tensor2D::set_row(std::size_t r, const std::vector<real>& values) {
  QNAT_CHECK(r < rows_, "row index out of range");
  QNAT_CHECK(values.size() == cols_, "row width mismatch");
  std::copy(values.begin(), values.end(),
            data_.begin() + static_cast<std::ptrdiff_t>(r * cols_));
}

std::vector<real> Tensor2D::col_mean() const {
  QNAT_CHECK(rows_ > 0, "mean of empty tensor");
  std::vector<real> mean(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) mean[c] += (*this)(r, c);
  }
  for (auto& m : mean) m /= static_cast<real>(rows_);
  return mean;
}

std::vector<real> Tensor2D::col_std(real epsilon) const {
  const std::vector<real> mean = col_mean();
  std::vector<real> var(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      const real d = (*this)(r, c) - mean[c];
      var[c] += d * d;
    }
  }
  std::vector<real> out(cols_);
  for (std::size_t c = 0; c < cols_; ++c) {
    out[c] = std::sqrt(var[c] / static_cast<real>(rows_) + epsilon);
  }
  return out;
}

Tensor2D Tensor2D::operator+(const Tensor2D& rhs) const {
  QNAT_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_, "shape mismatch");
  Tensor2D out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Tensor2D Tensor2D::operator-(const Tensor2D& rhs) const {
  QNAT_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_, "shape mismatch");
  Tensor2D out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Tensor2D Tensor2D::operator*(real scalar) const {
  Tensor2D out = *this;
  for (auto& v : out.data_) v *= scalar;
  return out;
}

Tensor2D Tensor2D::hadamard(const Tensor2D& rhs) const {
  QNAT_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_, "shape mismatch");
  Tensor2D out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] *= rhs.data_[i];
  return out;
}

real Tensor2D::sum() const {
  real s = 0.0;
  for (real v : data_) s += v;
  return s;
}

real Tensor2D::mean() const {
  QNAT_CHECK(!data_.empty(), "mean of empty tensor");
  return sum() / static_cast<real>(data_.size());
}

}  // namespace qnat
