// Minimal dense 2-D real tensor (batch × features).
//
// Carries the classical data flowing between quantum blocks: measurement
// outcomes, normalized features, logits. Deliberately small — the QNN's
// classical compute is elementwise/reduction only, so this is a plain
// row-major container with the handful of batch reductions the framework
// needs (column mean/std for post-measurement normalization, row softmax
// for the classifier head).
#pragma once

#include <initializer_list>
#include <vector>

#include "common/types.hpp"

namespace qnat {

class Tensor2D {
 public:
  Tensor2D() = default;
  Tensor2D(std::size_t rows, std::size_t cols, real fill = 0.0);

  static Tensor2D from_rows(std::initializer_list<std::initializer_list<real>> rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  real& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const real& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  std::vector<real>& data() { return data_; }
  const std::vector<real>& data() const { return data_; }

  /// Copies row r into a vector.
  std::vector<real> row(std::size_t r) const;

  /// Overwrites row r from a vector of matching width.
  void set_row(std::size_t r, const std::vector<real>& values);

  /// Column means (length = cols).
  std::vector<real> col_mean() const;

  /// Column standard deviations (population, i.e. dividing by rows), with
  /// `epsilon` added to the variance before the square root.
  std::vector<real> col_std(real epsilon = 0.0) const;

  Tensor2D operator+(const Tensor2D& rhs) const;
  Tensor2D operator-(const Tensor2D& rhs) const;
  Tensor2D operator*(real scalar) const;

  /// Elementwise product.
  Tensor2D hadamard(const Tensor2D& rhs) const;

  /// Sum of all elements.
  real sum() const;

  /// Mean of all elements.
  real mean() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<real> data_;
};

}  // namespace qnat
