#include "noise/channel_simulator.hpp"

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "noise/scheduling.hpp"
#include "qsim/density_matrix.hpp"
#include "qsim/program.hpp"

namespace qnat {

bool channel_simulation_feasible(const Circuit& circuit) {
  // 8 wires = a 65536-amplitude vectorized density matrix; beyond that the
  // evaluator's trajectory sampler on the plain statevector is faster.
  return circuit.num_qubits() <= 8;
}

std::vector<real> channel_mean_expectations(const Circuit& circuit,
                                            const ParamVector& params,
                                            const NoiseModel& model,
                                            const ChannelSimOptions& options) {
  QNAT_CHECK(channel_simulation_feasible(circuit),
             "circuit too large for exact channel simulation");
  QNAT_TRACE_SCOPE("noise.channel_sim");
  static metrics::Counter simulations =
      metrics::counter("noise.channel.simulations");
  simulations.inc();
  auto physical = [&](QubitIndex wire) -> QubitIndex {
    if (options.physical_wires.empty()) return wire;
    return options.physical_wires[static_cast<std::size_t>(wire)];
  };
  if (options.physical_wires.empty()) {
    QNAT_CHECK(circuit.num_qubits() <= model.num_qubits(),
               "circuit does not fit on device");
  } else {
    QNAT_CHECK(options.physical_wires.size() ==
                   static_cast<std::size_t>(circuit.num_qubits()),
               "wire map must cover every circuit wire");
  }
  ScopedDensity rho_lease(circuit.num_qubits());
  DensityMatrix& rho = rho_lease.get();
  MomentTracker moments(circuit.num_qubits());

  // Precompiled kernel ops aligned 1:1 with the gate list (fusion is off —
  // a noise channel interleaves after every source gate, so gates cannot
  // merge). Memoized on the circuit fingerprint, so repeated evaluations
  // of the same compact block (one per batch sample) reuse the program.
  const std::shared_ptr<const CompiledProgram> program =
      shared_program(circuit, FusionOptions{.fuse = false});
  QNAT_CHECK(program->ops().size() == circuit.size(),
             "unfused program must align with the gate list");

  auto apply_idle = [&](QubitIndex wire, int layers) {
    if (layers <= 0) return;
    const PauliChannel idle =
        model.idle_channel(physical(wire)).scaled(options.noise_scale);
    if (idle.total() <= 0.0) return;
    // k idle layers compose analytically into one channel application.
    rho.apply_pauli_channel(wire, idle.power(layers));
  };

  for (std::size_t gi = 0; gi < circuit.size(); ++gi) {
    const Gate& gate = circuit.gate(gi);
    const int layer = moments.start_layer(gate);
    for (const QubitIndex q : gate.qubits) {
      apply_idle(q, moments.idle_layers(q, layer));
    }
    moments.occupy(gate, layer);

    rho.apply_op(program->ops()[gi], params);
    const PauliChannel channel =
        gate.num_qubits() == 1
            ? model.single_qubit_channel(gate.type, physical(gate.qubits[0]))
                  .scaled(options.noise_scale)
            : model
                  .two_qubit_channel(physical(gate.qubits[0]),
                                     physical(gate.qubits[1]))
                  .scaled(options.noise_scale);
    for (const QubitIndex q : gate.qubits) {
      rho.apply_pauli_channel(q, channel);
    }

    // Deterministic coherent errors, identical to the trajectory path.
    if (gate.num_qubits() == 1) {
      if (!NoiseModel::is_virtual_gate(gate.type)) {
        const real angle = model.coherent_overrotation(
                               physical(gate.qubits[0])) *
                           options.noise_scale;
        if (angle != 0.0) {
          rho.apply_gate(Gate(GateType::RX, {gate.qubits[0]},
                              {ParamExpr::constant(angle)}),
                         params);
        }
      }
    } else {
      const real zz = model.coherent_zz(physical(gate.qubits[0]),
                                        physical(gate.qubits[1])) *
                      options.noise_scale;
      if (zz != 0.0) {
        rho.apply_gate(Gate(GateType::RZZ, {gate.qubits[0], gate.qubits[1]},
                            {ParamExpr::constant(zz)}),
                       params);
      }
    }
  }

  // Idle until the joint final measurement.
  const int final_layer = moments.final_layer();
  for (QubitIndex q = 0; q < circuit.num_qubits(); ++q) {
    apply_idle(q, final_layer - moments.next_free(q));
  }

  std::vector<real> expectations = rho.expectations_z();
  if (options.apply_readout) {
    for (QubitIndex q = 0; q < circuit.num_qubits(); ++q) {
      const ReadoutError e =
          model.readout_error(physical(q)).scaled(options.noise_scale);
      expectations[static_cast<std::size_t>(q)] =
          e.slope() * expectations[static_cast<std::size_t>(q)] +
          e.intercept();
    }
  }
  return expectations;
}

}  // namespace qnat
