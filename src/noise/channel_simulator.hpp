// Exact noisy-channel evaluation via density-matrix simulation.
//
// Computes the *channel mean* of the per-qubit Z expectations — what real
// hardware converges to with many shots — with no Monte-Carlo error:
// every gate's Pauli channel, every idle layer's decoherence channel, and
// (optionally) the readout confusion map are applied exactly. This is the
// evaluator's high-fidelity mode for circuits up to ~10 qubits; larger
// circuits fall back to Pauli-trajectory sampling.
#pragma once

#include "noise/noise_model.hpp"
#include "qsim/circuit.hpp"

namespace qnat {

struct ChannelSimOptions {
  /// Apply each qubit's readout confusion map to the final expectations.
  bool apply_readout = true;
  /// Scales every channel (calibration drift / noise factor studies).
  double noise_scale = 1.0;
  /// Optional map from circuit wire to physical device qubit for noise
  /// lookups. Lets callers compact a device-wide transpiled circuit down
  /// to its used wires (a 4-qubit model routed on a 15-qubit device only
  /// needs a 4..5-wire density matrix) while still reading each wire's
  /// own calibration data. Empty = identity.
  std::vector<QubitIndex> physical_wires;
};

/// True when the circuit is small enough for exact channel simulation.
bool channel_simulation_feasible(const Circuit& circuit);

/// Exact per-wire Z expectations of the circuit evolved under the device
/// noise model (gate channels + per-layer idle channels + readout).
/// `circuit` is typically a transpiled (device-wide) circuit; returns one
/// expectation per circuit wire.
std::vector<real> channel_mean_expectations(const Circuit& circuit,
                                            const ParamVector& params,
                                            const NoiseModel& model,
                                            const ChannelSimOptions& options = {});

}  // namespace qnat
