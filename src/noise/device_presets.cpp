#include "noise/device_presets.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "noise/twirling.hpp"

namespace qnat {

namespace {

struct Topology {
  std::vector<std::pair<QubitIndex, QubitIndex>> edges;
};

Topology linear_topology(int n) {
  Topology t;
  for (int i = 0; i + 1 < n; ++i) t.edges.emplace_back(i, i + 1);
  return t;
}

// The 5-qubit "T" layout used by Belem/Lima/Quito: 0-1-3-4 chain plus 1-2.
Topology t_topology() {
  return Topology{{{0, 1}, {1, 2}, {1, 3}, {3, 4}}};
}

// Yorktown's "bowtie": 0-1, 0-2, 1-2, 2-3, 2-4, 3-4.
Topology bowtie_topology() {
  return Topology{{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {2, 4}, {3, 4}}};
}

// Melbourne's 15-qubit ladder: two rows with vertical rungs.
Topology melbourne_topology() {
  Topology t;
  for (int i = 0; i + 1 < 7; ++i) t.edges.emplace_back(i, i + 1);       // row 0
  for (int i = 7; i + 1 < 14; ++i) t.edges.emplace_back(i, i + 1);      // row 1
  for (int i = 0; i < 7; ++i) t.edges.emplace_back(i, 13 - i);          // rungs
  t.edges.emplace_back(6, 8);
  t.edges.emplace_back(13, 14);
  return t;
}

std::uint64_t device_seed(const std::string& name) {
  // FNV-1a so the preset depends only on the device name.
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : name) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ULL;
  }
  return h;
}

const std::vector<DeviceInfo>& device_table() {
  // Base magnitudes chosen so relative ordering matches the paper:
  // santiago (cleanest) < athens < bogota < lima < quito < belem <
  // yorktown (≈5x santiago) < melbourne (noisiest, 15 qubits).
  static const std::vector<DeviceInfo> table = {
      {"santiago", 5, 32, 2.0e-4, 7.0e-3, 1.5e-2},
      {"athens", 5, 32, 2.6e-4, 9.0e-3, 2.0e-2},
      {"bogota", 5, 32, 3.2e-4, 1.0e-2, 2.4e-2},
      {"lima", 5, 8, 4.0e-4, 1.1e-2, 2.6e-2},
      {"quito", 5, 16, 4.6e-4, 1.2e-2, 3.0e-2},
      {"belem", 5, 16, 5.0e-4, 1.3e-2, 3.2e-2},
      {"yorktown", 5, 8, 1.0e-3, 1.8e-2, 4.2e-2},
      {"melbourne", 15, 8, 1.3e-3, 2.6e-2, 5.5e-2},
  };
  return table;
}

Topology device_topology(const std::string& name, int num_qubits) {
  if (name == "yorktown") return bowtie_topology();
  if (name == "belem" || name == "lima" || name == "quito") {
    return t_topology();
  }
  if (name == "melbourne") return melbourne_topology();
  return linear_topology(num_qubits);
}

}  // namespace

std::vector<std::string> available_devices() {
  std::vector<std::string> names;
  names.reserve(device_table().size());
  for (const auto& d : device_table()) names.push_back(d.name);
  return names;
}

DeviceInfo device_info(const std::string& name) {
  for (const auto& d : device_table()) {
    if (d.name == name) return d;
  }
  throw Error("unknown device: " + name);
}

NoiseModel make_device_noise_model(const std::string& name) {
  return make_device_noise_model(name, device_info(name).num_qubits);
}

NoiseModel make_device_noise_model(const std::string& name, int num_qubits) {
  const DeviceInfo info = device_info(name);
  if (num_qubits < 1) {
    throw Error("device noise model needs at least one qubit");
  }
  NoiseModel model(info.name, num_qubits);
  Rng rng(device_seed(name));

  for (QubitIndex q = 0; q < num_qubits; ++q) {
    // Log-uniform spread in [0.4x, 2.8x] around the base rate — yields the
    // up-to-~10x qubit-to-qubit variation the paper mentions.
    const double spread = std::exp(rng.uniform(-0.9, 1.03));
    model.set_single_qubit_channel(
        q, single_qubit_error_to_pauli(info.base_1q_error * spread));

    // Idle decoherence per circuit layer: dephasing-dominant (T2 < T1).
    // Rates track the device's overall noise level; this is the term that
    // makes deep circuits degrade sharply on real hardware.
    const double idle = 4.0 * info.base_1q_error * spread;
    model.set_idle_channel(
        q, PauliChannel{0.25 * idle, 0.25 * idle, idle});

    // Coherent single-qubit miscalibration: a signed systematic RX
    // over-rotation after every physical 1q gate. Scales with the
    // device's noise level; this is the error component that survives
    // shot averaging and produces the input-dependent shift β_x of
    // Theorem 3.1.
    const double coh_scale = std::sqrt(info.base_1q_error / 2.0e-4);
    model.set_coherent_overrotation(q,
                                    rng.gaussian(0.0, 0.035 * coh_scale));

    const double ro_spread = std::exp(rng.uniform(-0.6, 0.7));
    const double ro = std::clamp(info.base_readout_error * ro_spread, 0.0, 0.4);
    // Readout is asymmetric on hardware: 1→0 decay flips are more likely.
    model.set_readout_error(
        q, ReadoutError::from_flip_probs(ro * 0.8, ro * 1.2));
  }

  // A non-native width cannot reuse the chip's physical layout; fall
  // back to a linear chain of the requested width.
  const Topology topology = num_qubits == info.num_qubits
                                ? device_topology(name, info.num_qubits)
                                : linear_topology(num_qubits);
  for (const auto& [a, b] : topology.edges) {
    const double spread = std::exp(rng.uniform(-0.7, 0.8));
    model.add_coupling(a, b);
    model.set_two_qubit_channel(
        a, b,
        two_qubit_error_to_pauli_per_operand(info.base_2q_error * spread));
    // Coherent ZZ phase per two-qubit gate (crosstalk / echo residue),
    // the dominant coherent error on cross-resonance devices.
    const double coh_scale = std::sqrt(info.base_2q_error / 7.0e-3);
    model.set_coherent_zz(a, b, rng.gaussian(0.0, 0.12 * coh_scale));
  }

  // Calibration values quoted verbatim in the paper.
  if (name == "yorktown" && num_qubits >= 2) {
    model.set_gate_channel(GateType::SX, 1,
                           PauliChannel{0.00096, 0.00096, 0.00096});
  }
  if (name == "santiago") {
    model.set_readout_error(0, ReadoutError{0.984, 0.978});
  }
  return model;
}

}  // namespace qnat
