// Synthetic calibration presets for the IBMQ devices used by the paper.
//
// We do not have access to the retired IBMQ backends' calibration files;
// the presets below reproduce the *relative* structure the paper relies
// on — error magnitudes of 1e-4..1e-2, Yorktown ≈5x noisier than Santiago
// (Fig. 1 / §A.3.1), per-qubit variation up to ~10x, realistic readout
// asymmetry — plus the two calibration values quoted verbatim in the text:
// Yorktown qubit-1 SX Pauli channel {0.00096, 0.00096, 0.00096} and
// Santiago qubit-0 readout matrix [[0.984, 0.016], [0.022, 0.978]].
// Per-qubit spreads are drawn deterministically from a device-seeded RNG,
// so presets are stable across runs.
#pragma once

#include <string>
#include <vector>

#include "noise/noise_model.hpp"

namespace qnat {

/// Static description of a supported device.
struct DeviceInfo {
  std::string name;
  int num_qubits = 0;
  int quantum_volume = 0;
  /// Base average single-qubit gate error (before per-qubit spread).
  double base_1q_error = 0.0;
  /// Base average two-qubit gate error.
  double base_2q_error = 0.0;
  /// Base readout assignment error.
  double base_readout_error = 0.0;
};

/// Names of all supported devices (lowercase).
std::vector<std::string> available_devices();

/// Device metadata; throws qnat::Error for unknown names.
DeviceInfo device_info(const std::string& name);

/// Builds the full noise model (channels, readout, coupling map) for a
/// device. Deterministic: same name → identical model.
NoiseModel make_device_noise_model(const std::string& name);

/// Same preset widened (or narrowed) to `num_qubits`. Per-qubit rates
/// keep drawing from the device-seeded RNG stream, so the first
/// `min(num_qubits, native)` qubits of a widened model are NOT required
/// to match the native model — only determinism in (name, num_qubits)
/// is guaranteed. A non-native width uses a linear coupling map (the
/// physical layout does not extend past the real chip). This is how
/// 10-qubit reference models run against the paper's 5-qubit presets.
NoiseModel make_device_noise_model(const std::string& name, int num_qubits);

}  // namespace qnat
