#include "noise/drift/drift.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace qnat {

namespace {

// Walk stream kinds. Entities are qubits for per-qubit kinds and packed
// sorted edges (a * kEdgeStride + b) for per-edge kinds.
constexpr std::uint64_t kWalkChannel1q = 1;
constexpr std::uint64_t kWalkChannel2q = 2;
constexpr std::uint64_t kWalkReadout00 = 3;
constexpr std::uint64_t kWalkReadout11 = 4;
constexpr std::uint64_t kWalkCoherent1q = 5;
constexpr std::uint64_t kWalkCoherentZZ = 6;
constexpr std::uint64_t kEdgeStride = 1024;

std::uint64_t edge_entity(QubitIndex a, QubitIndex b) {
  const auto lo = static_cast<std::uint64_t>(std::min(a, b));
  const auto hi = static_cast<std::uint64_t>(std::max(a, b));
  return lo * kEdgeStride + hi;
}

}  // namespace

void DriftConfig::validate() const {
  QNAT_CHECK(channel_walk_sigma >= 0.0 && readout_walk_sigma >= 0.0 &&
                 coherent_walk_sigma >= 0.0,
             "drift config '" + name + "': walk sigmas must be non-negative");
  QNAT_CHECK(scale_amplitude >= 0.0,
             "drift config '" + name + "': scale amplitude must be "
             "non-negative");
  QNAT_CHECK(scale_period_ticks >= 0,
             "drift config '" + name + "': scale period must be >= 0");
  QNAT_CHECK(scale_ramp_per_tick >= 0.0,
             "drift config '" + name + "': scale ramp must be non-negative");
  QNAT_CHECK(calibration_interval >= 0,
             "drift config '" + name + "': calibration interval must be >= 0");
}

DriftConfig drift_preset(const std::string& name) {
  // Ticks are "five-ish minutes" of wall time; 288 ticks = one
  // calibration day. Severities are chosen so that at a few dozen ticks
  // "calm" is a within-noise-floor wobble, "daily" a clearly measurable
  // shift, and "aggressive" (an uncalibrated device) breaks stale
  // normalization statistics outright.
  DriftConfig config;
  config.name = name;
  if (name == "none") {
    return config;
  }
  if (name == "calm") {
    config.channel_walk_sigma = 0.002;
    config.readout_walk_sigma = 0.0008;
    config.coherent_walk_sigma = 0.0005;
    config.scale_amplitude = 0.05;
    config.scale_period_ticks = 288;
    config.calibration_interval = 288;
    return config;
  }
  if (name == "daily") {
    config.channel_walk_sigma = 0.008;
    config.readout_walk_sigma = 0.003;
    config.coherent_walk_sigma = 0.002;
    config.scale_amplitude = 0.15;
    config.scale_period_ticks = 288;
    config.scale_ramp_per_tick = 0.0005;
    config.calibration_interval = 288;
    return config;
  }
  if (name == "aggressive") {
    config.channel_walk_sigma = 0.03;
    config.readout_walk_sigma = 0.012;
    config.coherent_walk_sigma = 0.008;
    config.scale_amplitude = 0.3;
    config.scale_period_ticks = 64;
    config.scale_ramp_per_tick = 0.002;
    config.calibration_interval = 0;  // never recalibrated
    return config;
  }
  QNAT_CHECK(false, "unknown drift preset '" + name +
                        "' (available: none, calm, daily, aggressive)");
  return config;
}

const std::vector<std::string>& drift_preset_names() {
  static const std::vector<std::string> names = {"none", "calm", "daily",
                                                 "aggressive"};
  return names;
}

DriftModel::DriftModel(NoiseModel base, DriftConfig config)
    : base_(std::move(base)), config_(std::move(config)), root_(config_.seed) {
  config_.validate();
  base_.validate();
}

double DriftModel::walk(std::uint64_t kind, std::uint64_t entity,
                        std::int64_t tick) const {
  // Increment stream keyed by (kind, entity, step): a pure function of
  // the config seed, so positions replay identically in any evaluation
  // order. Calibration truncates the sum — at a calibration tick the
  // walk restarts from zero.
  std::int64_t start = 0;
  if (config_.calibration_interval > 0) {
    start = tick - tick % config_.calibration_interval;
  }
  const Rng entity_rng = root_.child(kind).child(entity);
  double position = 0.0;
  for (std::int64_t step = start + 1; step <= tick; ++step) {
    Rng step_rng = entity_rng.child(static_cast<std::uint64_t>(step));
    position += step_rng.gaussian();
  }
  return position;
}

double DriftModel::schedule_factor(std::int64_t tick) const {
  double factor = 1.0;
  if (config_.scale_period_ticks > 0 && config_.scale_amplitude > 0.0) {
    factor += config_.scale_amplitude *
              std::sin(2.0 * qnat::kPi * static_cast<double>(tick) /
                       static_cast<double>(config_.scale_period_ticks));
  }
  if (config_.scale_ramp_per_tick > 0.0) {
    std::int64_t since_calibration = tick;
    if (config_.calibration_interval > 0) {
      since_calibration = tick % config_.calibration_interval;
    }
    factor +=
        config_.scale_ramp_per_tick * static_cast<double>(since_calibration);
  }
  return std::max(0.0, factor);
}

NoiseModel DriftModel::at(std::int64_t tick) const {
  QNAT_CHECK(tick >= 0, "drift tick must be >= 0");
  NoiseModel out = base_;
  const int nq = base_.num_qubits();
  const double schedule = schedule_factor(tick);

  // Stochastic channels: per-qubit (and per-edge) multiplicative factors
  // exp(walk) * schedule. Gate overrides follow their qubit's factor so
  // an override never drifts apart from the default it specializes.
  for (QubitIndex q = 0; q < nq; ++q) {
    const double factor =
        schedule * std::exp(config_.channel_walk_sigma *
                            walk(kWalkChannel1q,
                                 static_cast<std::uint64_t>(q), tick));
    out.set_single_qubit_channel(q,
                                 base_.single_qubit_default(q).scaled(factor));
    out.set_idle_channel(q, base_.idle_channel(q).scaled(factor));
    for (const auto& [key, channel] : base_.gate_override_channels()) {
      if (key.second == q) {
        out.set_gate_channel(static_cast<GateType>(key.first), q,
                             channel.scaled(factor));
      }
    }
  }
  // Two-qubit channels drift per edge: coupled edges materialize their
  // (possibly operand-default) channel, pre-characterized off-coupling
  // entries drift in place.
  auto drift_edge = [&](QubitIndex a, QubitIndex b) {
    const double factor =
        schedule * std::exp(config_.channel_walk_sigma *
                            walk(kWalkChannel2q, edge_entity(a, b), tick));
    out.set_two_qubit_channel(a, b, base_.two_qubit_channel(a, b)
                                        .scaled(factor));
  };
  for (const auto& [a, b] : base_.coupling_map()) drift_edge(a, b);
  for (const auto& [edge, channel] : base_.two_qubit_channels()) {
    if (!base_.coupled(edge.first, edge.second)) {
      drift_edge(edge.first, edge.second);
    }
  }

  // Readout: walk the diagonal assignment probabilities inside [0.5, 1]
  // — each confusion row is (p, 1-p), so row-stochasticity is preserved
  // by construction at any walk position.
  for (QubitIndex q = 0; q < nq; ++q) {
    const ReadoutError ro = base_.readout_error(q);
    const auto entity = static_cast<std::uint64_t>(q);
    const double p00 = std::clamp(
        ro.p0_given_0 +
            config_.readout_walk_sigma * walk(kWalkReadout00, entity, tick),
        0.5, 1.0);
    const double p11 = std::clamp(
        ro.p1_given_1 +
            config_.readout_walk_sigma * walk(kWalkReadout11, entity, tick),
        0.5, 1.0);
    out.set_readout_error(q, ReadoutError{p00, p11});
  }

  // Coherent miscalibrations: additive radian walks.
  if (config_.coherent_walk_sigma > 0.0) {
    for (QubitIndex q = 0; q < nq; ++q) {
      out.set_coherent_overrotation(
          q, base_.coherent_overrotation(q) +
                 config_.coherent_walk_sigma *
                     walk(kWalkCoherent1q, static_cast<std::uint64_t>(q),
                          tick));
    }
    for (const auto& [a, b] : base_.coupling_map()) {
      out.set_coherent_zz(a, b,
                          base_.coherent_zz(a, b) +
                              config_.coherent_walk_sigma *
                                  walk(kWalkCoherentZZ, edge_entity(a, b),
                                       tick));
    }
  }

  out.validate();
  return out;
}

std::string DriftModel::stamp(std::int64_t tick) const {
  return config_.name + " seed=" + std::to_string(config_.seed) +
         " tick=" + std::to_string(tick);
}

}  // namespace qnat
