// Deterministic, time-parameterized device drift.
//
// Real devices drift between calibrations: T1/T2 wander, readout
// assignment matrices degrade, gate fidelities breathe with temperature
// cycles — which is why the paper trains noise-aware models against a
// calibration snapshot that is already stale by serving time. The drift
// engine makes that gap a first-class, *replayable* object: a
// `DriftModel` evolves a base `NoiseModel` along a virtual clock of
// integer ticks, and the model it emits at tick t is a pure function of
// (base model, drift config, t).
//
// Every drifting quantity follows a counter-seeded Gaussian random walk:
// the increment applied at step s to entity e of kind k is drawn from
// `Rng(seed).child(k).child(e).child(s)`, so trajectories are identical
// across runs, thread counts and evaluation order — `at(t)` can be
// computed out of order, in parallel, or twice, and always yields the
// same device. Walks snap back to the preset on calibration days
// (`calibration_interval`), mirroring the daily recalibration cycle of
// IBMQ backends.
//
// Structure preservation: readout confusion matrices stay row-stochastic
// by construction — the engine walks the diagonal assignment
// probabilities P(0|0) and P(1|1) inside [0.5, 1] and each row's
// off-diagonal is their complement — and stochastic Pauli channels stay
// valid because multiplicative log-space factors keep probabilities
// non-negative and `PauliChannel::scaled` clamps the total at 1. Every
// emitted model additionally passes `NoiseModel::validate()` before it
// leaves `at()`, so a drifted device can never silently carry a
// negative-probability channel into a simulation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "noise/noise_model.hpp"

namespace qnat {

/// Drift-process parameters. All sigmas are per-tick standard deviations
/// of the underlying Gaussian walks; zero everywhere = a device frozen at
/// its calibration (`at(t)` returns the base model for every t).
struct DriftConfig {
  /// Preset name, stamped into run manifests ("none", "calm", "daily",
  /// "aggressive", or a custom label).
  std::string name = "none";
  /// Seed of the walk streams; two engines with equal (base, config)
  /// produce byte-identical trajectories.
  std::uint64_t seed = 20260807;

  /// Log-space walk on the stochastic error channels: qubit q's
  /// single-qubit default, idle channel and gate overrides scale by
  /// exp(walk_q(t)), each coupled edge's two-qubit channel by its own
  /// exp(walk_e(t)) — the T1/T2 wander of the device, multiplicative so
  /// probabilities stay non-negative.
  double channel_walk_sigma = 0.0;
  /// Probability-space walk on the readout diagonal terms P(0|0) and
  /// P(1|1), independently per qubit, clamped to [0.5, 1].
  double readout_walk_sigma = 0.0;
  /// Radian walk on the coherent miscalibrations (per-qubit RX
  /// over-rotation and per-edge ZZ phase).
  double coherent_walk_sigma = 0.0;

  /// Deterministic gate-error scaling schedule multiplying the same
  /// channels as `channel_walk_sigma`:
  ///   schedule(t) = max(0, 1 + scale_amplitude * sin(2*pi*t/period)
  ///                        + scale_ramp_per_tick * (t - last_calibration))
  /// The sinusoid models daily temperature cycles, the ramp the monotone
  /// decay between calibrations.
  double scale_amplitude = 0.0;
  int scale_period_ticks = 0;  ///< 0 disables the sinusoid.
  double scale_ramp_per_tick = 0.0;

  /// Every `calibration_interval` ticks the device is recalibrated: all
  /// walks and the ramp restart from the preset (0 = never).
  int calibration_interval = 0;

  /// Throws qnat::Error on negative sigmas/amplitudes or a negative
  /// period/interval.
  void validate() const;
};

/// Built-in drift severities ("none", "calm", "daily", "aggressive");
/// throws qnat::Error for unknown names.
DriftConfig drift_preset(const std::string& name);

/// Names of the built-in presets.
const std::vector<std::string>& drift_preset_names();

/// A base device evolved along a virtual clock. Immutable and cheap to
/// copy; safe to share across threads.
class DriftModel {
 public:
  DriftModel(NoiseModel base, DriftConfig config);

  const NoiseModel& base() const { return base_; }
  const DriftConfig& config() const { return config_; }

  /// The device at virtual tick t >= 0 — a pure, replayable function of
  /// (base, config, t). `at(0)` and every calibration tick return the
  /// base model exactly. The emitted model passes
  /// `NoiseModel::validate()`.
  NoiseModel at(std::int64_t tick) const;

  /// Deterministic gate-error schedule factor at tick t (exposed for
  /// tests and benches).
  double schedule_factor(std::int64_t tick) const;

  /// Manifest stamp for a run served against `at(tick)`:
  /// "<name> seed=<seed> tick=<tick>". Feed to
  /// `metrics::set_drift_stamp` so snapshots distinguish drifted runs
  /// from calibration-fresh ones.
  std::string stamp(std::int64_t tick) const;

 private:
  /// Walk position at `tick` for entity `entity` of stream `kind`:
  /// the sum of per-step Gaussian increments since the last calibration.
  double walk(std::uint64_t kind, std::uint64_t entity,
              std::int64_t tick) const;

  NoiseModel base_;
  DriftConfig config_;
  Rng root_;
};

}  // namespace qnat
