#include "noise/error_inserter.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "noise/scheduling.hpp"

namespace qnat {

namespace {

PauliChannel scaled_channel_for_operand(const NoiseModel& model,
                                        const Gate& gate,
                                        double noise_factor) {
  if (gate.num_qubits() == 1) {
    return model.single_qubit_channel(gate.type, gate.qubits[0])
        .scaled(noise_factor);
  }
  return model.two_qubit_channel(gate.qubits[0], gate.qubits[1])
      .scaled(noise_factor);
}

}  // namespace

Circuit insert_error_gates(const Circuit& circuit, const NoiseModel& model,
                           double noise_factor, Rng& rng,
                           InsertionStats* stats, double coherent_factor) {
  QNAT_CHECK(circuit.num_qubits() <= model.num_qubits(),
             "circuit does not fit on device");
  Circuit out(circuit.num_qubits(), circuit.num_params());
  InsertionStats local;
  MomentTracker moments(circuit.num_qubits());

  auto sample_idle = [&](QubitIndex q, int layers) {
    if (layers <= 0) return;
    const PauliChannel idle =
        model.idle_channel(q).scaled(noise_factor);
    if (idle.total() <= 0.0) return;
    // k idle layers compose into one Pauli channel (Paulis multiply to
    // Paulis), so one sample from the composed channel suffices.
    if (const auto pauli = idle.power(layers).sample(rng)) {
      out.append(Gate(*pauli, {q}));
      ++local.inserted_gates;
    }
  };

  for (const auto& gate : circuit.gates()) {
    // Charge decoherence for the layers each operand spent waiting.
    const int layer = moments.start_layer(gate);
    for (const QubitIndex q : gate.qubits) {
      sample_idle(q, moments.idle_layers(q, layer));
    }
    moments.occupy(gate, layer);

    out.append(gate);
    ++local.original_gates;
    const PauliChannel channel =
        scaled_channel_for_operand(model, gate, noise_factor);
    for (int operand = 0; operand < gate.num_qubits(); ++operand) {
      if (const auto pauli = channel.sample(rng)) {
        out.append(
            Gate(*pauli, {gate.qubits[static_cast<std::size_t>(operand)]}));
        ++local.inserted_gates;
      }
    }

    // Deterministic coherent errors: a systematic RX over-rotation after
    // every physical single-qubit gate and a ZZ phase after every
    // two-qubit gate. Present in every realization (they survive shot
    // averaging on hardware).
    if (gate.num_qubits() == 1) {
      if (!NoiseModel::is_virtual_gate(gate.type)) {
        const real angle =
            model.coherent_overrotation(gate.qubits[0]) * coherent_factor;
        if (angle != 0.0) {
          out.append(Gate(GateType::RX, {gate.qubits[0]},
                          {ParamExpr::constant(angle)}));
          ++local.coherent_gates;
        }
      }
    } else {
      const real zz =
          model.coherent_zz(gate.qubits[0], gate.qubits[1]) * coherent_factor;
      if (zz != 0.0) {
        out.append(Gate(GateType::RZZ, {gate.qubits[0], gate.qubits[1]},
                        {ParamExpr::constant(zz)}));
        ++local.coherent_gates;
      }
    }
  }

  // Qubits idle until the final layer, when all are measured together.
  const int final_layer = moments.final_layer();
  for (QubitIndex q = 0; q < circuit.num_qubits(); ++q) {
    sample_idle(q, final_layer - moments.next_free(q));
  }

  static metrics::Counter circuits = metrics::counter("noise.inserter.circuits");
  static metrics::Counter error_gates =
      metrics::counter("noise.inserter.error_gates");
  static metrics::Counter coherent_gates =
      metrics::counter("noise.inserter.coherent_gates");
  circuits.inc();
  error_gates.add(static_cast<std::uint64_t>(local.inserted_gates));
  coherent_gates.add(static_cast<std::uint64_t>(local.coherent_gates));

  if (stats != nullptr) *stats = local;
  return out;
}

PreparedInserter::PreparedInserter(const Circuit& circuit,
                                   const NoiseModel& model,
                                   double noise_factor,
                                   double coherent_factor)
    : num_qubits_(circuit.num_qubits()), num_params_(circuit.num_params()) {
  QNAT_CHECK(circuit.num_qubits() <= model.num_qubits(),
             "circuit does not fit on device");
  MomentTracker moments(circuit.num_qubits());

  // The site list replays insert_error_gates' walk: any divergence in
  // which sites draw from the rng (or their order) would silently change
  // every realization, so the conditions below must mirror the legacy
  // pass exactly (the differential test pins this).
  auto prepare_idle = [&](QubitIndex q, int layers) {
    if (layers <= 0) return;
    const PauliChannel idle = model.idle_channel(q).scaled(noise_factor);
    if (idle.total() <= 0.0) return;
    sites_.push_back(Site{Site::Kind::Stochastic, idle.power(layers), q,
                          Gate(GateType::X, {q}), false, false});
  };

  for (const auto& gate : circuit.gates()) {
    const int layer = moments.start_layer(gate);
    for (const QubitIndex q : gate.qubits) {
      prepare_idle(q, moments.idle_layers(q, layer));
    }
    moments.occupy(gate, layer);

    sites_.push_back(
        Site{Site::Kind::Fixed, PauliChannel{}, 0, gate, true, false});
    const PauliChannel channel =
        scaled_channel_for_operand(model, gate, noise_factor);
    for (int operand = 0; operand < gate.num_qubits(); ++operand) {
      const QubitIndex q = gate.qubits[static_cast<std::size_t>(operand)];
      sites_.push_back(Site{Site::Kind::Stochastic, channel, q,
                            Gate(GateType::X, {q}), false, false});
    }

    if (gate.num_qubits() == 1) {
      if (!NoiseModel::is_virtual_gate(gate.type)) {
        const real angle =
            model.coherent_overrotation(gate.qubits[0]) * coherent_factor;
        if (angle != 0.0) {
          sites_.push_back(Site{Site::Kind::Fixed, PauliChannel{}, 0,
                                Gate(GateType::RX, {gate.qubits[0]},
                                     {ParamExpr::constant(angle)}),
                                false, true});
        }
      }
    } else {
      const real zz =
          model.coherent_zz(gate.qubits[0], gate.qubits[1]) * coherent_factor;
      if (zz != 0.0) {
        sites_.push_back(Site{Site::Kind::Fixed, PauliChannel{}, 0,
                              Gate(GateType::RZZ,
                                   {gate.qubits[0], gate.qubits[1]},
                                   {ParamExpr::constant(zz)}),
                              false, true});
      }
    }
  }

  const int final_layer = moments.final_layer();
  for (QubitIndex q = 0; q < circuit.num_qubits(); ++q) {
    prepare_idle(q, final_layer - moments.next_free(q));
  }

  // Prebuild the zero-insertion realization (what realize produces when
  // no stochastic site fires): gate-for-gate identical to that path so
  // realize_cached can hand out one shared circuit instead of
  // reconstructing it per realization.
  Circuit clean(num_qubits_, num_params_);
  for (const Site& site : sites_) {
    if (site.kind != Site::Kind::Fixed) continue;
    clean.append(site.gate);
    if (site.counts_as_original) ++clean_stats_.original_gates;
    if (site.counts_as_coherent) ++clean_stats_.coherent_gates;
  }
  clean_ = std::make_shared<const Circuit>(std::move(clean));
}

Circuit PreparedInserter::realize(Rng& rng, InsertionStats* stats) const {
  Circuit out(num_qubits_, num_params_);
  InsertionStats local;
  for (const Site& site : sites_) {
    if (site.kind == Site::Kind::Stochastic) {
      if (const auto pauli = site.channel.sample(rng)) {
        out.append(Gate(*pauli, {site.qubit}));
        ++local.inserted_gates;
      }
      continue;
    }
    out.append(site.gate);
    if (site.counts_as_original) ++local.original_gates;
    if (site.counts_as_coherent) ++local.coherent_gates;
  }

  static metrics::Counter circuits =
      metrics::counter("noise.inserter.circuits");
  static metrics::Counter error_gates =
      metrics::counter("noise.inserter.error_gates");
  static metrics::Counter coherent_gates =
      metrics::counter("noise.inserter.coherent_gates");
  circuits.inc();
  error_gates.add(static_cast<std::uint64_t>(local.inserted_gates));
  coherent_gates.add(static_cast<std::uint64_t>(local.coherent_gates));

  if (stats != nullptr) *stats = local;
  return out;
}

std::shared_ptr<const Circuit> PreparedInserter::realize_cached(
    Rng& rng, Circuit& dirty, InsertionStats* stats) const {
  static metrics::Counter circuits =
      metrics::counter("noise.inserter.circuits");
  static metrics::Counter error_gates =
      metrics::counter("noise.inserter.error_gates");
  static metrics::Counter coherent_gates =
      metrics::counter("noise.inserter.coherent_gates");
  static metrics::Counter clean_hits =
      metrics::counter("noise.inserter.clean_realizations");

  // Sample every stochastic site up front, in site order — the same draw
  // sequence realize consumes (fixed sites never draw) — so the clean
  // shortcut is invisible to the RNG stream.
  thread_local std::vector<std::optional<GateType>> draws;
  draws.clear();
  int inserted = 0;
  for (const Site& site : sites_) {
    if (site.kind != Site::Kind::Stochastic) continue;
    draws.push_back(site.channel.sample(rng));
    if (draws.back().has_value()) ++inserted;
  }

  circuits.inc();
  coherent_gates.add(
      static_cast<std::uint64_t>(clean_stats_.coherent_gates));
  if (inserted == 0) {
    clean_hits.inc();
    if (stats != nullptr) *stats = clean_stats_;
    return clean_;
  }

  error_gates.add(static_cast<std::uint64_t>(inserted));
  InsertionStats local = clean_stats_;
  local.inserted_gates = inserted;
  dirty = Circuit(num_qubits_, num_params_);
  std::size_t d = 0;
  for (const Site& site : sites_) {
    if (site.kind == Site::Kind::Stochastic) {
      if (const auto pauli = draws[d++]) {
        dirty.append(Gate(*pauli, {site.qubit}));
      }
      continue;
    }
    dirty.append(site.gate);
  }
  if (stats != nullptr) *stats = local;
  return nullptr;
}

double expected_insertions(const Circuit& circuit, const NoiseModel& model,
                           double noise_factor) {
  double expected = 0.0;
  MomentTracker moments(circuit.num_qubits());
  auto idle_expectation = [&](QubitIndex q, int layers) {
    if (layers <= 0) return 0.0;
    return model.idle_channel(q).scaled(noise_factor).power(layers).total();
  };
  for (const auto& gate : circuit.gates()) {
    const int layer = moments.start_layer(gate);
    for (const QubitIndex q : gate.qubits) {
      expected += idle_expectation(q, moments.idle_layers(q, layer));
    }
    moments.occupy(gate, layer);
    expected += gate.num_qubits() *
                scaled_channel_for_operand(model, gate, noise_factor).total();
  }
  const int final_layer = moments.final_layer();
  for (QubitIndex q = 0; q < circuit.num_qubits(); ++q) {
    expected += idle_expectation(q, final_layer - moments.next_free(q));
  }
  return expected;
}

}  // namespace qnat
