// Error-gate insertion pass (paper §3.2, Fig. 5).
//
// Walks a (compiled) circuit and, after every original gate, samples a
// Pauli error gate per operand qubit from the device noise model scaled by
// the noise factor T, appending X/Y/Z gates where errors are drawn. The
// pass also schedules the circuit into layers (greedy ASAP) and charges
// each qubit one *idle-channel* sample per layer it spends waiting —
// the decoherence contribution that makes deep circuits degrade faster,
// as on real hardware. A new set of error gates is sampled each call —
// the trainer calls this once per training step. Inserted error gates are
// constant (non-parameterized) so gradient flow through the original
// parameters is unchanged.
#pragma once

#include <memory>

#include "common/rng.hpp"
#include "noise/noise_model.hpp"
#include "qsim/circuit.hpp"

namespace qnat {

/// Statistics of one insertion pass.
struct InsertionStats {
  int original_gates = 0;
  /// Stochastically sampled Pauli error gates.
  int inserted_gates = 0;
  /// Deterministic coherent-error gates (systematic over-rotations / ZZ
  /// phases), present on every call.
  int coherent_gates = 0;
  /// sampled inserted / original — the paper reports this overhead as
  /// < 2%.
  double overhead() const {
    return original_gates == 0
               ? 0.0
               : static_cast<double>(inserted_gates) / original_gates;
  }
};

/// Returns a copy of `circuit` with sampled Pauli error gates inserted
/// after each gate. `noise_factor` is the paper's T (typically 0.1–1.5)
/// and scales the *stochastic* channels; deterministic coherent errors
/// are inserted at `coherent_factor` (default full magnitude — they are
/// known calibration facts, not sampling knobs).
Circuit insert_error_gates(const Circuit& circuit, const NoiseModel& model,
                           double noise_factor, Rng& rng,
                           InsertionStats* stats = nullptr,
                           double coherent_factor = 1.0);

/// Expected number of inserted gates per pass (sum of scaled channel
/// totals over all gate operands) — deterministic companion of the
/// sampling pass, used by tests and the overhead report.
double expected_insertions(const Circuit& circuit, const NoiseModel& model,
                           double noise_factor);

/// Amortized insertion pass for training loops that realize the same
/// (circuit, noise model, noise factor) thousands of times. The circuit
/// walk — layer scheduling, per-operand channel lookup and scaling, idle
/// channel composition, coherent-error magnitudes — depends only on those
/// three inputs, so it runs once at construction and is flattened into a
/// site list; `realize` then replays the sites, drawing exactly the same
/// RNG sequence as `insert_error_gates`, so for any generator state the
/// two produce byte-identical circuits (asserted by the differential
/// test). Construction cost is one legacy-pass walk; realize cost is one
/// uniform draw per stochastic site plus gate appends.
class PreparedInserter {
 public:
  PreparedInserter(const Circuit& circuit, const NoiseModel& model,
                   double noise_factor, double coherent_factor = 1.0);

  /// Samples one noisy realization (equivalent to `insert_error_gates` on
  /// the prepared circuit with the same rng state).
  Circuit realize(Rng& rng, InsertionStats* stats = nullptr) const;

  /// realize(), minus the rebuild when nothing fires. Draws exactly the
  /// same RNG sequence as `realize`; when at least one stochastic site
  /// fires, builds the realization into `dirty` and returns nullptr.
  /// When none fire — the common case at the paper's noise factors —
  /// returns the shared zero-insertion circuit and leaves `dirty`
  /// untouched, skipping the per-realization circuit construction (and
  /// letting callers reuse a precompiled program for it).
  std::shared_ptr<const Circuit> realize_cached(
      Rng& rng, Circuit& dirty, InsertionStats* stats = nullptr) const;

  /// The zero-insertion realization: original + deterministic coherent
  /// gates only, identical for every realization where no stochastic
  /// site fires. Built once at construction and shared.
  const std::shared_ptr<const Circuit>& clean_circuit() const {
    return clean_;
  }

  /// Upper bound on the realized circuit's gate count (all stochastic
  /// sites firing), used to reserve the output buffer.
  std::size_t max_gates() const { return sites_.size(); }

 private:
  struct Site {
    /// Stochastic sites sample `channel` and append the drawn Pauli on
    /// `qubit`; fixed sites append `gate` unconditionally.
    enum class Kind : std::uint8_t { Stochastic, Fixed } kind;
    PauliChannel channel;
    QubitIndex qubit = 0;
    Gate gate;
    /// Fixed-site bookkeeping mirror of InsertionStats.
    bool counts_as_original = false;
    bool counts_as_coherent = false;
  };
  std::vector<Site> sites_;
  std::shared_ptr<const Circuit> clean_;
  InsertionStats clean_stats_;
  int num_qubits_ = 0;
  int num_params_ = 0;
};

}  // namespace qnat
