// Error-gate insertion pass (paper §3.2, Fig. 5).
//
// Walks a (compiled) circuit and, after every original gate, samples a
// Pauli error gate per operand qubit from the device noise model scaled by
// the noise factor T, appending X/Y/Z gates where errors are drawn. The
// pass also schedules the circuit into layers (greedy ASAP) and charges
// each qubit one *idle-channel* sample per layer it spends waiting —
// the decoherence contribution that makes deep circuits degrade faster,
// as on real hardware. A new set of error gates is sampled each call —
// the trainer calls this once per training step. Inserted error gates are
// constant (non-parameterized) so gradient flow through the original
// parameters is unchanged.
#pragma once

#include "common/rng.hpp"
#include "noise/noise_model.hpp"
#include "qsim/circuit.hpp"

namespace qnat {

/// Statistics of one insertion pass.
struct InsertionStats {
  int original_gates = 0;
  /// Stochastically sampled Pauli error gates.
  int inserted_gates = 0;
  /// Deterministic coherent-error gates (systematic over-rotations / ZZ
  /// phases), present on every call.
  int coherent_gates = 0;
  /// sampled inserted / original — the paper reports this overhead as
  /// < 2%.
  double overhead() const {
    return original_gates == 0
               ? 0.0
               : static_cast<double>(inserted_gates) / original_gates;
  }
};

/// Returns a copy of `circuit` with sampled Pauli error gates inserted
/// after each gate. `noise_factor` is the paper's T (typically 0.1–1.5)
/// and scales the *stochastic* channels; deterministic coherent errors
/// are inserted at `coherent_factor` (default full magnitude — they are
/// known calibration facts, not sampling knobs).
Circuit insert_error_gates(const Circuit& circuit, const NoiseModel& model,
                           double noise_factor, Rng& rng,
                           InsertionStats* stats = nullptr,
                           double coherent_factor = 1.0);

/// Expected number of inserted gates per pass (sum of scaled channel
/// totals over all gate operands) — deterministic companion of the
/// sampling pass, used by tests and the overhead report.
double expected_insertions(const Circuit& circuit, const NoiseModel& model,
                           double noise_factor);

}  // namespace qnat
