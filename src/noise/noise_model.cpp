#include "noise/noise_model.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace qnat {

namespace {

std::pair<int, int> sorted_edge(QubitIndex a, QubitIndex b) {
  return {std::min(a, b), std::max(a, b)};
}

void put_real(std::ostream& os, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << buf;
}

void put_channel(std::ostream& os, const PauliChannel& c) {
  put_real(os, c.px);
  os << ' ';
  put_real(os, c.py);
  os << ' ';
  put_real(os, c.pz);
}

}  // namespace

bool NoiseModel::is_virtual_gate(GateType type) {
  return type == GateType::RZ || type == GateType::I || type == GateType::P;
}

NoiseModel::NoiseModel(std::string device_name, int num_qubits)
    : name_(std::move(device_name)),
      num_qubits_(num_qubits),
      single_defaults_(static_cast<std::size_t>(num_qubits)),
      idle_(static_cast<std::size_t>(num_qubits)),
      coherent_1q_(static_cast<std::size_t>(num_qubits), 0.0),
      readout_(static_cast<std::size_t>(num_qubits), ReadoutError::ideal()) {
  QNAT_CHECK(num_qubits > 0, "noise model requires at least one qubit");
}

void NoiseModel::set_single_qubit_channel(QubitIndex q, PauliChannel channel) {
  QNAT_CHECK(q >= 0 && q < num_qubits_, "qubit out of range");
  channel.validate();
  single_defaults_[static_cast<std::size_t>(q)] = channel;
}

void NoiseModel::set_gate_channel(GateType type, QubitIndex q,
                                  PauliChannel channel) {
  QNAT_CHECK(q >= 0 && q < num_qubits_, "qubit out of range");
  channel.validate();
  gate_overrides_[{static_cast<int>(type), q}] = channel;
}

void NoiseModel::set_two_qubit_channel(QubitIndex a, QubitIndex b,
                                       PauliChannel channel) {
  QNAT_CHECK(a >= 0 && a < num_qubits_ && b >= 0 && b < num_qubits_ && a != b,
             "invalid qubit pair");
  channel.validate();
  two_qubit_[sorted_edge(a, b)] = channel;
}

void NoiseModel::set_idle_channel(QubitIndex q, PauliChannel channel) {
  QNAT_CHECK(q >= 0 && q < num_qubits_, "qubit out of range");
  channel.validate();
  idle_[static_cast<std::size_t>(q)] = channel;
}

PauliChannel NoiseModel::idle_channel(QubitIndex q) const {
  QNAT_CHECK(q >= 0 && q < num_qubits_, "qubit out of range");
  return idle_[static_cast<std::size_t>(q)];
}

void NoiseModel::set_coherent_overrotation(QubitIndex q, real angle) {
  QNAT_CHECK(q >= 0 && q < num_qubits_, "qubit out of range");
  coherent_1q_[static_cast<std::size_t>(q)] = angle;
}

real NoiseModel::coherent_overrotation(QubitIndex q) const {
  QNAT_CHECK(q >= 0 && q < num_qubits_, "qubit out of range");
  return coherent_1q_[static_cast<std::size_t>(q)];
}

void NoiseModel::set_coherent_zz(QubitIndex a, QubitIndex b, real angle) {
  QNAT_CHECK(a >= 0 && a < num_qubits_ && b >= 0 && b < num_qubits_ && a != b,
             "invalid qubit pair");
  coherent_zz_[sorted_edge(a, b)] = angle;
}

real NoiseModel::coherent_zz(QubitIndex a, QubitIndex b) const {
  QNAT_CHECK(a >= 0 && a < num_qubits_ && b >= 0 && b < num_qubits_ && a != b,
             "invalid qubit pair");
  const auto it = coherent_zz_.find(sorted_edge(a, b));
  return it == coherent_zz_.end() ? 0.0 : it->second;
}

void NoiseModel::set_readout_error(QubitIndex q, ReadoutError error) {
  QNAT_CHECK(q >= 0 && q < num_qubits_, "qubit out of range");
  error.validate();
  readout_[static_cast<std::size_t>(q)] = error;
}

void NoiseModel::add_coupling(QubitIndex a, QubitIndex b) {
  QNAT_CHECK(a >= 0 && a < num_qubits_ && b >= 0 && b < num_qubits_ && a != b,
             "invalid coupling");
  if (!coupled(a, b)) couplings_.emplace_back(a, b);
}

PauliChannel NoiseModel::single_qubit_channel(GateType type,
                                              QubitIndex q) const {
  QNAT_CHECK(q >= 0 && q < num_qubits_, "qubit out of range");
  const auto it = gate_overrides_.find({static_cast<int>(type), q});
  if (it != gate_overrides_.end()) return it->second;
  if (is_virtual_gate(type)) return PauliChannel::ideal();
  return single_defaults_[static_cast<std::size_t>(q)];
}

PauliChannel NoiseModel::single_qubit_default(QubitIndex q) const {
  QNAT_CHECK(q >= 0 && q < num_qubits_, "qubit out of range");
  return single_defaults_[static_cast<std::size_t>(q)];
}

PauliChannel NoiseModel::two_qubit_channel(QubitIndex a, QubitIndex b) const {
  QNAT_CHECK(a >= 0 && a < num_qubits_ && b >= 0 && b < num_qubits_ && a != b,
             "invalid qubit pair");
  const auto it = two_qubit_.find(sorted_edge(a, b));
  if (it != two_qubit_.end()) return it->second;
  // Uncharacterized edge: conservatively use the worse operand default.
  const PauliChannel& ca = single_defaults_[static_cast<std::size_t>(a)];
  const PauliChannel& cb = single_defaults_[static_cast<std::size_t>(b)];
  return ca.total() >= cb.total() ? ca : cb;
}

ReadoutError NoiseModel::readout_error(QubitIndex q) const {
  QNAT_CHECK(q >= 0 && q < num_qubits_, "qubit out of range");
  return readout_[static_cast<std::size_t>(q)];
}

std::vector<real> NoiseModel::readout_flip_probs_0to1() const {
  std::vector<real> out;
  out.reserve(readout_.size());
  for (const auto& r : readout_) out.push_back(r.p1_given_0());
  return out;
}

std::vector<real> NoiseModel::readout_flip_probs_1to0() const {
  std::vector<real> out;
  out.reserve(readout_.size());
  for (const auto& r : readout_) out.push_back(r.p0_given_1());
  return out;
}

bool NoiseModel::coupled(QubitIndex a, QubitIndex b) const {
  const auto e = sorted_edge(a, b);
  return std::any_of(couplings_.begin(), couplings_.end(), [&](const auto& c) {
    return sorted_edge(c.first, c.second) == e;
  });
}

double NoiseModel::average_single_qubit_error() const {
  double s = 0.0;
  for (const auto& c : single_defaults_) s += c.total();
  return s / static_cast<double>(num_qubits_);
}

double NoiseModel::average_two_qubit_error() const {
  if (couplings_.empty()) return 0.0;
  double s = 0.0;
  for (const auto& [a, b] : couplings_) s += two_qubit_channel(a, b).total();
  return s / static_cast<double>(couplings_.size());
}

double NoiseModel::average_readout_error() const {
  double s = 0.0;
  for (const auto& r : readout_) {
    s += 0.5 * (r.p1_given_0() + r.p0_given_1());
  }
  return s / static_cast<double>(num_qubits_);
}

NoiseModel NoiseModel::restricted_to(
    const std::vector<QubitIndex>& wires) const {
  QNAT_CHECK(!wires.empty(), "restriction needs at least one wire");
  NoiseModel out(name_, static_cast<int>(wires.size()));
  std::vector<QubitIndex> to_new(static_cast<std::size_t>(num_qubits_), -1);
  for (std::size_t i = 0; i < wires.size(); ++i) {
    const QubitIndex w = wires[i];
    QNAT_CHECK(w >= 0 && w < num_qubits_, "restriction wire out of range");
    QNAT_CHECK(to_new[static_cast<std::size_t>(w)] == -1,
               "duplicate wire in restriction");
    to_new[static_cast<std::size_t>(w)] = static_cast<QubitIndex>(i);
  }
  for (std::size_t i = 0; i < wires.size(); ++i) {
    const auto old_q = static_cast<std::size_t>(wires[i]);
    out.single_defaults_[i] = single_defaults_[old_q];
    out.idle_[i] = idle_[old_q];
    out.coherent_1q_[i] = coherent_1q_[old_q];
    out.readout_[i] = readout_[old_q];
  }
  for (const auto& [key, channel] : gate_overrides_) {
    const QubitIndex mapped = to_new[static_cast<std::size_t>(key.second)];
    if (mapped != -1) out.gate_overrides_[{key.first, mapped}] = channel;
  }
  for (const auto& [edge, channel] : two_qubit_) {
    const QubitIndex a = to_new[static_cast<std::size_t>(edge.first)];
    const QubitIndex b = to_new[static_cast<std::size_t>(edge.second)];
    if (a != -1 && b != -1) out.set_two_qubit_channel(a, b, channel);
  }
  for (const auto& [edge, angle] : coherent_zz_) {
    const QubitIndex a = to_new[static_cast<std::size_t>(edge.first)];
    const QubitIndex b = to_new[static_cast<std::size_t>(edge.second)];
    if (a != -1 && b != -1) out.set_coherent_zz(a, b, angle);
  }
  for (const auto& [a, b] : couplings_) {
    const QubitIndex na = to_new[static_cast<std::size_t>(a)];
    const QubitIndex nb = to_new[static_cast<std::size_t>(b)];
    if (na != -1 && nb != -1) out.add_coupling(na, nb);
  }
  return out;
}

void NoiseModel::validate() const {
  const std::string who =
      "noise model '" + (name_.empty() ? std::string("<unnamed>") : name_) +
      "'";
  auto check_channel = [&](const PauliChannel& c, const std::string& where) {
    try {
      c.validate();
    } catch (const Error& e) {
      throw Error(who + ": " + where + ": " + e.what());
    }
  };
  for (int q = 0; q < num_qubits_; ++q) {
    const auto qi = static_cast<std::size_t>(q);
    check_channel(single_defaults_[qi],
                  "single-qubit default on qubit " + std::to_string(q));
    check_channel(idle_[qi], "idle channel on qubit " + std::to_string(q));
    const ReadoutError& ro = readout_[qi];
    QNAT_CHECK(ro.p0_given_0 >= 0.0 && ro.p0_given_0 <= 1.0 &&
                   ro.p1_given_1 >= 0.0 && ro.p1_given_1 <= 1.0,
               who + ": readout assignment probability out of [0, 1] on "
                     "qubit " +
                   std::to_string(q));
    // Rows of the 2x2 confusion matrix are (p, 1-p) pairs, so the sums
    // are 1 by construction; the explicit check documents (and guards)
    // the row-stochasticity invariant drifted matrices must keep.
    QNAT_CHECK(std::abs(ro.p0_given_0 + ro.p1_given_0() - 1.0) <= 1e-12 &&
                   std::abs(ro.p1_given_1 + ro.p0_given_1() - 1.0) <= 1e-12,
               who + ": readout confusion row does not sum to 1 on qubit " +
                   std::to_string(q));
  }
  for (const auto& [key, channel] : gate_overrides_) {
    check_channel(channel, "gate override (type " +
                               std::to_string(key.first) + ") on qubit " +
                               std::to_string(key.second));
  }
  for (const auto& [edge, channel] : two_qubit_) {
    check_channel(channel, "two-qubit channel on edge (" +
                               std::to_string(edge.first) + ", " +
                               std::to_string(edge.second) + ")");
  }
  for (const auto& [a, b] : couplings_) {
    QNAT_CHECK(a >= 0 && a < num_qubits_ && b >= 0 && b < num_qubits_ &&
                   a != b,
               who + ": invalid coupling");
  }
}

std::string NoiseModel::canonical_text() const {
  std::ostringstream os;
  os << "device " << name_ << '\n';
  os << "qubits " << num_qubits_ << '\n';
  for (int q = 0; q < num_qubits_; ++q) {
    const auto qi = static_cast<std::size_t>(q);
    os << "q " << q << " 1q ";
    put_channel(os, single_defaults_[qi]);
    os << " idle ";
    put_channel(os, idle_[qi]);
    os << " coherent ";
    put_real(os, coherent_1q_[qi]);
    os << " readout ";
    put_real(os, readout_[qi].p0_given_0);
    os << ' ';
    put_real(os, readout_[qi].p1_given_1);
    os << '\n';
  }
  for (const auto& [key, channel] : gate_overrides_) {
    os << "gate " << key.first << ' ' << key.second << ' ';
    put_channel(os, channel);
    os << '\n';
  }
  for (const auto& [edge, channel] : two_qubit_) {
    os << "2q " << edge.first << ' ' << edge.second << ' ';
    put_channel(os, channel);
    os << '\n';
  }
  for (const auto& [edge, angle] : coherent_zz_) {
    os << "zz " << edge.first << ' ' << edge.second << ' ';
    put_real(os, angle);
    os << '\n';
  }
  for (const auto& [a, b] : couplings_) {
    os << "coupling " << a << ' ' << b << '\n';
  }
  return std::move(os).str();
}

NoiseModel NoiseModel::scaled(double factor) const {
  QNAT_CHECK(factor >= 0.0, "noise factor must be non-negative");
  NoiseModel out = *this;
  for (auto& c : out.single_defaults_) c = c.scaled(factor);
  for (auto& c : out.idle_) c = c.scaled(factor);
  for (auto& a : out.coherent_1q_) a *= factor;
  for (auto& [key, a] : out.coherent_zz_) a *= factor;
  for (auto& [key, c] : out.gate_overrides_) c = c.scaled(factor);
  for (auto& [key, c] : out.two_qubit_) c = c.scaled(factor);
  for (auto& r : out.readout_) r = r.scaled(factor);
  return out;
}

}  // namespace qnat
