// Device noise model.
//
// Mirrors the structure of IBMQ backend noise models the paper queries
// through Qiskit: per-qubit Pauli channels for single-qubit gates, per-edge
// channels for two-qubit gates, and a per-qubit readout confusion matrix,
// plus the device coupling map used by the router. Channels can be
// overridden per gate type (the paper notes the same gate on different
// qubits/hardware varies by up to 10x).
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "noise/pauli_channel.hpp"
#include "noise/readout_error.hpp"
#include "qsim/circuit.hpp"

namespace qnat {

class NoiseModel {
 public:
  NoiseModel() = default;
  NoiseModel(std::string device_name, int num_qubits);

  /// True for gates implemented as error-free frame changes on IBM
  /// hardware (RZ, phase) or timing placeholders (identity).
  static bool is_virtual_gate(GateType type);

  const std::string& device_name() const { return name_; }
  int num_qubits() const { return num_qubits_; }

  /// Sets the default single-qubit channel for qubit `q` (all 1q gates).
  void set_single_qubit_channel(QubitIndex q, PauliChannel channel);

  /// Overrides the channel for a specific gate type on qubit `q`.
  void set_gate_channel(GateType type, QubitIndex q, PauliChannel channel);

  /// Sets the channel applied to *each* operand qubit of a two-qubit gate
  /// on edge (a, b); symmetric in (a, b).
  void set_two_qubit_channel(QubitIndex a, QubitIndex b, PauliChannel channel);

  /// Sets the readout confusion matrix for qubit `q`.
  void set_readout_error(QubitIndex q, ReadoutError error);

  /// Sets the per-moment idle (decoherence) channel for qubit `q`:
  /// applied once for every circuit layer during which the qubit waits
  /// while others operate. Dephasing-dominant on real hardware (T2 < T1).
  void set_idle_channel(QubitIndex q, PauliChannel channel);

  /// Idle channel of qubit q (ideal when unset).
  PauliChannel idle_channel(QubitIndex q) const;

  /// Sets qubit q's *coherent* single-qubit miscalibration: a systematic
  /// RX over-rotation (radians) applied after every physical single-qubit
  /// gate on q. Unlike stochastic Pauli errors, coherent errors survive
  /// shot averaging and produce the input-dependent shift β_x of Theorem
  /// 3.1 — the component normalization cannot remove.
  void set_coherent_overrotation(QubitIndex q, real angle);
  real coherent_overrotation(QubitIndex q) const;

  /// Sets the coherent ZZ phase (radians) accumulated after every
  /// two-qubit gate on edge (a, b) — the dominant coherent error of
  /// cross-resonance hardware (ZZ crosstalk / echo miscalibration).
  void set_coherent_zz(QubitIndex a, QubitIndex b, real angle);
  real coherent_zz(QubitIndex a, QubitIndex b) const;

  /// Declares a physical coupling (undirected) between qubits a and b.
  void add_coupling(QubitIndex a, QubitIndex b);

  /// Channel for a single-qubit gate of `type` on qubit `q`. Gate-specific
  /// overrides win over the per-qubit default. Identity/RZ gates are
  /// virtual (frame changes) on IBM hardware and return the ideal channel
  /// unless explicitly overridden.
  PauliChannel single_qubit_channel(GateType type, QubitIndex q) const;

  /// Qubit q's single-qubit default channel, ignoring gate overrides and
  /// virtual-gate special cases (the quantity the drift engine walks).
  PauliChannel single_qubit_default(QubitIndex q) const;

  /// Gate-specific channel overrides, keyed by ((int)GateType, qubit).
  /// Exposed so the drift engine can evolve overrides alongside the
  /// defaults they specialize.
  const std::map<std::pair<int, int>, PauliChannel>& gate_override_channels()
      const {
    return gate_overrides_;
  }

  /// Explicitly characterized two-qubit channels, keyed by sorted edge.
  /// Edges absent here fall back to the worse operand default (see
  /// two_qubit_channel).
  const std::map<std::pair<int, int>, PauliChannel>& two_qubit_channels()
      const {
    return two_qubit_;
  }

  /// Channel applied per operand qubit of a two-qubit gate on edge (a, b).
  PauliChannel two_qubit_channel(QubitIndex a, QubitIndex b) const;

  /// Readout error of qubit q (ideal when unset).
  ReadoutError readout_error(QubitIndex q) const;

  /// Per-qubit flip probability vectors in the layout expected by
  /// measure_expectations_shots.
  std::vector<real> readout_flip_probs_0to1() const;
  std::vector<real> readout_flip_probs_1to0() const;

  const std::vector<std::pair<QubitIndex, QubitIndex>>& coupling_map() const {
    return couplings_;
  }

  /// True when qubits a and b are physically coupled.
  bool coupled(QubitIndex a, QubitIndex b) const;

  /// Mean single-qubit gate error over qubits (Fig. 1's x-axis).
  double average_single_qubit_error() const;

  /// Mean per-operand two-qubit gate error over coupled edges.
  double average_two_qubit_error() const;

  /// Mean readout assignment error over qubits.
  double average_readout_error() const;

  /// Returns a copy whose every channel and readout flip probability is
  /// scaled by `factor` (calibration drift / noise factor studies).
  NoiseModel scaled(double factor) const;

  /// Returns the model restricted to `wires` (new qubit i = old
  /// wires[i]): channels, overrides, readout, coherent errors, and the
  /// couplings whose endpoints both survive. Used to compact transpiled
  /// circuits down to their touched wires.
  NoiseModel restricted_to(const std::vector<QubitIndex>& wires) const;

  /// Re-validates every stored channel and readout matrix: Pauli
  /// probabilities non-negative with totals <= 1, readout assignment
  /// probabilities in [0, 1] with each confusion row summing to 1 within
  /// 1e-12. The setters already validate on write; models produced by
  /// bulk transforms (drift, scaling, deserialization) call this before
  /// use so an invalid channel fails loudly — with the offending qubit or
  /// edge named — instead of silently corrupting a simulation.
  void validate() const;

  /// Canonical full-precision text of the entire model (name, channels,
  /// overrides, readout matrices, coherent terms, couplings). Byte-equal
  /// texts <=> identical models; drift replay tests and serving
  /// fingerprints compare and hash this.
  std::string canonical_text() const;

 private:
  std::string name_;
  int num_qubits_ = 0;
  std::vector<PauliChannel> single_defaults_;
  std::vector<PauliChannel> idle_;
  std::vector<real> coherent_1q_;
  std::map<std::pair<int, int>, real> coherent_zz_;             // sorted edge
  std::map<std::pair<int, int>, PauliChannel> gate_overrides_;  // (type, q)
  std::map<std::pair<int, int>, PauliChannel> two_qubit_;       // sorted edge
  std::vector<ReadoutError> readout_;
  std::vector<std::pair<QubitIndex, QubitIndex>> couplings_;
};

}  // namespace qnat
