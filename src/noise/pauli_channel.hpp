// Forwarding header: PauliChannel lives in qsim/ so the density-matrix
// simulator can apply channels without inverting the module layering;
// noise-model code keeps including it from here.
#pragma once

#include "qsim/pauli_channel.hpp"
