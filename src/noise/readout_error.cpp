#include "noise/readout_error.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qnat {

ReadoutError ReadoutError::from_flip_probs(double p_flip_0to1,
                                           double p_flip_1to0) {
  ReadoutError e{1.0 - p_flip_0to1, 1.0 - p_flip_1to0};
  e.validate();
  return e;
}

real ReadoutError::apply_to_expectation(real e) const {
  return slope() * e + intercept();
}

real ReadoutError::apply_to_prob0(real p0) const {
  return p0 * p0_given_0 + (1.0 - p0) * p0_given_1();
}

ReadoutError ReadoutError::scaled(double factor) const {
  QNAT_CHECK(factor >= 0.0, "noise factor must be non-negative");
  const double f01 = std::clamp(p1_given_0() * factor, 0.0, 1.0);
  const double f10 = std::clamp(p0_given_1() * factor, 0.0, 1.0);
  return from_flip_probs(f01, f10);
}

void ReadoutError::validate() const {
  QNAT_CHECK(p0_given_0 >= 0.0 && p0_given_0 <= 1.0,
             "P(0|0) must be a probability");
  QNAT_CHECK(p1_given_1 >= 0.0 && p1_given_1 <= 1.0,
             "P(1|1) must be a probability");
}

}  // namespace qnat
