// Readout (measurement) error model.
//
// A 2x2 confusion matrix per qubit, row = prepared state, column = observed
// bit: M[0][0] = P(observe 0 | state 0), M[0][1] = P(observe 1 | state 0),
// etc. (e.g. IBMQ-Santiago qubit 0 in the paper: [[0.984, 0.016],
// [0.022, 0.978]]).
//
// Acting on a Z expectation e (with P(0) = (1+e)/2) the confusion matrix is
// an affine map e' = slope * e + intercept — this is exactly the γ/β
// structure of Theorem 3.1 and is what makes training-time readout
// injection differentiable.
#pragma once

#include "common/types.hpp"

namespace qnat {

struct ReadoutError {
  /// P(observe 0 | true 0). Diagonal terms near 1 for realistic devices.
  double p0_given_0 = 1.0;
  /// P(observe 1 | true 1).
  double p1_given_1 = 1.0;

  static ReadoutError ideal() { return ReadoutError{1.0, 1.0}; }

  /// Builds from off-diagonal flip probabilities.
  static ReadoutError from_flip_probs(double p_flip_0to1, double p_flip_1to0);

  double p1_given_0() const { return 1.0 - p0_given_0; }
  double p0_given_1() const { return 1.0 - p1_given_1; }

  /// Slope of the affine expectation map e' = slope*e + intercept (the
  /// per-qubit γ contribution of Theorem 3.1).
  double slope() const { return p0_given_0 + p1_given_1 - 1.0; }

  /// Intercept of the affine expectation map (the per-qubit β contribution).
  double intercept() const { return p0_given_0 - p1_given_1; }

  /// Applies the confusion matrix to a Z expectation in [-1, 1].
  real apply_to_expectation(real e) const;

  /// Applies the confusion matrix to P(0).
  real apply_to_prob0(real p0) const;

  /// Scales the flip probabilities by `factor` (noise factor T), clamped
  /// to valid probabilities.
  ReadoutError scaled(double factor) const;

  /// Validates all probabilities lie in [0, 1]; throws otherwise.
  void validate() const;
};

}  // namespace qnat
