// Greedy ASAP circuit-layer scheduling.
//
// Both the stochastic error inserter and the exact channel simulator need
// to know how many layers each qubit spends idle (decoherence is charged
// per idle layer). `MomentTracker` maintains per-qubit next-free-layer
// counters as gates stream by.
#pragma once

#include <algorithm>
#include <vector>

#include "qsim/gate.hpp"

namespace qnat {

class MomentTracker {
 public:
  explicit MomentTracker(int num_qubits)
      : next_free_(static_cast<std::size_t>(num_qubits), 0) {}

  /// Layer the gate starts in (max of its operands' next-free layers).
  int start_layer(const Gate& gate) const {
    int layer = 0;
    for (const QubitIndex q : gate.qubits) {
      layer = std::max(layer, next_free_[static_cast<std::size_t>(q)]);
    }
    return layer;
  }

  /// Idle layers qubit q accrues before joining a gate at `layer`.
  int idle_layers(QubitIndex q, int layer) const {
    return layer - next_free_[static_cast<std::size_t>(q)];
  }

  /// Marks the gate's operands busy during `layer`.
  void occupy(const Gate& gate, int layer) {
    for (const QubitIndex q : gate.qubits) {
      next_free_[static_cast<std::size_t>(q)] = layer + 1;
    }
  }

  /// Depth of the scheduled circuit so far.
  int final_layer() const {
    return next_free_.empty()
               ? 0
               : *std::max_element(next_free_.begin(), next_free_.end());
  }

  int next_free(QubitIndex q) const {
    return next_free_[static_cast<std::size_t>(q)];
  }

 private:
  std::vector<int> next_free_;
};

}  // namespace qnat
