#include "noise/twirling.hpp"

#include <cmath>

#include "common/error.hpp"

namespace qnat {

PauliChannel depolarizing_to_pauli(double lambda) {
  QNAT_CHECK(lambda >= 0.0 && lambda <= 1.0,
             "depolarizing parameter must be in [0, 1]");
  return PauliChannel::symmetric(lambda / 4.0);
}

double average_error_to_depolarizing(double error, int dimension) {
  QNAT_CHECK(error >= 0.0 && error <= 1.0, "gate error must be in [0, 1]");
  QNAT_CHECK(dimension >= 2, "dimension must be >= 2");
  const double d = static_cast<double>(dimension);
  return error * d / (d - 1.0);
}

PauliChannel single_qubit_error_to_pauli(double error) {
  return depolarizing_to_pauli(average_error_to_depolarizing(error, 2));
}

PauliChannel two_qubit_error_to_pauli_per_operand(double error) {
  // Each operand absorbs half the error budget as a symmetric channel.
  QNAT_CHECK(error >= 0.0 && error <= 1.0, "gate error must be in [0, 1]");
  return PauliChannel::symmetric(error / 6.0);
}

PauliChannel amplitude_damping_twirl(double gamma) {
  QNAT_CHECK(gamma >= 0.0 && gamma <= 1.0, "damping γ must be in [0, 1]");
  const double px = gamma / 4.0;
  const double pz = (2.0 - gamma - 2.0 * std::sqrt(1.0 - gamma)) / 4.0;
  return PauliChannel{px, px, pz};
}

PauliChannel dephasing_to_pauli(double p) {
  QNAT_CHECK(p >= 0.0 && p <= 1.0, "dephasing probability must be in [0, 1]");
  return PauliChannel{0.0, 0.0, p};
}

}  // namespace qnat
