// Pauli twirling approximations.
//
// Converts common physical error descriptions (average gate error,
// depolarizing parameter, amplitude damping, dephasing) into the Pauli
// channels the noise-injection pass samples from. These are the standard
// closed forms used when twirling a channel over the Pauli group; device
// presets use them to go from headline calibration numbers (e.g. "SX error
// 2.1e-4") to insertable (pX, pY, pZ) triples.
#pragma once

#include "noise/pauli_channel.hpp"

namespace qnat {

/// Depolarizing channel ρ → (1-λ)ρ + λ I/2 expressed as a Pauli channel:
/// pX = pY = pZ = λ/4.
PauliChannel depolarizing_to_pauli(double lambda);

/// Converts an *average gate error* e (1 - average fidelity, the number
/// reported by device calibration) of a d-dimensional gate to the
/// depolarizing parameter λ = e * d / (d - 1); d = 2 for single-qubit
/// gates, 4 for two-qubit gates.
double average_error_to_depolarizing(double error, int dimension);

/// Single-qubit gate calibration error → Pauli channel (depolarizing
/// twirl): pX = pY = pZ = e/2 / ... = λ/4 with λ = 2e.
PauliChannel single_qubit_error_to_pauli(double error);

/// Two-qubit gate calibration error → per-operand Pauli channel. The
/// insertion pass samples one Pauli per operand qubit, so each operand
/// channel carries half the total error budget: pX = pY = pZ = e/6.
PauliChannel two_qubit_error_to_pauli_per_operand(double error);

/// Pauli twirl of the amplitude-damping channel with decay γ:
/// pX = pY = γ/4, pZ = (2 - γ - 2√(1-γ)) / 4.
PauliChannel amplitude_damping_twirl(double gamma);

/// Pure dephasing with probability p: pZ = p.
PauliChannel dephasing_to_pauli(double p);

}  // namespace qnat
