#include "qsim/backend/backend.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/error.hpp"
#include "common/simd.hpp"
#include "qsim/backend/f32_kernels.hpp"
#include "qsim/backend/scalar_kernels.hpp"
#include "qsim/density_matrix.hpp"
#include "qsim/program.hpp"

namespace qnat::backend {

namespace {

KernelTable make_scalar_table() {
  KernelTable t;
  t.apply_1q = &scalar::apply_1q;
  t.apply_diag_1q = &scalar::apply_diag_1q;
  t.apply_antidiag_1q = &scalar::apply_antidiag_1q;
  t.apply_2q = &scalar::apply_2q;
  t.apply_diag_2q = &scalar::apply_diag_2q;
  t.apply_controlled_1q = &scalar::apply_controlled_1q;
  t.apply_controlled_antidiag_1q = &scalar::apply_controlled_antidiag_1q;
  t.apply_swap = &scalar::apply_swap;
  t.norm_sq = &scalar::norm_sq;
  t.inner = &scalar::inner;
  t.add_scaled = &scalar::add_scaled;
  t.derivative_inner_1q = &scalar::derivative_inner_1q;
  t.derivative_inner_2q = &scalar::derivative_inner_2q;
  return t;
}

KernelTable make_avx2_table() {
  KernelTable t;
  t.apply_1q = &simd::apply_1q;
  t.apply_diag_1q = &simd::apply_diag_1q;
  t.apply_antidiag_1q = &simd::apply_antidiag_1q;
  t.apply_2q = &simd::apply_2q;
  t.apply_diag_2q = &simd::apply_diag_2q;
  t.apply_controlled_1q = &simd::apply_controlled_1q;
  t.apply_controlled_antidiag_1q = &simd::apply_controlled_antidiag_1q;
  // No vectorized swap kernel: the permutation is pure loads/stores and
  // memory-bound either way, so both backends share the scalar routine.
  t.apply_swap = &scalar::apply_swap;
  t.norm_sq = &simd::norm_sq;
  t.inner = &simd::inner;
  t.add_scaled = &simd::add_scaled;
  t.derivative_inner_1q = &simd::derivative_inner_1q;
  t.derivative_inner_2q = &simd::derivative_inner_2q;
  return t;
}

class ScalarBackend final : public Backend {
 public:
  const char* name() const override { return "scalar"; }
  Capabilities caps() const override { return Capabilities{}; }
  bool available() const override { return true; }
  const KernelTable& kernels() const override { return scalar_kernels(); }
};

class Avx2Backend final : public Backend {
 public:
  const char* name() const override { return "avx2"; }
  Capabilities caps() const override {
    return Capabilities{/*vectorized=*/true, /*min_fast_2q_lo=*/2,
                        /*isa=*/"avx2"};
  }
  bool available() const override {
    return simd::compiled() && simd::runtime_supported();
  }
  const KernelTable& kernels() const override {
    static const KernelTable table = make_avx2_table();
    return table;
  }
  bool supports_op(const CompiledOp& op) const override {
    if (!Backend::supports_op(op)) return false;
    if (op.kernel == KernelClass::Swap) return false;  // shared scalar swap
    if (op.num_qubits == 2) {
      // The 2q fast path needs lo = min stride >= 2: neither qubit may
      // be qubit 0 (callers route such pairs to the scalar reference).
      return op.q0 != 0 && op.q1 != 0;
    }
    return true;
  }
};

// Float32 conversion-shim backends. Both report vectorized == false so
// the default selection and simd::set_enabled(true) never auto-pick
// them: reduced precision is an explicit opt-in. Their kernels() table
// is the f64 scalar reference — per-op call sites outside whole-program
// execution (apply_gate, adjoint sweeps) intentionally stay f64; only
// execute()/execute_dm() run the f32 storage path.

class Float32Backend final : public Backend {
 public:
  const char* name() const override { return "f32"; }
  Capabilities caps() const override {
    return Capabilities{/*vectorized=*/false, /*min_fast_2q_lo=*/1,
                        /*isa=*/"generic", /*element_dtype=*/DType::F32};
  }
  bool available() const override { return true; }
  const KernelTable& kernels() const override { return scalar_kernels(); }
  void execute(const CompiledProgram& program, StateVector& state,
               const ParamVector& params) const override {
    f32::execute_program_f32(program, state, params, f32::scalar_table_f32(),
                             /*min_fast_2q_lo=*/1);
  }
  void execute_dm(const CompiledProgram& program, DensityMatrix& rho,
                  const ParamVector& params) const override {
    f32::execute_program_dm_f32(program, rho, params,
                                f32::scalar_table_f32(),
                                /*min_fast_2q_lo=*/1);
  }
};

class Avx2F32Backend final : public Backend {
 public:
  const char* name() const override { return "avx2-f32"; }
  Capabilities caps() const override {
    // min_fast_2q_lo = 1: the f32 kernels vectorize every power-of-two
    // stride (low strides via in-vector permutes), so no 2q pair needs
    // the scalar re-route.
    return Capabilities{/*vectorized=*/false, /*min_fast_2q_lo=*/1,
                        /*isa=*/"avx2", /*element_dtype=*/DType::F32};
  }
  bool available() const override {
    return simd::compiled() && simd::runtime_supported();
  }
  const KernelTable& kernels() const override { return scalar_kernels(); }
  bool supports_op(const CompiledOp& op) const override {
    if (!Backend::supports_op(op)) return false;
    return op.kernel != KernelClass::Swap;  // shared scalar-f32 swap
  }
  void execute(const CompiledProgram& program, StateVector& state,
               const ParamVector& params) const override {
    f32::execute_program_f32(program, state, params, f32::avx2_table_f32(),
                             /*min_fast_2q_lo=*/1);
  }
  void execute_dm(const CompiledProgram& program, DensityMatrix& rho,
                  const ParamVector& params) const override {
    f32::execute_program_dm_f32(program, rho, params, f32::avx2_table_f32(),
                                /*min_fast_2q_lo=*/1);
  }
};

// Live ScopedSelection override for the calling thread; consulted before
// the process-wide atomic in BackendRegistry::active().
thread_local const Backend* tls_selection = nullptr;

}  // namespace

bool Backend::supports_op(const CompiledOp& op) const {
  // Identity ops are skipped at execution; no kernel of any backend runs.
  return op.kernel != KernelClass::Identity;
}

void Backend::execute(const CompiledProgram& program, StateVector& state,
                      const ParamVector& params) const {
  for (const CompiledOp& op : program.ops()) apply_op(state, op, params);
}

void Backend::execute_dm(const CompiledProgram& program, DensityMatrix& rho,
                         const ParamVector& params) const {
  for (const CompiledOp& op : program.ops()) rho.apply_op(op, params);
}

BackendRegistry::BackendRegistry() {
  backends_.push_back(std::make_unique<ScalarBackend>());
  backends_.push_back(std::make_unique<Avx2Backend>());
  backends_.push_back(std::make_unique<Float32Backend>());
  backends_.push_back(std::make_unique<Avx2F32Backend>());
}

BackendRegistry& BackendRegistry::instance() {
  static BackendRegistry* registry = new BackendRegistry();
  return *registry;
}

void BackendRegistry::register_backend(std::unique_ptr<Backend> b) {
  QNAT_CHECK(b != nullptr, "cannot register a null backend");
  QNAT_CHECK(find(b->name()) == nullptr,
             std::string("backend name already registered: ") + b->name());
  backends_.push_back(std::move(b));
}

const Backend* BackendRegistry::find(std::string_view name) const {
  for (const auto& b : backends_) {
    if (name == b->name()) return b.get();
  }
  return nullptr;
}

std::vector<std::string> BackendRegistry::registered_names() const {
  std::vector<std::string> names;
  for (const auto& b : backends_) names.emplace_back(b->name());
  return names;
}

std::vector<std::string> BackendRegistry::available_names() const {
  std::vector<std::string> names;
  for (const auto& b : backends_) {
    if (b->available()) names.emplace_back(b->name());
  }
  return names;
}

const Backend* BackendRegistry::resolve_default() const {
  // 1. Explicit selection by name.
  if (const char* env = std::getenv("QNAT_BACKEND")) {
    if (const Backend* b = find(env); b != nullptr && b->available()) {
      return b;
    }
    if (*env != '\0') {
      std::fprintf(stderr,
                   "qnat: QNAT_BACKEND='%s' is unknown or unavailable on "
                   "this machine; falling back to the default selection\n",
                   env);
    }
  }
  // 2. Legacy QNAT_SIMD switch: any "off" spelling forces scalar. Other
  // values ("on", "auto", ...) keep the best-available default — the
  // vector backend can never be forced on without hardware support.
  if (const char* env = std::getenv("QNAT_SIMD")) {
    if (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0 ||
        std::strcmp(env, "false") == 0 || std::strcmp(env, "scalar") == 0) {
      return find("scalar");
    }
  }
  // 3. Best available: the last registered vectorized backend the
  // machine can run, else the scalar reference.
  const Backend* best = find("scalar");
  for (const auto& b : backends_) {
    if (b->available() && b->caps().vectorized) best = b.get();
  }
  return best;
}

const Backend& BackendRegistry::active() const {
  const Backend* a = active_.load(std::memory_order_relaxed);
  if (a == nullptr) {
    a = resolve_default();
    active_.store(a, std::memory_order_relaxed);
  }
  return *a;
}

bool BackendRegistry::set_active(std::string_view name) {
  const Backend* b = find(name);
  if (b == nullptr || !b->available()) return false;
  active_.store(b, std::memory_order_relaxed);
  return true;
}

const Backend& active() {
  if (tls_selection != nullptr) return *tls_selection;
  return BackendRegistry::instance().active();
}

ScopedSelection::ScopedSelection(std::string_view name)
    : prev_(tls_selection) {
  const Backend* b = BackendRegistry::instance().find(name);
  if (b != nullptr && b->available()) {
    tls_selection = b;
    engaged_ = true;
  }
}

ScopedSelection::~ScopedSelection() { tls_selection = prev_; }

double amplitude_tolerance(DType dtype, std::size_t op_count) {
  if (dtype == DType::F64) return 1e-12;
  // eps32 = 2^-24: unit roundoff of an f32 significand. See the header
  // doc and DESIGN.md for the term-by-term derivation.
  constexpr double eps32 = 1.0 / 16777216.0;
  return 4.0 * eps32 * (4.0 + static_cast<double>(op_count));
}

bool set_active(std::string_view name) {
  return BackendRegistry::instance().set_active(name);
}

std::vector<std::string> available_backends() {
  return BackendRegistry::instance().available_names();
}

const KernelTable& scalar_kernels() {
  static const KernelTable table = make_scalar_table();
  return table;
}

}  // namespace qnat::backend

namespace qnat::simd {

// Legacy shims: the historical boolean SIMD toggle now maps onto the
// backend registry (declared in common/simd.hpp, defined here so the
// common layer does not depend on qsim). enabled() == "the active
// backend is vectorized"; set_enabled(true) selects the best available
// vectorized backend and stays a no-op on hardware without one.

bool enabled() { return backend::active().caps().vectorized; }

void set_enabled(bool on) {
  if (!on) {
    backend::set_active("scalar");
    return;
  }
  const auto& registry = backend::BackendRegistry::instance();
  for (const std::string& name : registry.available_names()) {
    const backend::Backend* b = registry.find(name);
    if (b != nullptr && b->caps().vectorized) {
      backend::set_active(name);
      return;
    }
  }
}

}  // namespace qnat::simd
