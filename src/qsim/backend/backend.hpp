// Pluggable execution backends for the statevector simulator.
//
// A `Backend` bundles everything one kernel implementation needs to run a
// compiled program: a capability descriptor (is it vectorized, which ISA,
// what two-qubit strides its fast path accepts), a table of kernel
// function pointers mirroring the scalar reference signatures, a
// `supports_op` capability query (will this op take the backend's
// accelerated path, or fall back to the scalar reference kernels?), and a
// whole-program `execute` hook. `ScalarBackend` (the portable reference)
// and `Avx2Backend` (the AVX2+FMA kernels from common/simd) register
// themselves in the process-wide `BackendRegistry`; call sites dispatch
// through `backend::active()` instead of branching on cpuid/QNAT_SIMD
// inline.
//
// Selection, first query wins (then sticky until set_active):
//   1. QNAT_BACKEND=<name> — explicit backend by registry name; an
//      unknown or unavailable name falls through with a stderr warning.
//   2. QNAT_SIMD=off|0|false|scalar — legacy switch, forces "scalar".
//   3. The best available backend (avx2 on AVX2+FMA hardware, else
//      scalar).
//
// Numerical contract: every backend must agree with `ScalarBackend` to
// 1e-12 per output and produce the identical deterministic metrics
// fingerprint — enforced for every registered backend by
// tests/qsim/backend_conformance_test.cpp over a corpus covering every
// kernel class. Fallback routing (e.g. the AVX2 2q kernels' lo >= 2
// stride requirement) is expressed through `Capabilities` so call sites
// stay branch-free on backend internals.
//
// Thread safety: registration happens during static init (built-ins) or
// single-threaded setup (register_backend); `active()` / `set_active()`
// are relaxed-atomic and safe to call concurrently with execution. Like
// the old simd::set_enabled, switching backends mid-kernel is not
// supported — switch between runs.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace qnat {
class StateVector;
class DensityMatrix;
struct CompiledOp;
class CompiledProgram;
}  // namespace qnat

namespace qnat::backend {

/// Static capability flags negotiated at dispatch time.
struct Capabilities {
  /// True when the kernel table holds vectorized implementations (and the
  /// qsim.simd.dispatch_* PerRun counters should tick per dispatch).
  bool vectorized = false;
  /// Minimum value of lo = min(stride_a, stride_b) the 2q kernels accept;
  /// pairs below it must run the scalar reference kernels (the AVX2 2q
  /// fast path needs lo >= 2, i.e. neither qubit may be qubit 0).
  std::size_t min_fast_2q_lo = 1;
  /// Short ISA label for manifests/diagnostics ("generic", "avx2", ...).
  const char* isa = "generic";
  /// Element precision of the amplitude storage this backend executes in.
  /// F32 backends keep vectorized == false on purpose: the default
  /// selection (resolve_default, simd::set_enabled) only auto-picks
  /// vectorized backends, so reduced precision is always an explicit
  /// opt-in (QNAT_BACKEND, set_active, or ScopedSelection) and can never
  /// silently become the process default.
  DType element_dtype = DType::F64;
};

/// Per-backend kernel function pointers. Signatures mirror the scalar
/// reference kernels in backend/scalar_kernels.hpp (which themselves
/// mirror common/simd.hpp); see qsim/statevector.cpp for the index
/// enumeration contracts.
struct KernelTable {
  void (*apply_1q)(cplx* amps, std::size_t n, std::size_t stride, cplx m00,
                   cplx m01, cplx m10, cplx m11) = nullptr;
  void (*apply_diag_1q)(cplx* amps, std::size_t n, std::size_t stride,
                        cplx d0, cplx d1) = nullptr;
  void (*apply_antidiag_1q)(cplx* amps, std::size_t n, std::size_t stride,
                            cplx top, cplx bottom) = nullptr;
  void (*apply_2q)(cplx* amps, std::size_t quarter, std::size_t lo,
                   std::size_t hi, std::size_t sa, std::size_t sb,
                   const cplx* m) = nullptr;
  void (*apply_diag_2q)(cplx* amps, std::size_t quarter, std::size_t lo,
                        std::size_t hi, std::size_t sa, std::size_t sb,
                        cplx d0, cplx d1, cplx d2, cplx d3) = nullptr;
  void (*apply_controlled_1q)(cplx* amps, std::size_t quarter, std::size_t lo,
                              std::size_t hi, std::size_t sc, std::size_t st,
                              cplx m00, cplx m01, cplx m10,
                              cplx m11) = nullptr;
  void (*apply_controlled_antidiag_1q)(cplx* amps, std::size_t quarter,
                                       std::size_t lo, std::size_t hi,
                                       std::size_t sc, std::size_t st,
                                       cplx top, cplx bottom) = nullptr;
  void (*apply_swap)(cplx* amps, std::size_t quarter, std::size_t lo,
                     std::size_t hi, std::size_t sa,
                     std::size_t sb) = nullptr;
  double (*norm_sq)(const cplx* amps, std::size_t n) = nullptr;
  cplx (*inner)(const cplx* a, const cplx* b, std::size_t n) = nullptr;
  void (*add_scaled)(cplx* a, const cplx* b, std::size_t n,
                     cplx factor) = nullptr;
  cplx (*derivative_inner_1q)(const cplx* bra, const cplx* ket, std::size_t n,
                              std::size_t stride, cplx d00, cplx d01,
                              cplx d10, cplx d11) = nullptr;
  cplx (*derivative_inner_2q)(const cplx* bra, const cplx* ket,
                              std::size_t quarter, std::size_t lo,
                              std::size_t hi, std::size_t sa, std::size_t sb,
                              const cplx* d) = nullptr;
};

/// One registered kernel implementation.
class Backend {
 public:
  virtual ~Backend() = default;

  /// Registry name ("scalar", "avx2", ...), unique per process.
  virtual const char* name() const = 0;
  virtual Capabilities caps() const = 0;
  /// True when this backend can run on the current machine (e.g. cpuid
  /// reports the required ISA). Unavailable backends are never selected.
  virtual bool available() const = 0;
  virtual const KernelTable& kernels() const = 0;

  /// Capability negotiation: true when `op` would dispatch through this
  /// backend's own kernel table rather than the scalar reference
  /// fallback. Execution is always correct either way — this is a query
  /// for tests, planners and diagnostics, not a precondition.
  virtual bool supports_op(const CompiledOp& op) const;

  /// Runs every op of `program` on `state` under `params`. The default
  /// walks the op list through apply_op (which dispatches per-kernel via
  /// the active backend); override for backends with whole-program
  /// execution strategies.
  virtual void execute(const CompiledProgram& program, StateVector& state,
                       const ParamVector& params) const;

  /// Density-matrix variant: applies every op to `rho` (matrix on the row
  /// qubits, conjugate on the column qubits). The default walks
  /// DensityMatrix::apply_op; the f32 backends override it with the
  /// conversion-shim whole-program path.
  virtual void execute_dm(const CompiledProgram& program, DensityMatrix& rho,
                          const ParamVector& params) const;
};

/// Process-wide name -> Backend map with one active selection.
class BackendRegistry {
 public:
  /// The singleton, with "scalar" and "avx2" pre-registered.
  static BackendRegistry& instance();

  /// Registers an additional backend (tests, experimental ISAs). Names
  /// must be unique; call during single-threaded setup.
  void register_backend(std::unique_ptr<Backend> b);

  /// Looks up a backend by name (null when unknown).
  const Backend* find(std::string_view name) const;

  /// Every registered backend name, registration order.
  std::vector<std::string> registered_names() const;

  /// Registered backends whose available() is true, registration order.
  std::vector<std::string> available_names() const;

  /// The active backend, resolved lazily from QNAT_BACKEND / QNAT_SIMD /
  /// best-available on first use.
  const Backend& active() const;

  /// Selects by name. Returns false (selection unchanged) when the name
  /// is unknown or the backend is unavailable on this machine.
  bool set_active(std::string_view name);

 private:
  BackendRegistry();

  const Backend* resolve_default() const;

  std::vector<std::unique_ptr<Backend>> backends_;
  mutable std::atomic<const Backend*> active_{nullptr};
};

/// The active backend (shorthand for BackendRegistry::instance().active()).
/// A live ScopedSelection on the calling thread takes precedence over the
/// process-wide selection.
const Backend& active();

/// RAII thread-local backend override. While alive, `active()` on this
/// thread resolves to the named backend; other threads and the
/// process-wide selection are untouched — this is how the serving layer
/// runs one request f32 while concurrent requests stay f64. Nests (inner
/// selection wins); an unknown/unavailable name leaves the selection
/// unchanged (engaged() == false) rather than failing, matching
/// set_active's contract.
class ScopedSelection {
 public:
  explicit ScopedSelection(std::string_view name);
  ~ScopedSelection();
  ScopedSelection(const ScopedSelection&) = delete;
  ScopedSelection& operator=(const ScopedSelection&) = delete;

  /// True when the named backend was found and is now this thread's
  /// active selection.
  bool engaged() const { return engaged_; }

 private:
  const Backend* prev_ = nullptr;
  bool engaged_ = false;
};

/// Per-backend differential accuracy bound: the maximum absolute
/// amplitude (and expectation) deviation from the f64 scalar reference a
/// conforming backend of element dtype `dtype` may show after `op_count`
/// compiled ops. F64 backends: 1e-12 flat (bitwise-reordered arithmetic
/// only). F32 backends: 4*eps32*(4 + op_count) with eps32 = 2^-24 — the
/// downconvert step contributes eps32/2 per amplitude, each of op_count
/// gates applies a rounded 2x2/4x4 multiply-accumulate (<= 4 f32
/// roundings on a unit-norm state), and the factor 4 headroom covers
/// worst-case constructive error alignment across a 2^n-dim state. See
/// DESIGN.md "Precision and the f32 backends" for the full derivation.
double amplitude_tolerance(DType dtype, std::size_t op_count);

/// Selects the active backend by name; false when unknown/unavailable.
bool set_active(std::string_view name);

/// Names of the backends runnable on this machine.
std::vector<std::string> available_backends();

/// The portable reference kernel table (the scalar fallback every call
/// site routes to when the active backend's capabilities exclude an op).
const KernelTable& scalar_kernels();

}  // namespace qnat::backend
