#include "qsim/backend/f32_kernels.hpp"

#include <atomic>
#include <cstring>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/simd.hpp"
#include "common/workspace.hpp"
#include "qsim/backend/backend.hpp"
#include "qsim/backend/scalar_kernels.hpp"
#include "qsim/density_matrix.hpp"
#include "qsim/program.hpp"
#include "qsim/statevector.hpp"

namespace qnat::backend::f32 {

namespace {

// --- scalar f32 reference kernels -------------------------------------
// Same loop structure and left-to-right term order as the f64 scalar
// kernels; only the amplitude type narrows. These define the f32
// reference semantics the avx2-f32 kernels are differentially tested
// against (within the f32 tolerance model — FMA contraction means the
// two f32 backends agree to f32 rounding, not bit-for-bit).

void s_apply_1q(cplx32* amps, std::size_t n, std::size_t stride, cplx32 m00,
                cplx32 m01, cplx32 m10, cplx32 m11) {
  for (std::size_t base = 0; base < n; base += 2 * stride) {
    for (std::size_t i = base; i < base + stride; ++i) {
      const cplx32 a0 = amps[i];
      const cplx32 a1 = amps[i + stride];
      amps[i] = m00 * a0 + m01 * a1;
      amps[i + stride] = m10 * a0 + m11 * a1;
    }
  }
}

void s_apply_diag_1q(cplx32* amps, std::size_t n, std::size_t stride,
                     cplx32 d0, cplx32 d1) {
  for (std::size_t base = 0; base < n; base += 2 * stride) {
    for (std::size_t i = base; i < base + stride; ++i) {
      amps[i] *= d0;
      amps[i + stride] *= d1;
    }
  }
}

void s_apply_antidiag_1q(cplx32* amps, std::size_t n, std::size_t stride,
                         cplx32 top, cplx32 bottom) {
  for (std::size_t base = 0; base < n; base += 2 * stride) {
    for (std::size_t i = base; i < base + stride; ++i) {
      const cplx32 a0 = amps[i];
      amps[i] = top * amps[i + stride];
      amps[i + stride] = bottom * a0;
    }
  }
}

void s_apply_2q(cplx32* amps, std::size_t quarter, std::size_t lo,
                std::size_t hi, std::size_t sa, std::size_t sb,
                const cplx32* m) {
  for (std::size_t k = 0; k < quarter; ++k) {
    const std::size_t i = scalar::expand_two_zero_bits(k, lo, hi);
    const std::size_t i00 = i;
    const std::size_t i01 = i | sb;
    const std::size_t i10 = i | sa;
    const std::size_t i11 = i | sa | sb;
    const cplx32 a00 = amps[i00], a01 = amps[i01], a10 = amps[i10],
                 a11 = amps[i11];
    amps[i00] = m[0] * a00 + m[1] * a01 + m[2] * a10 + m[3] * a11;
    amps[i01] = m[4] * a00 + m[5] * a01 + m[6] * a10 + m[7] * a11;
    amps[i10] = m[8] * a00 + m[9] * a01 + m[10] * a10 + m[11] * a11;
    amps[i11] = m[12] * a00 + m[13] * a01 + m[14] * a10 + m[15] * a11;
  }
}

void s_apply_diag_2q(cplx32* amps, std::size_t quarter, std::size_t lo,
                     std::size_t hi, std::size_t sa, std::size_t sb,
                     cplx32 d0, cplx32 d1, cplx32 d2, cplx32 d3) {
  for (std::size_t k = 0; k < quarter; ++k) {
    const std::size_t i = scalar::expand_two_zero_bits(k, lo, hi);
    amps[i] *= d0;
    amps[i | sb] *= d1;
    amps[i | sa] *= d2;
    amps[i | sa | sb] *= d3;
  }
}

void s_apply_controlled_1q(cplx32* amps, std::size_t quarter, std::size_t lo,
                           std::size_t hi, std::size_t sc, std::size_t st,
                           cplx32 m00, cplx32 m01, cplx32 m10, cplx32 m11) {
  for (std::size_t k = 0; k < quarter; ++k) {
    const std::size_t i = scalar::expand_two_zero_bits(k, lo, hi) | sc;
    const cplx32 a0 = amps[i];
    const cplx32 a1 = amps[i | st];
    amps[i] = m00 * a0 + m01 * a1;
    amps[i | st] = m10 * a0 + m11 * a1;
  }
}

void s_apply_controlled_antidiag_1q(cplx32* amps, std::size_t quarter,
                                    std::size_t lo, std::size_t hi,
                                    std::size_t sc, std::size_t st,
                                    cplx32 top, cplx32 bottom) {
  for (std::size_t k = 0; k < quarter; ++k) {
    const std::size_t i = scalar::expand_two_zero_bits(k, lo, hi) | sc;
    const cplx32 a0 = amps[i];
    amps[i] = top * amps[i | st];
    amps[i | st] = bottom * a0;
  }
}

void s_apply_swap(cplx32* amps, std::size_t quarter, std::size_t lo,
                  std::size_t hi, std::size_t sa, std::size_t sb) {
  for (std::size_t k = 0; k < quarter; ++k) {
    const std::size_t i = scalar::expand_two_zero_bits(k, lo, hi);
    const cplx32 tmp = amps[i | sa];
    amps[i | sa] = amps[i | sb];
    amps[i | sb] = tmp;
  }
}

double s_norm_sq(const cplx32* amps, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    s += static_cast<double>(amps[i].real()) * amps[i].real() +
         static_cast<double>(amps[i].imag()) * amps[i].imag();
  }
  return s;
}

KernelTableF32 make_scalar_table() {
  KernelTableF32 t;
  t.apply_1q = &s_apply_1q;
  t.apply_diag_1q = &s_apply_diag_1q;
  t.apply_antidiag_1q = &s_apply_antidiag_1q;
  t.apply_2q = &s_apply_2q;
  t.apply_diag_2q = &s_apply_diag_2q;
  t.apply_controlled_1q = &s_apply_controlled_1q;
  t.apply_controlled_antidiag_1q = &s_apply_controlled_antidiag_1q;
  t.apply_swap = &s_apply_swap;
  t.norm_sq = &s_norm_sq;
  return t;
}

KernelTableF32 make_avx2_table() {
  KernelTableF32 t;
  t.apply_1q = &simd::apply_1q_f32;
  t.apply_diag_1q = &simd::apply_diag_1q_f32;
  t.apply_antidiag_1q = &simd::apply_antidiag_1q_f32;
  // Swap stays on the scalar-f32 routine: pure loads/stores, nothing to
  // vectorize profitably (same split as the f64 avx2 table). Dense 4x4
  // is vectorized — fusion makes it the dominant op class on deep
  // circuits.
  t.apply_2q = &simd::apply_2q_f32;
  t.apply_diag_2q = &simd::apply_diag_2q_f32;
  t.apply_controlled_1q = &simd::apply_controlled_1q_f32;
  t.apply_controlled_antidiag_1q = &simd::apply_controlled_antidiag_1q_f32;
  t.apply_swap = &s_apply_swap;
  t.norm_sq = &simd::norm_sq_f32;
  return t;
}

inline cplx32 narrow(cplx c) {
  return {static_cast<float>(c.real()), static_cast<float>(c.imag())};
}

/// Dispatches one classified matrix through the f32 kernels — the f32
/// analogue of apply_classified_1q/2q, with the 2q fast-path gate (pairs
/// below `min_fast_2q_lo` run the scalar-f32 reference table, mirroring
/// the f64 table_2q split). The avx2-f32 kernels vectorize every stride
/// so their gate is 1; the split only bites for hypothetical tables
/// with a narrower fast path.
void dispatch_f32(cplx32* amps, std::size_t n, KernelClass kernel,
                  const CMatrix& m, QubitIndex q0, QubitIndex q1,
                  int num_qubits_of_op, const KernelTableF32& table,
                  std::size_t min_fast_2q_lo) {
  if (num_qubits_of_op == 1) {
    const std::size_t stride = std::size_t{1} << q0;
    switch (kernel) {
      case KernelClass::Identity:
        return;
      case KernelClass::Diag1Q:
        table.apply_diag_1q(amps, n, stride, narrow(m(0, 0)), narrow(m(1, 1)));
        return;
      case KernelClass::AntiDiag1Q:
        table.apply_antidiag_1q(amps, n, stride, narrow(m(0, 1)),
                                narrow(m(1, 0)));
        return;
      default:
        table.apply_1q(amps, n, stride, narrow(m(0, 0)), narrow(m(0, 1)),
                       narrow(m(1, 0)), narrow(m(1, 1)));
        return;
    }
  }
  const std::size_t sa = std::size_t{1} << q0;  // high matrix bit
  const std::size_t sb = std::size_t{1} << q1;  // low matrix bit
  const std::size_t lo = sa < sb ? sa : sb;
  const std::size_t hi = sa < sb ? sb : sa;
  const std::size_t quarter = n >> 2;
  const KernelTableF32& kt =
      lo >= min_fast_2q_lo ? table : scalar_table_f32();
  switch (kernel) {
    case KernelClass::Identity:
      return;
    case KernelClass::Diag2Q:
      kt.apply_diag_2q(amps, quarter, lo, hi, sa, sb, narrow(m(0, 0)),
                       narrow(m(1, 1)), narrow(m(2, 2)), narrow(m(3, 3)));
      return;
    case KernelClass::CtrlAnti1Q:
      kt.apply_controlled_antidiag_1q(amps, quarter, lo, hi, sa, sb,
                                      narrow(m(2, 3)), narrow(m(3, 2)));
      return;
    case KernelClass::Ctrl1Q:
      kt.apply_controlled_1q(amps, quarter, lo, hi, sa, sb, narrow(m(2, 2)),
                             narrow(m(2, 3)), narrow(m(3, 2)),
                             narrow(m(3, 3)));
      return;
    case KernelClass::Swap:
      kt.apply_swap(amps, quarter, lo, hi, sa, sb);
      return;
    default: {
      cplx32 flat[16];
      for (std::size_t r = 0; r < 4; ++r) {
        for (std::size_t c = 0; c < 4; ++c) flat[4 * r + c] = narrow(m(r, c));
      }
      kt.apply_2q(amps, quarter, lo, hi, sa, sb, flat);
      return;
    }
  }
}

/// Walks the op list over an f32 amplitude buffer, ticking the same
/// Deterministic kernel-class counters as the apply_op walk.
void run_ops_f32(const CompiledProgram& program, const ParamVector& params,
                 cplx32* amps, std::size_t n, const KernelTableF32& table,
                 std::size_t min_fast_2q_lo) {
  for (const CompiledOp& op : program.ops()) {
    if (!op.parameterized) {
      count_kernel_dispatch(op.kernel);
      if (op.kernel == KernelClass::Identity) continue;
      dispatch_f32(amps, n, op.kernel, op.matrix, op.q0, op.q1,
                   op.num_qubits, table, min_fast_2q_lo);
      continue;
    }
    const CMatrix m = op.gate.matrix(op.gate.eval_params(params));
    const KernelClass kernel =
        op.num_qubits == 1 ? classify_1q(m) : classify_2q(m);
    count_kernel_dispatch(kernel);
    dispatch_f32(amps, n, kernel, m, op.q0, op.q1, op.num_qubits, table,
                 min_fast_2q_lo);
  }
}

/// Table + fast-path stride of the preferred f32 implementation: the
/// active backend's own kernels when an f32 backend is selected, else
/// the best the machine supports (the avx2-f32 table on AVX2+FMA
/// hardware, the scalar-f32 reference otherwise).
struct Selection {
  const KernelTableF32* table;
  std::size_t min_fast_2q_lo;
};

Selection pick_tables() {
  const Backend& be = active();
  if (be.caps().element_dtype == DType::F32) {
    const bool avx = std::strcmp(be.name(), "avx2-f32") == 0;
    return {avx ? &avx2_table_f32() : &scalar_table_f32(),
            be.caps().min_fast_2q_lo};
  }
  if (simd::compiled() && simd::runtime_supported()) {
    return {&avx2_table_f32(), 1};
  }
  return {&scalar_table_f32(), 1};
}

std::uint64_t synthetic_state_id() {
  // Shot runs without a backing StateVector mint ids from the top of the
  // id space, so they can never collide with real state ids (which count
  // up from 1).
  static std::atomic<std::uint64_t> next{~std::uint64_t{0}};
  return next.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace

const KernelTableF32& scalar_table_f32() {
  static const KernelTableF32 table = make_scalar_table();
  return table;
}

const KernelTableF32& avx2_table_f32() {
  static const KernelTableF32 table = make_avx2_table();
  return table;
}

void downconvert(const cplx* src, cplx32* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = cplx32(static_cast<float>(src[i].real()),
                    static_cast<float>(src[i].imag()));
  }
}

void upconvert(const cplx32* src, cplx* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = cplx(src[i].real(), src[i].imag());
  }
}

void execute_program_f32(const CompiledProgram& program, StateVector& state,
                         const ParamVector& params,
                         const KernelTableF32& table,
                         std::size_t min_fast_2q_lo) {
  const std::size_t n = state.dim();
  std::vector<cplx32> buf = ws::acquire_amps_f32(n);
  downconvert(state.amplitudes().data(), buf.data(), n);
  run_ops_f32(program, params, buf.data(), n, table, min_fast_2q_lo);
  upconvert(buf.data(), state.mutable_amplitudes(), n);
  ws::release_amps_f32(std::move(buf));
}

void execute_program_dm_f32(const CompiledProgram& program,
                            DensityMatrix& rho, const ParamVector& params,
                            const KernelTableF32& table,
                            std::size_t min_fast_2q_lo) {
  static metrics::Counter dm_ops = metrics::counter("qsim.dm.ops");
  StateVector& vec = rho.vectorized_state();
  const int nq = rho.num_qubits();
  const std::size_t n = vec.dim();
  std::vector<cplx32> buf = ws::acquire_amps_f32(n);
  downconvert(vec.amplitudes().data(), buf.data(), n);
  for (const CompiledOp& op : program.ops()) {
    dm_ops.inc();
    KernelClass kernel = op.kernel;
    CMatrix m;
    if (op.parameterized) {
      m = op.gate.matrix(op.gate.eval_params(params));
      kernel = op.num_qubits == 1 ? classify_1q(m) : classify_2q(m);
    } else {
      if (op.kernel == KernelClass::Identity) continue;
      m = op.matrix;
    }
    const CMatrix mc = m.conjugate();
    if (op.num_qubits == 1) {
      dispatch_f32(buf.data(), n, kernel, m, op.q0, 0, 1, table,
                   min_fast_2q_lo);
      dispatch_f32(buf.data(), n, kernel, mc, op.q0 + nq, 0, 1, table,
                   min_fast_2q_lo);
    } else {
      dispatch_f32(buf.data(), n, kernel, m, op.q0, op.q1, 2, table,
                   min_fast_2q_lo);
      dispatch_f32(buf.data(), n, kernel, mc, op.q0 + nq, op.q1 + nq, 2,
                   table, min_fast_2q_lo);
    }
  }
  upconvert(buf.data(), vec.mutable_amplitudes(), n);
  ws::release_amps_f32(std::move(buf));
}

void run_program_on_f32(const CompiledProgram& program,
                        const ParamVector& params, cplx32* amps,
                        std::size_t n) {
  static metrics::Counter executions =
      metrics::counter("qsim.program.executions");
  static metrics::Counter op_dispatches =
      metrics::counter("qsim.program.op_dispatches");
  executions.inc();
  op_dispatches.add(program.ops().size());
  QNAT_CHECK(n == std::size_t{1} << program.num_qubits(),
             "f32 program run: buffer dimension must be 2^num_qubits");
  const Selection sel = pick_tables();
  run_ops_f32(program, params, amps, n, *sel.table, sel.min_fast_2q_lo);
}

void expectations_z_from_f32(const cplx32* amps, std::size_t n,
                             int num_qubits, std::vector<real>& out) {
  out.assign(static_cast<std::size_t>(num_qubits), 0.0);
  std::vector<double> probs = ws::acquire_reals(n);
  for (std::size_t i = 0; i < n; ++i) {
    probs[i] = static_cast<double>(amps[i].real()) * amps[i].real() +
               static_cast<double>(amps[i].imag()) * amps[i].imag();
  }
  std::size_t len = n;
  for (int q = num_qubits - 1; q >= 0; --q) {
    const std::size_t half = len >> 1;
    double diff = 0.0;
    for (std::size_t j = 0; j < half; ++j) {
      diff += probs[j] - probs[j + half];
      probs[j] += probs[j + half];
    }
    out[static_cast<std::size_t>(q)] = diff;
    len = half;
  }
  ws::release_reals(std::move(probs));
}

void measure_expectations_f32(const CompiledProgram& program,
                              const ParamVector& params,
                              std::vector<real>& out) {
  const std::size_t n = std::size_t{1} << program.num_qubits();
  std::vector<cplx32> buf = ws::acquire_amps_f32(n);
  std::fill(buf.begin(), buf.end(), cplx32{0.0f, 0.0f});
  buf[0] = cplx32{1.0f, 0.0f};
  run_program_on_f32(program, params, buf.data(), n);
  expectations_z_from_f32(buf.data(), n, program.num_qubits(), out);
  ws::release_amps_f32(std::move(buf));
}

std::vector<std::size_t> sample_f32(const cplx32* amps, std::size_t n,
                                    std::uint64_t state_id,
                                    std::uint64_t generation, Rng& rng,
                                    int shots) {
  QNAT_CHECK(shots > 0, "sample requires positive shot count");
  static metrics::Counter shots_drawn =
      metrics::counter("qsim.sv.shots_drawn");
  shots_drawn.add(static_cast<std::uint64_t>(shots));
  ws::CumTable& slot = ws::cumtable_slot();
  // dtype participates in the cache key: the same logical state sampled
  // through its f64 amplitudes produces a (slightly) different table, so
  // matching (state_id, generation) alone must not count as a hit.
  if (!slot.valid || slot.state_id != state_id ||
      slot.generation != generation || slot.dtype != DType::F32) {
    static metrics::Counter builds = metrics::counter(
        "qsim.sv.cumtable_builds", metrics::Stability::PerRun);
    builds.inc();
    slot.cumulative.resize(n);
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += static_cast<double>(amps[i].real()) * amps[i].real() +
             static_cast<double>(amps[i].imag()) * amps[i].imag();
      slot.cumulative[i] = acc;
    }
    slot.total_mass = acc;
    slot.state_id = state_id;
    slot.generation = generation;
    slot.dtype = DType::F32;
    slot.valid = true;
    ws::account_cumtable(slot);
  }
  QNAT_CHECK(slot.total_mass > 0.0,
             "sample from a state with no probability mass");
  std::vector<std::size_t> out;
  out.reserve(static_cast<std::size_t>(shots));
  for (int s = 0; s < shots; ++s) {
    out.push_back(StateVector::sample_index(slot.cumulative,
                                            rng.uniform() * slot.total_mass));
  }
  return out;
}

std::vector<real> measure_expectations_shots_f32(
    const CompiledProgram& program, const ParamVector& params, Rng& rng,
    int shots) {
  QNAT_CHECK(shots > 0, "sample requires positive shot count");
  const int nq = program.num_qubits();
  const std::size_t n = std::size_t{1} << nq;
  std::vector<cplx32> buf = ws::acquire_amps_f32(n);
  std::fill(buf.begin(), buf.end(), cplx32{0.0f, 0.0f});
  buf[0] = cplx32{1.0f, 0.0f};
  run_program_on_f32(program, params, buf.data(), n);
  std::vector<long> plus_counts(static_cast<std::size_t>(nq), 0);
  for (const std::size_t basis :
       sample_f32(buf.data(), n, synthetic_state_id(), 0, rng, shots)) {
    for (int q = 0; q < nq; ++q) {
      if (!((basis >> q) & 1u)) ++plus_counts[static_cast<std::size_t>(q)];
    }
  }
  ws::release_amps_f32(std::move(buf));
  std::vector<real> out(static_cast<std::size_t>(nq));
  for (int q = 0; q < nq; ++q) {
    const real p_plus =
        static_cast<real>(plus_counts[static_cast<std::size_t>(q)]) / shots;
    out[static_cast<std::size_t>(q)] = 2.0 * p_plus - 1.0;
  }
  return out;
}

}  // namespace qnat::backend::f32
