// Float32 mixed-precision simulation path.
//
// The f32 backends ("f32" scalar reference and "avx2-f32" 8-lane; see
// backend.cpp) store amplitudes as complex<float> and convert at the
// Program boundary: Backend::execute leases a pooled cplx32 mirror of
// the statevector, downconverts once, runs every op through the f32
// kernel table below, and upconverts once at the end. Matrices, gate
// parameters and all reductions stay double — only amplitude *storage*
// and the per-op multiply/accumulate arithmetic drop to f32, which is
// what halves memory bandwidth and doubles SIMD lane count.
//
// Numerical contract: per-backend tolerance is the analytic ulp-scaled
// model backend::amplitude_tolerance (~eps32 * O(ops); see DESIGN.md
// "Precision" for the derivation), enforced against the f64 scalar
// reference by the precision-aware conformance harness. Gradients and
// the adjoint differentiator intentionally have no f32 path — training
// stays f64; f32 is an inference-serving precision.
//
// Besides the backend execute hooks this module exposes the pieces the
// serving/measurement layer and the tests consume directly:
//  * one-pass expectation folds reading f32 amplitudes with double
//    accumulation (never upconverting the state),
//  * f32 finite-shot sampling whose cached cumulative table is keyed by
//    element dtype in addition to (state_id, generation),
//  * the raw kernel tables for differential kernel-level tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace qnat {
class StateVector;
class DensityMatrix;
class CompiledProgram;
}  // namespace qnat

namespace qnat::backend::f32 {

/// Per-backend f32 kernel function pointers; signatures mirror the f64
/// KernelTable (scalar_kernels.hpp) with cplx32 amplitudes. norm_sq
/// accumulates in double.
struct KernelTableF32 {
  void (*apply_1q)(cplx32* amps, std::size_t n, std::size_t stride,
                   cplx32 m00, cplx32 m01, cplx32 m10, cplx32 m11) = nullptr;
  void (*apply_diag_1q)(cplx32* amps, std::size_t n, std::size_t stride,
                        cplx32 d0, cplx32 d1) = nullptr;
  void (*apply_antidiag_1q)(cplx32* amps, std::size_t n, std::size_t stride,
                            cplx32 top, cplx32 bottom) = nullptr;
  void (*apply_2q)(cplx32* amps, std::size_t quarter, std::size_t lo,
                   std::size_t hi, std::size_t sa, std::size_t sb,
                   const cplx32* m) = nullptr;
  void (*apply_diag_2q)(cplx32* amps, std::size_t quarter, std::size_t lo,
                        std::size_t hi, std::size_t sa, std::size_t sb,
                        cplx32 d0, cplx32 d1, cplx32 d2, cplx32 d3) = nullptr;
  void (*apply_controlled_1q)(cplx32* amps, std::size_t quarter,
                              std::size_t lo, std::size_t hi, std::size_t sc,
                              std::size_t st, cplx32 m00, cplx32 m01,
                              cplx32 m10, cplx32 m11) = nullptr;
  void (*apply_controlled_antidiag_1q)(cplx32* amps, std::size_t quarter,
                                       std::size_t lo, std::size_t hi,
                                       std::size_t sc, std::size_t st,
                                       cplx32 top, cplx32 bottom) = nullptr;
  void (*apply_swap)(cplx32* amps, std::size_t quarter, std::size_t lo,
                     std::size_t hi, std::size_t sa,
                     std::size_t sb) = nullptr;
  double (*norm_sq)(const cplx32* amps, std::size_t n) = nullptr;
};

/// The portable scalar f32 reference table.
const KernelTableF32& scalar_table_f32();

/// The AVX2 8-lane table (common/simd *_f32 kernels; swap and dense 4x4
/// stay on the scalar-f32 routines — same split as the f64 avx2 table).
const KernelTableF32& avx2_table_f32();

/// Downconverts n f64 amplitudes into dst (per-element nearest rounding).
void downconvert(const cplx* src, cplx32* dst, std::size_t n);

/// Upconverts n f32 amplitudes into dst (exact).
void upconvert(const cplx32* src, cplx* dst, std::size_t n);

/// Runs every op of `program` on `state` through `table`: downconvert,
/// per-op classify/dispatch in f32 (2q pairs with lo < min_fast_2q_lo
/// fall back to the scalar-f32 table), upconvert. Ticks the same
/// Deterministic kernel-class counters as the default apply_op walk, so
/// the metrics fingerprint is backend-invariant.
void execute_program_f32(const CompiledProgram& program, StateVector& state,
                         const ParamVector& params,
                         const KernelTableF32& table,
                         std::size_t min_fast_2q_lo);

/// Density-matrix variant: converts the vectorized rho (a 2n-qubit
/// statevector) once and applies each op's matrix on the row qubits and
/// its conjugate on the column qubits in f32, mirroring
/// DensityMatrix::apply_op (including the qsim.dm.ops counter).
void execute_program_dm_f32(const CompiledProgram& program,
                            DensityMatrix& rho, const ParamVector& params,
                            const KernelTableF32& table,
                            std::size_t min_fast_2q_lo);

/// Runs every op of `program` on a caller-owned f32 amplitude buffer of
/// dimension n == 2^num_qubits through the preferred f32 table (the
/// active backend's when an f32 backend is selected, else the best the
/// machine supports). Ticks the program-execution and kernel-class
/// counters like CompiledProgram::run. Building block for the
/// fixed-point pipeline and kernel-level tests.
void run_program_on_f32(const CompiledProgram& program,
                        const ParamVector& params, cplx32* amps,
                        std::size_t n);

/// One-pass Z-expectation fold over f32 amplitudes: probabilities are
/// squared in f32 storage order but accumulated in double through the
/// same halving fold as StateVector::expectations_z_into. Used by
/// measure_expectations_f32 and the fixed-point pipeline tests.
void expectations_z_from_f32(const cplx32* amps, std::size_t n,
                             int num_qubits, std::vector<real>& out);

/// Runs `program` entirely in f32 (through the best available f32 table,
/// or the active backend's when an f32 backend is active) and folds the
/// expectations directly from the f32 amplitudes — the state is never
/// upconverted. The allocation-free analytic path of f32 serving.
void measure_expectations_f32(const CompiledProgram& program,
                              const ParamVector& params,
                              std::vector<real>& out);

/// Finite-shot readout from an f32 amplitude buffer mirroring the state
/// identified by (state_id, generation). The cached cumulative table is
/// reused across calls like StateVector::sample, but tagged DType::F32:
/// alternating f64 and f32 sampling of the same logical state on one
/// thread rebuilds rather than serving the other precision's table.
std::vector<std::size_t> sample_f32(const cplx32* amps, std::size_t n,
                                    std::uint64_t state_id,
                                    std::uint64_t generation, Rng& rng,
                                    int shots);

/// Shot-sampled per-qubit Z expectations of `program` run in f32:
/// executes through the f32 path, samples via sample_f32 (dtype-keyed
/// cumulative table) and averages ±1 readouts.
std::vector<real> measure_expectations_shots_f32(
    const CompiledProgram& program, const ParamVector& params, Rng& rng,
    int shots);

}  // namespace qnat::backend::f32
