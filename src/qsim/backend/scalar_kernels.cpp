#include "qsim/backend/scalar_kernels.hpp"

#include <complex>

namespace qnat::backend::scalar {

void apply_1q(cplx* amps, std::size_t n, std::size_t stride, cplx m00,
              cplx m01, cplx m10, cplx m11) {
  for (std::size_t base = 0; base < n; base += 2 * stride) {
    for (std::size_t i = base; i < base + stride; ++i) {
      const cplx a0 = amps[i];
      const cplx a1 = amps[i + stride];
      amps[i] = m00 * a0 + m01 * a1;
      amps[i + stride] = m10 * a0 + m11 * a1;
    }
  }
}

void apply_diag_1q(cplx* amps, std::size_t n, std::size_t stride, cplx d0,
                   cplx d1) {
  for (std::size_t base = 0; base < n; base += 2 * stride) {
    for (std::size_t i = base; i < base + stride; ++i) {
      amps[i] *= d0;
      amps[i + stride] *= d1;
    }
  }
}

void apply_antidiag_1q(cplx* amps, std::size_t n, std::size_t stride,
                       cplx top, cplx bottom) {
  for (std::size_t base = 0; base < n; base += 2 * stride) {
    for (std::size_t i = base; i < base + stride; ++i) {
      const cplx a0 = amps[i];
      amps[i] = top * amps[i + stride];
      amps[i + stride] = bottom * a0;
    }
  }
}

void apply_2q(cplx* amps, std::size_t quarter, std::size_t lo, std::size_t hi,
              std::size_t sa, std::size_t sb, const cplx* m) {
  for (std::size_t k = 0; k < quarter; ++k) {
    const std::size_t i = expand_two_zero_bits(k, lo, hi);
    const std::size_t i00 = i;
    const std::size_t i01 = i | sb;
    const std::size_t i10 = i | sa;
    const std::size_t i11 = i | sa | sb;
    const cplx a00 = amps[i00], a01 = amps[i01], a10 = amps[i10],
               a11 = amps[i11];
    amps[i00] = m[0] * a00 + m[1] * a01 + m[2] * a10 + m[3] * a11;
    amps[i01] = m[4] * a00 + m[5] * a01 + m[6] * a10 + m[7] * a11;
    amps[i10] = m[8] * a00 + m[9] * a01 + m[10] * a10 + m[11] * a11;
    amps[i11] = m[12] * a00 + m[13] * a01 + m[14] * a10 + m[15] * a11;
  }
}

void apply_diag_2q(cplx* amps, std::size_t quarter, std::size_t lo,
                   std::size_t hi, std::size_t sa, std::size_t sb, cplx d0,
                   cplx d1, cplx d2, cplx d3) {
  for (std::size_t k = 0; k < quarter; ++k) {
    const std::size_t i = expand_two_zero_bits(k, lo, hi);
    amps[i] *= d0;
    amps[i | sb] *= d1;
    amps[i | sa] *= d2;
    amps[i | sa | sb] *= d3;
  }
}

void apply_controlled_1q(cplx* amps, std::size_t quarter, std::size_t lo,
                         std::size_t hi, std::size_t sc, std::size_t st,
                         cplx m00, cplx m01, cplx m10, cplx m11) {
  for (std::size_t k = 0; k < quarter; ++k) {
    const std::size_t i = expand_two_zero_bits(k, lo, hi) | sc;
    const cplx a0 = amps[i];
    const cplx a1 = amps[i | st];
    amps[i] = m00 * a0 + m01 * a1;
    amps[i | st] = m10 * a0 + m11 * a1;
  }
}

void apply_controlled_antidiag_1q(cplx* amps, std::size_t quarter,
                                  std::size_t lo, std::size_t hi,
                                  std::size_t sc, std::size_t st, cplx top,
                                  cplx bottom) {
  for (std::size_t k = 0; k < quarter; ++k) {
    const std::size_t i = expand_two_zero_bits(k, lo, hi) | sc;
    const cplx a0 = amps[i];
    amps[i] = top * amps[i | st];
    amps[i | st] = bottom * a0;
  }
}

void apply_swap(cplx* amps, std::size_t quarter, std::size_t lo,
                std::size_t hi, std::size_t sa, std::size_t sb) {
  for (std::size_t k = 0; k < quarter; ++k) {
    const std::size_t i = expand_two_zero_bits(k, lo, hi);
    const cplx tmp = amps[i | sa];
    amps[i | sa] = amps[i | sb];
    amps[i | sb] = tmp;
  }
}

double norm_sq(const cplx* amps, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += std::norm(amps[i]);
  return s;
}

cplx inner(const cplx* a, const cplx* b, std::size_t n) {
  cplx s{0.0, 0.0};
  for (std::size_t i = 0; i < n; ++i) s += std::conj(a[i]) * b[i];
  return s;
}

void add_scaled(cplx* a, const cplx* b, std::size_t n, cplx factor) {
  for (std::size_t i = 0; i < n; ++i) a[i] += factor * b[i];
}

cplx derivative_inner_1q(const cplx* bra, const cplx* ket, std::size_t n,
                         std::size_t stride, cplx d00, cplx d01, cplx d10,
                         cplx d11) {
  cplx acc{0.0, 0.0};
  for (std::size_t base = 0; base < n; base += 2 * stride) {
    for (std::size_t i = base; i < base + stride; ++i) {
      const cplx k0 = ket[i];
      const cplx k1 = ket[i + stride];
      acc += std::conj(bra[i]) * (d00 * k0 + d01 * k1);
      acc += std::conj(bra[i + stride]) * (d10 * k0 + d11 * k1);
    }
  }
  return acc;
}

cplx derivative_inner_2q(const cplx* bra, const cplx* ket,
                         std::size_t quarter, std::size_t lo, std::size_t hi,
                         std::size_t sa, std::size_t sb, const cplx* d) {
  cplx acc{0.0, 0.0};
  for (std::size_t k = 0; k < quarter; ++k) {
    const std::size_t i = expand_two_zero_bits(k, lo, hi);
    const std::size_t idx[4] = {i, i | sb, i | sa, i | sa | sb};
    cplx kv[4];
    for (int j = 0; j < 4; ++j) kv[j] = ket[idx[j]];
    for (int r = 0; r < 4; ++r) {
      cplx row{0.0, 0.0};
      for (int col = 0; col < 4; ++col) row += d[4 * r + col] * kv[col];
      acc += std::conj(bra[idx[r]]) * row;
    }
  }
  return acc;
}

}  // namespace qnat::backend::scalar
