// Portable scalar reference kernels for the statevector simulator.
//
// These are the loops that used to live inline in qsim/statevector.cpp
// and grad/adjoint.cpp, lifted out as free functions so (a) the
// ScalarBackend kernel table can point at them, and (b) every other
// backend's call sites can fall back to them for ops outside the
// backend's capabilities (e.g. two-qubit pairs with lo == 1 on AVX2).
// They define the numerical reference every registered backend is held
// to (1e-12 differential bound, backend_conformance_test).
//
// Index enumeration contracts match common/simd.hpp: 1q kernels walk
// pairs (i, i+stride); 2q kernels expand a dense counter k over
// `quarter` values to the basis index with zero bits inserted at strides
// lo < hi, then address the four sub-states via sa (high matrix bit) and
// sb (low matrix bit).
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace qnat::backend::scalar {

void apply_1q(cplx* amps, std::size_t n, std::size_t stride, cplx m00,
              cplx m01, cplx m10, cplx m11);

void apply_diag_1q(cplx* amps, std::size_t n, std::size_t stride, cplx d0,
                   cplx d1);

void apply_antidiag_1q(cplx* amps, std::size_t n, std::size_t stride,
                       cplx top, cplx bottom);

void apply_2q(cplx* amps, std::size_t quarter, std::size_t lo, std::size_t hi,
              std::size_t sa, std::size_t sb, const cplx* m);

void apply_diag_2q(cplx* amps, std::size_t quarter, std::size_t lo,
                   std::size_t hi, std::size_t sa, std::size_t sb, cplx d0,
                   cplx d1, cplx d2, cplx d3);

void apply_controlled_1q(cplx* amps, std::size_t quarter, std::size_t lo,
                         std::size_t hi, std::size_t sc, std::size_t st,
                         cplx m00, cplx m01, cplx m10, cplx m11);

void apply_controlled_antidiag_1q(cplx* amps, std::size_t quarter,
                                  std::size_t lo, std::size_t hi,
                                  std::size_t sc, std::size_t st, cplx top,
                                  cplx bottom);

/// Swaps the |01> and |10> sub-amplitudes of every expanded group.
void apply_swap(cplx* amps, std::size_t quarter, std::size_t lo,
                std::size_t hi, std::size_t sa, std::size_t sb);

double norm_sq(const cplx* amps, std::size_t n);

cplx inner(const cplx* a, const cplx* b, std::size_t n);

void add_scaled(cplx* a, const cplx* b, std::size_t n, cplx factor);

cplx derivative_inner_1q(const cplx* bra, const cplx* ket, std::size_t n,
                         std::size_t stride, cplx d00, cplx d01, cplx d10,
                         cplx d11);

cplx derivative_inner_2q(const cplx* bra, const cplx* ket,
                         std::size_t quarter, std::size_t lo, std::size_t hi,
                         std::size_t sa, std::size_t sb, const cplx* d);

/// The 2q zero-bit expansion shared by the kernels above (exposed for
/// call sites that enumerate groups themselves, e.g. apply_swap users).
inline std::size_t expand_two_zero_bits(std::size_t k, std::size_t lo,
                                        std::size_t hi) {
  std::size_t i = (k & (lo - 1)) | ((k & ~(lo - 1)) << 1);
  return (i & (hi - 1)) | ((i & ~(hi - 1)) << 1);
}

}  // namespace qnat::backend::scalar
