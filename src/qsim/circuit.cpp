#include "qsim/circuit.hpp"

#include <sstream>

#include "common/error.hpp"

namespace qnat {

Circuit::Circuit(int num_qubits, int num_params)
    : num_qubits_(num_qubits), num_params_(num_params) {
  QNAT_CHECK(num_qubits > 0, "circuit requires at least one qubit");
  QNAT_CHECK(num_params >= 0, "negative parameter count");
}

void Circuit::append(Gate gate) {
  for (QubitIndex q : gate.qubits) {
    QNAT_CHECK(q >= 0 && q < num_qubits_,
               "gate qubit out of range: " + gate.to_string());
  }
  for (const auto& p : gate.params) {
    for (const auto& term : p.terms) {
      QNAT_CHECK(term.id >= 0 && term.id < num_params_,
                 "gate parameter out of range: " + gate.to_string());
    }
  }
  gates_.push_back(std::move(gate));
}

void Circuit::extend(const Circuit& other, int param_offset) {
  QNAT_CHECK(other.num_qubits_ == num_qubits_,
             "extend requires matching qubit counts");
  for (Gate g : other.gates_) {
    for (auto& p : g.params) {
      for (auto& term : p.terms) term.id += param_offset;
    }
    append(std::move(g));
  }
}

int Circuit::allocate_params(int count) {
  QNAT_CHECK(count >= 0, "negative parameter allocation");
  const int first = num_params_;
  num_params_ += count;
  return first;
}

int Circuit::num_parameterized_gates() const {
  int n = 0;
  for (const auto& g : gates_) {
    if (g.is_parameterized()) ++n;
  }
  return n;
}

std::string Circuit::to_string() const {
  std::ostringstream os;
  os << "circuit(" << num_qubits_ << " qubits, " << num_params_
     << " params, " << gates_.size() << " gates)\n";
  for (const auto& g : gates_) os << "  " << g.to_string() << "\n";
  return os.str();
}

}  // namespace qnat
