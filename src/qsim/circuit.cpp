#include "qsim/circuit.hpp"

#include <cstring>
#include <sstream>

#include "common/error.hpp"

namespace qnat {

Circuit::Circuit(int num_qubits, int num_params)
    : num_qubits_(num_qubits), num_params_(num_params) {
  QNAT_CHECK(num_qubits > 0, "circuit requires at least one qubit");
  QNAT_CHECK(num_params >= 0, "negative parameter count");
}

void Circuit::append(Gate gate) {
  for (QubitIndex q : gate.qubits) {
    QNAT_CHECK(q >= 0 && q < num_qubits_,
               "gate qubit out of range: " + gate.to_string());
  }
  for (const auto& p : gate.params) {
    for (const auto& term : p.terms) {
      QNAT_CHECK(term.id >= 0 && term.id < num_params_,
                 "gate parameter out of range: " + gate.to_string());
    }
  }
  gates_.push_back(std::move(gate));
}

void Circuit::extend(const Circuit& other, int param_offset) {
  QNAT_CHECK(other.num_qubits_ == num_qubits_,
             "extend requires matching qubit counts");
  for (Gate g : other.gates_) {
    for (auto& p : g.params) {
      for (auto& term : p.terms) term.id += param_offset;
    }
    append(std::move(g));
  }
}

int Circuit::allocate_params(int count) {
  QNAT_CHECK(count >= 0, "negative parameter allocation");
  const int first = num_params_;
  num_params_ += count;
  return first;
}

namespace {

// splitmix64 finalizer as a running-hash combiner.
std::uint64_t hash_mix(std::uint64_t acc, std::uint64_t v) {
  std::uint64_t z = acc ^ (v + 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_real(std::uint64_t acc, real v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return hash_mix(acc, bits);
}

}  // namespace

std::uint64_t Circuit::fingerprint() const {
  std::uint64_t acc = hash_mix(static_cast<std::uint64_t>(num_qubits_),
                               static_cast<std::uint64_t>(num_params_));
  for (const auto& g : gates_) {
    acc = hash_mix(acc, static_cast<std::uint64_t>(g.type));
    for (const QubitIndex q : g.qubits) {
      acc = hash_mix(acc, static_cast<std::uint64_t>(q));
    }
    for (const auto& expr : g.params) {
      acc = hash_real(acc, expr.offset);
      for (const auto& term : expr.terms) {
        acc = hash_mix(acc, static_cast<std::uint64_t>(term.id));
        acc = hash_real(acc, term.scale);
      }
    }
  }
  return acc;
}

int Circuit::num_parameterized_gates() const {
  int n = 0;
  for (const auto& g : gates_) {
    if (g.is_parameterized()) ++n;
  }
  return n;
}

std::string Circuit::to_string() const {
  std::ostringstream os;
  os << "circuit(" << num_qubits_ << " qubits, " << num_params_
     << " params, " << gates_.size() << " gates)\n";
  for (const auto& g : gates_) os << "  " << g.to_string() << "\n";
  return os.str();
}

Circuit bind_params(const Circuit& circuit, ParamIndex first,
                    const std::vector<real>& values) {
  QNAT_CHECK(first >= 0 &&
                 static_cast<std::size_t>(first) + values.size() <=
                     static_cast<std::size_t>(circuit.num_params()),
             "bind_params range exceeds the circuit's parameter count");
  const ParamIndex last = first + static_cast<ParamIndex>(values.size());
  Circuit bound(circuit.num_qubits(), circuit.num_params());
  for (const Gate& gate : circuit.gates()) {
    Gate g = gate;
    for (ParamExpr& expr : g.params) {
      ParamExpr folded;
      folded.offset = expr.offset;
      for (const ParamExpr::Term& term : expr.terms) {
        if (term.id >= first && term.id < last) {
          folded.offset +=
              term.scale * values[static_cast<std::size_t>(term.id - first)];
        } else {
          folded.terms.push_back(term);
        }
      }
      expr = std::move(folded);
    }
    bound.append(std::move(g));
  }
  return bound;
}

}  // namespace qnat
