// Circuit intermediate representation.
//
// A `Circuit` is an ordered gate list over `num_qubits` qubits with
// `num_params` free real parameters. Builder methods append gates either
// with constant angles (`*_const`) or bound to a parameter slot. The same
// IR is consumed by the simulator, the adjoint differentiator, the
// transpiler, and the noise-injection pass.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "qsim/gate.hpp"

namespace qnat {

class Circuit {
 public:
  Circuit() = default;
  explicit Circuit(int num_qubits, int num_params = 0);

  int num_qubits() const { return num_qubits_; }
  int num_params() const { return num_params_; }
  std::size_t size() const { return gates_.size(); }
  bool empty() const { return gates_.empty(); }

  const std::vector<Gate>& gates() const { return gates_; }
  const Gate& gate(std::size_t i) const { return gates_[i]; }

  /// Mutable gate access for passes that rewrite angles in place (e.g.
  /// parameter-shift offset poking, transpiler optimizations). Qubit and
  /// parameter ranges are the caller's responsibility to preserve.
  Gate& mutable_gate(std::size_t i) { return gates_[i]; }

  /// Appends a fully-specified gate; validates qubit and parameter ranges.
  void append(Gate gate);

  /// Appends all gates of `other` (same qubit count required); parameter
  /// indices of `other` are shifted by `param_offset`.
  void extend(const Circuit& other, int param_offset = 0);

  /// Grows the free-parameter count and returns the first new slot index.
  int allocate_params(int count);

  // --- convenience builders: non-parameterized gates ---
  void x(QubitIndex q) { append(Gate(GateType::X, {q})); }
  void y(QubitIndex q) { append(Gate(GateType::Y, {q})); }
  void z(QubitIndex q) { append(Gate(GateType::Z, {q})); }
  void h(QubitIndex q) { append(Gate(GateType::H, {q})); }
  void s(QubitIndex q) { append(Gate(GateType::S, {q})); }
  void t(QubitIndex q) { append(Gate(GateType::T, {q})); }
  void sx(QubitIndex q) { append(Gate(GateType::SX, {q})); }
  void sh(QubitIndex q) { append(Gate(GateType::SH, {q})); }
  void id(QubitIndex q) { append(Gate(GateType::I, {q})); }
  void cx(QubitIndex c, QubitIndex t) { append(Gate(GateType::CX, {c, t})); }
  void cy(QubitIndex c, QubitIndex t) { append(Gate(GateType::CY, {c, t})); }
  void cz(QubitIndex c, QubitIndex t) { append(Gate(GateType::CZ, {c, t})); }
  void swap(QubitIndex a, QubitIndex b) {
    append(Gate(GateType::SWAP, {a, b}));
  }
  void sqrtswap(QubitIndex a, QubitIndex b) {
    append(Gate(GateType::SqrtSwap, {a, b}));
  }

  // --- convenience builders: parameterized, bound to parameter slots ---
  void rx(QubitIndex q, ParamIndex p) {
    append(Gate(GateType::RX, {q}, {ParamExpr::param(p)}));
  }
  void ry(QubitIndex q, ParamIndex p) {
    append(Gate(GateType::RY, {q}, {ParamExpr::param(p)}));
  }
  void rz(QubitIndex q, ParamIndex p) {
    append(Gate(GateType::RZ, {q}, {ParamExpr::param(p)}));
  }
  void u1(QubitIndex q, ParamIndex p) {
    append(Gate(GateType::P, {q}, {ParamExpr::param(p)}));
  }
  void u3(QubitIndex q, ParamIndex theta, ParamIndex phi, ParamIndex lambda) {
    append(Gate(GateType::U3, {q},
                {ParamExpr::param(theta), ParamExpr::param(phi),
                 ParamExpr::param(lambda)}));
  }
  void cu3(QubitIndex c, QubitIndex t, ParamIndex theta, ParamIndex phi,
           ParamIndex lambda) {
    append(Gate(GateType::CU3, {c, t},
                {ParamExpr::param(theta), ParamExpr::param(phi),
                 ParamExpr::param(lambda)}));
  }
  void rzz(QubitIndex a, QubitIndex b, ParamIndex p) {
    append(Gate(GateType::RZZ, {a, b}, {ParamExpr::param(p)}));
  }
  void rxx(QubitIndex a, QubitIndex b, ParamIndex p) {
    append(Gate(GateType::RXX, {a, b}, {ParamExpr::param(p)}));
  }
  void rzx(QubitIndex a, QubitIndex b, ParamIndex p) {
    append(Gate(GateType::RZX, {a, b}, {ParamExpr::param(p)}));
  }

  // --- convenience builders: parameterized with constant angles ---
  void rx_const(QubitIndex q, real angle) {
    append(Gate(GateType::RX, {q}, {ParamExpr::constant(angle)}));
  }
  void ry_const(QubitIndex q, real angle) {
    append(Gate(GateType::RY, {q}, {ParamExpr::constant(angle)}));
  }
  void rz_const(QubitIndex q, real angle) {
    append(Gate(GateType::RZ, {q}, {ParamExpr::constant(angle)}));
  }

  /// Total number of gates whose matrix depends on at least one free
  /// parameter.
  int num_parameterized_gates() const;

  /// 64-bit structural hash of the gate list (types, qubits, parameter
  /// expressions). Two circuits differing in any gate, angle offset, or
  /// parameter binding hash differently with overwhelming probability.
  /// Used to derive deterministic per-call noise streams for stateless
  /// executors (see make_noisy_device_executor).
  std::uint64_t fingerprint() const;

  /// Multi-line textual dump, one gate per line.
  std::string to_string() const;

 private:
  int num_qubits_ = 0;
  int num_params_ = 0;
  std::vector<Gate> gates_;
};

/// Partial evaluation: a copy of `circuit` with parameter slots
/// [first, first + values.size()) pinned to the given constants. Every
/// gate-angle linear expression folds `scale * values[id - first]` into
/// its offset and drops those terms, so gates whose angles referenced
/// only pinned slots become true constant gates — program compilation
/// then bakes their matrices once and fuses adjacent constant runs.
/// Unpinned slots keep their ids and the result declares the same
/// num_params(), so callers may keep passing full parameter vectors
/// (the pinned entries are simply ignored).
Circuit bind_params(const Circuit& circuit, ParamIndex first,
                    const std::vector<real>& values);

}  // namespace qnat
