#include "qsim/density_matrix.hpp"

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "qsim/backend/backend.hpp"

namespace qnat {

DensityMatrix::DensityMatrix(int num_qubits)
    : num_qubits_(num_qubits), vec_(2 * num_qubits) {
  QNAT_CHECK(num_qubits > 0 && num_qubits <= 12,
             "density matrix supports 1..12 qubits");
}

DensityMatrix::DensityMatrix(int num_qubits, std::vector<cplx>&& storage)
    : num_qubits_(num_qubits), vec_(2 * num_qubits, std::move(storage)) {
  QNAT_CHECK(num_qubits > 0 && num_qubits <= 12,
             "density matrix supports 1..12 qubits");
}

void DensityMatrix::reset() { vec_.reset(); }

void DensityMatrix::apply_gate(const Gate& gate, const ParamVector& params) {
  apply_op(compile_gate_op(gate), params);
}

void DensityMatrix::apply_op(const CompiledOp& op, const ParamVector& params) {
  static metrics::Counter dm_ops = metrics::counter("qsim.dm.ops");
  dm_ops.inc();
  KernelClass kernel = op.kernel;
  CMatrix m;
  if (op.parameterized) {
    m = op.gate.matrix(op.gate.eval_params(params));
    kernel = op.num_qubits == 1 ? classify_1q(m) : classify_2q(m);
  } else {
    if (op.kernel == KernelClass::Identity) return;
    m = op.matrix;
  }
  const CMatrix mc = m.conjugate();
  if (op.num_qubits == 1) {
    apply_classified_1q(vec_, kernel, m, op.q0);
    apply_classified_1q(vec_, kernel, mc, op.q0 + num_qubits_);
  } else {
    apply_classified_2q(vec_, kernel, m, op.q0, op.q1);
    apply_classified_2q(vec_, kernel, mc, op.q0 + num_qubits_,
                        op.q1 + num_qubits_);
  }
}

void DensityMatrix::run(const CompiledProgram& program,
                        const ParamVector& params) {
  backend::active().execute_dm(program, *this, params);
}

void DensityMatrix::apply_pauli_channel(QubitIndex q,
                                        const PauliChannel& channel) {
  static metrics::Counter channel_ops = metrics::counter("qsim.dm.channel_ops");
  channel_ops.inc();
  channel.validate();
  const double total = channel.total();
  if (total <= 0.0) return;
  // The channel acts on the vectorized density matrix as the 4x4
  // superoperator Σ_k p_k (P_k ⊗ P_k*) on the (row, column) qubit pair —
  // one pass through the state via the two-qubit kernel, no copies.
  CMatrix super = CMatrix::identity(4) * cplx{1.0 - total, 0.0};
  const struct {
    GateType type;
    double probability;
  } terms[] = {{GateType::X, channel.px},
               {GateType::Y, channel.py},
               {GateType::Z, channel.pz}};
  for (const auto& term : terms) {
    if (term.probability <= 0.0) continue;
    const CMatrix p = gate_matrix(term.type, {});
    super = super + p.kron(p.conjugate()) * cplx{term.probability, 0.0};
  }
  vec_.apply_2q(super, q, q + num_qubits_);
}

real DensityMatrix::expectation_z(QubitIndex q) const {
  QNAT_CHECK(q >= 0 && q < num_qubits_, "qubit out of range");
  const std::size_t dim = std::size_t{1} << num_qubits_;
  const std::size_t bit = std::size_t{1} << q;
  real e = 0.0;
  for (std::size_t r = 0; r < dim; ++r) {
    const real diag = vec_.amplitude(r * dim + r).real();
    e += (r & bit) ? -diag : diag;
  }
  return e;
}

std::vector<real> DensityMatrix::expectations_z() const {
  std::vector<real> out(static_cast<std::size_t>(num_qubits_), 0.0);
  const std::size_t dim = std::size_t{1} << num_qubits_;
  for (std::size_t r = 0; r < dim; ++r) {
    const real diag = vec_.amplitude(r * dim + r).real();
    for (int q = 0; q < num_qubits_; ++q) {
      out[static_cast<std::size_t>(q)] +=
          (r & (std::size_t{1} << q)) ? -diag : diag;
    }
  }
  return out;
}

real DensityMatrix::trace() const {
  const std::size_t dim = std::size_t{1} << num_qubits_;
  real t = 0.0;
  for (std::size_t r = 0; r < dim; ++r) {
    t += vec_.amplitude(r * dim + r).real();
  }
  return t;
}

real DensityMatrix::purity() const { return vec_.norm_sq(); }

}  // namespace qnat
