// Density-matrix simulator.
//
// Exact mixed-state evolution for noisy-channel evaluation: where the
// statevector simulator samples Pauli trajectories (Monte-Carlo noise
// ~1/#trajectories), the density matrix applies each channel *exactly*,
// matching the infinite-shot limit real hardware approaches at 8192 shots.
//
// Representation: the vectorized density matrix ρ of an n-qubit system is
// stored as a 2n-qubit statevector (row index = low n qubits, column
// index = high n qubits). A unitary U on qubit q becomes U on qubit q and
// U* on qubit q+n; a Pauli channel becomes the convex combination of the
// corresponding Pauli pairs. This reuses the optimized statevector
// kernels unchanged.
//
// Practical up to ~8 qubits for routine evaluation (the evaluator falls back
// to trajectory sampling beyond that); hard limit 12 qubits.
#pragma once

#include "qsim/pauli_channel.hpp"
#include "qsim/program.hpp"
#include "qsim/statevector.hpp"

namespace qnat {

class DensityMatrix {
 public:
  /// Initializes |0...0><0...0|.
  explicit DensityMatrix(int num_qubits);

  /// Initializes |0...0><0...0| in adopted storage (a 2n-qubit amplitude
  /// buffer, resized as needed) — the workspace-pool fast path; see
  /// ScopedDensity.
  DensityMatrix(int num_qubits, std::vector<cplx>&& storage);

  /// Releases the vectorized-rho storage for return to the workspace
  /// pool. The density matrix is dead afterwards.
  std::vector<cplx> take_storage() && {
    return std::move(vec_).take_storage();
  }

  int num_qubits() const { return num_qubits_; }

  void reset();

  /// Applies a unitary gate: rho -> U rho U†. Internally routed through
  /// the compiled-op kernels (see apply_op).
  void apply_gate(const Gate& gate, const ParamVector& params);

  /// Applies one compiled op: the op's matrix on the row qubits and its
  /// conjugate on the column qubits, each through the specialized kernel
  /// of the op's class (conjugation preserves zero structure, so the
  /// class carries over). The exact channel simulator precompiles a
  /// circuit into unfused ops and drives this per gate, interleaving
  /// noise channels between ops.
  void apply_op(const CompiledOp& op, const ParamVector& params);

  /// Executes every op of `program` through the active backend's
  /// execute_dm hook — the whole-program analogue of the apply_op loop.
  /// Under an f32 backend the entire walk runs on one downconverted
  /// mirror of the vectorized rho instead of converting per op.
  void run(const CompiledProgram& program, const ParamVector& params);

  /// The vectorized rho as a 2n-qubit statevector (row index = low n
  /// qubits, column index = high n qubits). Whole-program backend
  /// executors use this to address the raw amplitude storage.
  StateVector& vectorized_state() { return vec_; }
  const StateVector& vectorized_state() const { return vec_; }

  /// Applies a Pauli channel on qubit q exactly:
  /// rho -> (1-px-py-pz) rho + px X rho X + py Y rho Y + pz Z rho Z.
  void apply_pauli_channel(QubitIndex q, const PauliChannel& channel);

  /// tr(Z_q rho) in [-1, 1].
  real expectation_z(QubitIndex q) const;

  /// Z expectations on all qubits.
  std::vector<real> expectations_z() const;

  /// tr(rho); 1 for a valid state (channels are trace-preserving).
  real trace() const;

  /// tr(rho^2); 1 for pure states, 1/2^n for the maximally mixed state.
  real purity() const;

 private:
  int num_qubits_;
  StateVector vec_;  // 2n-qubit vectorized density matrix
};

/// RAII lease of a workspace-pooled DensityMatrix (the 4^n vectorized-rho
/// buffer is recycled like a statevector's). Same thread-affinity rule as
/// ScopedState.
class ScopedDensity {
 public:
  explicit ScopedDensity(int num_qubits)
      : dm_(num_qubits,
            ws::acquire_amps(std::size_t{1} << (2 * num_qubits))) {}
  ~ScopedDensity() { ws::release_amps(std::move(dm_).take_storage()); }
  ScopedDensity(const ScopedDensity&) = delete;
  ScopedDensity& operator=(const ScopedDensity&) = delete;

  DensityMatrix& operator*() { return dm_; }
  DensityMatrix* operator->() { return &dm_; }
  DensityMatrix& get() { return dm_; }

 private:
  DensityMatrix dm_;
};

}  // namespace qnat
