#include "qsim/execution.hpp"

#include "common/error.hpp"
#include "common/metrics.hpp"

namespace qnat {

namespace {

/// Shot-sampled expectations of a prepared final state, with optional
/// per-shot readout bit flips (the shared backend of both
/// measure_expectations_shots overloads).
std::vector<real> expectations_from_shots(
    const StateVector& state, Rng& rng, int shots,
    const std::vector<real>& bit_flip_prob_0to1,
    const std::vector<real>& bit_flip_prob_1to0) {
  const int nq = state.num_qubits();
  const bool noisy_readout = !bit_flip_prob_0to1.empty();
  if (noisy_readout) {
    QNAT_CHECK(bit_flip_prob_0to1.size() == static_cast<std::size_t>(nq) &&
                   bit_flip_prob_1to0.size() == static_cast<std::size_t>(nq),
               "readout flip probabilities must cover every qubit");
  }
  static metrics::Counter readout_flips = metrics::counter("noise.readout.flips");
  std::vector<long> plus_counts(static_cast<std::size_t>(nq), 0);
  for (std::size_t basis : state.sample(rng, shots)) {
    for (int q = 0; q < nq; ++q) {
      bool one = (basis >> q) & 1u;
      if (noisy_readout) {
        const real flip = one ? bit_flip_prob_1to0[static_cast<std::size_t>(q)]
                              : bit_flip_prob_0to1[static_cast<std::size_t>(q)];
        if (rng.bernoulli(flip)) {
          one = !one;
          readout_flips.inc();
        }
      }
      if (!one) ++plus_counts[static_cast<std::size_t>(q)];
    }
  }
  std::vector<real> out(static_cast<std::size_t>(nq));
  for (int q = 0; q < nq; ++q) {
    const real p_plus =
        static_cast<real>(plus_counts[static_cast<std::size_t>(q)]) / shots;
    out[static_cast<std::size_t>(q)] = 2.0 * p_plus - 1.0;
  }
  return out;
}

}  // namespace

StateVector run_circuit(const Circuit& circuit, const ParamVector& params) {
  StateVector state(circuit.num_qubits());
  run_circuit_inplace(circuit, params, state);
  return state;
}

void run_circuit_inplace(const Circuit& circuit, const ParamVector& params,
                         StateVector& state) {
  QNAT_CHECK(state.num_qubits() == circuit.num_qubits(),
             "state / circuit qubit count mismatch");
  QNAT_CHECK(static_cast<int>(params.size()) >= circuit.num_params(),
             "parameter vector too short for circuit");
  shared_program(circuit)->run(state, params);
}

StateVector run_program(const CompiledProgram& program,
                        const ParamVector& params) {
  StateVector state(program.num_qubits());
  program.run(state, params);
  return state;
}

std::vector<real> measure_expectations(const Circuit& circuit,
                                       const ParamVector& params) {
  ScopedState state(circuit.num_qubits());
  run_circuit_inplace(circuit, params, state.get());
  return state->expectations_z();
}

std::vector<real> measure_expectations(const CompiledProgram& program,
                                       const ParamVector& params) {
  ScopedState state(program.num_qubits());
  program.run(state.get(), params);
  return state->expectations_z();
}

void measure_expectations_into(const CompiledProgram& program,
                               const ParamVector& params,
                               std::vector<real>& out) {
  ScopedState state(program.num_qubits());
  program.run(state.get(), params);
  state->expectations_z_into(out);
}

std::vector<real> measure_expectations_shots(
    const Circuit& circuit, const ParamVector& params, Rng& rng, int shots,
    const std::vector<real>& bit_flip_prob_0to1,
    const std::vector<real>& bit_flip_prob_1to0) {
  QNAT_CHECK(shots > 0, "sample requires positive shot count");
  ScopedState state(circuit.num_qubits());
  run_circuit_inplace(circuit, params, state.get());
  return expectations_from_shots(state.get(), rng, shots, bit_flip_prob_0to1,
                                 bit_flip_prob_1to0);
}

std::vector<real> measure_expectations_shots(
    const CompiledProgram& program, const ParamVector& params, Rng& rng,
    int shots, const std::vector<real>& bit_flip_prob_0to1,
    const std::vector<real>& bit_flip_prob_1to0) {
  QNAT_CHECK(shots > 0, "sample requires positive shot count");
  ScopedState state(program.num_qubits());
  program.run(state.get(), params);
  return expectations_from_shots(state.get(), rng, shots, bit_flip_prob_0to1,
                                 bit_flip_prob_1to0);
}

}  // namespace qnat
