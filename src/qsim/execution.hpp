// Circuit execution helpers: run a parameter binding through a circuit and
// read out Pauli-Z expectations, analytically or from finite shots.
//
// All circuit-taking entry points execute through the fused compiled
// program of the circuit (memoized via shared_program, so repeated runs of
// the same circuit — batch samples, trajectories of a cached plan,
// parameter-shift evaluations — compile once). Callers holding a one-off
// circuit (e.g. a freshly noise-injected trajectory) can compile uncached
// with compile_program and use the program overloads directly.
#pragma once

#include "common/rng.hpp"
#include "qsim/circuit.hpp"
#include "qsim/program.hpp"
#include "qsim/statevector.hpp"

namespace qnat {

/// Evolves |0...0> through `circuit` under the given parameter binding.
StateVector run_circuit(const Circuit& circuit, const ParamVector& params);

/// Evolves an existing state in place.
void run_circuit_inplace(const Circuit& circuit, const ParamVector& params,
                         StateVector& state);

/// Evolves |0...0> through a compiled program.
StateVector run_program(const CompiledProgram& program,
                        const ParamVector& params);

/// Analytic Z expectations of the final state, one per qubit.
std::vector<real> measure_expectations(const Circuit& circuit,
                                       const ParamVector& params);

/// Analytic Z expectations through a compiled program.
std::vector<real> measure_expectations(const CompiledProgram& program,
                                       const ParamVector& params);

/// Allocation-free variant for per-sample hot loops: resizes `out` to
/// the program's qubit count and overwrites it (a reused buffer never
/// reallocates after warm-up).
void measure_expectations_into(const CompiledProgram& program,
                               const ParamVector& params,
                               std::vector<real>& out);

/// Finite-shot estimate of per-qubit Z expectations: samples `shots`
/// register readouts and averages (+1 for bit 0, -1 for bit 1). With
/// `bit_flip_prob_0to1` / `bit_flip_prob_1to0` per qubit (may be empty for
/// ideal readout), each sampled bit is flipped with the corresponding
/// probability — the shot-level model of readout error.
std::vector<real> measure_expectations_shots(
    const Circuit& circuit, const ParamVector& params, Rng& rng, int shots,
    const std::vector<real>& bit_flip_prob_0to1 = {},
    const std::vector<real>& bit_flip_prob_1to0 = {});

/// Finite-shot expectations through a compiled program.
std::vector<real> measure_expectations_shots(
    const CompiledProgram& program, const ParamVector& params, Rng& rng,
    int shots, const std::vector<real>& bit_flip_prob_0to1 = {},
    const std::vector<real>& bit_flip_prob_1to0 = {});

}  // namespace qnat
