#include "qsim/fixed_point.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/workspace.hpp"
#include "qsim/backend/f32_kernels.hpp"
#include "qsim/program.hpp"

namespace qnat::fxp {

namespace {

metrics::Counter saturations_counter() {
  static metrics::Counter c = metrics::counter("qsim.fxp.saturations");
  return c;
}

std::int16_t quantize_component(float x, float scale,
                                metrics::Counter& saturations) {
  if (scale <= 0.0f) return 0;
  const float scaled = x / scale * static_cast<float>(kQuantMax);
  const float rounded = std::nearbyintf(scaled);
  if (rounded > static_cast<float>(kQuantMax)) {
    saturations.inc();
    return static_cast<std::int16_t>(kQuantMax);
  }
  if (rounded < -static_cast<float>(kQuantMax)) {
    saturations.inc();
    return static_cast<std::int16_t>(-kQuantMax);
  }
  return static_cast<std::int16_t>(rounded);
}

float block_max(const cplx32* amps, std::size_t begin, std::size_t end) {
  float m = 0.0f;
  for (std::size_t i = begin; i < end; ++i) {
    m = std::max(m, std::fabs(amps[i].real()));
    m = std::max(m, std::fabs(amps[i].imag()));
  }
  return m;
}

}  // namespace

QuantizedState quantize(const cplx32* amps, std::size_t n,
                        std::size_t block_size) {
  QNAT_CHECK(block_size > 0, "fxp block size must be positive");
  metrics::Counter saturations = saturations_counter();
  QuantizedState q;
  q.n = n;
  q.block_size = block_size;
  q.data.resize(2 * n);
  q.scales.reserve((n + block_size - 1) / block_size);
  // running_max is the dynamic scale state: what blocks 0..b-1 taught us.
  // Block 0 has no history and bootstraps from its own max (a real
  // streaming pipeline would prime this from the previous batch).
  float running_max = 0.0f;
  for (std::size_t begin = 0; begin < n; begin += block_size) {
    const std::size_t end = std::min(n, begin + block_size);
    const float observed = block_max(amps, begin, end);
    const float scale = q.scales.empty() ? observed : running_max;
    q.scales.push_back(scale);
    for (std::size_t i = begin; i < end; ++i) {
      q.data[2 * i] = quantize_component(amps[i].real(), scale, saturations);
      q.data[2 * i + 1] =
          quantize_component(amps[i].imag(), scale, saturations);
    }
    running_max = std::max(running_max, observed);
  }
  return q;
}

void dequantize(const QuantizedState& q, cplx32* out) {
  for (std::size_t begin = 0; begin < q.n; begin += q.block_size) {
    const std::size_t end = std::min(q.n, begin + q.block_size);
    const float factor = q.scales[begin / q.block_size] /
                         static_cast<float>(kQuantMax);
    for (std::size_t i = begin; i < end; ++i) {
      out[i] = cplx32(static_cast<float>(q.data[2 * i]) * factor,
                      static_cast<float>(q.data[2 * i + 1]) * factor);
    }
  }
}

void expectations_z_fxp(const QuantizedState& q, int num_qubits,
                        std::vector<real>& out) {
  QNAT_CHECK(q.n == (std::size_t{1} << num_qubits),
             "fxp expectation fold: dimension must be 2^num_qubits");
  out.assign(static_cast<std::size_t>(num_qubits), 0.0);
  std::vector<std::int64_t> diff(static_cast<std::size_t>(num_qubits), 0);
  double total = 0.0;
  std::vector<double> scaled(static_cast<std::size_t>(num_qubits), 0.0);
  for (std::size_t begin = 0; begin < q.n; begin += q.block_size) {
    const std::size_t end = std::min(q.n, begin + q.block_size);
    const double s = static_cast<double>(q.scales[begin / q.block_size]) /
                     kQuantMax;
    const double factor = s * s;
    std::fill(diff.begin(), diff.end(), std::int64_t{0});
    std::int64_t mass = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const std::int32_t re = q.data[2 * i];
      const std::int32_t im = q.data[2 * i + 1];
      // Exact: 2 * 32767^2 < 2^31. Everything below stays integer.
      const std::int32_t mag = re * re + im * im;
      mass += mag;
      for (int qb = 0; qb < num_qubits; ++qb) {
        diff[static_cast<std::size_t>(qb)] +=
            (i >> qb) & 1u ? -static_cast<std::int64_t>(mag)
                           : static_cast<std::int64_t>(mag);
      }
    }
    total += static_cast<double>(mass) * factor;
    for (int qb = 0; qb < num_qubits; ++qb) {
      scaled[static_cast<std::size_t>(qb)] +=
          static_cast<double>(diff[static_cast<std::size_t>(qb)]) * factor;
    }
  }
  QNAT_CHECK(total > 0.0, "fxp expectation fold: state has no mass");
  for (int qb = 0; qb < num_qubits; ++qb) {
    out[static_cast<std::size_t>(qb)] =
        scaled[static_cast<std::size_t>(qb)] / total;
  }
}

void measure_expectations_fxp(const CompiledProgram& program,
                              const ParamVector& params,
                              std::vector<real>& out,
                              std::size_t block_size) {
  const std::size_t n = std::size_t{1} << program.num_qubits();
  std::vector<cplx32> buf = ws::acquire_amps_f32(n);
  std::fill(buf.begin(), buf.end(), cplx32{0.0f, 0.0f});
  buf[0] = cplx32{1.0f, 0.0f};
  backend::f32::run_program_on_f32(program, params, buf.data(), n);
  const QuantizedState q = quantize(buf.data(), n, block_size);
  expectations_z_fxp(q, program.num_qubits(), out);
  ws::release_amps_f32(std::move(buf));
}

std::uint64_t saturation_count() { return saturations_counter().value(); }

}  // namespace qnat::fxp
