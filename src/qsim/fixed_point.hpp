// Experimental per-block fixed-point expectation pipeline.
//
// Quantizes an f32 amplitude buffer into int16 blocks with *dynamic
// scale tracking*: block b is scaled by the running maximum amplitude
// magnitude observed over blocks 0..b-1 (block 0 bootstraps from its own
// max, since no history exists yet). This mirrors how a streaming
// fixed-point DAC pipeline would operate — the scale available when a
// block arrives is whatever the past predicted — so a block containing a
// spike larger than anything seen before *saturates*: the offending
// components clamp to the int16 rails and the event is counted in the
// Deterministic `qsim.fxp.saturations` counter. After each block the
// running max absorbs the block's true max, so scales adapt within one
// block of a regime change.
//
// Value mapping: component x (re or im) is stored as
//   round(x / scale_b * 32767) clamped to [-32767, 32767],
// so the unsaturated round-trip error per component is bounded by
// scale_b / 32767 / 2 (nearest rounding) — asserted by
// tests/qsim/fixed_point_test.cpp.
//
// The expectation fold never leaves integer arithmetic per element:
// |amp|^2 = re^2 + im^2 is an exact uint32 (2 * 32767^2 < 2^31), per-Z
// signs accumulate in int64 per block, and only the per-block int64
// partials are scaled back to double (one multiply per block per qubit).
// Results are normalized by the quantized total mass, which cancels the
// systematic magnitude bias of quantization.
//
// Status: experimental — exercised by the precision harness and the
// fixed-point property tests, not wired into serving defaults.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace qnat {
class CompiledProgram;
}

namespace qnat::fxp {

inline constexpr std::size_t kDefaultBlockSize = 256;
inline constexpr int kQuantMax = 32767;

/// An int16-quantized amplitude buffer with per-block scales.
struct QuantizedState {
  std::size_t n = 0;           ///< complex amplitudes
  std::size_t block_size = kDefaultBlockSize;
  /// 2*n interleaved components (re, im), block-scaled.
  std::vector<std::int16_t> data;
  /// One scale per block of `block_size` amplitudes: component value =
  /// data * scale / kQuantMax. scales[b] is the running max over blocks
  /// 0..b-1 (block 0: its own max).
  std::vector<float> scales;

  std::size_t num_blocks() const { return scales.size(); }
};

/// Quantizes `n` f32 amplitudes under the dynamic per-block scale policy
/// above. Ticks qsim.fxp.saturations once per clamped component.
QuantizedState quantize(const cplx32* amps, std::size_t n,
                        std::size_t block_size = kDefaultBlockSize);

/// Reconstructs f32 amplitudes (out must hold q.n). Exact inverse up to
/// the per-component bound scale_b / kQuantMax / 2 for unsaturated
/// components.
void dequantize(const QuantizedState& q, cplx32* out);

/// Per-qubit Z expectations from the quantized state (n must be 2^nq).
/// Integer magnitude/sign accumulation per block, double only at block
/// granularity; normalized by the quantized total mass.
void expectations_z_fxp(const QuantizedState& q, int num_qubits,
                        std::vector<real>& out);

/// End-to-end experimental pipeline: runs `program` through the f32
/// execution path, quantizes the final state and folds expectations via
/// expectations_z_fxp.
void measure_expectations_fxp(const CompiledProgram& program,
                              const ParamVector& params,
                              std::vector<real>& out,
                              std::size_t block_size = kDefaultBlockSize);

/// Current value of the qsim.fxp.saturations counter (test convenience).
std::uint64_t saturation_count();

}  // namespace qnat::fxp
