#include "qsim/gate.hpp"

#include <cmath>
#include <sstream>
#include <utility>

#include "common/error.hpp"

namespace qnat {

namespace {

const cplx kI{0.0, 1.0};

CMatrix mat2(cplx a, cplx b, cplx c, cplx d) {
  return CMatrix(2, 2, {a, b, c, d});
}

/// Embeds a 2x2 target-qubit matrix as a controlled gate (control = high
/// bit, target = low bit): block diag(I, U).
CMatrix controlled(const CMatrix& u) {
  CMatrix m = CMatrix::identity(4);
  m(2, 2) = u(0, 0);
  m(2, 3) = u(0, 1);
  m(3, 2) = u(1, 0);
  m(3, 3) = u(1, 1);
  return m;
}

/// Zeroes the control-0 block; derivative of a controlled gate.
CMatrix controlled_derivative(const CMatrix& du) {
  CMatrix m(4, 4);
  m(2, 2) = du(0, 0);
  m(2, 3) = du(0, 1);
  m(3, 2) = du(1, 0);
  m(3, 3) = du(1, 1);
  return m;
}

CMatrix u3_matrix(real theta, real phi, real lambda) {
  const real ct = std::cos(theta / 2);
  const real st = std::sin(theta / 2);
  return mat2(ct, -std::exp(kI * lambda) * st, std::exp(kI * phi) * st,
              std::exp(kI * (phi + lambda)) * ct);
}

CMatrix u3_derivative(real theta, real phi, real lambda, int k) {
  const real ct = std::cos(theta / 2);
  const real st = std::sin(theta / 2);
  switch (k) {
    case 0:  // d/d theta
      return mat2(-0.5 * st, -0.5 * std::exp(kI * lambda) * ct,
                  0.5 * std::exp(kI * phi) * ct,
                  -0.5 * std::exp(kI * (phi + lambda)) * st);
    case 1:  // d/d phi
      return mat2(0.0, 0.0, kI * std::exp(kI * phi) * st,
                  kI * std::exp(kI * (phi + lambda)) * ct);
    case 2:  // d/d lambda
      return mat2(0.0, -kI * std::exp(kI * lambda) * st, 0.0,
                  kI * std::exp(kI * (phi + lambda)) * ct);
    default:
      throw Error("u3 derivative index out of range");
  }
}

/// Two-qubit Pauli-product rotation exp(-i theta/2 P⊗Q) where P, Q are
/// Pauli matrices given as 2x2 CMatrix. Used for RXX/RYY/RZZ/RZX.
CMatrix pauli_product_rotation(const CMatrix& p, const CMatrix& q,
                               real theta) {
  const CMatrix pq = p.kron(q);
  const CMatrix id = CMatrix::identity(4);
  // P⊗Q squares to identity, so exp(-i t/2 PQ) = cos(t/2) I - i sin(t/2) PQ.
  return id * cplx{std::cos(theta / 2), 0.0} +
         pq * (-kI * std::sin(theta / 2));
}

CMatrix pauli_product_rotation_derivative(const CMatrix& p, const CMatrix& q,
                                          real theta) {
  const CMatrix pq = p.kron(q);
  const CMatrix id = CMatrix::identity(4);
  return id * cplx{-0.5 * std::sin(theta / 2), 0.0} +
         pq * (-kI * 0.5 * std::cos(theta / 2));
}

CMatrix pauli_x() { return mat2(0, 1, 1, 0); }
CMatrix pauli_y() { return mat2(0, -kI, kI, 0); }
CMatrix pauli_z() { return mat2(1, 0, 0, -1); }

}  // namespace

ParamExpr ParamExpr::constant(real value) {
  ParamExpr e;
  e.offset = value;
  return e;
}

ParamExpr ParamExpr::param(ParamIndex id) {
  ParamExpr e;
  e.terms.push_back(Term{id, 1.0});
  return e;
}

ParamExpr ParamExpr::affine(ParamIndex id, real scale, real offset) {
  ParamExpr e;
  if (scale != 0.0) e.terms.push_back(Term{id, scale});
  e.offset = offset;
  return e;
}

real ParamExpr::eval(const ParamVector& params) const {
  real v = offset;
  for (const Term& t : terms) {
    v += t.scale * params[static_cast<std::size_t>(t.id)];
  }
  return v;
}

ParamExpr ParamExpr::operator+(const ParamExpr& rhs) const {
  ParamExpr out = *this;
  out.offset += rhs.offset;
  for (const Term& t : rhs.terms) {
    bool merged = false;
    for (Term& mine : out.terms) {
      if (mine.id == t.id) {
        mine.scale += t.scale;
        merged = true;
        break;
      }
    }
    if (!merged) out.terms.push_back(t);
  }
  // Drop cancelled terms so is_constant() stays meaningful.
  std::erase_if(out.terms, [](const Term& t) { return t.scale == 0.0; });
  return out;
}

ParamExpr ParamExpr::operator-(const ParamExpr& rhs) const {
  return (*this) + rhs.negated();
}

ParamExpr ParamExpr::operator*(real factor) const {
  ParamExpr out = *this;
  out.offset *= factor;
  for (Term& t : out.terms) t.scale *= factor;
  if (factor == 0.0) out.terms.clear();
  return out;
}

ParamExpr ParamExpr::shifted(real delta) const {
  ParamExpr out = *this;
  out.offset += delta;
  return out;
}

int gate_num_qubits(GateType type) {
  switch (type) {
    case GateType::I:
    case GateType::X:
    case GateType::Y:
    case GateType::Z:
    case GateType::H:
    case GateType::S:
    case GateType::Sdg:
    case GateType::T:
    case GateType::Tdg:
    case GateType::SX:
    case GateType::SXdg:
    case GateType::SH:
    case GateType::RX:
    case GateType::RY:
    case GateType::RZ:
    case GateType::P:
    case GateType::U2:
    case GateType::U3:
      return 1;
    default:
      return 2;
  }
}

int gate_num_params(GateType type) {
  switch (type) {
    case GateType::RX:
    case GateType::RY:
    case GateType::RZ:
    case GateType::P:
    case GateType::CRX:
    case GateType::CRY:
    case GateType::CRZ:
    case GateType::CP:
    case GateType::RXX:
    case GateType::RYY:
    case GateType::RZZ:
    case GateType::RZX:
      return 1;
    case GateType::U2:
      return 2;
    case GateType::U3:
    case GateType::CU3:
      return 3;
    default:
      return 0;
  }
}

std::string gate_name(GateType type) {
  switch (type) {
    case GateType::I: return "id";
    case GateType::X: return "x";
    case GateType::Y: return "y";
    case GateType::Z: return "z";
    case GateType::H: return "h";
    case GateType::S: return "s";
    case GateType::Sdg: return "sdg";
    case GateType::T: return "t";
    case GateType::Tdg: return "tdg";
    case GateType::SX: return "sx";
    case GateType::SXdg: return "sxdg";
    case GateType::SH: return "sh";
    case GateType::RX: return "rx";
    case GateType::RY: return "ry";
    case GateType::RZ: return "rz";
    case GateType::P: return "p";
    case GateType::U2: return "u2";
    case GateType::U3: return "u3";
    case GateType::CX: return "cx";
    case GateType::CY: return "cy";
    case GateType::CZ: return "cz";
    case GateType::CH: return "ch";
    case GateType::SWAP: return "swap";
    case GateType::SqrtSwap: return "sqrtswap";
    case GateType::CRX: return "crx";
    case GateType::CRY: return "cry";
    case GateType::CRZ: return "crz";
    case GateType::CP: return "cp";
    case GateType::CU3: return "cu3";
    case GateType::RXX: return "rxx";
    case GateType::RYY: return "ryy";
    case GateType::RZZ: return "rzz";
    case GateType::RZX: return "rzx";
  }
  return "?";
}

GateType gate_type_from_name(const std::string& name) {
  // The enum is dense from I to RZX; build the reverse map once from
  // gate_name so the two directions cannot drift apart.
  static const std::vector<std::pair<std::string, GateType>> table = [] {
    std::vector<std::pair<std::string, GateType>> t;
    for (int i = static_cast<int>(GateType::I);
         i <= static_cast<int>(GateType::RZX); ++i) {
      const GateType type = static_cast<GateType>(i);
      t.emplace_back(gate_name(type), type);
    }
    return t;
  }();
  for (const auto& [n, type] : table) {
    if (n == name) return type;
  }
  QNAT_CHECK(false, "unknown gate name: " + name);
  return GateType::I;
}

Gate::Gate(GateType t, std::vector<QubitIndex> qs, std::vector<ParamExpr> ps)
    : type(t), qubits(std::move(qs)), params(std::move(ps)) {
  QNAT_CHECK(static_cast<int>(qubits.size()) == gate_num_qubits(t),
             "gate " + gate_name(t) + ": wrong qubit count");
  QNAT_CHECK(static_cast<int>(params.size()) == gate_num_params(t),
             "gate " + gate_name(t) + ": wrong parameter count");
  if (qubits.size() == 2) {
    QNAT_CHECK(qubits[0] != qubits[1],
               "two-qubit gate requires distinct qubits");
  }
}

bool Gate::is_parameterized() const {
  for (const auto& p : params) {
    if (!p.is_constant()) return true;
  }
  return false;
}

std::vector<real> Gate::eval_params(const ParamVector& bound) const {
  std::vector<real> values;
  values.reserve(params.size());
  for (const auto& p : params) values.push_back(p.eval(bound));
  return values;
}

CMatrix gate_matrix(GateType type, const std::vector<real>& v) {
  const real inv_sqrt2 = 1.0 / std::sqrt(2.0);
  switch (type) {
    case GateType::I:
      return CMatrix::identity(2);
    case GateType::X:
      return pauli_x();
    case GateType::Y:
      return pauli_y();
    case GateType::Z:
      return pauli_z();
    case GateType::H:
      return mat2(inv_sqrt2, inv_sqrt2, inv_sqrt2, -inv_sqrt2);
    case GateType::S:
      return mat2(1, 0, 0, kI);
    case GateType::Sdg:
      return mat2(1, 0, 0, -kI);
    case GateType::T:
      return mat2(1, 0, 0, std::exp(kI * (kPi / 4)));
    case GateType::Tdg:
      return mat2(1, 0, 0, std::exp(-kI * (kPi / 4)));
    case GateType::SX:
      return mat2(cplx{0.5, 0.5}, cplx{0.5, -0.5}, cplx{0.5, -0.5},
                  cplx{0.5, 0.5});
    case GateType::SXdg:
      return mat2(cplx{0.5, -0.5}, cplx{0.5, 0.5}, cplx{0.5, 0.5},
                  cplx{0.5, -0.5});
    case GateType::SH: {
      // sqrt(H) = e^{i pi/4} (I - iH)/sqrt(2); squares to H.
      const CMatrix h = gate_matrix(GateType::H, {});
      const cplx phase = std::exp(kI * (kPi / 4));
      return (CMatrix::identity(2) * (phase * inv_sqrt2)) +
             (h * (phase * (-kI) * inv_sqrt2));
    }
    case GateType::RX: {
      const real c = std::cos(v[0] / 2), s = std::sin(v[0] / 2);
      return mat2(c, -kI * s, -kI * s, c);
    }
    case GateType::RY: {
      const real c = std::cos(v[0] / 2), s = std::sin(v[0] / 2);
      return mat2(c, -s, s, c);
    }
    case GateType::RZ:
      return mat2(std::exp(-kI * (v[0] / 2)), 0, 0, std::exp(kI * (v[0] / 2)));
    case GateType::P:
      return mat2(1, 0, 0, std::exp(kI * v[0]));
    case GateType::U2:
      return mat2(inv_sqrt2, -std::exp(kI * v[1]) * inv_sqrt2,
                  std::exp(kI * v[0]) * inv_sqrt2,
                  std::exp(kI * (v[0] + v[1])) * inv_sqrt2);
    case GateType::U3:
      return u3_matrix(v[0], v[1], v[2]);
    case GateType::CX:
      return controlled(pauli_x());
    case GateType::CY:
      return controlled(pauli_y());
    case GateType::CZ:
      return controlled(pauli_z());
    case GateType::CH:
      return controlled(gate_matrix(GateType::H, {}));
    case GateType::SWAP: {
      CMatrix m(4, 4);
      m(0, 0) = 1;
      m(1, 2) = 1;
      m(2, 1) = 1;
      m(3, 3) = 1;
      return m;
    }
    case GateType::SqrtSwap: {
      CMatrix m = CMatrix::identity(4);
      m(1, 1) = cplx{0.5, 0.5};
      m(1, 2) = cplx{0.5, -0.5};
      m(2, 1) = cplx{0.5, -0.5};
      m(2, 2) = cplx{0.5, 0.5};
      return m;
    }
    case GateType::CRX:
      return controlled(gate_matrix(GateType::RX, v));
    case GateType::CRY:
      return controlled(gate_matrix(GateType::RY, v));
    case GateType::CRZ:
      return controlled(gate_matrix(GateType::RZ, v));
    case GateType::CP:
      return controlled(gate_matrix(GateType::P, v));
    case GateType::CU3:
      return controlled(u3_matrix(v[0], v[1], v[2]));
    case GateType::RXX:
      return pauli_product_rotation(pauli_x(), pauli_x(), v[0]);
    case GateType::RYY:
      return pauli_product_rotation(pauli_y(), pauli_y(), v[0]);
    case GateType::RZZ:
      return pauli_product_rotation(pauli_z(), pauli_z(), v[0]);
    case GateType::RZX:
      return pauli_product_rotation(pauli_z(), pauli_x(), v[0]);
  }
  throw Error("unknown gate type");
}

CMatrix Gate::matrix(const std::vector<real>& values) const {
  return gate_matrix(type, values);
}

CMatrix Gate::matrix_derivative(const std::vector<real>& v, int k) const {
  QNAT_CHECK(k >= 0 && k < num_params(), "derivative index out of range");
  switch (type) {
    case GateType::RX: {
      const real c = std::cos(v[0] / 2), s = std::sin(v[0] / 2);
      return mat2(-0.5 * s, -kI * 0.5 * c, -kI * 0.5 * c, -0.5 * s);
    }
    case GateType::RY: {
      const real c = std::cos(v[0] / 2), s = std::sin(v[0] / 2);
      return mat2(-0.5 * s, -0.5 * c, 0.5 * c, -0.5 * s);
    }
    case GateType::RZ:
      return mat2(-kI * 0.5 * std::exp(-kI * (v[0] / 2)), 0, 0,
                  kI * 0.5 * std::exp(kI * (v[0] / 2)));
    case GateType::P:
      return mat2(0, 0, 0, kI * std::exp(kI * v[0]));
    case GateType::U2: {
      const real inv_sqrt2 = 1.0 / std::sqrt(2.0);
      if (k == 0) {
        return mat2(0, 0, kI * std::exp(kI * v[0]) * inv_sqrt2,
                    kI * std::exp(kI * (v[0] + v[1])) * inv_sqrt2);
      }
      return mat2(0, -kI * std::exp(kI * v[1]) * inv_sqrt2, 0,
                  kI * std::exp(kI * (v[0] + v[1])) * inv_sqrt2);
    }
    case GateType::U3:
      return u3_derivative(v[0], v[1], v[2], k);
    case GateType::CRX:
      return controlled_derivative(
          Gate(GateType::RX, {0}, {ParamExpr::constant(v[0])})
              .matrix_derivative(v, 0));
    case GateType::CRY:
      return controlled_derivative(
          Gate(GateType::RY, {0}, {ParamExpr::constant(v[0])})
              .matrix_derivative(v, 0));
    case GateType::CRZ:
      return controlled_derivative(
          Gate(GateType::RZ, {0}, {ParamExpr::constant(v[0])})
              .matrix_derivative(v, 0));
    case GateType::CP:
      return controlled_derivative(
          Gate(GateType::P, {0}, {ParamExpr::constant(v[0])})
              .matrix_derivative(v, 0));
    case GateType::CU3:
      return controlled_derivative(u3_derivative(v[0], v[1], v[2], k));
    case GateType::RXX:
      return pauli_product_rotation_derivative(pauli_x(), pauli_x(), v[0]);
    case GateType::RYY:
      return pauli_product_rotation_derivative(pauli_y(), pauli_y(), v[0]);
    case GateType::RZZ:
      return pauli_product_rotation_derivative(pauli_z(), pauli_z(), v[0]);
    case GateType::RZX:
      return pauli_product_rotation_derivative(pauli_z(), pauli_x(), v[0]);
    default:
      throw Error("matrix_derivative: gate " + gate_name(type) +
                  " is not parameterized");
  }
}

std::string Gate::to_string() const {
  std::ostringstream os;
  os << gate_name(type) << "(";
  for (std::size_t i = 0; i < qubits.size(); ++i) {
    if (i) os << ",";
    os << "q" << qubits[i];
  }
  if (!params.empty()) {
    os << ";";
    for (std::size_t i = 0; i < params.size(); ++i) {
      os << (i ? "," : " ");
      const auto& p = params[i];
      if (p.is_constant()) {
        os << p.offset;
      } else {
        for (std::size_t t = 0; t < p.terms.size(); ++t) {
          if (t) os << "+";
          os << "p" << p.terms[t].id;
          if (p.terms[t].scale != 1.0) os << "*" << p.terms[t].scale;
        }
        if (p.offset != 0.0) os << "+" << p.offset;
      }
    }
  }
  os << ")";
  return os.str();
}

}  // namespace qnat
