// Gate library for the statevector simulator.
//
// A `Gate` references one or two qubits and zero or more real parameters.
// Parameters are *linear expressions* of a circuit-level parameter vector:
// value = Σ_k scale_k * params[id_k] + offset (or just `offset` for
// constants). Linear expressions are what allow the transpiler to
// decompose e.g. CU3(θ,φ,λ) into basis rotations with angles like θ/2 or
// (λ+φ)/2 while keeping exact gradient flow back to the original
// parameters — the adjoint differentiator multiplies each gate-angle
// gradient by `scale_k` and accumulates it into `params[id_k]`.
//
// Convention: qubit 0 is the least-significant bit of a basis index. For a
// two-qubit gate on qubits (a, b) = (qubits[0], qubits[1]), the 4x4 matrix
// row/column index is (bit_a << 1) | bit_b, i.e. the first listed qubit is
// the high bit. For controlled gates the control is qubits[0].
#pragma once

#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "common/types.hpp"

namespace qnat {

/// All gate types understood by the simulator, transpiler, and noise model.
enum class GateType {
  // Non-parameterized single-qubit gates.
  I,
  X,
  Y,
  Z,
  H,
  S,
  Sdg,
  T,
  Tdg,
  SX,
  SXdg,
  SH,  // square root of Hadamard (used by the 'RXYZ' design space)
  // Parameterized single-qubit gates.
  RX,
  RY,
  RZ,
  P,   // phase gate, a.k.a. U1
  U2,  // U2(phi, lambda)
  U3,  // U3(theta, phi, lambda)
  // Non-parameterized two-qubit gates.
  CX,
  CY,
  CZ,
  CH,
  SWAP,
  SqrtSwap,
  // Parameterized two-qubit gates.
  CRX,
  CRY,
  CRZ,
  CP,   // controlled-phase, a.k.a. CU1
  CU3,  // controlled-U3
  RXX,  // exp(-i theta/2 X⊗X)
  RYY,  // exp(-i theta/2 Y⊗Y)
  RZZ,  // exp(-i theta/2 Z⊗Z)
  RZX,  // exp(-i theta/2 Z⊗X)
};

/// Number of qubits the gate type acts on (1 or 2).
int gate_num_qubits(GateType type);

/// Number of real parameters of the gate type (0 to 3).
int gate_num_params(GateType type);

/// Short lowercase mnemonic, e.g. "cu3".
std::string gate_name(GateType type);

/// Reverse lookup of gate_name (used by the QNATPROG artifact loader).
/// Throws qnat::Error for names no gate type produces.
GateType gate_type_from_name(const std::string& name);

/// Linear parameter expression: value = Σ_k terms[k].scale *
/// params[terms[k].id] + offset. An empty term list is a constant.
struct ParamExpr {
  struct Term {
    ParamIndex id = kNoParam;
    real scale = 1.0;
  };
  std::vector<Term> terms;
  real offset = 0.0;

  ParamExpr() = default;

  /// Constant expression.
  static ParamExpr constant(real value);
  /// Direct reference to params[id].
  static ParamExpr param(ParamIndex id);
  /// Single-term affine reference scale * params[id] + offset.
  static ParamExpr affine(ParamIndex id, real scale, real offset);

  bool is_constant() const { return terms.empty(); }
  real eval(const ParamVector& params) const;

  // --- linear arithmetic (used by the transpiler) ---
  ParamExpr operator+(const ParamExpr& rhs) const;
  ParamExpr operator-(const ParamExpr& rhs) const;
  /// Scales all terms and the offset.
  ParamExpr operator*(real factor) const;
  /// Adds a constant shift.
  ParamExpr shifted(real delta) const;
  ParamExpr negated() const { return (*this) * -1.0; }
};

/// One gate instance in a circuit.
struct Gate {
  GateType type = GateType::I;
  std::vector<QubitIndex> qubits;
  std::vector<ParamExpr> params;

  Gate() = default;
  Gate(GateType t, std::vector<QubitIndex> qs, std::vector<ParamExpr> ps = {});

  int num_qubits() const { return gate_num_qubits(type); }
  int num_params() const { return gate_num_params(type); }
  bool is_parameterized() const;

  /// Evaluates the concrete gate angles for a parameter binding.
  std::vector<real> eval_params(const ParamVector& params) const;

  /// Unitary matrix for concrete angle values (2x2 or 4x4).
  CMatrix matrix(const std::vector<real>& values) const;

  /// Partial derivative of the matrix w.r.t. angle slot `k` (analytic).
  /// Defined for all parameterized gate types.
  CMatrix matrix_derivative(const std::vector<real>& values, int k) const;

  /// Human-readable representation, e.g. "cu3(q0,q1; p3, 0.50, p4*0.5)".
  std::string to_string() const;
};

/// Unitary of a gate type for given concrete angle values; free-function
/// form used by tests and the transpiler.
CMatrix gate_matrix(GateType type, const std::vector<real>& values);

}  // namespace qnat
