#include "qsim/pauli_channel.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace qnat {

PauliChannel PauliChannel::scaled(double factor) const {
  QNAT_CHECK(factor >= 0.0, "noise factor must be non-negative");
  PauliChannel out{px * factor, py * factor, pz * factor};
  const double t = out.total();
  if (t > 1.0) {
    out.px /= t;
    out.py /= t;
    out.pz /= t;
  }
  return out;
}

void PauliChannel::validate() const {
  QNAT_CHECK(px >= 0.0 && py >= 0.0 && pz >= 0.0,
             "Pauli probabilities must be non-negative");
  QNAT_CHECK(total() <= 1.0 + 1e-12, "Pauli probabilities must sum to <= 1");
}

PauliChannel PauliChannel::power(int k) const {
  QNAT_CHECK(k >= 0, "channel power must be non-negative");
  validate();
  if (k == 0) return PauliChannel::ideal();
  if (k == 1) return *this;
  const double lx = std::pow(1.0 - 2.0 * (py + pz), k);
  const double ly = std::pow(1.0 - 2.0 * (px + pz), k);
  const double lz = std::pow(1.0 - 2.0 * (px + py), k);
  PauliChannel out{(1.0 + lx - ly - lz) / 4.0, (1.0 - lx + ly - lz) / 4.0,
                   (1.0 - lx - ly + lz) / 4.0};
  // Guard tiny negative values from floating-point cancellation.
  out.px = std::max(out.px, 0.0);
  out.py = std::max(out.py, 0.0);
  out.pz = std::max(out.pz, 0.0);
  return out;
}

std::optional<GateType> PauliChannel::sample(Rng& rng) const {
  const double r = rng.uniform();
  if (r < px) return GateType::X;
  if (r < px + py) return GateType::Y;
  if (r < px + py + pz) return GateType::Z;
  return std::nullopt;
}

}  // namespace qnat
