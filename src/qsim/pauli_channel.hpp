// Pauli error channels.
//
// Per the paper (§3.2), arbitrary gate errors are approximated by Pauli
// errors via Pauli twirling: after a gate executes, an X, Y, or Z gate is
// applied to each operand qubit with small probabilities (pX, pY, pZ), or
// nothing with probability 1 - pX - pY - pZ. The channel also supports the
// paper's noise factor T, which scales all three probabilities to trade
// off injection strength against training stability.
#pragma once

#include <optional>

#include "common/rng.hpp"
#include "qsim/gate.hpp"

namespace qnat {

struct PauliChannel {
  double px = 0.0;
  double py = 0.0;
  double pz = 0.0;

  /// Channel that never inserts an error.
  static PauliChannel ideal() { return PauliChannel{}; }

  /// Symmetric channel with equal X/Y/Z probability p each.
  static PauliChannel symmetric(double p) { return PauliChannel{p, p, p}; }

  /// Total error probability (probability that any Pauli is inserted).
  double total() const { return px + py + pz; }

  /// Probability that no error gate is inserted.
  double p_none() const { return 1.0 - total(); }

  /// Returns a copy with all probabilities scaled by `factor` (the paper's
  /// noise factor T), clamped so the total stays <= 1.
  PauliChannel scaled(double factor) const;

  /// Validates 0 <= px,py,pz and total <= 1; throws qnat::Error otherwise.
  void validate() const;

  /// The channel applied `k` times, composed analytically: Pauli channels
  /// are diagonal in the Pauli transfer picture with eigenvalues
  /// λ_x = 1 - 2(p_y + p_z) (cyclically), so k applications raise each
  /// eigenvalue to the k-th power. Used to charge k idle layers in one
  /// step.
  PauliChannel power(int k) const;

  /// Samples one of {X, Y, Z, none}. Returns nullopt when 'none' is drawn.
  std::optional<GateType> sample(Rng& rng) const;
};

}  // namespace qnat
