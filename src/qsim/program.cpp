#include "qsim/program.hpp"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <optional>
#include <sstream>
#include <string_view>
#include <unordered_map>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "qsim/backend/backend.hpp"
#include "qsim/statevector.hpp"

namespace qnat {

namespace {

bool is_zero(cplx c) { return c.real() == 0.0 && c.imag() == 0.0; }
bool is_one(cplx c) { return c.real() == 1.0 && c.imag() == 0.0; }

std::atomic<bool> g_default_fusion{true};

/// Per-kernel-class dispatch counters, indexed by KernelClass value.
/// Every apply_op dispatch increments exactly one of these, so their sum
/// equals compiled-op count x executions (the conservation invariant
/// checked by metrics_invariants_test).
metrics::Counter& kernel_counter(KernelClass k) {
  static metrics::Counter counters[] = {
      metrics::counter("qsim.kernel.identity"),
      metrics::counter("qsim.kernel.diag1q"),
      metrics::counter("qsim.kernel.antidiag1q"),
      metrics::counter("qsim.kernel.generic1q"),
      metrics::counter("qsim.kernel.diag2q"),
      metrics::counter("qsim.kernel.ctrlanti1q"),
      metrics::counter("qsim.kernel.ctrl1q"),
      metrics::counter("qsim.kernel.swap"),
      metrics::counter("qsim.kernel.generic2q"),
  };
  return counters[static_cast<std::size_t>(k)];
}

}  // namespace

void set_default_fusion(bool fuse) {
  g_default_fusion.store(fuse, std::memory_order_relaxed);
}

bool default_fusion() {
  return g_default_fusion.load(std::memory_order_relaxed);
}

FusionOptions FusionOptions::defaults() {
  return FusionOptions{default_fusion()};
}

const char* kernel_class_name(KernelClass k) {
  switch (k) {
    case KernelClass::Identity: return "identity";
    case KernelClass::Diag1Q: return "diag1q";
    case KernelClass::AntiDiag1Q: return "antidiag1q";
    case KernelClass::Generic1Q: return "generic1q";
    case KernelClass::Diag2Q: return "diag2q";
    case KernelClass::CtrlAnti1Q: return "ctrlanti1q";
    case KernelClass::Ctrl1Q: return "ctrl1q";
    case KernelClass::Swap: return "swap";
    case KernelClass::Generic2Q: return "generic2q";
  }
  return "?";
}

KernelClass classify_1q(const CMatrix& m) {
  if (is_zero(m(0, 1)) && is_zero(m(1, 0))) {
    if (is_one(m(0, 0)) && is_one(m(1, 1))) return KernelClass::Identity;
    return KernelClass::Diag1Q;
  }
  if (is_zero(m(0, 0)) && is_zero(m(1, 1))) return KernelClass::AntiDiag1Q;
  return KernelClass::Generic1Q;
}

KernelClass classify_2q(const CMatrix& m) {
  bool off_diag_zero = true;
  for (std::size_t r = 0; r < 4 && off_diag_zero; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      if (r != c && !is_zero(m(r, c))) {
        off_diag_zero = false;
        break;
      }
    }
  }
  if (off_diag_zero) {
    if (is_one(m(0, 0)) && is_one(m(1, 1)) && is_one(m(2, 2)) &&
        is_one(m(3, 3))) {
      return KernelClass::Identity;
    }
    return KernelClass::Diag2Q;
  }

  // SWAP permutation: exact 1s at (0,0), (1,2), (2,1), (3,3).
  if (is_one(m(0, 0)) && is_one(m(1, 2)) && is_one(m(2, 1)) &&
      is_one(m(3, 3)) && is_zero(m(0, 1)) && is_zero(m(0, 2)) &&
      is_zero(m(0, 3)) && is_zero(m(1, 0)) && is_zero(m(1, 1)) &&
      is_zero(m(1, 3)) && is_zero(m(2, 0)) && is_zero(m(2, 2)) &&
      is_zero(m(2, 3)) && is_zero(m(3, 0)) && is_zero(m(3, 1)) &&
      is_zero(m(3, 2))) {
    return KernelClass::Swap;
  }

  // Controlled structure: identity on the control-0 block, zero
  // off-blocks, arbitrary 2x2 on the control-1 block.
  const bool controlled =
      is_one(m(0, 0)) && is_one(m(1, 1)) && is_zero(m(0, 1)) &&
      is_zero(m(1, 0)) && is_zero(m(0, 2)) && is_zero(m(0, 3)) &&
      is_zero(m(1, 2)) && is_zero(m(1, 3)) && is_zero(m(2, 0)) &&
      is_zero(m(2, 1)) && is_zero(m(3, 0)) && is_zero(m(3, 1));
  if (controlled) {
    if (is_zero(m(2, 2)) && is_zero(m(3, 3))) return KernelClass::CtrlAnti1Q;
    return KernelClass::Ctrl1Q;
  }
  return KernelClass::Generic2Q;
}

void apply_classified_1q(StateVector& state, KernelClass kernel,
                         const CMatrix& m, QubitIndex q) {
  switch (kernel) {
    case KernelClass::Identity:
      return;
    case KernelClass::Diag1Q:
      state.apply_diag_1q(m(0, 0), m(1, 1), q);
      return;
    case KernelClass::AntiDiag1Q:
      state.apply_antidiag_1q(m(0, 1), m(1, 0), q);
      return;
    default:
      state.apply_1q(m, q);
      return;
  }
}

void apply_classified_2q(StateVector& state, KernelClass kernel,
                         const CMatrix& m, QubitIndex a, QubitIndex b) {
  switch (kernel) {
    case KernelClass::Identity:
      return;
    case KernelClass::Diag2Q:
      state.apply_diag_2q(m(0, 0), m(1, 1), m(2, 2), m(3, 3), a, b);
      return;
    case KernelClass::CtrlAnti1Q:
      state.apply_controlled_antidiag_1q(m(2, 3), m(3, 2), a, b);
      return;
    case KernelClass::Ctrl1Q:
      state.apply_controlled_1q(m(2, 2), m(2, 3), m(3, 2), m(3, 3), a, b);
      return;
    case KernelClass::Swap:
      state.apply_swap(a, b);
      return;
    default:
      state.apply_2q(m, a, b);
      return;
  }
}

void apply_matrix_1q(StateVector& state, const CMatrix& m, QubitIndex q) {
  apply_classified_1q(state, classify_1q(m), m, q);
}

void apply_matrix_2q(StateVector& state, const CMatrix& m, QubitIndex a,
                     QubitIndex b) {
  apply_classified_2q(state, classify_2q(m), m, a, b);
}

CompiledOp compile_gate_op(const Gate& gate) {
  CompiledOp op;
  op.num_qubits = gate.num_qubits();
  op.q0 = gate.qubits[0];
  op.q1 = op.num_qubits == 2 ? gate.qubits[1] : QubitIndex{0};
  if (gate.is_parameterized()) {
    op.parameterized = true;
    op.gate = gate;
    // The concrete class is derived per binding from the evaluated matrix.
    op.kernel = op.num_qubits == 1 ? KernelClass::Generic1Q
                                   : KernelClass::Generic2Q;
    return op;
  }
  op.matrix = gate.matrix(gate.eval_params({}));
  op.kernel =
      op.num_qubits == 1 ? classify_1q(op.matrix) : classify_2q(op.matrix);
  return op;
}

void count_kernel_dispatch(KernelClass k) { kernel_counter(k).inc(); }

void apply_op(StateVector& state, const CompiledOp& op,
              const ParamVector& params) {
  if (!op.parameterized) {
    kernel_counter(op.kernel).inc();
    if (op.kernel == KernelClass::Identity) return;
    if (op.num_qubits == 1) {
      apply_classified_1q(state, op.kernel, op.matrix, op.q0);
    } else {
      apply_classified_2q(state, op.kernel, op.matrix, op.q0, op.q1);
    }
    return;
  }
  const CMatrix m = op.gate.matrix(op.gate.eval_params(params));
  if (op.num_qubits == 1) {
    const KernelClass kernel = classify_1q(m);
    kernel_counter(kernel).inc();
    apply_classified_1q(state, kernel, m, op.q0);
  } else {
    const KernelClass kernel = classify_2q(m);
    kernel_counter(kernel).inc();
    apply_classified_2q(state, kernel, m, op.q0, op.q1);
  }
}

void CompiledProgram::run(StateVector& state, const ParamVector& params) const {
  QNAT_CHECK(state.num_qubits() == num_qubits_,
             "state / program qubit count mismatch");
  QNAT_CHECK(static_cast<int>(params.size()) >= num_params_,
             "parameter vector too short for program");
  static metrics::Counter executions =
      metrics::counter("qsim.program.executions");
  static metrics::Counter op_dispatches =
      metrics::counter("qsim.program.op_dispatches");
  executions.inc();
  op_dispatches.add(ops_.size());
  // Whole-program execution is handed to the active backend; the default
  // Backend::execute walks the op list through apply_op (preserving the
  // per-kernel-class counter conservation invariant).
  backend::active().execute(*this, state, params);
}

CompiledProgram compile_program(const Circuit& circuit,
                                const FusionOptions& options) {
  ProgramStats stats;
  std::vector<CompiledOp> ops;
  ops.reserve(circuit.size());

  // Per-qubit accumulator of pending constant single-qubit matrices. A new
  // constant 1q gate left-multiplies the pending product; any gate that
  // touches the qubit and cannot join the run (two-qubit or parameterized)
  // flushes it first, preserving gate order on every qubit.
  const auto nq = static_cast<std::size_t>(circuit.num_qubits());
  std::vector<std::optional<CMatrix>> pending(nq);
  std::vector<int> pending_count(nq, 0);

  auto flush = [&](QubitIndex q) {
    auto& slot = pending[static_cast<std::size_t>(q)];
    if (!slot.has_value()) return;
    CompiledOp op;
    op.num_qubits = 1;
    op.q0 = q;
    op.matrix = std::move(*slot);
    op.kernel = classify_1q(op.matrix);
    op.fused_gates = pending_count[static_cast<std::size_t>(q)];
    stats.fused_away += op.fused_gates - 1;
    slot.reset();
    pending_count[static_cast<std::size_t>(q)] = 0;
    if (op.kernel == KernelClass::Identity) {
      ++stats.identity_removed;
      return;
    }
    ops.push_back(std::move(op));
  };

  for (const Gate& gate : circuit.gates()) {
    ++stats.source_gates;
    if (!options.fuse) {
      ops.push_back(compile_gate_op(gate));
      continue;
    }
    if (gate.num_qubits() == 1 && !gate.is_parameterized()) {
      auto& slot = pending[static_cast<std::size_t>(gate.qubits[0])];
      const CMatrix m = gate.matrix(gate.eval_params({}));
      slot = slot.has_value() ? m * *slot : m;
      ++pending_count[static_cast<std::size_t>(gate.qubits[0])];
      continue;
    }
    for (const QubitIndex q : gate.qubits) flush(q);
    CompiledOp op = compile_gate_op(gate);
    if (!op.parameterized && op.kernel == KernelClass::Identity) {
      ++stats.identity_removed;
      continue;
    }
    ops.push_back(std::move(op));
  }
  if (options.fuse) {
    for (QubitIndex q = 0; q < circuit.num_qubits(); ++q) flush(q);
  }

  stats.ops = static_cast<int>(ops.size());
  return CompiledProgram(circuit.num_qubits(), circuit.num_params(),
                         circuit.fingerprint(), std::move(ops), stats);
}

namespace {

struct ProgramCache {
  std::mutex mu;
  std::unordered_map<std::uint64_t,
                     std::shared_ptr<const CompiledProgram>> map;
};

ProgramCache& program_cache() {
  static ProgramCache* cache = new ProgramCache();
  return *cache;
}

/// Bound on cached programs. One-off circuits (fresh noise-injected
/// trajectories) insert entries that are never hit again; clearing
/// wholesale when full keeps memory bounded while hot circuits simply
/// re-compile on their next use. Tunable so eviction is testable with a
/// small corpus.
std::atomic<std::size_t> g_program_cache_capacity{4096};

std::uint64_t cache_key(const Circuit& circuit, const FusionOptions& options) {
  // Fingerprint collisions across distinct circuits are vanishingly
  // unlikely (64-bit structural hash; see Circuit::fingerprint).
  return circuit.fingerprint() ^
         (options.fuse ? 0x0ULL : 0x9E3779B97F4A7C15ULL);
}

}  // namespace

std::shared_ptr<const CompiledProgram> shared_program(
    const Circuit& circuit, const FusionOptions& options) {
  // Cache traffic is PerRun: concurrent first uses of the same circuit
  // can each miss (duplicate compiles are harmless), so hit/miss splits
  // depend on scheduling and thread count.
  static metrics::Counter cache_hits =
      metrics::counter("qsim.program.cache_hits", metrics::Stability::PerRun);
  static metrics::Counter cache_misses = metrics::counter(
      "qsim.program.cache_misses", metrics::Stability::PerRun);
  static metrics::Counter cache_evictions = metrics::counter(
      "qsim.program.cache_evictions", metrics::Stability::PerRun);
  ProgramCache& cache = program_cache();
  const std::uint64_t key = cache_key(circuit, options);
  {
    std::lock_guard<std::mutex> lock(cache.mu);
    const auto it = cache.map.find(key);
    if (it != cache.map.end()) {
      cache_hits.inc();
      return it->second;
    }
  }
  cache_misses.inc();
  // Compile outside the lock; a concurrent duplicate compile is harmless
  // (deterministic result) and the first inserted entry wins.
  auto program = std::make_shared<const CompiledProgram>(
      compile_program(circuit, options));
  std::lock_guard<std::mutex> lock(cache.mu);
  if (cache.map.size() >= program_cache_capacity()) {
    cache_evictions.add(cache.map.size());
    cache.map.clear();
  }
  return cache.map.emplace(key, std::move(program)).first->second;
}

std::size_t program_cache_size() {
  ProgramCache& cache = program_cache();
  std::lock_guard<std::mutex> lock(cache.mu);
  return cache.map.size();
}

void clear_program_cache() {
  ProgramCache& cache = program_cache();
  std::lock_guard<std::mutex> lock(cache.mu);
  cache.map.clear();
}

void set_program_cache_capacity(std::size_t capacity) {
  g_program_cache_capacity.store(capacity == 0 ? 1 : capacity,
                                 std::memory_order_relaxed);
}

std::size_t program_cache_capacity() {
  return g_program_cache_capacity.load(std::memory_order_relaxed);
}

// --- QNATPROG v2 serialization ---

namespace {

constexpr const char* kProgramMagic = "#qnat-program";
constexpr const char* kProgramVersion = "v2";
constexpr const char* kProgramVersionLegacy = "v1";

/// FNV-1a 64-bit over the canonical artifact body.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

void put_hex64(std::ostream& os, std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  os << buf;
}

void put_real(std::ostream& os, real v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << buf;
}

void put_matrix(std::ostream& os, const CMatrix& m) {
  os << "m";
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      os << ' ';
      put_real(os, m(r, c).real());
      os << ' ';
      put_real(os, m(r, c).imag());
    }
  }
  os << '\n';
}

/// Canonical body: everything checksummed, i.e. the artifact minus the
/// trailing checksum/end lines. The deserializer re-serializes what it
/// parsed and compares hashes, so any non-canonical edit fails loudly.
/// `legacy_v1` reproduces the v1 layout (no dtype line) so checksums of
/// legacy artifacts still verify on load; new artifacts always write v2.
std::string serialize_program_body(const CompiledProgram& program,
                                   bool legacy_v1 = false) {
  std::ostringstream os;
  os << kProgramMagic << ' '
     << (legacy_v1 ? kProgramVersionLegacy : kProgramVersion) << '\n';
  os << "qubits " << program.num_qubits() << '\n';
  os << "params " << program.num_params() << '\n';
  if (!legacy_v1) os << "dtype " << dtype_name(program.dtype()) << '\n';
  os << "fingerprint ";
  put_hex64(os, program.source_fingerprint());
  os << '\n';
  const ProgramStats& stats = program.stats();
  os << "source_gates " << stats.source_gates << '\n';
  os << "fused_away " << stats.fused_away << '\n';
  os << "identity_removed " << stats.identity_removed << '\n';
  os << "ops " << program.ops().size() << '\n';
  for (const CompiledOp& op : program.ops()) {
    os << "op " << kernel_class_name(op.kernel) << ' ' << op.num_qubits
       << ' ' << op.q0 << ' ' << op.q1 << ' ' << op.fused_gates << ' '
       << (op.parameterized ? "param" : "const") << '\n';
    if (!op.parameterized) {
      put_matrix(os, op.matrix);
      continue;
    }
    os << "gate " << gate_name(op.gate.type);
    for (const QubitIndex q : op.gate.qubits) os << ' ' << q;
    os << '\n';
    for (const ParamExpr& expr : op.gate.params) {
      os << "expr " << expr.terms.size();
      for (const ParamExpr::Term& term : expr.terms) {
        os << ' ' << term.id << ' ';
        put_real(os, term.scale);
      }
      os << ' ';
      put_real(os, expr.offset);
      os << '\n';
    }
  }
  return std::move(os).str();
}

std::string next_tok(std::istream& is, const char* what) {
  std::string t;
  QNAT_CHECK(static_cast<bool>(is >> t),
             std::string("program artifact: truncated before ") + what);
  return t;
}

void expect_tok(std::istream& is, const char* want) {
  const std::string t = next_tok(is, want);
  QNAT_CHECK(t == want, std::string("program artifact: expected '") + want +
                            "', got '" + t + "'");
}

long long read_int(std::istream& is, const char* what, long long lo,
                   long long hi) {
  long long v = 0;
  QNAT_CHECK(static_cast<bool>(is >> v),
             std::string("program artifact: truncated/bad ") + what);
  QNAT_CHECK(v >= lo && v <= hi,
             std::string("program artifact: ") + what + " out of range");
  return v;
}

real read_real(std::istream& is, const char* what) {
  real v = 0.0;
  QNAT_CHECK(static_cast<bool>(is >> v),
             std::string("program artifact: truncated/bad ") + what);
  return v;
}

std::uint64_t parse_hex64(const std::string& tok, const char* what) {
  QNAT_CHECK(!tok.empty() && tok.size() <= 16,
             std::string("program artifact: bad ") + what);
  std::uint64_t v = 0;
  for (const char c : tok) {
    int d = -1;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    QNAT_CHECK(d >= 0, std::string("program artifact: bad ") + what);
    v = (v << 4) | static_cast<std::uint64_t>(d);
  }
  return v;
}

KernelClass kernel_class_from_name(const std::string& name) {
  for (int i = 0; i <= static_cast<int>(KernelClass::Generic2Q); ++i) {
    const auto k = static_cast<KernelClass>(i);
    if (name == kernel_class_name(k)) return k;
  }
  QNAT_CHECK(false, "program artifact: unknown kernel class '" + name + "'");
  return KernelClass::Identity;
}

}  // namespace

std::string serialize_program(const CompiledProgram& program) {
  std::string body = serialize_program_body(program);
  std::ostringstream os;
  os << "checksum ";
  put_hex64(os, fnv1a(body));
  os << "\nend\n";
  body += std::move(os).str();
  return body;
}

CompiledProgram deserialize_program(const std::string& text) {
  std::istringstream is(text);
  // Magic line first: a non-artifact file must be recognizable as such
  // before any structural error is reported.
  std::string magic_line;
  QNAT_CHECK(static_cast<bool>(std::getline(is, magic_line)),
             "program artifact: empty input");
  if (!magic_line.empty() && magic_line.back() == '\r') magic_line.pop_back();
  const std::string expected_magic =
      std::string(kProgramMagic) + ' ' + kProgramVersion;
  const std::string legacy_magic =
      std::string(kProgramMagic) + ' ' + kProgramVersionLegacy;
  QNAT_CHECK(magic_line.rfind(kProgramMagic, 0) == 0,
             "program artifact: bad magic (not a QNATPROG file)");
  const bool legacy_v1 = magic_line == legacy_magic;
  QNAT_CHECK(legacy_v1 || magic_line == expected_magic,
             "program artifact: unsupported version '" + magic_line +
                 "' (expected " + expected_magic + " or " + legacy_magic +
                 ")");

  expect_tok(is, "qubits");
  const int num_qubits =
      static_cast<int>(read_int(is, "qubits", 1, 24));
  expect_tok(is, "params");
  const int num_params =
      static_cast<int>(read_int(is, "params", 0, 1 << 20));
  // v2 records the intended execution precision; v1 predates the f32
  // backends and implies f64. An unrecognized token means the artifact
  // came from a newer build — refuse it rather than guess a precision.
  DType dtype = DType::F64;
  if (!legacy_v1) {
    expect_tok(is, "dtype");
    const std::string dtype_tok = next_tok(is, "dtype");
    if (dtype_tok == "f32") {
      dtype = DType::F32;
    } else {
      QNAT_CHECK(dtype_tok == "f64",
                 "program artifact: unknown dtype '" + dtype_tok +
                     "' (expected f64 or f32; artifact from a newer "
                     "build?)");
    }
  }
  expect_tok(is, "fingerprint");
  const std::uint64_t fingerprint =
      parse_hex64(next_tok(is, "fingerprint"), "fingerprint");
  ProgramStats stats;
  expect_tok(is, "source_gates");
  stats.source_gates =
      static_cast<int>(read_int(is, "source_gates", 0, 1 << 30));
  expect_tok(is, "fused_away");
  stats.fused_away = static_cast<int>(read_int(is, "fused_away", 0, 1 << 30));
  expect_tok(is, "identity_removed");
  stats.identity_removed =
      static_cast<int>(read_int(is, "identity_removed", 0, 1 << 30));
  expect_tok(is, "ops");
  const long long num_ops = read_int(is, "ops", 0, 1 << 22);

  std::vector<CompiledOp> ops;
  ops.reserve(static_cast<std::size_t>(num_ops));
  for (long long oi = 0; oi < num_ops; ++oi) {
    expect_tok(is, "op");
    CompiledOp op;
    op.kernel = kernel_class_from_name(next_tok(is, "kernel class"));
    op.num_qubits = static_cast<int>(read_int(is, "op qubit count", 1, 2));
    op.q0 = static_cast<QubitIndex>(
        read_int(is, "op q0", 0, num_qubits - 1));
    op.q1 = static_cast<QubitIndex>(
        read_int(is, "op q1", 0, num_qubits - 1));
    QNAT_CHECK(op.num_qubits == 1 || op.q0 != op.q1,
               "program artifact: two-qubit op on identical qubits");
    QNAT_CHECK(op.num_qubits == 2 || op.q1 == 0,
               "program artifact: one-qubit op with nonzero q1");
    op.fused_gates =
        static_cast<int>(read_int(is, "fused gate count", 1, 1 << 30));
    const std::string mode = next_tok(is, "op mode");
    if (mode == "const") {
      op.parameterized = false;
      expect_tok(is, "m");
      const std::size_t n = op.num_qubits == 1 ? 2 : 4;
      op.matrix = CMatrix(n, n);
      for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) {
          const real re = read_real(is, "matrix entry");
          const real im = read_real(is, "matrix entry");
          op.matrix(r, c) = cplx(re, im);
        }
      }
      // The kernel class drives which matrix entries the apply routines
      // read; a mismatch with the stored matrix structure would execute
      // the wrong unitary, so re-classify and insist on agreement.
      const KernelClass derived = op.num_qubits == 1
                                      ? classify_1q(op.matrix)
                                      : classify_2q(op.matrix);
      QNAT_CHECK(derived == op.kernel,
                 std::string("program artifact: kernel class '") +
                     kernel_class_name(op.kernel) +
                     "' does not match matrix structure ('" +
                     kernel_class_name(derived) + "')");
    } else if (mode == "param") {
      op.parameterized = true;
      expect_tok(is, "gate");
      const GateType type = gate_type_from_name(next_tok(is, "gate name"));
      const int gate_nq = gate_num_qubits(type);
      QNAT_CHECK(gate_nq == op.num_qubits,
                 "program artifact: gate arity does not match op arity");
      std::vector<QubitIndex> qubits;
      for (int q = 0; q < gate_nq; ++q) {
        qubits.push_back(static_cast<QubitIndex>(
            read_int(is, "gate qubit", 0, num_qubits - 1)));
      }
      QNAT_CHECK(qubits[0] == op.q0 &&
                     (gate_nq == 1 || qubits[1] == op.q1),
                 "program artifact: gate qubits do not match op qubits");
      std::vector<ParamExpr> exprs;
      for (int p = 0; p < gate_num_params(type); ++p) {
        expect_tok(is, "expr");
        ParamExpr expr;
        const long long nterms = read_int(is, "expr term count", 0, 64);
        for (long long t = 0; t < nterms; ++t) {
          ParamExpr::Term term;
          term.id = static_cast<ParamIndex>(
              read_int(is, "expr param id", 0, num_params - 1));
          term.scale = read_real(is, "expr scale");
          expr.terms.push_back(term);
        }
        expr.offset = read_real(is, "expr offset");
        exprs.push_back(std::move(expr));
      }
      op.gate = Gate(type, std::move(qubits), std::move(exprs));
      QNAT_CHECK(op.gate.is_parameterized(),
                 "program artifact: param op with no free parameters");
      const KernelClass expected = op.num_qubits == 1
                                       ? KernelClass::Generic1Q
                                       : KernelClass::Generic2Q;
      QNAT_CHECK(op.kernel == expected,
                 "program artifact: parameterized op must use the generic "
                 "kernel class");
    } else {
      QNAT_CHECK(false,
                 "program artifact: unknown op mode '" + mode + "'");
    }
    ops.push_back(std::move(op));
  }

  expect_tok(is, "checksum");
  const std::uint64_t stored_checksum =
      parse_hex64(next_tok(is, "checksum"), "checksum");
  expect_tok(is, "end");
  std::string trailing;
  QNAT_CHECK(!(is >> trailing),
             "program artifact: trailing data after end sentinel");

  stats.ops = static_cast<int>(ops.size());
  CompiledProgram program(num_qubits, num_params, fingerprint,
                          std::move(ops), stats);
  program.set_dtype(dtype);
  const std::uint64_t computed =
      fnv1a(serialize_program_body(program, legacy_v1));
  QNAT_CHECK(computed == stored_checksum,
             "program artifact: checksum mismatch (corrupt or "
             "non-canonical file)");
  return program;
}

void save_program(const CompiledProgram& program, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  QNAT_CHECK(out.good(), "cannot open program artifact for writing: " + path);
  out << serialize_program(program);
  out.flush();
  QNAT_CHECK(out.good(), "failed writing program artifact: " + path);
}

CompiledProgram load_program(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  QNAT_CHECK(in.good(), "cannot open program artifact: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  QNAT_CHECK(!in.bad(), "failed reading program artifact: " + path);
  return deserialize_program(std::move(buffer).str());
}

}  // namespace qnat
