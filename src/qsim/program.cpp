#include "qsim/program.hpp"

#include <atomic>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "qsim/statevector.hpp"

namespace qnat {

namespace {

bool is_zero(cplx c) { return c.real() == 0.0 && c.imag() == 0.0; }
bool is_one(cplx c) { return c.real() == 1.0 && c.imag() == 0.0; }

std::atomic<bool> g_default_fusion{true};

/// Per-kernel-class dispatch counters, indexed by KernelClass value.
/// Every apply_op dispatch increments exactly one of these, so their sum
/// equals compiled-op count x executions (the conservation invariant
/// checked by metrics_invariants_test).
metrics::Counter& kernel_counter(KernelClass k) {
  static metrics::Counter counters[] = {
      metrics::counter("qsim.kernel.identity"),
      metrics::counter("qsim.kernel.diag1q"),
      metrics::counter("qsim.kernel.antidiag1q"),
      metrics::counter("qsim.kernel.generic1q"),
      metrics::counter("qsim.kernel.diag2q"),
      metrics::counter("qsim.kernel.ctrlanti1q"),
      metrics::counter("qsim.kernel.ctrl1q"),
      metrics::counter("qsim.kernel.swap"),
      metrics::counter("qsim.kernel.generic2q"),
  };
  return counters[static_cast<std::size_t>(k)];
}

}  // namespace

void set_default_fusion(bool fuse) {
  g_default_fusion.store(fuse, std::memory_order_relaxed);
}

bool default_fusion() {
  return g_default_fusion.load(std::memory_order_relaxed);
}

FusionOptions FusionOptions::defaults() {
  return FusionOptions{default_fusion()};
}

const char* kernel_class_name(KernelClass k) {
  switch (k) {
    case KernelClass::Identity: return "identity";
    case KernelClass::Diag1Q: return "diag1q";
    case KernelClass::AntiDiag1Q: return "antidiag1q";
    case KernelClass::Generic1Q: return "generic1q";
    case KernelClass::Diag2Q: return "diag2q";
    case KernelClass::CtrlAnti1Q: return "ctrlanti1q";
    case KernelClass::Ctrl1Q: return "ctrl1q";
    case KernelClass::Swap: return "swap";
    case KernelClass::Generic2Q: return "generic2q";
  }
  return "?";
}

KernelClass classify_1q(const CMatrix& m) {
  if (is_zero(m(0, 1)) && is_zero(m(1, 0))) {
    if (is_one(m(0, 0)) && is_one(m(1, 1))) return KernelClass::Identity;
    return KernelClass::Diag1Q;
  }
  if (is_zero(m(0, 0)) && is_zero(m(1, 1))) return KernelClass::AntiDiag1Q;
  return KernelClass::Generic1Q;
}

KernelClass classify_2q(const CMatrix& m) {
  bool off_diag_zero = true;
  for (std::size_t r = 0; r < 4 && off_diag_zero; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      if (r != c && !is_zero(m(r, c))) {
        off_diag_zero = false;
        break;
      }
    }
  }
  if (off_diag_zero) {
    if (is_one(m(0, 0)) && is_one(m(1, 1)) && is_one(m(2, 2)) &&
        is_one(m(3, 3))) {
      return KernelClass::Identity;
    }
    return KernelClass::Diag2Q;
  }

  // SWAP permutation: exact 1s at (0,0), (1,2), (2,1), (3,3).
  if (is_one(m(0, 0)) && is_one(m(1, 2)) && is_one(m(2, 1)) &&
      is_one(m(3, 3)) && is_zero(m(0, 1)) && is_zero(m(0, 2)) &&
      is_zero(m(0, 3)) && is_zero(m(1, 0)) && is_zero(m(1, 1)) &&
      is_zero(m(1, 3)) && is_zero(m(2, 0)) && is_zero(m(2, 2)) &&
      is_zero(m(2, 3)) && is_zero(m(3, 0)) && is_zero(m(3, 1)) &&
      is_zero(m(3, 2))) {
    return KernelClass::Swap;
  }

  // Controlled structure: identity on the control-0 block, zero
  // off-blocks, arbitrary 2x2 on the control-1 block.
  const bool controlled =
      is_one(m(0, 0)) && is_one(m(1, 1)) && is_zero(m(0, 1)) &&
      is_zero(m(1, 0)) && is_zero(m(0, 2)) && is_zero(m(0, 3)) &&
      is_zero(m(1, 2)) && is_zero(m(1, 3)) && is_zero(m(2, 0)) &&
      is_zero(m(2, 1)) && is_zero(m(3, 0)) && is_zero(m(3, 1));
  if (controlled) {
    if (is_zero(m(2, 2)) && is_zero(m(3, 3))) return KernelClass::CtrlAnti1Q;
    return KernelClass::Ctrl1Q;
  }
  return KernelClass::Generic2Q;
}

void apply_classified_1q(StateVector& state, KernelClass kernel,
                         const CMatrix& m, QubitIndex q) {
  switch (kernel) {
    case KernelClass::Identity:
      return;
    case KernelClass::Diag1Q:
      state.apply_diag_1q(m(0, 0), m(1, 1), q);
      return;
    case KernelClass::AntiDiag1Q:
      state.apply_antidiag_1q(m(0, 1), m(1, 0), q);
      return;
    default:
      state.apply_1q(m, q);
      return;
  }
}

void apply_classified_2q(StateVector& state, KernelClass kernel,
                         const CMatrix& m, QubitIndex a, QubitIndex b) {
  switch (kernel) {
    case KernelClass::Identity:
      return;
    case KernelClass::Diag2Q:
      state.apply_diag_2q(m(0, 0), m(1, 1), m(2, 2), m(3, 3), a, b);
      return;
    case KernelClass::CtrlAnti1Q:
      state.apply_controlled_antidiag_1q(m(2, 3), m(3, 2), a, b);
      return;
    case KernelClass::Ctrl1Q:
      state.apply_controlled_1q(m(2, 2), m(2, 3), m(3, 2), m(3, 3), a, b);
      return;
    case KernelClass::Swap:
      state.apply_swap(a, b);
      return;
    default:
      state.apply_2q(m, a, b);
      return;
  }
}

void apply_matrix_1q(StateVector& state, const CMatrix& m, QubitIndex q) {
  apply_classified_1q(state, classify_1q(m), m, q);
}

void apply_matrix_2q(StateVector& state, const CMatrix& m, QubitIndex a,
                     QubitIndex b) {
  apply_classified_2q(state, classify_2q(m), m, a, b);
}

CompiledOp compile_gate_op(const Gate& gate) {
  CompiledOp op;
  op.num_qubits = gate.num_qubits();
  op.q0 = gate.qubits[0];
  op.q1 = op.num_qubits == 2 ? gate.qubits[1] : QubitIndex{0};
  if (gate.is_parameterized()) {
    op.parameterized = true;
    op.gate = gate;
    // The concrete class is derived per binding from the evaluated matrix.
    op.kernel = op.num_qubits == 1 ? KernelClass::Generic1Q
                                   : KernelClass::Generic2Q;
    return op;
  }
  op.matrix = gate.matrix(gate.eval_params({}));
  op.kernel =
      op.num_qubits == 1 ? classify_1q(op.matrix) : classify_2q(op.matrix);
  return op;
}

void apply_op(StateVector& state, const CompiledOp& op,
              const ParamVector& params) {
  if (!op.parameterized) {
    kernel_counter(op.kernel).inc();
    if (op.kernel == KernelClass::Identity) return;
    if (op.num_qubits == 1) {
      apply_classified_1q(state, op.kernel, op.matrix, op.q0);
    } else {
      apply_classified_2q(state, op.kernel, op.matrix, op.q0, op.q1);
    }
    return;
  }
  const CMatrix m = op.gate.matrix(op.gate.eval_params(params));
  if (op.num_qubits == 1) {
    const KernelClass kernel = classify_1q(m);
    kernel_counter(kernel).inc();
    apply_classified_1q(state, kernel, m, op.q0);
  } else {
    const KernelClass kernel = classify_2q(m);
    kernel_counter(kernel).inc();
    apply_classified_2q(state, kernel, m, op.q0, op.q1);
  }
}

void CompiledProgram::run(StateVector& state, const ParamVector& params) const {
  QNAT_CHECK(state.num_qubits() == num_qubits_,
             "state / program qubit count mismatch");
  QNAT_CHECK(static_cast<int>(params.size()) >= num_params_,
             "parameter vector too short for program");
  static metrics::Counter executions =
      metrics::counter("qsim.program.executions");
  static metrics::Counter op_dispatches =
      metrics::counter("qsim.program.op_dispatches");
  executions.inc();
  op_dispatches.add(ops_.size());
  for (const CompiledOp& op : ops_) {
    apply_op(state, op, params);
  }
}

CompiledProgram compile_program(const Circuit& circuit,
                                const FusionOptions& options) {
  ProgramStats stats;
  std::vector<CompiledOp> ops;
  ops.reserve(circuit.size());

  // Per-qubit accumulator of pending constant single-qubit matrices. A new
  // constant 1q gate left-multiplies the pending product; any gate that
  // touches the qubit and cannot join the run (two-qubit or parameterized)
  // flushes it first, preserving gate order on every qubit.
  const auto nq = static_cast<std::size_t>(circuit.num_qubits());
  std::vector<std::optional<CMatrix>> pending(nq);
  std::vector<int> pending_count(nq, 0);

  auto flush = [&](QubitIndex q) {
    auto& slot = pending[static_cast<std::size_t>(q)];
    if (!slot.has_value()) return;
    CompiledOp op;
    op.num_qubits = 1;
    op.q0 = q;
    op.matrix = std::move(*slot);
    op.kernel = classify_1q(op.matrix);
    op.fused_gates = pending_count[static_cast<std::size_t>(q)];
    stats.fused_away += op.fused_gates - 1;
    slot.reset();
    pending_count[static_cast<std::size_t>(q)] = 0;
    if (op.kernel == KernelClass::Identity) {
      ++stats.identity_removed;
      return;
    }
    ops.push_back(std::move(op));
  };

  for (const Gate& gate : circuit.gates()) {
    ++stats.source_gates;
    if (!options.fuse) {
      ops.push_back(compile_gate_op(gate));
      continue;
    }
    if (gate.num_qubits() == 1 && !gate.is_parameterized()) {
      auto& slot = pending[static_cast<std::size_t>(gate.qubits[0])];
      const CMatrix m = gate.matrix(gate.eval_params({}));
      slot = slot.has_value() ? m * *slot : m;
      ++pending_count[static_cast<std::size_t>(gate.qubits[0])];
      continue;
    }
    for (const QubitIndex q : gate.qubits) flush(q);
    CompiledOp op = compile_gate_op(gate);
    if (!op.parameterized && op.kernel == KernelClass::Identity) {
      ++stats.identity_removed;
      continue;
    }
    ops.push_back(std::move(op));
  }
  if (options.fuse) {
    for (QubitIndex q = 0; q < circuit.num_qubits(); ++q) flush(q);
  }

  stats.ops = static_cast<int>(ops.size());
  return CompiledProgram(circuit.num_qubits(), circuit.num_params(),
                         circuit.fingerprint(), std::move(ops), stats);
}

namespace {

struct ProgramCache {
  std::mutex mu;
  std::unordered_map<std::uint64_t,
                     std::shared_ptr<const CompiledProgram>> map;
};

ProgramCache& program_cache() {
  static ProgramCache* cache = new ProgramCache();
  return *cache;
}

/// Bound on cached programs. One-off circuits (fresh noise-injected
/// trajectories) insert entries that are never hit again; clearing
/// wholesale when full keeps memory bounded while hot circuits simply
/// re-compile on their next use.
constexpr std::size_t kMaxCachedPrograms = 4096;

std::uint64_t cache_key(const Circuit& circuit, const FusionOptions& options) {
  // Fingerprint collisions across distinct circuits are vanishingly
  // unlikely (64-bit structural hash; see Circuit::fingerprint).
  return circuit.fingerprint() ^
         (options.fuse ? 0x0ULL : 0x9E3779B97F4A7C15ULL);
}

}  // namespace

std::shared_ptr<const CompiledProgram> shared_program(
    const Circuit& circuit, const FusionOptions& options) {
  // Cache traffic is PerRun: concurrent first uses of the same circuit
  // can each miss (duplicate compiles are harmless), so hit/miss splits
  // depend on scheduling and thread count.
  static metrics::Counter cache_hits =
      metrics::counter("qsim.program.cache_hits", metrics::Stability::PerRun);
  static metrics::Counter cache_misses = metrics::counter(
      "qsim.program.cache_misses", metrics::Stability::PerRun);
  static metrics::Counter cache_evictions = metrics::counter(
      "qsim.program.cache_evictions", metrics::Stability::PerRun);
  ProgramCache& cache = program_cache();
  const std::uint64_t key = cache_key(circuit, options);
  {
    std::lock_guard<std::mutex> lock(cache.mu);
    const auto it = cache.map.find(key);
    if (it != cache.map.end()) {
      cache_hits.inc();
      return it->second;
    }
  }
  cache_misses.inc();
  // Compile outside the lock; a concurrent duplicate compile is harmless
  // (deterministic result) and the first inserted entry wins.
  auto program = std::make_shared<const CompiledProgram>(
      compile_program(circuit, options));
  std::lock_guard<std::mutex> lock(cache.mu);
  if (cache.map.size() >= kMaxCachedPrograms) {
    cache_evictions.add(cache.map.size());
    cache.map.clear();
  }
  return cache.map.emplace(key, std::move(program)).first->second;
}

std::size_t program_cache_size() {
  ProgramCache& cache = program_cache();
  std::lock_guard<std::mutex> lock(cache.mu);
  return cache.map.size();
}

void clear_program_cache() {
  ProgramCache& cache = program_cache();
  std::lock_guard<std::mutex> lock(cache.mu);
  cache.map.clear();
}

}  // namespace qnat
