// Compiled circuit programs: gate fusion + specialized simulator kernels.
//
// `compile_program` lowers a `Circuit` into a linear sequence of
// `CompiledOp`s. Runs of adjacent *constant* single-qubit gates on the
// same qubit are fused into one 2x2 unitary, and every op is classified
// into a kernel class (diagonal, anti-diagonal, controlled-phase,
// permutation/X-like, generic 1q/2q) with a specialized StateVector /
// DensityMatrix apply routine that skips the structural zeros of the
// matrix instead of running the dense 2x2/4x4 path.
//
// Parameterized gates are fusion barriers: they are emitted as standalone
// ops that re-evaluate their matrix for every parameter binding, so the
// compiled program preserves the original parameterized gate structure —
// the adjoint differentiator and the parameter-shift rule keep walking
// the source circuit while the forward executions run fused.
//
// `shared_program` memoizes compiled programs in a process-wide bounded
// cache keyed on `Circuit::fingerprint()` (plus the fusion options), so
// the batch engine, evaluator trajectories and parameter-shift loops
// compile each distinct circuit once and reuse the program across
// samples, shots and training steps.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "qsim/circuit.hpp"

namespace qnat {

class StateVector;

/// Kernel classes, ordered roughly by specialization win. Classification
/// of constant matrices is structural (exact zero tests — gate matrices
/// and products of structured matrices produce exact zeros); classification
/// of parameterized ops happens per binding from the evaluated matrix.
enum class KernelClass : std::uint8_t {
  /// Structurally the identity; skipped at execution (fused X·X, I, ...).
  Identity,
  /// 2x2 diagonal: Z, S, T, RZ, P and fused runs thereof.
  Diag1Q,
  /// 2x2 anti-diagonal: X, Y and diagonal-conjugated variants.
  AntiDiag1Q,
  /// Dense 2x2 fallback: H, SX, RX, RY, U2, U3, mixed fused runs.
  Generic1Q,
  /// 4x4 diagonal — the controlled-phase family: CZ, CP, CRZ, RZZ.
  Diag2Q,
  /// Controlled anti-diagonal (permutation/X-like): CX, CY.
  CtrlAnti1Q,
  /// Generic controlled 2x2: CH, CRX, CRY, CU3.
  Ctrl1Q,
  /// Two-qubit swap permutation.
  Swap,
  /// Dense 4x4 fallback: SqrtSwap, RXX, RYY, RZX.
  Generic2Q,
};

/// Short mnemonic for logging/tests, e.g. "diag1q".
const char* kernel_class_name(KernelClass k);

/// One executable unit of a compiled program: either a constant op with a
/// baked (possibly fused) matrix, or a parameterized op carrying its
/// source gate for per-binding matrix evaluation.
struct CompiledOp {
  KernelClass kernel = KernelClass::Generic1Q;
  bool parameterized = false;
  int num_qubits = 1;
  QubitIndex q0 = 0;  ///< High matrix bit; control for Ctrl* kernels.
  QubitIndex q1 = 0;  ///< Low matrix bit; target for Ctrl* kernels.
  /// Constant ops: the matrix, baked at compile time.
  CMatrix matrix;
  /// Parameterized ops: the source gate, re-evaluated per binding.
  Gate gate;
  /// Source gates covered by this op (> 1 for fused runs).
  int fused_gates = 1;
};

struct FusionOptions {
  /// Fuse runs of adjacent constant single-qubit gates into one 2x2 op
  /// and drop structural identities. Disable for consumers that need ops
  /// aligned 1:1 with source gates (the exact channel simulator
  /// interleaves a noise channel after every source gate).
  bool fuse = true;

  /// Options carrying the process-wide default (see set_default_fusion).
  static FusionOptions defaults();
};

/// Process-wide fusion default consumed by FusionOptions::defaults() —
/// i.e. by every compile that does not pass options explicitly — and
/// recorded in metrics run manifests. Thread-safe (relaxed atomic);
/// intended for experiment setup, not mid-run toggling.
void set_default_fusion(bool fuse);
bool default_fusion();

struct ProgramStats {
  int source_gates = 0;
  int ops = 0;
  /// Source gates absorbed into an already-counted fused op.
  int fused_away = 0;
  /// Ops dropped because the (fused) matrix was structurally identity.
  int identity_removed = 0;
};

class CompiledProgram {
 public:
  CompiledProgram() = default;
  CompiledProgram(int num_qubits, int num_params, std::uint64_t fingerprint,
                  std::vector<CompiledOp> ops, ProgramStats stats)
      : num_qubits_(num_qubits),
        num_params_(num_params),
        fingerprint_(fingerprint),
        ops_(std::move(ops)),
        stats_(stats) {}

  int num_qubits() const { return num_qubits_; }
  int num_params() const { return num_params_; }
  /// Fingerprint of the source circuit (the cache key component).
  std::uint64_t source_fingerprint() const { return fingerprint_; }
  const std::vector<CompiledOp>& ops() const { return ops_; }
  const ProgramStats& stats() const { return stats_; }

  /// Element precision this program was compiled/served for. Matrices are
  /// always stored f64; the dtype records the intended execution storage
  /// precision and travels with QNATPROG v2 artifacts so an f32 bundle
  /// can never be mistaken for an f64 one.
  DType dtype() const { return dtype_; }
  void set_dtype(DType d) { dtype_ = d; }

  /// Executes every op on `state` under the given parameter binding.
  void run(StateVector& state, const ParamVector& params) const;

 private:
  int num_qubits_ = 0;
  int num_params_ = 0;
  std::uint64_t fingerprint_ = 0;
  std::vector<CompiledOp> ops_;
  ProgramStats stats_;
  DType dtype_ = DType::F64;
};

/// Lowers a circuit into a compiled program. With `options.fuse == false`
/// the result has exactly one op per source gate, in source order.
CompiledProgram compile_program(
    const Circuit& circuit,
    const FusionOptions& options = FusionOptions::defaults());

/// Classifies one gate as a standalone op (no fusion).
CompiledOp compile_gate_op(const Gate& gate);

/// Applies one op to a statevector (evaluating parameterized matrices
/// from `params`).
void apply_op(StateVector& state, const CompiledOp& op,
              const ParamVector& params);

/// Ticks the Deterministic per-kernel-class dispatch counter for one op.
/// apply_op does this itself; whole-program backend executors that bypass
/// apply_op (the f32 conversion-shim path) must call it once per op they
/// dispatch, preserving the conservation invariant (counter sum ==
/// compiled ops x executions) and the cross-backend fingerprint equality
/// the conformance harness asserts.
void count_kernel_dispatch(KernelClass k);

/// Structural classification of a concrete 2x2 / 4x4 matrix.
KernelClass classify_1q(const CMatrix& m);
KernelClass classify_2q(const CMatrix& m);

/// Classifies `m` and dispatches it through the specialized kernels.
void apply_matrix_1q(StateVector& state, const CMatrix& m, QubitIndex q);
void apply_matrix_2q(StateVector& state, const CMatrix& m, QubitIndex a,
                     QubitIndex b);

/// Dispatches a concrete matrix through a *precomputed* kernel class
/// (entries are read from `m`; the class must match its structure).
void apply_classified_1q(StateVector& state, KernelClass kernel,
                         const CMatrix& m, QubitIndex q);
void apply_classified_2q(StateVector& state, KernelClass kernel,
                         const CMatrix& m, QubitIndex a, QubitIndex b);

/// Process-wide memoized compile keyed on (Circuit::fingerprint, options).
/// Thread-safe; the cache is bounded (cleared wholesale when full), so
/// one-off circuits (e.g. freshly noise-injected trajectories) cannot grow
/// it without bound. Deterministic: a cache hit returns a program
/// bit-identical to a fresh compile.
std::shared_ptr<const CompiledProgram> shared_program(
    const Circuit& circuit,
    const FusionOptions& options = FusionOptions::defaults());

/// Number of currently cached programs (tests/diagnostics).
std::size_t program_cache_size();

/// Drops every cached program.
void clear_program_cache();

/// Caps the memoization cache. When the cache holds `capacity` programs the
/// next insert clears it wholesale (same policy as before, now tunable for
/// eviction tests). Clamped to >= 1; default 4096.
void set_program_cache_capacity(std::size_t capacity);
std::size_t program_cache_capacity();

// --- QNATPROG v2: versioned on-disk compiled-program artifacts ---
//
// Text format, canonical by construction (%.17g doubles, fixed key order):
//
//   #qnat-program v2
//   qubits <n>
//   params <p>
//   dtype f64|f32        (v2 only; any other token is rejected loudly)
//   fingerprint <hex64>
//   source_gates <n>  fused_away <n>  identity_removed <n>   (3 lines)
//   ops <count>
//   op <kernel> <nq> <q0> <q1> <fused_gates> const|param      (per op)
//     const -> m + 8 (2x2) or 32 (4x4) doubles, row-major re/im
//     param -> gate <name> <qubits...> + per gate parameter:
//              expr <nterms> {<id> <scale>}... <offset>
//   checksum <hex64>    (FNV-1a over everything above, canonical form)
//   end
//
// `deserialize_program` fails loudly (qnat::Error) on wrong magic,
// unsupported versions, truncation, checksum mismatch, out-of-range
// qubits/params, unknown dtype tokens, and kernel classes that do not
// match the stored matrix structure; it never returns a partially-parsed
// program. Legacy v1 artifacts (no dtype line) still load and imply f64.
// Round-trip identity holds: serialize(deserialize(s)) == s for
// canonical s of the current version.
std::string serialize_program(const CompiledProgram& program);
CompiledProgram deserialize_program(const std::string& text);
void save_program(const CompiledProgram& program, const std::string& path);
CompiledProgram load_program(const std::string& path);

}  // namespace qnat
