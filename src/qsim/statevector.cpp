#include "qsim/statevector.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "qsim/backend/backend.hpp"
#include "qsim/backend/scalar_kernels.hpp"
#include "qsim/program.hpp"

namespace qnat {

namespace {

std::uint64_t fresh_state_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// Vector-path dispatch counters are PerRun: how many kernels take a
// vectorized backend's path depends on the backend selection, which must
// not perturb the deterministic fingerprint (per-backend fingerprints
// are compared for equality in the invariants and conformance suites).
// They only tick when a vectorized kernel actually ran — the scalar
// backend (and scalar fallbacks within a vectorized backend) count 0.
metrics::Counter simd_1q_dispatches() {
  static metrics::Counter c =
      metrics::counter("qsim.simd.dispatch_1q", metrics::Stability::PerRun);
  return c;
}

metrics::Counter simd_2q_dispatches() {
  static metrics::Counter c =
      metrics::counter("qsim.simd.dispatch_2q", metrics::Stability::PerRun);
  return c;
}

metrics::Counter simd_reduce_dispatches() {
  static metrics::Counter c = metrics::counter("qsim.simd.dispatch_reduce",
                                               metrics::Stability::PerRun);
  return c;
}

/// Kernel table for a 1q dispatch: the active backend's own kernels when
/// it is vectorized, else the scalar reference table. `vec` doubles as
/// the counter gate.
inline const backend::KernelTable& table_1q(const backend::Backend& be,
                                            bool& vec) {
  vec = be.caps().vectorized;
  return vec ? be.kernels() : backend::scalar_kernels();
}

/// Same for a 2q dispatch, additionally honoring the backend's minimum
/// fast-path stride (AVX2 needs lo >= 2; below it the scalar reference
/// runs and the dispatch counters stay untouched).
inline const backend::KernelTable& table_2q(const backend::Backend& be,
                                            std::size_t lo, bool& vec) {
  vec = be.caps().vectorized && lo >= be.caps().min_fast_2q_lo;
  return vec ? be.kernels() : backend::scalar_kernels();
}

}  // namespace

StateVector::StateVector(int num_qubits)
    : num_qubits_(num_qubits),
      amps_(std::size_t{1} << num_qubits, cplx{0.0, 0.0}),
      state_id_(fresh_state_id()) {
  QNAT_CHECK(num_qubits > 0 && num_qubits <= 24,
             "statevector supports 1..24 qubits");
  amps_[0] = cplx{1.0, 0.0};
}

StateVector::StateVector(int num_qubits, std::vector<cplx>&& storage)
    : num_qubits_(num_qubits),
      amps_(std::move(storage)),
      state_id_(fresh_state_id()) {
  QNAT_CHECK(num_qubits > 0 && num_qubits <= 24,
             "statevector supports 1..24 qubits");
  amps_.resize(std::size_t{1} << num_qubits);
  std::fill(amps_.begin(), amps_.end(), cplx{0.0, 0.0});
  amps_[0] = cplx{1.0, 0.0};
}

StateVector::StateVector(const StateVector& other)
    : num_qubits_(other.num_qubits_),
      amps_(other.amps_),
      state_id_(fresh_state_id()) {}

StateVector& StateVector::operator=(const StateVector& other) {
  if (this != &other) {
    num_qubits_ = other.num_qubits_;
    amps_ = other.amps_;
    generation_ = 0;
    state_id_ = fresh_state_id();
  }
  return *this;
}

void StateVector::reset() {
  ++generation_;
  std::fill(amps_.begin(), amps_.end(), cplx{0.0, 0.0});
  amps_[0] = cplx{1.0, 0.0};
}

void StateVector::apply_1q(const CMatrix& m, QubitIndex q) {
  QNAT_CHECK(m.rows() == 2 && m.cols() == 2, "apply_1q requires 2x2 matrix");
  QNAT_CHECK(q >= 0 && q < num_qubits_, "qubit out of range");
  ++generation_;
  const std::size_t stride = std::size_t{1} << q;
  const cplx m00 = m(0, 0), m01 = m(0, 1), m10 = m(1, 0), m11 = m(1, 1);
  const std::size_t n = amps_.size();
  bool vec = false;
  const backend::KernelTable& kt = table_1q(backend::active(), vec);
  kt.apply_1q(amps_.data(), n, stride, m00, m01, m10, m11);
  if (vec) simd_1q_dispatches().inc();
}

void StateVector::apply_2q(const CMatrix& m, QubitIndex a, QubitIndex b) {
  QNAT_CHECK(m.rows() == 4 && m.cols() == 4, "apply_2q requires 4x4 matrix");
  QNAT_CHECK(a >= 0 && a < num_qubits_ && b >= 0 && b < num_qubits_ && a != b,
             "invalid qubit pair");
  ++generation_;
  const std::size_t sa = std::size_t{1} << a;  // high bit of matrix index
  const std::size_t sb = std::size_t{1} << b;  // low bit of matrix index
  // Iterate only the 2^(n-2) basis states with bits a and b both zero:
  // expand a dense counter by inserting a zero bit at the lower stride,
  // then at the higher one.
  const std::size_t lo = sa < sb ? sa : sb;
  const std::size_t hi = sa < sb ? sb : sa;
  const std::size_t quarter = amps_.size() >> 2;
  cplx flat[16];
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) flat[4 * r + c] = m(r, c);
  }
  bool vec = false;
  const backend::KernelTable& kt = table_2q(backend::active(), lo, vec);
  kt.apply_2q(amps_.data(), quarter, lo, hi, sa, sb, flat);
  if (vec) simd_2q_dispatches().inc();
}

void StateVector::apply_diag_1q(cplx d0, cplx d1, QubitIndex q) {
  QNAT_CHECK(q >= 0 && q < num_qubits_, "qubit out of range");
  ++generation_;
  const std::size_t stride = std::size_t{1} << q;
  const std::size_t n = amps_.size();
  bool vec = false;
  const backend::KernelTable& kt = table_1q(backend::active(), vec);
  kt.apply_diag_1q(amps_.data(), n, stride, d0, d1);
  if (vec) simd_1q_dispatches().inc();
}

void StateVector::apply_antidiag_1q(cplx top, cplx bottom, QubitIndex q) {
  QNAT_CHECK(q >= 0 && q < num_qubits_, "qubit out of range");
  ++generation_;
  const std::size_t stride = std::size_t{1} << q;
  const std::size_t n = amps_.size();
  bool vec = false;
  const backend::KernelTable& kt = table_1q(backend::active(), vec);
  kt.apply_antidiag_1q(amps_.data(), n, stride, top, bottom);
  if (vec) simd_1q_dispatches().inc();
}

void StateVector::apply_diag_2q(cplx d0, cplx d1, cplx d2, cplx d3,
                                QubitIndex a, QubitIndex b) {
  QNAT_CHECK(a >= 0 && a < num_qubits_ && b >= 0 && b < num_qubits_ && a != b,
             "invalid qubit pair");
  ++generation_;
  const std::size_t sa = std::size_t{1} << a;
  const std::size_t sb = std::size_t{1} << b;
  const std::size_t lo = sa < sb ? sa : sb;
  const std::size_t hi = sa < sb ? sb : sa;
  const std::size_t quarter = amps_.size() >> 2;
  bool vec = false;
  const backend::KernelTable& kt = table_2q(backend::active(), lo, vec);
  kt.apply_diag_2q(amps_.data(), quarter, lo, hi, sa, sb, d0, d1, d2, d3);
  if (vec) simd_2q_dispatches().inc();
}

void StateVector::apply_controlled_1q(cplx m00, cplx m01, cplx m10, cplx m11,
                                      QubitIndex control, QubitIndex target) {
  QNAT_CHECK(control >= 0 && control < num_qubits_ && target >= 0 &&
                 target < num_qubits_ && control != target,
             "invalid qubit pair");
  ++generation_;
  const std::size_t sc = std::size_t{1} << control;
  const std::size_t st = std::size_t{1} << target;
  const std::size_t lo = sc < st ? sc : st;
  const std::size_t hi = sc < st ? st : sc;
  const std::size_t quarter = amps_.size() >> 2;
  bool vec = false;
  const backend::KernelTable& kt = table_2q(backend::active(), lo, vec);
  kt.apply_controlled_1q(amps_.data(), quarter, lo, hi, sc, st, m00, m01, m10,
                         m11);
  if (vec) simd_2q_dispatches().inc();
}

void StateVector::apply_controlled_antidiag_1q(cplx top, cplx bottom,
                                               QubitIndex control,
                                               QubitIndex target) {
  QNAT_CHECK(control >= 0 && control < num_qubits_ && target >= 0 &&
                 target < num_qubits_ && control != target,
             "invalid qubit pair");
  ++generation_;
  const std::size_t sc = std::size_t{1} << control;
  const std::size_t st = std::size_t{1} << target;
  const std::size_t lo = sc < st ? sc : st;
  const std::size_t hi = sc < st ? st : sc;
  const std::size_t quarter = amps_.size() >> 2;
  bool vec = false;
  const backend::KernelTable& kt = table_2q(backend::active(), lo, vec);
  kt.apply_controlled_antidiag_1q(amps_.data(), quarter, lo, hi, sc, st, top,
                                  bottom);
  if (vec) simd_2q_dispatches().inc();
}

void StateVector::apply_swap(QubitIndex a, QubitIndex b) {
  QNAT_CHECK(a >= 0 && a < num_qubits_ && b >= 0 && b < num_qubits_ && a != b,
             "invalid qubit pair");
  ++generation_;
  const std::size_t sa = std::size_t{1} << a;
  const std::size_t sb = std::size_t{1} << b;
  const std::size_t lo = sa < sb ? sa : sb;
  const std::size_t hi = sa < sb ? sb : sa;
  const std::size_t quarter = amps_.size() >> 2;
  // Every backend's table routes swap to the shared scalar permutation
  // (memory-bound either way), so no dispatch counter ticks here.
  backend::active().kernels().apply_swap(amps_.data(), quarter, lo, hi, sa,
                                         sb);
}

void StateVector::apply_gate(const Gate& gate, const ParamVector& params) {
  const CMatrix m = gate.matrix(gate.eval_params(params));
  if (gate.num_qubits() == 1) {
    apply_matrix_1q(*this, m, gate.qubits[0]);
  } else {
    apply_matrix_2q(*this, m, gate.qubits[0], gate.qubits[1]);
  }
}

void StateVector::apply_gate_adjoint(const Gate& gate,
                                     const ParamVector& params) {
  const CMatrix m = gate.matrix(gate.eval_params(params)).adjoint();
  if (gate.num_qubits() == 1) {
    apply_matrix_1q(*this, m, gate.qubits[0]);
  } else {
    apply_matrix_2q(*this, m, gate.qubits[0], gate.qubits[1]);
  }
}

real StateVector::expectation_z(QubitIndex q) const {
  QNAT_CHECK(q >= 0 && q < num_qubits_, "qubit out of range");
  const std::size_t bit = std::size_t{1} << q;
  real e = 0.0;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    const real p = std::norm(amps_[i]);
    e += (i & bit) ? -p : p;
  }
  return e;
}

std::vector<real> StateVector::expectations_z() const {
  std::vector<real> out;
  expectations_z_into(out);
  return out;
}

void StateVector::expectations_z_into(std::vector<real>& out) const {
  // One probability pass, then a halving fold: after processing qubit q
  // (the current high bit), probs[j] holds the probability of the low
  // basis pattern j summed over all higher qubits, so each subsequent
  // qubit costs half the previous one. Total work ~2 * 2^n adds.
  out.assign(static_cast<std::size_t>(num_qubits_), 0.0);
  const std::size_t n = amps_.size();
  std::vector<double> probs = ws::acquire_reals(n);
  for (std::size_t i = 0; i < n; ++i) probs[i] = std::norm(amps_[i]);
  std::size_t len = n;
  for (int q = num_qubits_ - 1; q >= 0; --q) {
    const std::size_t half = len >> 1;
    double diff = 0.0;
    for (std::size_t j = 0; j < half; ++j) {
      diff += probs[j] - probs[j + half];
      probs[j] += probs[j + half];
    }
    out[static_cast<std::size_t>(q)] = diff;
    len = half;
  }
  ws::release_reals(std::move(probs));
}

real StateVector::prob_one(QubitIndex q) const {
  return 0.5 * (1.0 - expectation_z(q));
}

real StateVector::norm_sq() const {
  bool vec = false;
  const backend::KernelTable& kt = table_1q(backend::active(), vec);
  if (vec) simd_reduce_dispatches().inc();
  return kt.norm_sq(amps_.data(), amps_.size());
}

void StateVector::normalize() {
  const real n = std::sqrt(norm_sq());
  QNAT_CHECK(n > 0.0, "cannot normalize the zero state");
  ++generation_;
  for (auto& a : amps_) a /= n;
}

cplx StateVector::inner(const StateVector& other) const {
  QNAT_CHECK(num_qubits_ == other.num_qubits_,
             "inner product dimension mismatch");
  bool vec = false;
  const backend::KernelTable& kt = table_1q(backend::active(), vec);
  if (vec) simd_reduce_dispatches().inc();
  return kt.inner(amps_.data(), other.amps_.data(), amps_.size());
}

void StateVector::add_scaled(const StateVector& other, cplx factor) {
  QNAT_CHECK(num_qubits_ == other.num_qubits_, "dimension mismatch");
  ++generation_;
  bool vec = false;
  const backend::KernelTable& kt = table_1q(backend::active(), vec);
  if (vec) simd_reduce_dispatches().inc();
  kt.add_scaled(amps_.data(), other.amps_.data(), amps_.size(), factor);
}

void StateVector::scale(cplx factor) {
  ++generation_;
  for (auto& a : amps_) a *= factor;
}

std::vector<std::size_t> StateVector::sample(Rng& rng, int shots) const {
  QNAT_CHECK(shots > 0, "sample requires positive shot count");
  static metrics::Counter shots_drawn = metrics::counter("qsim.sv.shots_drawn");
  shots_drawn.add(static_cast<std::uint64_t>(shots));
  // The cumulative table is cached per thread keyed by the state's
  // version stamp: evaluator trajectories draw shots from the same
  // post-circuit state many times, and only the first call pays the
  // O(2^n) build. Rebuild frequency is PerRun (which thread sampled
  // which state is scheduling-dependent).
  ws::CumTable& slot = ws::cumtable_slot();
  if (!slot.valid || slot.state_id != state_id_ ||
      slot.generation != generation_ || slot.dtype != DType::F64) {
    static metrics::Counter builds = metrics::counter(
        "qsim.sv.cumtable_builds", metrics::Stability::PerRun);
    builds.inc();
    slot.cumulative.resize(amps_.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < amps_.size(); ++i) {
      acc += std::norm(amps_[i]);
      slot.cumulative[i] = acc;
    }
    slot.total_mass = acc;
    slot.state_id = state_id_;
    slot.generation = generation_;
    slot.dtype = DType::F64;
    slot.valid = true;
    ws::account_cumtable(slot);
  }
  QNAT_CHECK(slot.total_mass > 0.0,
             "sample from a state with no probability mass");
  std::vector<std::size_t> out;
  out.reserve(static_cast<std::size_t>(shots));
  for (int s = 0; s < shots; ++s) {
    out.push_back(sample_index(slot.cumulative, rng.uniform() * slot.total_mass));
  }
  return out;
}

std::size_t StateVector::sample_index(std::span<const double> cumulative,
                                      double r) {
  QNAT_CHECK(r >= 0.0, "sample draw must be a non-negative probability mass");
  const auto it = std::lower_bound(cumulative.begin(), cumulative.end(), r);
  auto idx = static_cast<std::size_t>(std::distance(cumulative.begin(), it));
  // A draw of exactly the total mass (or fp rounding past it) walks off
  // the table; clamp to the last basis state — loudly counted, so a
  // clamp rate above the expected fp-edge trickle is visible.
  if (idx >= cumulative.size()) {
    static metrics::Gauge clamp_events =
        metrics::gauge("qsim.sv.sample_clamp_events");
    clamp_events.add(1.0);
    idx = cumulative.size() - 1;
  }
  return idx;
}

}  // namespace qnat
