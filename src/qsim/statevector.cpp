#include "qsim/statevector.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/simd.hpp"
#include "qsim/program.hpp"

namespace qnat {

namespace {

std::uint64_t fresh_state_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// SIMD dispatch counters are PerRun: how many kernels take the vector
// path depends on the backend toggle, which must not perturb the
// deterministic fingerprint (SIMD on and off fingerprints are compared
// for equality in the invariants suite).
metrics::Counter simd_1q_dispatches() {
  static metrics::Counter c =
      metrics::counter("qsim.simd.dispatch_1q", metrics::Stability::PerRun);
  return c;
}

metrics::Counter simd_2q_dispatches() {
  static metrics::Counter c =
      metrics::counter("qsim.simd.dispatch_2q", metrics::Stability::PerRun);
  return c;
}

metrics::Counter simd_reduce_dispatches() {
  static metrics::Counter c = metrics::counter("qsim.simd.dispatch_reduce",
                                               metrics::Stability::PerRun);
  return c;
}

/// Expands a dense counter k over 2^(n-2) values into the basis index with
/// zero bits inserted at strides `lo` < `hi` (same enumeration apply_2q
/// uses).
inline std::size_t expand_two_zero_bits(std::size_t k, std::size_t lo,
                                        std::size_t hi) {
  std::size_t i = (k & (lo - 1)) | ((k & ~(lo - 1)) << 1);
  return (i & (hi - 1)) | ((i & ~(hi - 1)) << 1);
}

}  // namespace

StateVector::StateVector(int num_qubits)
    : num_qubits_(num_qubits),
      amps_(std::size_t{1} << num_qubits, cplx{0.0, 0.0}),
      state_id_(fresh_state_id()) {
  QNAT_CHECK(num_qubits > 0 && num_qubits <= 24,
             "statevector supports 1..24 qubits");
  amps_[0] = cplx{1.0, 0.0};
}

StateVector::StateVector(int num_qubits, std::vector<cplx>&& storage)
    : num_qubits_(num_qubits),
      amps_(std::move(storage)),
      state_id_(fresh_state_id()) {
  QNAT_CHECK(num_qubits > 0 && num_qubits <= 24,
             "statevector supports 1..24 qubits");
  amps_.resize(std::size_t{1} << num_qubits);
  std::fill(amps_.begin(), amps_.end(), cplx{0.0, 0.0});
  amps_[0] = cplx{1.0, 0.0};
}

StateVector::StateVector(const StateVector& other)
    : num_qubits_(other.num_qubits_),
      amps_(other.amps_),
      state_id_(fresh_state_id()) {}

StateVector& StateVector::operator=(const StateVector& other) {
  if (this != &other) {
    num_qubits_ = other.num_qubits_;
    amps_ = other.amps_;
    generation_ = 0;
    state_id_ = fresh_state_id();
  }
  return *this;
}

void StateVector::reset() {
  ++generation_;
  std::fill(amps_.begin(), amps_.end(), cplx{0.0, 0.0});
  amps_[0] = cplx{1.0, 0.0};
}

void StateVector::apply_1q(const CMatrix& m, QubitIndex q) {
  QNAT_CHECK(m.rows() == 2 && m.cols() == 2, "apply_1q requires 2x2 matrix");
  QNAT_CHECK(q >= 0 && q < num_qubits_, "qubit out of range");
  ++generation_;
  const std::size_t stride = std::size_t{1} << q;
  const cplx m00 = m(0, 0), m01 = m(0, 1), m10 = m(1, 0), m11 = m(1, 1);
  const std::size_t n = amps_.size();
  if (simd::enabled()) {
    simd::apply_1q(amps_.data(), n, stride, m00, m01, m10, m11);
    simd_1q_dispatches().inc();
    return;
  }
  for (std::size_t base = 0; base < n; base += 2 * stride) {
    for (std::size_t i = base; i < base + stride; ++i) {
      const cplx a0 = amps_[i];
      const cplx a1 = amps_[i + stride];
      amps_[i] = m00 * a0 + m01 * a1;
      amps_[i + stride] = m10 * a0 + m11 * a1;
    }
  }
}

void StateVector::apply_2q(const CMatrix& m, QubitIndex a, QubitIndex b) {
  QNAT_CHECK(m.rows() == 4 && m.cols() == 4, "apply_2q requires 4x4 matrix");
  QNAT_CHECK(a >= 0 && a < num_qubits_ && b >= 0 && b < num_qubits_ && a != b,
             "invalid qubit pair");
  ++generation_;
  const std::size_t sa = std::size_t{1} << a;  // high bit of matrix index
  const std::size_t sb = std::size_t{1} << b;  // low bit of matrix index
  // Iterate only the 2^(n-2) basis states with bits a and b both zero:
  // expand a dense counter by inserting a zero bit at the lower stride,
  // then at the higher one.
  const std::size_t lo = sa < sb ? sa : sb;
  const std::size_t hi = sa < sb ? sb : sa;
  const std::size_t quarter = amps_.size() >> 2;
  if (simd::enabled() && simd::two_qubit_fast_path(lo)) {
    cplx flat[16];
    for (int r = 0; r < 4; ++r) {
      for (int c = 0; c < 4; ++c) flat[4 * r + c] = m(r, c);
    }
    simd::apply_2q(amps_.data(), quarter, lo, hi, sa, sb, flat);
    simd_2q_dispatches().inc();
    return;
  }
  const cplx m00 = m(0, 0), m01 = m(0, 1), m02 = m(0, 2), m03 = m(0, 3);
  const cplx m10 = m(1, 0), m11 = m(1, 1), m12 = m(1, 2), m13 = m(1, 3);
  const cplx m20 = m(2, 0), m21 = m(2, 1), m22 = m(2, 2), m23 = m(2, 3);
  const cplx m30 = m(3, 0), m31 = m(3, 1), m32 = m(3, 2), m33 = m(3, 3);
  for (std::size_t k = 0; k < quarter; ++k) {
    const std::size_t i = expand_two_zero_bits(k, lo, hi);
    const std::size_t i00 = i;
    const std::size_t i01 = i | sb;
    const std::size_t i10 = i | sa;
    const std::size_t i11 = i | sa | sb;
    const cplx a00 = amps_[i00], a01 = amps_[i01], a10 = amps_[i10],
               a11 = amps_[i11];
    amps_[i00] = m00 * a00 + m01 * a01 + m02 * a10 + m03 * a11;
    amps_[i01] = m10 * a00 + m11 * a01 + m12 * a10 + m13 * a11;
    amps_[i10] = m20 * a00 + m21 * a01 + m22 * a10 + m23 * a11;
    amps_[i11] = m30 * a00 + m31 * a01 + m32 * a10 + m33 * a11;
  }
}

void StateVector::apply_diag_1q(cplx d0, cplx d1, QubitIndex q) {
  QNAT_CHECK(q >= 0 && q < num_qubits_, "qubit out of range");
  ++generation_;
  const std::size_t stride = std::size_t{1} << q;
  const std::size_t n = amps_.size();
  if (simd::enabled()) {
    simd::apply_diag_1q(amps_.data(), n, stride, d0, d1);
    simd_1q_dispatches().inc();
    return;
  }
  for (std::size_t base = 0; base < n; base += 2 * stride) {
    for (std::size_t i = base; i < base + stride; ++i) {
      amps_[i] *= d0;
      amps_[i + stride] *= d1;
    }
  }
}

void StateVector::apply_antidiag_1q(cplx top, cplx bottom, QubitIndex q) {
  QNAT_CHECK(q >= 0 && q < num_qubits_, "qubit out of range");
  ++generation_;
  const std::size_t stride = std::size_t{1} << q;
  const std::size_t n = amps_.size();
  if (simd::enabled()) {
    simd::apply_antidiag_1q(amps_.data(), n, stride, top, bottom);
    simd_1q_dispatches().inc();
    return;
  }
  for (std::size_t base = 0; base < n; base += 2 * stride) {
    for (std::size_t i = base; i < base + stride; ++i) {
      const cplx a0 = amps_[i];
      amps_[i] = top * amps_[i + stride];
      amps_[i + stride] = bottom * a0;
    }
  }
}

void StateVector::apply_diag_2q(cplx d0, cplx d1, cplx d2, cplx d3,
                                QubitIndex a, QubitIndex b) {
  QNAT_CHECK(a >= 0 && a < num_qubits_ && b >= 0 && b < num_qubits_ && a != b,
             "invalid qubit pair");
  ++generation_;
  const std::size_t sa = std::size_t{1} << a;
  const std::size_t sb = std::size_t{1} << b;
  const std::size_t lo = sa < sb ? sa : sb;
  const std::size_t hi = sa < sb ? sb : sa;
  const std::size_t quarter = amps_.size() >> 2;
  if (simd::enabled() && simd::two_qubit_fast_path(lo)) {
    simd::apply_diag_2q(amps_.data(), quarter, lo, hi, sa, sb, d0, d1, d2,
                        d3);
    simd_2q_dispatches().inc();
    return;
  }
  for (std::size_t k = 0; k < quarter; ++k) {
    const std::size_t i = expand_two_zero_bits(k, lo, hi);
    amps_[i] *= d0;
    amps_[i | sb] *= d1;
    amps_[i | sa] *= d2;
    amps_[i | sa | sb] *= d3;
  }
}

void StateVector::apply_controlled_1q(cplx m00, cplx m01, cplx m10, cplx m11,
                                      QubitIndex control, QubitIndex target) {
  QNAT_CHECK(control >= 0 && control < num_qubits_ && target >= 0 &&
                 target < num_qubits_ && control != target,
             "invalid qubit pair");
  ++generation_;
  const std::size_t sc = std::size_t{1} << control;
  const std::size_t st = std::size_t{1} << target;
  const std::size_t lo = sc < st ? sc : st;
  const std::size_t hi = sc < st ? st : sc;
  const std::size_t quarter = amps_.size() >> 2;
  if (simd::enabled() && simd::two_qubit_fast_path(lo)) {
    simd::apply_controlled_1q(amps_.data(), quarter, lo, hi, sc, st, m00, m01,
                              m10, m11);
    simd_2q_dispatches().inc();
    return;
  }
  for (std::size_t k = 0; k < quarter; ++k) {
    const std::size_t i = expand_two_zero_bits(k, lo, hi) | sc;
    const cplx a0 = amps_[i];
    const cplx a1 = amps_[i | st];
    amps_[i] = m00 * a0 + m01 * a1;
    amps_[i | st] = m10 * a0 + m11 * a1;
  }
}

void StateVector::apply_controlled_antidiag_1q(cplx top, cplx bottom,
                                               QubitIndex control,
                                               QubitIndex target) {
  QNAT_CHECK(control >= 0 && control < num_qubits_ && target >= 0 &&
                 target < num_qubits_ && control != target,
             "invalid qubit pair");
  ++generation_;
  const std::size_t sc = std::size_t{1} << control;
  const std::size_t st = std::size_t{1} << target;
  const std::size_t lo = sc < st ? sc : st;
  const std::size_t hi = sc < st ? st : sc;
  const std::size_t quarter = amps_.size() >> 2;
  if (simd::enabled() && simd::two_qubit_fast_path(lo)) {
    simd::apply_controlled_antidiag_1q(amps_.data(), quarter, lo, hi, sc, st,
                                       top, bottom);
    simd_2q_dispatches().inc();
    return;
  }
  for (std::size_t k = 0; k < quarter; ++k) {
    const std::size_t i = expand_two_zero_bits(k, lo, hi) | sc;
    const cplx a0 = amps_[i];
    amps_[i] = top * amps_[i | st];
    amps_[i | st] = bottom * a0;
  }
}

void StateVector::apply_swap(QubitIndex a, QubitIndex b) {
  QNAT_CHECK(a >= 0 && a < num_qubits_ && b >= 0 && b < num_qubits_ && a != b,
             "invalid qubit pair");
  ++generation_;
  const std::size_t sa = std::size_t{1} << a;
  const std::size_t sb = std::size_t{1} << b;
  const std::size_t lo = sa < sb ? sa : sb;
  const std::size_t hi = sa < sb ? sb : sa;
  const std::size_t quarter = amps_.size() >> 2;
  for (std::size_t k = 0; k < quarter; ++k) {
    const std::size_t i = expand_two_zero_bits(k, lo, hi);
    std::swap(amps_[i | sa], amps_[i | sb]);
  }
}

void StateVector::apply_gate(const Gate& gate, const ParamVector& params) {
  const CMatrix m = gate.matrix(gate.eval_params(params));
  if (gate.num_qubits() == 1) {
    apply_matrix_1q(*this, m, gate.qubits[0]);
  } else {
    apply_matrix_2q(*this, m, gate.qubits[0], gate.qubits[1]);
  }
}

void StateVector::apply_gate_adjoint(const Gate& gate,
                                     const ParamVector& params) {
  const CMatrix m = gate.matrix(gate.eval_params(params)).adjoint();
  if (gate.num_qubits() == 1) {
    apply_matrix_1q(*this, m, gate.qubits[0]);
  } else {
    apply_matrix_2q(*this, m, gate.qubits[0], gate.qubits[1]);
  }
}

real StateVector::expectation_z(QubitIndex q) const {
  QNAT_CHECK(q >= 0 && q < num_qubits_, "qubit out of range");
  const std::size_t bit = std::size_t{1} << q;
  real e = 0.0;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    const real p = std::norm(amps_[i]);
    e += (i & bit) ? -p : p;
  }
  return e;
}

std::vector<real> StateVector::expectations_z() const {
  std::vector<real> out;
  expectations_z_into(out);
  return out;
}

void StateVector::expectations_z_into(std::vector<real>& out) const {
  // One probability pass, then a halving fold: after processing qubit q
  // (the current high bit), probs[j] holds the probability of the low
  // basis pattern j summed over all higher qubits, so each subsequent
  // qubit costs half the previous one. Total work ~2 * 2^n adds.
  out.assign(static_cast<std::size_t>(num_qubits_), 0.0);
  const std::size_t n = amps_.size();
  std::vector<double> probs = ws::acquire_reals(n);
  for (std::size_t i = 0; i < n; ++i) probs[i] = std::norm(amps_[i]);
  std::size_t len = n;
  for (int q = num_qubits_ - 1; q >= 0; --q) {
    const std::size_t half = len >> 1;
    double diff = 0.0;
    for (std::size_t j = 0; j < half; ++j) {
      diff += probs[j] - probs[j + half];
      probs[j] += probs[j + half];
    }
    out[static_cast<std::size_t>(q)] = diff;
    len = half;
  }
  ws::release_reals(std::move(probs));
}

real StateVector::prob_one(QubitIndex q) const {
  return 0.5 * (1.0 - expectation_z(q));
}

real StateVector::norm_sq() const {
  if (simd::enabled()) {
    simd_reduce_dispatches().inc();
    return simd::norm_sq(amps_.data(), amps_.size());
  }
  real s = 0.0;
  for (const auto& a : amps_) s += std::norm(a);
  return s;
}

void StateVector::normalize() {
  const real n = std::sqrt(norm_sq());
  QNAT_CHECK(n > 0.0, "cannot normalize the zero state");
  ++generation_;
  for (auto& a : amps_) a /= n;
}

cplx StateVector::inner(const StateVector& other) const {
  QNAT_CHECK(num_qubits_ == other.num_qubits_,
             "inner product dimension mismatch");
  if (simd::enabled()) {
    simd_reduce_dispatches().inc();
    return simd::inner(amps_.data(), other.amps_.data(), amps_.size());
  }
  cplx s{0.0, 0.0};
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    s += std::conj(amps_[i]) * other.amps_[i];
  }
  return s;
}

void StateVector::add_scaled(const StateVector& other, cplx factor) {
  QNAT_CHECK(num_qubits_ == other.num_qubits_, "dimension mismatch");
  ++generation_;
  if (simd::enabled()) {
    simd_reduce_dispatches().inc();
    simd::add_scaled(amps_.data(), other.amps_.data(), amps_.size(), factor);
    return;
  }
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    amps_[i] += factor * other.amps_[i];
  }
}

void StateVector::scale(cplx factor) {
  ++generation_;
  for (auto& a : amps_) a *= factor;
}

std::vector<std::size_t> StateVector::sample(Rng& rng, int shots) const {
  QNAT_CHECK(shots > 0, "sample requires positive shot count");
  static metrics::Counter shots_drawn = metrics::counter("qsim.sv.shots_drawn");
  shots_drawn.add(static_cast<std::uint64_t>(shots));
  // The cumulative table is cached per thread keyed by the state's
  // version stamp: evaluator trajectories draw shots from the same
  // post-circuit state many times, and only the first call pays the
  // O(2^n) build. Rebuild frequency is PerRun (which thread sampled
  // which state is scheduling-dependent).
  ws::CumTable& slot = ws::cumtable_slot();
  if (!slot.valid || slot.state_id != state_id_ ||
      slot.generation != generation_) {
    static metrics::Counter builds = metrics::counter(
        "qsim.sv.cumtable_builds", metrics::Stability::PerRun);
    builds.inc();
    slot.cumulative.resize(amps_.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < amps_.size(); ++i) {
      acc += std::norm(amps_[i]);
      slot.cumulative[i] = acc;
    }
    slot.total_mass = acc;
    slot.state_id = state_id_;
    slot.generation = generation_;
    slot.valid = true;
    ws::account_cumtable(slot);
  }
  QNAT_CHECK(slot.total_mass > 0.0,
             "sample from a state with no probability mass");
  std::vector<std::size_t> out;
  out.reserve(static_cast<std::size_t>(shots));
  for (int s = 0; s < shots; ++s) {
    out.push_back(sample_index(slot.cumulative, rng.uniform() * slot.total_mass));
  }
  return out;
}

std::size_t StateVector::sample_index(std::span<const double> cumulative,
                                      double r) {
  QNAT_CHECK(r >= 0.0, "sample draw must be a non-negative probability mass");
  const auto it = std::lower_bound(cumulative.begin(), cumulative.end(), r);
  auto idx = static_cast<std::size_t>(std::distance(cumulative.begin(), it));
  // A draw of exactly the total mass (or fp rounding past it) walks off
  // the table; clamp to the last basis state — loudly counted, so a
  // clamp rate above the expected fp-edge trickle is visible.
  if (idx >= cumulative.size()) {
    static metrics::Gauge clamp_events =
        metrics::gauge("qsim.sv.sample_clamp_events");
    clamp_events.add(1.0);
    idx = cumulative.size() - 1;
  }
  return idx;
}

}  // namespace qnat
