#include "qsim/statevector.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "qsim/program.hpp"

namespace qnat {

StateVector::StateVector(int num_qubits)
    : num_qubits_(num_qubits),
      amps_(std::size_t{1} << num_qubits, cplx{0.0, 0.0}) {
  QNAT_CHECK(num_qubits > 0 && num_qubits <= 24,
             "statevector supports 1..24 qubits");
  amps_[0] = cplx{1.0, 0.0};
}

void StateVector::reset() {
  std::fill(amps_.begin(), amps_.end(), cplx{0.0, 0.0});
  amps_[0] = cplx{1.0, 0.0};
}

void StateVector::apply_1q(const CMatrix& m, QubitIndex q) {
  QNAT_CHECK(m.rows() == 2 && m.cols() == 2, "apply_1q requires 2x2 matrix");
  QNAT_CHECK(q >= 0 && q < num_qubits_, "qubit out of range");
  const std::size_t stride = std::size_t{1} << q;
  const cplx m00 = m(0, 0), m01 = m(0, 1), m10 = m(1, 0), m11 = m(1, 1);
  const std::size_t n = amps_.size();
  for (std::size_t base = 0; base < n; base += 2 * stride) {
    for (std::size_t i = base; i < base + stride; ++i) {
      const cplx a0 = amps_[i];
      const cplx a1 = amps_[i + stride];
      amps_[i] = m00 * a0 + m01 * a1;
      amps_[i + stride] = m10 * a0 + m11 * a1;
    }
  }
}

void StateVector::apply_2q(const CMatrix& m, QubitIndex a, QubitIndex b) {
  QNAT_CHECK(m.rows() == 4 && m.cols() == 4, "apply_2q requires 4x4 matrix");
  QNAT_CHECK(a >= 0 && a < num_qubits_ && b >= 0 && b < num_qubits_ && a != b,
             "invalid qubit pair");
  const std::size_t sa = std::size_t{1} << a;  // high bit of matrix index
  const std::size_t sb = std::size_t{1} << b;  // low bit of matrix index
  // Iterate only the 2^(n-2) basis states with bits a and b both zero:
  // expand a dense counter by inserting a zero bit at the lower stride,
  // then at the higher one.
  const std::size_t lo = sa < sb ? sa : sb;
  const std::size_t hi = sa < sb ? sb : sa;
  const std::size_t quarter = amps_.size() >> 2;
  const cplx m00 = m(0, 0), m01 = m(0, 1), m02 = m(0, 2), m03 = m(0, 3);
  const cplx m10 = m(1, 0), m11 = m(1, 1), m12 = m(1, 2), m13 = m(1, 3);
  const cplx m20 = m(2, 0), m21 = m(2, 1), m22 = m(2, 2), m23 = m(2, 3);
  const cplx m30 = m(3, 0), m31 = m(3, 1), m32 = m(3, 2), m33 = m(3, 3);
  for (std::size_t k = 0; k < quarter; ++k) {
    std::size_t i = (k & (lo - 1)) | ((k & ~(lo - 1)) << 1);
    i = (i & (hi - 1)) | ((i & ~(hi - 1)) << 1);
    const std::size_t i00 = i;
    const std::size_t i01 = i | sb;
    const std::size_t i10 = i | sa;
    const std::size_t i11 = i | sa | sb;
    const cplx a00 = amps_[i00], a01 = amps_[i01], a10 = amps_[i10],
               a11 = amps_[i11];
    amps_[i00] = m00 * a00 + m01 * a01 + m02 * a10 + m03 * a11;
    amps_[i01] = m10 * a00 + m11 * a01 + m12 * a10 + m13 * a11;
    amps_[i10] = m20 * a00 + m21 * a01 + m22 * a10 + m23 * a11;
    amps_[i11] = m30 * a00 + m31 * a01 + m32 * a10 + m33 * a11;
  }
}

void StateVector::apply_diag_1q(cplx d0, cplx d1, QubitIndex q) {
  QNAT_CHECK(q >= 0 && q < num_qubits_, "qubit out of range");
  const std::size_t stride = std::size_t{1} << q;
  const std::size_t n = amps_.size();
  for (std::size_t base = 0; base < n; base += 2 * stride) {
    for (std::size_t i = base; i < base + stride; ++i) {
      amps_[i] *= d0;
      amps_[i + stride] *= d1;
    }
  }
}

void StateVector::apply_antidiag_1q(cplx top, cplx bottom, QubitIndex q) {
  QNAT_CHECK(q >= 0 && q < num_qubits_, "qubit out of range");
  const std::size_t stride = std::size_t{1} << q;
  const std::size_t n = amps_.size();
  for (std::size_t base = 0; base < n; base += 2 * stride) {
    for (std::size_t i = base; i < base + stride; ++i) {
      const cplx a0 = amps_[i];
      amps_[i] = top * amps_[i + stride];
      amps_[i + stride] = bottom * a0;
    }
  }
}

namespace {

/// Expands a dense counter k over 2^(n-2) values into the basis index with
/// zero bits inserted at strides `lo` < `hi` (same enumeration apply_2q
/// uses).
inline std::size_t expand_two_zero_bits(std::size_t k, std::size_t lo,
                                        std::size_t hi) {
  std::size_t i = (k & (lo - 1)) | ((k & ~(lo - 1)) << 1);
  return (i & (hi - 1)) | ((i & ~(hi - 1)) << 1);
}

}  // namespace

void StateVector::apply_diag_2q(cplx d0, cplx d1, cplx d2, cplx d3,
                                QubitIndex a, QubitIndex b) {
  QNAT_CHECK(a >= 0 && a < num_qubits_ && b >= 0 && b < num_qubits_ && a != b,
             "invalid qubit pair");
  const std::size_t sa = std::size_t{1} << a;
  const std::size_t sb = std::size_t{1} << b;
  const std::size_t lo = sa < sb ? sa : sb;
  const std::size_t hi = sa < sb ? sb : sa;
  const std::size_t quarter = amps_.size() >> 2;
  for (std::size_t k = 0; k < quarter; ++k) {
    const std::size_t i = expand_two_zero_bits(k, lo, hi);
    amps_[i] *= d0;
    amps_[i | sb] *= d1;
    amps_[i | sa] *= d2;
    amps_[i | sa | sb] *= d3;
  }
}

void StateVector::apply_controlled_1q(cplx m00, cplx m01, cplx m10, cplx m11,
                                      QubitIndex control, QubitIndex target) {
  QNAT_CHECK(control >= 0 && control < num_qubits_ && target >= 0 &&
                 target < num_qubits_ && control != target,
             "invalid qubit pair");
  const std::size_t sc = std::size_t{1} << control;
  const std::size_t st = std::size_t{1} << target;
  const std::size_t lo = sc < st ? sc : st;
  const std::size_t hi = sc < st ? st : sc;
  const std::size_t quarter = amps_.size() >> 2;
  for (std::size_t k = 0; k < quarter; ++k) {
    const std::size_t i = expand_two_zero_bits(k, lo, hi) | sc;
    const cplx a0 = amps_[i];
    const cplx a1 = amps_[i | st];
    amps_[i] = m00 * a0 + m01 * a1;
    amps_[i | st] = m10 * a0 + m11 * a1;
  }
}

void StateVector::apply_controlled_antidiag_1q(cplx top, cplx bottom,
                                               QubitIndex control,
                                               QubitIndex target) {
  QNAT_CHECK(control >= 0 && control < num_qubits_ && target >= 0 &&
                 target < num_qubits_ && control != target,
             "invalid qubit pair");
  const std::size_t sc = std::size_t{1} << control;
  const std::size_t st = std::size_t{1} << target;
  const std::size_t lo = sc < st ? sc : st;
  const std::size_t hi = sc < st ? st : sc;
  const std::size_t quarter = amps_.size() >> 2;
  for (std::size_t k = 0; k < quarter; ++k) {
    const std::size_t i = expand_two_zero_bits(k, lo, hi) | sc;
    const cplx a0 = amps_[i];
    amps_[i] = top * amps_[i | st];
    amps_[i | st] = bottom * a0;
  }
}

void StateVector::apply_swap(QubitIndex a, QubitIndex b) {
  QNAT_CHECK(a >= 0 && a < num_qubits_ && b >= 0 && b < num_qubits_ && a != b,
             "invalid qubit pair");
  const std::size_t sa = std::size_t{1} << a;
  const std::size_t sb = std::size_t{1} << b;
  const std::size_t lo = sa < sb ? sa : sb;
  const std::size_t hi = sa < sb ? sb : sa;
  const std::size_t quarter = amps_.size() >> 2;
  for (std::size_t k = 0; k < quarter; ++k) {
    const std::size_t i = expand_two_zero_bits(k, lo, hi);
    std::swap(amps_[i | sa], amps_[i | sb]);
  }
}

void StateVector::apply_gate(const Gate& gate, const ParamVector& params) {
  const CMatrix m = gate.matrix(gate.eval_params(params));
  if (gate.num_qubits() == 1) {
    apply_matrix_1q(*this, m, gate.qubits[0]);
  } else {
    apply_matrix_2q(*this, m, gate.qubits[0], gate.qubits[1]);
  }
}

void StateVector::apply_gate_adjoint(const Gate& gate,
                                     const ParamVector& params) {
  const CMatrix m = gate.matrix(gate.eval_params(params)).adjoint();
  if (gate.num_qubits() == 1) {
    apply_matrix_1q(*this, m, gate.qubits[0]);
  } else {
    apply_matrix_2q(*this, m, gate.qubits[0], gate.qubits[1]);
  }
}

real StateVector::expectation_z(QubitIndex q) const {
  QNAT_CHECK(q >= 0 && q < num_qubits_, "qubit out of range");
  const std::size_t bit = std::size_t{1} << q;
  real e = 0.0;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    const real p = std::norm(amps_[i]);
    e += (i & bit) ? -p : p;
  }
  return e;
}

std::vector<real> StateVector::expectations_z() const {
  std::vector<real> out(static_cast<std::size_t>(num_qubits_), 0.0);
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    const real p = std::norm(amps_[i]);
    if (p == 0.0) continue;
    for (int q = 0; q < num_qubits_; ++q) {
      out[static_cast<std::size_t>(q)] +=
          (i & (std::size_t{1} << q)) ? -p : p;
    }
  }
  return out;
}

real StateVector::prob_one(QubitIndex q) const {
  return 0.5 * (1.0 - expectation_z(q));
}

real StateVector::norm_sq() const {
  real s = 0.0;
  for (const auto& a : amps_) s += std::norm(a);
  return s;
}

void StateVector::normalize() {
  const real n = std::sqrt(norm_sq());
  QNAT_CHECK(n > 0.0, "cannot normalize the zero state");
  for (auto& a : amps_) a /= n;
}

cplx StateVector::inner(const StateVector& other) const {
  QNAT_CHECK(num_qubits_ == other.num_qubits_,
             "inner product dimension mismatch");
  cplx s{0.0, 0.0};
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    s += std::conj(amps_[i]) * other.amps_[i];
  }
  return s;
}

void StateVector::add_scaled(const StateVector& other, cplx factor) {
  QNAT_CHECK(num_qubits_ == other.num_qubits_, "dimension mismatch");
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    amps_[i] += factor * other.amps_[i];
  }
}

void StateVector::scale(cplx factor) {
  for (auto& a : amps_) a *= factor;
}

std::vector<std::size_t> StateVector::sample(Rng& rng, int shots) const {
  QNAT_CHECK(shots > 0, "sample requires positive shot count");
  static metrics::Counter shots_drawn = metrics::counter("qsim.sv.shots_drawn");
  shots_drawn.add(static_cast<std::uint64_t>(shots));
  std::vector<double> cumulative(amps_.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    acc += std::norm(amps_[i]);
    cumulative[i] = acc;
  }
  QNAT_CHECK(acc > 0.0, "sample from a state with no probability mass");
  std::vector<std::size_t> out;
  out.reserve(static_cast<std::size_t>(shots));
  for (int s = 0; s < shots; ++s) {
    out.push_back(sample_index(cumulative, rng.uniform() * acc));
  }
  return out;
}

std::size_t StateVector::sample_index(std::span<const double> cumulative,
                                      double r) {
  QNAT_CHECK(r >= 0.0, "sample draw must be a non-negative probability mass");
  const auto it = std::lower_bound(cumulative.begin(), cumulative.end(), r);
  auto idx = static_cast<std::size_t>(std::distance(cumulative.begin(), it));
  // A draw of exactly the total mass (or fp rounding past it) walks off
  // the table; clamp to the last basis state — loudly counted, so a
  // clamp rate above the expected fp-edge trickle is visible.
  if (idx >= cumulative.size()) {
    static metrics::Gauge clamp_events =
        metrics::gauge("qsim.sv.sample_clamp_events");
    clamp_events.add(1.0);
    idx = cumulative.size() - 1;
  }
  return idx;
}

}  // namespace qnat
