// Dense statevector simulator.
//
// Stores the 2^n complex amplitudes of an n-qubit register (qubit 0 =
// least-significant bit of the basis index) and applies arbitrary 2x2/4x4
// matrices — unitary or not; the adjoint differentiator applies gate
// *derivative* matrices, which are not unitary. Pauli-Z expectations,
// basis-state probabilities and finite-shot sampling support the QNN
// measurement layer.
//
// Every mutating kernel dispatches to the AVX2 backend (common/simd.hpp)
// when it is enabled, with the scalar loops below as the portable
// fallback; the two paths agree to rounding (see the numerical contract
// in simd.hpp). States carry a (state_id, generation) version stamp —
// the id is globally unique per logical state, the generation counts
// mutations — which keys the cached cumulative table used by sample().
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "common/workspace.hpp"
#include "qsim/gate.hpp"

namespace qnat {

class StateVector {
 public:
  /// Initializes |0...0>.
  explicit StateVector(int num_qubits);

  /// Initializes |0...0> in adopted storage (resized as needed) instead
  /// of allocating — the workspace-pool fast path; see ScopedState.
  StateVector(int num_qubits, std::vector<cplx>&& storage);

  /// Copies duplicate the amplitudes but get a fresh state_id: the copy
  /// is a distinct logical state, and sharing the id would let the
  /// cached sampling table of one alias serve stale data for the other.
  StateVector(const StateVector& other);
  StateVector& operator=(const StateVector& other);
  /// Moves transfer the identity (the moved-from state is dead).
  StateVector(StateVector&&) noexcept = default;
  StateVector& operator=(StateVector&&) noexcept = default;

  /// Releases the amplitude storage (for returning it to the workspace
  /// pool). The state is dead afterwards.
  std::vector<cplx> take_storage() && { return std::move(amps_); }

  int num_qubits() const { return num_qubits_; }
  std::size_t dim() const { return amps_.size(); }

  /// Resets to |0...0>.
  void reset();

  const std::vector<cplx>& amplitudes() const { return amps_; }
  cplx amplitude(std::size_t basis_index) const { return amps_[basis_index]; }
  void set_amplitude(std::size_t basis_index, cplx value) {
    ++generation_;
    amps_[basis_index] = value;
  }

  /// Direct mutable access to the amplitude array; counts as one
  /// mutation regardless of how much the caller writes.
  cplx* mutable_amplitudes() {
    ++generation_;
    return amps_.data();
  }

  /// Version stamp: `state_id` is unique per logical state (copies get
  /// fresh ids), `generation` increments on every mutation. Together
  /// they key derived-data caches (the sampling table).
  std::uint64_t state_id() const { return state_id_; }
  std::uint64_t generation() const { return generation_; }

  /// Applies an arbitrary 2x2 matrix to qubit `q`.
  void apply_1q(const CMatrix& m, QubitIndex q);

  /// Applies an arbitrary 4x4 matrix to qubits (a, b) where `a` is the
  /// high bit of the matrix index (matching the Gate convention).
  void apply_2q(const CMatrix& m, QubitIndex a, QubitIndex b);

  // --- specialized kernels (compiled-program fast path, see program.hpp)
  // Each routine applies only the structurally non-zero entries of its
  // matrix class; callers (the program layer) are responsible for passing
  // entries matching the classification.

  /// Diagonal 2x2: amplitudes with bit q clear scale by d0, set by d1.
  void apply_diag_1q(cplx d0, cplx d1, QubitIndex q);

  /// Anti-diagonal 2x2 with top = m(0,1), bottom = m(1,0).
  void apply_antidiag_1q(cplx top, cplx bottom, QubitIndex q);

  /// Diagonal 4x4 on (a = high matrix bit, b = low matrix bit); dk is the
  /// diagonal entry at matrix index k = (bit_a << 1) | bit_b.
  void apply_diag_2q(cplx d0, cplx d1, cplx d2, cplx d3, QubitIndex a,
                     QubitIndex b);

  /// Arbitrary 2x2 on `target`, applied only where `control` is |1>.
  void apply_controlled_1q(cplx m00, cplx m01, cplx m10, cplx m11,
                           QubitIndex control, QubitIndex target);

  /// Anti-diagonal 2x2 on `target` where `control` is |1> (CX/CY-like).
  void apply_controlled_antidiag_1q(cplx top, cplx bottom,
                                    QubitIndex control, QubitIndex target);

  /// Swaps the amplitudes of qubits a and b (the SWAP permutation).
  void apply_swap(QubitIndex a, QubitIndex b);

  /// Applies a gate with a concrete parameter binding.
  void apply_gate(const Gate& gate, const ParamVector& params);

  /// Applies the adjoint (inverse for unitaries) of a gate.
  void apply_gate_adjoint(const Gate& gate, const ParamVector& params);

  /// <psi| Z_q |psi> in [-1, 1].
  real expectation_z(QubitIndex q) const;

  /// Z expectations on all qubits, via a single halving fold over the
  /// probability vector: O(2^(n+1)) instead of O(n 2^n).
  std::vector<real> expectations_z() const;

  /// Same fold, writing into a caller-owned buffer (resized to the
  /// qubit count). A reused buffer makes repeated measurement
  /// allocation-free — the serving hot path depends on this.
  void expectations_z_into(std::vector<real>& out) const;

  /// Probability of measuring qubit q as |1>.
  real prob_one(QubitIndex q) const;

  /// Squared norm (should be 1 after unitary evolution).
  real norm_sq() const;

  /// Normalizes amplitudes to unit norm; throws on a zero state.
  void normalize();

  /// <this|other>.
  cplx inner(const StateVector& other) const;

  /// In-place amps += factor * other.amps (used by channel mixing).
  void add_scaled(const StateVector& other, cplx factor);

  /// In-place amps *= factor.
  void scale(cplx factor);

  /// Samples `shots` full-register measurement outcomes; returns basis
  /// indices. The cumulative-probability table is cached in the
  /// calling thread's workspace keyed by (state_id, generation), so
  /// repeated sampling of one state (evaluator trajectories) builds it
  /// once; `qsim.sv.cumtable_builds` counts rebuilds.
  std::vector<std::size_t> sample(Rng& rng, int shots) const;

  /// Maps one uniform draw scaled by the total mass onto the cumulative
  /// table: the index of the first entry >= r, clamped into range so a
  /// draw of exactly the total mass (or fp rounding past it) can never
  /// yield an out-of-range index. Exposed for the sampling edge-case
  /// tests.
  static std::size_t sample_index(std::span<const double> cumulative,
                                  double r);

 private:
  int num_qubits_;
  std::vector<cplx> amps_;
  std::uint64_t generation_ = 0;
  std::uint64_t state_id_;
};

/// RAII lease of a workspace-pooled StateVector: constructs |0...0> in
/// recycled storage and returns the buffer to the calling thread's pool
/// on destruction. Must be destroyed on the thread that created it
/// (both ends run in one function scope in all current users).
class ScopedState {
 public:
  explicit ScopedState(int num_qubits)
      : state_(num_qubits,
               ws::acquire_amps(std::size_t{1} << num_qubits)) {}
  ~ScopedState() { ws::release_amps(std::move(state_).take_storage()); }
  ScopedState(const ScopedState&) = delete;
  ScopedState& operator=(const ScopedState&) = delete;

  StateVector& operator*() { return state_; }
  StateVector* operator->() { return &state_; }
  StateVector& get() { return state_; }
  const StateVector& get() const { return state_; }

 private:
  StateVector state_;
};

}  // namespace qnat
