// Dense statevector simulator.
//
// Stores the 2^n complex amplitudes of an n-qubit register (qubit 0 =
// least-significant bit of the basis index) and applies arbitrary 2x2/4x4
// matrices — unitary or not; the adjoint differentiator applies gate
// *derivative* matrices, which are not unitary. Pauli-Z expectations,
// basis-state probabilities and finite-shot sampling support the QNN
// measurement layer.
#pragma once

#include <span>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "qsim/gate.hpp"

namespace qnat {

class StateVector {
 public:
  /// Initializes |0...0>.
  explicit StateVector(int num_qubits);

  int num_qubits() const { return num_qubits_; }
  std::size_t dim() const { return amps_.size(); }

  /// Resets to |0...0>.
  void reset();

  const std::vector<cplx>& amplitudes() const { return amps_; }
  cplx amplitude(std::size_t basis_index) const { return amps_[basis_index]; }
  void set_amplitude(std::size_t basis_index, cplx value) {
    amps_[basis_index] = value;
  }

  /// Applies an arbitrary 2x2 matrix to qubit `q`.
  void apply_1q(const CMatrix& m, QubitIndex q);

  /// Applies an arbitrary 4x4 matrix to qubits (a, b) where `a` is the
  /// high bit of the matrix index (matching the Gate convention).
  void apply_2q(const CMatrix& m, QubitIndex a, QubitIndex b);

  // --- specialized kernels (compiled-program fast path, see program.hpp)
  // Each routine applies only the structurally non-zero entries of its
  // matrix class; callers (the program layer) are responsible for passing
  // entries matching the classification.

  /// Diagonal 2x2: amplitudes with bit q clear scale by d0, set by d1.
  void apply_diag_1q(cplx d0, cplx d1, QubitIndex q);

  /// Anti-diagonal 2x2 with top = m(0,1), bottom = m(1,0).
  void apply_antidiag_1q(cplx top, cplx bottom, QubitIndex q);

  /// Diagonal 4x4 on (a = high matrix bit, b = low matrix bit); dk is the
  /// diagonal entry at matrix index k = (bit_a << 1) | bit_b.
  void apply_diag_2q(cplx d0, cplx d1, cplx d2, cplx d3, QubitIndex a,
                     QubitIndex b);

  /// Arbitrary 2x2 on `target`, applied only where `control` is |1>.
  void apply_controlled_1q(cplx m00, cplx m01, cplx m10, cplx m11,
                           QubitIndex control, QubitIndex target);

  /// Anti-diagonal 2x2 on `target` where `control` is |1> (CX/CY-like).
  void apply_controlled_antidiag_1q(cplx top, cplx bottom,
                                    QubitIndex control, QubitIndex target);

  /// Swaps the amplitudes of qubits a and b (the SWAP permutation).
  void apply_swap(QubitIndex a, QubitIndex b);

  /// Applies a gate with a concrete parameter binding.
  void apply_gate(const Gate& gate, const ParamVector& params);

  /// Applies the adjoint (inverse for unitaries) of a gate.
  void apply_gate_adjoint(const Gate& gate, const ParamVector& params);

  /// <psi| Z_q |psi> in [-1, 1].
  real expectation_z(QubitIndex q) const;

  /// Z expectations on all qubits.
  std::vector<real> expectations_z() const;

  /// Probability of measuring qubit q as |1>.
  real prob_one(QubitIndex q) const;

  /// Squared norm (should be 1 after unitary evolution).
  real norm_sq() const;

  /// Normalizes amplitudes to unit norm; throws on a zero state.
  void normalize();

  /// <this|other>.
  cplx inner(const StateVector& other) const;

  /// In-place amps += factor * other.amps (used by channel mixing).
  void add_scaled(const StateVector& other, cplx factor);

  /// In-place amps *= factor.
  void scale(cplx factor);

  /// Samples `shots` full-register measurement outcomes; returns basis
  /// indices. Uses a cumulative-probability table (fine for <= ~20 qubits).
  std::vector<std::size_t> sample(Rng& rng, int shots) const;

  /// Maps one uniform draw scaled by the total mass onto the cumulative
  /// table: the index of the first entry >= r, clamped into range so a
  /// draw of exactly the total mass (or fp rounding past it) can never
  /// yield an out-of-range index. Exposed for the sampling edge-case
  /// tests.
  static std::size_t sample_index(std::span<const double> cumulative,
                                  double r);

 private:
  int num_qubits_;
  std::vector<cplx> amps_;
};

}  // namespace qnat
