// Consistent-hash request routing for the sharded serving fleet.
//
// Each shard contributes a fixed set of virtual-node points whose
// positions depend only on (shard index, replica index) — never on the
// total shard count. A request id routes to the owner of the first
// point at or after its own hash (wrapping). Because the point set of
// an S-shard ring is a strict subset of the point set of any larger
// ring, growing the fleet only *moves keys onto the new shards*: every
// id that a larger ring routes to one of the original shards is routed
// to that same shard by the smaller ring. Replay leans on this — a
// trace recorded at one shard count partitions identically (per
// surviving shard) at any other, and since responses are a pure
// function of (request id, model, features), replayed outputs are
// byte-identical across shard counts (tests/serve/test_fleet.cpp).
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace qnat::serve {

/// splitmix64 finalizer — the same stateless mixer the RNG layer uses;
/// good avalanche, no dependency on construction order.
inline std::uint64_t hash_mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

class ConsistentHashRing {
 public:
  static constexpr int kDefaultReplicas = 64;

  explicit ConsistentHashRing(int shards, int replicas = kDefaultReplicas) {
    QNAT_CHECK(shards >= 1, "hash ring needs at least one shard");
    QNAT_CHECK(replicas >= 1, "hash ring needs at least one replica");
    shards_ = shards;
    points_.reserve(static_cast<std::size_t>(shards) *
                    static_cast<std::size_t>(replicas));
    for (int shard = 0; shard < shards; ++shard) {
      for (int replica = 0; replica < replicas; ++replica) {
        const std::uint64_t point =
            hash_mix64((static_cast<std::uint64_t>(shard) << 32) |
                       static_cast<std::uint64_t>(replica));
        points_.emplace_back(point, shard);
      }
    }
    // Tie-break equal points by shard index so routing is a total
    // order independent of insertion sequence.
    std::sort(points_.begin(), points_.end());
  }

  int shards() const { return shards_; }

  /// Owner shard for a request id.
  int route(std::uint64_t id) const {
    const std::uint64_t key = hash_mix64(id);
    auto it = std::lower_bound(
        points_.begin(), points_.end(), key,
        [](const std::pair<std::uint64_t, int>& p, std::uint64_t k) {
          return p.first < k;
        });
    if (it == points_.end()) it = points_.begin();  // wrap
    return it->second;
  }

 private:
  int shards_ = 1;
  std::vector<std::pair<std::uint64_t, int>> points_;
};

}  // namespace qnat::serve
