// Bounded lock-free MPSC request queue (serving hot path).
//
// A fixed-capacity ring of sequence-numbered cells (Vyukov's bounded
// queue): producers claim a cell with one CAS on the tail and publish it
// by bumping the cell's sequence with release ordering; the consumer
// acquires the cell's sequence before reading the value. `try_push`
// fails immediately when the ring is full — that failure IS the
// backpressure signal: the scheduler rejects the request instead of
// queueing unboundedly, so memory stays bounded by `capacity` no matter
// how overdriven the server is.
//
// The implementation is safe for multiple producers and multiple
// consumers; the serving scheduler uses it MPSC (many client threads,
// one dispatcher).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "common/error.hpp"

namespace qnat::serve {

template <typename T>
class BoundedMpscQueue {
 public:
  /// `capacity` is rounded up to the next power of two (>= 2).
  explicit BoundedMpscQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    capacity_ = cap;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  BoundedMpscQueue(const BoundedMpscQueue&) = delete;
  BoundedMpscQueue& operator=(const BoundedMpscQueue&) = delete;

  std::size_t capacity() const { return capacity_; }

  /// Number of enqueued items (approximate under concurrency, exact when
  /// quiescent). Never exceeds capacity().
  std::size_t size() const {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return tail > head ? static_cast<std::size_t>(tail - head) : 0;
  }

  /// Enqueues `value`; returns false (value untouched) when full.
  bool try_push(T& value) {
    Cell* cell;
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    while (true) {
      cell = &cells_[static_cast<std::size_t>(pos) & mask_];
      const std::uint64_t seq = cell->seq.load(std::memory_order_acquire);
      const std::int64_t diff =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // ring full — backpressure
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Dequeues into `out`; returns false when empty.
  bool try_pop(T& out) {
    Cell* cell;
    std::uint64_t pos = head_.load(std::memory_order_relaxed);
    while (true) {
      cell = &cells_[static_cast<std::size_t>(pos) & mask_];
      const std::uint64_t seq = cell->seq.load(std::memory_order_acquire);
      const std::int64_t diff = static_cast<std::int64_t>(seq) -
                                static_cast<std::int64_t>(pos + 1);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // empty
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(cell->value);
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

 private:
  struct Cell {
    std::atomic<std::uint64_t> seq{0};
    T value{};
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  alignas(64) std::atomic<std::uint64_t> head_{0};
};

}  // namespace qnat::serve
