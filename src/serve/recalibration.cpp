#include "serve/recalibration.hpp"

#include <cmath>
#include <numeric>
#include <utility>

#include "common/error.hpp"
#include "common/metrics.hpp"

namespace qnat::serve {

namespace {

std::vector<std::uint64_t> iota_ids(std::size_t n) {
  std::vector<std::uint64_t> ids(n);
  std::iota(ids.begin(), ids.end(), std::uint64_t{1});
  return ids;
}

}  // namespace

RecalibrationController::RecalibrationController(ModelRegistry& registry,
                                                 std::string model_name,
                                                 RecalibrationConfig config)
    : registry_(registry),
      name_(std::move(model_name)),
      config_(config),
      detector_(config.detector) {
  QNAT_CHECK(config_.traffic_capacity >= 2 && config_.min_traffic >= 2,
             "recalibration needs a traffic capacity / minimum of >= 2");
  QNAT_CHECK(config_.min_traffic <= config_.traffic_capacity,
             "recalibration min_traffic exceeds the ring capacity");
}

void RecalibrationController::prime(const Tensor2D& baseline_inputs) {
  reference_ = registry_.find(name_);
  QNAT_CHECK(reference_ != nullptr,
             "recalibration: no registered model named '" + name_ + "'");
  QNAT_CHECK(baseline_inputs.rows() >= 2,
             "recalibration baseline needs at least 2 rows");
  const Tensor2D logits = reference_->run_batch(
      baseline_inputs, iota_ids(baseline_inputs.rows()));
  std::vector<std::vector<real>> rows;
  rows.reserve(logits.rows());
  for (std::size_t r = 0; r < logits.rows(); ++r) rows.push_back(logits.row(r));
  detector_.set_baseline_from_rows(rows);
}

bool RecalibrationController::observe(const std::vector<real>& features,
                                      const std::vector<real>& logits) {
  QNAT_CHECK(reference_ != nullptr, "recalibration: prime() first");
  if (traffic_.size() < config_.traffic_capacity) {
    traffic_.push_back(features);
  } else {
    traffic_[traffic_next_] = features;
    traffic_next_ = (traffic_next_ + 1) % config_.traffic_capacity;
    traffic_wrapped_ = true;
  }
  return detector_.observe(logits);
}

std::size_t RecalibrationController::traffic_rows() const {
  return traffic_.size();
}

Tensor2D RecalibrationController::traffic_tensor() const {
  QNAT_CHECK(!traffic_.empty(), "recalibration: no traffic observed");
  const std::size_t cols = traffic_[0].size();
  Tensor2D out(traffic_.size(), cols);
  // Oldest-first: rows [next, end) then [0, next) once the ring wrapped.
  std::size_t row = 0;
  const std::size_t start = traffic_wrapped_ ? traffic_next_ : 0;
  for (std::size_t i = 0; i < traffic_.size(); ++i) {
    const auto& src = traffic_[(start + i) % traffic_.size()];
    out.set_row(row++, src);
  }
  return out;
}

std::shared_ptr<const ServableModel> RecalibrationController::recalibrate() {
  QNAT_CHECK(reference_ != nullptr, "recalibration: prime() first");
  QNAT_CHECK(traffic_.size() >= config_.min_traffic,
             "recalibration: not enough recent traffic (" +
                 std::to_string(traffic_.size()) + " rows, need " +
                 std::to_string(config_.min_traffic) + ")");
  static metrics::Counter swaps =
      metrics::counter("serve.recalibration.swaps", metrics::Stability::PerRun);

  const std::shared_ptr<const ServableModel> current = registry_.find(name_);
  QNAT_CHECK(current != nullptr,
             "recalibration: model '" + name_ + "' disappeared");
  const Tensor2D traffic = traffic_tensor();
  const std::vector<std::uint64_t> ids = iota_ids(traffic.rows());

  // 1. Fresh A.3.7 statistics, as the deployed (drifted) device produces
  // them on recent traffic.
  ServingOptions options = current->options();
  if (options.normalize) {
    options.profile_override = std::make_shared<const ProfiledStats>(
        current->profile_raw(traffic, ids));
  }
  options.corrector_scale.clear();
  options.corrector_bias.clear();

  // 2. Per-logit affine corrector: candidate (fresh statistics, no
  // corrector) vs the calibration-fresh reference on identical features.
  if (config_.fit_corrector) {
    ServingOptions candidate_options = options;
    candidate_options.artifact_dir.clear();  // scratch build, no caching
    ModelRegistry scratch;
    const auto candidate =
        scratch.add(name_, current->model(), candidate_options, nullptr);
    const Tensor2D x = candidate->run_batch(traffic, ids);
    const Tensor2D y = reference_->run_batch(traffic, ids);
    const auto rows = static_cast<double>(traffic.rows());
    std::vector<real> scale(x.cols()), bias(x.cols());
    for (std::size_t c = 0; c < x.cols(); ++c) {
      double mean_x = 0.0, mean_y = 0.0;
      for (std::size_t r = 0; r < x.rows(); ++r) {
        mean_x += x(r, c);
        mean_y += y(r, c);
      }
      mean_x /= rows;
      mean_y /= rows;
      double var_x = 0.0, cov_xy = 0.0;
      for (std::size_t r = 0; r < x.rows(); ++r) {
        var_x += (x(r, c) - mean_x) * (x(r, c) - mean_x);
        cov_xy += (x(r, c) - mean_x) * (y(r, c) - mean_y);
      }
      // Degenerate (constant) logit column: match the mean, keep unit
      // slope.
      const double a = var_x > 1e-12 ? cov_xy / var_x : 1.0;
      scale[c] = static_cast<real>(a);
      bias[c] = static_cast<real>(mean_y - a * mean_x);
    }
    options.corrector_scale = std::move(scale);
    options.corrector_bias = std::move(bias);
  }

  // 3. Hot swap: the next version under the same name. New requests
  // route here on their next find(); in-flight holders of the old
  // version finish undisturbed.
  auto swapped = registry_.add(name_, current->model(), options, nullptr);
  swaps.inc();
  detector_.reset();
  return swapped;
}

}  // namespace qnat::serve
