// Online recalibration: shift detection -> re-profiling -> hot swap.
//
// The controller closes the loop the drift engine opens. It pins the
// calibration-fresh serving version as a *reference*, freezes a
// shift-detector baseline from the reference's outputs on a
// representative batch, and then watches served traffic. When the
// detector trips, `recalibrate()` builds a successor version of the
// currently served model:
//
//   1. Re-profile: recent traffic is run back through the *deployed*
//      (drifted) model and the A.3.7 normalization statistics are
//      re-measured (`ServableModel::profile_raw`). Pinning the fresh
//      statistics exactly cancels per-qubit affine readout drift on
//      every normalized (intermediate) block.
//   2. Corrector fit: the final block is unnormalized, so residual drift
//      reaches the logits as a per-logit affine map. A candidate with
//      the fresh statistics is built in a scratch registry, run on the
//      same traffic, and a per-logit least-squares affine corrector is
//      fit against the reference's logits on identical features.
//   3. Hot swap: the recalibrated options are registered under the same
//      name with the next version. `ModelRegistry::find(name)` resolves
//      to it immediately for new requests, while in-flight requests
//      finish on the shared_ptr they already hold — zero downtime, zero
//      dropped requests.
//
// Determinism contract: feed `observe()` in request-id order (sort each
// phase's responses before streaming them in). Every stage is then a
// pure function of (reference, traffic, drift trajectory), so a whole
// degrade-detect-recalibrate episode is byte-identical across shard and
// thread counts.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/registry.hpp"
#include "serve/shift_detector.hpp"

namespace qnat::serve {

struct RecalibrationConfig {
  ShiftDetectorConfig detector;
  /// Recent-traffic ring capacity (feature rows kept for re-profiling).
  std::size_t traffic_capacity = 256;
  /// Minimum traffic rows before recalibrate() will re-profile.
  std::size_t min_traffic = 16;
  /// Fit the per-logit affine corrector (step 2 above). Off leaves the
  /// corrector empty — re-profiling alone still fixes every normalized
  /// block.
  bool fit_corrector = true;
};

class RecalibrationController {
 public:
  RecalibrationController(ModelRegistry& registry, std::string model_name,
                          RecalibrationConfig config = {});

  /// Pins the current latest version as the calibration-fresh reference
  /// and freezes the detector baseline from its logits on
  /// `baseline_inputs`. Call once, at deployment time, while the device
  /// is fresh.
  void prime(const Tensor2D& baseline_inputs);

  /// Streams one served (features, logits) pair. Returns true when the
  /// detector has tripped (latched). Feed in request-id order for
  /// deterministic episodes.
  bool observe(const std::vector<real>& features,
               const std::vector<real>& logits);

  bool shift_detected() const { return detector_.triggered(); }
  const ShiftDetector& detector() const { return detector_; }
  std::size_t traffic_rows() const;

  /// Re-profiles against the recent-traffic ring, fits the corrector,
  /// and hot-swaps a recalibrated version into the registry (see file
  /// header). Returns the new entry. Requires prime() and at least
  /// `min_traffic` observed rows. Re-arms the detector.
  std::shared_ptr<const ServableModel> recalibrate();

  /// The calibration-fresh reference pinned by prime() (tests).
  const std::shared_ptr<const ServableModel>& reference() const {
    return reference_;
  }

 private:
  Tensor2D traffic_tensor() const;

  ModelRegistry& registry_;
  std::string name_;
  RecalibrationConfig config_;
  ShiftDetector detector_;
  std::shared_ptr<const ServableModel> reference_;
  /// Ring of recent feature rows, in arrival order.
  std::vector<std::vector<real>> traffic_;
  std::size_t traffic_next_ = 0;
  bool traffic_wrapped_ = false;
};

}  // namespace qnat::serve
