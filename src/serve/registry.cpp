#include "serve/registry.hpp"

#include <algorithm>
#include <charconv>
#include <limits>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "core/normalization.hpp"
#include "core/serialization.hpp"
#include "noise/device_presets.hpp"
#include "qsim/execution.hpp"

namespace qnat::serve {

std::string ServableModel::spec() const {
  return name_ + "@" + std::to_string(version_);
}

ServableModel::ServableModel(std::string name, int version, QnnModel model,
                             ServingOptions options,
                             const Tensor2D* profiling_inputs)
    : name_(std::move(name)),
      version_(version),
      model_(std::move(model)),
      options_(std::move(options)),
      shot_rng_base_(options_.seed) {
  QNAT_TRACE_SCOPE("serve.load_model");

  // Execution plans: logical circuits, or the transpiled compact
  // circuits of the device preset (readout confusion as an affine map).
  std::vector<BlockExecutionPlan> plans;
  if (options_.noise_preset.empty()) {
    plans = make_logical_plans(model_);
  } else {
    deployment_ = std::make_unique<Deployment>(
        model_, make_device_noise_model(options_.noise_preset),
        options_.optimization_level);
    plans = deployment_->compiled_plans(/*readout_map=*/true);
  }

  // Pin one compiled program per block. The shared_ptr keeps the
  // program alive across process-wide cache evictions, and every worker
  // thread executes the same instance — compile happens exactly once
  // per model load, never on a request.
  //
  // With bind_weights (the default), the checkpoint's weights — fixed
  // for the lifetime of this model version — are constant-folded into
  // the circuit before compiling. Each block's parameter layout is
  // [inputs | block weights] with the weights last, so the fold turns
  // every weight-only gate into a constant the compiler bakes (and
  // fuses) once at load; requests then evaluate only the gates that
  // actually depend on their features.
  QNAT_CHECK(plans.size() == model_.blocks().size(),
             "one execution plan per block expected");
  for (std::size_t b = 0; b < plans.size(); ++b) {
    const auto& plan = plans[b];
    BlockBinding binding;
    if (options_.bind_weights) {
      const auto& block = model_.blocks()[b];
      const auto first_weight =
          model_.weights().begin() + block.weight_offset;
      const std::vector<real> weights(first_weight,
                                      first_weight + block.num_weights);
      binding.program = shared_program(bind_params(
          *plan.circuit, plan.circuit->num_params() - block.num_weights,
          weights));
    } else {
      binding.program = shared_program(*plan.circuit);
    }
    binding.measure_wires = plan.measure_wires;
    binding.readout_slope = plan.readout_slope;
    binding.readout_intercept = plan.readout_intercept;
    bindings_.push_back(std::move(binding));
  }

  // Pin normalization statistics from the profiling batch (appendix
  // A.3.7): serving must never fall back to batch statistics, or a
  // request's answer would depend on its batch-mates.
  if (options_.normalize) {
    QNAT_CHECK(profiling_inputs != nullptr && profiling_inputs->rows() >= 2,
               "serving with normalization requires a profiling batch of at "
               "least 2 rows to pin statistics (model '" +
                   name_ + "')");
    QnnForwardOptions profile_options;
    profile_options.normalize = true;  // batch statistics, this once
    QnnForwardCache cache;
    qnn_forward(model_, *profiling_inputs, plans, profile_options, &cache);
    for (std::size_t b = 0; b < cache.normalized.size(); ++b) {
      profiled_mean_.push_back(cache.raw[b].col_mean());
      profiled_std_.push_back(cache.raw[b].col_std(kNormEpsilon));
    }
  }

  pipeline_.normalize = options_.normalize;
  pipeline_.quantize = options_.quantize;
  pipeline_.quant = options_.quant;
  if (options_.normalize) {
    pipeline_.profiled_mean = &profiled_mean_;
    pipeline_.profiled_std = &profiled_std_;
  }
}

Tensor2D ServableModel::run_batch(
    const Tensor2D& inputs, const std::vector<std::uint64_t>& request_ids) const {
  QNAT_CHECK(inputs.rows() == request_ids.size(),
             "run_batch needs one request id per row");
  QNAT_TRACE_SCOPE("serve.run_batch");
  const int nq = model_.architecture().num_qubits;
  const BlockRunner runner = [&](std::size_t b, std::size_t r,
                                 const ParamVector& params, real* out) {
    const BlockBinding& binding = bindings_[b];
    // Per-thread expectation buffer: the analytic serving path runs
    // once per sample per block and must stay allocation-free.
    thread_local std::vector<real> z;
    if (options_.shots > 0) {
      // Shot stream keyed by (request id, block) — a pure function of
      // the request, identical under any batch grouping or thread count.
      Rng rng = shot_rng_base_.child(request_ids[r]).child(b);
      z = measure_expectations_shots(*binding.program, params, rng,
                                     options_.shots);
    } else {
      measure_expectations_into(*binding.program, params, z);
    }
    for (int q = 0; q < nq; ++q) {
      const auto qi = static_cast<std::size_t>(q);
      const real e = z[static_cast<std::size_t>(binding.measure_wires[qi])];
      out[q] = binding.readout_slope[qi] * e + binding.readout_intercept[qi];
    }
  };
  return qnn_forward_with_runner(model_, inputs, runner, pipeline_, nullptr);
}

std::shared_ptr<const ServableModel> ModelRegistry::add(
    const std::string& name, const QnnModel& model,
    const ServingOptions& options, const Tensor2D* profiling_inputs) {
  QNAT_CHECK(!name.empty() && name.find('@') == std::string::npos &&
                 name.find_first_of(" \t\n") == std::string::npos,
             "model name must be non-empty and free of '@' and whitespace: '" +
                 name + "'");
  static metrics::Counter loads =
      metrics::counter("serve.registry.loads", metrics::Stability::PerRun);
  loads.inc();

  int version = 1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.lower_bound({name, std::numeric_limits<int>::max()});
    if (it != entries_.begin()) {
      const auto prev = std::prev(it);
      if (prev->first.first == name) version = prev->first.second + 1;
    }
  }
  // Build outside the lock — transpile + compile + profiling can be slow.
  std::shared_ptr<const ServableModel> entry(new ServableModel(
      name, version, model, options, profiling_inputs));
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries_[{name, version}] = entry;
  }
  return entry;
}

std::shared_ptr<const ServableModel> ModelRegistry::load_file(
    const std::string& name, const std::string& path,
    const ServingOptions& options, const Tensor2D* profiling_inputs) {
  return add(name, load_model(path), options, profiling_inputs);
}

std::shared_ptr<const ServableModel> ModelRegistry::find(
    std::string_view spec) const {
  std::string name(spec);
  int version = 0;  // 0 = latest
  if (const auto at = spec.rfind('@'); at != std::string_view::npos) {
    name = std::string(spec.substr(0, at));
    const std::string_view v = spec.substr(at + 1);
    const auto [ptr, ec] =
        std::from_chars(v.data(), v.data() + v.size(), version);
    if (ec != std::errc{} || ptr != v.data() + v.size() || version < 1) {
      return nullptr;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (version > 0) {
    const auto it = entries_.find({name, version});
    return it == entries_.end() ? nullptr : it->second;
  }
  // Latest: the greatest version under this name.
  const auto it = entries_.lower_bound({name, std::numeric_limits<int>::max()});
  if (it == entries_.begin()) return nullptr;
  const auto prev = std::prev(it);
  return prev->first.first == name ? prev->second : nullptr;
}

std::size_t ModelRegistry::remove(const std::string& name, int version) {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t removed = 0;
  for (auto it = entries_.lower_bound({name, 0}); it != entries_.end();) {
    if (it->first.first != name) break;
    if (version == 0 || it->first.second == version) {
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::vector<std::string> ModelRegistry::list() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> specs;
  for (const auto& [key, entry] : entries_) {
    specs.push_back(key.first + "@" + std::to_string(key.second));
  }
  return specs;
}

}  // namespace qnat::serve
