#include "serve/registry.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <limits>
#include <optional>
#include <sstream>
#include <string_view>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "core/normalization.hpp"
#include "core/serialization.hpp"
#include "noise/device_presets.hpp"
#include "qsim/backend/backend.hpp"
#include "qsim/execution.hpp"

namespace qnat::serve {

namespace {

constexpr const char* kArtifactMagic = "#qnat-servable";
constexpr const char* kArtifactVersion = "v1";

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

void put_real(std::ostream& os, real v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << buf;
}

void put_real_vector(std::ostream& os, const char* key,
                     const std::vector<real>& values) {
  os << key << ' ' << values.size();
  for (const real v : values) {
    os << ' ';
    put_real(os, v);
  }
  os << '\n';
}

std::uint64_t fingerprint_model(const QnnModel& model) {
  return fnv1a(serialize_model(model));
}

/// Canonical text of everything besides the weights that shapes the
/// steady state — options fields plus the profiling batch (its values
/// pin the normalization statistics). `artifact_dir` is deliberately
/// excluded: it locates the cache, it is not part of what is cached.
std::uint64_t fingerprint_options(const ServingOptions& options,
                                  const Tensor2D* profiling_inputs) {
  std::ostringstream os;
  os << "normalize " << options.normalize << '\n';
  os << "quantize " << options.quantize << '\n';
  os << "quant " << options.quant.levels << ' ';
  put_real(os, options.quant.clip_min);
  os << ' ';
  put_real(os, options.quant.clip_max);
  os << '\n';
  os << "noise_preset " << options.noise_preset << '\n';
  os << "optimization_level " << options.optimization_level << '\n';
  os << "bind_weights " << options.bind_weights << '\n';
  os << "shots " << options.shots << '\n';
  os << "seed " << options.seed << '\n';
  os << "weight ";
  put_real(os, options.weight);
  os << '\n';
  os << "dtype " << dtype_name(options.dtype) << '\n';
  // Drift-serving fields are appended only when present, so fingerprints
  // (and therefore on-disk artifact keys) of pre-drift configurations
  // are unchanged.
  if (options.device_override != nullptr) {
    os << "device_override\n" << options.device_override->canonical_text();
  }
  if (options.profile_override != nullptr) {
    os << "profile_override " << options.profile_override->mean.size()
       << '\n';
    for (std::size_t b = 0; b < options.profile_override->mean.size(); ++b) {
      put_real_vector(os, "mean", options.profile_override->mean[b]);
      put_real_vector(os, "std", options.profile_override->stddev[b]);
    }
  }
  if (!options.corrector_scale.empty() || !options.corrector_bias.empty()) {
    put_real_vector(os, "corrector_scale", options.corrector_scale);
    put_real_vector(os, "corrector_bias", options.corrector_bias);
  }
  if (profiling_inputs == nullptr) {
    os << "profiling none\n";
  } else {
    os << "profiling " << profiling_inputs->rows() << ' '
       << profiling_inputs->cols();
    for (const real v : profiling_inputs->data()) {
      os << ' ';
      put_real(os, v);
    }
    os << '\n';
  }
  return fnv1a(std::move(os).str());
}

std::string next_tok(std::istream& is, const char* what) {
  std::string t;
  QNAT_CHECK(static_cast<bool>(is >> t),
             std::string("serve artifact: truncated before ") + what);
  return t;
}

void expect_tok(std::istream& is, const char* want) {
  const std::string t = next_tok(is, want);
  QNAT_CHECK(t == want, std::string("serve artifact: expected '") + want +
                            "', got '" + t + "'");
}

long long read_int(std::istream& is, const char* what, long long lo,
                   long long hi) {
  long long v = 0;
  QNAT_CHECK(static_cast<bool>(is >> v),
             std::string("serve artifact: truncated/bad ") + what);
  QNAT_CHECK(v >= lo && v <= hi,
             std::string("serve artifact: ") + what + " out of range");
  return v;
}

std::uint64_t parse_hex64(const std::string& tok, const char* what) {
  QNAT_CHECK(!tok.empty() && tok.size() <= 16,
             std::string("serve artifact: bad ") + what);
  std::uint64_t v = 0;
  for (const char c : tok) {
    int d = -1;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    QNAT_CHECK(d >= 0, std::string("serve artifact: bad ") + what);
    v = (v << 4) | static_cast<std::uint64_t>(d);
  }
  return v;
}

std::vector<real> read_real_vector(std::istream& is, const char* what) {
  const long long n = read_int(is, what, 0, 1 << 20);
  std::vector<real> values(static_cast<std::size_t>(n));
  for (auto& v : values) {
    QNAT_CHECK(static_cast<bool>(is >> v),
               std::string("serve artifact: truncated/bad ") + what);
  }
  return values;
}

}  // namespace

std::string ServableModel::spec() const {
  return name_ + "@" + std::to_string(version_);
}

std::uint64_t ServableModel::artifact_key(const QnnModel& model,
                                          const ServingOptions& options,
                                          const Tensor2D* profiling_inputs) {
  const std::uint64_t mf = fingerprint_model(model);
  const std::uint64_t of = fingerprint_options(options, profiling_inputs);
  // boost::hash_combine-style mix of the two 64-bit fingerprints.
  return mf ^ (of + 0x9E3779B97F4A7C15ULL + (mf << 6) + (mf >> 2));
}

ServableModel::ServableModel(std::string name, int version, QnnModel model,
                             ServingOptions options,
                             const Tensor2D* profiling_inputs)
    : name_(std::move(name)),
      version_(version),
      model_(std::move(model)),
      options_(std::move(options)),
      shot_rng_base_(options_.seed) {
  QNAT_TRACE_SCOPE("serve.load_model");
  QNAT_CHECK(options_.weight > 0.0,
             "ServingOptions::weight must be positive (WFQ share)");

  // Execution plans: logical circuits, or the transpiled compact
  // circuits of the device (readout confusion as an affine map). An
  // explicit device override — a drift-engine snapshot — wins over the
  // named preset.
  std::vector<BlockExecutionPlan> plans;
  if (options_.device_override != nullptr) {
    options_.device_override->validate();
    deployment_ = std::make_unique<Deployment>(
        model_, *options_.device_override, options_.optimization_level);
    plans = deployment_->compiled_plans(/*readout_map=*/true);
  } else if (!options_.noise_preset.empty()) {
    deployment_ = std::make_unique<Deployment>(
        model_, make_device_noise_model(options_.noise_preset),
        options_.optimization_level);
    plans = deployment_->compiled_plans(/*readout_map=*/true);
  } else {
    plans = make_logical_plans(model_);
  }

  // Pin one compiled program per block. The shared_ptr keeps the
  // program alive across process-wide cache evictions, and every worker
  // thread executes the same instance — compile happens exactly once
  // per model load, never on a request.
  //
  // With bind_weights (the default), the checkpoint's weights — fixed
  // for the lifetime of this model version — are constant-folded into
  // the circuit before compiling. Each block's parameter layout is
  // [inputs | block weights] with the weights last, so the fold turns
  // every weight-only gate into a constant the compiler bakes (and
  // fuses) once at load; requests then evaluate only the gates that
  // actually depend on their features.
  QNAT_CHECK(plans.size() == model_.blocks().size(),
             "one execution plan per block expected");
  for (std::size_t b = 0; b < plans.size(); ++b) {
    const auto& plan = plans[b];
    BlockBinding binding;
    if (options_.bind_weights) {
      const auto& block = model_.blocks()[b];
      const auto first_weight =
          model_.weights().begin() + block.weight_offset;
      const std::vector<real> weights(first_weight,
                                      first_weight + block.num_weights);
      binding.program = shared_program(bind_params(
          *plan.circuit, plan.circuit->num_params() - block.num_weights,
          weights));
    } else {
      binding.program = shared_program(*plan.circuit);
    }
    if (options_.dtype == DType::F32) {
      // Private copy: the process-wide program cache instance stays f64
      // for other consumers; only this model's pinned copy is marked, so
      // the bundle embeds a dtype-f32 QNATPROG v2 artifact.
      auto owned = std::make_shared<CompiledProgram>(*binding.program);
      owned->set_dtype(DType::F32);
      binding.program = std::move(owned);
    }
    binding.measure_wires = plan.measure_wires;
    binding.readout_slope = plan.readout_slope;
    binding.readout_intercept = plan.readout_intercept;
    bindings_.push_back(std::move(binding));
  }

  // Pin normalization statistics (appendix A.3.7): serving must never
  // fall back to batch statistics, or a request's answer would depend on
  // its batch-mates. Statistics come from the profiling batch, or — for
  // drift recalibration — verbatim from a profile override.
  if (options_.normalize) {
    if (options_.profile_override != nullptr) {
      const ProfiledStats& stats = *options_.profile_override;
      const std::size_t processed = model_.blocks().size() - 1;
      const auto nq =
          static_cast<std::size_t>(model_.architecture().num_qubits);
      QNAT_CHECK(stats.mean.size() == processed &&
                     stats.stddev.size() == processed,
                 "profile override must carry one entry per processed "
                 "block (model '" +
                     name_ + "')");
      for (std::size_t b = 0; b < processed; ++b) {
        QNAT_CHECK(stats.mean[b].size() == nq &&
                       stats.stddev[b].size() == nq,
                   "profile override entry width must equal the qubit "
                   "count (model '" +
                       name_ + "')");
        for (const real s : stats.stddev[b]) {
          QNAT_CHECK(s > 0.0, "profile override stddev must be positive "
                              "(model '" +
                                  name_ + "')");
        }
      }
      profiled_mean_ = stats.mean;
      profiled_std_ = stats.stddev;
    } else {
      QNAT_CHECK(profiling_inputs != nullptr && profiling_inputs->rows() >= 2,
                 "serving with normalization requires a profiling batch of at "
                 "least 2 rows to pin statistics (model '" +
                     name_ + "')");
      QnnForwardOptions profile_options;
      profile_options.normalize = true;  // batch statistics, this once
      QnnForwardCache cache;
      qnn_forward(model_, *profiling_inputs, plans, profile_options, &cache);
      for (std::size_t b = 0; b < cache.normalized.size(); ++b) {
        profiled_mean_.push_back(cache.raw[b].col_mean());
        profiled_std_.push_back(cache.raw[b].col_std(kNormEpsilon));
      }
    }
  }

  model_fingerprint_ = fingerprint_model(model_);
  options_fingerprint_ = fingerprint_options(options_, profiling_inputs);
  finalize_pipeline();
}

ServableModel::ServableModel(std::string name, int version, QnnModel model,
                             ServingOptions options,
                             const Tensor2D* profiling_inputs,
                             const std::string& artifact_text)
    : name_(std::move(name)),
      version_(version),
      model_(std::move(model)),
      options_(std::move(options)),
      shot_rng_base_(options_.seed) {
  QNAT_TRACE_SCOPE("serve.load_model_warm");
  QNAT_CHECK(options_.weight > 0.0,
             "ServingOptions::weight must be positive (WFQ share)");

  std::istringstream is(artifact_text);
  std::string magic_line;
  QNAT_CHECK(static_cast<bool>(std::getline(is, magic_line)),
             "serve artifact: empty input");
  if (!magic_line.empty() && magic_line.back() == '\r') magic_line.pop_back();
  const std::string expected_magic =
      std::string(kArtifactMagic) + ' ' + kArtifactVersion;
  QNAT_CHECK(magic_line.rfind(kArtifactMagic, 0) == 0,
             "serve artifact: bad magic (not a QNATSRV file)");
  QNAT_CHECK(magic_line == expected_magic,
             "serve artifact: unsupported version '" + magic_line +
                 "' (expected " + expected_magic + ")");

  // Provenance gate: a bundle built from a different checkpoint, serving
  // configuration, or profiling batch must never be warm-loaded, even if
  // it parses — 64-bit fingerprint collisions on the *filename* alone
  // would otherwise serve stale state.
  model_fingerprint_ = fingerprint_model(model_);
  options_fingerprint_ = fingerprint_options(options_, profiling_inputs);
  expect_tok(is, "model_fingerprint");
  QNAT_CHECK(parse_hex64(next_tok(is, "model_fingerprint"),
                         "model_fingerprint") == model_fingerprint_,
             "serve artifact: built from a different model checkpoint");
  expect_tok(is, "options_fingerprint");
  QNAT_CHECK(parse_hex64(next_tok(is, "options_fingerprint"),
                         "options_fingerprint") == options_fingerprint_,
             "serve artifact: built under different serving options or "
             "profiling batch");

  expect_tok(is, "blocks");
  const long long num_blocks =
      read_int(is, "block count", 0, 1 << 16);
  QNAT_CHECK(num_blocks == static_cast<long long>(model_.blocks().size()),
             "serve artifact: block count does not match model");
  for (long long b = 0; b < num_blocks; ++b) {
    expect_tok(is, "block");
    QNAT_CHECK(read_int(is, "block index", 0, num_blocks - 1) == b,
               "serve artifact: blocks out of order");
    BlockBinding binding;
    expect_tok(is, "wires");
    const long long num_wires = read_int(is, "wire count", 1, 64);
    for (long long w = 0; w < num_wires; ++w) {
      binding.measure_wires.push_back(
          static_cast<QubitIndex>(read_int(is, "measure wire", 0, 63)));
    }
    expect_tok(is, "slope");
    binding.readout_slope = read_real_vector(is, "readout slope");
    expect_tok(is, "intercept");
    binding.readout_intercept = read_real_vector(is, "readout intercept");
    QNAT_CHECK(binding.readout_slope.size() == binding.measure_wires.size() &&
                   binding.readout_intercept.size() ==
                       binding.measure_wires.size(),
               "serve artifact: readout map / wire length mismatch");
    // Blocks without profiled statistics (the unprocessed last block) go
    // straight to their program section.
    std::string section = next_tok(is, "mean or program");
    if (section == "mean") {
      QNAT_CHECK(options_.normalize,
                 "serve artifact: profiled statistics without normalize");
      profiled_mean_.push_back(read_real_vector(is, "profiled mean"));
      expect_tok(is, "std");
      profiled_std_.push_back(read_real_vector(is, "profiled std"));
      section = next_tok(is, "program");
    }
    QNAT_CHECK(section == "program",
               "serve artifact: expected 'program', got '" + section + "'");
    const long long program_bytes =
        read_int(is, "program byte count", 1, 1 << 26);
    QNAT_CHECK(is.get() == '\n',
               "serve artifact: malformed program byte header");
    std::string program_text(static_cast<std::size_t>(program_bytes), '\0');
    is.read(program_text.data(), program_bytes);
    QNAT_CHECK(is.gcount() == program_bytes,
               "serve artifact: truncated embedded program");
    // The embedded QNATPROG artifact carries its own checksum; a corrupt
    // program fails here, before any state is published.
    binding.program = std::make_shared<const CompiledProgram>(
        deserialize_program(program_text));
    QNAT_CHECK(binding.program->dtype() == options_.dtype,
               "serve artifact: embedded program dtype does not match the "
               "requested serving precision");
    bindings_.push_back(std::move(binding));
  }
  expect_tok(is, "checksum");
  (void)parse_hex64(next_tok(is, "checksum"), "checksum");
  expect_tok(is, "end");
  std::string trailing;
  QNAT_CHECK(!(is >> trailing),
             "serve artifact: trailing data after end sentinel");

  finalize_pipeline();
  // Canonical round-trip gate: re-serializing the parsed state must
  // reproduce the bundle byte-for-byte (QNATPROG and %.17g formatting are
  // canonical), so any corruption the field parsers tolerated — edited
  // digits, a wrong checksum line — is caught here.
  QNAT_CHECK(serialize_artifact() == artifact_text,
             "serve artifact: checksum/canonical form mismatch (corrupt "
             "bundle)");
}

void ServableModel::finalize_pipeline() {
  pipeline_.normalize = options_.normalize;
  pipeline_.quantize = options_.quantize;
  pipeline_.quant = options_.quant;
  if (options_.normalize) {
    pipeline_.profiled_mean = &profiled_mean_;
    pipeline_.profiled_std = &profiled_std_;
  }
  const auto classes =
      static_cast<std::size_t>(model_.architecture().num_classes);
  QNAT_CHECK((options_.corrector_scale.empty() &&
              options_.corrector_bias.empty()) ||
                 (options_.corrector_scale.size() == classes &&
                  options_.corrector_bias.size() == classes),
             "corrector scale/bias must both be empty or both have one "
             "entry per class (model '" +
                 name_ + "')");
}

std::string ServableModel::serialize_artifact() const {
  std::ostringstream os;
  os << kArtifactMagic << ' ' << kArtifactVersion << '\n';
  os << "model_fingerprint " << hex64(model_fingerprint_) << '\n';
  os << "options_fingerprint " << hex64(options_fingerprint_) << '\n';
  os << "blocks " << bindings_.size() << '\n';
  for (std::size_t b = 0; b < bindings_.size(); ++b) {
    const BlockBinding& binding = bindings_[b];
    os << "block " << b << '\n';
    os << "wires " << binding.measure_wires.size();
    for (const QubitIndex w : binding.measure_wires) os << ' ' << w;
    os << '\n';
    put_real_vector(os, "slope", binding.readout_slope);
    put_real_vector(os, "intercept", binding.readout_intercept);
    // Profiled statistics exist only for *processed* blocks (the last
    // block is post-processed only with apply_to_last), so their presence
    // is per block, not just per model.
    if (options_.normalize && b < profiled_mean_.size()) {
      put_real_vector(os, "mean", profiled_mean_[b]);
      put_real_vector(os, "std", profiled_std_[b]);
    }
    const std::string program_text = serialize_program(*binding.program);
    os << "program " << program_text.size() << '\n' << program_text;
  }
  std::string body = std::move(os).str();
  std::ostringstream tail;
  tail << "checksum " << hex64(fnv1a(body)) << "\nend\n";
  body += std::move(tail).str();
  return body;
}

Tensor2D ServableModel::forward(const Tensor2D& inputs,
                                const std::vector<std::uint64_t>& request_ids,
                                QnnForwardCache* cache) const {
  QNAT_CHECK(inputs.rows() == request_ids.size(),
             "run_batch needs one request id per row");
  QNAT_TRACE_SCOPE("serve.run_batch");
  const int nq = model_.architecture().num_qubits;
  // F32 serving resolves its backend once per batch (avx2-f32 when the
  // machine has it, else the scalar f32 reference) and engages it
  // thread-locally inside the runner — the runner may execute on worker
  // threads, and concurrent f64 models must stay untouched.
  const char* f32_backend = nullptr;
  if (options_.dtype == DType::F32) {
    const auto& registry = backend::BackendRegistry::instance();
    const backend::Backend* avx = registry.find("avx2-f32");
    f32_backend = (avx != nullptr && avx->available()) ? "avx2-f32" : "f32";
  }
  const BlockRunner runner = [&](std::size_t b, std::size_t r,
                                 const ParamVector& params, real* out) {
    std::optional<backend::ScopedSelection> precision;
    if (f32_backend != nullptr) precision.emplace(f32_backend);
    const BlockBinding& binding = bindings_[b];
    // Per-thread expectation buffer: the analytic serving path runs
    // once per sample per block and must stay allocation-free.
    thread_local std::vector<real> z;
    if (options_.shots > 0) {
      // Shot stream keyed by (request id, block) — a pure function of
      // the request, identical under any batch grouping or thread count.
      Rng rng = shot_rng_base_.child(request_ids[r]).child(b);
      z = measure_expectations_shots(*binding.program, params, rng,
                                     options_.shots);
    } else {
      measure_expectations_into(*binding.program, params, z);
    }
    for (int q = 0; q < nq; ++q) {
      const auto qi = static_cast<std::size_t>(q);
      const real e = z[static_cast<std::size_t>(binding.measure_wires[qi])];
      out[q] = binding.readout_slope[qi] * e + binding.readout_intercept[qi];
    }
  };
  Tensor2D logits =
      qnn_forward_with_runner(model_, inputs, runner, pipeline_, cache);
  if (!options_.corrector_scale.empty()) {
    for (std::size_t r = 0; r < logits.rows(); ++r) {
      for (std::size_t c = 0; c < logits.cols(); ++c) {
        logits(r, c) = options_.corrector_scale[c] * logits(r, c) +
                       options_.corrector_bias[c];
      }
    }
  }
  return logits;
}

Tensor2D ServableModel::run_batch(
    const Tensor2D& inputs,
    const std::vector<std::uint64_t>& request_ids) const {
  return forward(inputs, request_ids, nullptr);
}

ProfiledStats ServableModel::profile_raw(
    const Tensor2D& inputs,
    const std::vector<std::uint64_t>& request_ids) const {
  QNAT_CHECK(inputs.rows() >= 2,
             "online re-profiling needs at least 2 traffic rows");
  QnnForwardCache cache;
  forward(inputs, request_ids, &cache);
  ProfiledStats stats;
  // `normalized` has one entry per processed block; `raw` one per block —
  // the profile covers exactly the processed prefix (same shape as the
  // load-time profiling pass).
  for (std::size_t b = 0; b < cache.normalized.size(); ++b) {
    stats.mean.push_back(cache.raw[b].col_mean());
    stats.stddev.push_back(cache.raw[b].col_std(kNormEpsilon));
  }
  return stats;
}

std::shared_ptr<const ServableModel> ModelRegistry::add(
    const std::string& name, const QnnModel& model,
    const ServingOptions& options, const Tensor2D* profiling_inputs) {
  QNAT_CHECK(!name.empty() && name.find('@') == std::string::npos &&
                 name.find_first_of(" \t\n") == std::string::npos,
             "model name must be non-empty and free of '@' and whitespace: '" +
                 name + "'");
  static metrics::Counter loads =
      metrics::counter("serve.registry.loads", metrics::Stability::PerRun);
  static metrics::Counter artifact_hits =
      metrics::counter("serve.artifact.hits", metrics::Stability::PerRun);
  static metrics::Counter artifact_misses =
      metrics::counter("serve.artifact.misses", metrics::Stability::PerRun);
  static metrics::Counter artifact_writes =
      metrics::counter("serve.artifact.writes", metrics::Stability::PerRun);
  static metrics::Counter artifact_rejected = metrics::counter(
      "serve.artifact.rejected", metrics::Stability::PerRun);
  loads.inc();

  int version = 1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.lower_bound({name, std::numeric_limits<int>::max()});
    if (it != entries_.begin()) {
      const auto prev = std::prev(it);
      if (prev->first.first == name) version = prev->first.second + 1;
    }
  }
  // Build outside the lock — transpile + compile + profiling can be slow.
  // With an artifact directory, a matching bundle short-circuits all of
  // that: the warm constructor only parses and verifies.
  std::shared_ptr<const ServableModel> entry;
  std::string artifact_path;
  if (!options.artifact_dir.empty()) {
    artifact_path =
        options.artifact_dir + "/servable_" +
        hex64(ServableModel::artifact_key(model, options, profiling_inputs)) +
        ".txt";
    std::ifstream in(artifact_path, std::ios::binary);
    if (in.good()) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      try {
        entry.reset(new ServableModel(name, version, model, options,
                                      profiling_inputs,
                                      std::move(buffer).str()));
        artifact_hits.inc();
      } catch (const std::exception& e) {
        // Fail loudly, then rebuild: a bad cache entry must never block a
        // load or be served silently.
        artifact_rejected.inc();
        std::fprintf(stderr, "[qnat] rejected serve artifact %s: %s\n",
                     artifact_path.c_str(), e.what());
      }
    } else {
      artifact_misses.inc();
    }
  }
  if (!entry) {
    entry.reset(new ServableModel(
        name, version, model, options, profiling_inputs));
    if (!artifact_path.empty()) {
      std::ofstream out(artifact_path, std::ios::binary | std::ios::trunc);
      if (out.good()) {
        out << entry->serialize_artifact();
        out.flush();
      }
      if (out.good()) {
        artifact_writes.inc();
      } else {
        std::fprintf(stderr, "[qnat] failed writing serve artifact %s\n",
                     artifact_path.c_str());
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries_[{name, version}] = entry;
  }
  return entry;
}

std::shared_ptr<const ServableModel> ModelRegistry::load_file(
    const std::string& name, const std::string& path,
    const ServingOptions& options, const Tensor2D* profiling_inputs) {
  return add(name, load_model(path), options, profiling_inputs);
}

std::shared_ptr<const ServableModel> ModelRegistry::find(
    std::string_view spec) const {
  std::string name(spec);
  int version = 0;  // 0 = latest
  if (const auto at = spec.rfind('@'); at != std::string_view::npos) {
    name = std::string(spec.substr(0, at));
    const std::string_view v = spec.substr(at + 1);
    const auto [ptr, ec] =
        std::from_chars(v.data(), v.data() + v.size(), version);
    if (ec != std::errc{} || ptr != v.data() + v.size() || version < 1) {
      return nullptr;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (version > 0) {
    const auto it = entries_.find({name, version});
    return it == entries_.end() ? nullptr : it->second;
  }
  // Latest: the greatest version under this name.
  const auto it = entries_.lower_bound({name, std::numeric_limits<int>::max()});
  if (it == entries_.begin()) return nullptr;
  const auto prev = std::prev(it);
  return prev->first.first == name ? prev->second : nullptr;
}

std::size_t ModelRegistry::remove(const std::string& name, int version) {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t removed = 0;
  for (auto it = entries_.lower_bound({name, 0}); it != entries_.end();) {
    if (it->first.first != name) break;
    if (version == 0 || it->first.second == version) {
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::vector<std::string> ModelRegistry::list() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> specs;
  for (const auto& [key, entry] : entries_) {
    specs.push_back(key.first + "@" + std::to_string(key.second));
  }
  return specs;
}

}  // namespace qnat::serve
